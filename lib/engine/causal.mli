(** Causal message tracing over the telemetry stream.

    Every client message gets a trace id at origination — sim-side
    metadata derived statelessly from [(origin, app_seq)], the two
    message fields that survive the wire codec round trip, so the id
    needs no wire-format change and is identical on every node and for
    every [sim_domains] count. A [Causal.t] is a read-only
    {!Telemetry.subscribe} observer that collects the causal event
    subset (originate / flow-defer / ordered / per-network packet hops /
    retransmit / deliver, plus wire rejects) and reconstructs
    per-message span trees from it.

    Reconstruction joins [Packet_send]/[Packet_recv] (keyed by
    (ring, seq)) and [Rtr_serve] (keyed by seq alone — ring-ambiguous
    across membership changes, an accepted approximation) back to trace
    ids via the [Msg_ordered] events that link a tid to its assigned
    ring sequence. Corrupted frames cannot be attributed to a message
    (their payload never decoded); they are reported separately as
    {!reject}s.

    Like every telemetry consumer this module upholds the two
    OBSERVABILITY.md invariants: emission sites pay one branch when
    telemetry is inactive, and observation never changes the
    simulation. *)

(** {1 Trace ids} *)

val tid_of : origin:int -> app_seq:int -> int
(** Pack [(origin, app_seq)] into one trace id ([origin lsl 40 lor
    app_seq]).
    @raise Invalid_argument on negative or oversized components. *)

val tid_origin : int -> int
val tid_app_seq : int -> int

(** {1 Collection} *)

type t
(** A causal trace under collection/reconstruction. *)

val create : unit -> t

val observe : t -> Vtime.t -> Telemetry.event -> unit
(** Feed one event; suitable as a {!Telemetry.subscribe} callback.
    Irrelevant event types are ignored without allocation. *)

val attach : Telemetry.t -> t * Telemetry.subscription
(** [attach tel] subscribes a fresh collector to [tel]; unsubscribe
    with {!Telemetry.unsubscribe} when done. *)

val steps_observed : t -> int
(** Causal steps collected so far (cheap; no reconstruction). *)

(** {1 Reconstruction} *)

type hop = {
  hop_at : Vtime.t;
  hop_node : int;
  hop_net : int;
  hop_dir : [ `Send | `Recv ];
  hop_sender : int;
}

type record = {
  r_tid : int;
  r_origin : int;
  r_app_seq : int;
  r_bytes : int;
  r_safe : bool;
  r_originated : Vtime.t option;
      (** [None]: tracing started after origination *)
  r_defers : Vtime.t list;  (** flow-control deferrals, oldest first *)
  r_ordered : (Vtime.t * int * int * int * int) list;
      (** (at, ring, seq, frag, frags), oldest first *)
  r_hops : hop list;  (** per-network packet sends/recvs, oldest first *)
  r_retransmits : (Vtime.t * int) list;  (** (at, serving node) *)
  r_deliveries : (Vtime.t * int) list;  (** (at, node), oldest first *)
}

type reject = {
  rej_at : Vtime.t;
  rej_node : int;
  rej_net : int;
  rej_src : int;
  rej_crc : bool;  (** true: CRC reject; false: decode/validate reject *)
}

val records : t -> record list
(** Per-message records, sorted by trace id — a total order on
    (origin, app_seq), so output is deterministic for any emission
    interleaving the canonical drain produced. *)

val rejects : t -> reject list
(** Wire-level rejects in stream order (unattributable to a tid). *)

(** {1 Latency records} *)

type latency = {
  l_tid : int;
  l_node : int;  (** delivering node *)
  l_sent : Vtime.t;  (** origination time *)
  l_delivered : Vtime.t;
}

val latencies : t -> latency list
(** One compact record per (message, delivering node), restricted to
    messages whose origination was observed. Feeds
    [Metrics.probe_of_causal]. *)

(** {1 Exporters} *)

val chrome_json : t -> string
(** The whole trace as Chrome [trace_event] JSON (catapult /
    [chrome://tracing] / Perfetto): one nestable async flow per message
    keyed by trace id — ["b"] at origination, ["n"] instants for
    ordering, deferral, packet hops and retransmissions, an ["X"]
    delivery span per destination node, ["e"] at final delivery — and
    ["i"] instants for unattributable wire rejects. Timestamps are
    microseconds. *)

val pp_records : Format.formatter -> t -> unit
(** Human-readable per-message lifecycle listing. *)
