(* Conservative parallel discrete-event exchange.
   ==============================================

   Drives one coordinator partition (the "global" Sim: chaos schedules,
   fault samplers, workload pacing owned by the harness) plus one Sim
   per simulated node, in lookahead-bounded windows:

     nt = min next-event time over global, nodes, and barrier hooks
     h0 = max(horizon, nt)                  (idle-jump: skip dead air)
     h1 = min(limit, h0 + lookahead, next coordinator event after h0)

   Per window: coordinator events <= h0 drain first (single-threaded),
   then every node partition with work <= h1 advances independently —
   this is the parallel section — then the barrier hooks run
   (frame-outbox flush, telemetry drain) and the horizon becomes h1.

   Coordinator events are window boundaries: an event at tg > h0 caps
   h1 and runs at the start of a later window, after every partition
   has advanced through tg. That makes the interleaving of coordinator
   work with node work a canonical (time-ordered) property of the
   simulation content, independent of how wide any window happened to
   be — the invariant that lets window batching below collapse windows
   without changing results.

   Safety: the lookahead is required to be <= the minimum cross-node
   network latency, and cross-node interaction happens only through
   frames. A frame sent at s >= h0 arrives at >= s + latency >=
   h0 + lookahead >= h1, so deliveries scheduled at the barrier always
   land at or after every partition clock: no partition ever receives
   work in its past.

   Window batching (on by default under the cluster, [batching] here):

   - Skip-flush: a barrier where no hook reports pending work (empty
     outboxes, empty telemetry buffers) skips the flush calls entirely.
     Flushing nothing is a no-op, so this is observationally identical
     and only removes per-window overhead.

   - Adaptive solo windows: when no hook holds work and exactly one
     partition has events within [max_horizon_factor] lookaheads, that
     partition runs inline on the coordinator thread under a cap that
     starts at

       cap0 = min(limit, h0 + k*lookahead, next coordinator event,
                  next event of every other partition)

     and shrinks to s + lookahead the moment the running partition
     buffers cross-partition work at time s (re-checked between
     events). All flushed sends therefore satisfy s + lookahead >=
     cap = the new horizon, so barrier deliveries still land in no
     partition's past, and the flush replays them in the same globally
     monotone canonical (time, src, seq) order the one-lookahead loop
     would have used across its many barriers — same network RNG draw
     order, same arrival times, bitwise-identical results. Widening
     with two or more concurrently running partitions would NOT be
     sound (a receiver could pop an event beyond a sender's shrunken
     cap before observing it), which is why the fast path is solo-only;
     it is also where the win lives, since token rotation keeps mostly
     one node busy at a time.

   Determinism: partitioning is structural (always one partition per
   node), [domains] only sets how many OS domains execute them, and a
   partition is a pure function of its fed events (no RNG, no shared
   state — see Partition). Barrier hooks canonicalize cross-partition
   order themselves (the fabric merges sends by (time, src node, seq)).
   Hence results are bitwise-identical for any domain count >= 1 and
   invariant under window boundaries — including the batched ones. *)

(* [next] reports the earliest timestamp of work the hook has buffered,
   or [Vtime.never] when it holds none — a sentinel rather than an
   option, because the window loop folds these once per window (and
   once per *event* inside an adaptive solo window) and must not
   allocate. *)
type hook = { next : unit -> Vtime.t; flush : Vtime.t -> unit }

type stats = {
  mutable windows_run : int;
  mutable windows_batched : int; (* barriers whose flush was skipped *)
  mutable windows_widened : int; (* solo windows wider than one lookahead *)
  mutable max_window : Vtime.t; (* widest window so far *)
}

(* --- worker pool ----------------------------------------------------

   Spawned lazily on the first multi-domain window and kept parked
   between runs (see [shutdown]). Windows publish a slice of
   partitions; workers (and the coordinator itself) claim indices off a
   shared atomic counter — classic work stealing, safe because which
   partitions run is fixed before the window starts and partitions
   share no state.

   Wakeup is spin-then-block on both sides: windows arrive back to
   back in the hot loop, so workers burn a short bounded spin on the
   epoch counter (and the coordinator on the remaining-counter) before
   paying a futex round trip. The mutex still guards the sleeper
   bookkeeping, and the wait predicates re-check their condition under
   it, so no wakeup can be lost. *)

(* The claim and completion counters are the cross-domain write hot
   spots; give each its own cache line. An [Atomic.t] is a one-field
   box and the minor heap allocates sequentially, so a 7-word spacer
   allocated right after it keeps the next allocation off its line. *)
let padded_atomic v =
  let a = Atomic.make v in
  ignore (Sys.opaque_identity (Array.make 7 0));
  a

let spin_budget = 2000

type pool = {
  mutable pwork : Sim.t array;
  mutable pcount : int;
  mutable plimit : Vtime.t;
  mutable errors : (int * exn * Printexc.raw_backtrace) list; (* under m *)
  next : int Atomic.t;
  remaining : int Atomic.t;
  epoch : int Atomic.t;
  stop : bool Atomic.t;
  m : Mutex.t;
  work_cv : Condition.t; (* workers park here between windows *)
  done_cv : Condition.t; (* coordinator parks here for the barrier *)
  mutable sleepers : int; (* workers blocked on work_cv; under m *)
  mutable waiting : bool; (* coordinator blocked on done_cv; under m *)
  mutable doms : unit Domain.t list;
}

type t = {
  global : Sim.t;
  parts : Sim.t array;
  lookahead : Vtime.t;
  domains : int;
  batching : bool;
  max_horizon_factor : int;
  mutable horizon : Vtime.t;
  mutable hooks : hook list; (* registration order *)
  work : Sim.t array; (* scratch: partitions active this window *)
  ptimes : Vtime.t array; (* scratch: per-partition next-event times *)
  stats : stats;
  mutable pool : pool option; (* lazily spawned; joined by [shutdown] *)
}

let create ?(domains = 1) ?(batching = false) ?(max_horizon_factor = 8)
    ~lookahead ~global ~parts () =
  if lookahead <= 0 then
    invalid_arg "Exchange.create: lookahead must be positive";
  if domains < 1 then invalid_arg "Exchange.create: domains must be >= 1";
  if max_horizon_factor < 1 then
    invalid_arg "Exchange.create: max_horizon_factor must be >= 1";
  {
    global;
    parts;
    lookahead;
    domains;
    batching;
    max_horizon_factor;
    horizon = Vtime.zero;
    hooks = [];
    (* [global] is a placeholder; slots [0 .. count-1] are overwritten
       before every window and never read past [count]. *)
    work = Array.make (Array.length parts) global;
    ptimes = Array.make (Array.length parts) Vtime.never;
    stats =
      {
        windows_run = 0;
        windows_batched = 0;
        windows_widened = 0;
        max_window = Vtime.zero;
      };
    pool = None;
  }

let horizon t = t.horizon
let lookahead t = t.lookahead
let domains t = t.domains
let batching t = t.batching
let max_horizon_factor t = t.max_horizon_factor

let stats t =
  (* snapshot: callers must not see later mutation *)
  {
    windows_run = t.stats.windows_run;
    windows_batched = t.stats.windows_batched;
    windows_widened = t.stats.windows_widened;
    max_window = t.stats.max_window;
  }

let events_processed t =
  Array.fold_left
    (fun acc p -> acc + Sim.events_processed p)
    (Sim.events_processed t.global)
    t.parts

let add_barrier_hook t ?(next = fun () -> Vtime.never) flush =
  t.hooks <- t.hooks @ [ { next; flush } ]

let pool_drain pool =
  let rec loop () =
    let i = Atomic.fetch_and_add pool.next 1 in
    if i < pool.pcount then begin
      (try Sim.run_until pool.pwork.(i) pool.plimit
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         Mutex.lock pool.m;
         pool.errors <- (i, e, bt) :: pool.errors;
         Mutex.unlock pool.m);
      if Atomic.fetch_and_add pool.remaining (-1) = 1 then begin
        (* Last item done: wake the coordinator if it parked. Taking
           the mutex orders the decrement before its predicate
           re-check, so the wakeup cannot be lost; a spinning
           coordinator needs no signal at all. *)
        Mutex.lock pool.m;
        if pool.waiting then Condition.broadcast pool.done_cv;
        Mutex.unlock pool.m
      end;
      loop ()
    end
  in
  loop ()

let rec pool_worker pool my_epoch =
  let rec spin n =
    if Atomic.get pool.stop then `Stop
    else if Atomic.get pool.epoch <> my_epoch then `Work
    else if n = 0 then `Block
    else begin
      Domain.cpu_relax ();
      spin (n - 1)
    end
  in
  let decision =
    match spin spin_budget with
    | `Block ->
      Mutex.lock pool.m;
      pool.sleepers <- pool.sleepers + 1;
      while (not (Atomic.get pool.stop)) && Atomic.get pool.epoch = my_epoch do
        Condition.wait pool.work_cv pool.m
      done;
      pool.sleepers <- pool.sleepers - 1;
      Mutex.unlock pool.m;
      if Atomic.get pool.stop then `Stop else `Work
    | d -> d
  in
  match decision with
  | `Stop | `Block -> ()
  | `Work ->
    let epoch = Atomic.get pool.epoch in
    pool_drain pool;
    pool_worker pool epoch

let pool_start ~workers =
  let pool =
    {
      pwork = [||];
      pcount = 0;
      plimit = Vtime.zero;
      errors = [];
      next = padded_atomic 0;
      remaining = padded_atomic 0;
      epoch = padded_atomic 0;
      stop = Atomic.make false;
      m = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      sleepers = 0;
      waiting = false;
      doms = [];
    }
  in
  pool.doms <-
    List.init workers (fun _ -> Domain.spawn (fun () -> pool_worker pool 0));
  pool

let get_pool t =
  match t.pool with
  | Some pool -> pool
  | None ->
    let pool = pool_start ~workers:(t.domains - 1) in
    t.pool <- Some pool;
    pool

let shutdown t =
  match t.pool with
  | None -> ()
  | Some pool ->
    Atomic.set pool.stop true;
    Mutex.lock pool.m;
    Condition.broadcast pool.work_cv;
    Mutex.unlock pool.m;
    List.iter Domain.join pool.doms;
    pool.doms <- [];
    t.pool <- None

let live_workers t =
  match t.pool with None -> 0 | Some pool -> List.length pool.doms

(* Run [count] partitions from [work] up to [limit] on the pool, the
   coordinator stealing work alongside the workers. Re-raises the
   lowest-indexed worker exception (a deterministic choice, since which
   partitions fail is deterministic). *)
let pool_run_window pool work count limit =
  pool.pwork <- work;
  pool.pcount <- count;
  pool.plimit <- limit;
  pool.errors <- [];
  Atomic.set pool.remaining count;
  Atomic.set pool.next 0;
  Atomic.incr pool.epoch;
  Mutex.lock pool.m;
  if pool.sleepers > 0 then Condition.broadcast pool.work_cv;
  Mutex.unlock pool.m;
  pool_drain pool;
  let rec wait_spin n =
    if Atomic.get pool.remaining = 0 then ()
    else if n = 0 then begin
      Mutex.lock pool.m;
      pool.waiting <- true;
      while Atomic.get pool.remaining > 0 do
        Condition.wait pool.done_cv pool.m
      done;
      pool.waiting <- false;
      Mutex.unlock pool.m
    end
    else begin
      Domain.cpu_relax ();
      wait_spin (n - 1)
    end
  in
  wait_spin spin_budget;
  let errors =
    if pool.errors == [] then []
    else begin
      Mutex.lock pool.m;
      let e = pool.errors in
      Mutex.unlock pool.m;
      e
    end
  in
  match List.sort (fun (i, _, _) (j, _, _) -> compare i j) errors with
  | (_, e, bt) :: _ -> Printexc.raise_with_backtrace e bt
  | [] -> ()

(* --- the window loop ------------------------------------------------

   Everything below the per-window line runs a few hundred thousand
   times per simulated second, so the scans are written against the
   allocation-free sentinel peeks ([Sim.next_time_raw], hook [next]
   returning [Vtime.never]): plain int min/max folds, no options, no
   tuples, no per-window closures outside the solo path. *)

(* These run up to three times per window (and once per event inside an
   adaptive solo window), so both are hand-rolled loops: no fold
   closures, just the unavoidable indirect call into each hook. *)
let rec hooks_next_from hooks acc =
  match hooks with
  | [] -> acc
  | (h : hook) :: rest -> hooks_next_from rest (Vtime.min acc (h.next ()))

let hooks_next t = hooks_next_from t.hooks Vtime.never

(* Existence-only variant for the barrier's skip decision: short-
   circuits on the first hook with pending work (registration order
   puts the frame outbox — the usual holder — first). *)
let rec hooks_all_empty hooks =
  match hooks with
  | [] -> true
  | (h : hook) :: rest -> h.next () = Vtime.never && hooks_all_empty rest

(* Barrier at [h1]: flush cross-partition traffic (canonical merge
   order lives in the hooks), then drain telemetry. Hooks may rewind
   the coordinator clock to replay items at their own timestamps;
   normalize afterwards. With batching on, a barrier where no hook
   holds work skips the flush calls — flushing nothing is a no-op, so
   skipping is observationally identical and only removes overhead. *)
let rec flush_hooks hooks h1 =
  match hooks with
  | [] -> ()
  | (h : hook) :: rest ->
    h.flush h1;
    flush_hooks rest h1

(* A barrier — skipped or not — leaves every hook empty: the flush
   branch drains them all, and the skip branch is taken only when they
   already were. The window loop relies on this to elide the hook scan
   in its steady state. *)
let barrier t h0 h1 =
  let st = t.stats in
  st.windows_run <- st.windows_run + 1;
  let width = Vtime.sub h1 h0 in
  if Vtime.(width > st.max_window) then st.max_window <- width;
  if t.batching && hooks_all_empty t.hooks then
    st.windows_batched <- st.windows_batched + 1
  else flush_hooks t.hooks h1;
  (* Hooks may have rewound the coordinator clock to replay items at
     their own timestamps; normalize (and cover the skip path). *)
  Sim.unsafe_set_clock t.global h1;
  t.horizon <- h1

(* The adaptive solo window's initial cap: with exactly one partition
   active at [h1] (the caller just counted), how far may it run alone?
   Up to the earliest event of any *other* partition, bounded by
   [wide_cap]. With a single active partition every other partition's
   next event is > h1, so the cap is always > h1: no separate
   eligibility scan is needed — "work-set count = 1" is exactly the
   old best/second-best test. Reads the window's cached [ptimes]. *)
let solo_cap t solo wide_cap =
  let ptimes = t.ptimes in
  let cap = ref wide_cap in
  for i = 0 to Array.length ptimes - 1 do
    let tm = Array.unsafe_get ptimes i in
    if i <> solo && Vtime.(tm < !cap) then cap := tm
  done;
  !cap

let run_until t limit =
  if Vtime.(limit < t.horizon) then ()
  else begin
    let parts = t.parts in
    let np = Array.length parts in
    let ptimes = t.ptimes in
    let wide_span = t.max_horizon_factor * t.lookahead in
    (* Hooks can hold work at the top of the loop only before the first
       window of this call (enqueues from outside any window, e.g. the
       bootstrap token) — every barrier leaves them empty, and the one
       in-loop source of new hook work outside a window, a coordinator
       drain, re-reads them explicitly below. The steady-state window
       therefore skips the hook scan entirely. *)
    let fresh = ref true in
    (* One pass over the partitions fills the scratch [ptimes] and
       returns their min; the window below reuses the cached times for
       the solo check and the work-set fill instead of re-peeking. *)
    let scan_parts () =
      let m = ref Vtime.never in
      for i = 0 to np - 1 do
        let s = Sim.next_time_raw (Array.unsafe_get parts i) in
        Array.unsafe_set ptimes i s;
        if Vtime.(s < !m) then m := s
      done;
      !m
    in
    (* The second disjunct closes a batching edge: an adaptive window
       can land the horizon exactly on [limit] without any window ever
       *starting* there, which would strand a coordinator event
       scheduled at precisely [limit] (the unbatched loop reaches it by
       idle-jumping to h0 = limit). One more zero-width window drains
       it — and any node work it schedules — identically. *)
    while
      t.horizon < limit || Vtime.(Sim.next_time_raw t.global <= limit)
    do
      let gnext = ref (Sim.next_time_raw t.global) in
      let pmin = scan_parts () in
      let hnext = ref (if !fresh then hooks_next t else Vtime.never) in
      fresh := false;
      let nt = Vtime.min !gnext (Vtime.min pmin !hnext) in
      if Vtime.(nt > limit) then begin
        (* Nothing pending inside [limit] anywhere ([Vtime.never] when
           nothing is pending at all): run the coordinator out. *)
        Sim.run_until t.global limit;
        t.horizon <- limit
      end
      else begin
        let h0 = Vtime.max t.horizon nt in
        (* Coordinator turn: every coordinator event <= h0 (chaos ops,
           samplers, thunk-scheduled work from a previous barrier)
           runs before any partition passes h0; later coordinator
           events bound the window instead and run at a future
           window's start, after all partition work up to their own
           time — a canonical order no window geometry can change.
           The clock follows each event, then parks at h0 so sends
           stamped during the parallel section never see a coordinator
           clock from later in the window. Coordinator events may
           schedule partition work or buffer hook work, so the cached
           scans are refreshed after a drain (the common window drains
           nothing and keeps the single pass). *)
        if Vtime.(!gnext <= h0) then begin
          Sim.drain_until t.global h0;
          gnext := Sim.next_time_raw t.global;
          ignore (scan_parts ());
          hnext := hooks_next t
        end;
        Sim.unsafe_set_clock t.global h0;
        let bound = Vtime.min limit !gnext in
        let h1 = Vtime.min bound (Vtime.add h0 t.lookahead) in
        (* Fill the work set from the cached scan; its size doubles as
           the solo-eligibility test, so the saturated path pays no
           separate check. *)
        let count = ref 0 in
        let solo_idx = ref 0 in
        for i = 0 to np - 1 do
          if Vtime.(Array.unsafe_get ptimes i <= h1) then begin
            t.work.(!count) <- Array.unsafe_get parts i;
            solo_idx := i;
            incr count
          end
        done;
        let wide_cap =
          (* [Vtime.zero <= h1] doubles as "not solo". *)
          if t.batching && !count = 1 && !hnext = Vtime.never then
            Vtime.min bound (Vtime.add h0 wide_span)
          else Vtime.zero
        in
        if Vtime.(wide_cap > h1) then begin
          (* Inline fast path: one partition, one thread, a cap that
             shrinks the moment cross-partition work is buffered. The
             cap can only shrink to s + lookahead >= h0 + lookahead >=
             h1, so it never drops below the plain window bound. *)
          let p = Array.unsafe_get parts !solo_idx in
          let cap = ref (solo_cap t !solo_idx wide_cap) in
          let cap_fn () =
            let s = hooks_next t in
            if s <> Vtime.never then begin
              let c = Vtime.add s t.lookahead in
              if Vtime.(c < !cap) then cap := c
            end;
            !cap
          in
          Sim.drain_while p ~cap:cap_fn;
          (* One final poll: [drain_while] consults the cap before each
             event, so work buffered by the *last* event it ran has not
             shrunk the cap yet. Without this the window would close
             past [s + lookahead] and the flush below would schedule
             into partitions an earlier widened window already advanced
             beyond the delivery time. Events already drained all
             precede the shrunk cap (they drain in time order, each
             below the cap current at its poll), so the soloist's clock
             never exceeds the recomputed bound. *)
          let h1s = cap_fn () in
          Sim.run_until p h1s;
          if Vtime.(h1s > Vtime.add h0 t.lookahead) then
            t.stats.windows_widened <- t.stats.windows_widened + 1;
          barrier t h0 h1s
        end
        else begin
          (* Parallel section: every partition with work <= h1. *)
          (if t.domains > 1 && !count > 1 then
             pool_run_window (get_pool t) t.work !count h1
           else
             for i = 0 to !count - 1 do
               Sim.run_until t.work.(i) h1
             done);
          barrier t h0 h1
        end
      end
    done
  end
