(* Conservative parallel discrete-event exchange.
   ==============================================

   Drives one coordinator partition (the "global" Sim: chaos schedules,
   fault samplers, workload pacing owned by the harness) plus one Sim
   per simulated node, in lookahead-bounded windows:

     nt = min next-event time over global, nodes, and barrier hooks
     h0 = max(horizon, nt)            (idle-jump: skip dead air)
     h1 = min(limit, h0 + lookahead)

   Per window: global events drain first (single-threaded), then every
   node partition with work <= h1 advances independently — this is the
   parallel section — then the barrier hooks run (frame-outbox flush,
   telemetry drain) and the horizon becomes h1.

   Safety: the lookahead is required to be <= the minimum cross-node
   network latency, and cross-node interaction happens only through
   frames. A frame sent at s >= h0 arrives at >= s + latency >=
   h0 + lookahead >= h1, so deliveries scheduled at the barrier always
   land at or after every partition clock: no partition ever receives
   work in its past.

   Determinism: partitioning is structural (always one partition per
   node), [domains] only sets how many OS domains execute them, and a
   partition is a pure function of its fed events (no RNG, no shared
   state — see Partition). Barrier hooks canonicalize cross-partition
   order themselves (the fabric merges sends by (time, src node, seq)).
   Hence results are bitwise-identical for any domain count >= 1, and
   window boundaries cannot reorder anything either: all cross-partition
   work is replayed in full (time, source, seq) order at barriers. *)

type hook = { next : unit -> Vtime.t option; flush : Vtime.t -> unit }

type t = {
  global : Sim.t;
  parts : Sim.t array;
  lookahead : Vtime.t;
  domains : int;
  mutable horizon : Vtime.t;
  mutable hooks : hook list; (* registration order *)
  work : Sim.t option array; (* scratch: partitions active this window *)
}

let create ?(domains = 1) ~lookahead ~global ~parts () =
  if lookahead <= 0 then
    invalid_arg "Exchange.create: lookahead must be positive";
  if domains < 1 then invalid_arg "Exchange.create: domains must be >= 1";
  {
    global;
    parts;
    lookahead;
    domains;
    horizon = Vtime.zero;
    hooks = [];
    work = Array.make (Array.length parts) None;
  }

let horizon t = t.horizon
let lookahead t = t.lookahead
let domains t = t.domains

let events_processed t =
  Array.fold_left
    (fun acc p -> acc + Sim.events_processed p)
    (Sim.events_processed t.global)
    t.parts

let add_barrier_hook t ?(next = fun () -> None) flush =
  t.hooks <- t.hooks @ [ { next; flush } ]

(* --- worker pool ----------------------------------------------------

   Spawned per [run_until] call and joined before it returns, so no
   domain outlives a run and idle simulations hold no threads. Windows
   publish a slice of partitions; workers (and the coordinator itself)
   claim indices off a shared atomic counter — classic work stealing,
   safe because which partitions run is fixed before the window starts
   and partitions share no state. *)

type pool = {
  mutable pwork : Sim.t option array;
  mutable pcount : int;
  mutable plimit : Vtime.t;
  mutable errors : (int * exn * Printexc.raw_backtrace) list; (* under m *)
  next : int Atomic.t;
  remaining : int Atomic.t;
  epoch : int Atomic.t;
  stop : bool Atomic.t;
  m : Mutex.t;
  work_cv : Condition.t; (* workers wait here for a new window *)
  done_cv : Condition.t; (* coordinator waits here for the barrier *)
  mutable doms : unit Domain.t list;
}

let pool_drain pool =
  let rec loop () =
    let i = Atomic.fetch_and_add pool.next 1 in
    if i < pool.pcount then begin
      (match pool.pwork.(i) with
      | Some sim -> (
        try Sim.run_until sim pool.plimit
        with e ->
          let bt = Printexc.get_raw_backtrace () in
          Mutex.lock pool.m;
          pool.errors <- (i, e, bt) :: pool.errors;
          Mutex.unlock pool.m)
      | None -> ());
      if Atomic.fetch_and_add pool.remaining (-1) = 1 then begin
        (* Last item done: wake the coordinator. Taking the mutex
           orders the decrement before its predicate re-check, so the
           wakeup cannot be lost. *)
        Mutex.lock pool.m;
        Condition.broadcast pool.done_cv;
        Mutex.unlock pool.m
      end;
      loop ()
    end
  in
  loop ()

let rec pool_worker pool my_epoch =
  Mutex.lock pool.m;
  while
    (not (Atomic.get pool.stop)) && Atomic.get pool.epoch = my_epoch
  do
    Condition.wait pool.work_cv pool.m
  done;
  let stop = Atomic.get pool.stop in
  let epoch = Atomic.get pool.epoch in
  Mutex.unlock pool.m;
  if not stop then begin
    pool_drain pool;
    pool_worker pool epoch
  end

let pool_start ~workers =
  let pool =
    {
      pwork = [||];
      pcount = 0;
      plimit = Vtime.zero;
      errors = [];
      next = Atomic.make 0;
      remaining = Atomic.make 0;
      epoch = Atomic.make 0;
      stop = Atomic.make false;
      m = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      doms = [];
    }
  in
  pool.doms <-
    List.init workers (fun _ -> Domain.spawn (fun () -> pool_worker pool 0));
  pool

let pool_stop pool =
  Mutex.lock pool.m;
  Atomic.set pool.stop true;
  Condition.broadcast pool.work_cv;
  Mutex.unlock pool.m;
  List.iter Domain.join pool.doms;
  pool.doms <- []

(* Run [count] partitions from [work] up to [limit] on the pool, the
   coordinator stealing work alongside the workers. Re-raises the
   lowest-indexed worker exception (a deterministic choice, since which
   partitions fail is deterministic). *)
let pool_run_window pool work count limit =
  pool.pwork <- work;
  pool.pcount <- count;
  pool.plimit <- limit;
  pool.errors <- [];
  Atomic.set pool.remaining count;
  Atomic.set pool.next 0;
  Mutex.lock pool.m;
  Atomic.incr pool.epoch;
  Condition.broadcast pool.work_cv;
  Mutex.unlock pool.m;
  pool_drain pool;
  Mutex.lock pool.m;
  while Atomic.get pool.remaining > 0 do
    Condition.wait pool.done_cv pool.m
  done;
  let errors = pool.errors in
  Mutex.unlock pool.m;
  match List.sort (fun (i, _, _) (j, _, _) -> compare i j) errors with
  | (_, e, bt) :: _ -> Printexc.raise_with_backtrace e bt
  | [] -> ()

(* --- the window loop ------------------------------------------------ *)

let opt_min a b =
  match a, b with
  | None, x | x, None -> x
  | Some x, Some y -> Some (Vtime.min x y)

let next_time t =
  let nt = Sim.next_event_time t.global in
  let nt = Array.fold_left (fun acc p -> opt_min acc (Sim.next_event_time p)) nt t.parts in
  List.fold_left (fun acc (h : hook) -> opt_min acc (h.next ())) nt t.hooks

let run_until t limit =
  if Vtime.(limit <= t.horizon) then ()
  else begin
    let pool =
      if t.domains > 1 then Some (pool_start ~workers:(t.domains - 1))
      else None
    in
    Fun.protect
      ~finally:(fun () -> match pool with Some p -> pool_stop p | None -> ())
    @@ fun () ->
    while t.horizon < limit do
      match next_time t with
      | None ->
        Sim.run_until t.global limit;
        t.horizon <- limit
      | Some nt when Vtime.(nt > limit) ->
        Sim.run_until t.global limit;
        t.horizon <- limit
      | Some nt ->
        let h0 = Vtime.max t.horizon nt in
        let h1 = Vtime.min limit (Vtime.add h0 t.lookahead) in
        (* Coordinator first: chaos ops, samplers and pacing for this
           window apply before node partitions advance. The clock
           follows each event, then parks at h0 so sends stamped during
           the parallel section never see a coordinator clock from
           later in the window. *)
        Sim.drain_until t.global h1;
        Sim.unsafe_set_clock t.global h0;
        (* Parallel section: every partition with work <= h1. *)
        let count = ref 0 in
        Array.iter
          (fun p ->
            match Sim.next_event_time p with
            | Some tm when Vtime.(tm <= h1) ->
              t.work.(!count) <- Some p;
              incr count
            | _ -> ())
          t.parts;
        (match pool with
        | Some pool -> pool_run_window pool t.work !count h1
        | None ->
          for i = 0 to !count - 1 do
            match t.work.(i) with
            | Some p -> Sim.run_until p h1
            | None -> ()
          done);
        Array.fill t.work 0 !count None;
        (* Barrier: flush cross-partition traffic (canonical merge
           order lives in the hooks), then drain telemetry. Hooks may
           rewind the coordinator clock to replay items at their own
           timestamps; normalize afterwards. *)
        Sim.unsafe_set_clock t.global h1;
        List.iter (fun h -> h.flush h1) t.hooks;
        Sim.unsafe_set_clock t.global h1;
        t.horizon <- h1
    done
  end
