(* Typed telemetry: a metrics registry (counters, gauges, log-bucketed
   histograms) plus a structured trace-event stream with exporters
   (JSONL, metrics JSON/text, token-rotation span view).

   Two delivery paths for events:
   - a bounded ring (like the old string Trace), enabled with
     [set_tracing], read back with [events] — what tests assert on;
   - an optional streaming sink (e.g. a JSONL writer), which sees every
     event regardless of the ring flag — what long runs export through.

   The hot-path contract: when neither is on, [active] is false and
   instrumented code skips constructing the event entirely, so disabled
   telemetry costs one branch per site, exactly like [Trace.emitf]. *)

(* --- events --------------------------------------------------------- *)

type token_info = { ring_id : int; seq : int; rotation : int; hops : int }

type release_trigger = Release_timer | Release_caught_up
type drop_kind = Drop_token | Drop_packet

type event =
  (* token life cycle (SRP view; per-network copies are Token_copy_rx) *)
  | Token_rx of { node : int; tok : token_info }
  | Token_tx of { node : int; tok : token_info; rtr_len : int }
  | Token_copy_rx of { node : int; net : int; tok : token_info }
  | Token_retransmit of { node : int; tok : token_info }
  | Token_loss of { node : int; ring_id : int }
  (* passive-mode token buffering (Fig. 4) *)
  | Token_hold of { node : int; tok : token_info; aru : int }
  | Token_release of { node : int; ring_id : int; trigger : release_trigger }
  (* message path *)
  | Msg_tx of { node : int; seq : int; bytes : int }
  | Msg_deliver of { node : int; origin : int; tid : int; bytes : int }
  (* causal message path: every client message carries a trace id
     ([Causal.tid]) from origination to delivery (sim-side metadata
     derived from (origin, app_seq); no wire-format change) *)
  | Msg_originate of { node : int; tid : int; bytes : int; safe : bool }
  | Msg_defer of { node : int; tid : int; pending : int }
  | Msg_ordered of {
      node : int;
      tid : int;
      ring_id : int;
      seq : int;
      frag : int;
      frags : int;
    }
  | Packet_send of { node : int; net : int; ring_id : int; seq : int }
  | Packet_recv of {
      node : int;
      net : int;
      ring_id : int;
      seq : int;
      sender : int;
    }
  | Dup_drop of { node : int; kind : drop_kind; seq : int }
  | Rtr_request of { node : int; count : int; low : int; high : int }
  | Rtr_serve of { node : int; seq : int }
  (* fault monitors (Figs. 2 and 5) *)
  | Problem_incr of { node : int; net : int; count : int }
  | Problem_decay of { node : int; net : int; count : int }
  | Problem_threshold of { node : int; net : int; count : int; threshold : int }
  | Recv_lag of { node : int; net : int; behind : int; source : string }
  | Net_fault_marked of { node : int; net : int; evidence : string }
  (* reinstatement / probation state machine (flap damping) *)
  | Net_condemned of { node : int; net : int; flaps : int }
  | Net_probation of { node : int; net : int; attempt : int }
  | Net_reinstated of { node : int; net : int; rotations : int }
  (* membership *)
  | Memb_transition of { node : int; phase : string; ring_id : int; detail : string }
  | Ring_installed of { node : int; ring_id : int; members : int }
  (* network layer *)
  | Frame_loss of { net : int; src : int }
  | Frame_blocked of { net : int; src : int; dst : int }
  | Buffer_drop of { node : int; net : int; bytes : int }
  | Net_status of { net : int; status : string }
  | Frame_corrupt of { net : int; src : int; kind : string }
  | Frame_crc_reject of { node : int; net : int; src : int }
  | Frame_decode_reject of { node : int; net : int; src : int; error : string }
  (* escape hatch; also carries the legacy string Trace *)
  | Custom of { component : string; message : string }

type entry = { time : Vtime.t; event : event }

(* --- metrics -------------------------------------------------------- *)

type metric =
  | Counter of Stats.Counter.t
  | Gauge of (unit -> float)
  | Histogram of Stats.Histogram.t

(* Log-spaced millisecond buckets from 10 us to ~10 s; the same spacing
   the latency probe uses, so distributions are comparable. *)
let default_ms_buckets = Array.init 60 (fun i -> 0.01 *. (1.26 ** float_of_int i))

(* Partitioned-mode buffering: each simulated node gets a child hub
   whose emissions (and deferred hook thunks) are queued as
   (time, source, seq) entries instead of dispatched; the exchange
   barrier drains all buffers in canonical merge order into the parent
   hub's sink/subscribers/ring. The seq is per-hub emission order, so
   intra-node order is exact and cross-node order is the same total
   order the frame exchange uses — independent of the domain count.

   The queue is a pair of parallel growable arrays reused across
   barriers — the seq is simply the slot index — so buffering an entry
   allocates nothing beyond the payload constructor itself. Every push
   site runs under a nondecreasing clock (a partition inside its
   window, the coordinator between its parking points, the drain's own
   timestamp replay), so each hub's stream is naturally time-sorted and
   the barrier merge is a k-way walk with no sort; [bsorted] guards the
   assumption and falls back to materialize-and-sort if a clock ever
   regresses across a push. *)
type payload = Ev of event | Thunk of (unit -> unit)

let dummy_payload = Thunk ignore

type t = {
  sim : Sim.t;
  capacity : int;
  mutable tracing : bool;
  ring : entry option array;
  mutable next : int;
  mutable count : int;
  mutable sink : (Vtime.t -> event -> unit) option;
  mutable subscribers : (int * (Vtime.t -> event -> unit)) list;
      (* observer fan-out, oldest first; ids make removal exact *)
  mutable next_subscriber : int;
  registry : (string, metric) Hashtbl.t;
  mutable names : string list;  (* registration order, newest first *)
  parent : t option; (* Some p: this is a buffered per-node child of p *)
  source : int; (* canonical merge rank; -1 for a root hub *)
  mutable buffering : bool; (* root hubs: buffer own emissions too *)
  mutable btimes : Vtime.t array; (* parallel slots, reused across drains *)
  mutable bpayloads : payload array;
  mutable blen : int;
  mutable bsorted : bool; (* btimes.(0..blen-1) nondecreasing? *)
}

type subscription = int

let create ?(capacity = 4096) sim =
  if capacity <= 0 then
    invalid_arg "Telemetry.create: capacity must be positive";
  {
    sim;
    capacity;
    tracing = false;
    ring = Array.make capacity None;
    next = 0;
    count = 0;
    sink = None;
    subscribers = [];
    next_subscriber = 0;
    registry = Hashtbl.create 64;
    names = [];
    parent = None;
    source = -1;
    buffering = false;
    btimes = [||];
    bpayloads = [||];
    blen = 0;
    bsorted = true;
  }

let create_child parent ~source sim =
  {
    sim;
    capacity = 1;
    tracing = false;
    ring = Array.make 1 None;
    next = 0;
    count = 0;
    sink = None;
    subscribers = [];
    next_subscriber = 0;
    registry = parent.registry; (* metrics live in the parent *)
    names = [];
    parent = Some parent;
    source;
    buffering = true;
    btimes = [||];
    bpayloads = [||];
    blen = 0;
    bsorted = true;
  }

(* The hub whose registry/sink/subscribers this hub feeds. *)
let root t = match t.parent with Some p -> p | None -> t

let set_buffering t b =
  t.buffering <- b;
  if (not b) && t.blen > 0 then
    invalid_arg "Telemetry.set_buffering: undrained buffer"

let sim t = t.sim
let set_tracing t b = t.tracing <- b
let tracing t = t.tracing
let set_sink t f = t.sink <- Some f
let clear_sink t = t.sink <- None

let subscribe t f =
  let id = t.next_subscriber in
  t.next_subscriber <- id + 1;
  t.subscribers <- t.subscribers @ [ (id, f) ];
  id

let unsubscribe t id =
  t.subscribers <- List.filter (fun (id', _) -> id' <> id) t.subscribers

(* A child hub is active when its parent is: the guard at emit sites
   must reflect where the events will eventually be dispatched. *)
let[@inline] active t =
  let r = root t in
  r.tracing || r.sink <> None || r.subscribers <> []

let dispatch t time event =
  (match t.sink with Some f -> f time event | None -> ());
  (match t.subscribers with
  | [] -> ()
  | subs -> List.iter (fun (_, f) -> f time event) subs);
  if t.tracing then begin
    t.ring.(t.next) <- Some { time; event };
    t.next <- (t.next + 1) mod t.capacity;
    t.count <- min (t.count + 1) t.capacity
  end

let buffer_push t payload =
  let i = t.blen in
  if i = Array.length t.btimes then begin
    let cap = if i = 0 then 64 else 2 * i in
    let bt = Array.make cap Vtime.zero in
    let bp = Array.make cap dummy_payload in
    Array.blit t.btimes 0 bt 0 i;
    Array.blit t.bpayloads 0 bp 0 i;
    t.btimes <- bt;
    t.bpayloads <- bp
  end;
  let time = Sim.now t.sim in
  if i > 0 && Vtime.(time < t.btimes.(i - 1)) then t.bsorted <- false;
  t.btimes.(i) <- time;
  t.bpayloads.(i) <- payload;
  t.blen <- i + 1

let emit t event =
  if t.buffering then buffer_push t (Ev event)
  else dispatch t (Sim.now t.sim) event

let defer t f = if t.buffering then buffer_push t (Thunk f) else f ()

let has_buffered t = t.blen > 0

(* Earliest buffered timestamp in one non-empty hub: the head slot on
   the sorted fast path, a scan only after a clock regression. *)
let head_min h =
  if h.bsorted then h.btimes.(0)
  else begin
    let m = ref h.btimes.(0) in
    for i = 1 to h.blen - 1 do
      m := Vtime.min !m h.btimes.(i)
    done;
    !m
  end

(* Earliest buffered timestamp across a root hub and its children
   ([Vtime.never] when all empty): the exchange polls this once per
   window (and once per event inside an adaptive solo window), so it is
   a plain loop of field reads — O(hubs), allocation-free, no closure
   dispatch. *)
let buffered_next t ~children =
  let acc = ref (if t.blen = 0 then Vtime.never else head_min t) in
  for i = 0 to Array.length children - 1 do
    let c = Array.unsafe_get children i in
    if c.blen > 0 then acc := Vtime.min !acc (head_min c)
  done;
  !acc

(* Dispatch one buffered entry at its own timestamp. *)
let replay root set_clock time payload =
  set_clock time;
  match payload with Ev ev -> dispatch root time ev | Thunk f -> f ()

(* Drop consumed slots, keeping anything pushed during dispatch (a
   subscriber emitting, a deferred hook deferring again) for the next
   barrier, and clear the dead slots so payloads are not retained. *)
let compact h taken =
  if taken > 0 then begin
    let left = h.blen - taken in
    if left > 0 then begin
      Array.blit h.btimes taken h.btimes 0 left;
      Array.blit h.bpayloads taken h.bpayloads 0 left
    end;
    Array.fill h.bpayloads left taken dummy_payload;
    h.blen <- left;
    if left = 0 then h.bsorted <- true
  end

(* Fallback drain for a hub whose stream was observed out of order:
   materialize (time, source, seq, payload) tuples and sort, exactly
   the semantics of the merge below. Never taken on the in-tree push
   sites, which all run under nondecreasing clocks. *)
let drain_sorting t ~children ~set_clock =
  let count = Array.fold_left (fun acc c -> acc + c.blen) t.blen children in
  let arr = Array.make count (Vtime.zero, 0, 0, dummy_payload) in
  let i = ref 0 in
  let take h =
    let n = h.blen in
    for j = 0 to n - 1 do
      arr.(!i) <- (h.btimes.(j), h.source, j, h.bpayloads.(j));
      incr i
    done;
    n
  in
  let tn = take t in
  let cns = Array.map take children in
  Array.sort
    (fun (ta, sa, qa, _) (tb, sb, qb, _) ->
      let c = compare ta tb in
      if c <> 0 then c
      else
        let c = compare sa sb in
        if c <> 0 then c else compare qa qb)
    arr;
  compact t tn;
  Array.iteri (fun ci c -> compact c cns.(ci)) children;
  Array.iter (fun (time, _, _, payload) -> replay t set_clock time payload) arr

(* Barrier drain: merge the root's own buffer with every child's in
   canonical (time, source, seq) order — the same total order the frame
   exchange flushes in — then dispatch events and run deferred thunks
   with the coordinator clock set to each entry's own timestamp.

   Each hub's stream is already time-sorted (guarded by [bsorted]) and
   seq is the slot index, so the canonical order is a k-way merge over
   per-hub cursors: pick the hub whose head has the least
   (time, source), dispatch, advance. Source ranks are distinct across
   hubs, so the comparison never needs seq. Lengths are snapshotted
   first; entries pushed during dispatch stay for the next barrier. *)
let drain t ~children ~set_clock =
  if has_buffered t || Array.exists has_buffered children then begin
    if t.bsorted && Array.for_all (fun c -> c.bsorted) children then begin
      let tlen = t.blen in
      let clens = Array.map (fun c -> c.blen) children in
      let tcur = ref 0 in
      let curs = Array.make (Array.length children) 0 in
      let continue = ref true in
      while !continue do
        (* root first at ties: its source rank (-1) is least *)
        let best = ref t in
        let found = ref (!tcur < tlen) in
        let best_time = ref (if !found then t.btimes.(!tcur) else Vtime.zero) in
        let best_child = ref (-1) in
        Array.iteri
          (fun i c ->
            if curs.(i) < clens.(i) then begin
              let ct = c.btimes.(curs.(i)) in
              if
                (not !found)
                || Vtime.(ct < !best_time)
                || (ct = !best_time && c.source < !best.source)
              then begin
                found := true;
                best := c;
                best_time := ct;
                best_child := i
              end
            end)
          children;
        if not !found then continue := false
        else begin
          let h = !best in
          let cur = if !best_child < 0 then !tcur else curs.(!best_child) in
          if !best_child < 0 then incr tcur
          else curs.(!best_child) <- cur + 1;
          replay t set_clock h.btimes.(cur) h.bpayloads.(cur)
        end
      done;
      compact t !tcur;
      Array.iteri (fun i c -> compact c curs.(i)) children
    end
    else drain_sorting t ~children ~set_clock
  end

let custom t ~component message =
  if active t then emit t (Custom { component; message })

let customf t ~component fmt =
  if active t then Format.kasprintf (fun s -> custom t ~component s) fmt
  else Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let events_seq t =
  let start = (t.next - t.count + t.capacity) mod t.capacity in
  let rec at i () =
    if i >= t.count then Seq.Nil
    else
      match t.ring.((start + i) mod t.capacity) with
      | Some e -> Seq.Cons (e, at (i + 1))
      | None -> at (i + 1) ()
  in
  at 0

let events t = List.of_seq (events_seq t)

let clear t =
  Array.fill t.ring 0 t.capacity None;
  t.next <- 0;
  t.count <- 0

(* --- registry ------------------------------------------------------- *)

(* Registration through a child hub lands in the parent registry, so
   per-node components built against their node's hub keep exporting
   into the one cluster-wide metrics view. *)
let register t name m =
  let t = root t in
  if not (Hashtbl.mem t.registry name) then t.names <- name :: t.names;
  Hashtbl.replace t.registry name m

let counter t name =
  match Hashtbl.find_opt (root t).registry name with
  | Some (Counter c) -> c
  | _ ->
    let c = Stats.Counter.create () in
    register t name (Counter c);
    c

let gauge t name f = register t name (Gauge f)

let histogram ?(buckets = default_ms_buckets) t name =
  match Hashtbl.find_opt (root t).registry name with
  | Some (Histogram h) -> h
  | _ ->
    let h = Stats.Histogram.create ~buckets in
    register t name (Histogram h);
    h

let find_metric t name = Hashtbl.find_opt (root t).registry name

let metrics t =
  let t = root t in
  List.rev_map (fun name -> (name, Hashtbl.find t.registry name)) t.names

(* --- rendering ------------------------------------------------------ *)

let type_name = function
  | Token_rx _ -> "token_rx"
  | Token_tx _ -> "token_tx"
  | Token_copy_rx _ -> "token_copy_rx"
  | Token_retransmit _ -> "token_retransmit"
  | Token_loss _ -> "token_loss"
  | Token_hold _ -> "token_hold"
  | Token_release _ -> "token_release"
  | Msg_tx _ -> "msg_tx"
  | Msg_deliver _ -> "msg_deliver"
  | Msg_originate _ -> "msg_originate"
  | Msg_defer _ -> "msg_defer"
  | Msg_ordered _ -> "msg_ordered"
  | Packet_send _ -> "packet_send"
  | Packet_recv _ -> "packet_recv"
  | Dup_drop _ -> "dup_drop"
  | Rtr_request _ -> "rtr_request"
  | Rtr_serve _ -> "rtr_serve"
  | Problem_incr _ -> "problem_incr"
  | Problem_decay _ -> "problem_decay"
  | Problem_threshold _ -> "problem_threshold"
  | Recv_lag _ -> "recv_lag"
  | Net_fault_marked _ -> "net_fault_marked"
  | Net_condemned _ -> "net_condemned"
  | Net_probation _ -> "net_probation"
  | Net_reinstated _ -> "net_reinstated"
  | Memb_transition _ -> "memb_transition"
  | Ring_installed _ -> "ring_installed"
  | Frame_loss _ -> "frame_loss"
  | Frame_blocked _ -> "frame_blocked"
  | Buffer_drop _ -> "buffer_drop"
  | Net_status _ -> "net_status"
  | Frame_corrupt _ -> "frame_corrupt"
  | Frame_crc_reject _ -> "frame_crc_reject"
  | Frame_decode_reject _ -> "frame_decode_reject"
  | Custom _ -> "custom"

(* Component naming convention (see OBSERVABILITY.md): srp<N> for
   single-ring protocol events at node N, rrp<N> for replication-layer
   events, memb<N> for membership, net<I> for network I. *)
let component_of = function
  | Token_rx { node; _ } | Token_tx { node; _ } | Token_retransmit { node; _ }
  | Token_loss { node; _ } | Msg_tx { node; _ } | Msg_deliver { node; _ }
  | Msg_originate { node; _ } | Msg_defer { node; _ } | Msg_ordered { node; _ }
  | Dup_drop { node; _ } | Rtr_request { node; _ } | Rtr_serve { node; _ } ->
    Printf.sprintf "srp%d" node
  | Token_copy_rx { node; _ } | Token_hold { node; _ }
  | Token_release { node; _ } | Problem_incr { node; _ }
  | Problem_decay { node; _ } | Problem_threshold { node; _ }
  | Recv_lag { node; _ } | Net_fault_marked { node; _ }
  | Net_condemned { node; _ } | Net_probation { node; _ }
  | Net_reinstated { node; _ }
  | Packet_send { node; _ } | Packet_recv { node; _ } ->
    Printf.sprintf "rrp%d" node
  | Memb_transition { node; _ } | Ring_installed { node; _ } ->
    Printf.sprintf "memb%d" node
  | Frame_loss { net; _ } | Frame_blocked { net; _ } | Net_status { net; _ } ->
    Printf.sprintf "net%d" net
  | Buffer_drop { net; _ } | Frame_corrupt { net; _ }
  | Frame_crc_reject { net; _ } | Frame_decode_reject { net; _ } ->
    Printf.sprintf "net%d" net
  | Custom { component; _ } -> component

(* Which simulated node an event happened on, if any: the key the
   flight recorder ([Recorder]) shards its per-node rings by. Network
   and fabric events that are not tied to a receiving NIC — losses,
   blocks, in-flight corruption, status changes — have no node. *)
let node_of_event = function
  | Token_rx { node; _ } | Token_tx { node; _ } | Token_copy_rx { node; _ }
  | Token_retransmit { node; _ } | Token_loss { node; _ }
  | Token_hold { node; _ } | Token_release { node; _ } | Msg_tx { node; _ }
  | Msg_deliver { node; _ } | Msg_originate { node; _ } | Msg_defer { node; _ }
  | Msg_ordered { node; _ } | Packet_send { node; _ } | Packet_recv { node; _ }
  | Dup_drop { node; _ } | Rtr_request { node; _ } | Rtr_serve { node; _ }
  | Problem_incr { node; _ } | Problem_decay { node; _ }
  | Problem_threshold { node; _ } | Recv_lag { node; _ }
  | Net_fault_marked { node; _ } | Net_condemned { node; _ }
  | Net_probation { node; _ } | Net_reinstated { node; _ }
  | Memb_transition { node; _ }
  | Ring_installed { node; _ } | Buffer_drop { node; _ }
  | Frame_crc_reject { node; _ } | Frame_decode_reject { node; _ } ->
    Some node
  | Frame_loss _ | Frame_blocked _ | Net_status _ | Frame_corrupt _ | Custom _
    ->
    None

let pp_tok ppf (tk : token_info) =
  Format.fprintf ppf "ring=%d rot=%d hop=%d seq=%d" tk.ring_id tk.rotation
    tk.hops tk.seq

let trigger_name = function
  | Release_timer -> "timer"
  | Release_caught_up -> "caught-up"

let message_of ev =
  Format.asprintf "%t"
    (fun ppf ->
      match ev with
      | Token_rx { tok; _ } -> Format.fprintf ppf "token rx (%a)" pp_tok tok
      | Token_tx { tok; rtr_len; _ } ->
        Format.fprintf ppf "token tx (%a rtr=%d)" pp_tok tok rtr_len
      | Token_copy_rx { net; tok; _ } ->
        Format.fprintf ppf "token copy on net%d (%a)" net pp_tok tok
      | Token_retransmit { tok; _ } ->
        Format.fprintf ppf "token retransmit (%a)" pp_tok tok
      | Token_loss { ring_id; _ } ->
        Format.fprintf ppf "token loss timeout (ring=%d)" ring_id
      | Token_hold { tok; aru; _ } ->
        Format.fprintf ppf "token held (%a aru=%d)" pp_tok tok aru
      | Token_release { ring_id; trigger; _ } ->
        Format.fprintf ppf "token released (ring=%d by %s)" ring_id
          (trigger_name trigger)
      | Msg_tx { seq; bytes; _ } ->
        Format.fprintf ppf "packet tx seq=%d bytes=%d" seq bytes
      | Msg_deliver { origin; tid; bytes; _ } ->
        Format.fprintf ppf "deliver origin=N%d tid=%d bytes=%d" origin tid bytes
      | Msg_originate { tid; bytes; safe; _ } ->
        Format.fprintf ppf "originate tid=%d bytes=%d%s" tid bytes
          (if safe then " safe" else "")
      | Msg_defer { tid; pending; _ } ->
        Format.fprintf ppf "flow defer tid=%d pending=%d" tid pending
      | Msg_ordered { tid; ring_id; seq; frag; frags; _ } ->
        Format.fprintf ppf "ordered tid=%d ring=%d seq=%d frag=%d/%d" tid
          ring_id seq frag frags
      | Packet_send { net; ring_id; seq; _ } ->
        Format.fprintf ppf "packet send on net%d (ring=%d seq=%d)" net ring_id
          seq
      | Packet_recv { net; ring_id; seq; sender; _ } ->
        Format.fprintf ppf "packet recv on net%d (ring=%d seq=%d from N%d)" net
          ring_id seq sender
      | Dup_drop { kind; seq; _ } ->
        Format.fprintf ppf "duplicate %s dropped (seq=%d)"
          (match kind with Drop_token -> "token" | Drop_packet -> "packet")
          seq
      | Rtr_request { count; low; high; _ } ->
        Format.fprintf ppf "rtr request count=%d range=[%d..%d]" count low high
      | Rtr_serve { seq; _ } -> Format.fprintf ppf "rtr serve seq=%d" seq
      | Problem_incr { net; count; _ } ->
        Format.fprintf ppf "problemCounter[net%d] -> %d" net count
      | Problem_decay { net; count; _ } ->
        Format.fprintf ppf "problemCounter[net%d] decayed -> %d" net count
      | Problem_threshold { net; count; threshold; _ } ->
        Format.fprintf ppf "problemCounter[net%d]=%d crossed threshold=%d" net
          count threshold
      | Recv_lag { net; behind; source; _ } ->
        Format.fprintf ppf "recvCount lag on net%d: %d behind (%s)" net behind
          source
      | Net_fault_marked { net; evidence; _ } ->
        Format.fprintf ppf "marked net%d faulty: %s" net evidence
      | Net_condemned { net; flaps; _ } ->
        Format.fprintf ppf "net%d condemned (flaps=%d)" net flaps
      | Net_probation { net; attempt; _ } ->
        Format.fprintf ppf "net%d on probation (attempt=%d)" net attempt
      | Net_reinstated { net; rotations; _ } ->
        Format.fprintf ppf "net%d reinstated after %d clean rotations" net
          rotations
      | Memb_transition { phase; ring_id; detail; _ } ->
        Format.fprintf ppf "-> %s (ring=%d): %s" phase ring_id detail
      | Ring_installed { ring_id; members; _ } ->
        Format.fprintf ppf "installed ring %d (%d members)" ring_id members
      | Frame_loss { src; _ } -> Format.fprintf ppf "frame lost (src=N%d)" src
      | Frame_blocked { src; dst; _ } ->
        Format.fprintf ppf "frame blocked (N%d -> N%d)" src dst
      | Buffer_drop { bytes; _ } ->
        Format.fprintf ppf "recv buffer overflow, dropped %d bytes" bytes
      | Net_status { status; _ } -> Format.fprintf ppf "status: %s" status
      | Frame_corrupt { src; kind; _ } ->
        Format.fprintf ppf "frame corrupted in flight (src=N%d, %s)" src kind
      | Frame_crc_reject { node; src; _ } ->
        Format.fprintf ppf "CRC reject at N%d (src=N%d)" node src
      | Frame_decode_reject { node; src; error; _ } ->
        Format.fprintf ppf "decode reject at N%d (src=N%d): %s" node src error
      | Custom { message; _ } -> Format.pp_print_string ppf message)

let pp_event ppf ev =
  Format.fprintf ppf "%-10s %s" (component_of ev) (message_of ev)

let pp_entry ppf e =
  Format.fprintf ppf "[%a] %a" Vtime.pp e.time pp_event e.event

(* --- JSONL export --------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Flat field list per event; every line carries t_ns + type. *)
let fields_of_event ev =
  let i k v = (k, string_of_int v) in
  let s k v = (k, Printf.sprintf "\"%s\"" (json_escape v)) in
  let tokf (tk : token_info) =
    [ i "ring_id" tk.ring_id; i "seq" tk.seq; i "rotation" tk.rotation;
      i "hops" tk.hops ]
  in
  match ev with
  | Token_rx { node; tok } -> i "node" node :: tokf tok
  | Token_tx { node; tok; rtr_len } ->
    (i "node" node :: tokf tok) @ [ i "rtr_len" rtr_len ]
  | Token_copy_rx { node; net; tok } ->
    i "node" node :: i "net" net :: tokf tok
  | Token_retransmit { node; tok } -> i "node" node :: tokf tok
  | Token_loss { node; ring_id } -> [ i "node" node; i "ring_id" ring_id ]
  | Token_hold { node; tok; aru } ->
    (i "node" node :: tokf tok) @ [ i "aru" aru ]
  | Token_release { node; ring_id; trigger } ->
    [ i "node" node; i "ring_id" ring_id; s "trigger" (trigger_name trigger) ]
  | Msg_tx { node; seq; bytes } -> [ i "node" node; i "seq" seq; i "bytes" bytes ]
  | Msg_deliver { node; origin; tid; bytes } ->
    [ i "node" node; i "origin" origin; i "tid" tid; i "bytes" bytes ]
  | Msg_originate { node; tid; bytes; safe } ->
    [ i "node" node; i "tid" tid; i "bytes" bytes;
      ("safe", if safe then "true" else "false") ]
  | Msg_defer { node; tid; pending } ->
    [ i "node" node; i "tid" tid; i "pending" pending ]
  | Msg_ordered { node; tid; ring_id; seq; frag; frags } ->
    [ i "node" node; i "tid" tid; i "ring_id" ring_id; i "seq" seq;
      i "frag" frag; i "frags" frags ]
  | Packet_send { node; net; ring_id; seq } ->
    [ i "node" node; i "net" net; i "ring_id" ring_id; i "seq" seq ]
  | Packet_recv { node; net; ring_id; seq; sender } ->
    [ i "node" node; i "net" net; i "ring_id" ring_id; i "seq" seq;
      i "sender" sender ]
  | Dup_drop { node; kind; seq } ->
    [ i "node" node;
      s "kind" (match kind with Drop_token -> "token" | Drop_packet -> "packet");
      i "seq" seq ]
  | Rtr_request { node; count; low; high } ->
    [ i "node" node; i "count" count; i "low" low; i "high" high ]
  | Rtr_serve { node; seq } -> [ i "node" node; i "seq" seq ]
  | Problem_incr { node; net; count } | Problem_decay { node; net; count } ->
    [ i "node" node; i "net" net; i "count" count ]
  | Problem_threshold { node; net; count; threshold } ->
    [ i "node" node; i "net" net; i "count" count; i "threshold" threshold ]
  | Recv_lag { node; net; behind; source } ->
    [ i "node" node; i "net" net; i "behind" behind; s "source" source ]
  | Net_fault_marked { node; net; evidence } ->
    [ i "node" node; i "net" net; s "evidence" evidence ]
  | Net_condemned { node; net; flaps } ->
    [ i "node" node; i "net" net; i "flaps" flaps ]
  | Net_probation { node; net; attempt } ->
    [ i "node" node; i "net" net; i "attempt" attempt ]
  | Net_reinstated { node; net; rotations } ->
    [ i "node" node; i "net" net; i "rotations" rotations ]
  | Memb_transition { node; phase; ring_id; detail } ->
    [ i "node" node; s "phase" phase; i "ring_id" ring_id; s "detail" detail ]
  | Ring_installed { node; ring_id; members } ->
    [ i "node" node; i "ring_id" ring_id; i "members" members ]
  | Frame_loss { net; src } -> [ i "net" net; i "src" src ]
  | Frame_blocked { net; src; dst } -> [ i "net" net; i "src" src; i "dst" dst ]
  | Buffer_drop { node; net; bytes } ->
    [ i "node" node; i "net" net; i "bytes" bytes ]
  | Net_status { net; status } -> [ i "net" net; s "status" status ]
  | Frame_corrupt { net; src; kind } ->
    [ i "net" net; i "src" src; s "kind" kind ]
  | Frame_crc_reject { node; net; src } ->
    [ i "node" node; i "net" net; i "src" src ]
  | Frame_decode_reject { node; net; src; error } ->
    [ i "node" node; i "net" net; i "src" src; s "error" error ]
  | Custom { component; message } ->
    [ s "component" component; s "message" message ]

let json_of_event time ev =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Printf.sprintf "{\"t_ns\":%d,\"type\":\"%s\"" time (type_name ev));
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf ",\"%s\":%s" k v))
    (fields_of_event ev);
  Buffer.add_char buf '}';
  Buffer.contents buf

let jsonl_sink oc time ev =
  output_string oc (json_of_event time ev);
  output_char oc '\n'

let write_jsonl oc t =
  Seq.iter (fun e -> jsonl_sink oc e.time e.event) (events_seq t)

(* --- metrics export ------------------------------------------------- *)

let metrics_json t =
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "{\n  \"schema\": \"totem-metrics/v1\",\n  \"metrics\": [\n";
  let ms = metrics t in
  List.iteri
    (fun i (name, m) ->
      pf "    {\"name\": \"%s\", " (json_escape name);
      (match m with
      | Counter c -> pf "\"type\": \"counter\", \"value\": %d" (Stats.Counter.value c)
      | Gauge f -> pf "\"type\": \"gauge\", \"value\": %.6g" (f ())
      | Histogram h ->
        pf "\"type\": \"histogram\", \"count\": %d, \"buckets\": ["
          (Stats.Histogram.count h);
        let first = ref true in
        Array.iter
          (fun (le, n) ->
            if n > 0 then begin
              if not !first then pf ", ";
              first := false;
              if le = infinity then pf "{\"le\": \"inf\", \"n\": %d}" n
              else pf "{\"le\": %.6g, \"n\": %d}" le n
            end)
          (Stats.Histogram.dump h);
        pf "]");
      pf "}%s\n" (if i < List.length ms - 1 then "," else ""))
    ms;
  pf "  ]\n}\n";
  Buffer.contents buf

let pp_metrics ppf t =
  Format.fprintf ppf "%-40s %12s@." "metric" "value";
  List.iter
    (fun (name, m) ->
      match m with
      | Counter c ->
        Format.fprintf ppf "%-40s %12d@." name (Stats.Counter.value c)
      | Gauge f -> Format.fprintf ppf "%-40s %12.6g@." name (f ())
      | Histogram h ->
        Format.fprintf ppf "%-40s %12s %a@." name
          (Printf.sprintf "n=%d" (Stats.Histogram.count h))
          Stats.Histogram.pp h)
    (metrics t)

(* --- token-rotation span view --------------------------------------- *)

type span = {
  sp_ring_id : int;
  sp_rotation : int;
  sp_start : Vtime.t;
  sp_end : Vtime.t;
  sp_visits : int;
  sp_subs : entry list;  (* retransmit / hold / stall activity, oldest first *)
}

let spans_of_events entries =
  (* Group the stream into one span per (ring, rotation), delimited by
     the token-visit events that carry the rotation counter. Sub-events
     (retransmissions, holds, losses, problem counters) between two
     rotation boundaries belong to the enclosing span. *)
  let spans = ref [] in
  let current = ref None in
  let flush till =
    match !current with
    | Some (ring_id, rot, t0, t1, visits, subs) ->
      let t1 = match till with Some t -> t | None -> t1 in
      spans :=
        {
          sp_ring_id = ring_id;
          sp_rotation = rot;
          sp_start = t0;
          sp_end = t1;
          sp_visits = visits;
          sp_subs = List.rev subs;
        }
        :: !spans;
      current := None
    | None -> ()
  in
  List.iter
    (fun e ->
      let boundary ring_id rot =
        match !current with
        | Some (r, ro, t0, _, visits, subs) when r = ring_id && ro = rot ->
          current := Some (r, ro, t0, e.time, visits + 1, subs)
        | Some _ ->
          flush (Some e.time);
          current := Some (ring_id, rot, e.time, e.time, 1, [])
        | None -> current := Some (ring_id, rot, e.time, e.time, 1, [])
      in
      match e.event with
      | Token_rx { tok; _ } -> boundary tok.ring_id tok.rotation
      | Token_retransmit _ | Token_loss _ | Token_hold _ | Token_release _
      | Rtr_request _ | Rtr_serve _ | Problem_incr _ | Problem_threshold _
      | Dup_drop { kind = Drop_token; _ } -> (
        match !current with
        | Some (r, ro, t0, _, visits, subs) ->
          current := Some (r, ro, t0, e.time, visits, e :: subs)
        | None -> ())
      | _ -> ())
    entries;
  flush None;
  List.rev !spans

let token_spans t = spans_of_events (events t)

let pp_spans ppf spans =
  match spans with
  | [] -> Format.fprintf ppf "(no token rotations recorded)@."
  | _ ->
    let dur sp = Vtime.sub sp.sp_end sp.sp_start in
    let max_dur = List.fold_left (fun acc sp -> max acc (dur sp)) 1 spans in
    Format.fprintf ppf
      "token rotation spans (virtual time; bar = rotation duration):@.";
    let last_ring = ref (-1) in
    List.iter
      (fun sp ->
        if sp.sp_ring_id <> !last_ring then begin
          last_ring := sp.sp_ring_id;
          Format.fprintf ppf "ring %d:@." sp.sp_ring_id
        end;
        let width = 30 in
        let filled =
          max 1 (dur sp * width / max_dur)
        in
        Format.fprintf ppf "  rot %5d  %8.3fms .. %8.3fms  %8.3fms |%s%s| visits=%d@."
          sp.sp_rotation
          (Vtime.to_float_ms sp.sp_start)
          (Vtime.to_float_ms sp.sp_end)
          (Vtime.to_float_ms (dur sp))
          (String.make (min filled width) '#')
          (String.make (width - min filled width) ' ')
          sp.sp_visits;
        List.iter
          (fun e ->
            Format.fprintf ppf "      +%8.3fms %a@."
              (Vtime.to_float_ms (Vtime.sub e.time sp.sp_start))
              pp_event e.event)
          sp.sp_subs)
      spans
