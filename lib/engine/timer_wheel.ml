type 'a entry = {
  time : Vtime.t;
  tie : int;
  value : 'a;
  mutable dead : bool;
}

type handle = H : 'a entry -> handle

type 'a t = {
  buckets : 'a entry list array;
  mask : int;
  shift : int;
  mutable live : int;
  mutable dead_count : int;
  (* The earliest live entry, or [None] when unknown (empty, or the
     cached minimum was popped/cancelled). Recomputed lazily by a full
     bucket scan; the wheel holds tens of timers, so the scan is cheap
     and rare relative to push/cancel traffic. *)
  mutable cached_min : 'a entry option;
}

let default_shift = 17 (* 131 us buckets: well under any protocol timeout *)
let default_buckets = 64

let create ?(shift = default_shift) ?(buckets = default_buckets) () =
  if buckets <= 0 || buckets land (buckets - 1) <> 0 then
    invalid_arg "Timer_wheel.create: buckets must be a positive power of two";
  {
    buckets = Array.make buckets [];
    mask = buckets - 1;
    shift;
    live = 0;
    dead_count = 0;
    cached_min = None;
  }

let length t = t.live
let is_empty t = t.live = 0

let bucket_of t time = (time lsr t.shift) land t.mask

let precedes a b =
  a.time < b.time || (a.time = b.time && a.tie < b.tie)

(* Physically drop dead entries once they outnumber the live ones, so
   cancel churn cannot grow the buckets without bound. *)
let sweep t =
  for i = 0 to t.mask do
    t.buckets.(i) <- List.filter (fun e -> not e.dead) t.buckets.(i)
  done;
  t.dead_count <- 0

let push t ~time ~tie value =
  let entry = { time; tie; value; dead = false } in
  let b = bucket_of t time in
  t.buckets.(b) <- entry :: t.buckets.(b);
  t.live <- t.live + 1;
  (match t.cached_min with
  | Some m when precedes m entry -> ()
  | Some _ -> t.cached_min <- Some entry
  | None -> if t.live = 1 then t.cached_min <- Some entry);
  H entry

let cancel t (H entry) =
  if entry.dead then false
  else begin
    entry.dead <- true;
    t.live <- t.live - 1;
    t.dead_count <- t.dead_count + 1;
    (match t.cached_min with
    | Some m when m.time = entry.time && m.tie = entry.tie ->
      t.cached_min <- None
    | _ -> ());
    if t.dead_count > t.live && t.dead_count > 32 then sweep t;
    true
  end

let min_entry t =
  match t.cached_min with
  | Some m when not m.dead -> Some m
  | _ ->
    if t.live = 0 then None
    else begin
      let best = ref None in
      for i = 0 to t.mask do
        List.iter
          (fun e ->
            if not e.dead then
              match !best with
              | Some b when precedes b e -> ()
              | _ -> best := Some e)
          t.buckets.(i)
      done;
      t.cached_min <- !best;
      !best
    end

let peek_key t =
  match min_entry t with
  | None -> None
  | Some e -> Some (e.time, e.tie)

let peek_time t = Option.map fst (peek_key t)

let pop_min t =
  match min_entry t with
  | None -> None
  | Some e ->
    let b = bucket_of t e.time in
    t.buckets.(b) <- List.filter (fun x -> x != e) t.buckets.(b);
    e.dead <- true;
    t.live <- t.live - 1;
    t.cached_min <- None;
    Some (e.time, e.value)
