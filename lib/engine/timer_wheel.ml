type 'a entry = {
  time : Vtime.t;
  tie : int;
  value : 'a;
  mutable dead : bool;
}

type handle = H : 'a entry -> handle

type 'a t = {
  buckets : 'a entry list array;
  mask : int;
  shift : int;
  mutable live : int;
  mutable dead_count : int;
  (* The earliest live entry, or [None] when unknown (empty, or the
     cached minimum was popped/cancelled). Recomputed lazily by a full
     bucket scan; the wheel holds tens of timers, so the scan is cheap
     and rare relative to push/cancel traffic. *)
  mutable cached_min : 'a entry option;
  (* Flat lower bound on the earliest live time ([Vtime.never] when
     empty): exact while [cached_min] is valid, and never above the
     true minimum while it is not (a popped or cancelled minimum leaves
     its own — earlier — time behind until [min_entry] recomputes). The
     exchange's per-window scans read this as one load and tolerate the
     conservative staleness. *)
  mutable min_time : Vtime.t;
}

let default_shift = 17 (* 131 us buckets: well under any protocol timeout *)
let default_buckets = 64

let create ?(shift = default_shift) ?(buckets = default_buckets) () =
  if buckets <= 0 || buckets land (buckets - 1) <> 0 then
    invalid_arg "Timer_wheel.create: buckets must be a positive power of two";
  {
    buckets = Array.make buckets [];
    mask = buckets - 1;
    shift;
    live = 0;
    dead_count = 0;
    cached_min = None;
    min_time = Vtime.never;
  }

let length t = t.live
let is_empty t = t.live = 0

let bucket_of t time = (time lsr t.shift) land t.mask

let precedes a b =
  a.time < b.time || (a.time = b.time && a.tie < b.tie)

(* Physically drop dead entries once they outnumber the live ones, so
   cancel churn cannot grow the buckets without bound. *)
let sweep t =
  for i = 0 to t.mask do
    t.buckets.(i) <- List.filter (fun e -> not e.dead) t.buckets.(i)
  done;
  t.dead_count <- 0

let push t ~time ~tie value =
  let entry = { time; tie; value; dead = false } in
  let b = bucket_of t time in
  t.buckets.(b) <- entry :: t.buckets.(b);
  t.live <- t.live + 1;
  (match t.cached_min with
  | Some m when precedes m entry -> ()
  | Some _ ->
    t.cached_min <- Some entry;
    t.min_time <- time
  | None ->
    if t.live = 1 then begin
      t.cached_min <- Some entry;
      t.min_time <- time
    end
    else if Vtime.(time < t.min_time) then t.min_time <- time);
  H entry

let cancel t (H entry) =
  if entry.dead then false
  else begin
    entry.dead <- true;
    t.live <- t.live - 1;
    t.dead_count <- t.dead_count + 1;
    (match t.cached_min with
    | Some m when m.time = entry.time && m.tie = entry.tie ->
      t.cached_min <- None
    | _ -> ());
    if t.dead_count > t.live && t.dead_count > 32 then sweep t;
    true
  end

let min_entry t =
  match t.cached_min with
  | Some m when not m.dead -> Some m
  | _ ->
    if t.live = 0 then begin
      t.min_time <- Vtime.never;
      None
    end
    else begin
      let best = ref None in
      for i = 0 to t.mask do
        List.iter
          (fun e ->
            if not e.dead then
              match !best with
              | Some b when precedes b e -> ()
              | _ -> best := Some e)
          t.buckets.(i)
      done;
      t.cached_min <- !best;
      t.min_time <- (match !best with None -> Vtime.never | Some e -> e.time);
      !best
    end

let peek_key t =
  match min_entry t with
  | None -> None
  | Some e -> Some (e.time, e.tie)

let peek_time t = Option.map fst (peek_key t)

(* Allocation-free peek: on the cached-hit path (the overwhelmingly
   common one between structural changes) this reads a field and
   returns an int. *)
(* One flat load: see [min_time]. *)
let[@inline] peek_time_raw t = t.min_time

let pop_min t =
  match min_entry t with
  | None -> None
  | Some e ->
    let b = bucket_of t e.time in
    t.buckets.(b) <- List.filter (fun x -> x != e) t.buckets.(b);
    e.dead <- true;
    t.live <- t.live - 1;
    t.cached_min <- None;
    Some (e.time, e.value)
