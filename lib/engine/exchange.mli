(** Conservative parallel discrete-event exchange.

    Runs a coordinator {!Sim} plus one per-node {!Sim} in
    lookahead-bounded windows; node partitions inside one window run in
    parallel on OCaml 5 domains, and cross-partition work (frame sends,
    telemetry) is exchanged at barrier points by registered hooks.

    The lookahead must not exceed the minimum cross-partition delivery
    latency: then a frame sent inside a window at [s >= h0] arrives at
    [>= s + latency >= h1], so barrier-scheduled deliveries never land
    in any partition's past.

    Determinism: partitioning is structural (one partition per node
    regardless of [domains]), partitions are pure (see {!Partition}),
    and hooks replay cross-partition work in canonical
    (time, source, seq) order — so results are bitwise-identical for
    every [domains >= 1] and invariant under window boundaries. See
    DESIGN.md §11 for the full argument. *)

type t

val create :
  ?domains:int ->
  lookahead:Vtime.t ->
  global:Sim.t ->
  parts:Sim.t array ->
  unit ->
  t
(** [create ~domains ~lookahead ~global ~parts ()] builds an exchange
    over the coordinator [global] and per-node [parts]. [domains]
    (default 1) is the number of OS domains used for the parallel
    section; [1] runs partitions inline with no spawning.
    @raise Invalid_argument if [lookahead <= 0] or [domains < 1]. *)

val add_barrier_hook :
  t -> ?next:(unit -> Vtime.t option) -> (Vtime.t -> unit) -> unit
(** [add_barrier_hook t ~next flush] registers a barrier hook, run
    after every window in registration order. [flush h1] must hand all
    buffered cross-partition work over (scheduling deliveries, draining
    telemetry); [next ()] reports the earliest timestamp of work the
    hook is still holding, so idle-jumps cannot skip over it. Hooks may
    rewind the coordinator clock via [Sim.unsafe_set_clock] to replay
    items at their own timestamps; the exchange re-normalizes it. *)

val run_until : t -> Vtime.t -> unit
(** Advances the whole system to [limit]: all partitions have processed
    every event [<= limit], all hooks have flushed, and the coordinator
    clock reads [limit]. Worker-domain exceptions are re-raised (lowest
    partition index first). *)

val horizon : t -> Vtime.t
(** The barrier the system has fully reached. *)

val lookahead : t -> Vtime.t
val domains : t -> int

val events_processed : t -> int
(** Total events processed across the coordinator and all node
    partitions. *)
