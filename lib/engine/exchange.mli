(** Conservative parallel discrete-event exchange.

    Runs a coordinator {!Sim} plus one per-node {!Sim} in
    lookahead-bounded windows; node partitions inside one window run in
    parallel on OCaml 5 domains, and cross-partition work (frame sends,
    telemetry) is exchanged at barrier points by registered hooks.

    The lookahead must not exceed the minimum cross-partition delivery
    latency: then a frame sent inside a window at [s >= h0] arrives at
    [>= s + latency >= h1], so barrier-scheduled deliveries never land
    in any partition's past.

    Coordinator events are window boundaries: a window never extends
    past the coordinator's next pending event, so a coordinator event
    at [tg] always runs after every partition event [<= tg] and before
    any partition passes [tg] — a canonical, time-ordered interleaving
    that no window geometry can change.

    Window batching ([batching:true]) amortizes barrier overhead
    without changing results: barriers where no hook holds work skip
    the flush calls, and when exactly one partition owns every event
    within [max_horizon_factor] lookaheads it runs inline under a cap
    that shrinks the moment it buffers cross-partition work. See
    DESIGN.md §13 for the safety argument.

    Determinism: partitioning is structural (one partition per node
    regardless of [domains]), partitions are pure (see {!Partition}),
    and hooks replay cross-partition work in canonical
    (time, source, seq) order — so results are bitwise-identical for
    every [domains >= 1], with batching on or off, and invariant under
    window boundaries. *)

type t

type stats = {
  mutable windows_run : int;  (** barriers executed *)
  mutable windows_batched : int;  (** barriers whose flush was skipped *)
  mutable windows_widened : int;
      (** adaptive solo windows wider than one lookahead *)
  mutable max_window : Vtime.t;  (** widest window so far *)
}

val create :
  ?domains:int ->
  ?batching:bool ->
  ?max_horizon_factor:int ->
  lookahead:Vtime.t ->
  global:Sim.t ->
  parts:Sim.t array ->
  unit ->
  t
(** [create ~domains ~lookahead ~global ~parts ()] builds an exchange
    over the coordinator [global] and per-node [parts]. [domains]
    (default 1) is the number of OS domains used for the parallel
    section; [1] runs partitions inline with no spawning. [batching]
    (default false) enables skip-flush barriers and adaptive solo
    windows up to [max_horizon_factor] (default 8) lookaheads wide.
    @raise Invalid_argument if [lookahead <= 0], [domains < 1] or
    [max_horizon_factor < 1]. *)

val add_barrier_hook :
  t -> ?next:(unit -> Vtime.t) -> (Vtime.t -> unit) -> unit
(** [add_barrier_hook t ~next flush] registers a barrier hook, run
    after every window in registration order. [flush h1] must hand all
    buffered cross-partition work over (scheduling deliveries, draining
    telemetry); [next ()] reports the earliest timestamp of work the
    hook is still holding — [Vtime.never] when it holds none (default:
    always [Vtime.never]) — so idle-jumps cannot skip over it, and,
    with batching on, so barriers know whether a flush can be skipped
    and adaptive windows know when to shrink. [next] is called on the
    hottest paths (once per window, once per event inside an adaptive
    solo window) and must be cheap and allocation-free. A hook whose
    [next] under-reports (returns [Vtime.never] while holding work)
    breaks both.
    Hooks may rewind the coordinator clock via [Sim.unsafe_set_clock]
    to replay items at their own timestamps; the exchange
    re-normalizes it. *)

val run_until : t -> Vtime.t -> unit
(** Advances the whole system to [limit]: all partitions have processed
    every event [<= limit], all hooks have flushed, and the coordinator
    clock reads [limit]. Worker-domain exceptions are re-raised (lowest
    partition index first). *)

val shutdown : t -> unit
(** Joins the worker-domain pool, if one was spawned. Idempotent; the
    pool respawns on the next multi-domain [run_until], so a shut-down
    exchange remains usable. Call on cluster teardown so no domains
    outlive the simulation. *)

val live_workers : t -> int
(** Number of live worker domains (0 after {!shutdown} or before the
    first multi-domain window). *)

val horizon : t -> Vtime.t
(** The barrier the system has fully reached. *)

val lookahead : t -> Vtime.t
val domains : t -> int

val batching : t -> bool
val max_horizon_factor : t -> int

val stats : t -> stats
(** Snapshot of the window counters (copies; safe to retain). *)

val events_processed : t -> int
(** Total events processed across the coordinator and all node
    partitions. *)
