(** Lightweight event tracing (compatibility layer).

    Historically a standalone ring of [(time, component, message)]
    strings; now a thin view over {!Telemetry}: a [Trace.t] is the
    telemetry hub itself, string emits become [Telemetry.Custom]
    events, and [records] renders the shared structured event ring —
    including events emitted by instrumented protocol components — in
    the legacy string form. Disabled by default so that benchmark runs
    pay only a branch. *)

type t = Telemetry.t
(** A trace is the underlying telemetry hub; pass it to
    [Telemetry] functions for structured access. *)

type record = {
  time : Vtime.t;
  component : string;
  message : string;
}

val create : ?capacity:int -> Sim.t -> t
(** Default capacity is 4096 records; older records are overwritten.
    @raise Invalid_argument if [capacity <= 0]. *)

val enable : t -> unit
val disable : t -> unit
val enabled : t -> bool

val emit : t -> component:string -> string -> unit
(** Records a message if enabled; otherwise free. *)

val emitf :
  t -> component:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formatted variant; the format arguments are only evaluated when
    tracing is enabled. *)

val records : t -> record list
(** Oldest first. *)

val to_seq : t -> record Seq.t
(** Allocation-free iteration, oldest first. *)

val find : t -> component:string -> substring:string -> record option
(** First record from [component] whose message contains [substring]. *)

val dump : Format.formatter -> t -> unit

val clear : t -> unit
