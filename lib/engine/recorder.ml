(* Flight recorder: a bounded per-node ring of the most recent
   telemetry events, cheap enough to leave attached for whole chaos
   campaigns so that an invariant violation arrives with the exact
   event history that preceded it.

   Cost model: one Telemetry.subscribe observer; each event is O(1) —
   an array store plus one entry record — and nothing allocates when no
   events flow (the rings are preallocated). Attaching a recorder makes
   the hub [active], so emit sites start constructing events; like
   every subscriber it is read-only with respect to protocol state, so
   the simulation stays bitwise identical (OBSERVABILITY.md invariant
   2). Under [sim_domains >= 1] the recorder subscribes on the root hub
   and therefore sees the canonical (time, node, seq) drain order —
   dumps are identical for every domain count. *)

type ring = {
  slots : Telemetry.entry option array;
  mutable next : int;
  mutable count : int;
}

let ring_create capacity = { slots = Array.make capacity None; next = 0; count = 0 }

let ring_push r e =
  let cap = Array.length r.slots in
  r.slots.(r.next) <- Some e;
  r.next <- (r.next + 1) mod cap;
  r.count <- min (r.count + 1) cap

let ring_entries r =
  let cap = Array.length r.slots in
  let start = (r.next - r.count + cap) mod cap in
  let out = ref [] in
  for i = r.count - 1 downto 0 do
    match r.slots.((start + i) mod cap) with
    | Some e -> out := e :: !out
    | None -> ()
  done;
  !out

type t = {
  capacity : int;
  nodes : ring array;
  fabric : ring; (* events with no owning node (losses, corruption, ...) *)
  tel : Telemetry.t;
  mutable sub : Telemetry.subscription option;
}

let record t time event =
  let entry = { Telemetry.time; event } in
  match Telemetry.node_of_event event with
  | Some node when node >= 0 && node < Array.length t.nodes ->
    ring_push t.nodes.(node) entry
  | _ -> ring_push t.fabric entry

let attach ?(capacity = 64) ~nodes tel =
  if capacity <= 0 then invalid_arg "Recorder.attach: capacity must be positive";
  if nodes <= 0 then invalid_arg "Recorder.attach: nodes must be positive";
  let t =
    {
      capacity;
      nodes = Array.init nodes (fun _ -> ring_create capacity);
      fabric = ring_create capacity;
      tel;
      sub = None;
    }
  in
  t.sub <- Some (Telemetry.subscribe tel (record t));
  t

let detach t =
  match t.sub with
  | Some s ->
    Telemetry.unsubscribe t.tel s;
    t.sub <- None
  | None -> ()

let capacity t = t.capacity
let num_nodes t = Array.length t.nodes

let node_history t node =
  if node < 0 || node >= Array.length t.nodes then
    invalid_arg "Recorder.node_history";
  ring_entries t.nodes.(node)

let fabric_history t = ring_entries t.fabric

(* (node, entries) pairs for every non-empty ring, node order, with the
   fabric ring last under key -1 — the shape the chaos counterexample
   serializer embeds. *)
let dump t =
  let out = ref [] in
  if t.fabric.count > 0 then out := (-1, ring_entries t.fabric) :: !out;
  for node = Array.length t.nodes - 1 downto 0 do
    if t.nodes.(node).count > 0 then
      out := (node, ring_entries t.nodes.(node)) :: !out
  done;
  !out

let dump_jsonl t =
  List.map
    (fun (node, entries) ->
      ( node,
        List.map
          (fun (e : Telemetry.entry) -> Telemetry.json_of_event e.time e.event)
          entries ))
    (dump t)

let clear t =
  let reset r =
    Array.fill r.slots 0 (Array.length r.slots) None;
    r.next <- 0;
    r.count <- 0
  in
  Array.iter reset t.nodes;
  reset t.fabric
