(* The pure per-node scheduler: one virtual clock, one event heap, one
   timer wheel, one tie counter. This is the unit the parallel simulator
   core replicates per node — it owns no randomness and no global state,
   so a partition advanced to a horizon is a deterministic function of
   the events fed to it, regardless of which domain ran it.

   One-shot events (frame deliveries, CPU completions) live in the
   heap; cancel/re-arm protocol timers live in the wheel. A single tie
   counter spans both, so events popping from either structure form one
   globally FIFO-stable (time, tie) sequence — run order is identical
   to a single-queue simulator. *)

type t = {
  mutable clock : Vtime.t;
  queue : (unit -> unit) Event_queue.t;
  wheel : (unit -> unit) Timer_wheel.t;
  mutable next_tie : int;
  mutable events : int;
}

type handle =
  | Heap of Event_queue.handle
  | Wheel of Timer_wheel.handle

let create () =
  {
    clock = Vtime.zero;
    queue = Event_queue.create ();
    wheel = Timer_wheel.create ();
    next_tie = 0;
    events = 0;
  }

let now t = t.clock
let events_processed t = t.events

let take_tie t =
  let tie = t.next_tie in
  t.next_tie <- tie + 1;
  tie

let schedule_at t ~time f =
  if Vtime.(time < t.clock) then
    invalid_arg "Partition.schedule_at: time is in the past";
  Heap (Event_queue.push_tie t.queue ~time ~tie:(take_tie t) f)

let schedule t ~delay f =
  if delay < 0 then invalid_arg "Partition.schedule: negative delay";
  schedule_at t ~time:(Vtime.add t.clock delay) f

let schedule_timer t ~delay f =
  if delay < 0 then invalid_arg "Partition.schedule_timer: negative delay";
  let time = Vtime.add t.clock delay in
  Wheel (Timer_wheel.push t.wheel ~time ~tie:(take_tie t) f)

let cancel t = function
  | Heap h -> ignore (Event_queue.cancel t.queue h)
  | Wheel h -> ignore (Timer_wheel.cancel t.wheel h)

(* One combined peek: which structure holds the next event, and when.
   [`Heap] wins ties below the wheel only by tie rank, preserving the
   global FIFO order at equal times. *)
let earliest t =
  match Event_queue.peek_key t.queue, Timer_wheel.peek_key t.wheel with
  | None, None -> `Empty
  | Some (ht, _), None -> `Heap ht
  | None, Some (wt, _) -> `Wheel wt
  | Some (ht, htie), Some (wt, wtie) ->
    if Vtime.(ht < wt) || (ht = wt && htie < wtie) then `Heap ht else `Wheel wt

let next_event_time t =
  match earliest t with
  | `Empty -> None
  | `Heap time | `Wheel time -> Some time

(* Allocation-free peek for the exchange's per-window horizon scan.
   Only the minimum time matters there, never which structure holds it,
   so the tie arbitration of [earliest] is skipped entirely. *)
let[@inline] next_time_raw t =
  Vtime.min
    (Event_queue.peek_time_raw t.queue)
    (Timer_wheel.peek_time_raw t.wheel)

let fire t popped =
  match popped with
  | None -> false
  | Some (time, f) ->
    t.clock <- time;
    t.events <- t.events + 1;
    f ();
    true

let step t =
  match earliest t with
  | `Empty -> false
  | `Heap _ -> fire t (Event_queue.pop t.queue)
  | `Wheel _ -> fire t (Timer_wheel.pop_min t.wheel)

(* Pop and run every event with timestamp <= limit; the clock follows
   the events and is NOT bumped to [limit] at the end. The exchange
   layer drains the coordinator partition this way so the clock always
   reads the time of the event being executed, never a horizon the
   window has not reached. *)
let drain_until t limit =
  let rec loop () =
    match earliest t with
    | `Heap time when Vtime.(time <= limit) ->
      if fire t (Event_queue.pop t.queue) then loop ()
    | `Wheel time when Vtime.(time <= limit) ->
      if fire t (Timer_wheel.pop_min t.wheel) then loop ()
    | `Empty | `Heap _ | `Wheel _ -> ()
  in
  loop ()

let run_until t limit =
  drain_until t limit;
  t.clock <- Vtime.max t.clock limit

(* Pop and run events while the earliest timestamp is within [cap ()],
   re-reading the cap between events. The adaptive solo window in the
   exchange layer runs one partition far past the static lookahead
   bound under a cap that shrinks the moment the partition buffers
   cross-partition work (a frame entering an outbox): re-evaluating the
   cap per pop is what lets the shrink take effect before the next
   event fires. The clock follows the events, as in [drain_until]. *)
let drain_while t ~cap =
  let rec loop () =
    match earliest t with
    | `Heap time when Vtime.(time <= cap ()) ->
      if fire t (Event_queue.pop t.queue) then loop ()
    | `Wheel time when Vtime.(time <= cap ()) ->
      if fire t (Timer_wheel.pop_min t.wheel) then loop ()
    | `Empty | `Heap _ | `Wheel _ -> ()
  in
  loop ()

let run t = while step t do () done

let pending t = Event_queue.length t.queue + Timer_wheel.length t.wheel

(* Exchange-only escape hatch: the coordinator replays buffered
   cross-partition work (merged sends, drained telemetry) with the
   clock set to each item's own timestamp, which can rewind within the
   just-completed window. Never call this from model code. *)
let[@inline] unsafe_set_clock t time = t.clock <- time
