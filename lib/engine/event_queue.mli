(** Priority queue of timestamped events.

    A binary min-heap keyed on [(time, tie)] where [tie] is a strictly
    increasing insertion counter: events scheduled for the same virtual
    time fire in the order they were scheduled. That stability is what
    makes whole-simulation runs replayable.

    Cancellation is lazy, and the heap compacts itself once dead entries
    outnumber live ones, so cancel/re-arm churn cannot grow the heap
    (and hence the per-operation sift cost) without bound. *)

type 'a t

type handle
(** Identifies a scheduled event so it can be cancelled. *)

val create : unit -> 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int
(** Number of live (non-cancelled) events. *)

val physical_size : 'a t -> int
(** Number of array slots in use, cancelled-but-not-yet-collected
    entries included. Exposed so tests can assert that compaction keeps
    the heap bounded under cancel-heavy schedules. *)

val push : 'a t -> time:Vtime.t -> 'a -> handle
(** [push q ~time v] schedules [v] at [time] and returns a handle. The
    tie-break counter is internal: events at equal times pop in push
    order. *)

val push_tie : 'a t -> time:Vtime.t -> tie:int -> 'a -> handle
(** [push_tie q ~time ~tie v] schedules [v] with an explicit tie-break
    rank, for callers (the simulator) that interleave this queue with
    another structure and need one global FIFO order at equal times.
    Mixing [push] and [push_tie] on the same queue is supported: [push]
    always allocates a tie above every tie seen so far. *)

val cancel : 'a t -> handle -> bool
(** [cancel q h] removes the event, returning [false] if it already
    fired or was already cancelled. Cancellation is O(1) (lazy): the
    slot is marked dead and skipped on pop. *)

val pop : 'a t -> (Vtime.t * 'a) option
(** Removes and returns the earliest live event. *)

val peek_time : 'a t -> Vtime.t option
(** Time of the earliest live event without removing it. *)

val peek_key : 'a t -> (Vtime.t * int) option
(** [(time, tie)] of the earliest live event without removing it. *)

val peek_time_raw : 'a t -> Vtime.t
(** {!peek_time} without the option: [Vtime.never] when empty.
    Allocation-free, for hot per-window scans. *)
