type t = int

let zero = 0
let never = max_int
let ns n = n
let us n = n * 1_000
let ms n = n * 1_000_000
let sec n = n * 1_000_000_000
let of_float_sec s = int_of_float (Float.round (s *. 1e9))
let to_float_sec t = float_of_int t /. 1e9
let to_float_ms t = float_of_int t /. 1e6
let add = ( + )
let sub = ( - )
let compare = Int.compare
let[@inline] ( < ) (a : t) b = Stdlib.( < ) a b
let[@inline] ( <= ) (a : t) b = Stdlib.( <= ) a b
let[@inline] ( > ) (a : t) b = Stdlib.( > ) a b
let[@inline] ( >= ) (a : t) b = Stdlib.( >= ) a b
let[@inline] min (a : t) (b : t) = if Stdlib.( <= ) a b then a else b
let[@inline] max (a : t) (b : t) = if Stdlib.( >= ) a b then a else b

let pp ppf t =
  let f = float_of_int (abs t) in
  let sign = if Stdlib.( < ) t 0 then "-" else "" in
  if Stdlib.( < ) f 1e3 then Format.fprintf ppf "%s%dns" sign (abs t)
  else if Stdlib.( < ) f 1e6 then Format.fprintf ppf "%s%.3fus" sign (f /. 1e3)
  else if Stdlib.( < ) f 1e9 then Format.fprintf ppf "%s%.3fms" sign (f /. 1e6)
  else Format.fprintf ppf "%s%.3fs" sign (f /. 1e9)
