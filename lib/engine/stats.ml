module Counter = struct
  type t = { mutable n : int }

  let create () = { n = 0 }
  let incr t = t.n <- t.n + 1
  let add t k = t.n <- t.n + k
  let value t = t.n
  let reset t = t.n <- 0
end

module Summary = struct
  type t = {
    mutable count : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
    mutable total : float;
  }

  let create () =
    { count = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity; total = 0.0 }

  let observe t x =
    t.count <- t.count + 1;
    t.total <- t.total +. x;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.count
  let mean t = if t.count = 0 then 0.0 else t.mean
  let min t = t.min
  let max t = t.max
  let total t = t.total

  let stddev t =
    if t.count < 2 then 0.0 else sqrt (t.m2 /. float_of_int (t.count - 1))

  let reset t =
    t.count <- 0;
    t.mean <- 0.0;
    t.m2 <- 0.0;
    t.min <- infinity;
    t.max <- neg_infinity;
    t.total <- 0.0

  let pp ppf t =
    Format.fprintf ppf "n=%d mean=%.3g min=%.3g max=%.3g sd=%.3g" t.count
      (mean t) t.min t.max (stddev t)
end

module Histogram = struct
  type t = {
    bounds : float array;
    counts : int array; (* length = Array.length bounds + 1; last = overflow *)
    mutable n : int;
  }

  let create ~buckets =
    let ok = ref true in
    for i = 1 to Array.length buckets - 1 do
      if buckets.(i) <= buckets.(i - 1) then ok := false
    done;
    if not !ok then invalid_arg "Histogram.create: bounds must be increasing";
    { bounds = buckets; counts = Array.make (Array.length buckets + 1) 0; n = 0 }

  let bucket_of t x =
    let rec search lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if x <= t.bounds.(mid) then search lo mid else search (mid + 1) hi
    in
    search 0 (Array.length t.bounds)

  let observe t x =
    let i = bucket_of t x in
    t.counts.(i) <- t.counts.(i) + 1;
    t.n <- t.n + 1

  let count t = t.n

  let quantile t q =
    if q < 0.0 || q > 1.0 then invalid_arg "Histogram.quantile";
    if t.n = 0 then nan
    else begin
      let target = q *. float_of_int t.n in
      let acc = ref 0 in
      let result = ref infinity in
      (try
         for i = 0 to Array.length t.counts - 1 do
           acc := !acc + t.counts.(i);
           if float_of_int !acc >= target then begin
             result :=
               (if i < Array.length t.bounds then t.bounds.(i) else infinity);
             raise Exit
           end
         done
       with Exit -> ());
      !result
    end

  let dump t =
    Array.mapi
      (fun i c ->
        let le =
          if i < Array.length t.bounds then t.bounds.(i) else infinity
        in
        (le, c))
      t.counts

  let pp ppf t =
    Format.fprintf ppf "n=%d" t.n;
    Array.iteri
      (fun i c ->
        if c > 0 then
          if i < Array.length t.bounds then
            Format.fprintf ppf " <=%.3g:%d" t.bounds.(i) c
          else Format.fprintf ppf " >:%d" c)
      t.counts
end
