type t = {
  sim : Sim.t;
  name : string;
  callback : unit -> unit;
  mutable armed : (Sim.handle * Vtime.t) option;
}

let create sim ~name ~callback = { sim; name; callback; armed = None }

let is_running t = match t.armed with Some _ -> true | None -> false

let fires_at t = Option.map snd t.armed

let fire t () =
  t.armed <- None;
  t.callback ()

let start t delay =
  if is_running t then
    invalid_arg (Printf.sprintf "Timer.start: %s already running" t.name);
  let time = Vtime.add (Sim.now t.sim) delay in
  let handle = Sim.schedule_timer t.sim ~delay (fire t) in
  t.armed <- Some (handle, time)

let start_if_stopped t delay = if not (is_running t) then start t delay

let stop t =
  match t.armed with
  | None -> ()
  | Some (handle, _) ->
    Sim.cancel t.sim handle;
    t.armed <- None

let restart t delay =
  stop t;
  start t delay
