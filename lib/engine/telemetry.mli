(** Typed telemetry: metrics registry plus structured trace events.

    One [Telemetry.t] serves a whole simulation. Components register
    named metrics (counters, gauges, histograms) at construction time
    and emit structured [event]s from their hot paths, guarded by
    [active] so that disabled telemetry costs a single branch per site.

    Events travel two ways: into a bounded ring (enabled with
    [set_tracing], read back with [events] / [events_seq]) and into an
    optional streaming [sink] such as [jsonl_sink]. Neither path may
    influence protocol behaviour: telemetry never draws randomness,
    never schedules events, and only reads simulation state, so figures
    are bitwise identical with tracing on or off.

    See OBSERVABILITY.md for the event taxonomy and naming scheme. *)

type token_info = { ring_id : int; seq : int; rotation : int; hops : int }
(** Snapshot of the token fields relevant to tracing. [hops] counts
    token visits since this ring formed; [rotation] full circuits. *)

type release_trigger =
  | Release_timer  (** passive buffer released by the 10 ms timeout *)
  | Release_caught_up  (** released early: missing messages arrived *)

type drop_kind = Drop_token | Drop_packet

type event =
  | Token_rx of { node : int; tok : token_info }
  | Token_tx of { node : int; tok : token_info; rtr_len : int }
  | Token_copy_rx of { node : int; net : int; tok : token_info }
  | Token_retransmit of { node : int; tok : token_info }
  | Token_loss of { node : int; ring_id : int }
  | Token_hold of { node : int; tok : token_info; aru : int }
  | Token_release of { node : int; ring_id : int; trigger : release_trigger }
  | Msg_tx of { node : int; seq : int; bytes : int }
  | Msg_deliver of { node : int; origin : int; tid : int; bytes : int }
      (** agreed/safe delivery to the application on [node]; [tid] is
          the causal trace id ({!Causal.tid_of}) of the message *)
  | Msg_originate of { node : int; tid : int; bytes : int; safe : bool }
      (** a client message entered the SRP send path on its origin
          node — the root of the causal span tree for [tid] *)
  | Msg_defer of { node : int; tid : int; pending : int }
      (** flow control deferred [tid] (head of the pending queue) past
          this token visit; [pending] elements are waiting *)
  | Msg_ordered of {
      node : int;
      tid : int;
      ring_id : int;
      seq : int;
      frag : int;
      frags : int;
    }
      (** the origin assigned ring sequence [seq] to fragment
          [frag]/[frags] of message [tid] — the join point between
          trace ids and wire-level (ring, seq) packets *)
  | Packet_send of { node : int; net : int; ring_id : int; seq : int }
      (** the RRP layer handed data packet (ring, seq) to network
          [net]; one event per (logical send, network) pair *)
  | Packet_recv of {
      node : int;
      net : int;
      ring_id : int;
      seq : int;
      sender : int;
    }
      (** a data packet arrived at [node] on [net] (before duplicate
          filtering; emitted once per received copy, any RRP style) *)
  | Dup_drop of { node : int; kind : drop_kind; seq : int }
  | Rtr_request of { node : int; count : int; low : int; high : int }
  | Rtr_serve of { node : int; seq : int }
  | Problem_incr of { node : int; net : int; count : int }
  | Problem_decay of { node : int; net : int; count : int }
  | Problem_threshold of { node : int; net : int; count : int; threshold : int }
  | Recv_lag of { node : int; net : int; behind : int; source : string }
  | Net_fault_marked of { node : int; net : int; evidence : string }
  | Net_condemned of { node : int; net : int; flaps : int }
      (** [node] condemned [net]; [flaps] counts prior
          reinstate-then-recondemn cycles for the network (0 on first
          condemnation) *)
  | Net_probation of { node : int; net : int; attempt : int }
      (** the reinstatement backoff expired: [node] tentatively returned
          [net] to service and is counting clean token rotations;
          [attempt] is 1-based *)
  | Net_reinstated of { node : int; net : int; rotations : int }
      (** probation succeeded: [net] rejoined service at [node] after
          [rotations] consecutive clean rotations *)
  | Memb_transition of {
      node : int;
      phase : string;
      ring_id : int;
      detail : string;
    }
  | Ring_installed of { node : int; ring_id : int; members : int }
  | Frame_loss of { net : int; src : int }
  | Frame_blocked of { net : int; src : int; dst : int }
  | Buffer_drop of { node : int; net : int; bytes : int }
  | Net_status of { net : int; status : string }
  | Frame_corrupt of { net : int; src : int; kind : string }
      (** the corruption fault model mutated (byte-wire) or dropped
          (reference mode) a frame in flight; [kind] is one of
          ["flip"], ["trunc"], ["garble"] or ["drop"] *)
  | Frame_crc_reject of { node : int; net : int; src : int }
      (** the receiving NIC's CRC-32 check failed and the frame was
          discarded — observed by the RRP exactly as loss *)
  | Frame_decode_reject of { node : int; net : int; src : int; error : string }
      (** the CRC held (a collision) but total decoding or semantic
          validation rejected the frame image *)
  | Custom of { component : string; message : string }

type entry = { time : Vtime.t; event : event }

type t

val create : ?capacity:int -> Sim.t -> t
(** [create sim] makes a telemetry hub whose event ring holds
    [capacity] (default 4096) entries, overwriting the oldest.
    @raise Invalid_argument if [capacity <= 0]. *)

val sim : t -> Sim.t

val set_tracing : t -> bool -> unit
(** Turn ring capture on or off. Off by default. *)

val tracing : t -> bool

val set_sink : t -> (Vtime.t -> event -> unit) -> unit
(** Install a streaming sink; it observes every event, including when
    ring tracing is off. *)

val clear_sink : t -> unit

type subscription
(** Handle for one registered observer; see {!subscribe}. *)

val subscribe : t -> (Vtime.t -> event -> unit) -> subscription
(** Register an additional observer that sees every event, independently
    of the single {!set_sink} slot and of ring tracing. Observers fire in
    subscription order, after the sink. Like sinks, observers must be
    read-only with respect to the simulation: the chaos invariant
    monitors ([lib/chaos]) are the canonical client. *)

val unsubscribe : t -> subscription -> unit
(** Remove a {!subscribe}d observer; no-op if already removed. *)

val active : t -> bool
(** True when tracing is on, a sink is installed or a subscriber is
    registered — the guard instrumented code checks before building an
    event. *)

val emit : t -> event -> unit
(** Record [event] at the current simulation time. Callers normally
    guard with [if Telemetry.active t then ...] to avoid allocating the
    event when nobody is listening. *)

val custom : t -> component:string -> string -> unit
(** [custom t ~component msg] emits a [Custom] event (no-op when not
    [active]); the compatibility path for legacy string traces. *)

val customf :
  t -> component:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Printf-style [custom]; the format arguments are not evaluated when
    telemetry is inactive. *)

(** {1 Partitioned-mode buffering}

    Under the parallel simulator core ({!Exchange}) each simulated node
    owns a buffered child hub: emissions queue as (time, source, seq)
    entries instead of dispatching, and the exchange barrier drains all
    buffers into the parent in canonical merge order — the same total
    order the frame exchange uses — so the subscriber stream, sink and
    ring are bitwise-identical for any domain count. *)

val create_child : t -> source:int -> Sim.t -> t
(** [create_child parent ~source sim] is a buffered hub stamping
    entries with [sim]'s clock and merge rank [source] (the stable node
    id; the parent itself drains at rank [-1]). Metric registration
    through a child lands in the parent registry; [active] reflects the
    parent's listeners. *)

val set_buffering : t -> bool -> unit
(** Make a root hub buffer its own emissions too (coordinator-side
    events must merge canonically with node events). Children are
    always buffering.
    @raise Invalid_argument when disabling with a non-empty buffer. *)

val defer : t -> (unit -> unit) -> unit
(** [defer t f] runs [f] now on a non-buffering hub; on a buffering hub
    it queues [f] as a (time, source, seq) entry sharing the emission
    sequence, so cluster-level hook callbacks fire at the barrier in
    exactly the order their triggering events were emitted. *)

val drain :
  t -> children:t array -> set_clock:(Vtime.t -> unit) -> unit
(** Barrier drain: merge the hub's own buffer and all [children]'s in
    (time, source, seq) order; dispatch events to sink/subscribers/ring
    and run deferred thunks, calling [set_clock] with each entry's
    timestamp first so observers read the emission-time clock. The
    per-hub buffers are reused arrays and the merge allocates nothing:
    a barrier with nothing buffered is a few loads. *)

val has_buffered : t -> bool
(** [true] when this hub holds undrained entries. O(1). *)

val buffered_next : t -> children:t array -> Vtime.t
(** Earliest buffered timestamp across the hub and [children]
    ([Vtime.never] when all empty) — the exchange's barrier hook uses
    it both for idle-jump bounds and to skip flushes when nothing is
    pending. O(hubs), allocation-free. *)

val events : t -> entry list
(** Ring contents, oldest first. *)

val events_seq : t -> entry Seq.t
(** Allocation-free iteration over the ring, oldest first. *)

val clear : t -> unit
(** Empty the event ring (metrics are untouched). *)

(** {1 Metrics registry}

    Metric names are dot-separated paths: [<component>.<instance>.<what>],
    e.g. [srp.3.retransmits_served] or [net.0.frames_lost]. *)

type metric =
  | Counter of Stats.Counter.t
  | Gauge of (unit -> float)
  | Histogram of Stats.Histogram.t

val counter : t -> string -> Stats.Counter.t
(** [counter t name] registers (or retrieves) the counter [name]. The
    returned counter is incremented directly — O(1), no lookup on the
    hot path. *)

val gauge : t -> string -> (unit -> float) -> unit
(** Register a gauge read lazily at export time; the closure must be
    read-only. *)

val histogram : ?buckets:float array -> t -> string -> Stats.Histogram.t
(** [histogram t name] registers (or retrieves) a histogram; default
    buckets are [default_ms_buckets]. *)

val default_ms_buckets : float array
(** 60 log-spaced bucket bounds from 0.01 ms to ~10 s (ratio 1.26), the
    same spacing the cluster latency probe uses. *)

val find_metric : t -> string -> metric option

val metrics : t -> (string * metric) list
(** All registered metrics in registration order. *)

(** {1 Exporters} *)

val json_escape : string -> string
(** Escape a string for embedding in a JSON string literal (quotes,
    backslashes, control characters). *)

val json_of_event : Vtime.t -> event -> string
(** One JSON object (no trailing newline): [{"t_ns":..,"type":..,...}]. *)

val jsonl_sink : out_channel -> Vtime.t -> event -> unit
(** A sink that writes one JSON line per event to the channel. *)

val write_jsonl : out_channel -> t -> unit
(** Dump the current ring contents as JSON lines. *)

val metrics_json : t -> string
(** The registry as a JSON document (schema ["totem-metrics/v1"]):
    counters and gauges with values, histograms with non-empty
    per-bucket counts. *)

val pp_metrics : Format.formatter -> t -> unit
(** Text dashboard of the registry. *)

val pp_event : Format.formatter -> event -> unit
val pp_entry : Format.formatter -> entry -> unit

val component_of : event -> string
(** Component label, e.g. ["srp3"], ["rrp0"], ["net1"]. *)

val node_of_event : event -> int option
(** The simulated node an event happened on: [None] for network-level
    events not tied to a receiving NIC ([Frame_loss], [Frame_blocked],
    [Net_status], [Frame_corrupt]) and for [Custom]. The flight
    recorder ({!Recorder}) shards its per-node rings by this key. *)

val message_of : event -> string
(** Human-readable rendering, matching the legacy [Trace] style. *)

val type_name : event -> string
(** Stable snake_case tag used in JSONL output, e.g. ["token_rx"]. *)

(** {1 Token-rotation span view}

    A flamegraph-style view over virtual time: one span per (ring,
    rotation counter), delimited by [Token_rx] events, with nested
    sub-events (retransmissions, holds/releases, losses, problem
    counters) attributed to the enclosing rotation. *)

type span = {
  sp_ring_id : int;
  sp_rotation : int;
  sp_start : Vtime.t;
  sp_end : Vtime.t;
  sp_visits : int;  (** token visits observed within the span *)
  sp_subs : entry list;  (** nested activity, oldest first *)
}

val spans_of_events : entry list -> span list
val token_spans : t -> span list
val pp_spans : Format.formatter -> span list -> unit
