(** Domain-parallel array map with faithful error propagation. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f items] applies [f] to every element, distributing
    items over [jobs] domains (the calling domain included) via an
    atomic work-stealing counter. Order of results matches the input.

    If one or more applications raise, every remaining item still runs,
    all domains are joined, and then the exception of the
    lowest-indexed failing item is re-raised with its original
    backtrace — never an opaque [Domain.join] failure. [jobs <= 1]
    degenerates to [Array.map]. *)
