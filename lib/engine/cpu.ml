type t = {
  sim : Sim.t;
  name : string;
  mutable free_at : Vtime.t;
  mutable busy_time : Vtime.t;
}

let create sim ~name = { sim; name; free_at = Vtime.zero; busy_time = Vtime.zero }

let charge t ~cost =
  if cost < 0 then invalid_arg ("Cpu.charge: negative cost on " ^ t.name);
  let start = Vtime.max t.free_at (Sim.now t.sim) in
  t.free_at <- Vtime.add start cost;
  t.busy_time <- Vtime.add t.busy_time cost

let submit t ~cost k =
  charge t ~cost;
  let delay = Vtime.sub t.free_at (Sim.now t.sim) in
  ignore (Sim.schedule t.sim ~delay k)

let free_at t = t.free_at
let busy_time t = t.busy_time

let utilisation t ~since ~now =
  let window = Vtime.sub now since in
  if window <= 0 then 0.0
  else Float.min 1.0 (Vtime.to_float_sec t.busy_time /. Vtime.to_float_sec window)
