(** The discrete-event simulator core.

    A simulator owns the virtual clock, the event queue and the root
    random generator. Components schedule thunks; [run_until] drains the
    queue in timestamp order, advancing the clock to each event.

    Internally a simulator is one {!Partition} (the pure scheduler)
    plus the root RNG. The parallel core ({!Exchange}) runs one Sim per
    simulated node plus a coordinator Sim, synchronized by conservative
    lookahead; the exchange-facing hooks are at the bottom of this
    interface and are not for model code.

    Scheduling in the past is a programming error and raises. All state
    is single-domain; the simulator is deterministic for a given seed
    and schedule. *)

type t

type handle
(** A cancellable scheduled event. *)

val create : ?seed:int -> unit -> t
(** [create ~seed ()] is a fresh simulator at time zero. Default seed
    is 42. *)

val now : t -> Vtime.t
(** Current virtual time. *)

val rng : t -> Rng.t
(** The simulator's root generator. Prefer {!split_rng} for components. *)

val split_rng : t -> Rng.t
(** An independent generator stream derived from the root. *)

val schedule : t -> delay:Vtime.t -> (unit -> unit) -> handle
(** [schedule t ~delay f] runs [f] at [now t + delay].
    @raise Invalid_argument if [delay < 0]. *)

val schedule_at : t -> time:Vtime.t -> (unit -> unit) -> handle
(** [schedule_at t ~time f] runs [f] at absolute [time].
    @raise Invalid_argument if [time < now t]. *)

val schedule_timer : t -> delay:Vtime.t -> (unit -> unit) -> handle
(** Like {!schedule}, but intended for cancel/re-arm protocol timers:
    the event lands in a {!Timer_wheel} instead of the main heap, so
    timer churn never inflates the heap the hot one-shot events (frame
    deliveries, CPU completions) flow through. Firing order between the
    two structures is the same global [(time, scheduling order)] as if
    everything shared one queue.
    @raise Invalid_argument if [delay < 0]. *)

val cancel : t -> handle -> unit
(** Cancels the event; no-op if it already fired or was cancelled. *)

val run_until : t -> Vtime.t -> unit
(** Processes every event with timestamp [<= limit], then sets the clock
    to [limit]. *)

val run : t -> unit
(** Processes events until the queue is empty. Beware: a simulation with
    periodic timers never terminates; prefer {!run_until}. *)

val step : t -> bool
(** Processes exactly one event; [false] if the queue was empty. *)

val pending : t -> int
(** Number of scheduled, not-yet-fired events (timers included). *)

val events_processed : t -> int
(** Total events popped and run since [create] — the simulator's unit
    of work, so wall-clock / [events_processed] measures simulator
    speed itself independently of what the protocol achieved. *)

(** {2 Exchange-layer hooks}

    Used by {!Exchange} to drive per-node partitions under conservative
    lookahead. Model code has no business calling these. *)

val next_event_time : t -> Vtime.t option
(** Timestamp of the earliest pending event, if any. *)

val next_time_raw : t -> Vtime.t
(** {!next_event_time} without the option: [Vtime.never] when empty.
    Allocation-free; the exchange folds this across every partition
    once per window. *)

val drain_until : t -> Vtime.t -> unit
(** Processes every event with timestamp [<= limit] but leaves the
    clock at the last processed event instead of bumping it to
    [limit]. *)

val drain_while : t -> cap:(unit -> Vtime.t) -> unit
(** Processes events while the earliest timestamp is [<= cap ()],
    re-reading the cap between events; see {!Partition.drain_while}.
    Backs the exchange's adaptive solo window. *)

val unsafe_set_clock : t -> Vtime.t -> unit
(** Forcibly sets the clock, possibly backwards; the exchange uses this
    to replay barrier-buffered work at each item's own timestamp. *)
