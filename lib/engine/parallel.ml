(* Domain-parallel map with faithful error propagation.

   Each worker records per-item outcomes as [Ok v] / [Error (exn, bt)]
   instead of letting an exception tear down the domain: a raising item
   used to surface as an opaque [Domain.join] failure with every other
   item on that worker silently dropped. After all domains join, the
   lowest-indexed error (a deterministic choice) is re-raised with its
   original backtrace. *)

(* The claim counter is the one cross-domain write hot spot; keep the
   next allocation off its cache line. An [Atomic.t] is a one-field box
   and the minor heap allocates sequentially, so a 7-word spacer
   allocated right after it pads the line out. *)
let padded_atomic v =
  let a = Atomic.make v in
  ignore (Sys.opaque_identity (Array.make 7 0));
  a

let map ?(jobs = 1) f items =
  let n = Array.length items in
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 || n <= 1 then Array.map f items
  else begin
    let results = Array.make n None in
    let next = padded_atomic 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <-
            Some
              (try Ok (f items.(i))
               with e -> Error (e, Printexc.get_raw_backtrace ()));
          loop ()
        end
      in
      loop ()
    in
    let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains;
    Array.map
      (function
        | Some (Ok r) -> r
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | None -> assert false)
      results
  end
