(** Virtual (simulated) time.

    Time is an integer count of nanoseconds since the start of the
    simulation. Using an integer keeps event ordering exact and the
    simulation bit-for-bit deterministic; [int] on a 64-bit platform
    covers about 292 simulated years, far beyond any experiment here. *)

type t = int
(** Nanoseconds since simulation start. *)

val zero : t

val never : t
(** After every representable instant ([max_int] nanoseconds). Used as
    the allocation-free "no pending event" sentinel by the raw peek
    paths ([Event_queue.peek_time_raw], [Sim.next_time_raw], barrier
    hooks): an empty source reports [never], and a fold over sources
    starts from it. Never a valid event timestamp. *)

val ns : int -> t
(** [ns n] is [n] nanoseconds. *)

val us : int -> t
(** [us n] is [n] microseconds. *)

val ms : int -> t
(** [ms n] is [n] milliseconds. *)

val sec : int -> t
(** [sec n] is [n] seconds. *)

val of_float_sec : float -> t
(** [of_float_sec s] converts [s] seconds to virtual time, rounding to
    the nearest nanosecond. *)

val to_float_sec : t -> float
(** [to_float_sec t] is [t] expressed in seconds. *)

val to_float_ms : t -> float
(** [to_float_ms t] is [t] expressed in milliseconds. *)

val add : t -> t -> t

val sub : t -> t -> t
(** [sub a b] is [a - b]; may be negative, for intervals. *)

val compare : t -> t -> int

val ( < ) : t -> t -> bool

val ( <= ) : t -> t -> bool

val ( > ) : t -> t -> bool

val ( >= ) : t -> t -> bool

val min : t -> t -> t

val max : t -> t -> t

val pp : Format.formatter -> t -> unit
(** Prints a human-readable time, e.g. ["1.250ms"] or ["3.2s"]. *)
