(** Flight recorder: bounded per-node rings of recent telemetry events.

    A recorder is one {!Telemetry.subscribe} observer that shards every
    event into a fixed-capacity ring for its owning node
    ({!Telemetry.node_of_event}), or into a separate fabric ring for
    node-less network events. Each event costs O(1) (an array store and
    one entry record); the rings are preallocated, so an idle recorder
    allocates nothing. Like every subscriber it is read-only, keeping
    the simulation bitwise identical (OBSERVABILITY.md invariant 2) —
    and because it observes the root hub, partitioned runs
    ([sim_domains >= 1]) feed it the canonical (time, node, seq) drain
    order, so dumps are identical for every domain count.

    The chaos runner attaches one per campaign and embeds {!dump_jsonl}
    in [.chaos.json] counterexamples ([totem-chaos/v2]). *)

type t

val attach : ?capacity:int -> nodes:int -> Telemetry.t -> t
(** [attach ~nodes tel] subscribes a recorder with one ring of
    [capacity] (default 64) entries per node plus the fabric ring.
    @raise Invalid_argument if [capacity <= 0] or [nodes <= 0]. *)

val detach : t -> unit
(** Unsubscribe from the hub; recorded history stays readable. *)

val record : t -> Vtime.t -> Telemetry.event -> unit
(** Feed one event directly (what the subscription does internally). *)

val capacity : t -> int
val num_nodes : t -> int

val node_history : t -> int -> Telemetry.entry list
(** Retained events for one node, oldest first.
    @raise Invalid_argument on an out-of-range node. *)

val fabric_history : t -> Telemetry.entry list
(** Retained node-less network events, oldest first. *)

val dump : t -> (int * Telemetry.entry list) list
(** Every non-empty ring as [(node, entries)] in node order, the fabric
    ring last under key [-1]. *)

val dump_jsonl : t -> (int * string list) list
(** {!dump} with each entry rendered by {!Telemetry.json_of_event}. *)

val clear : t -> unit
