(* Causal message tracing: reconstruct the lifecycle of every client
   message from the telemetry stream and export it as per-message span
   trees (Chrome trace_event JSON) plus compact latency records.

   The trace id is sim-side metadata derived statelessly from the two
   message fields that survive the wire codec round trip — (origin,
   app_seq) — so no wire format change is needed and the id is
   identical on every node and for every domain count. Instrumented
   layers emit Msg_originate / Msg_defer / Msg_ordered / Packet_send /
   Packet_recv / Rtr_serve / Msg_deliver events carrying either the tid
   directly or the (ring, seq) key that Msg_ordered joins back to a
   tid; this module is a read-only Telemetry observer that performs the
   joins. *)

(* --- trace ids ------------------------------------------------------- *)

(* 40 bits of per-origin sequence leaves 22 bits of origin on a 63-bit
   int — both far beyond any simulation here, and the packing is cheap
   enough for a guarded hot path. *)
let app_seq_bits = 40
let app_seq_mask = (1 lsl app_seq_bits) - 1

let tid_of ~origin ~app_seq =
  if origin < 0 || app_seq < 0 || app_seq > app_seq_mask then
    invalid_arg "Causal.tid_of";
  (origin lsl app_seq_bits) lor app_seq

let tid_origin tid = tid lsr app_seq_bits
let tid_app_seq tid = tid land app_seq_mask

(* --- raw observation ------------------------------------------------- *)

(* One reconstruction-relevant step, kept in arrival order. The
   telemetry stream is already in canonical (time, node, seq) order for
   every domain count (see Telemetry.drain), so keeping arrival order
   makes every export deterministic. *)
type step =
  | S_originate of { at : Vtime.t; node : int; tid : int; bytes : int; safe : bool }
  | S_defer of { at : Vtime.t; node : int; tid : int; pending : int }
  | S_ordered of {
      at : Vtime.t;
      node : int;
      tid : int;
      ring_id : int;
      seq : int;
      frag : int;
      frags : int;
    }
  | S_send of { at : Vtime.t; node : int; net : int; ring_id : int; seq : int }
  | S_recv of {
      at : Vtime.t;
      node : int;
      net : int;
      ring_id : int;
      seq : int;
      sender : int;
    }
  | S_rtr of { at : Vtime.t; node : int; seq : int }
  | S_deliver of { at : Vtime.t; node : int; tid : int; bytes : int }
  | S_reject of { at : Vtime.t; node : int; net : int; src : int; crc : bool }

type t = {
  mutable steps : step list; (* newest first *)
  mutable n_steps : int;
}

let create () = { steps = []; n_steps = 0 }

let push t s =
  t.steps <- s :: t.steps;
  t.n_steps <- t.n_steps + 1

let observe t at (ev : Telemetry.event) =
  match ev with
  | Msg_originate { node; tid; bytes; safe } ->
    push t (S_originate { at; node; tid; bytes; safe })
  | Msg_defer { node; tid; pending } -> push t (S_defer { at; node; tid; pending })
  | Msg_ordered { node; tid; ring_id; seq; frag; frags } ->
    push t (S_ordered { at; node; tid; ring_id; seq; frag; frags })
  | Packet_send { node; net; ring_id; seq } ->
    push t (S_send { at; node; net; ring_id; seq })
  | Packet_recv { node; net; ring_id; seq; sender } ->
    push t (S_recv { at; node; net; ring_id; seq; sender })
  | Rtr_serve { node; seq } -> push t (S_rtr { at; node; seq })
  | Msg_deliver { node; tid; bytes; _ } ->
    push t (S_deliver { at; node; tid; bytes })
  | Frame_crc_reject { node; net; src } ->
    push t (S_reject { at; node; net; src; crc = true })
  | Frame_decode_reject { node; net; src; _ } ->
    push t (S_reject { at; node; net; src; crc = false })
  | _ -> ()

let attach tel =
  let t = create () in
  let sub = Telemetry.subscribe tel (observe t) in
  (t, sub)

let steps_observed t = t.n_steps

(* --- reconstruction -------------------------------------------------- *)

type hop = {
  hop_at : Vtime.t;
  hop_node : int;
  hop_net : int;
  hop_dir : [ `Send | `Recv ];
  hop_sender : int; (* sending node; for `Send hops, the node itself *)
}

type record = {
  r_tid : int;
  r_origin : int;
  r_app_seq : int;
  r_bytes : int;
  r_safe : bool;
  r_originated : Vtime.t option; (* None: tracing started after origination *)
  r_defers : Vtime.t list; (* flow-control deferrals, oldest first *)
  r_ordered : (Vtime.t * int * int * int * int) list;
      (* (at, ring, seq, frag, frags), oldest first *)
  r_hops : hop list; (* per-network packet sends/recvs, oldest first *)
  r_retransmits : (Vtime.t * int) list; (* (at, serving node) *)
  r_deliveries : (Vtime.t * int) list; (* (at, node), oldest first *)
}

type reject = {
  rej_at : Vtime.t;
  rej_node : int;
  rej_net : int;
  rej_src : int;
  rej_crc : bool; (* true: CRC reject; false: decode/validate reject *)
}

(* (ring, seq) -> tids carried, built from Msg_ordered: a packet can
   carry fragments of several packed messages, so the join is one to
   many. Rtr_serve carries only seq (the token rtr list is per-ring
   implicitly), so retransmission joins may alias across rings — an
   accepted approximation, noted in OBSERVABILITY.md. *)
let reconstruct t =
  let steps = List.rev t.steps in
  let by_tid : (int, record ref) Hashtbl.t = Hashtbl.create 256 in
  let order : int list ref = ref [] in
  let seq_tids : (int * int, int list) Hashtbl.t = Hashtbl.create 256 in
  let seq_only_tids : (int, int list) Hashtbl.t = Hashtbl.create 256 in
  let rejects = ref [] in
  let get tid =
    match Hashtbl.find_opt by_tid tid with
    | Some r -> r
    | None ->
      let r =
        ref
          {
            r_tid = tid;
            r_origin = tid_origin tid;
            r_app_seq = tid_app_seq tid;
            r_bytes = 0;
            r_safe = false;
            r_originated = None;
            r_defers = [];
            r_ordered = [];
            r_hops = [];
            r_retransmits = [];
            r_deliveries = [];
          }
      in
      Hashtbl.add by_tid tid r;
      order := tid :: !order;
      r
  in
  let join ring_id seq =
    match Hashtbl.find_opt seq_tids (ring_id, seq) with
    | Some tids -> tids
    | None -> []
  in
  List.iter
    (fun s ->
      match s with
      | S_originate { at; tid; bytes; safe; _ } ->
        let r = get tid in
        r :=
          {
            !r with
            r_bytes = bytes;
            r_safe = safe;
            r_originated =
              (match !r.r_originated with None -> Some at | some -> some);
          }
      | S_defer { at; tid; _ } ->
        let r = get tid in
        r := { !r with r_defers = at :: !r.r_defers }
      | S_ordered { at; tid; ring_id; seq; frag; frags; _ } ->
        let r = get tid in
        r := { !r with r_ordered = (at, ring_id, seq, frag, frags) :: !r.r_ordered };
        let key = (ring_id, seq) in
        let cur = Option.value ~default:[] (Hashtbl.find_opt seq_tids key) in
        if not (List.mem tid cur) then begin
          Hashtbl.replace seq_tids key (tid :: cur);
          let cur' = Option.value ~default:[] (Hashtbl.find_opt seq_only_tids seq) in
          Hashtbl.replace seq_only_tids seq (tid :: cur')
        end
      | S_send { at; node; net; ring_id; seq } ->
        List.iter
          (fun tid ->
            let r = get tid in
            r :=
              {
                !r with
                r_hops =
                  { hop_at = at; hop_node = node; hop_net = net;
                    hop_dir = `Send; hop_sender = node }
                  :: !r.r_hops;
              })
          (join ring_id seq)
      | S_recv { at; node; net; ring_id; seq; sender } ->
        List.iter
          (fun tid ->
            let r = get tid in
            r :=
              {
                !r with
                r_hops =
                  { hop_at = at; hop_node = node; hop_net = net;
                    hop_dir = `Recv; hop_sender = sender }
                  :: !r.r_hops;
              })
          (join ring_id seq)
      | S_rtr { at; node; seq } ->
        List.iter
          (fun tid ->
            let r = get tid in
            r := { !r with r_retransmits = (at, node) :: !r.r_retransmits })
          (Option.value ~default:[] (Hashtbl.find_opt seq_only_tids seq))
      | S_deliver { at; node; tid; bytes } ->
        let r = get tid in
        r :=
          {
            !r with
            r_bytes = (if !r.r_bytes = 0 then bytes else !r.r_bytes);
            r_deliveries = (at, node) :: !r.r_deliveries;
          }
      | S_reject { at; node; net; src; crc } ->
        rejects :=
          { rej_at = at; rej_node = node; rej_net = net; rej_src = src;
            rej_crc = crc }
          :: !rejects)
    steps;
  let finish r =
    {
      r with
      r_defers = List.rev r.r_defers;
      r_ordered = List.rev r.r_ordered;
      r_hops = List.rev r.r_hops;
      r_retransmits = List.rev r.r_retransmits;
      r_deliveries = List.rev r.r_deliveries;
    }
  in
  let records = List.rev_map (fun tid -> finish !(Hashtbl.find by_tid tid)) !order in
  (* stable presentation order: by trace id, i.e. (origin, app_seq) *)
  let records = List.sort (fun a b -> compare a.r_tid b.r_tid) records in
  (records, List.rev !rejects)

let records t = fst (reconstruct t)
let rejects t = snd (reconstruct t)

(* --- latency records -------------------------------------------------- *)

type latency = {
  l_tid : int;
  l_node : int; (* delivering node *)
  l_sent : Vtime.t; (* origination time *)
  l_delivered : Vtime.t;
}

(* One compact record per (message, delivering node); only messages
   whose origination was observed qualify — a tid first seen mid-flight
   has no meaningful latency. *)
let latencies t =
  let records, _ = reconstruct t in
  List.concat_map
    (fun r ->
      match r.r_originated with
      | None -> []
      | Some sent ->
        List.map
          (fun (at, node) ->
            { l_tid = r.r_tid; l_node = node; l_sent = sent; l_delivered = at })
          r.r_deliveries)
    records

(* --- Chrome trace_event export ---------------------------------------- *)

(* One nestable async flow per message, keyed by the trace id: a "b"
   (begin) at origination, "n" (instant) marks for ordering, flow
   deferral, per-network packet hops and retransmissions, an "X"
   (complete) delivery span per destination node, and an "e" (end) at
   the final delivery. pid is the origin node (so each origin's
   messages group together in the viewer); tid is the node the step
   happened on. Unattributable wire rejects become "i" instants on the
   rejecting node. Timestamps are microseconds (trace_event
   convention); virtual time is integer nanoseconds, so %.3f is
   exact. *)
let us_of t = float_of_int t /. 1000.0

let chrome_json t =
  let records, rejects = reconstruct t in
  let buf = Buffer.create 4096 in
  let first = ref true in
  let obj fields =
    if !first then first := false else Buffer.add_string buf ",\n";
    Buffer.add_string buf "    {";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (Printf.sprintf "\"%s\":%s" k v))
      fields;
    Buffer.add_char buf '}'
  in
  let s v = Printf.sprintf "\"%s\"" (Telemetry.json_escape v) in
  let num_us at = Printf.sprintf "%.3f" (us_of at) in
  Buffer.add_string buf "{\n  \"traceEvents\": [\n";
  List.iter
    (fun r ->
      let name = s (Printf.sprintf "msg N%d#%d" r.r_origin r.r_app_seq) in
      let id = string_of_int r.r_tid in
      let base at node =
        [ ("name", name); ("cat", s "msg"); ("id", id);
          ("pid", string_of_int r.r_origin); ("tid", string_of_int node);
          ("ts", num_us at) ]
      in
      let start_at =
        match (r.r_originated, r.r_ordered, r.r_deliveries) with
        | Some at, _, _ -> Some at
        | None, (at, _, _, _, _) :: _, _ -> Some at
        | None, [], (at, _) :: _ -> Some at
        | None, [], [] -> None
      in
      match start_at with
      | None -> ()
      | Some t0 ->
        let last =
          List.fold_left
            (fun acc (at, _) -> Vtime.max acc at)
            (List.fold_left
               (fun acc (at, _, _, _, _) -> Vtime.max acc at)
               t0 r.r_ordered)
            r.r_deliveries
        in
        obj (("ph", s "b") :: base t0 r.r_origin
            @ [ ( "args",
                  Printf.sprintf "{\"bytes\":%d,\"safe\":%s}" r.r_bytes
                    (if r.r_safe then "true" else "false") ) ]);
        List.iter
          (fun at ->
            obj
              (("ph", s "n") :: base at r.r_origin
              @ [ ("args", "{\"step\":\"flow_defer\"}") ]))
          r.r_defers;
        List.iter
          (fun (at, ring, seq, frag, frags) ->
            obj
              (("ph", s "n") :: base at r.r_origin
              @ [ ( "args",
                    Printf.sprintf
                      "{\"step\":\"ordered\",\"ring\":%d,\"seq\":%d,\"frag\":\"%d/%d\"}"
                      ring seq frag frags ) ]))
          r.r_ordered;
        List.iter
          (fun h ->
            obj
              (("ph", s "n") :: base h.hop_at h.hop_node
              @ [ ( "args",
                    Printf.sprintf
                      "{\"step\":\"packet_%s\",\"net\":%d,\"from\":%d}"
                      (match h.hop_dir with `Send -> "send" | `Recv -> "recv")
                      h.hop_net h.hop_sender ) ]))
          r.r_hops;
        List.iter
          (fun (at, node) ->
            obj
              (("ph", s "n") :: base at node
              @ [ ("args", Printf.sprintf "{\"step\":\"rtr_serve\",\"by\":%d}" node) ]))
          r.r_retransmits;
        let span_start =
          match r.r_ordered with (at, _, _, _, _) :: _ -> at | [] -> t0
        in
        List.iter
          (fun (at, node) ->
            obj
              ([ ("ph", s "X");
                 ("name", s (Printf.sprintf "deliver N%d#%d" r.r_origin r.r_app_seq));
                 ("cat", s "deliver"); ("pid", string_of_int r.r_origin);
                 ("tid", string_of_int node); ("ts", num_us span_start);
                 ( "dur",
                   Printf.sprintf "%.3f"
                     (Float.max 0.0 (us_of at -. us_of span_start)) ) ]))
          r.r_deliveries;
        obj (("ph", s "e") :: base last r.r_origin))
    records;
  List.iter
    (fun rej ->
      obj
        [ ("ph", s "i");
          ("name", s (if rej.rej_crc then "crc_reject" else "decode_reject"));
          ("cat", s "wire"); ("pid", string_of_int rej.rej_node);
          ("tid", string_of_int rej.rej_node); ("ts", num_us rej.rej_at);
          ("s", s "t");
          ( "args",
            Printf.sprintf "{\"net\":%d,\"src\":%d}" rej.rej_net rej.rej_src ) ])
    rejects;
  Buffer.add_string buf "\n  ],\n  \"displayTimeUnit\": \"ms\"\n}\n";
  Buffer.contents buf

(* --- text summary ----------------------------------------------------- *)

let pp_records ppf t =
  let records, rejects = reconstruct t in
  Format.fprintf ppf "causal records: %d message(s), %d wire reject(s)@."
    (List.length records) (List.length rejects);
  List.iter
    (fun r ->
      Format.fprintf ppf "msg N%d#%d (tid=%d, %d bytes%s)@." r.r_origin
        r.r_app_seq r.r_tid r.r_bytes (if r.r_safe then ", safe" else "");
      (match r.r_originated with
      | Some at -> Format.fprintf ppf "  originate  %a@." Vtime.pp at
      | None -> Format.fprintf ppf "  originate  (before trace start)@.");
      List.iter
        (fun at -> Format.fprintf ppf "  defer      %a (flow window)@." Vtime.pp at)
        r.r_defers;
      List.iter
        (fun (at, ring, seq, frag, frags) ->
          Format.fprintf ppf "  ordered    %a ring=%d seq=%d frag=%d/%d@."
            Vtime.pp at ring seq frag frags)
        r.r_ordered;
      List.iter
        (fun h ->
          Format.fprintf ppf "  %s %a net=%d node=N%d@."
            (match h.hop_dir with `Send -> "pkt send  " | `Recv -> "pkt recv  ")
            Vtime.pp h.hop_at h.hop_net h.hop_node)
        r.r_hops;
      List.iter
        (fun (at, node) ->
          Format.fprintf ppf "  rtr serve  %a by N%d@." Vtime.pp at node)
        r.r_retransmits;
      List.iter
        (fun (at, node) ->
          let lat =
            match r.r_originated with
            | Some t0 -> Printf.sprintf " (+%.3fms)" (Vtime.to_float_ms (Vtime.sub at t0))
            | None -> ""
          in
          Format.fprintf ppf "  deliver    %a at N%d%s@." Vtime.pp at node lat)
        r.r_deliveries)
    records
