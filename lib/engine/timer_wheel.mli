(** A hashed timing wheel for high-churn, cancellable timers.

    The Totem protocols re-arm a handful of timers (token loss, token
    retransmit, the RRP passive hold timer) on every token rotation —
    hundreds of thousands of cancel/re-arm cycles per simulated second.
    In a binary heap that churn leaves a trail of lazily-cancelled
    entries that inflates every sift; here, timers hash into buckets by
    expiry time, so [push] is O(1), [cancel] is O(1) (with a sweep once
    dead entries outnumber live ones), and finding the earliest timer is
    a cached scan over a few dozen live entries.

    Entries are ordered by [(time, tie)] exactly like {!Event_queue}, so
    a simulator holding events in a heap and timers in a wheel pops one
    globally FIFO-stable sequence as long as it hands both structures
    ties from a single counter. *)

type 'a t

type handle
(** Identifies an armed timer so it can be cancelled. *)

val create : ?shift:int -> ?buckets:int -> unit -> 'a t
(** [create ~shift ~buckets ()] is an empty wheel with [buckets] (a
    power of two) buckets of [2^shift] nanoseconds each. Timers beyond
    one wheel revolution simply share buckets (hashed wheel); ordering
    is always exact because entries carry their full expiry time.
    Defaults: 64 buckets of ~131 us. *)

val length : 'a t -> int
(** Number of armed (live) timers. *)

val is_empty : 'a t -> bool

val push : 'a t -> time:Vtime.t -> tie:int -> 'a -> handle
(** Arms a timer at absolute [time] with tie-break rank [tie]. *)

val cancel : 'a t -> handle -> bool
(** Disarms; [false] if it already fired or was already cancelled. *)

val peek_key : 'a t -> (Vtime.t * int) option
(** [(time, tie)] of the earliest live timer. *)

val peek_time : 'a t -> Vtime.t option

val peek_time_raw : 'a t -> Vtime.t
(** {!peek_time} without the option: [Vtime.never] when empty.
    Allocation-free on the cached-minimum path, for hot per-window
    scans. *)

val pop_min : 'a t -> (Vtime.t * 'a) option
(** Removes and returns the earliest live timer. *)
