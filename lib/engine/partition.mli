(** The pure per-node event scheduler.

    A partition is the randomness-free core of the discrete-event
    simulator: a virtual clock, an event heap, a timer wheel and a tie
    counter. {!Sim} wraps exactly one partition (adding the root RNG);
    the parallel core ({!Exchange}) advances many partitions — one per
    simulated node plus one coordinator — in lookahead-bounded windows.

    Because a partition holds no shared or random state, advancing it to
    a horizon is a pure function of the events fed to it: the same
    inputs give the same pops, the same clock trajectory, and the same
    tie sequence on any domain. That is the keystone of the bitwise
    determinism argument in DESIGN.md §11. *)

type t

type handle
(** A cancellable scheduled event. *)

val create : unit -> t
(** A fresh partition at time zero with an empty queue. *)

val now : t -> Vtime.t

val schedule : t -> delay:Vtime.t -> (unit -> unit) -> handle
(** [schedule t ~delay f] runs [f] at [now t + delay].
    @raise Invalid_argument if [delay < 0]. *)

val schedule_at : t -> time:Vtime.t -> (unit -> unit) -> handle
(** [schedule_at t ~time f] runs [f] at absolute [time].
    @raise Invalid_argument if [time < now t]. *)

val schedule_timer : t -> delay:Vtime.t -> (unit -> unit) -> handle
(** Like {!schedule} but lands in the timer wheel; firing order between
    wheel and heap is the global [(time, scheduling order)]. *)

val cancel : t -> handle -> unit
(** Cancels the event; no-op if it already fired or was cancelled. *)

val run_until : t -> Vtime.t -> unit
(** Processes every event with timestamp [<= limit], then sets the
    clock to [limit]. *)

val drain_until : t -> Vtime.t -> unit
(** Like {!run_until} but leaves the clock at the last processed
    event's time instead of bumping it to [limit]. The exchange drains
    the coordinator partition this way so [now] never runs ahead of the
    work actually done. *)

val drain_while : t -> cap:(unit -> Vtime.t) -> unit
(** Pop and run events while the earliest timestamp is [<= cap ()],
    re-reading [cap] between events so a handler that shrinks it (by
    buffering cross-partition work) bounds the very next pop. Clock
    semantics as {!drain_until}. Exchange-only: backs the adaptive solo
    window. *)

val run : t -> unit
(** Processes events until the queue is empty. *)

val step : t -> bool
(** Processes exactly one event; [false] if the queue was empty. *)

val next_event_time : t -> Vtime.t option
(** Timestamp of the earliest pending event, if any. The conservative
    window computation ([Exchange.run_until]) takes the minimum of this
    across all partitions. *)

val next_time_raw : t -> Vtime.t
(** {!next_event_time} without the option: [Vtime.never] when empty.
    Allocation-free; the exchange folds this across every partition
    once per window. *)

val pending : t -> int
(** Number of scheduled, not-yet-fired events (timers included). *)

val events_processed : t -> int

val unsafe_set_clock : t -> Vtime.t -> unit
(** Forcibly sets the clock, possibly backwards. Exchange-only: used to
    replay barrier-buffered work (merged frame sends, drained telemetry
    thunks) at each item's own timestamp. Never call from model code. *)
