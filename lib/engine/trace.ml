(* Compatibility shim over [Telemetry]. A [Trace.t] *is* a telemetry
   hub: legacy string emits become [Custom] events in the shared
   structured stream, and [records] renders whatever the ring holds —
   including structured events from instrumented components — back into
   the historical [(time, component, message)] form. *)

type record = {
  time : Vtime.t;
  component : string;
  message : string;
}

type t = Telemetry.t

let create ?(capacity = 4096) sim = Telemetry.create ~capacity sim
let enable t = Telemetry.set_tracing t true
let disable t = Telemetry.set_tracing t false
let enabled = Telemetry.tracing
let emit t ~component message = Telemetry.custom t ~component message
let emitf t ~component fmt = Telemetry.customf t ~component fmt

let record_of_entry (e : Telemetry.entry) =
  {
    time = e.Telemetry.time;
    component = Telemetry.component_of e.Telemetry.event;
    message = Telemetry.message_of e.Telemetry.event;
  }

let to_seq t = Seq.map record_of_entry (Telemetry.events_seq t)
let records t = List.of_seq (to_seq t)

let find t ~component ~substring =
  let contains haystack needle =
    let hl = String.length haystack and nl = String.length needle in
    let rec at i = i + nl <= hl && (String.sub haystack i nl = needle || at (i + 1)) in
    nl = 0 || at 0
  in
  Seq.find
    (fun r -> r.component = component && contains r.message substring)
    (to_seq t)

let dump ppf t =
  Seq.iter
    (fun r ->
      Format.fprintf ppf "[%a] %-12s %s@." Vtime.pp r.time r.component r.message)
    (to_seq t)

let clear = Telemetry.clear
