type 'a entry = {
  time : Vtime.t;
  tie : int;
  value : 'a;
  mutable dead : bool;
}

type handle = H : 'a entry -> handle

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_tie : int;
  mutable live : int;
  (* [heap.(0).time] mirrored into a flat field ([Vtime.never] when
     empty), so the exchange's per-window horizon scans are one load
     with no pointer chase into the root entry. May briefly quote a
     cancelled root's (earlier) time until the next peek prunes it —
     harmless to the scans, which treat it as a conservative bound. *)
  mutable root_time : Vtime.t;
}

let create () =
  { heap = [||]; size = 0; next_tie = 0; live = 0; root_time = Vtime.never }

let is_empty t = t.live = 0
let length t = t.live
let physical_size t = t.size

let precedes a b =
  a.time < b.time || (a.time = b.time && a.tie < b.tie)

(* Hole-based sifts: carry the moving entry in a register and write
   each displaced entry once, instead of three barrier'd array writes
   per level that swapping costs. *)
let sift_up t i =
  let e = t.heap.(i) in
  let i = ref i in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    let p = t.heap.(parent) in
    if precedes e p then begin
      t.heap.(!i) <- p;
      i := parent
    end
    else continue := false
  done;
  t.heap.(!i) <- e

let sift_down t i =
  let e = t.heap.(i) in
  let i = ref i in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    let se = ref e in
    if l < t.size && precedes t.heap.(l) !se then begin
      smallest := l;
      se := t.heap.(l)
    end;
    if r < t.size && precedes t.heap.(r) !se then begin
      smallest := r;
      se := t.heap.(r)
    end;
    if !smallest <> !i then begin
      t.heap.(!i) <- !se;
      i := !smallest
    end
    else continue := false
  done;
  t.heap.(!i) <- e

let[@inline] refresh_root t =
  t.root_time <- (if t.size = 0 then Vtime.never else t.heap.(0).time)

(* Drop dead entries and re-establish the heap property bottom-up
   (Floyd). Handles stay valid: a handle points at its entry record, and
   cancelled entries are simply no longer reachable from the array. *)
let compact t =
  let dst = ref 0 in
  for i = 0 to t.size - 1 do
    let e = t.heap.(i) in
    if not e.dead then begin
      t.heap.(!dst) <- e;
      incr dst
    end
  done;
  t.size <- !dst;
  for i = (t.size / 2) - 1 downto 0 do
    sift_down t i
  done;
  refresh_root t

(* Cancellation is lazy, so a cancel/re-arm workload would otherwise
   grow the heap without bound: sift costs scale with log of the
   *physical* size, dead entries included. Compact once the dead
   outnumber the live. *)
let maybe_compact t =
  if t.size - t.live > t.live && t.size - t.live > 64 then compact t

let grow t entry =
  let cap = Array.length t.heap in
  if t.size = cap then begin
    let ncap = if cap = 0 then 16 else 2 * cap in
    let nheap = Array.make ncap entry in
    Array.blit t.heap 0 nheap 0 t.size;
    t.heap <- nheap
  end

let push_entry t entry =
  grow t entry;
  t.heap.(t.size) <- entry;
  t.size <- t.size + 1;
  t.live <- t.live + 1;
  sift_up t (t.size - 1);
  refresh_root t;
  H entry

let push_tie t ~time ~tie value =
  if tie >= t.next_tie then t.next_tie <- tie + 1;
  push_entry t { time; tie; value; dead = false }

let push t ~time value =
  let entry = { time; tie = t.next_tie; value; dead = false } in
  t.next_tie <- t.next_tie + 1;
  push_entry t entry

let cancel t (H entry) =
  if entry.dead then false
  else begin
    entry.dead <- true;
    t.live <- t.live - 1;
    maybe_compact t;
    true
  end

let pop_root t =
  let root = t.heap.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.heap.(0) <- t.heap.(t.size);
    sift_down t 0
  end;
  refresh_root t;
  root

let rec pop t =
  if t.size = 0 then None
  else
    let root = pop_root t in
    if root.dead then pop t
    else begin
      (* Mark fired so a later cancel of this handle is a no-op. *)
      root.dead <- true;
      t.live <- t.live - 1;
      Some (root.time, root.value)
    end

let rec peek_key t =
  if t.size = 0 then None
  else if t.heap.(0).dead then begin
    ignore (pop_root t);
    peek_key t
  end
  else Some (t.heap.(0).time, t.heap.(0).tie)

let peek_time t = Option.map fst (peek_key t)

(* Allocation-free variant for the exchange's per-window scans: one
   flat load of the mirrored root time (see [root_time]), no option. *)
let[@inline] peek_time_raw t = t.root_time
