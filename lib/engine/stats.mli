(** Counters and summary statistics for simulation measurement. *)

(** Monotone event counters. *)
module Counter : sig
  type t

  val create : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val reset : t -> unit
end

(** Streaming summary of a real-valued sample (count, mean, min, max,
    variance via Welford's algorithm). *)
module Summary : sig
  type t

  val create : unit -> t
  val observe : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val min : t -> float
  val max : t -> float
  val stddev : t -> float
  val total : t -> float
  val reset : t -> unit
  val pp : Format.formatter -> t -> unit
end

(** Fixed-bucket histogram with quantile estimates. *)
module Histogram : sig
  type t

  val create : buckets:float array -> t
  (** [buckets] are the upper bounds, strictly increasing; values above
      the last bound land in an overflow bucket. *)

  val observe : t -> float -> unit
  val count : t -> int
  val quantile : t -> float -> float
  (** [quantile t q] is an upper bound on the [q]-quantile (bucket upper
      edge); [q] in [0,1]. Returns [infinity] for overflow values. *)

  val dump : t -> (float * int) array
  (** [dump t] is one [(upper_bound, count)] pair per bucket, in bound
      order, including empty buckets; the final pair has upper bound
      [infinity] (the overflow bucket). *)

  val pp : Format.formatter -> t -> unit
end
