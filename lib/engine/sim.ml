type t = {
  mutable clock : Vtime.t;
  queue : (unit -> unit) Event_queue.t;
  wheel : (unit -> unit) Timer_wheel.t;
  root_rng : Rng.t;
  mutable next_tie : int;
  mutable events : int;
}

(* One-shot events (frame deliveries, CPU completions) live in the
   heap; cancel/re-arm protocol timers live in the wheel. A single tie
   counter spans both, so events popping from either structure form one
   globally FIFO-stable (time, tie) sequence — run order is identical
   to a single-queue simulator. *)
type handle =
  | Heap of Event_queue.handle
  | Wheel of Timer_wheel.handle

let create ?(seed = 42) () =
  {
    clock = Vtime.zero;
    queue = Event_queue.create ();
    wheel = Timer_wheel.create ();
    root_rng = Rng.create ~seed;
    next_tie = 0;
    events = 0;
  }

let now t = t.clock
let rng t = t.root_rng
let split_rng t = Rng.split t.root_rng
let events_processed t = t.events

let take_tie t =
  let tie = t.next_tie in
  t.next_tie <- tie + 1;
  tie

let schedule_at t ~time f =
  if Vtime.(time < t.clock) then
    invalid_arg "Sim.schedule_at: time is in the past";
  Heap (Event_queue.push_tie t.queue ~time ~tie:(take_tie t) f)

let schedule t ~delay f =
  if delay < 0 then invalid_arg "Sim.schedule: negative delay";
  schedule_at t ~time:(Vtime.add t.clock delay) f

let schedule_timer t ~delay f =
  if delay < 0 then invalid_arg "Sim.schedule_timer: negative delay";
  let time = Vtime.add t.clock delay in
  Wheel (Timer_wheel.push t.wheel ~time ~tie:(take_tie t) f)

let cancel t = function
  | Heap h -> ignore (Event_queue.cancel t.queue h)
  | Wheel h -> ignore (Timer_wheel.cancel t.wheel h)

(* One combined peek: which structure holds the next event, and when.
   [`Heap] wins ties below the wheel only by tie rank, preserving the
   global FIFO order at equal times. *)
let earliest t =
  match Event_queue.peek_key t.queue, Timer_wheel.peek_key t.wheel with
  | None, None -> `Empty
  | Some (ht, _), None -> `Heap ht
  | None, Some (wt, _) -> `Wheel wt
  | Some (ht, htie), Some (wt, wtie) ->
    if Vtime.(ht < wt) || (ht = wt && htie < wtie) then `Heap ht else `Wheel wt

let fire t popped =
  match popped with
  | None -> false
  | Some (time, f) ->
    t.clock <- time;
    t.events <- t.events + 1;
    f ();
    true

let step t =
  match earliest t with
  | `Empty -> false
  | `Heap _ -> fire t (Event_queue.pop t.queue)
  | `Wheel _ -> fire t (Timer_wheel.pop_min t.wheel)

let run_until t limit =
  let rec loop () =
    match earliest t with
    | `Heap time when Vtime.(time <= limit) ->
      if fire t (Event_queue.pop t.queue) then loop ()
    | `Wheel time when Vtime.(time <= limit) ->
      if fire t (Timer_wheel.pop_min t.wheel) then loop ()
    | `Empty | `Heap _ | `Wheel _ -> ()
  in
  loop ();
  t.clock <- Vtime.max t.clock limit

let run t = while step t do () done

let pending t = Event_queue.length t.queue + Timer_wheel.length t.wheel
