(* A simulator is one {!Partition} (clock + queues) plus the root
   random generator. All scheduling delegates to the partition, so the
   single-domain behavior — clock trajectory, tie sequence, RNG stream
   — is identical to the pre-split simulator. The parallel core
   ([Exchange]) drives one Sim per node plus a coordinator Sim, using
   the [next_event_time] / [drain_until] / [unsafe_set_clock] hooks
   below. *)

type t = { part : Partition.t; root_rng : Rng.t }

type handle = Partition.handle

let create ?(seed = 42) () =
  { part = Partition.create (); root_rng = Rng.create ~seed }

let now t = Partition.now t.part
let rng t = t.root_rng
let split_rng t = Rng.split t.root_rng
let events_processed t = Partition.events_processed t.part
let schedule t ~delay f = Partition.schedule t.part ~delay f
let schedule_at t ~time f = Partition.schedule_at t.part ~time f
let schedule_timer t ~delay f = Partition.schedule_timer t.part ~delay f
let cancel t h = Partition.cancel t.part h
let run_until t limit = Partition.run_until t.part limit
let run t = Partition.run t.part
let step t = Partition.step t.part
let pending t = Partition.pending t.part
let next_event_time t = Partition.next_event_time t.part
let[@inline] next_time_raw t = Partition.next_time_raw t.part
let drain_until t limit = Partition.drain_until t.part limit
let drain_while t ~cap = Partition.drain_while t.part ~cap
let[@inline] unsafe_set_clock t time = Partition.unsafe_set_clock t.part time
