(** Binary wire codec for every Totem protocol unit.

    The simulation passes protocol values by reference for speed, but a
    deployable implementation needs a byte format — and the throughput
    model needs its declared sizes to be honest. This codec provides
    both: {!encode_packet} etc. produce self-describing byte strings,
    and the test suite checks that (a) decoding inverts encoding
    exactly, and (b) the encoded size never exceeds the size the
    simulation charges to the wire (the sizes in {!Const} and
    {!Wire}).

    Format: little-endian fixed-width integers, length-prefixed
    sequences, one tag byte per unit kind. Application payloads are
    opaque to the protocol, so data elements carry their byte count and
    a zero-filled body (a real application would register its own
    payload codec via {!set_data_codec}). *)

type error =
  | Truncated
  | Bad_tag of int
  | Trailing_bytes of int
  | Bad_count of { what : string; count : int; limit : int }
      (** a count prefix exceeds how many of its elements a maximum
          payload could carry — rejected {e before} any allocation *)
  | Bad_field of { what : string; value : int; min : int; max : int }
      (** a parsed field fails the {!validate} semantic bounds *)

val pp_error : Format.formatter -> error -> unit

(** Unit kinds, as discriminated by the tag byte. *)
type decoded =
  | Packet of Wire.packet
  | Token of Token.t
  | Join of Wire.join
  | Probe of Wire.probe
  | Commit of Wire.commit

val encode_packet : Wire.packet -> string

val encode_token : Token.t -> string

val encode_join : Wire.join -> string

val encode_probe : Wire.probe -> string

val encode_commit : Wire.commit -> string

val decode : string -> (decoded, error) result
(** Decodes any encoded unit; rejects trailing garbage. Total on
    arbitrary bytes: every length/count prefix is bounded against the
    1424-byte {!Totem_net.Frame.max_payload_bytes} budget and checked
    against the remaining input before anything is allocated, so
    hostile input yields [Error], never an exception or a large
    allocation. *)

val validate : ?max_node:int -> decoded -> (unit, error) result
(** Semantic bounds a parse alone cannot establish, for input that may
    be CRC-colliding garbage: node-like ids (senders, origins, ring and
    set members, the aru setter) are bounded by [max_node] (default
    65535; clusters pass [num_nodes - 1]), fragment indices must lie
    within their counts, unfragmented message and fragment sizes within
    the payload budget, token rings must be non-empty and the commit
    round 1 or 2. Violations come back as [Bad_field]/[Bad_count]. *)

val shadow_check : Totem_net.Frame.payload -> (unit, string) result
(** Encodes the payload and decodes the bytes back, reporting any
    mismatch — a live validation harness for the codec: run it on every
    frame of a simulated cluster and the byte format is exercised by
    real protocol traffic, membership and recovery included. *)

val set_data_codec :
  encode:(Message.data -> string) -> decode:(string -> Message.data) -> unit
(** Installs an application payload codec. The default encodes every
    payload as its declared size in zero bytes and decodes to
    {!Message.Blob}. *)

(** {1 Byte-faithful frame layer}

    The wire mode's sending and receiving NIC ends. A frame image is
    the encoded unit followed by a 4-byte little-endian CRC-32 trailer
    ({!Totem_net.Crc32}), carried as {!Totem_net.Frame.Bytes}. *)

type frame_error =
  | Crc_mismatch  (** the trailer does not match the body — discard *)
  | Malformed of error
      (** the checksum held (collision or spontaneously consistent
          garbage) but total decoding or {!validate} rejected it *)

val pp_frame_error : Format.formatter -> frame_error -> unit

val encode_payload : Totem_net.Frame.payload -> string option
(** The encoded byte form of any protocol payload ([Data], [Tok],
    [Join], [Probe], [Commit]), without the CRC trailer; [None] for
    payload kinds the codec does not own. *)

val payload_of_decoded : decoded -> Totem_net.Frame.payload

val encode_frame : Totem_net.Frame.t -> Totem_net.Frame.t
(** The sending-NIC serializer (installed via
    {!Totem_net.Fabric.set_wire_encoder} in wire mode): replaces the
    payload with its checksummed byte image. [src] and [payload_bytes]
    are preserved — the CRC models the Ethernet FCS, which the frame
    model already charges inside
    {!Totem_net.Frame.header_overhead_bytes}, so timing is unchanged.
    Frames carrying foreign payload kinds pass through untouched. *)

val decode_frame :
  ?max_node:int -> Totem_net.Frame.t -> (Totem_net.Frame.t, frame_error) result
(** The receiving-NIC discard pipeline for {!Totem_net.Frame.Bytes}
    payloads: CRC-32 verification, then total decode, then {!validate}
    (with [max_node] as there). [Ok] rebuilds the frame with the
    decoded protocol payload; [Error] means the frame must be dropped,
    which the RRP observes exactly as loss. Frames with non-byte
    payloads pass through unchanged. *)
