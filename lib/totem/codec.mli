(** Binary wire codec for every Totem protocol unit.

    The simulation passes protocol values by reference for speed, but a
    deployable implementation needs a byte format — and the throughput
    model needs its declared sizes to be honest. This codec provides
    both: {!encode_packet} etc. produce self-describing byte strings,
    and the test suite checks that (a) decoding inverts encoding
    exactly, and (b) the encoded size never exceeds the size the
    simulation charges to the wire (the sizes in {!Const} and
    {!Wire}).

    Format: little-endian fixed-width integers, length-prefixed
    sequences, one tag byte per unit kind. Application payloads are
    opaque to the protocol, so data elements carry their byte count and
    a zero-filled body (a real application would register its own
    payload codec via {!set_data_codec}). *)

type error =
  | Truncated
  | Bad_tag of int
  | Trailing_bytes of int
  | Bad_count of { what : string; count : int; limit : int }
      (** a count prefix exceeds how many of its elements a maximum
          payload could carry — rejected {e before} any allocation *)
  | Bad_field of { what : string; value : int; min : int; max : int }
      (** a parsed field fails the {!validate} semantic bounds *)

val pp_error : Format.formatter -> error -> unit

(** Unit kinds, as discriminated by the tag byte. *)
type decoded =
  | Packet of Wire.packet
  | Token of Token.t
  | Join of Wire.join
  | Probe of Wire.probe
  | Commit of Wire.commit

val encode_packet : Wire.packet -> string

val encode_token : Token.t -> string

val encode_join : Wire.join -> string

val encode_probe : Wire.probe -> string

val encode_commit : Wire.commit -> string

val decode : ?pos:int -> ?len:int -> string -> (decoded, error) result
(** Decodes any encoded unit; rejects trailing garbage. Total on
    arbitrary bytes: every length/count prefix is bounded against the
    1424-byte {!Totem_net.Frame.max_payload_bytes} budget and checked
    against the remaining input before anything is allocated, so
    hostile input yields [Error], never an exception or a large
    allocation.

    [pos] (default 0) and [len] (default to the end of the string)
    restrict the decode to a substring without copying it out — the
    frame pipeline decodes an image in place with the CRC trailer
    excluded, no [String.sub].
    @raise Invalid_argument if [pos]/[len] do not describe a valid
    range of [s]. *)

val validate : ?max_node:int -> decoded -> (unit, error) result
(** Semantic bounds a parse alone cannot establish, for input that may
    be CRC-colliding garbage: node-like ids (senders, origins, ring and
    set members, the aru setter) are bounded by [max_node] (default
    65535; clusters pass [num_nodes - 1]), fragment indices must lie
    within their counts, unfragmented message and fragment sizes within
    the payload budget, token rings must be non-empty and the commit
    round 1 or 2. Violations come back as [Bad_field]/[Bad_count]. *)

val shadow_check : Totem_net.Frame.payload -> (unit, string) result
(** Encodes the payload and decodes the bytes back, reporting any
    mismatch — a live validation harness for the codec: run it on every
    frame of a simulated cluster and the byte format is exercised by
    real protocol traffic, membership and recovery included. *)

val set_data_codec :
  encode:(Message.data -> string) -> decode:(string -> Message.data) -> unit
(** Installs an application payload codec. The default encodes every
    payload as its declared size in zero bytes and decodes to
    {!Message.Blob}. *)

(** {1 Byte-faithful frame layer}

    The wire mode's sending and receiving NIC ends. A frame image is
    the encoded unit followed by a 4-byte little-endian CRC-32 trailer
    ({!Totem_net.Crc32}), carried as {!Totem_net.Frame.Bytes}. *)

type frame_error =
  | Crc_mismatch  (** the trailer does not match the body — discard *)
  | Malformed of error
      (** the checksum held (collision or spontaneously consistent
          garbage) but total decoding or {!validate} rejected it *)

val pp_frame_error : Format.formatter -> frame_error -> unit

val encode_payload : Totem_net.Frame.payload -> string option
(** The encoded byte form of any protocol payload ([Data], [Tok],
    [Join], [Probe], [Commit]), without the CRC trailer; [None] for
    payload kinds the codec does not own. *)

val payload_of_decoded : decoded -> Totem_net.Frame.payload

(** {2 Encode-once / decode-once caches}

    Active replication serializes one logical frame once per network
    and every receiver of a broadcast deserializes the same byte string
    once per NIC — N x M copies of bitwise-identical work (the paper's
    Sec. 5 fan-out). These caches collapse that to once per logical
    frame by keying on {e physical} identity: the RRP styles hand the
    same packet/token value to every network, and every clean receiver
    shares the sender's byte string. {!Totem_net.Network.corrupt_frame}
    always substitutes a freshly allocated string, so a damaged copy
    can never alias a cached decode — it misses and runs the full
    CRC -> decode -> validate discard pipeline, which is why
    identity-keyed caching cannot mask corruption.

    Caches are explicit per-cluster values (created by
    {!Totem_cluster.Cluster.create}), never module globals: bench
    sweeps run clusters on parallel domains. *)

type encode_cache
(** Memo of encoded frame images keyed on the identity of the inner
    protocol value — a small ring for packets (SRP retransmissions
    re-send the stored packet value), one slot per membership/token
    unit kind. *)

val encode_cache : ?packet_slots:int -> unit -> encode_cache
(** A fresh cache; [packet_slots] (default 8, minimum 1) sizes the
    packet ring. *)

val encode_cache_stats : encode_cache -> int * int
(** [(hits, misses)] so far — a hit reused an encoded image. *)

type decode_cache
(** FIFO ring of decoded frame payloads keyed on the physical identity
    of the byte string. Only images that passed the full discard
    pipeline are stored: a rejected string is re-verified (and
    re-rejected) on every copy, so cached and uncached runs emit
    identical [Frame_crc_reject]/[Frame_decode_reject] telemetry. *)

val decode_cache : ?slots:int -> unit -> decode_cache
(** A fresh cache; [slots] (default 64, minimum 1) bounds the frames
    remembered — sized for the broadcast copies in flight across one
    cluster. *)

val decode_cache_stats : decode_cache -> int * int
(** [(hits, misses)] so far — a hit skipped CRC + decode + validate. *)

val encode_frame : ?cache:encode_cache -> Totem_net.Frame.t -> Totem_net.Frame.t
(** The sending-NIC serializer (installed via
    {!Totem_net.Fabric.set_wire_encoder} in wire mode): replaces the
    payload with its checksummed byte image. [src] and [payload_bytes]
    are preserved — the CRC models the Ethernet FCS, which the frame
    model already charges inside
    {!Totem_net.Frame.header_overhead_bytes}, so timing is unchanged.
    Frames carrying foreign payload kinds pass through untouched.

    With [cache], a frame wrapping a protocol value that was just
    encoded reuses the cached image (encode-once fan-out); without it,
    every call serializes afresh. *)

val decode_frame :
  ?cache:decode_cache ->
  ?max_node:int ->
  Totem_net.Frame.t ->
  (Totem_net.Frame.t, frame_error) result
(** The receiving-NIC discard pipeline for {!Totem_net.Frame.Bytes}
    payloads: CRC-32 verification, then total decode, then {!validate}
    (with [max_node] as there). [Ok] rebuilds the frame with the
    decoded protocol payload; [Error] means the frame must be dropped,
    which the RRP observes exactly as loss. Frames with non-byte
    payloads pass through unchanged.

    With [cache], a byte string whose decode already succeeded is
    recognized by physical identity and skips the pipeline
    (decode-once delivery); rejects are never cached. *)
