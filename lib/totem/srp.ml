open Totem_engine

type callbacks = {
  on_deliver : Message.t -> unit;
  on_ring_change : ring_id:int -> members:Totem_net.Addr.node_id array -> unit;
}

type stats = {
  mutable delivered_messages : int;
  mutable delivered_bytes : int;
  mutable sent_messages : int;
  mutable sent_packets : int;
  mutable duplicate_packets : int;
  mutable duplicate_tokens : int;
  mutable retransmissions_served : int;
  mutable retransmissions_requested : int;
  mutable token_visits : int;
  mutable token_retransmits : int;
  mutable gather_entries : int;
  mutable ring_changes : int;
}

let fresh_stats () =
  {
    delivered_messages = 0;
    delivered_bytes = 0;
    sent_messages = 0;
    sent_packets = 0;
    duplicate_packets = 0;
    duplicate_tokens = 0;
    retransmissions_served = 0;
    retransmissions_requested = 0;
    token_visits = 0;
    token_retransmits = 0;
    gather_entries = 0;
    ring_changes = 0;
  }

type state =
  | Idle  (** created, no ring yet *)
  | Operational
  | Gather  (** collecting Joins *)
  | Commit_phase  (** the commit token is circulating the proposed ring *)
  | Recover  (** exchanging old-ring messages before installing *)

(* Fragment reassembly progress for one origin. *)
type reassembly = {
  re_app_seq : int;
  mutable re_next : int;  (* next fragment index expected *)
}

type t = {
  sim : Sim.t;
  cpu : Cpu.t;
  const : Const.t;
  me : Totem_net.Addr.node_id;
  lower : Lower.t;
  trace : Trace.t option;
  callbacks : callbacks;
  stats : stats;
  store : Recv_buffer.t;
  pending_delivery : (int * Wire.element) Queue.t;
      (* (seq, element) popped from the store in order, awaiting the
         safe-delivery stability condition *)
  mutable safe_horizon : int;
      (* seqs at or below this are held by every ring member: the
         minimum of the last two arus the token showed us *)
  rotation_hist : Stats.Histogram.t;
      (* wall time of each full token rotation, observed at the leader *)
  mutable rotation_started : Vtime.t;  (* negative = not yet seen *)
  allowance_hist : Stats.Histogram.t;
      (* flow-control allowance granted per token visit *)
  flow : Flow.t;
  send_queue : Message.t Queue.t;
  mutable pending_elements : Wire.element list;
      (* leftover fragments of a partially sent large message *)
  mutable supplier : (unit -> (int * Message.data) option) option;
  mutable app_seq : int;
  mutable state : state;
  mutable ring : Totem_net.Addr.node_id array;
  mutable ring_id : int;
  mutable last_rx_token : Token.t option;  (* newest token processed *)
  mutable last_sent_token : Token.t option;
  mutable aru_history : int list;  (* recent observed token arus, newest first *)
  reassembly : (Totem_net.Addr.node_id, reassembly) Hashtbl.t;
  mutable joins : Wire.join list;  (* collected during gather *)
  mutable pending_commit : Wire.commit option;
      (* the commit being circulated / recovered towards *)
  mutable recover_target : int;
      (* the old-ring seq every member must reach before installing *)
  mutable max_ring_id_seen : int;
  mutable crashed : bool;
  mutable probe_timer : Timer.t option;
  mutable commit_timer : Timer.t option;  (* representative's retransmit *)
  mutable token_loss_timer : Timer.t option;
  mutable token_retransmit_timer : Timer.t option;
  mutable join_timer : Timer.t option;
  mutable consensus_timer : Timer.t option;
}

let trace t fmt =
  match t.trace with
  | Some tr -> Trace.emitf tr ~component:(Printf.sprintf "srp%d" t.me) fmt
  | None -> Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

(* Structured telemetry. [tel_active] is the hot-path guard: call sites
   only build an event value when someone is listening. *)
let[@inline] tel_active t =
  match t.trace with Some tl -> Telemetry.active tl | None -> false

let tel_emit t ev =
  match t.trace with Some tl -> Telemetry.emit tl ev | None -> ()

let tok_info (tok : Token.t) =
  {
    Telemetry.ring_id = tok.ring_id;
    seq = tok.seq;
    rotation = tok.rotation;
    hops = tok.hops;
  }

let me t = t.me
let my_aru t = Recv_buffer.my_aru t.store
let safe_horizon t = t.safe_horizon
let highest_seen t = Recv_buffer.highest_seen t.store
let current_ring_id t = t.ring_id
let members t = t.ring
let is_operational t = t.state = Operational
let stats t = t.stats
let rotation_histogram t = t.rotation_hist
let allowance_histogram t = t.allowance_hist
let is_crashed t = t.crashed
let send_queue_length t = Queue.length t.send_queue

(* --- timers -------------------------------------------------------- *)

let get_timer slot = Option.get slot

let stop_all_timers t =
  let stop = function Some tm -> Timer.stop tm | None -> () in
  stop t.probe_timer;
  stop t.commit_timer;
  stop t.token_loss_timer;
  stop t.token_retransmit_timer;
  stop t.join_timer;
  stop t.consensus_timer

(* --- delivery ------------------------------------------------------ *)

let deliver_message t (m : Message.t) =
  t.stats.delivered_messages <- t.stats.delivered_messages + 1;
  t.stats.delivered_bytes <- t.stats.delivered_bytes + m.size;
  if tel_active t then
    tel_emit t
      (Telemetry.Msg_deliver
         {
           node = t.me;
           origin = m.origin;
           tid = Causal.tid_of ~origin:m.origin ~app_seq:m.app_seq;
           bytes = m.size;
         });
  t.callbacks.on_deliver m

let deliver_element t (e : Wire.element) =
  match e.fragment with
  | None -> deliver_message t e.message
  | Some { index; count; _ } ->
    let origin = e.message.origin in
    let fresh () =
      Hashtbl.replace t.reassembly origin
        { re_app_seq = e.message.app_seq; re_next = 1 }
    in
    (match Hashtbl.find_opt t.reassembly origin with
    | None -> if index = 0 then fresh ()
    | Some r ->
      if index = 0 then fresh ()
      else if r.re_app_seq = e.message.app_seq && r.re_next = index then
        r.re_next <- index + 1
      else
        (* interleaving anomaly (ring change mid-message): drop partial *)
        Hashtbl.remove t.reassembly origin);
    (match Hashtbl.find_opt t.reassembly origin with
    | Some r when r.re_app_seq = e.message.app_seq && r.re_next = count ->
      Hashtbl.remove t.reassembly origin;
      deliver_message t e.message
    | _ -> ())

(* Whether an element may be handed to the application now: agreed
   content always, safe content only once stability (the packet's seq at
   or below the safe horizon) proves every member holds it. Total order
   forces in-order draining, so one unstable safe element holds
   everything ordered after it. *)
let element_deliverable t seq (e : Wire.element) =
  (not e.message.Message.safe) || seq <= t.safe_horizon

let flush_pending t ~ignore_safety =
  let rec drain () =
    match Queue.peek_opt t.pending_delivery with
    | Some (seq, e) when ignore_safety || element_deliverable t seq e ->
      ignore (Queue.pop t.pending_delivery);
      deliver_element t e;
      drain ()
    | Some _ | None -> ()
  in
  drain ()

let deliver_ready t =
  List.iter
    (fun (p : Wire.packet) ->
      List.iter (fun e -> Queue.add (p.seq, e) t.pending_delivery) p.elements)
    (Recv_buffer.pop_deliverable t.store);
  flush_pending t ~ignore_safety:false

(* --- token evidence and retransmission ----------------------------- *)

(* "A node periodically resends a copy of the last token it sent, as
   long as it has not received a message with a sequence number greater
   than that in the token" (Sec. 2). *)
let token_retransmit_expired t () =
  if (not t.crashed) && t.state = Operational then begin
    match t.last_sent_token with
    | None -> ()
    | Some tok ->
      t.stats.token_retransmits <- t.stats.token_retransmits + 1;
      if tel_active t then
        tel_emit t
          (Telemetry.Token_retransmit { node = t.me; tok = tok_info tok });
      trace t "retransmit token %a" Token.pp tok;
      t.lower.send_token ~dst:(Membership.next_on_ring t.ring ~me:t.me) tok;
      Timer.start_if_stopped (get_timer t.token_retransmit_timer)
        t.const.token_retransmit_interval
  end

let evidence_of_token_progress t =
  (match t.token_retransmit_timer with Some tm -> Timer.stop tm | None -> ());
  t.last_sent_token <- None

(* --- membership ---------------------------------------------------- *)

let proc_set_guess t =
  (* Everyone we have heard a Join from, plus our last ring, plus us. *)
  let module S = Set.Make (Int) in
  let s = S.singleton t.me in
  let s = Array.fold_left (fun s n -> S.add n s) s t.ring in
  let s = List.fold_left (fun s (j : Wire.join) -> S.add j.sender s) s t.joins in
  S.elements s

let send_join t =
  let join =
    {
      Wire.sender = t.me;
      proc_set = proc_set_guess t;
      fail_set = [];
      max_ring_id = t.max_ring_id_seen;
    }
  in
  trace t "send join (proc=[%s] max_ring=%d)"
    (String.concat ";" (List.map string_of_int join.proc_set))
    join.max_ring_id;
  t.lower.send_join join

let rec enter_gather t ~reason =
  if not t.crashed then begin
    trace t "enter gather: %s" reason;
    if tel_active t then
      tel_emit t
        (Telemetry.Memb_transition
           { node = t.me; phase = "gather"; ring_id = t.ring_id; detail = reason });
    t.stats.gather_entries <- t.stats.gather_entries + 1;
    t.state <- Gather;
    t.joins <- [];
    t.pending_commit <- None;
    stop_all_timers t;
    send_join t;
    Timer.start (get_timer t.join_timer) t.const.join_interval;
    Timer.start (get_timer t.consensus_timer) t.const.consensus_timeout
  end

and join_timer_expired t () =
  if (not t.crashed) && t.state = Gather then begin
    send_join t;
    Timer.start (get_timer t.join_timer) t.const.join_interval
  end

and consensus_expired t () =
  if t.crashed then ()
  else
    match t.state with
    | Idle | Operational -> ()
    | Commit_phase ->
      (* The commit token never completed its rounds: a proposed member
         vanished. Start the membership protocol over. *)
      enter_gather t ~reason:"commit phase timed out"
    | Recover ->
      (* The recovery exchange stalled (unrecoverable loss); progress
         wins — install with what we have. *)
      trace t "recovery deadline: installing with aru=%d target=%d"
        (Recv_buffer.my_aru t.store) t.recover_target;
      finish_recovery t
    | Gather ->
      let cands = Membership.candidates ~me:t.me ~joins:t.joins in
      let rep = Membership.representative cands in
      if rep = t.me then begin
        let ring = Membership.form_ring cands in
        (* Ring ids carry the representative in the low bits so that two
           reformations racing in disjoint partitions can never mint the
           same id (Totem proper uses a (seq, rep) pair; encoding it in
           one int keeps ids ordered by epoch). *)
        let epoch = Membership.max_ring_id t.joins t.max_ring_id_seen / 64 in
        let ring_id = ((epoch + 1) * 64) + (t.me mod 64) in
        trace t "representative: forming ring %d [%s]" ring_id
          (String.concat ";" (List.map string_of_int cands));
        if Array.length ring = 1 then begin
          (* Alone: nothing to commit or recover. *)
          install_new_ring t ~ring_id ~members:ring;
          process_token t (Token.initial ~ring ~ring_id)
        end
        else begin_commit_phase t ~ring ~ring_id
      end
      else begin
        (* Wait for the representative's commit token; if it never
           comes, start over — the representative may itself have
           failed. *)
        trace t "consensus: waiting for commit from N%d" rep;
        Timer.start (get_timer t.consensus_timer) t.const.consensus_timeout;
        t.joins <- [];
        send_join t
      end

(* --- commit and recovery (Totem membership, Sec. 2's substrate) ----- *)

and my_member_info t =
  {
    Wire.mi_node = t.me;
    mi_old_ring = t.ring_id;
    mi_aru = Recv_buffer.my_aru t.store;
  }

and send_commit_next t (cm : Wire.commit) =
  let dst = Membership.next_on_ring cm.cm_ring ~me:t.me in
  trace t "commit round %d for ring %d -> N%d" cm.cm_round cm.cm_ring_id dst;
  t.lower.send_commit ~dst cm

and begin_commit_phase t ~ring ~ring_id =
  if tel_active t then
    tel_emit t
      (Telemetry.Memb_transition
         {
           node = t.me;
           phase = "commit";
           ring_id;
           detail = Printf.sprintf "%d members" (Array.length ring);
         });
  t.state <- Commit_phase;
  (match t.join_timer with Some tm -> Timer.stop tm | None -> ());
  let cm =
    { Wire.cm_ring_id = ring_id; cm_ring = ring; cm_round = 1;
      cm_info = [ my_member_info t ] }
  in
  t.pending_commit <- Some cm;
  send_commit_next t cm;
  Timer.restart (get_timer t.consensus_timer) t.const.consensus_timeout;
  Timer.start_if_stopped (get_timer t.commit_timer)
    t.const.token_retransmit_interval

(* The representative retransmits its last commit until the phase
   completes (the member path re-forwards duplicates, so one surviving
   copy heals the whole chain). *)
and commit_retry_expired t =
  (match (t.state, t.pending_commit) with
  | (Commit_phase | Recover), Some cm
    when Membership.leader cm.cm_ring = t.me ->
    send_commit_next t cm;
    Timer.start_if_stopped (get_timer t.commit_timer)
      t.const.token_retransmit_interval
  | _ -> ())

and begin_recover t (cm : Wire.commit) =
  t.state <- Recover;
  t.pending_commit <- Some cm;
  (match t.join_timer with Some tm -> Timer.stop tm | None -> ());
  (match t.token_loss_timer with Some tm -> Timer.stop tm | None -> ());
  Timer.restart (get_timer t.consensus_timer) t.const.consensus_timeout;
  (* The recovery plan: every member that survives from our old ring
     must deliver the same prefix of it, so all must reach the maximum
     aru any of them holds. The lowest-id member already holding
     everything rebroadcasts the range; the Totem duplicate filter
     absorbs the copies everyone else already has. *)
  let peers =
    List.filter (fun (i : Wire.member_info) -> i.mi_old_ring = t.ring_id) cm.cm_info
  in
  let target =
    List.fold_left (fun acc (i : Wire.member_info) -> max acc i.mi_aru) 0 peers
  in
  let low =
    List.fold_left (fun acc (i : Wire.member_info) -> min acc i.mi_aru) target peers
  in
  t.recover_target <- target;
  let holders =
    List.filter (fun (i : Wire.member_info) -> i.mi_aru = target) peers
  in
  let chosen =
    List.fold_left (fun acc (i : Wire.member_info) -> min acc i.mi_node) max_int
      holders
  in
  trace t "recover: ring %d, target=%d low=%d rebroadcaster=N%d" cm.cm_ring_id
    target low chosen;
  if tel_active t then
    tel_emit t
      (Telemetry.Memb_transition
         {
           node = t.me;
           phase = "recover";
           ring_id = cm.cm_ring_id;
           detail = Printf.sprintf "target=%d low=%d" target low;
         });
  if chosen = t.me && target > low then
    for seq = low + 1 to target do
      match Recv_buffer.find t.store seq with
      | Some p ->
        trace t "recovery rebroadcast seq=%d" seq;
        t.lower.send_data p
      | None -> trace t "recovery: seq=%d already gone (gc)" seq
    done;
  check_recovery_complete t

and check_recovery_complete t =
  if t.state = Recover && Recv_buffer.my_aru t.store >= t.recover_target then
    finish_recovery t

and finish_recovery t =
  match t.pending_commit with
  | Some cm when t.state = Recover ->
    (* Hand the application the agreed old-ring prefix (held-back safe
       messages included — extended virtual synchrony would tag these
       transitional), then switch rings. *)
    deliver_ready t;
    flush_pending t ~ignore_safety:true;
    let ring_id = cm.Wire.cm_ring_id and ring = cm.Wire.cm_ring in
    t.pending_commit <- None;
    install_new_ring t ~ring_id ~members:ring;
    if Membership.leader ring = t.me then begin
      (* Give the other members the grace to complete their recovery
         before the first token demands their attention. *)
      let delay = t.const.recovery_grace in
      ignore
        (Sim.schedule t.sim ~delay (fun () ->
             if
               (not t.crashed) && t.state = Operational
               && t.ring_id = ring_id
             then process_token t (Token.initial ~ring ~ring_id)))
    end
  | _ -> ()

and token_loss_expired t () =
  if (not t.crashed) && t.state = Operational then begin
    if tel_active t then
      tel_emit t (Telemetry.Token_loss { node = t.me; ring_id = t.ring_id });
    enter_gather t ~reason:"token loss timeout"
  end

(* Adopt a new ring: reset the sequence space, flush what is deliverable
   from the old ring, and go operational. *)
and install_new_ring t ~ring_id ~members =
  deliver_ready t;
  (* Transitional-configuration simplification: whatever was ordered on
     the old ring is delivered before the new ring starts, including
     held-back safe messages (extended virtual synchrony would tag these
     as transitional). *)
  flush_pending t ~ignore_safety:true;
  t.safe_horizon <- 0;
  Recv_buffer.reset t.store;
  Flow.reset t.flow;
  Hashtbl.reset t.reassembly;
  t.ring <- members;
  t.ring_id <- ring_id;
  t.max_ring_id_seen <- max t.max_ring_id_seen ring_id;
  t.state <- Operational;
  t.last_rx_token <- None;
  t.last_sent_token <- None;
  t.aru_history <- [];
  t.joins <- [];
  t.stats.ring_changes <- t.stats.ring_changes + 1;
  (* A half-sent fragmented message cannot continue on the new ring:
     receivers flushed their partial reassembly, so the remaining
     fragments would never complete. Drop the remainder (the message is
     lost wholesale, as extended virtual synchrony permits for messages
     undelivered at a configuration change). *)
  (match t.pending_elements with
  | { Wire.fragment = Some f; _ } :: _ when f.Wire.index > 0 ->
    t.pending_elements <- []
  | _ -> ());
  stop_all_timers t;
  Timer.start (get_timer t.token_loss_timer) t.const.token_loss_timeout;
  Timer.start (get_timer t.probe_timer) t.const.merge_detect_interval;
  t.rotation_started <- Vtime.ns (-1);
  trace t "installed ring %d (%d members)" ring_id (Array.length members);
  if tel_active t then
    tel_emit t
      (Telemetry.Ring_installed
         { node = t.me; ring_id; members = Array.length members });
  t.callbacks.on_ring_change ~ring_id ~members

(* --- the token visit ------------------------------------------------ *)

(* Collect elements (packed user messages and fragments) that fill at
   most [max_packets] packets — the flow-control window counts protocol
   packets, the units that actually occupy the wire and the receivers'
   socket buffers. Works at element granularity so a message larger
   than one window crosses the ring a few fragments per token visit;
   leftovers wait in [pending_elements]. Mirrors Packing.pack_elements'
   greedy fill exactly. *)
and collect_for_packets t max_packets =
  let capacity = Totem_net.Frame.max_payload_bytes in
  let completed = ref 0 and used = ref 0 in
  let acc = ref [] in
  (* Whether one more element fits the window; updates the fill state. *)
  let fits e =
    let b = Wire.element_bytes t.const e in
    let completed', used' =
      if !used = 0 || (t.const.packing_enabled && !used + b <= capacity)
      then (!completed, !used + b)
      else (!completed + 1, b)
    in
    let total = completed' + (if used' > 0 then 1 else 0) in
    if total <= max_packets then begin
      completed := completed';
      used := used';
      true
    end
    else false
  in
  let refill_pending () =
    if t.pending_elements = [] then begin
      if not (Queue.is_empty t.send_queue) then
        t.pending_elements <-
          Packing.elements_of_message t.const (Queue.pop t.send_queue)
      else
        match t.supplier with
        | None -> ()
        | Some pull ->
          (match pull () with
          | None -> ()
          | Some (size, data) ->
            t.app_seq <- t.app_seq + 1;
            if tel_active t then
              tel_emit t
                (Telemetry.Msg_originate
                   {
                     node = t.me;
                     tid = Causal.tid_of ~origin:t.me ~app_seq:t.app_seq;
                     bytes = size;
                     safe = false;
                   });
            t.pending_elements <-
              Packing.elements_of_message t.const
                (Message.make ~origin:t.me ~app_seq:t.app_seq ~size ~data ()))
    end
  in
  let rec go () =
    refill_pending ();
    match t.pending_elements with
    | [] -> ()
    | e :: rest ->
      if fits e then begin
        acc := e :: !acc;
        t.pending_elements <- rest;
        go ()
      end
      else if tel_active t then
        (* The flow window closed with work still queued: record the
           deferral against the head element's message so the causal
           view shows where backpressure held each message up. *)
        tel_emit t
          (Telemetry.Msg_defer
             {
               node = t.me;
               tid =
                 Causal.tid_of ~origin:e.message.origin
                   ~app_seq:e.message.app_seq;
               pending =
                 List.length t.pending_elements + Queue.length t.send_queue;
             })
  in
  go ();
  List.rev !acc

and process_token t (tok : Token.t) =
  t.stats.token_visits <- t.stats.token_visits + 1;
  t.last_rx_token <- Some tok;
  if tel_active t then
    tel_emit t (Telemetry.Token_rx { node = t.me; tok = tok_info tok });
  (* The leader counts completed rotations. *)
  let rotation =
    if t.me = Membership.leader t.ring && tok.hops > 0 then tok.rotation + 1
    else tok.rotation
  in
  (* Rotation timing is an always-on metric: the leader sees the token
     exactly once per circuit, so its inter-visit gap is the rotation
     time. *)
  if rotation > tok.rotation then begin
    let now = Sim.now t.sim in
    if t.rotation_started >= Vtime.zero then
      Stats.Histogram.observe t.rotation_hist
        (Vtime.to_float_ms (Vtime.sub now t.rotation_started));
    t.rotation_started <- now
  end;
  Timer.restart (get_timer t.token_loss_timer) t.const.token_loss_timeout;
  (match t.token_retransmit_timer with Some tm -> Timer.stop tm | None -> ());
  (* Serve retransmission requests we can satisfy. *)
  let served, rtr_left =
    List.partition (fun seq -> Recv_buffer.find t.store seq <> None) tok.rtr
  in
  let retrans_packets =
    List.filter_map (fun seq -> Recv_buffer.find t.store seq) served
  in
  (* Broadcast new messages within the flow-control allowance (counted
     in packets, the unit the window protects receivers against). *)
  let allowance =
    Flow.allowance t.const t.flow ~fcc:tok.fcc ~members:(Array.length t.ring)
  in
  Stats.Histogram.observe t.allowance_hist (float_of_int allowance);
  let elements = collect_for_packets t allowance in
  let groups = Packing.pack_elements t.const elements in
  let copies = max 1 (t.lower.copies_per_send ()) in
  let ring_id = t.ring_id in
  let still_valid () =
    (not t.crashed) && t.state = Operational && ring_id = t.ring_id
  in
  (* Each packet is a separate CPU job so frames reach the wire one by
     one, as successive sendmsg calls do — the wire must not idle while
     a whole burst is "being prepared". The CPU is FIFO, so order is
     preserved and the token forward (the last job) leaves after the
     data. *)
  let packet_cost (p : Wire.packet) =
    let per_copy =
      Const.frame_cpu_cost t.const
        ~payload_bytes:(Wire.packet_payload_bytes t.const p)
    in
    Vtime.ns
      ((copies * per_copy) + (List.length p.elements * t.const.cpu_message_cost))
  in
  (* Retransmissions: identical copies of the original packets. If two
     nodes miss the same message only one retransmission occurs, because
     the first server removes the request from the token (Sec. 2). *)
  List.iter
    (fun (p : Wire.packet) ->
      Cpu.submit t.cpu ~cost:(packet_cost p) (fun () ->
          if still_valid () then begin
            t.stats.retransmissions_served <- t.stats.retransmissions_served + 1;
            if tel_active t then
              tel_emit t (Telemetry.Rtr_serve { node = t.me; seq = p.seq });
            trace t "retransmit seq=%d" p.seq;
            t.lower.send_data p
          end))
    retrans_packets;
  (* New broadcasts, sequenced after the token's seq. *)
  let seq = ref tok.seq in
  List.iter
    (fun elements ->
      incr seq;
      let packet =
        { Wire.ring_id = t.ring_id; seq = !seq; sender = t.me; elements }
      in
      (* Own packets are filed locally: the sender delivers its own
         messages in the same total order and serves retransmissions. *)
      ignore (Recv_buffer.store t.store packet);
      t.stats.sent_packets <- t.stats.sent_packets + 1;
      if tel_active t then begin
        tel_emit t
          (Telemetry.Msg_tx
             {
               node = t.me;
               seq = !seq;
               bytes = Wire.packet_payload_bytes t.const packet;
             });
        (* The join point between trace ids and wire packets: each
           element of the packet records that its message (fragment)
           was assigned this ring sequence number. *)
        List.iter
          (fun (e : Wire.element) ->
            let frag, frags =
              match e.fragment with
              | None -> (0, 1)
              | Some f -> (f.index, f.count)
            in
            tel_emit t
              (Telemetry.Msg_ordered
                 {
                   node = t.me;
                   tid =
                     Causal.tid_of ~origin:e.message.origin
                       ~app_seq:e.message.app_seq;
                   ring_id = t.ring_id;
                   seq = !seq;
                   frag;
                   frags;
                 }))
          elements
      end;
      Cpu.submit t.cpu ~cost:(packet_cost packet) (fun () ->
          if still_valid () then t.lower.send_data packet))
    groups;
  let new_messages =
    List.length
      (List.filter
         (fun (e : Wire.element) ->
           match e.fragment with None -> true | Some f -> f.index = 0)
         elements)
  in
  t.stats.sent_messages <- t.stats.sent_messages + new_messages;
  let token_cost =
    Vtime.ns (t.const.cpu_token_cost + (copies * t.const.cpu_frame_cost))
  in
  Cpu.submit t.cpu ~cost:token_cost (fun () ->
      if still_valid () then
        complete_token_visit t tok ~rotation ~rtr_left ~new_seq:!seq
          ~sent:(List.length groups))

and complete_token_visit t tok ~rotation ~rtr_left ~new_seq ~sent =
  let seq = ref new_seq in
  (* Request what we are missing. *)
  let missing = Recv_buffer.missing_up_to t.store !seq in
  t.stats.retransmissions_requested <-
    t.stats.retransmissions_requested + List.length missing;
  if tel_active t && missing <> [] then
    tel_emit t
      (Telemetry.Rtr_request
         {
           node = t.me;
           count = List.length missing;
           low = List.fold_left min max_int missing;
           high = List.fold_left max min_int missing;
         });
  let rtr = Retransmit.truncate 200 (Retransmit.merge rtr_left missing) in
  (* aru: lower it to our own, or raise it if we set it last. *)
  let aru, aru_setter =
    let mine = Recv_buffer.my_aru t.store in
    if mine < tok.aru || tok.aru_setter = t.me then (mine, t.me)
    else (tok.aru, tok.aru_setter)
  in
  let fcc = Flow.contribute t.flow ~fcc:tok.fcc ~sent in
  let tok' =
    {
      tok with
      Token.seq = !seq;
      rotation;
      hops = tok.hops + 1;
      aru;
      aru_setter;
      fcc;
      rtr;
    }
  in
  (* Stability GC: any member still missing a packet lowers the token's
     aru below it within one rotation, so the minimum over several
     consecutive visits is at or below every member's aru — everything
     at or below it is present everywhere and our retained copies can
     go. (The minimum matters: right after a broadcast the sender raises
     the aru before a lagging member has had its turn to lower it.) *)
  t.aru_history <- aru :: t.aru_history;
  (match t.aru_history with
  | a1 :: a2 :: _ ->
    (* aru is monotone evidence: two consecutive sightings bound what
       every member has (the setter only raises it with everything in
       hand; others lower it to their own aru). *)
    t.safe_horizon <- max t.safe_horizon (min a1 a2)
  | _ -> ());
  (match t.aru_history with
  | a :: b :: c :: d :: _ ->
    Recv_buffer.gc_below t.store (min (min a b) (min c d));
    t.aru_history <- Retransmit.truncate 4 t.aru_history
  | _ -> ());
  let dst = Membership.next_on_ring t.ring ~me:t.me in
  if tel_active t then
    tel_emit t
      (Telemetry.Token_tx
         { node = t.me; tok = tok_info tok'; rtr_len = List.length rtr });
  trace t "forward %a to N%d" Token.pp tok' dst;
  t.lower.send_token ~dst tok';
  t.last_sent_token <- Some tok';
  Timer.start_if_stopped (get_timer t.token_retransmit_timer)
    t.const.token_retransmit_interval;
  deliver_ready t

(* --- merge detection (Corosync's memb_merge_detect) ----------------- *)

let probe_expired t =
  if (not t.crashed) && t.state = Operational then begin
    t.lower.send_probe { Wire.probe_sender = t.me; probe_ring_id = t.ring_id };
    Timer.start_if_stopped (get_timer t.probe_timer) t.const.merge_detect_interval
  end

let recv_probe t (p : Wire.probe) =
  if (not t.crashed) && t.state = Operational && p.probe_ring_id <> t.ring_id
  then begin
    (* Another ring coexists on the (healed) networks: merge. *)
    t.max_ring_id_seen <- max t.max_ring_id_seen p.probe_ring_id;
    enter_gather t
      ~reason:(Printf.sprintf "merge probe from N%d (ring %d)" p.probe_sender
                 p.probe_ring_id)
  end

let recv_commit t (cm : Wire.commit) =
  if t.crashed || cm.cm_ring_id <= t.ring_id then ()
  else if not (Array.exists (fun n -> n = t.me) cm.cm_ring) then ()
  else begin
    t.max_ring_id_seen <- max t.max_ring_id_seen cm.cm_ring_id;
    let rep = Membership.leader cm.cm_ring in
    if cm.cm_round = 1 then
      if rep = t.me then begin
        (* Round 1 returned to the representative: if every member
           answered, distribute the collected info and start recovering;
           otherwise let the phase deadline restart the gathering. *)
        let answered n =
          List.exists (fun (i : Wire.member_info) -> i.mi_node = n) cm.cm_info
        in
        if Array.for_all answered cm.cm_ring && t.state = Commit_phase then begin
          let cm2 = { cm with Wire.cm_round = 2 } in
          begin_recover t cm2;
          send_commit_next t cm2;
          Timer.start_if_stopped (get_timer t.commit_timer)
            t.const.token_retransmit_interval
        end
      end
      else begin
        match t.state with
        | Gather | Commit_phase | Idle | Operational ->
          (* Adopt the proposal: record our old-ring position and pass
             the commit on. Re-receipt just re-forwards (idempotent), so
             the representative's retransmissions heal lost hops. *)
          let info =
            my_member_info t
            :: List.filter
                 (fun (i : Wire.member_info) -> i.mi_node <> t.me)
                 cm.cm_info
          in
          let cm' = { cm with Wire.cm_info = info } in
          t.state <- Commit_phase;
          t.pending_commit <- Some cm';
          (match t.join_timer with Some tm -> Timer.stop tm | None -> ());
          (match t.token_loss_timer with Some tm -> Timer.stop tm | None -> ());
          Timer.restart (get_timer t.consensus_timer) t.const.consensus_timeout;
          send_commit_next t cm'
        | Recover -> ()
      end
    else begin
      (* Round 2: the full member list. Start recovering, and forward so
         the members after us learn it too; duplicates are re-forwarded
         to heal losses but never restart a recovery in progress. *)
      if rep = t.me then ()
      else
        let already =
          match (t.state, t.pending_commit) with
          | Recover, Some p ->
            p.Wire.cm_ring_id = cm.cm_ring_id && p.Wire.cm_round = 2
          | _ -> false
        in
        if already then send_commit_next t cm
        else begin
          begin_recover t cm;
          send_commit_next t cm
        end
    end
  end

(* --- inputs --------------------------------------------------------- *)

let rec token_arrived t (tok : Token.t) =
  if t.crashed then ()
  else if tok.ring_id > t.ring_id then begin
    t.max_ring_id_seen <- max t.max_ring_id_seen tok.ring_id;
    match (t.state, t.pending_commit) with
    | Recover, Some cm when cm.Wire.cm_ring_id = tok.ring_id ->
      (* The new ring is already rotating: our recovery window is over.
         Install with what we have and process the token normally. *)
      finish_recovery t;
      token_arrived t tok
    | _ ->
      (* A newer ring's token: join it if we are a member (the fallback
         path for members that missed the commit exchange); otherwise
         keep gathering so the members notice us and reconfigure. *)
      if Array.exists (fun n -> n = t.me) tok.ring then begin
        install_new_ring t ~ring_id:tok.ring_id ~members:tok.ring;
        process_token t tok
      end
      else if t.state <> Gather then enter_gather t ~reason:"foreign-ring token"
  end
  else if tok.ring_id < t.ring_id || t.state <> Operational then ()
  else
    let fresh =
      match t.last_rx_token with
      | None -> true
      | Some last -> Token.newer_than tok ~than:last
    in
    if fresh then process_token t tok
    else begin
      t.stats.duplicate_tokens <- t.stats.duplicate_tokens + 1;
      if tel_active t then
        tel_emit t
          (Telemetry.Dup_drop
             { node = t.me; kind = Telemetry.Drop_token; seq = tok.seq });
      Cpu.charge t.cpu ~cost:t.const.cpu_duplicate_cost
    end

let recv_data t (p : Wire.packet) =
  if t.crashed then ()
  else if p.ring_id <> t.ring_id then begin
    if p.ring_id > t.ring_id then begin
      t.max_ring_id_seen <- max t.max_ring_id_seen p.ring_id;
      let recovering_towards_it =
        match (t.state, t.pending_commit) with
        | (Recover | Commit_phase), Some cm -> cm.Wire.cm_ring_id >= p.ring_id
        | _ -> false
      in
      (* Data from a newer ring means we were left out of a
         reconfiguration — rejoin, and advertise the newer ring id in
         our Joins so the members treat them as fresh. (Unless we are
         mid-transition to that very ring.) *)
      if (not recovering_towards_it) && t.state <> Gather then
        enter_gather t ~reason:"foreign-ring data"
    end
  end
  else
    match Recv_buffer.store t.store p with
    | `Duplicate ->
      t.stats.duplicate_packets <- t.stats.duplicate_packets + 1;
      if tel_active t then
        tel_emit t
          (Telemetry.Dup_drop
             { node = t.me; kind = Telemetry.Drop_packet; seq = p.seq });
      Cpu.charge t.cpu ~cost:t.const.cpu_duplicate_cost
    | `New ->
      Cpu.charge t.cpu
        ~cost:
          (Vtime.ns (List.length p.elements * t.const.cpu_message_cost));
      (* Receiving a sequence number above our forwarded token's proves
         the successor received the token. *)
      (match t.last_sent_token with
      | Some sent when p.seq > sent.Token.seq -> evidence_of_token_progress t
      | _ -> ());
      deliver_ready t;
      if t.state = Recover then check_recovery_complete t

let recv_join t (j : Wire.join) =
  if t.crashed then ()
  else begin
    t.max_ring_id_seen <- max t.max_ring_id_seen j.max_ring_id;
    match t.state with
    | Commit_phase | Recover ->
      (* Mid-transition; stragglers and newcomers are picked up by the
         next gather (merge probes guarantee one happens). *)
      ()
    | Gather ->
      if not (List.exists (fun (o : Wire.join) -> o.sender = j.sender) t.joins)
      then t.joins <- j :: t.joins
    | Operational | Idle ->
      (* Joins from current members that do not name a ring newer than
         ours are stragglers from the reformation that created this ring
         (they raced with the new ring's own traffic); acting on them
         would tear the ring down in a livelock. A join from an outsider
         always warrants reconfiguration, as does any join naming a
         newer ring. *)
      let member = Array.exists (fun n -> n = j.sender) t.ring in
      if j.max_ring_id > t.ring_id || not member then begin
        enter_gather t ~reason:(Printf.sprintf "join from N%d" j.sender);
        t.joins <- [ j ]
      end
  end

(* --- construction and control -------------------------------------- *)

let allowance_buckets = Array.init 33 float_of_int

let create sim ~cpu ~const ~me ~lower ?trace callbacks =
  let rotation_hist, allowance_hist =
    match trace with
    | Some tl ->
      ( Telemetry.histogram tl (Printf.sprintf "srp.%d.rotation_ms" me),
        Telemetry.histogram ~buckets:allowance_buckets tl
          (Printf.sprintf "flow.%d.allowance" me) )
    | None ->
      ( Stats.Histogram.create ~buckets:Telemetry.default_ms_buckets,
        Stats.Histogram.create ~buckets:allowance_buckets )
  in
  let t =
    {
      sim;
      cpu;
      const;
      me;
      lower;
      trace;
      callbacks;
      stats = fresh_stats ();
      store = Recv_buffer.create ();
      pending_delivery = Queue.create ();
      safe_horizon = 0;
      rotation_hist;
      rotation_started = Vtime.ns (-1);
      allowance_hist;
      flow = Flow.create ();
      send_queue = Queue.create ();
      pending_elements = [];
      supplier = None;
      app_seq = 0;
      state = Idle;
      ring = [| me |];
      ring_id = 0;
      last_rx_token = None;
      last_sent_token = None;
      aru_history = [];
      reassembly = Hashtbl.create 8;
      joins = [];
      pending_commit = None;
      recover_target = 0;
      max_ring_id_seen = 0;
      crashed = false;
      probe_timer = None;
      commit_timer = None;
      token_loss_timer = None;
      token_retransmit_timer = None;
      join_timer = None;
      consensus_timer = None;
    }
  in
  t.token_loss_timer <-
    Some (Timer.create sim ~name:"token-loss" ~callback:(fun () -> token_loss_expired t ()));
  t.token_retransmit_timer <-
    Some
      (Timer.create sim ~name:"token-retransmit"
         ~callback:(fun () -> token_retransmit_expired t ()));
  t.join_timer <-
    Some (Timer.create sim ~name:"join" ~callback:(fun () -> join_timer_expired t ()));
  t.consensus_timer <-
    Some
      (Timer.create sim ~name:"consensus" ~callback:(fun () -> consensus_expired t ()));
  t.probe_timer <-
    Some (Timer.create sim ~name:"merge-probe" ~callback:(fun () -> probe_expired t));
  t.commit_timer <-
    Some
      (Timer.create sim ~name:"commit-retry"
         ~callback:(fun () -> commit_retry_expired t));
  (* Expose the protocol counters through the registry as gauges; the
     counters themselves stay plain record fields so the hot path never
     pays a lookup. *)
  (match trace with
  | Some tl ->
    let g name read =
      Telemetry.gauge tl
        (Printf.sprintf "srp.%d.%s" me name)
        (fun () -> float_of_int (read ()))
    in
    g "delivered_messages" (fun () -> t.stats.delivered_messages);
    g "delivered_bytes" (fun () -> t.stats.delivered_bytes);
    g "sent_messages" (fun () -> t.stats.sent_messages);
    g "sent_packets" (fun () -> t.stats.sent_packets);
    g "duplicate_packets" (fun () -> t.stats.duplicate_packets);
    g "duplicate_tokens" (fun () -> t.stats.duplicate_tokens);
    g "retransmissions_served" (fun () -> t.stats.retransmissions_served);
    g "retransmissions_requested" (fun () -> t.stats.retransmissions_requested);
    g "token_visits" (fun () -> t.stats.token_visits);
    g "token_retransmits" (fun () -> t.stats.token_retransmits);
    Telemetry.gauge tl
      (Printf.sprintf "membership.%d.ring_changes" me)
      (fun () -> float_of_int t.stats.ring_changes);
    Telemetry.gauge tl
      (Printf.sprintf "membership.%d.gather_entries" me)
      (fun () -> float_of_int t.stats.gather_entries)
  | None -> ());
  t

let submit t ~size ?(safe = false) ?(data = Message.Blob) () =
  t.app_seq <- t.app_seq + 1;
  if tel_active t then
    tel_emit t
      (Telemetry.Msg_originate
         {
           node = t.me;
           tid = Causal.tid_of ~origin:t.me ~app_seq:t.app_seq;
           bytes = size;
           safe;
         });
  Queue.add
    (Message.make ~origin:t.me ~app_seq:t.app_seq ~size ~safe ~data ())
    t.send_queue

let set_supplier t pull = t.supplier <- Some pull

let install_ring t ~ring_id ~members =
  install_new_ring t ~ring_id ~members

let bootstrap_token t =
  if t.state <> Operational then
    invalid_arg "Srp.bootstrap_token: install_ring first";
  process_token t (Token.initial ~ring:t.ring ~ring_id:t.ring_id)

let start_gathering t = enter_gather t ~reason:"cold start"

let crash t =
  t.crashed <- true;
  stop_all_timers t

let recover t =
  if not t.crashed then invalid_arg "Srp.recover: node is not crashed";
  (* A reboot: all volatile protocol state is gone; the submission
     counter survives conceptually as "a new incarnation never reuses
     app_seq", which keeps end-to-end bookkeeping unambiguous. *)
  t.crashed <- false;
  Recv_buffer.reset t.store;
  Queue.clear t.send_queue;
  Queue.clear t.pending_delivery;
  t.pending_elements <- [];
  t.safe_horizon <- 0;
  Flow.reset t.flow;
  Hashtbl.reset t.reassembly;
  t.state <- Idle;
  t.ring <- [| t.me |];
  t.ring_id <- 0;
  t.max_ring_id_seen <- 0;
  t.last_rx_token <- None;
  t.last_sent_token <- None;
  t.aru_history <- [];
  t.joins <- [];
  enter_gather t ~reason:"recovery"
