(* All operations are tail-recursive: under heavy loss the token's rtr
   list and the served list can grow large, and these run on every
   token visit — they must be stack-safe at any list length. *)

let merge a b =
  let rec go acc a b =
    match (a, b) with
    | [], rest | rest, [] -> List.rev_append acc rest
    | x :: xs, y :: ys ->
      if x < y then go (x :: acc) xs b
      else if x > y then go (y :: acc) a ys
      else go (x :: acc) xs ys
  in
  go [] a b

let remove rtr served =
  let rec go acc rtr served =
    match (rtr, served) with
    | [], _ -> List.rev acc
    | rest, [] -> List.rev_append acc rest
    | x :: xs, y :: ys ->
      if x < y then go (x :: acc) xs served
      else if x = y then go acc xs ys
      else go acc rtr ys
  in
  go [] rtr served

let truncate n l =
  let rec take acc n l =
    match l with
    | [] -> List.rev acc
    | _ when n = 0 -> List.rev acc
    | x :: xs -> take (x :: acc) (n - 1) xs
  in
  take [] n l

let rec is_sorted_unique = function
  | [] | [ _ ] -> true
  | x :: (y :: _ as rest) -> x < y && is_sorted_unique rest
