(* A power-of-two ring array indexed by sequence number. Flow control
   bounds how far [highest] can run ahead of the stability horizon, so
   the live window [gc_horizon+1 .. highest] fits a small ring;
   store/has/advance become single array probes with no hashing and no
   per-entry boxing. A slot holds [sentinel] when empty; occupancy is
   checked by comparing the stored packet's own [seq] to the probe. *)

let sentinel : Wire.packet =
  { ring_id = -1; seq = min_int; sender = -1; elements = [] }

type t = {
  mutable ring : Wire.packet array;
  mutable mask : int; (* Array.length ring - 1; length is a power of two *)
  mutable aru : int;
  mutable highest : int;
  mutable delivered : int;  (* cursor: all <= delivered handed to app *)
  mutable gc_horizon : int;
  mutable stored : int;
}

let initial_capacity = 1024

let create () =
  {
    ring = Array.make initial_capacity sentinel;
    mask = initial_capacity - 1;
    aru = 0;
    highest = 0;
    delivered = 0;
    gc_horizon = 0;
    stored = 0;
  }

let slot_holds t seq = (Array.unsafe_get t.ring (seq land t.mask)).Wire.seq = seq

(* Every live seq lies in (gc_horizon, gc_horizon + capacity]; grow
   (rarely — only if stability stalls while flow control admits more)
   before storing a seq that would wrap onto a live slot. *)
let ensure_capacity t seq =
  let cap = t.mask + 1 in
  if seq - t.gc_horizon > cap then begin
    let ncap =
      let c = ref cap in
      while seq - t.gc_horizon > !c do
        c := !c * 2
      done;
      !c
    in
    let nring = Array.make ncap sentinel in
    let nmask = ncap - 1 in
    Array.iter
      (fun p -> if p != sentinel then nring.(p.Wire.seq land nmask) <- p)
      t.ring;
    t.ring <- nring;
    t.mask <- nmask
  end

let advance_aru t =
  while slot_holds t (t.aru + 1) do
    t.aru <- t.aru + 1
  done

let store t (p : Wire.packet) =
  if p.seq <= t.gc_horizon || slot_holds t p.seq then `Duplicate
  else begin
    ensure_capacity t p.seq;
    t.ring.(p.seq land t.mask) <- p;
    t.stored <- t.stored + 1;
    if p.seq > t.highest then t.highest <- p.seq;
    if p.seq = t.aru + 1 then advance_aru t;
    `New
  end

let has t seq = seq <= t.gc_horizon || slot_holds t seq

let find t seq = if slot_holds t seq then Some t.ring.(seq land t.mask) else None

let my_aru t = t.aru

let highest_seen t = t.highest

let missing_up_to t seq =
  (* Everything above [highest] is missing by definition: probe slots
     only up to [highest], then emit the tail range directly. *)
  let probe_up_to = if seq < t.highest then seq else t.highest in
  let rec gaps i acc =
    if i > probe_up_to then tail i acc
    else if slot_holds t i then gaps (i + 1) acc
    else gaps (i + 1) (i :: acc)
  and tail i acc =
    if i > seq then List.rev acc else tail (i + 1) (i :: acc)
  in
  gaps (t.aru + 1) []

let pop_deliverable t =
  let rec collect i acc =
    if i > t.aru then List.rev acc
    else collect (i + 1) (t.ring.(i land t.mask) :: acc)
  in
  let out = collect (t.delivered + 1) [] in
  t.delivered <- max t.delivered t.aru;
  out

let gc_below t bound =
  let bound = min bound t.delivered in
  if bound > t.gc_horizon then begin
    for seq = t.gc_horizon + 1 to bound do
      if slot_holds t seq then begin
        t.ring.(seq land t.mask) <- sentinel;
        t.stored <- t.stored - 1
      end
    done;
    t.gc_horizon <- bound
  end

let stored_count t = t.stored

let reset t =
  Array.fill t.ring 0 (t.mask + 1) sentinel;
  t.aru <- 0;
  t.highest <- 0;
  t.delivered <- 0;
  t.gc_horizon <- 0;
  t.stored <- 0
