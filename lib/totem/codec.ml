type error =
  | Truncated
  | Bad_tag of int
  | Trailing_bytes of int
  | Bad_count of { what : string; count : int; limit : int }
  | Bad_field of { what : string; value : int; min : int; max : int }

let pp_error ppf = function
  | Truncated -> Format.pp_print_string ppf "truncated input"
  | Bad_tag t -> Format.fprintf ppf "bad tag byte 0x%02x" t
  | Trailing_bytes n -> Format.fprintf ppf "%d trailing bytes" n
  | Bad_count { what; count; limit } ->
    Format.fprintf ppf "%s count %d exceeds frame budget (max %d)" what count
      limit
  | Bad_field { what; value; min; max } ->
    Format.fprintf ppf "%s %d out of range [%d..%d]" what value min max

type decoded =
  | Packet of Wire.packet
  | Token of Token.t
  | Join of Wire.join
  | Probe of Wire.probe
  | Commit of Wire.commit

(* Application payload codec; the default emits the declared size in
   zero bytes and decodes to Blob. *)
let data_encode = ref (fun (_ : Message.data) -> "")
let data_decode = ref (fun (_ : string) -> Message.Blob)

let set_data_codec ~encode ~decode =
  data_encode := encode;
  data_decode := decode

(* --- primitives (little-endian) ------------------------------------ *)

let put_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let put_u16 b v =
  put_u8 b v;
  put_u8 b (v lsr 8)

let put_u24 b v =
  put_u16 b v;
  put_u8 b (v lsr 16)

let put_u32 b v =
  put_u16 b v;
  put_u16 b (v lsr 16)

exception Decode_error of error

type reader = { src : string; mutable pos : int }

let need r n = if r.pos + n > String.length r.src then raise (Decode_error Truncated)

let get_u8 r =
  need r 1;
  let v = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  v

let get_u16 r =
  let lo = get_u8 r in
  lo lor (get_u8 r lsl 8)

let get_u24 r =
  let lo = get_u16 r in
  lo lor (get_u8 r lsl 16)

let get_u32 r =
  let lo = get_u16 r in
  lo lor (get_u16 r lsl 16)

let get_bytes r n =
  need r n;
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

(* Hostile-input guard: a count prefix may only be trusted after two
   checks — it must not exceed how many of its elements a maximum
   payload could carry, and the remaining input must actually hold
   [count * elem_bytes] bytes. Both run {e before} any allocation, so a
   corrupted (or CRC-colliding) prefix costs an [Error], never a large
   [List.init]/[Array.init]. *)
let max_payload = Totem_net.Frame.max_payload_bytes

let bounded_count r ~what ~elem_bytes count =
  let limit = max_payload / elem_bytes in
  if count > limit then raise (Decode_error (Bad_count { what; count; limit }));
  need r (count * elem_bytes);
  count

(* --- elements -------------------------------------------------------
   Whole message:  flags(1) origin(2) app_seq(4) size(3) body_len(2)
                   = 12 bytes, matching Const.element_header_bytes.
   Fragment:       the same 12 plus index(2) count(2) — 4 bytes over the
                   model, documented in codec.mli. *)

let flag_safe = 0x01
let flag_frag = 0x02

let encode_element b (e : Wire.element) =
  let m = e.message in
  let body =
    match e.fragment with
    | None ->
      let body = !data_encode m.data in
      if body = "" then String.make m.size '\000' else body
    | Some f -> String.make f.Wire.bytes '\000'
  in
  let flags =
    (if m.safe then flag_safe else 0)
    lor match e.fragment with Some _ -> flag_frag | None -> 0
  in
  put_u8 b flags;
  put_u16 b m.origin;
  put_u32 b m.app_seq;
  put_u24 b m.size;
  put_u16 b (String.length body);
  (match e.fragment with
  | None -> ()
  | Some f ->
    put_u16 b f.index;
    put_u16 b f.count);
  Buffer.add_string b body

let decode_element r : Wire.element =
  let flags = get_u8 r in
  let origin = get_u16 r in
  let app_seq = get_u32 r in
  let size = get_u24 r in
  let body_len = get_u16 r in
  let fragment =
    if flags land flag_frag <> 0 then begin
      let index = get_u16 r in
      let count = get_u16 r in
      Some { Wire.index; count; bytes = body_len }
    end
    else None
  in
  let body = get_bytes r body_len in
  let data = if fragment = None then !data_decode body else Message.Blob in
  let message =
    Message.make ~origin ~app_seq ~size ~safe:(flags land flag_safe <> 0) ~data ()
  in
  { Wire.message; fragment }

(* --- packet --------------------------------------------------------- *)

let tag_packet = 0x50 (* 'P' *)
let tag_token = 0x54 (* 'T' *)
let tag_join = 0x4a (* 'J' *)
let tag_probe = 0x52 (* 'R' *)
let tag_commit = 0x43 (* 'C' *)

let encode_packet (p : Wire.packet) =
  let b = Buffer.create 256 in
  put_u8 b tag_packet;
  put_u32 b p.ring_id;
  put_u32 b p.seq;
  put_u16 b p.sender;
  put_u8 b (List.length p.elements);
  List.iter (encode_element b) p.elements;
  Buffer.contents b

let decode_packet r : Wire.packet =
  let ring_id = get_u32 r in
  let seq = get_u32 r in
  let sender = get_u16 r in
  (* Each element starts with a 12-byte header (Const.element_header_bytes). *)
  let count = bounded_count r ~what:"element" ~elem_bytes:12 (get_u8 r) in
  let elements = List.init count (fun _ -> decode_element r) in
  { Wire.ring_id; seq; sender; elements }

(* --- token ----------------------------------------------------------- *)

let encode_token (t : Token.t) =
  let b = Buffer.create 64 in
  put_u8 b tag_token;
  put_u32 b t.ring_id;
  put_u32 b t.seq;
  put_u32 b t.rotation;
  put_u32 b t.hops;
  put_u32 b t.aru;
  put_u16 b t.aru_setter;
  put_u16 b t.fcc;
  put_u16 b (List.length t.rtr);
  put_u8 b (Array.length t.ring);
  List.iter (put_u32 b) t.rtr;
  Array.iter (put_u16 b) t.ring;
  Buffer.contents b

let decode_token r : Token.t =
  let ring_id = get_u32 r in
  let seq = get_u32 r in
  let rotation = get_u32 r in
  let hops = get_u32 r in
  let aru = get_u32 r in
  let aru_setter = get_u16 r in
  let fcc = get_u16 r in
  let rtr_count = bounded_count r ~what:"rtr" ~elem_bytes:4 (get_u16 r) in
  let ring_count =
    bounded_count r ~what:"ring member" ~elem_bytes:2 (get_u8 r)
  in
  let rtr = List.init rtr_count (fun _ -> get_u32 r) in
  let ring = Array.init ring_count (fun _ -> 0) in
  for i = 0 to ring_count - 1 do
    ring.(i) <- get_u16 r
  done;
  { Token.ring_id; seq; rotation; hops; aru; aru_setter; fcc; rtr; ring }

(* --- join and probe --------------------------------------------------- *)

let encode_join (j : Wire.join) =
  let b = Buffer.create 32 in
  put_u8 b tag_join;
  put_u16 b j.sender;
  put_u32 b j.max_ring_id;
  put_u16 b (List.length j.proc_set);
  put_u16 b (List.length j.fail_set);
  List.iter (put_u16 b) j.proc_set;
  List.iter (put_u16 b) j.fail_set;
  Buffer.contents b

let decode_join r : Wire.join =
  let sender = get_u16 r in
  let max_ring_id = get_u32 r in
  let np = bounded_count r ~what:"proc set" ~elem_bytes:2 (get_u16 r) in
  let nf = bounded_count r ~what:"fail set" ~elem_bytes:2 (get_u16 r) in
  let proc_set = List.init np (fun _ -> get_u16 r) in
  let fail_set = List.init nf (fun _ -> get_u16 r) in
  { Wire.sender; proc_set; fail_set; max_ring_id }

let encode_probe (p : Wire.probe) =
  let b = Buffer.create 8 in
  put_u8 b tag_probe;
  put_u16 b p.probe_sender;
  put_u32 b p.probe_ring_id;
  Buffer.contents b

let encode_commit (cm : Wire.commit) =
  let b = Buffer.create 64 in
  put_u8 b tag_commit;
  put_u32 b cm.cm_ring_id;
  put_u8 b cm.cm_round;
  put_u8 b (Array.length cm.cm_ring);
  put_u8 b (List.length cm.cm_info);
  Array.iter (put_u16 b) cm.cm_ring;
  List.iter
    (fun (i : Wire.member_info) ->
      put_u16 b i.mi_node;
      put_u32 b i.mi_old_ring;
      put_u32 b i.mi_aru)
    cm.cm_info;
  Buffer.contents b

let decode_commit r : Wire.commit =
  let cm_ring_id = get_u32 r in
  let cm_round = get_u8 r in
  let nring = bounded_count r ~what:"commit ring" ~elem_bytes:2 (get_u8 r) in
  let ninfo =
    bounded_count r ~what:"member info" ~elem_bytes:10 (get_u8 r)
  in
  let cm_ring = Array.init nring (fun _ -> 0) in
  for i = 0 to nring - 1 do
    cm_ring.(i) <- get_u16 r
  done;
  let cm_info =
    List.init ninfo (fun _ ->
        let mi_node = get_u16 r in
        let mi_old_ring = get_u32 r in
        let mi_aru = get_u32 r in
        { Wire.mi_node; mi_old_ring; mi_aru })
  in
  { Wire.cm_ring_id; cm_ring; cm_round; cm_info }

let decode_probe r : Wire.probe =
  let probe_sender = get_u16 r in
  let probe_ring_id = get_u32 r in
  { Wire.probe_sender; probe_ring_id }

(* --- dispatch --------------------------------------------------------- *)

let decode s =
  let r = { src = s; pos = 0 } in
  try
    let tag = get_u8 r in
    let v =
      if tag = tag_packet then Packet (decode_packet r)
      else if tag = tag_token then Token (decode_token r)
      else if tag = tag_join then Join (decode_join r)
      else if tag = tag_probe then Probe (decode_probe r)
      else if tag = tag_commit then Commit (decode_commit r)
      else raise (Decode_error (Bad_tag tag))
    in
    if r.pos <> String.length s then
      Error (Trailing_bytes (String.length s - r.pos))
    else Ok v
  with Decode_error e -> Error e

(* Structural equality modulo the application payload closure (encoded
   data decodes to the registered codec's value, which for the default
   codec is Blob regardless of the original). *)
let message_eq (a : Message.t) (b : Message.t) =
  a.origin = b.origin && a.app_seq = b.app_seq && a.size = b.size
  && a.safe = b.safe

let element_eq (a : Wire.element) (b : Wire.element) =
  message_eq a.message b.message && a.fragment = b.fragment

let packet_eq (a : Wire.packet) (b : Wire.packet) =
  a.ring_id = b.ring_id && a.seq = b.seq && a.sender = b.sender
  && List.length a.elements = List.length b.elements
  && List.for_all2 element_eq a.elements b.elements

let shadow_check payload =
  let check name ok = if ok then Ok () else Error (name ^ " round trip mismatch") in
  match payload with
  | Wire.Data p -> (
    match decode (encode_packet p) with
    | Ok (Packet p') -> check "packet" (packet_eq p p')
    | Ok _ -> Error "packet decoded as another kind"
    | Error e -> Error (Format.asprintf "packet: %a" pp_error e))
  | Wire.Tok tok -> (
    match decode (encode_token tok) with
    | Ok (Token t') -> check "token" (tok = t')
    | Ok _ -> Error "token decoded as another kind"
    | Error e -> Error (Format.asprintf "token: %a" pp_error e))
  | Wire.Join j -> (
    match decode (encode_join j) with
    | Ok (Join j') -> check "join" (j = j')
    | Ok _ -> Error "join decoded as another kind"
    | Error e -> Error (Format.asprintf "join: %a" pp_error e))
  | Wire.Probe p -> (
    match decode (encode_probe p) with
    | Ok (Probe p') -> check "probe" (p = p')
    | Ok _ -> Error "probe decoded as another kind"
    | Error e -> Error (Format.asprintf "probe: %a" pp_error e))
  | Wire.Commit cm -> (
    match decode (encode_commit cm) with
    | Ok (Commit cm') -> check "commit" (cm = cm')
    | Ok _ -> Error "commit decoded as another kind"
    | Error e -> Error (Format.asprintf "commit: %a" pp_error e))
  | _ -> Ok ()

(* --- semantic validation ---------------------------------------------
   [decode] only proves the input parses; garbage that survives the
   CRC (a collision) can still parse into a unit whose fields would
   crash the protocol (a node id indexing past the membership arrays,
   a fragment index past its count, an empty token ring feeding a
   [mod 0]). This layer bounds every identifier-like field so such a
   unit is discarded at the NIC instead. *)

let in_range what value ~min ~max =
  if value < min || value > max then
    raise (Decode_error (Bad_field { what; value; min; max }))

let validate ?(max_node = 0xffff) d =
  let node what v = in_range what v ~min:0 ~max:max_node in
  try
    (match d with
    | Packet p ->
      node "packet sender" p.Wire.sender;
      List.iter
        (fun (e : Wire.element) ->
          node "element origin" e.message.origin;
          match e.fragment with
          | None ->
            (* A whole message packed into one frame fits the payload. *)
            in_range "message size" e.message.size ~min:0 ~max:max_payload
          | Some f ->
            in_range "fragment count" f.count ~min:1 ~max:0xffff;
            in_range "fragment index" f.index ~min:0 ~max:(f.count - 1);
            in_range "fragment bytes" f.bytes ~min:0 ~max:max_payload)
        p.elements
    | Token t ->
      node "aru setter" t.aru_setter;
      in_range "token ring size" (Array.length t.ring) ~min:1 ~max:0xff;
      Array.iter (fun n -> node "ring member" n) t.ring
    | Join j ->
      node "join sender" j.sender;
      List.iter (fun n -> node "proc set member" n) j.proc_set;
      List.iter (fun n -> node "fail set member" n) j.fail_set
    | Probe p -> node "probe sender" p.probe_sender
    | Commit cm ->
      in_range "commit round" cm.cm_round ~min:1 ~max:2;
      Array.iter (fun n -> node "commit ring member" n) cm.cm_ring;
      List.iter
        (fun (i : Wire.member_info) -> node "member info node" i.mi_node)
        cm.cm_info);
    Ok ()
  with Decode_error e -> Error e

(* --- byte-faithful frame layer ---------------------------------------
   The wire mode's unit of exchange: [encode_frame] turns a protocol
   payload into its byte image plus a CRC-32 trailer (the model of the
   Ethernet FCS), [decode_frame] is the receiving NIC's discard
   pipeline — checksum, total decode, semantic validation — in the
   order real hardware and a real stack would apply them. *)

type frame_error =
  | Crc_mismatch
  | Malformed of error

let pp_frame_error ppf = function
  | Crc_mismatch -> Format.pp_print_string ppf "CRC-32 mismatch"
  | Malformed e -> pp_error ppf e

let encode_payload = function
  | Wire.Data p -> Some (encode_packet p)
  | Wire.Tok t -> Some (encode_token t)
  | Wire.Join j -> Some (encode_join j)
  | Wire.Probe p -> Some (encode_probe p)
  | Wire.Commit cm -> Some (encode_commit cm)
  | _ -> None

let payload_of_decoded = function
  | Packet p -> Wire.Data p
  | Token t -> Wire.Tok t
  | Join j -> Wire.Join j
  | Probe p -> Wire.Probe p
  | Commit cm -> Wire.Commit cm

let encode_frame (frame : Totem_net.Frame.t) =
  match encode_payload frame.payload with
  | None -> frame (* foreign payload: not ours to serialize *)
  | Some body ->
    let b = Buffer.create (String.length body + Totem_net.Crc32.trailer_bytes) in
    Buffer.add_string b body;
    Totem_net.Crc32.append b (Totem_net.Crc32.digest body);
    (* [payload_bytes] keeps the charged size: the CRC models the
       Ethernet FCS, already inside [Frame.header_overhead_bytes]. *)
    { frame with Totem_net.Frame.payload = Totem_net.Frame.Bytes (Buffer.contents b) }

let decode_frame ?max_node (frame : Totem_net.Frame.t) =
  match frame.payload with
  | Totem_net.Frame.Bytes s ->
    if not (Totem_net.Crc32.check s) then Error Crc_mismatch
    else begin
      let body =
        String.sub s 0 (String.length s - Totem_net.Crc32.trailer_bytes)
      in
      match decode body with
      | Error e -> Error (Malformed e)
      | Ok d -> (
        match validate ?max_node d with
        | Error e -> Error (Malformed e)
        | Ok () ->
          Ok { frame with Totem_net.Frame.payload = payload_of_decoded d })
    end
  | _ -> Ok frame
