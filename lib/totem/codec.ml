type error =
  | Truncated
  | Bad_tag of int
  | Trailing_bytes of int
  | Bad_count of { what : string; count : int; limit : int }
  | Bad_field of { what : string; value : int; min : int; max : int }

let pp_error ppf = function
  | Truncated -> Format.pp_print_string ppf "truncated input"
  | Bad_tag t -> Format.fprintf ppf "bad tag byte 0x%02x" t
  | Trailing_bytes n -> Format.fprintf ppf "%d trailing bytes" n
  | Bad_count { what; count; limit } ->
    Format.fprintf ppf "%s count %d exceeds frame budget (max %d)" what count
      limit
  | Bad_field { what; value; min; max } ->
    Format.fprintf ppf "%s %d out of range [%d..%d]" what value min max

type decoded =
  | Packet of Wire.packet
  | Token of Token.t
  | Join of Wire.join
  | Probe of Wire.probe
  | Commit of Wire.commit

(* Application payload codec; the default emits the declared size in
   zero bytes and decodes to Blob. The defaults are named so the decoder
   can recognize them (by physical equality) and skip materializing
   bodies whose bytes would be ignored anyway. *)
let default_data_encode (_ : Message.data) = ""
let default_data_decode (_ : string) = Message.Blob
let data_encode = ref default_data_encode
let data_decode = ref default_data_decode

let set_data_codec ~encode ~decode =
  data_encode := encode;
  data_decode := decode

(* --- encode primitives (little-endian) ------------------------------
   Single-pass encoding: every encoder computes its exact byte size
   first, then writes into one preallocated zero-filled Bytes — no
   Buffer growth, no Buffer.contents copy, and a zero-filled message
   body costs nothing beyond the allocation itself. *)

type writer = { wbuf : Bytes.t; mutable wpos : int }

let w_u8 w v =
  Bytes.set w.wbuf w.wpos (Char.chr (v land 0xff));
  w.wpos <- w.wpos + 1

let w_u16 w v =
  w_u8 w v;
  w_u8 w (v lsr 8)

let w_u24 w v =
  w_u16 w v;
  w_u8 w (v lsr 16)

let w_u32 w v =
  w_u16 w v;
  w_u16 w (v lsr 16)

let w_string w s =
  let n = String.length s in
  Bytes.blit_string s 0 w.wbuf w.wpos n;
  w.wpos <- w.wpos + n

(* The buffer is zero-filled, so a zero body is a skip. *)
let w_zeros w n = w.wpos <- w.wpos + n

(* [extra] reserves trailing room (the CRC trailer) beyond the encoded
   unit; the size check still binds the unit itself. *)
let encoded ?(extra = 0) size write =
  let w = { wbuf = Bytes.make (size + extra) '\000'; wpos = 0 } in
  write w;
  if w.wpos <> size then
    invalid_arg
      (Printf.sprintf "Codec: encoder wrote %d bytes for a size of %d" w.wpos
         size);
  w.wbuf

(* --- decode primitives ---------------------------------------------- *)

exception Decode_error of error

type reader = { src : string; mutable pos : int; limit : int }

let need r n = if r.pos + n > r.limit then raise (Decode_error Truncated)

(* Byte reads are unsafe_get AFTER the explicit [need] bound check —
   one check per field, not one per byte. *)
let[@inline] byte r i = Char.code (String.unsafe_get r.src i)

let get_u8 r =
  need r 1;
  let v = byte r r.pos in
  r.pos <- r.pos + 1;
  v

let get_u16 r =
  need r 2;
  let p = r.pos in
  let v = byte r p lor (byte r (p + 1) lsl 8) in
  r.pos <- p + 2;
  v

let get_u24 r =
  need r 3;
  let p = r.pos in
  let v = byte r p lor (byte r (p + 1) lsl 8) lor (byte r (p + 2) lsl 16) in
  r.pos <- p + 3;
  v

let get_u32 r =
  need r 4;
  let p = r.pos in
  let v =
    byte r p
    lor (byte r (p + 1) lsl 8)
    lor (byte r (p + 2) lsl 16)
    lor (byte r (p + 3) lsl 24)
  in
  r.pos <- p + 4;
  v

let get_bytes r n =
  need r n;
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let skip r n =
  need r n;
  r.pos <- r.pos + n

(* Hostile-input guard: a count prefix may only be trusted after two
   checks — it must not exceed how many of its elements a maximum
   payload could carry, and the remaining input must actually hold
   [count * elem_bytes] bytes. Both run {e before} any allocation, so a
   corrupted (or CRC-colliding) prefix costs an [Error], never a large
   [List.init]/[Array.init]. *)
let max_payload = Totem_net.Frame.max_payload_bytes

let bounded_count r ~what ~elem_bytes count =
  let limit = max_payload / elem_bytes in
  if count > limit then raise (Decode_error (Bad_count { what; count; limit }));
  need r (count * elem_bytes);
  count

(* --- elements -------------------------------------------------------
   Whole message:  flags(1) origin(2) app_seq(4) size(3) body_len(2)
                   = 12 bytes, matching Const.element_header_bytes.
   Fragment:       the same 12 plus index(2) count(2) — 4 bytes over the
                   model, documented in codec.mli. *)

let flag_safe = 0x01
let flag_frag = 0x02

(* The element body is resolved once — [Some bytes] for an
   application-encoded payload, [None] for a zero-filled body of the
   given length — and shared by the size computation and the writer, so
   a custom [data_encode] runs exactly once per element. *)
let element_body (e : Wire.element) =
  match e.fragment with
  | Some f -> (None, f.Wire.bytes)
  | None ->
    if !data_encode == default_data_encode then (None, e.message.Message.size)
    else
      let b = !data_encode e.message.Message.data in
      if b = "" then (None, e.message.Message.size)
      else (Some b, String.length b)

let element_size (e : Wire.element) blen =
  12 + (match e.fragment with Some _ -> 4 | None -> 0) + blen

let write_element w (e : Wire.element) (body, blen) =
  let m = e.message in
  let flags =
    (if m.Message.safe then flag_safe else 0)
    lor match e.fragment with Some _ -> flag_frag | None -> 0
  in
  w_u8 w flags;
  w_u16 w m.origin;
  w_u32 w m.app_seq;
  w_u24 w m.size;
  w_u16 w blen;
  (match e.fragment with
  | None -> ()
  | Some f ->
    w_u16 w f.index;
    w_u16 w f.count);
  match body with Some b -> w_string w b | None -> w_zeros w blen

let decode_element r : Wire.element =
  let flags = get_u8 r in
  let origin = get_u16 r in
  let app_seq = get_u32 r in
  let size = get_u24 r in
  let body_len = get_u16 r in
  let fragment =
    if flags land flag_frag <> 0 then begin
      let index = get_u16 r in
      let count = get_u16 r in
      Some { Wire.index; count; bytes = body_len }
    end
    else None
  in
  let data =
    (* Fragment bodies are reassembled by byte count, never inspected,
       and the default application codec ignores its input — in both
       cases skip the body instead of copying it out. *)
    if fragment <> None || !data_decode == default_data_decode then begin
      skip r body_len;
      Message.Blob
    end
    else !data_decode (get_bytes r body_len)
  in
  let message =
    Message.make ~origin ~app_seq ~size ~safe:(flags land flag_safe <> 0) ~data ()
  in
  { Wire.message; fragment }

(* --- packet --------------------------------------------------------- *)

let tag_packet = 0x50 (* 'P' *)
let tag_token = 0x54 (* 'T' *)
let tag_join = 0x4a (* 'J' *)
let tag_probe = 0x52 (* 'R' *)
let tag_commit = 0x43 (* 'C' *)

(* tag(1) ring_id(4) seq(4) sender(2) count(1) *)
let packet_plan (p : Wire.packet) =
  let bodies = List.map element_body p.elements in
  let size =
    List.fold_left2
      (fun acc e (_, blen) -> acc + element_size e blen)
      12 p.elements bodies
  in
  (size, bodies)

let write_packet w (p : Wire.packet) bodies =
  w_u8 w tag_packet;
  w_u32 w p.ring_id;
  w_u32 w p.seq;
  w_u16 w p.sender;
  w_u8 w (List.length p.elements);
  List.iter2 (write_element w) p.elements bodies

let encode_packet (p : Wire.packet) =
  let size, bodies = packet_plan p in
  Bytes.unsafe_to_string (encoded size (fun w -> write_packet w p bodies))

let decode_packet r : Wire.packet =
  let ring_id = get_u32 r in
  let seq = get_u32 r in
  let sender = get_u16 r in
  (* Each element starts with a 12-byte header (Const.element_header_bytes). *)
  let count = bounded_count r ~what:"element" ~elem_bytes:12 (get_u8 r) in
  let elements = List.init count (fun _ -> decode_element r) in
  { Wire.ring_id; seq; sender; elements }

(* --- token ----------------------------------------------------------- *)

(* tag(1) ring_id/seq/rotation/hops/aru(4 each) aru_setter(2) fcc(2)
   rtr count(2) ring count(1) *)
let token_size (t : Token.t) =
  28 + (4 * List.length t.rtr) + (2 * Array.length t.ring)

let write_token w (t : Token.t) =
  w_u8 w tag_token;
  w_u32 w t.ring_id;
  w_u32 w t.seq;
  w_u32 w t.rotation;
  w_u32 w t.hops;
  w_u32 w t.aru;
  w_u16 w t.aru_setter;
  w_u16 w t.fcc;
  w_u16 w (List.length t.rtr);
  w_u8 w (Array.length t.ring);
  List.iter (w_u32 w) t.rtr;
  Array.iter (w_u16 w) t.ring

let encode_token (t : Token.t) =
  Bytes.unsafe_to_string (encoded (token_size t) (fun w -> write_token w t))

let decode_token r : Token.t =
  let ring_id = get_u32 r in
  let seq = get_u32 r in
  let rotation = get_u32 r in
  let hops = get_u32 r in
  let aru = get_u32 r in
  let aru_setter = get_u16 r in
  let fcc = get_u16 r in
  let rtr_count = bounded_count r ~what:"rtr" ~elem_bytes:4 (get_u16 r) in
  let ring_count =
    bounded_count r ~what:"ring member" ~elem_bytes:2 (get_u8 r)
  in
  let rtr = List.init rtr_count (fun _ -> get_u32 r) in
  let ring = Array.init ring_count (fun _ -> 0) in
  for i = 0 to ring_count - 1 do
    ring.(i) <- get_u16 r
  done;
  { Token.ring_id; seq; rotation; hops; aru; aru_setter; fcc; rtr; ring }

(* --- join and probe --------------------------------------------------- *)

(* tag(1) sender(2) max_ring_id(4) proc count(2) fail count(2) *)
let join_size (j : Wire.join) =
  11 + (2 * (List.length j.proc_set + List.length j.fail_set))

let write_join w (j : Wire.join) =
  w_u8 w tag_join;
  w_u16 w j.sender;
  w_u32 w j.max_ring_id;
  w_u16 w (List.length j.proc_set);
  w_u16 w (List.length j.fail_set);
  List.iter (w_u16 w) j.proc_set;
  List.iter (w_u16 w) j.fail_set

let encode_join (j : Wire.join) =
  Bytes.unsafe_to_string (encoded (join_size j) (fun w -> write_join w j))

let decode_join r : Wire.join =
  let sender = get_u16 r in
  let max_ring_id = get_u32 r in
  let np = bounded_count r ~what:"proc set" ~elem_bytes:2 (get_u16 r) in
  let nf = bounded_count r ~what:"fail set" ~elem_bytes:2 (get_u16 r) in
  let proc_set = List.init np (fun _ -> get_u16 r) in
  let fail_set = List.init nf (fun _ -> get_u16 r) in
  { Wire.sender; proc_set; fail_set; max_ring_id }

(* tag(1) sender(2) ring_id(4) *)
let probe_size = 7

let write_probe w (p : Wire.probe) =
  w_u8 w tag_probe;
  w_u16 w p.probe_sender;
  w_u32 w p.probe_ring_id

let encode_probe (p : Wire.probe) =
  Bytes.unsafe_to_string (encoded probe_size (fun w -> write_probe w p))

(* tag(1) ring_id(4) round(1) ring count(1) info count(1) *)
let commit_size (cm : Wire.commit) =
  8 + (2 * Array.length cm.cm_ring) + (10 * List.length cm.cm_info)

let write_commit w (cm : Wire.commit) =
  w_u8 w tag_commit;
  w_u32 w cm.cm_ring_id;
  w_u8 w cm.cm_round;
  w_u8 w (Array.length cm.cm_ring);
  w_u8 w (List.length cm.cm_info);
  Array.iter (w_u16 w) cm.cm_ring;
  List.iter
    (fun (i : Wire.member_info) ->
      w_u16 w i.mi_node;
      w_u32 w i.mi_old_ring;
      w_u32 w i.mi_aru)
    cm.cm_info

let encode_commit (cm : Wire.commit) =
  Bytes.unsafe_to_string (encoded (commit_size cm) (fun w -> write_commit w cm))

let decode_commit r : Wire.commit =
  let cm_ring_id = get_u32 r in
  let cm_round = get_u8 r in
  let nring = bounded_count r ~what:"commit ring" ~elem_bytes:2 (get_u8 r) in
  let ninfo =
    bounded_count r ~what:"member info" ~elem_bytes:10 (get_u8 r)
  in
  let cm_ring = Array.init nring (fun _ -> 0) in
  for i = 0 to nring - 1 do
    cm_ring.(i) <- get_u16 r
  done;
  let cm_info =
    List.init ninfo (fun _ ->
        let mi_node = get_u16 r in
        let mi_old_ring = get_u32 r in
        let mi_aru = get_u32 r in
        { Wire.mi_node; mi_old_ring; mi_aru })
  in
  { Wire.cm_ring_id; cm_ring; cm_round; cm_info }

let decode_probe r : Wire.probe =
  let probe_sender = get_u16 r in
  let probe_ring_id = get_u32 r in
  { Wire.probe_sender; probe_ring_id }

(* --- dispatch --------------------------------------------------------- *)

(* [pos]/[len] bound the decode to a substring without copying it out —
   the frame pipeline uses this to exclude the CRC trailer without the
   [String.sub] body copy. *)
let decode ?(pos = 0) ?len s =
  let len = match len with Some l -> l | None -> String.length s - pos in
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Codec.decode";
  let r = { src = s; pos; limit = pos + len } in
  try
    let tag = get_u8 r in
    let v =
      if tag = tag_packet then Packet (decode_packet r)
      else if tag = tag_token then Token (decode_token r)
      else if tag = tag_join then Join (decode_join r)
      else if tag = tag_probe then Probe (decode_probe r)
      else if tag = tag_commit then Commit (decode_commit r)
      else raise (Decode_error (Bad_tag tag))
    in
    if r.pos <> r.limit then Error (Trailing_bytes (r.limit - r.pos))
    else Ok v
  with Decode_error e -> Error e

(* Structural equality modulo the application payload closure (encoded
   data decodes to the registered codec's value, which for the default
   codec is Blob regardless of the original). *)
let message_eq (a : Message.t) (b : Message.t) =
  a.origin = b.origin && a.app_seq = b.app_seq && a.size = b.size
  && a.safe = b.safe

let element_eq (a : Wire.element) (b : Wire.element) =
  message_eq a.message b.message && a.fragment = b.fragment

let packet_eq (a : Wire.packet) (b : Wire.packet) =
  a.ring_id = b.ring_id && a.seq = b.seq && a.sender = b.sender
  && List.length a.elements = List.length b.elements
  && List.for_all2 element_eq a.elements b.elements

let shadow_check payload =
  let check name ok = if ok then Ok () else Error (name ^ " round trip mismatch") in
  match payload with
  | Wire.Data p -> (
    match decode (encode_packet p) with
    | Ok (Packet p') -> check "packet" (packet_eq p p')
    | Ok _ -> Error "packet decoded as another kind"
    | Error e -> Error (Format.asprintf "packet: %a" pp_error e))
  | Wire.Tok tok -> (
    match decode (encode_token tok) with
    | Ok (Token t') -> check "token" (tok = t')
    | Ok _ -> Error "token decoded as another kind"
    | Error e -> Error (Format.asprintf "token: %a" pp_error e))
  | Wire.Join j -> (
    match decode (encode_join j) with
    | Ok (Join j') -> check "join" (j = j')
    | Ok _ -> Error "join decoded as another kind"
    | Error e -> Error (Format.asprintf "join: %a" pp_error e))
  | Wire.Probe p -> (
    match decode (encode_probe p) with
    | Ok (Probe p') -> check "probe" (p = p')
    | Ok _ -> Error "probe decoded as another kind"
    | Error e -> Error (Format.asprintf "probe: %a" pp_error e))
  | Wire.Commit cm -> (
    match decode (encode_commit cm) with
    | Ok (Commit cm') -> check "commit" (cm = cm')
    | Ok _ -> Error "commit decoded as another kind"
    | Error e -> Error (Format.asprintf "commit: %a" pp_error e))
  | _ -> Ok ()

(* --- semantic validation ---------------------------------------------
   [decode] only proves the input parses; garbage that survives the
   CRC (a collision) can still parse into a unit whose fields would
   crash the protocol (a node id indexing past the membership arrays,
   a fragment index past its count, an empty token ring feeding a
   [mod 0]). This layer bounds every identifier-like field so such a
   unit is discarded at the NIC instead. *)

let in_range what value ~min ~max =
  if value < min || value > max then
    raise (Decode_error (Bad_field { what; value; min; max }))

let validate ?(max_node = 0xffff) d =
  let node what v = in_range what v ~min:0 ~max:max_node in
  try
    (match d with
    | Packet p ->
      node "packet sender" p.Wire.sender;
      List.iter
        (fun (e : Wire.element) ->
          node "element origin" e.message.origin;
          match e.fragment with
          | None ->
            (* A whole message packed into one frame fits the payload. *)
            in_range "message size" e.message.size ~min:0 ~max:max_payload
          | Some f ->
            in_range "fragment count" f.count ~min:1 ~max:0xffff;
            in_range "fragment index" f.index ~min:0 ~max:(f.count - 1);
            in_range "fragment bytes" f.bytes ~min:0 ~max:max_payload)
        p.elements
    | Token t ->
      node "aru setter" t.aru_setter;
      in_range "token ring size" (Array.length t.ring) ~min:1 ~max:0xff;
      Array.iter (fun n -> node "ring member" n) t.ring
    | Join j ->
      node "join sender" j.sender;
      List.iter (fun n -> node "proc set member" n) j.proc_set;
      List.iter (fun n -> node "fail set member" n) j.fail_set
    | Probe p -> node "probe sender" p.probe_sender
    | Commit cm ->
      in_range "commit round" cm.cm_round ~min:1 ~max:2;
      Array.iter (fun n -> node "commit ring member" n) cm.cm_ring;
      List.iter
        (fun (i : Wire.member_info) -> node "member info node" i.mi_node)
        cm.cm_info);
    Ok ()
  with Decode_error e -> Error e

(* --- byte-faithful frame layer ---------------------------------------
   The wire mode's unit of exchange: [encode_frame] turns a protocol
   payload into its byte image plus a CRC-32 trailer (the model of the
   Ethernet FCS), [decode_frame] is the receiving NIC's discard
   pipeline — checksum, total decode, semantic validation — in the
   order real hardware and a real stack would apply them. *)

type frame_error =
  | Crc_mismatch
  | Malformed of error

let pp_frame_error ppf = function
  | Crc_mismatch -> Format.pp_print_string ppf "CRC-32 mismatch"
  | Malformed e -> pp_error ppf e

let encode_payload = function
  | Wire.Data p -> Some (encode_packet p)
  | Wire.Tok t -> Some (encode_token t)
  | Wire.Join j -> Some (encode_join j)
  | Wire.Probe p -> Some (encode_probe p)
  | Wire.Commit cm -> Some (encode_commit cm)
  | _ -> None

let payload_of_decoded = function
  | Packet p -> Wire.Data p
  | Token t -> Wire.Tok t
  | Join j -> Wire.Join j
  | Probe p -> Wire.Probe p
  | Commit cm -> Wire.Commit cm

(* One frame image — unit bytes and CRC trailer — written into a single
   allocation: encode into [size + 4] zero-filled bytes, checksum the
   body in place, write the trailer behind it. *)
let image size write =
  let buf = encoded ~extra:Totem_net.Crc32.trailer_bytes size write in
  Totem_net.Crc32.write_trailer buf ~pos:size
    (Totem_net.Crc32.update_bytes 0 buf ~pos:0 ~len:size);
  Bytes.unsafe_to_string buf

let payload_image = function
  | Wire.Data p ->
    let size, bodies = packet_plan p in
    Some (image size (fun w -> write_packet w p bodies))
  | Wire.Tok t -> Some (image (token_size t) (fun w -> write_token w t))
  | Wire.Join j -> Some (image (join_size j) (fun w -> write_join w j))
  | Wire.Probe p -> Some (image probe_size (fun w -> write_probe w p))
  | Wire.Commit cm -> Some (image (commit_size cm) (fun w -> write_commit w cm))
  | _ -> None

(* --- encode-once / decode-once caches --------------------------------
   Active replication serializes the same logical frame once per
   network, and an M-receiver broadcast deserializes the same byte
   string once per NIC — N x M copies of bitwise-identical work
   (Sec. 5: every message and token travels on all N networks). Both
   caches key on {e physical} identity: the RRP styles pass the same
   packet/token value to every network, and every clean receiver of a
   broadcast shares the sender's byte string. Corruption
   ([Network.corrupt_frame]) always substitutes a freshly allocated
   string, so a damaged copy can never alias a cached decode — it
   misses and takes the full CRC -> decode -> validate discard
   pipeline, preserving corruption-as-loss exactly.

   Caches are per-cluster values, not module globals: bench sweeps run
   clusters on parallel domains, and identity-keyed state must not leak
   across them. *)

type encode_cache = {
  (* Packets get a ring: SRP retransmissions re-send the stored packet
     value some sends later, so a single slot would have been evicted by
     the traffic in between. The membership/token units are
     fanned out back to back — one slot each suffices. *)
  ec_packets : (Wire.packet * Totem_net.Frame.payload) option array;
  mutable ec_packet_next : int;
  mutable ec_token : (Token.t * Totem_net.Frame.payload) option;
  mutable ec_join : (Wire.join * Totem_net.Frame.payload) option;
  mutable ec_probe : (Wire.probe * Totem_net.Frame.payload) option;
  mutable ec_commit : (Wire.commit * Totem_net.Frame.payload) option;
  mutable ec_hits : int;
  mutable ec_misses : int;
}

let encode_cache ?(packet_slots = 8) () =
  if packet_slots < 1 then invalid_arg "Codec.encode_cache";
  {
    ec_packets = Array.make packet_slots None;
    ec_packet_next = 0;
    ec_token = None;
    ec_join = None;
    ec_probe = None;
    ec_commit = None;
    ec_hits = 0;
    ec_misses = 0;
  }

let encode_cache_stats c = (c.ec_hits, c.ec_misses)

let cached_packet c p =
  let slots = c.ec_packets in
  let n = Array.length slots in
  (* Scan newest-first: the fan-out pattern hits the most recent slot. *)
  let rec scan k idx =
    if k >= n then None
    else
      match slots.(idx) with
      | Some (p0, img) when p0 == p -> Some img
      | _ -> scan (k + 1) (if idx = 0 then n - 1 else idx - 1)
  in
  let newest = if c.ec_packet_next = 0 then n - 1 else c.ec_packet_next - 1 in
  match scan 0 newest with
  | Some img ->
    c.ec_hits <- c.ec_hits + 1;
    img
  | None ->
    c.ec_misses <- c.ec_misses + 1;
    let size, bodies = packet_plan p in
    let img =
      Totem_net.Frame.Bytes (image size (fun w -> write_packet w p bodies))
    in
    slots.(c.ec_packet_next) <- Some (p, img);
    c.ec_packet_next <- (c.ec_packet_next + 1) mod n;
    img

let encode_frame ?cache (frame : Totem_net.Frame.t) =
  let with_payload payload = { frame with Totem_net.Frame.payload } in
  match cache with
  | None -> (
    match payload_image frame.payload with
    | None -> frame (* foreign payload: not ours to serialize *)
    | Some img -> with_payload (Totem_net.Frame.Bytes img))
  | Some c -> (
    let hit img =
      c.ec_hits <- c.ec_hits + 1;
      img
    and miss build key store =
      c.ec_misses <- c.ec_misses + 1;
      let img = Totem_net.Frame.Bytes (build ()) in
      store (Some (key, img));
      img
    in
    match frame.payload with
    | Wire.Data p -> with_payload (cached_packet c p)
    | Wire.Tok t ->
      with_payload
        (match c.ec_token with
        | Some (t0, img) when t0 == t -> hit img
        | _ ->
          miss
            (fun () -> image (token_size t) (fun w -> write_token w t))
            t
            (fun s -> c.ec_token <- s))
    | Wire.Join j ->
      with_payload
        (match c.ec_join with
        | Some (j0, img) when j0 == j -> hit img
        | _ ->
          miss
            (fun () -> image (join_size j) (fun w -> write_join w j))
            j
            (fun s -> c.ec_join <- s))
    | Wire.Probe p ->
      with_payload
        (match c.ec_probe with
        | Some (p0, img) when p0 == p -> hit img
        | _ ->
          miss
            (fun () -> image probe_size (fun w -> write_probe w p))
            p
            (fun s -> c.ec_probe <- s))
    | Wire.Commit cm ->
      with_payload
        (match c.ec_commit with
        | Some (cm0, img) when cm0 == cm -> hit img
        | _ ->
          miss
            (fun () -> image (commit_size cm) (fun w -> write_commit w cm))
            cm
            (fun s -> c.ec_commit <- s))
    | _ -> frame)

type decode_cache = {
  (* FIFO ring of decoded frame images, keyed on the identity of the
     byte string ([""] marks an empty slot; real images are never
     empty). Sized for the frames in flight across one cluster: an
     M-receiver broadcast's deliveries interleave with other frames'
     under jitter and per-receiver FIFO, so one slot would thrash. *)
  dc_keys : string array;
  dc_vals : Totem_net.Frame.payload array;
  mutable dc_next : int;
  mutable dc_hits : int;
  mutable dc_misses : int;
}

let decode_cache ?(slots = 64) () =
  if slots < 1 then invalid_arg "Codec.decode_cache";
  {
    dc_keys = Array.make slots "";
    dc_vals = Array.make slots (Totem_net.Frame.Opaque "");
    dc_next = 0;
    dc_hits = 0;
    dc_misses = 0;
  }

let decode_cache_stats c = (c.dc_hits, c.dc_misses)

let decode_frame ?cache ?max_node (frame : Totem_net.Frame.t) =
  match frame.Totem_net.Frame.payload with
  | Totem_net.Frame.Bytes s -> (
    let cache_lookup () =
      match cache with
      | Some c when String.length s > 0 ->
        let keys = c.dc_keys in
        let n = Array.length keys in
        let rec scan k idx =
          if k >= n then None
          else if keys.(idx) == s then Some c.dc_vals.(idx)
          else scan (k + 1) (if idx = 0 then n - 1 else idx - 1)
        in
        scan 0 (if c.dc_next = 0 then n - 1 else c.dc_next - 1)
      | _ -> None
    in
    match cache_lookup () with
    | Some payload ->
      (match cache with Some c -> c.dc_hits <- c.dc_hits + 1 | None -> ());
      Ok { frame with Totem_net.Frame.payload }
    | None ->
      (match cache with Some c -> c.dc_misses <- c.dc_misses + 1 | None -> ());
      if not (Totem_net.Crc32.check s) then Error Crc_mismatch
      else begin
        match
          decode s ~pos:0
            ~len:(String.length s - Totem_net.Crc32.trailer_bytes)
        with
        | Error e -> Error (Malformed e)
        | Ok d -> (
          match validate ?max_node d with
          | Error e -> Error (Malformed e)
          | Ok () ->
            let payload = payload_of_decoded d in
            (* Only proven-good images are cached: a rejected string is
               re-verified (and re-rejected) on every copy, so cached and
               uncached runs emit identical discard telemetry. *)
            (match cache with
            | Some c ->
              c.dc_keys.(c.dc_next) <- s;
              c.dc_vals.(c.dc_next) <- payload;
              c.dc_next <- (c.dc_next + 1) mod Array.length c.dc_keys
            | None -> ());
            Ok { frame with Totem_net.Frame.payload })
      end)
  | _ -> Ok frame
