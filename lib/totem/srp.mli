(** The Totem Single Ring Protocol engine — one instance per node.

    Implements the protocol of Sec. 2: token-passing broadcast with
    global sequence numbers, in-order (agreed) delivery, retransmission
    requests carried on the token, token retransmission with duplicate
    suppression, token-based flow control, message packing and
    fragmentation, stability-based garbage collection, and a membership
    protocol driven by token-loss detection.

    The engine is transport-agnostic: it sends through a {!Lower.t} and
    is fed by [recv_data] / [token_arrived] / [recv_join]. The Totem RRP
    is exactly a different implementation of that lower interface, so
    this one engine runs unreplicated and replicated alike.

    CPU realism: every token visit and every received message charges
    the node's {!Totem_engine.Cpu.t}; the sends triggered by a token
    visit happen when the CPU has done the corresponding work. This is
    what reproduces the paper's processing-bound throughput ceiling. *)

type callbacks = {
  on_deliver : Message.t -> unit;
      (** agreed delivery: same total order at every node *)
  on_ring_change : ring_id:int -> members:Totem_net.Addr.node_id array -> unit;
      (** a new ring was installed (start-up, node crash, heal) *)
}

(** Counters exposed for experiments and tests. *)
type stats = {
  mutable delivered_messages : int;
  mutable delivered_bytes : int;
  mutable sent_messages : int;
  mutable sent_packets : int;
  mutable duplicate_packets : int;
  mutable duplicate_tokens : int;
  mutable retransmissions_served : int;
  mutable retransmissions_requested : int;
  mutable token_visits : int;
  mutable token_retransmits : int;
  mutable gather_entries : int;
  mutable ring_changes : int;
}

type t

val create :
  Totem_engine.Sim.t ->
  cpu:Totem_engine.Cpu.t ->
  const:Const.t ->
  me:Totem_net.Addr.node_id ->
  lower:Lower.t ->
  ?trace:Totem_engine.Trace.t ->
  callbacks ->
  t

val me : t -> Totem_net.Addr.node_id

(** {1 Application side} *)

val submit : t -> size:int -> ?safe:bool -> ?data:Message.data -> unit -> unit
(** Queues a message for ordered broadcast. With [~safe:true] the
    message gets Totem's {e safe} delivery guarantee: every node holds
    it back until the token's aru shows that all ring members have
    received it (so no delivery can happen at only a subset that then
    partitions away). The queue is unbounded; use
    {!send_queue_length} for application-level backpressure. *)

val set_supplier : t -> (unit -> (int * Message.data) option) -> unit
(** Installs a pull source consulted on each token visit to top the
    send queue up to the flow-control allowance — how the benchmarks
    express "send as many messages as flow control permits" (Sec. 8). *)

val send_queue_length : t -> int

(** {1 Control} *)

val install_ring :
  t -> ring_id:int -> members:Totem_net.Addr.node_id array -> unit
(** Adopts a ring directly (cluster start-up). Arms the token-loss
    detector. *)

val bootstrap_token : t -> unit
(** Fabricates and processes the new ring's initial token; call on
    exactly one member after {!install_ring}. *)

val start_gathering : t -> unit
(** Begins the membership protocol from cold (a node with no ring). *)

val crash : t -> unit
(** Silences the node: every input is dropped, timers stop. *)

val is_crashed : t -> bool

val recover : t -> unit
(** Reboot a crashed node: volatile protocol state is discarded and the
    node re-enters the membership protocol to join whatever ring the
    survivors formed. @raise Invalid_argument if not crashed. *)

(** {1 Inputs (called by the replication layer)} *)

val recv_data : t -> Wire.packet -> unit

val token_arrived : t -> Token.t -> unit
(** A token the replication layer decided to pass up (Figs. 2 and 4:
    "deliver t to Totem SRP"). *)

val recv_join : t -> Wire.join -> unit

val recv_probe : t -> Wire.probe -> unit
(** A merge-detect probe (Corosync's memb_merge_detect): a probe naming
    a different ring triggers the membership protocol so that rings
    formed during a partition merge once the networks heal. *)

val recv_commit : t -> Wire.commit -> unit
(** The membership commit token. Round 1 collects each proposed
    member's old-ring position; round 2 distributes the collected list
    and starts the recovery exchange, after which the new ring is
    installed. The recovery exchange guarantees that all members coming
    from one old ring deliver the same prefix of it — the extended
    virtual synchrony property the replicated-state-machine examples
    rely on. *)

(** {1 Introspection} *)

val safe_horizon : t -> int
(** Highest sequence number proven (by two consecutive token arus) to be
    held by every ring member; safe messages at or below it are
    deliverable. *)

val my_aru : t -> int
(** All-received-up-to — the replication layer's
    [anyMessagesMissing()] is [my_aru t < seq] for the buffered token. *)

val highest_seen : t -> int

val current_ring_id : t -> int

val members : t -> Totem_net.Addr.node_id array

val is_operational : t -> bool
(** False while the membership protocol is running. *)

val stats : t -> stats

val rotation_histogram : t -> Totem_engine.Stats.Histogram.t
(** Distribution of full token-rotation times in milliseconds, observed
    at the ring leader (one sample per completed circuit). Always
    collected, independent of tracing. *)

val allowance_histogram : t -> Totem_engine.Stats.Histogram.t
(** Distribution of the flow-control allowance (packets permitted per
    token visit); buckets are packet counts, not milliseconds. *)
