module Vtime = Totem_engine.Vtime
module Rng = Totem_engine.Rng
module Style = Totem_rrp.Style
module Scenario = Totem_cluster.Scenario

(* Fault operations are a serializable mirror of Scenario.action: no
   Custom closures, so a campaign can round-trip through a .chaos.json
   file and replay bit-for-bit. *)
type op =
  | Fail_net of int
  | Heal_net of int
  | Set_loss of int * float
  | Set_corrupt of int * float
  | Set_burst_loss of int * float * float
  | Set_delay_factor of int * float * float
  | Set_dir_loss of int * int * int * float
  | Set_duplicate of int * float
  | Set_reorder of int * float
  | Block_send of int * int
  | Unblock_send of int * int
  | Block_recv of int * int
  | Unblock_recv of int * int
  | Partition of int * int list * int list
  | Unpartition of int * int list * int list
  | Crash of int
  | Recover of int

type step = { at : Vtime.t; op : op }

type traffic =
  | Bursts of (int * int * int * Vtime.t) list
  | Saturate of int

type t = {
  num_nodes : int;
  num_nets : int;
  style : Style.t;
  seed : int;
  duration : Vtime.t;
  quiesce : Vtime.t;
  traffic : traffic;
  steps : step list;
  wire : bool;
  reinstate : bool;
}

let to_action = function
  | Fail_net n -> Scenario.Fail_network n
  | Heal_net n -> Scenario.Heal_network n
  | Set_loss (n, p) -> Scenario.Set_loss (n, p)
  | Set_corrupt (n, p) -> Scenario.Set_corrupt (n, p)
  | Set_burst_loss (n, p_enter, p_exit) ->
    Scenario.Set_burst_loss (n, p_enter, p_exit)
  | Set_delay_factor (n, factor, spike) ->
    Scenario.Set_delay_factor (n, factor, spike)
  | Set_dir_loss (n, src, dst, p) -> Scenario.Set_dir_loss (n, src, dst, p)
  | Set_duplicate (n, p) -> Scenario.Set_duplicate (n, p)
  | Set_reorder (n, p) -> Scenario.Set_reorder (n, p)
  | Block_send (node, net) -> Scenario.Block_send (node, net)
  | Unblock_send (node, net) -> Scenario.Unblock_send (node, net)
  | Block_recv (node, net) -> Scenario.Block_recv (node, net)
  | Unblock_recv (node, net) -> Scenario.Unblock_recv (node, net)
  | Partition (net, from_nodes, to_nodes) ->
    Scenario.Partition { net; from_nodes; to_nodes }
  | Unpartition (net, from_nodes, to_nodes) ->
    Scenario.Unpartition { net; from_nodes; to_nodes }
  | Crash n -> Scenario.Crash_node n
  | Recover n -> Scenario.Recover_node n

let pp_op ppf op = Scenario.pp_action ppf (to_action op)

let pp_step ppf s = Format.fprintf ppf "@[%a %a@]" Vtime.pp s.at pp_op s.op

let make ?(num_nodes = 4) ?(num_nets = 2) ?(style = Style.Passive) ?(seed = 42)
    ?(duration = Vtime.sec 2) ?(quiesce = Vtime.sec 5)
    ?(traffic = Saturate 1024) ?(wire = false) ?(reinstate = false) steps =
  (* Stable sort by time: steps keep their list order within an instant,
     which is also the order the runner schedules them in, so the
     serialized form is canonical. *)
  let steps = List.stable_sort (fun a b -> compare a.at b.at) steps in
  {
    num_nodes;
    num_nets;
    style;
    seed;
    duration;
    quiesce;
    traffic;
    steps;
    wire;
    reinstate;
  }

(* --- combinators ---------------------------------------------------- *)

let flap ~net ~period ?(duty = 0.5) ~from_ ~until () =
  if duty <= 0.0 || duty >= 1.0 then invalid_arg "Campaign.flap: duty in (0,1)";
  if period <= 0 then invalid_arg "Campaign.flap: period must be positive";
  let down = Vtime.of_float_sec (Vtime.to_float_sec period *. duty) in
  let rec go t acc =
    if Vtime.( >= ) t until then List.rev acc
    else
      let heal_at = Vtime.min until (Vtime.add t down) in
      go
        (Vtime.add t period)
        ({ at = heal_at; op = Heal_net net } :: { at = t; op = Fail_net net } :: acc)
  in
  go from_ []

let rolling_partition ~net ~nodes ~dwell ~from_ ~rounds =
  (match nodes with
  | _ :: _ :: _ -> ()
  | _ -> invalid_arg "Campaign.rolling_partition: need at least two nodes");
  if rounds < 1 then invalid_arg "Campaign.rolling_partition: rounds >= 1";
  let n = List.length nodes in
  let arr = Array.of_list nodes in
  List.concat
    (List.init rounds (fun r ->
         let src = [ arr.(r mod n) ] and dst = [ arr.((r + 1) mod n) ] in
         let t0 = Vtime.add from_ (Vtime.of_float_sec
                                     (Vtime.to_float_sec dwell *. float_of_int r)) in
         [
           { at = t0; op = Partition (net, src, dst) };
           { at = Vtime.add t0 dwell; op = Unpartition (net, src, dst) };
         ]))

let loss_ramp ~net ~from_ ~until ~stages ~peak =
  if stages < 1 then invalid_arg "Campaign.loss_ramp: stages >= 1";
  if peak < 0.0 || peak > 1.0 then invalid_arg "Campaign.loss_ramp: peak in [0,1]";
  let span = Vtime.to_float_sec (Vtime.sub until from_) in
  if span <= 0.0 then invalid_arg "Campaign.loss_ramp: until after from_";
  let ramp =
    List.init stages (fun i ->
        let frac = float_of_int (i + 1) /. float_of_int stages in
        {
          at = Vtime.add from_ (Vtime.of_float_sec (span *. float_of_int i /. float_of_int stages));
          op = Set_loss (net, peak *. frac);
        })
  in
  ramp @ [ { at = until; op = Set_loss (net, 0.0) } ]

let corrupt_window ~net ~from_ ~until ~p =
  if p < 0.0 || p > 1.0 then invalid_arg "Campaign.corrupt_window: p in [0,1]";
  [
    { at = from_; op = Set_corrupt (net, p) };
    { at = until; op = Set_corrupt (net, 0.0) };
  ]

let corruption_ramp ~net ~from_ ~until ~stages ~peak =
  if stages < 1 then invalid_arg "Campaign.corruption_ramp: stages >= 1";
  if peak < 0.0 || peak > 1.0 then
    invalid_arg "Campaign.corruption_ramp: peak in [0,1]";
  let span = Vtime.to_float_sec (Vtime.sub until from_) in
  if span <= 0.0 then invalid_arg "Campaign.corruption_ramp: until after from_";
  let ramp =
    List.init stages (fun i ->
        let frac = float_of_int (i + 1) /. float_of_int stages in
        {
          at =
            Vtime.add from_
              (Vtime.of_float_sec
                 (span *. float_of_int i /. float_of_int stages));
          op = Set_corrupt (net, peak *. frac);
        })
  in
  ramp @ [ { at = until; op = Set_corrupt (net, 0.0) } ]

(* --- gray-failure combinators --------------------------------------- *)

let gray_window ~net ~from_ ~until ~p_enter ~p_exit ?(factor = 1.0)
    ?(spike = 0.0) () =
  if p_enter < 0.0 || p_enter > 1.0 || p_exit < 0.0 || p_exit > 1.0 then
    invalid_arg "Campaign.gray_window: probabilities in [0,1]";
  if spike < 0.0 || spike > 1.0 then
    invalid_arg "Campaign.gray_window: spike in [0,1]";
  [
    { at = from_; op = Set_burst_loss (net, p_enter, p_exit) };
    { at = from_; op = Set_delay_factor (net, factor, spike) };
    { at = until; op = Set_burst_loss (net, 0.0, 1.0) };
    { at = until; op = Set_delay_factor (net, 1.0, 0.0) };
  ]

(* Alternating heavy-burst and clean windows: the network condemns under
   the storm, probes during the calm, and (with reinstatement on)
   re-condemns under the next storm — the flap-damping stress shape. *)
let flap_storm ~net ~from_ ~cycles ~storm ~calm =
  if cycles < 1 then invalid_arg "Campaign.flap_storm: cycles >= 1";
  if Vtime.( <= ) storm Vtime.zero || Vtime.( <= ) calm Vtime.zero then
    invalid_arg "Campaign.flap_storm: storm/calm must be positive";
  List.concat
    (List.init cycles (fun i ->
         let t0 = Vtime.add from_ ((storm + calm) * i) in
         [
           { at = t0; op = Set_burst_loss (net, 0.9, 0.05) };
           { at = Vtime.add t0 storm; op = Set_burst_loss (net, 0.0, 1.0) };
         ]))

let gilbert_ramp ~net ~from_ ~until ~stages ~peak =
  if stages < 1 then invalid_arg "Campaign.gilbert_ramp: stages >= 1";
  if peak <= 0.0 || peak >= 1.0 then
    invalid_arg "Campaign.gilbert_ramp: peak in (0,1)";
  let span = Vtime.to_float_sec (Vtime.sub until from_) in
  if span <= 0.0 then invalid_arg "Campaign.gilbert_ramp: until after from_";
  (* Fixed mean burst length (1/p_exit = 5 deliveries); the steady-state
     loss p_enter/(p_enter+p_exit) climbs linearly to [peak]. *)
  let p_exit = 0.2 in
  let ramp =
    List.init stages (fun i ->
        let ss = peak *. (float_of_int (i + 1) /. float_of_int stages) in
        let p_enter = ss *. p_exit /. (1.0 -. ss) in
        {
          at =
            Vtime.add from_
              (Vtime.of_float_sec
                 (span *. float_of_int i /. float_of_int stages));
          op = Set_burst_loss (net, Float.min p_enter 1.0, p_exit);
        })
  in
  ramp @ [ { at = until; op = Set_burst_loss (net, 0.0, 1.0) } ]

let send_block_window ~node ~net ~from_ ~until =
  [
    { at = from_; op = Block_send (node, net) };
    { at = until; op = Unblock_send (node, net) };
  ]

let recv_block_window ~node ~net ~from_ ~until =
  [
    { at = from_; op = Block_recv (node, net) };
    { at = until; op = Unblock_recv (node, net) };
  ]

let kill_window ~node ~at ?recover_at () =
  { at; op = Crash node }
  ::
  (match recover_at with
  | Some t -> [ { at = t; op = Recover node } ]
  | None -> [])

(* --- static analysis ------------------------------------------------ *)

let nets_of_op = function
  | Fail_net n | Heal_net n | Set_loss (n, _) | Set_corrupt (n, _) -> [ n ]
  | Set_burst_loss (n, _, _) | Set_delay_factor (n, _, _) -> [ n ]
  | Set_dir_loss (n, _, _, _) | Set_duplicate (n, _) | Set_reorder (n, _) ->
    [ n ]
  | Block_send (_, n) | Unblock_send (_, n) -> [ n ]
  | Block_recv (_, n) | Unblock_recv (_, n) -> [ n ]
  | Partition (n, _, _) | Unpartition (n, _, _) -> [ n ]
  | Crash _ | Recover _ -> []

(* A network is "touched" when the campaign injects a hard fault on it,
   or sporadic loss above [sporadic_loss_max] — the rate the paper's
   decay mechanisms are expected to absorb without condemnation (A5/P5).
   Untouched ("virgin") networks must never be declared faulty. *)
let touched_nets ?(sporadic_loss_max = 0.0) t =
  let touched = Array.make t.num_nets false in
  List.iter
    (fun { op; _ } ->
      match op with
      | Set_loss (n, p) | Set_corrupt (n, p) | Set_dir_loss (n, _, _, p) ->
        if p > sporadic_loss_max then touched.(n) <- true
      | Set_burst_loss (n, p_enter, _) ->
        if p_enter > sporadic_loss_max then touched.(n) <- true
      | Set_delay_factor (n, factor, spike) ->
        if factor > 1.0 || spike > sporadic_loss_max then touched.(n) <- true
      (* Duplicates and reordering never drop anything: the SRP's
         duplicate filter and retransmission machinery must absorb them
         without a fault mark, so they leave a network virgin. *)
      | Set_duplicate _ | Set_reorder _ -> ()
      | Heal_net _ -> ()
      | op -> List.iter (fun n -> touched.(n) <- true) (nets_of_op op))
    t.steps;
  touched

(* Networks on which the campaign ever injects corruption: the
   corruption-confinement invariant requires every corruption artifact
   (in-flight mutation, CRC/decode discard) to land on one of these. *)
let corrupt_nets t =
  let hit = Array.make t.num_nets false in
  List.iter
    (fun { op; _ } ->
      match op with
      | Set_corrupt (n, p) -> if p > 0.0 then hit.(n) <- true
      | _ -> ())
    t.steps;
  hit

let has_crashes t =
  List.exists (fun { op; _ } -> match op with Crash _ -> true | _ -> false) t.steps

(* Whether the campaign stays inside the paper's fault hypothesis: no
   processor crashes, and at every instant at least one network carries
   no fault at all (not even sporadic loss). Under a tolerated campaign
   the protocol must mask everything — same order, same deliveries, no
   membership change. *)
let tolerated t =
  if has_crashes t then false
  else begin
    (* Per-net fault state replayed over the sorted step list. *)
    let down = Array.make t.num_nets false in
    let loss = Array.make t.num_nets 0.0 in
    let corrupt = Array.make t.num_nets 0.0 in
    let blocks = Array.make t.num_nets 0 in
    let burst = Array.make t.num_nets 0.0 in
    let delay = Array.make t.num_nets 0.0 in
    let dirloss = Hashtbl.create 8 in
    let dirloss_on n =
      Hashtbl.fold
        (fun (net, _, _) p acc -> acc || (net = n && p > 0.0))
        dirloss false
    in
    let dup = Array.make t.num_nets 0.0 in
    let reorder = Array.make t.num_nets 0.0 in
    let clean n =
      (not down.(n)) && loss.(n) = 0.0 && corrupt.(n) = 0.0 && blocks.(n) <= 0
      && burst.(n) = 0.0 && delay.(n) = 0.0
      && (not (dirloss_on n))
      && dup.(n) = 0.0 && reorder.(n) = 0.0
    in
    let some_clean () =
      let ok = ref false in
      for n = 0 to t.num_nets - 1 do
        if clean n then ok := true
      done;
      !ok
    in
    let apply = function
      | Fail_net n -> down.(n) <- true
      | Heal_net n ->
        down.(n) <- false;
        loss.(n) <- 0.0;
        corrupt.(n) <- 0.0;
        blocks.(n) <- 0;
        burst.(n) <- 0.0;
        delay.(n) <- 0.0;
        Hashtbl.fold (fun ((net, _, _) as k) _ acc ->
            if net = n then k :: acc else acc)
          dirloss []
        |> List.iter (fun k -> Hashtbl.replace dirloss k 0.0);
        dup.(n) <- 0.0;
        reorder.(n) <- 0.0
      | Set_loss (n, p) -> loss.(n) <- p
      | Set_corrupt (n, p) -> corrupt.(n) <- p
      (* "Clean" means no fault dimension at all, conservatively
         including the masked ones (duplicates, reordering). *)
      | Set_burst_loss (n, p_enter, _) -> burst.(n) <- p_enter
      | Set_delay_factor (n, factor, spike) ->
        delay.(n) <- Float.max (factor -. 1.0) spike
      | Set_dir_loss (n, src, dst, p) ->
        Hashtbl.replace dirloss (n, src, dst) p
      | Set_duplicate (n, p) -> dup.(n) <- p
      | Set_reorder (n, p) -> reorder.(n) <- p
      | Block_send (_, n) | Block_recv (_, n) -> blocks.(n) <- blocks.(n) + 1
      | Unblock_send (_, n) | Unblock_recv (_, n) ->
        blocks.(n) <- blocks.(n) - 1
      | Partition (n, src, dst) ->
        blocks.(n) <- blocks.(n) + (List.length src * List.length dst)
      | Unpartition (n, src, dst) ->
        blocks.(n) <- blocks.(n) - (List.length src * List.length dst)
      | Crash _ | Recover _ -> ()
    in
    List.for_all
      (fun { op; _ } ->
        apply op;
        some_clean ())
      t.steps
  end

let validate t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let check_net n = n >= 0 && n < t.num_nets in
  let check_node n = n >= 0 && n < t.num_nodes in
  if t.num_nodes < 2 then err "num_nodes %d < 2" t.num_nodes
  else if t.num_nets < 1 then err "num_nets %d < 1" t.num_nets
  else if t.duration <= Vtime.zero then err "duration must be positive"
  else begin
    let bad_burst =
      match t.traffic with
      | Saturate size -> if size > 0 then None else Some "saturate size <= 0"
      | Bursts bs ->
        List.find_map
          (fun (node, size, count, at) ->
            if not (check_node node) then Some "burst node out of range"
            else if size <= 0 || count <= 0 then Some "burst size/count <= 0"
            else if Vtime.( < ) at Vtime.zero then Some "burst in the past"
            else None)
          bs
    in
    match bad_burst with
    | Some m -> Error m
    | None ->
      let bad_step =
        List.find_map
          (fun { at; op } ->
            if Vtime.( < ) at Vtime.zero then Some "step in the past"
            else
              let nets_ok = List.for_all check_net (nets_of_op op) in
              let nodes_ok =
                match op with
                | Block_send (n, _) | Unblock_send (n, _) | Block_recv (n, _)
                | Unblock_recv (n, _) | Crash n | Recover n ->
                  check_node n
                | Set_dir_loss (_, src, dst, _) ->
                  check_node src && check_node dst
                | Partition (_, a, b) | Unpartition (_, a, b) ->
                  List.for_all check_node (a @ b)
                | _ -> true
              in
              let in01 p = p >= 0.0 && p <= 1.0 in
              let loss_ok =
                match op with
                | Set_loss (_, p) | Set_corrupt (_, p) -> in01 p
                | Set_burst_loss (_, p_enter, p_exit) ->
                  in01 p_enter && in01 p_exit
                | Set_delay_factor (_, factor, spike) ->
                  factor >= 0.0 && in01 spike
                | Set_dir_loss (_, _, _, p)
                | Set_duplicate (_, p)
                | Set_reorder (_, p) ->
                  in01 p
                | _ -> true
              in
              if not nets_ok then Some "step net out of range"
              else if not nodes_ok then Some "step node out of range"
              else if not loss_ok then Some "loss outside [0,1]"
              else None)
          t.steps
      in
      (match bad_step with
      | Some m -> Error m
      | None -> (
        match Style.validate t.style ~num_nets:t.num_nets with
        | Ok () -> Ok ()
        | Error m -> Error m))
  end

(* --- random campaigns ------------------------------------------------ *)

(* Mirrors the original test_fuzz generator — random cluster shape,
   random fault timeline that never touches the last network (the
   paper's operating assumption that one network survives) — but draws
   from the richer op set, including windowed blocks and rolling
   partitions. *)
let random ~seed ?(duration = Vtime.sec 2) ?(quiesce = Vtime.sec 5)
    ?(wire = false) ?(corrupt = false) ?(gray = false) () =
  let rng = Rng.create ~seed in
  let num_nodes = 2 + Rng.int rng 4 in
  let num_nets = 2 + Rng.int rng 2 in
  let styles =
    if num_nets >= 3 then
      [| Style.Passive; Style.Active; Style.Active_passive 2 |]
    else [| Style.Passive; Style.Active |]
  in
  let style = Rng.pick rng styles in
  let dur_ms = int_of_float (Vtime.to_float_ms duration) in
  let rand_time () = Vtime.ms (100 + Rng.int rng (max 1 (dur_ms - 200))) in
  let rand_net () = Rng.int rng (num_nets - 1) in
  let rand_node () = Rng.int rng num_nodes in
  (* With [corrupt] the op draw widens by two corruption shapes, with
     [gray] by three gray shapes; with both off the draw is
     [Rng.int rng 8] exactly as before, so existing seeds keep their
     campaigns bit-for-bit. Gray cases sit above the corruption ones
     and are renumbered down when [corrupt] is off. *)
  let op_cases =
    8 + (if corrupt then 2 else 0) + if gray then 3 else 0
  in
  let random_steps () =
    let net = rand_net () and node = rand_node () in
    let at = rand_time () in
    let case =
      let c = Rng.int rng op_cases in
      if c >= 8 && not corrupt then c + 2 else c
    in
    match case with
    | 0 -> [ { at; op = Fail_net net } ]
    | 1 -> [ { at; op = Heal_net net } ]
    | 2 -> [ { at; op = Set_loss (net, Rng.float rng 0.4) } ]
    | 3 ->
      send_block_window ~node ~net ~from_:at
        ~until:(Vtime.add at (Vtime.ms (50 + Rng.int rng 500)))
    | 4 ->
      recv_block_window ~node ~net ~from_:at
        ~until:(Vtime.add at (Vtime.ms (50 + Rng.int rng 500)))
    | 5 ->
      let other = (node + 1 + Rng.int rng (num_nodes - 1)) mod num_nodes in
      [ { at; op = Partition (net, [ node ], [ other ]) } ]
    | 6 ->
      let other = (node + 1 + Rng.int rng (num_nodes - 1)) mod num_nodes in
      rolling_partition ~net
        ~nodes:[ node; other ]
        ~dwell:(Vtime.ms (50 + Rng.int rng 200))
        ~from_:at ~rounds:(1 + Rng.int rng 3)
    | 7 ->
      flap ~net
        ~period:(Vtime.ms (100 + Rng.int rng 300))
        ~duty:(0.2 +. Rng.float rng 0.6) ~from_:at
        ~until:(Vtime.add at (Vtime.ms (200 + Rng.int rng 600)))
        ()
    | 8 ->
      corrupt_window ~net ~from_:at
        ~until:(Vtime.add at (Vtime.ms (100 + Rng.int rng 600)))
        ~p:(0.05 +. Rng.float rng 0.45)
    | 9 ->
      corruption_ramp ~net ~from_:at
        ~until:(Vtime.add at (Vtime.ms (200 + Rng.int rng 600)))
        ~stages:(2 + Rng.int rng 3)
        ~peak:(0.1 +. Rng.float rng 0.4)
    | 10 ->
      gray_window ~net ~from_:at
        ~until:(Vtime.add at (Vtime.ms (200 + Rng.int rng 600)))
        ~p_enter:(0.02 +. Rng.float rng 0.3)
        ~p_exit:(0.1 +. Rng.float rng 0.4)
        ~factor:(1.0 +. Rng.float rng 2.0)
        ~spike:(Rng.float rng 0.2) ()
    | 11 ->
      gilbert_ramp ~net ~from_:at
        ~until:(Vtime.add at (Vtime.ms (200 + Rng.int rng 600)))
        ~stages:(2 + Rng.int rng 3)
        ~peak:(0.1 +. Rng.float rng 0.5)
    | 12 ->
      let src = rand_node () in
      let dst = (src + 1 + Rng.int rng (num_nodes - 1)) mod num_nodes in
      let until = Vtime.add at (Vtime.ms (100 + Rng.int rng 500)) in
      [
        { at; op = Set_dir_loss (net, src, dst, 0.2 +. Rng.float rng 0.6) };
        { at = until; op = Set_dir_loss (net, src, dst, 0.0) };
      ]
    | _ -> assert false
  in
  let steps =
    List.concat (List.init (3 + Rng.int rng 6) (fun _ -> random_steps ()))
  in
  let bursts =
    List.init
      (5 + Rng.int rng 10)
      (fun _ ->
        ( rand_node (),
          64 + Rng.int rng 2000,
          5 + Rng.int rng 30,
          Vtime.ms (Rng.int rng dur_ms) ))
  in
  (* Gray campaigns exercise the reinstatement protocol too: condemned
     networks probe and rejoin once their gray window closes. *)
  make ~num_nodes ~num_nets ~style ~seed ~duration ~quiesce
    ~traffic:(Bursts bursts) ~wire ~reinstate:gray steps

let submitted_messages t =
  match t.traffic with
  | Saturate _ -> None
  | Bursts bs -> Some (List.fold_left (fun acc (_, _, count, _) -> acc + count) 0 bs)

(* --- JSON ------------------------------------------------------------ *)

let style_to_string = function
  | Style.No_replication -> "none"
  | Style.Active -> "active"
  | Style.Passive -> "passive"
  | Style.Active_passive k -> Printf.sprintf "ap:%d" k

let style_of_string s =
  match String.lowercase_ascii s with
  | "none" | "single" | "no-replication" -> Ok Style.No_replication
  | "active" -> Ok Style.Active
  | "passive" -> Ok Style.Passive
  | s when String.length s > 3 && String.sub s 0 3 = "ap:" -> (
    match int_of_string_opt (String.sub s 3 (String.length s - 3)) with
    | Some k -> Ok (Style.Active_passive k)
    | None -> Error "expected ap:<K>")
  | _ -> Error "expected none|active|passive|ap:<K>"

module J = Chaos_json

let json_of_op op =
  let o kvs = J.Obj kvs in
  match op with
  | Fail_net n -> o [ ("op", J.str "fail_net"); ("net", J.int n) ]
  | Heal_net n -> o [ ("op", J.str "heal_net"); ("net", J.int n) ]
  | Set_loss (n, p) -> o [ ("op", J.str "set_loss"); ("net", J.int n); ("p", J.Num p) ]
  | Set_corrupt (n, p) ->
    o [ ("op", J.str "set_corrupt"); ("net", J.int n); ("p", J.Num p) ]
  | Set_burst_loss (n, p_enter, p_exit) ->
    o
      [
        ("op", J.str "set_burst_loss");
        ("net", J.int n);
        ("p_enter", J.Num p_enter);
        ("p_exit", J.Num p_exit);
      ]
  | Set_delay_factor (n, factor, spike) ->
    o
      [
        ("op", J.str "set_delay_factor");
        ("net", J.int n);
        ("factor", J.Num factor);
        ("spike", J.Num spike);
      ]
  | Set_dir_loss (n, src, dst, p) ->
    o
      [
        ("op", J.str "set_dir_loss");
        ("net", J.int n);
        ("src", J.int src);
        ("dst", J.int dst);
        ("p", J.Num p);
      ]
  | Set_duplicate (n, p) ->
    o [ ("op", J.str "set_duplicate"); ("net", J.int n); ("p", J.Num p) ]
  | Set_reorder (n, p) ->
    o [ ("op", J.str "set_reorder"); ("net", J.int n); ("p", J.Num p) ]
  | Block_send (node, net) ->
    o [ ("op", J.str "block_send"); ("node", J.int node); ("net", J.int net) ]
  | Unblock_send (node, net) ->
    o [ ("op", J.str "unblock_send"); ("node", J.int node); ("net", J.int net) ]
  | Block_recv (node, net) ->
    o [ ("op", J.str "block_recv"); ("node", J.int node); ("net", J.int net) ]
  | Unblock_recv (node, net) ->
    o [ ("op", J.str "unblock_recv"); ("node", J.int node); ("net", J.int net) ]
  | Partition (net, src, dst) ->
    o
      [
        ("op", J.str "partition");
        ("net", J.int net);
        ("from", J.Arr (List.map J.int src));
        ("to", J.Arr (List.map J.int dst));
      ]
  | Unpartition (net, src, dst) ->
    o
      [
        ("op", J.str "unpartition");
        ("net", J.int net);
        ("from", J.Arr (List.map J.int src));
        ("to", J.Arr (List.map J.int dst));
      ]
  | Crash n -> o [ ("op", J.str "crash"); ("node", J.int n) ]
  | Recover n -> o [ ("op", J.str "recover"); ("node", J.int n) ]

let op_of_json v where =
  let net () = J.get_int v "net" where in
  let node () = J.get_int v "node" where in
  match J.get_str v "op" where with
  | "fail_net" -> Fail_net (net ())
  | "heal_net" -> Heal_net (net ())
  | "set_loss" -> Set_loss (net (), J.get_num v "p" where)
  | "set_corrupt" -> Set_corrupt (net (), J.get_num v "p" where)
  | "set_burst_loss" ->
    Set_burst_loss
      (net (), J.get_num v "p_enter" where, J.get_num v "p_exit" where)
  | "set_delay_factor" ->
    Set_delay_factor
      (net (), J.get_num v "factor" where, J.get_num v "spike" where)
  | "set_dir_loss" ->
    Set_dir_loss
      ( net (),
        J.get_int v "src" where,
        J.get_int v "dst" where,
        J.get_num v "p" where )
  | "set_duplicate" -> Set_duplicate (net (), J.get_num v "p" where)
  | "set_reorder" -> Set_reorder (net (), J.get_num v "p" where)
  | "block_send" -> Block_send (node (), net ())
  | "unblock_send" -> Unblock_send (node (), net ())
  | "block_recv" -> Block_recv (node (), net ())
  | "unblock_recv" -> Unblock_recv (node (), net ())
  | "partition" ->
    Partition (net (), J.get_int_list v "from" where, J.get_int_list v "to" where)
  | "unpartition" ->
    Unpartition (net (), J.get_int_list v "from" where, J.get_int_list v "to" where)
  | "crash" -> Crash (node ())
  | "recover" -> Recover (node ())
  | op -> raise (J.Parse_error (Printf.sprintf "%s: unknown op \"%s\"" where op))

let to_json t =
  let step s =
    match json_of_op s.op with
    | J.Obj kvs -> J.Obj (("at_ns", J.int s.at) :: kvs)
    | _ -> assert false
  in
  let traffic =
    match t.traffic with
    | Saturate size ->
      J.Obj [ ("kind", J.str "saturate"); ("size", J.int size) ]
    | Bursts bs ->
      J.Obj
        [
          ("kind", J.str "bursts");
          ( "bursts",
            J.Arr
              (List.map
                 (fun (node, size, count, at) ->
                   J.Obj
                     [
                       ("node", J.int node);
                       ("size", J.int size);
                       ("count", J.int count);
                       ("at_ns", J.int at);
                     ])
                 bs) );
        ]
  in
  J.Obj
    [
      ("nodes", J.int t.num_nodes);
      ("nets", J.int t.num_nets);
      ("style", J.str (style_to_string t.style));
      ("seed", J.int t.seed);
      ("duration_ns", J.int t.duration);
      ("quiesce_ns", J.int t.quiesce);
      ("wire_bytes", J.Bool t.wire);
      ("reinstate", J.Bool t.reinstate);
      ("traffic", traffic);
      ("steps", J.Arr (List.map step t.steps));
    ]

let of_json v where =
  let style =
    match style_of_string (J.get_str v "style" where) with
    | Ok s -> s
    | Error m -> raise (J.Parse_error (Printf.sprintf "%s: %s" where m))
  in
  let traffic =
    match J.field v "traffic" with
    | None -> raise (J.Parse_error (where ^ ": missing \"traffic\""))
    | Some tv -> (
      match J.get_str tv "kind" where with
      | "saturate" -> Saturate (J.get_int tv "size" where)
      | "bursts" ->
        Bursts
          (List.map
             (fun b ->
               ( J.get_int b "node" where,
                 J.get_int b "size" where,
                 J.get_int b "count" where,
                 J.get_int b "at_ns" where ))
             (J.get_list tv "bursts" where))
      | k ->
        raise (J.Parse_error (Printf.sprintf "%s: unknown traffic kind \"%s\"" where k)))
  in
  let steps =
    List.map
      (fun sv -> { at = J.get_int sv "at_ns" where; op = op_of_json sv where })
      (J.get_list v "steps" where)
  in
  {
    num_nodes = J.get_int v "nodes" where;
    num_nets = J.get_int v "nets" where;
    style;
    seed = J.get_int v "seed" where;
    duration = J.get_int v "duration_ns" where;
    quiesce = J.get_int v "quiesce_ns" where;
    traffic;
    steps;
    (* Absent in pre-wire-mode files: default to reference mode. *)
    wire = (match J.field v "wire_bytes" with Some (J.Bool b) -> b | _ -> false);
    (* Absent in pre-reinstatement files: condemnation is permanent. *)
    reinstate =
      (match J.field v "reinstate" with Some (J.Bool b) -> b | _ -> false);
  }
