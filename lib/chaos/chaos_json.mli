(** Dependency-free JSON for the [.chaos.json] counterexample files.

    The parser is the same strict, minimal design as
    [test/validate_telemetry.ml]; the writer pretty-prints with
    two-space indentation so counterexamples diff cleanly. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

val parse : string -> (t, string) result

val to_string : t -> string
(** Pretty-printed document with a trailing newline. *)

val field : t -> string -> t option
(** [field obj name] when [obj] is an [Obj]; [None] otherwise. *)

(** The [get_*] accessors raise {!Parse_error} with [where] as context
    when the field is missing or of the wrong shape — decode errors
    surface as one typed exception the replay path reports cleanly. *)

val get_num : t -> string -> string -> float

val get_int : t -> string -> string -> int

val get_str : t -> string -> string -> string

val get_bool : t -> string -> string -> bool

val get_list : t -> string -> string -> t list

val get_int_list : t -> string -> string -> int list

val int : int -> t

val str : string -> t
