(** The chaos engine: execute a {!Campaign} deterministically under the
    online {!Invariant} monitors, shrink any violation to a minimal
    schedule, and round-trip counterexamples through [.chaos.json]
    files that replay bit-for-bit.

    A run builds a fresh cluster from the campaign (shape, style, seed),
    attaches the monitors, schedules the fault steps and traffic, and
    drives simulated time in fixed slices so a violation stops the run
    promptly. Violation-free runs finish like the fuzz harness always
    did: heal everything, quiesce, then the end-of-run checks. *)

type result = {
  campaign : Campaign.t;
  monitor : Invariant.config;
  violations : Invariant.violation list;  (** chronological; [] = pass *)
  submitted : int option;  (** burst total; [None] for saturation *)
  delivered : int;  (** messages delivered at node 0 *)
  finished_at : Totem_engine.Vtime.t;
  events : int;
      (** simulator events processed — with [delivered] and
          [finished_at], a cheap determinism fingerprint *)
  history : (int * string list) list;
      (** flight-recorder dump: for each node (and [-1] for fabric-level
          events), the last events it saw as telemetry JSONL lines,
          oldest first, bounded per node. Deterministic like the rest of
          the result. *)
}

val passed : result -> bool

val pp_result : Format.formatter -> result -> unit

val run :
  ?monitor:Invariant.config ->
  ?sink:(Totem_engine.Vtime.t -> Totem_engine.Telemetry.event -> unit) ->
  ?shadow:bool ->
  ?sim_domains:int ->
  ?window_batch:bool ->
  ?max_horizon_factor:int ->
  ?prepare:(Totem_cluster.Cluster.t -> unit) ->
  ?probes:(Totem_engine.Vtime.t * (Totem_cluster.Cluster.t -> unit)) list ->
  ?end_checks:bool ->
  Campaign.t ->
  result
(** Deterministic: equal campaigns and monitor configs give equal
    results, violations included. [sink] additionally streams every
    telemetry event (e.g. {!Totem_engine.Telemetry.jsonl_sink}).
    [sim_domains] (default 0) selects {!Config.sim_domains}: under the
    parallel core the run — violations, replay dumps and all — is
    bitwise-identical for every [sim_domains >= 1].
    [window_batch] (default true) and [max_horizon_factor] (default 8)
    select {!Config.window_batch} / {!Config.max_horizon_factor}; both
    are ignored on the legacy path, and under the parallel core results
    are bitwise-identical whatever they are set to — exposed so the
    determinism tests can run the batched and unbatched legs.
    [shadow] (default false) arms [Config.codec_shadow]: every frame the
    cluster carries is round-tripped through the binary codec, and in
    byte-wire campaigns ([Campaign.wire]) the check runs on what the
    receiving NIC actually decoded.

    [prepare] runs against the freshly built cluster after the monitors
    attach but before [Cluster.start] — the hook the explorer's mutation
    canary and self-stabilization mode use to install test-only
    instrumentation or schedule perturbations. A [prepare] that mutates
    protocol state makes the run exactly as deterministic as the hook
    itself.

    [probes] are step-granular observation points: at each (time, f),
    once the cluster has fully processed every event at or before that
    time (a [Cluster.run_until] boundary, so the read is identical for
    every [sim_domains]), [f] is applied to the cluster. Probes must be
    read-only to preserve replayability; they fire only while the run is
    still violation-free, and probe times past the end of the run are
    dropped. With [probes = []] the drive loop is bit-for-bit the
    historical one.

    [end_checks] (default true): when false the run stops at
    [campaign.duration] — no administrator heal, no quiesce drain, no
    {!Invariant.final_checks}. The explorer uses this for prefix
    executions whose only purpose is a state fingerprint.
    @raise Invalid_argument if {!Campaign.validate} rejects the
    campaign. *)

(** {1 Shrinking} *)

type shrink_report = {
  minimized : Campaign.t;
  runs_used : int;
  original_steps : int;
  minimized_steps : int;
}

val shrink :
  ?monitor:Invariant.config ->
  ?budget:int ->
  ?prepare:(Totem_cluster.Cluster.t -> unit) ->
  Campaign.t ->
  Invariant.violation ->
  shrink_report
(** Greedy delta debugging over the step schedule: drop chunks of
    decreasing size, re-executing after each candidate, keeping any drop
    after which the same invariant still fires first. [budget] caps
    re-executions (default 160). [prepare] rides along into every
    re-execution (a violation seeded by instrumentation shrinks under
    the same instrumentation). The result reproduces the violation by
    construction (or is the original campaign if nothing could be
    dropped). *)

(** {1 Counterexample files} *)

val schema : string
(** ["totem-chaos/v2"]. [read_counterexample] also accepts v1 files,
    which simply carry no history block. *)

type counterexample = {
  cx_campaign : Campaign.t;
  cx_monitor : Invariant.config;
  cx_violation : Invariant.violation option;
      (** what the original run observed first; [None] for a saved
          baseline expected to pass *)
  cx_shrunk : bool;
      (** false marks an unshrunk capture — the chaos-smoke alias fails
          if one is left in the tree *)
  cx_history : (int * Chaos_json.t list) list;
      (** flight-recorder dump of the capturing run, per node ([-1] =
          fabric), each event a parsed telemetry JSON object; [] for v1
          files and for captures made without history *)
}

val history_json : result -> (int * Chaos_json.t list) list
(** A result's flight-recorder dump reparsed into JSON values, suitable
    for [cx_history]. Telemetry event JSON is integers and strings
    only, so the round trip is exact: structural equality of the parsed
    values coincides with byte equality of the JSONL lines. *)

val counterexample_to_json : counterexample -> Chaos_json.t

val write_counterexample : path:string -> counterexample -> unit

val read_counterexample : path:string -> (counterexample, string) Stdlib.result

type replay_outcome =
  | Reproduced of result
      (** the replay hit the same invariant at the same virtual time
          with the same detail — and, for v2 files, an identical
          flight-recorder history *)
  | Diverged of result * string
  | Clean_replay of result

val replay :
  ?prepare:(Totem_cluster.Cluster.t -> unit) -> counterexample -> replay_outcome
(** [prepare] re-installs the instrumentation of the capturing run, when
    there was any (see {!run}). *)

val replay_file : path:string -> (replay_outcome, string) Stdlib.result
