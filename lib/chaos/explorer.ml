module Vtime = Totem_engine.Vtime
module Rng = Totem_engine.Rng
module Cluster = Totem_cluster.Cluster
module Cluster_config = Totem_cluster.Config
module Srp = Totem_srp.Srp
module Token = Totem_srp.Token
module Rrp = Totem_rrp.Rrp
module Active = Totem_rrp.Active
module Passive = Totem_rrp.Passive
module Active_passive = Totem_rrp.Active_passive
module Monitor = Totem_rrp.Monitor
module Rrp_config = Totem_rrp.Rrp_config

type config = {
  num_nodes : int;
  num_nets : int;
  style : Totem_rrp.Style.t;
  seed : int;
  wire : bool;
  depth : int;
  alphabet : Campaign.op list;
  gap : Vtime.t option;
  settle : Vtime.t;
  hold : Vtime.t;
  quiesce : Vtime.t;
  monitor : Invariant.config;
  sim_domains : int;
  reinstate : bool;
}

let default_alphabet ~num_nets =
  if num_nets < 2 then
    invalid_arg "Explorer.default_alphabet: need at least 2 networks";
  List.concat
    (List.init (num_nets - 1) (fun net ->
         [
           Campaign.Fail_net net;
           Campaign.Heal_net net;
           Campaign.Set_corrupt (net, 0.5);
           Campaign.Set_corrupt (net, 0.0);
           Campaign.Partition (net, [ 0 ], [ 1 ]);
           Campaign.Unpartition (net, [ 0 ], [ 1 ]);
         ]))

(* The gray alphabet pairs each gray dimension's on-op with its off-op,
   so interleavings cover episodes that overlap, nest and cut short.
   Heavy burst loss (steady state ~0.9) condemns quickly; meant to run
   with [reinstate] so probation interleaves with fresh faults. *)
let gray_alphabet ~num_nets =
  if num_nets < 2 then
    invalid_arg "Explorer.gray_alphabet: need at least 2 networks";
  List.concat
    (List.init (num_nets - 1) (fun net ->
         [
           Campaign.Set_burst_loss (net, 0.9, 0.1);
           Campaign.Set_burst_loss (net, 0.0, 1.0);
           Campaign.Set_delay_factor (net, 4.0, 0.2);
           Campaign.Set_delay_factor (net, 1.0, 0.0);
           Campaign.Set_dir_loss (net, 0, 1, 0.8);
           Campaign.Set_dir_loss (net, 0, 1, 0.0);
         ]))

let make ?(num_nodes = 3) ?(num_nets = 2) ?(style = Totem_rrp.Style.Active)
    ?(seed = 42) ?(wire = true) ?(depth = 3) ?alphabet ?gap
    ?(settle = Vtime.ms 40) ?(hold = Vtime.ms 40) ?(quiesce = Vtime.ms 500)
    ?(monitor = Invariant.default) ?(sim_domains = 0) ?(reinstate = false) () =
  let alphabet =
    match alphabet with Some a -> a | None -> default_alphabet ~num_nets
  in
  {
    num_nodes;
    num_nets;
    style;
    seed;
    wire;
    depth;
    alphabet;
    gap;
    settle;
    hold;
    quiesce;
    monitor;
    sim_domains;
    reinstate;
  }

(* --- decision-point schedule ----------------------------------------- *)

(* Vtime.t is integer nanoseconds, so schedule arithmetic is exact. *)
let decision_time cfg ~gap i = Vtime.add cfg.settle (i * gap)

let calibrated_gap cfg =
  match cfg.gap with
  | Some g -> g
  | None ->
    (* Measure the token-rotation time on a clean run of the same
       cluster shape (classic core: calibration must not depend on
       [sim_domains]). One rotation = one token visit at node 0. *)
    let config =
      Cluster_config.make ~num_nodes:cfg.num_nodes ~num_nets:cfg.num_nets
        ~style:cfg.style ~seed:cfg.seed ~wire_bytes:cfg.wire ()
    in
    let cluster = Cluster.create config in
    Cluster.start cluster;
    Cluster.run_until cluster cfg.settle;
    let stats = Srp.stats (Cluster.srp (Cluster.node cluster 0)) in
    let v0 = stats.Srp.token_visits in
    let window = Vtime.ms 50 in
    Cluster.run_until cluster (Vtime.add cfg.settle window);
    let rotations = max 1 (stats.Srp.token_visits - v0) in
    (* Two rotations between decisions, floored so token timeouts and
       problem-counter increments can land between consecutive ops. *)
    Vtime.max (2 * (window / rotations)) (Vtime.ms 5)

(* The workload is a function of the config alone — never of the path —
   so a prefix run and every leaf run under it carry identical traffic
   and state fingerprints compare like for like. *)
let traffic cfg ~gap =
  let early = List.init cfg.num_nodes (fun n -> (n, 200, 4, Vtime.ms 2)) in
  let during =
    List.init cfg.depth (fun i ->
        ( i mod cfg.num_nodes,
          200,
          2,
          Vtime.add (decision_time cfg ~gap i) (gap / 2) ))
  in
  Campaign.Bursts (early @ during)

let campaign_of_path cfg ~gap ~duration path =
  let steps =
    List.mapi
      (fun i op -> { Campaign.at = decision_time cfg ~gap i; op })
      path
  in
  Campaign.make ~num_nodes:cfg.num_nodes ~num_nets:cfg.num_nets
    ~style:cfg.style ~seed:cfg.seed ~duration ~quiesce:cfg.quiesce
    ~traffic:(traffic cfg ~gap) ~wire:cfg.wire ~reinstate:cfg.reinstate steps

let leaf_campaign cfg ~gap path =
  campaign_of_path cfg ~gap
    ~duration:(Vtime.add (decision_time cfg ~gap cfg.depth) cfg.hold)
    path

(* --- state fingerprints ---------------------------------------------- *)

type fingerprint = int64

let fnv64 s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime)
    s;
  !h

(* Symbolic environment after a prefix of ops: which faults are applied
   now, and — for total failures — since which decision index (the A6
   detection bound runs from the injection instant, so two prefixes
   that failed the same net at different times must not collide).
   Mirrors [Fault] semantics: ops are idempotent and [Heal_net] clears
   everything on its network, loss and corruption included. *)
let env_string cfg path =
  let n = cfg.num_nets in
  let failed_at = Array.make n (-1) in
  let corrupt = Array.make n 0.0 in
  let loss = Array.make n 0.0 in
  let burst = Array.make n (0.0, 1.0) in
  let delay = Array.make n (1.0, 0.0) in
  let dup = Array.make n 0.0 in
  let reorder = Array.make n 0.0 in
  let dirloss = ref [] in
  (* (net, src, dst, p) *)
  let pairs = ref [] in
  (* (net, from, to) partition edges *)
  let send_blocked = ref [] and recv_blocked = ref [] in
  let crashed = Array.make cfg.num_nodes false in
  List.iteri
    (fun i op ->
      match op with
      | Campaign.Fail_net net ->
        if failed_at.(net) < 0 then failed_at.(net) <- i
      | Campaign.Heal_net net ->
        failed_at.(net) <- -1;
        corrupt.(net) <- 0.0;
        loss.(net) <- 0.0;
        burst.(net) <- (0.0, 1.0);
        delay.(net) <- (1.0, 0.0);
        dup.(net) <- 0.0;
        reorder.(net) <- 0.0;
        dirloss := List.filter (fun (nt, _, _, _) -> nt <> net) !dirloss;
        pairs := List.filter (fun (nt, _, _) -> nt <> net) !pairs;
        send_blocked := List.filter (fun (_, nt) -> nt <> net) !send_blocked;
        recv_blocked := List.filter (fun (_, nt) -> nt <> net) !recv_blocked
      | Campaign.Set_loss (net, p) -> loss.(net) <- p
      | Campaign.Set_corrupt (net, p) -> corrupt.(net) <- p
      | Campaign.Set_burst_loss (net, p_enter, p_exit) ->
        (* Mirror Fault.set_burst_loss: p_enter = 0 disables (canonical
           off state), p_exit floored while enabled. *)
        burst.(net) <-
          (if p_enter <= 0.0 then (0.0, 1.0)
           else (p_enter, Float.max p_exit 0.001))
      | Campaign.Set_delay_factor (net, factor, spike) ->
        delay.(net) <- (Float.max factor 1.0, spike)
      | Campaign.Set_dir_loss (net, src, dst, p) ->
        dirloss := List.filter (fun (nt, s, d, _) ->
            not (nt = net && s = src && d = dst)) !dirloss;
        if p > 0.0 then dirloss := (net, src, dst, p) :: !dirloss
      | Campaign.Set_duplicate (net, p) -> dup.(net) <- p
      | Campaign.Set_reorder (net, p) -> reorder.(net) <- p
      | Campaign.Partition (net, a, b) ->
        let e = (net, a, b) in
        if not (List.mem e !pairs) then pairs := e :: !pairs
      | Campaign.Unpartition (net, a, b) ->
        pairs := List.filter (fun e -> e <> (net, a, b)) !pairs
      | Campaign.Block_send (node, net) ->
        let e = (node, net) in
        if not (List.mem e !send_blocked) then
          send_blocked := e :: !send_blocked
      | Campaign.Unblock_send (node, net) ->
        send_blocked := List.filter (fun e -> e <> (node, net)) !send_blocked
      | Campaign.Block_recv (node, net) ->
        let e = (node, net) in
        if not (List.mem e !recv_blocked) then
          recv_blocked := e :: !recv_blocked
      | Campaign.Unblock_recv (node, net) ->
        recv_blocked := List.filter (fun e -> e <> (node, net)) !recv_blocked
      | Campaign.Crash node -> crashed.(node) <- true
      | Campaign.Recover node -> crashed.(node) <- false)
    path;
  let b = Buffer.create 128 in
  Array.iteri
    (fun net f ->
      let p_enter, p_exit = burst.(net) in
      let factor, spike = delay.(net) in
      Printf.bprintf b "n%d:F%d;C%.4f;L%.4f;B%.4f/%.4f;D%.4f/%.4f;U%.4f;O%.4f "
        net f corrupt.(net) loss.(net) p_enter p_exit factor spike dup.(net)
        reorder.(net))
    failed_at;
  let dump_dir l =
    Buffer.add_string b "G";
    List.iter
      (fun (net, s, d, p) -> Printf.bprintf b "(%d:%d>%d@%.4f)" net s d p)
      (List.sort compare l)
  in
  dump_dir !dirloss;
  let dump tag l pr =
    Buffer.add_string b tag;
    List.iter pr (List.sort compare l)
  in
  dump "P" !pairs (fun (net, a, b') ->
      Printf.bprintf b "(%d:%s>%s)" net
        (String.concat "," (List.map string_of_int a))
        (String.concat "," (List.map string_of_int b')));
  dump "S" !send_blocked (fun (nd, nt) -> Printf.bprintf b "(%d,%d)" nd nt);
  dump "R" !recv_blocked (fun (nd, nt) -> Printf.bprintf b "(%d,%d)" nd nt);
  Array.iteri (fun nd c -> if c then Printf.bprintf b "X%d" nd) crashed;
  Buffer.contents b

(* The protocol-state projection: per node, ring membership and id,
   aru / highest-seen / safe horizon, delivery frontier, send queue,
   token visits, per-net fault marks, and the style's health state
   (problem counters, reception-count monitors, pending token copies).
   Read-only, and read only at [run_until] boundaries. *)
let state_string cfg env cluster =
  let b = Buffer.create 512 in
  Buffer.add_string b env;
  for node = 0 to cfg.num_nodes - 1 do
    let nd = Cluster.node cluster node in
    let srp = Cluster.srp nd in
    let rrp = Cluster.rrp nd in
    let stats = Srp.stats srp in
    Printf.bprintf b "|n%d r%d m%s a%d h%d s%d o%b d%d q%d v%d" node
      (Srp.current_ring_id srp)
      (String.concat ","
         (Array.to_list (Array.map string_of_int (Srp.members srp))))
      (Srp.my_aru srp) (Srp.highest_seen srp) (Srp.safe_horizon srp)
      (Srp.is_operational srp)
      (Cluster.delivered_at cluster node)
      (Srp.send_queue_length srp)
      stats.Srp.token_visits;
    Array.iteri (fun i f -> Printf.bprintf b " f%d%b" i f) (Rrp.faulty rrp);
    (* Only under reinstatement: probation is a third state the faulty
       flags cannot express. Guarded so pre-existing explorations keep
       their exact fingerprint strings. *)
    if cfg.reinstate then
      for net = 0 to cfg.num_nets - 1 do
        Printf.bprintf b " s%s%d"
          (Rrp.net_state_string rrp ~net)
          (Rrp.flaps rrp ~net)
      done;
    (match Rrp.as_active rrp with
    | Some a ->
      for net = 0 to cfg.num_nets - 1 do
        Printf.bprintf b " p%d" (Active.problem_counter a ~net)
      done
    | None -> ());
    (match Rrp.as_passive rrp with
    | Some p ->
      let tm = Passive.token_monitor p in
      for net = 0 to cfg.num_nets - 1 do
        Printf.bprintf b " t%d" (Monitor.count tm ~net)
      done;
      for sender = 0 to cfg.num_nodes - 1 do
        match Passive.message_monitor p ~sender with
        | Some m ->
          for net = 0 to cfg.num_nets - 1 do
            Printf.bprintf b " c%d" (Monitor.count m ~net)
          done
        | None -> ()
      done
    | None -> ());
    match Rrp.as_active_passive rrp with
    | Some ap ->
      Printf.bprintf b " w%b" (Active_passive.token_copies_pending ap)
    | None -> ()
  done;
  Buffer.contents b

let fingerprint cfg env cluster = fnv64 (state_string cfg env cluster)

let rec take n = function
  | [] -> []
  | x :: rest -> if n <= 0 then [] else x :: take (n - 1) rest

let path_fingerprints ?prepare cfg ~gap path =
  let campaign = leaf_campaign cfg ~gap path in
  let len = List.length path in
  let fps = Array.make len 0L in
  let probes =
    List.init len (fun i ->
        let k = i + 1 in
        let env = env_string cfg (take k path) in
        ( Vtime.sub (decision_time cfg ~gap k) (Vtime.ns 1),
          fun cluster -> fps.(i) <- fingerprint cfg env cluster ))
  in
  let r =
    Runner.run ~monitor:cfg.monitor ~sim_domains:cfg.sim_domains ?prepare
      ~probes campaign
  in
  (r, Array.to_list fps)

(* --- exhaustive enumeration ------------------------------------------ *)

type stats = {
  alphabet_size : int;
  total_leaves : int;
  leaves_explored : int;
  leaves_pruned : int;
  interior_runs : int;
  distinct_states : int;
}

let pp_stats ppf s =
  Format.fprintf ppf
    "%d^? = %d interleavings: %d explored, %d pruned as symmetric (%d \
     distinct states, %d prefix runs)"
    s.alphabet_size s.total_leaves s.leaves_explored s.leaves_pruned
    s.distinct_states s.interior_runs

type found = {
  f_path : Campaign.op list;
  f_campaign : Campaign.t;
  f_result : Runner.result;
}

type outcome = {
  o_gap : Vtime.t;
  o_stats : stats;
  o_found : found option;
}

exception Stop of found

let explore ?prepare cfg =
  if cfg.alphabet = [] then invalid_arg "Explorer.explore: empty alphabet";
  if cfg.depth < 1 then invalid_arg "Explorer.explore: depth < 1";
  let gap = calibrated_gap cfg in
  let alphabet = Array.of_list cfg.alphabet in
  let asize = Array.length alphabet in
  let rec pow b e = if e = 0 then 1 else b * pow b (e - 1) in
  let visited : (int * fingerprint, unit) Hashtbl.t = Hashtbl.create 1024 in
  let explored = ref 0 and pruned = ref 0 and interior = ref 0 in
  (* Re-execute a violating prefix as a standard leaf-form campaign.
     Behaviour is identical up to the violation (same steps, same
     traffic), so the probe-free run reproduces it and the result is
     directly shrinkable and writable as a counterexample. *)
  let stop_with path =
    let campaign = leaf_campaign cfg ~gap path in
    let r =
      Runner.run ~monitor:cfg.monitor ~sim_domains:cfg.sim_domains ?prepare
        campaign
    in
    raise (Stop { f_path = path; f_campaign = campaign; f_result = r })
  in
  (* Fingerprint the state a prefix of length k reaches, 1 ns before
     decision point k, via a truncated run with the end-game disabled. *)
  let run_prefix path k =
    let t_k = decision_time cfg ~gap k in
    let campaign = campaign_of_path cfg ~gap ~duration:t_k path in
    let env = env_string cfg path in
    let fp = ref 0L in
    let probes =
      [ (Vtime.sub t_k (Vtime.ns 1), fun c -> fp := fingerprint cfg env c) ]
    in
    let r =
      Runner.run ~monitor:cfg.monitor ~sim_domains:cfg.sim_domains ?prepare
        ~probes ~end_checks:false campaign
    in
    incr interior;
    (r, !fp)
  in
  let rec expand path k =
    Array.iter
      (fun op ->
        let child = path @ [ op ] in
        let k' = k + 1 in
        let r, fp = run_prefix child k' in
        if r.Runner.violations <> [] then stop_with child;
        if Hashtbl.mem visited (k', fp) then
          pruned := !pruned + pow asize (cfg.depth - k')
        else begin
          Hashtbl.add visited (k', fp) ();
          if k' = cfg.depth then begin
            let campaign = leaf_campaign cfg ~gap child in
            let lr =
              Runner.run ~monitor:cfg.monitor ~sim_domains:cfg.sim_domains
                ?prepare campaign
            in
            incr explored;
            if lr.Runner.violations <> [] then
              raise
                (Stop { f_path = child; f_campaign = campaign; f_result = lr })
          end
          else expand child k'
        end)
      alphabet
  in
  let found = try expand [] 0; None with Stop f -> Some f in
  {
    o_gap = gap;
    o_stats =
      {
        alphabet_size = asize;
        total_leaves = pow asize cfg.depth;
        leaves_explored = !explored;
        leaves_pruned = !pruned;
        interior_runs = !interior;
        distinct_states = Hashtbl.length visited;
      };
    o_found = found;
  }

let to_counterexample ?prepare ?(shrunk = false) cfg campaign =
  let r =
    Runner.run ~monitor:cfg.monitor ~sim_domains:cfg.sim_domains ?prepare
      campaign
  in
  {
    Runner.cx_campaign = campaign;
    cx_monitor = cfg.monitor;
    cx_violation =
      (match r.Runner.violations with [] -> None | v :: _ -> Some v);
    cx_shrunk = shrunk;
    cx_history = Runner.history_json r;
  }

(* --- arbitrary-state perturbation ------------------------------------ *)

type stabilize_report = {
  s_points : int;
  s_perturbations : (Vtime.t * string) list;
  s_operational : bool;
  s_common_ring : bool;
  s_progressed : bool;
  s_violations : Invariant.violation list;
}

let stabilized r =
  r.s_operational && r.s_common_ring && r.s_progressed && r.s_violations = []

(* The perturbation catalog stays inside what the protocol is built to
   absorb: a forged token is either stale (destroyed by the duplicate
   filter) or future-dated with conservative seq/aru skews (adopted,
   then repaired by retransmission — a far-future hop count can force a
   full ring reformation, which is the recovery path under test);
   problem counters and reception-count monitors are overwritten to
   sub-threshold values that the decay / catch-up machinery must wash
   out. Skewing a token's seq *forward* is deliberately excluded: it
   fabricates messages that never existed, which no fail-stop protocol
   can recover from. *)
type perturbation =
  | Forge_token of { node : int; future : bool; aru_back : int }
  | Set_problem of { node : int; net : int; value : int }
  | Skew_monitor of { node : int; net : int; by : int }

let describe = function
  | Forge_token { node; future; aru_back } ->
    Printf.sprintf "forge %s token at node %d (aru -%d)"
      (if future then "far-future" else "stale")
      node aru_back
  | Set_problem { node; net; value } ->
    Printf.sprintf "set problemCounter[net %d] = %d at node %d" net value node
  | Skew_monitor { node; net; by } ->
    Printf.sprintf "inflate token recvCount[net %d] by %d at node %d" net by
      node

let apply_perturbation i cluster p =
  match p with
  | Forge_token { node; future; aru_back } ->
    let srp = Cluster.srp (Cluster.node cluster node) in
    let members = Srp.members srp in
    if Array.length members > 0 && not (Srp.is_crashed srp) then begin
      let tok =
        {
          Token.ring_id = Srp.current_ring_id srp;
          seq = Srp.highest_seen srp;
          rotation = 0;
          hops = (if future then 1_000_000 + i else 1);
          aru = max 0 (Srp.my_aru srp - aru_back);
          aru_setter = members.(0);
          fcc = 0;
          rtr = [];
          ring = members;
        }
      in
      Srp.token_arrived srp tok
    end
  | Set_problem { node; net; value } -> (
    match Rrp.as_active (Cluster.rrp (Cluster.node cluster node)) with
    | Some a -> Active.set_problem_counter a ~net value
    | None -> ())
  | Skew_monitor { node; net; by } -> (
    match Rrp.as_passive (Cluster.rrp (Cluster.node cluster node)) with
    | Some p ->
      let m = Passive.token_monitor p in
      for _ = 1 to by do
        Monitor.note m ~net
      done
    | None -> ())

let stabilize cfg ~points =
  if points < 1 then invalid_arg "Explorer.stabilize: points < 1";
  let gap = Vtime.max (calibrated_gap cfg) (Vtime.ms 10) in
  let recovery = Vtime.ms 400 in
  let duration = Vtime.add (decision_time cfg ~gap points) recovery in
  (* Steady bursts across the whole run, so progress after the last
     perturbation is observable. *)
  let pace = Vtime.ms 20 in
  let bursts =
    List.init (duration / pace) (fun i ->
        (i mod cfg.num_nodes, 200, 2, Vtime.add (Vtime.ms 2) (i * pace)))
  in
  let campaign =
    Campaign.make ~num_nodes:cfg.num_nodes ~num_nets:cfg.num_nets
      ~style:cfg.style ~seed:cfg.seed ~duration ~quiesce:cfg.quiesce
      ~traffic:(Campaign.Bursts bursts) ~wire:cfg.wire
      ~reinstate:cfg.reinstate []
  in
  (* Relaxed monitor: a forged token is a transient fault, and the
     expected recovery path (ring reformation) is a membership change.
     Liveness stays armed with a bound generous enough to cover a full
     token-loss recovery. *)
  let monitor =
    {
      cfg.monitor with
      Invariant.agreement = false;
      membership = false;
      virgin_net = false;
      lag_limit = None;
      condemn_within = None;
      token_gap = Some (Vtime.ms 450);
    }
  in
  let rng = Rng.create ~seed:cfg.seed in
  let active_style =
    match cfg.style with Totem_rrp.Style.Active -> true | _ -> false
  in
  let passive_style =
    match cfg.style with Totem_rrp.Style.Passive -> true | _ -> false
  in
  let threshold = Rrp_config.default.Rrp_config.active_problem_threshold in
  let mthreshold = Rrp_config.default.Rrp_config.passive_monitor_threshold in
  let plan =
    List.init points (fun i ->
        let node = Rng.int rng cfg.num_nodes in
        let p =
          match Rng.int rng 3 with
          | 0 when active_style ->
            Set_problem
              {
                node;
                net = Rng.int rng cfg.num_nets;
                value = Rng.int rng threshold;
              }
          | 0 when passive_style ->
            Skew_monitor
              {
                node;
                net = Rng.int rng cfg.num_nets;
                by = 1 + Rng.int rng (mthreshold - 1);
              }
          | k ->
            Forge_token
              { node; future = k <> 1; aru_back = Rng.int rng 3 }
        in
        (decision_time cfg ~gap i, p))
  in
  let t_last = decision_time cfg ~gap (points - 1) in
  let snapshot = ref 0 in
  let operational = ref false
  and common_ring = ref false
  and progressed = ref false in
  let probes =
    List.mapi
      (fun i (t, p) -> (t, fun cluster -> apply_perturbation i cluster p))
      plan
    @ [
        ( Vtime.add t_last (Vtime.ns 1),
          fun cluster -> snapshot := Cluster.delivered_at cluster 0 );
        ( Vtime.add duration cfg.quiesce,
          fun cluster ->
            let ring0 =
              Srp.current_ring_id (Cluster.srp (Cluster.node cluster 0))
            in
            let ok_op = ref true and ok_ring = ref true in
            for node = 0 to cfg.num_nodes - 1 do
              let srp = Cluster.srp (Cluster.node cluster node) in
              if not (Srp.is_operational srp) then ok_op := false;
              if Srp.current_ring_id srp <> ring0 then ok_ring := false
            done;
            operational := !ok_op;
            common_ring := !ok_ring;
            progressed := Cluster.delivered_at cluster 0 > !snapshot );
      ]
  in
  let r = Runner.run ~monitor ~probes campaign in
  {
    s_points = points;
    s_perturbations = List.map (fun (t, p) -> (t, describe p)) plan;
    s_operational = !operational;
    s_common_ring = !common_ring;
    s_progressed = !progressed;
    s_violations = r.Runner.violations;
  }
