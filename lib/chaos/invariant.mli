(** Online invariant monitors: the paper's requirements checked {e
    during} a chaos run, not just at its end.

    A monitor attaches to a cluster before [Cluster.start]: it
    subscribes to the {!Totem_engine.Telemetry} hub, installs delivery
    and ring-change hooks, and arms a read-only periodic check. It
    never draws randomness and never mutates protocol state, so an
    instrumented run is bit-for-bit the run you would have had without
    it — which is what makes counterexamples replayable.

    The masking invariants (agreement, membership, liveness, detection)
    are armed only when {!Campaign.tolerated} holds — they are exactly
    the paper's claims about campaigns inside the fault hypothesis.
    CHAOS.md maps each invariant id to its requirement number. *)

type violation = {
  invariant : string;  (** e.g. ["A2-membership"]; see CHAOS.md *)
  at : Totem_engine.Vtime.t;
  detail : string;
}

val pp_violation : Format.formatter -> violation -> unit

(** Invariant identifiers, as recorded in [violation.invariant]. *)

val inv_agreement : string
(** A1 (online): all nodes deliver the same message at the same
    position of the total order. *)

val inv_delivery : string
(** A1 (end of run): every submitted message was delivered everywhere. *)

val inv_membership : string
(** A2: tolerated network faults cause no membership change. *)

val inv_virgin : string
(** A5/P5: a network with no injected fault (or only sporadic loss
    below [sporadic_loss_max]) is never declared faulty. *)

val inv_detection : string
(** A6/P4: a really-failed network is condemned within the bound. *)

val inv_lag : string
(** P4/P5: a never-faulted network's reception count never lags beyond
    the configured limit. *)

val inv_liveness : string
(** Token liveness: rotation progresses under any tolerated fault. *)

val inv_corruption : string
(** C1: corruption artifacts (in-flight mutation, CRC rejects, decode
    rejects) appear only on networks where the campaign injects
    corruption. Armed unconditionally — an artifact elsewhere signals a
    codec defect, not a tolerated fault. *)

val inv_flap : string
(** R1: flap damping is bounded — no node re-condemns a network past
    [flap_limit] flaps, and no probation attempt starts past it. An
    oscillating network must converge to permanently condemned. *)

val inv_recondemn : string
(** R2: a network reinstated while heavy Gilbert–Elliott loss
    (steady-state rate >= 0.5) is still injected on it must be
    re-condemned within [recondemn_within] — the gray-failure analogue
    of A6 detection. *)

type config = {
  agreement : bool;
  membership : bool;
  virgin_net : bool;
  sporadic_loss_max : float;
      (** loss at or below this still counts as "virgin" for A5 *)
  lag_limit : int option;  (** arm {!inv_lag} with this bound *)
  condemn_within : Totem_engine.Vtime.t option;
      (** arm {!inv_detection}: a fully-failed network must be condemned
          by some node within this much downtime *)
  token_gap : Totem_engine.Vtime.t option;
      (** arm {!inv_liveness}: max virtual time without any [Token_rx] *)
  check_every : Totem_engine.Vtime.t;  (** periodic check interval *)
  flap_limit : int option;
      (** arm {!inv_flap} with the campaign's
          [Rrp_config.reinstate_flap_limit] *)
  recondemn_within : Totem_engine.Vtime.t option;
      (** arm {!inv_recondemn}: max time from reinstatement under heavy
          bursty loss to re-condemnation *)
}

val default : config
(** Agreement, membership and virgin-net checks on. [token_gap] is
    [Some 250 ms] (just above the 200 ms token-loss timeout) — but like
    every masking invariant it is only {e enforced} while
    {!Campaign.tolerated} holds for the campaign under test, so on
    campaigns outside the fault hypothesis the bound is effectively
    unarmed. Lag, detection and reinstatement bounds ([lag_limit],
    [condemn_within], [flap_limit], [recondemn_within]) default to
    [None]; arm them per campaign. *)

type t

val attach : Totem_cluster.Cluster.t -> config -> Campaign.t -> t
(** Install the monitor. Must run before [Cluster.start] so the initial
    ring install and first deliveries are observed. *)

val note_step : t -> Campaign.op -> unit
(** The runner calls this as each campaign step executes; keeps the
    monitor's view of injected fault state exact (A6 timing). *)

val tolerated : t -> bool

val violations : t -> violation list
(** Chronological. *)

val clean : t -> bool
(** No violations so far. *)

val final_checks : t -> submitted:int option -> unit
(** End-of-run pass after heal-and-quiesce: everything-delivered (for
    burst traffic) and outstanding detection bounds — each reported
    with the offending network id leading [violation.detail]. *)

val detach : t -> unit
(** Unsubscribe from telemetry and stop the periodic check. *)

(** {1 Serialization} — thresholds ride along in the counterexample
    file so a replay re-arms the exact monitor that fired. *)

val config_to_json : config -> Chaos_json.t

val config_of_json : Chaos_json.t -> string -> config

val violation_to_json : violation -> Chaos_json.t

val violation_of_json : Chaos_json.t -> string -> violation
