module Vtime = Totem_engine.Vtime
module Sim = Totem_engine.Sim
module Telemetry = Totem_engine.Telemetry
module Cluster = Totem_cluster.Cluster

(* Invariant identifiers name the paper requirement they operationalize;
   CHAOS.md carries the catalog. *)
let inv_agreement = "A1-agreement"
let inv_delivery = "A1-delivery"
let inv_membership = "A2-membership"
let inv_virgin = "A5-virgin-condemned"
let inv_detection = "A6-detection"
let inv_lag = "P4-lag"
let inv_liveness = "L-token-liveness"
let inv_corruption = "C1-corruption-confined"
let inv_flap = "R1-flap-bounded"
let inv_recondemn = "R2-gray-recondemn"

type violation = { invariant : string; at : Vtime.t; detail : string }

let pp_violation ppf v =
  Format.fprintf ppf "[%a] %s: %s" Vtime.pp v.at v.invariant v.detail

type config = {
  agreement : bool;
  membership : bool;
  virgin_net : bool;
  sporadic_loss_max : float;
  lag_limit : int option;
  condemn_within : Vtime.t option;
  token_gap : Vtime.t option;
  check_every : Vtime.t;
  flap_limit : int option;
  recondemn_within : Vtime.t option;
}

(* token_gap defaults just above token_loss_timeout (200 ms): under a
   tolerated campaign the token is never lost outright, so a quarter
   second without a single Token_rx anywhere means rotation stalled. *)
let default =
  {
    agreement = true;
    membership = true;
    virgin_net = true;
    sporadic_loss_max = 0.0;
    lag_limit = None;
    condemn_within = None;
    token_gap = Some (Vtime.ms 250);
    check_every = Vtime.ms 25;
    flap_limit = None;
    recondemn_within = None;
  }

type t = {
  cluster : Cluster.t;
  config : config;
  tolerated : bool;
  touched : bool array;
  (* nets where the campaign ever injects corruption; artifacts anywhere
     else mean the codec or fault model leaked (C1) *)
  corrupt_ok : bool array;
  num_nodes : int;
  mutable violations_rev : violation list;
  (* online total-order agreement: first delivery at position k fixes
     the reference; divergence is flagged the instant it happens *)
  order_log : (int, int * int) Hashtbl.t;
  positions : int array;
  (* membership *)
  ring_installs : int array;
  (* liveness *)
  mutable last_token : Vtime.t;
  (* A6 detection bookkeeping *)
  down_since : Vtime.t option array;
  marked : bool array;
  (* R2 bookkeeping: when heavy bursty loss started on a net, and which
     (node, net) reinstatements happened under it and now owe a
     re-condemnation *)
  gray_since : Vtime.t option array;
  reinstated_at : (int * int, Vtime.t) Hashtbl.t;
  mutable detached : bool;
  mutable subscription : Telemetry.subscription option;
}

let violate t invariant fmt =
  Format.kasprintf
    (fun detail ->
      t.violations_rev <-
        { invariant; at = Cluster.now t.cluster; detail } :: t.violations_rev)
    fmt

let violations t = List.rev t.violations_rev

let clean t = t.violations_rev = []

let on_event t _time event =
  match event with
  | Telemetry.Token_rx _ -> t.last_token <- Cluster.now t.cluster
  | Telemetry.Net_condemned { node; net; flaps } -> (
    (* a re-condemnation settles any outstanding R2 debt for this pair *)
    Hashtbl.remove t.reinstated_at (node, net);
    match t.config.flap_limit with
    | Some limit when flaps > limit ->
      violate t inv_flap
        "node %d re-condemned network %d on flap %d; damping should have \
         stopped probing at %d"
        node net flaps limit
    | _ -> ())
  | Telemetry.Net_probation { node; net; attempt } -> (
    match t.config.flap_limit with
    | Some limit when attempt > limit ->
      violate t inv_flap
        "node %d started probation attempt %d on network %d past the flap \
         limit %d"
        node attempt net limit
    | _ -> ())
  | Telemetry.Net_reinstated { node; net; rotations = _ } ->
    if t.config.recondemn_within <> None && t.gray_since.(net) <> None then
      Hashtbl.replace t.reinstated_at (node, net) (Cluster.now t.cluster)
  | Telemetry.Net_fault_marked { node; net; evidence } ->
    t.marked.(net) <- true;
    if t.config.virgin_net && t.tolerated && not t.touched.(net) then
      violate t inv_virgin
        "node %d condemned network %d which never saw an injected fault (%s)"
        node net evidence
  | Telemetry.Recv_lag { node; net; behind; source } -> (
    match t.config.lag_limit with
    | Some limit when t.tolerated && (not t.touched.(net)) && behind > limit ->
      violate t inv_lag
        "network %d lags %d behind at node %d (%s), limit %d for a \
         never-faulted network"
        net behind node source limit
    | _ -> ())
  (* C1: corruption artifacts are confined to the networks the campaign
     corrupts. Armed unconditionally — a CRC or decode reject on a net
     with no injected corruption signals a codec defect (a sender
     emitting images its own receiver rejects), not a tolerated fault. *)
  | Telemetry.Frame_corrupt { net; src; kind } ->
    if not t.corrupt_ok.(net) then
      violate t inv_corruption
        "frame from node %d corrupted (%s) on network %d where the campaign \
         injects no corruption"
        src kind net
  | Telemetry.Frame_crc_reject { node; net; src } ->
    if not t.corrupt_ok.(net) then
      violate t inv_corruption
        "node %d rejected a frame from node %d by CRC on network %d where \
         the campaign injects no corruption"
        node src net
  | Telemetry.Frame_decode_reject { node; net; src; error } ->
    if not t.corrupt_ok.(net) then
      violate t inv_corruption
        "node %d rejected a frame from node %d on network %d where the \
         campaign injects no corruption: %s"
        node src net error
  | _ -> ()

let on_ring_change t node ~ring_id ~members:_ =
  t.ring_installs.(node) <- t.ring_installs.(node) + 1;
  (* The install from Cluster.start is expected; anything after it means
     the tolerated faults caused a reconfiguration. *)
  if t.config.membership && t.tolerated && t.ring_installs.(node) > 1 then
    violate t inv_membership
      "node %d installed ring %d (%d installs) under tolerated faults" node
      ring_id t.ring_installs.(node)

let on_deliver t node m =
  if t.config.agreement && t.tolerated then begin
    let pos = t.positions.(node) in
    t.positions.(node) <- pos + 1;
    let key = (m.Totem_srp.Message.origin, m.Totem_srp.Message.app_seq) in
    match Hashtbl.find_opt t.order_log pos with
    | None -> Hashtbl.add t.order_log pos key
    | Some reference when reference = key -> ()
    | Some (r_origin, r_seq) ->
      violate t inv_agreement
        "node %d delivered (%d,%d) at position %d where (%d,%d) was \
         delivered first"
        node (fst key) (snd key) pos r_origin r_seq
  end

let check_detection ?(outstanding = false) t ~net ~now =
  match (t.config.condemn_within, t.down_since.(net)) with
  | Some bound, Some t0
    when t.tolerated
         && Vtime.( >= ) (Vtime.sub now t0) bound
         && not t.marked.(net) ->
    if outstanding then
      violate t inv_detection
        "net %d: failure injected at %a still uncondemned at end of run \
         (bound %a)"
        net Vtime.pp t0 Vtime.pp bound
    else
      violate t inv_detection
        "net %d: failed at %a and no node condemned it within %a" net Vtime.pp
        t0 Vtime.pp bound
  | _ -> ()

(* The runner reports every fault-schedule step as it executes, keeping
   the monitor's picture of injected state exact (A6 needs to know when
   a network went down and when the administrator repaired it). *)
let clear_gray t net =
  t.gray_since.(net) <- None;
  let stale =
    Hashtbl.fold
      (fun ((_, n) as k) _ acc -> if n = net then k :: acc else acc)
      t.reinstated_at []
  in
  List.iter (Hashtbl.remove t.reinstated_at) stale

let note_step t (op : Campaign.op) =
  let now = Cluster.now t.cluster in
  match op with
  | Campaign.Fail_net net ->
    if t.down_since.(net) = None then t.down_since.(net) <- Some now
  | Campaign.Heal_net net ->
    check_detection t ~net ~now;
    t.down_since.(net) <- None;
    (* heal_network clears every node's faulty mark for the net *)
    t.marked.(net) <- false;
    clear_gray t net
  | Campaign.Set_burst_loss (net, p_enter, p_exit) ->
    (* R2 arms while the steady-state Gilbert–Elliott loss rate is
       heavy (>= one frame in two): a reinstatement under it must be
       followed by a re-condemnation within the bound. *)
    if p_enter > 0.0 then begin
      let p_exit = Float.max p_exit 0.001 in
      let steady = p_enter /. (p_enter +. p_exit) in
      if steady >= 0.5 then begin
        if t.gray_since.(net) = None then t.gray_since.(net) <- Some now
      end
      else clear_gray t net
    end
    else clear_gray t net
  | _ -> ()

let check_recondemn ?(outstanding = false) t ~now =
  match t.config.recondemn_within with
  | Some bound ->
    let expired =
      Hashtbl.fold
        (fun k t0 acc ->
          if Vtime.( >= ) (Vtime.sub now t0) bound then (k, t0) :: acc else acc)
        t.reinstated_at []
    in
    List.iter
      (fun (((node, net) as k), t0) ->
        Hashtbl.remove t.reinstated_at k;
        if outstanding then
          violate t inv_recondemn
            "node %d reinstated network %d at %a under heavy bursty loss and \
             never re-condemned it (bound %a)"
            node net Vtime.pp t0 Vtime.pp bound
        else
          violate t inv_recondemn
            "node %d reinstated network %d at %a under heavy bursty loss and \
             did not re-condemn it within %a"
            node net Vtime.pp t0 Vtime.pp bound)
      expired
  | None -> ()

let tick t =
  let now = Cluster.now t.cluster in
  (match t.config.token_gap with
  | Some gap when t.tolerated ->
    let silent = Vtime.sub now t.last_token in
    if Vtime.( > ) silent gap then
      violate t inv_liveness "no token reception anywhere for %a (bound %a)"
        Vtime.pp silent Vtime.pp gap
  | _ -> ());
  Array.iteri (fun net _ -> check_detection t ~net ~now) t.down_since;
  check_recondemn t ~now

let rec arm_tick t =
  if not t.detached then
    ignore
      (Sim.schedule_timer (Cluster.sim t.cluster) ~delay:t.config.check_every
         (fun () ->
           if not t.detached then begin
             tick t;
             arm_tick t
           end))

let attach cluster config campaign =
  let num_nets = campaign.Campaign.num_nets in
  let t =
    {
      cluster;
      config;
      tolerated = Campaign.tolerated campaign;
      touched =
        Campaign.touched_nets ~sporadic_loss_max:config.sporadic_loss_max
          campaign;
      corrupt_ok = Campaign.corrupt_nets campaign;
      num_nodes = campaign.Campaign.num_nodes;
      violations_rev = [];
      order_log = Hashtbl.create 256;
      positions = Array.make campaign.Campaign.num_nodes 0;
      ring_installs = Array.make campaign.Campaign.num_nodes 0;
      last_token = Sim.now (Cluster.sim cluster);
      down_since = Array.make num_nets None;
      marked = Array.make num_nets false;
      gray_since = Array.make num_nets None;
      reinstated_at = Hashtbl.create 8;
      detached = false;
      subscription = None;
    }
  in
  t.subscription <-
    Some (Telemetry.subscribe (Cluster.telemetry cluster) (on_event t));
  Cluster.on_ring_change cluster (on_ring_change t);
  Cluster.on_deliver cluster (on_deliver t);
  arm_tick t;
  t

let tolerated t = t.tolerated

let final_checks t ~submitted =
  (match submitted with
  | Some expected when t.config.agreement && t.tolerated ->
    for node = 0 to t.num_nodes - 1 do
      let got = Cluster.delivered_at t.cluster node in
      if got <> expected then
        violate t inv_delivery "node %d delivered %d of %d submitted messages"
          node got expected
    done
  | _ -> ());
  let now = Cluster.now t.cluster in
  Array.iteri
    (fun net _ -> check_detection ~outstanding:true t ~net ~now)
    t.down_since;
  check_recondemn ~outstanding:true t ~now

let detach t =
  t.detached <- true;
  match t.subscription with
  | Some s ->
    Telemetry.unsubscribe (Cluster.telemetry t.cluster) s;
    t.subscription <- None
  | None -> ()

(* --- config serialization ------------------------------------------- *)

module J = Chaos_json

let opt_int = function None -> J.Null | Some v -> J.int v

let config_to_json c =
  J.Obj
    [
      ("agreement", J.Bool c.agreement);
      ("membership", J.Bool c.membership);
      ("virgin_net", J.Bool c.virgin_net);
      ("sporadic_loss_max", J.Num c.sporadic_loss_max);
      ("lag_limit", opt_int c.lag_limit);
      ("condemn_within_ns", opt_int c.condemn_within);
      ("token_gap_ns", opt_int c.token_gap);
      ("check_every_ns", J.int c.check_every);
      ("flap_limit", opt_int c.flap_limit);
      ("recondemn_within_ns", opt_int c.recondemn_within);
    ]

let opt_int_of v name where =
  match J.field v name with
  | None | Some J.Null -> None
  | Some _ -> Some (J.get_int v name where)

let config_of_json v where =
  {
    agreement = J.get_bool v "agreement" where;
    membership = J.get_bool v "membership" where;
    virgin_net = J.get_bool v "virgin_net" where;
    sporadic_loss_max = J.get_num v "sporadic_loss_max" where;
    lag_limit = opt_int_of v "lag_limit" where;
    condemn_within = opt_int_of v "condemn_within_ns" where;
    token_gap = opt_int_of v "token_gap_ns" where;
    check_every = J.get_int v "check_every_ns" where;
    (* absent in pre-reinstatement counterexample files *)
    flap_limit = opt_int_of v "flap_limit" where;
    recondemn_within = opt_int_of v "recondemn_within_ns" where;
  }

let violation_to_json v =
  J.Obj
    [
      ("invariant", J.str v.invariant);
      ("at_ns", J.int v.at);
      ("detail", J.str v.detail);
    ]

let violation_of_json v where =
  {
    invariant = J.get_str v "invariant" where;
    at = J.get_int v "at_ns" where;
    detail = J.get_str v "detail" where;
  }
