(** Fault campaigns: a serializable schedule of correlated faults plus
    the cluster shape and workload that make the run reproducible.

    A campaign is everything the chaos runner needs to re-execute a run
    bit-for-bit: cluster configuration (nodes, networks, replication
    style, PRNG seed), the traffic, the fault schedule, and how long to
    run. Unlike {!Totem_cluster.Scenario.action}, every operation here
    is a plain datum — no closures — so a campaign round-trips through
    the [.chaos.json] counterexample format (see CHAOS.md). *)

type op =
  | Fail_net of int  (** total network failure *)
  | Heal_net of int  (** administrator repair: clears faults and marks *)
  | Set_loss of int * float  (** sporadic per-frame loss probability *)
  | Set_corrupt of int * float
      (** per-frame in-flight corruption probability; in byte-wire
          campaigns ([wire = true]) frames are damaged and discarded by
          the receiving NIC's CRC/decode check, in reference mode they
          are dropped — either way the RRP sees loss (Sec. 3) *)
  | Set_burst_loss of int * float * float
      (** net, p_enter, p_exit: Gilbert–Elliott bursty loss — good->bad
          with [p_enter] per delivery, bad->good with [p_exit]; the bad
          state drops every frame. [p_enter = 0] disables. *)
  | Set_delay_factor of int * float * float
      (** net, factor, spike_prob: latency inflation (clamped to
          [>= 1.0]) plus spikes up to 10 x nominal latency *)
  | Set_dir_loss of int * int * int * float
      (** net, src, dst, p: asymmetric loss on the directed path;
          [p = 0] clears *)
  | Set_duplicate of int * float  (** net, p: per-delivery duplication *)
  | Set_reorder of int * float
      (** net, p: per-delivery reordering — breaks the per-receiver
          FIFO assumption, must be absorbed by SRP *)
  | Block_send of int * int  (** node, net: transmit-path fault (Sec. 3) *)
  | Unblock_send of int * int
  | Block_recv of int * int  (** node, net: receive-path fault (Sec. 3) *)
  | Unblock_recv of int * int
  | Partition of int * int list * int list
      (** net, from, to: directed subset-to-subset delivery fault *)
  | Unpartition of int * int list * int list
  | Crash of int  (** processor fault — outside the masked fault model *)
  | Recover of int

type step = { at : Totem_engine.Vtime.t; op : op }

type traffic =
  | Bursts of (int * int * int * Totem_engine.Vtime.t) list
      (** (node, size, count, at): finite workload, enables the
          everything-delivered end check *)
  | Saturate of int
      (** every node always ready with a message of this size *)

type t = {
  num_nodes : int;
  num_nets : int;
  style : Totem_rrp.Style.t;
  seed : int;
  duration : Totem_engine.Vtime.t;  (** fault-and-traffic window *)
  quiesce : Totem_engine.Vtime.t;
      (** after [duration] everything is healed and the cluster runs
          this much longer before the end-of-run checks *)
  traffic : traffic;
  steps : step list;
  wire : bool;
      (** run the cluster in byte-faithful wire mode
          ([Config.wire_bytes]): payloads serialized + CRC-checked at
          the NICs, corruption bit-accurate *)
  reinstate : bool;
      (** run the cluster with the condemned-network reinstatement
          protocol ([Rrp_config.reinstate]): condemned networks probe
          and may rejoin; the reinstatement invariants (flap damping
          bounded, gray re-condemnation) arm *)
}

val make :
  ?num_nodes:int ->
  ?num_nets:int ->
  ?style:Totem_rrp.Style.t ->
  ?seed:int ->
  ?duration:Totem_engine.Vtime.t ->
  ?quiesce:Totem_engine.Vtime.t ->
  ?traffic:traffic ->
  ?wire:bool ->
  ?reinstate:bool ->
  step list ->
  t
(** Steps are stably sorted by time; same-instant steps keep their list
    order, which is also their execution order. Defaults mirror
    {!Totem_cluster.Config.make}: 4 nodes, 2 nets, passive, seed 42,
    2 s window, 5 s quiesce, 1 KB saturation. *)

val validate : t -> (unit, string) result
(** Bounds-checks every node/net index, burst, loss value and the style
    against the network count. *)

(** {1 Combinators}

    Each combinator returns a step list; concatenate freely and hand the
    result to {!make}. *)

val flap :
  net:int ->
  period:Totem_engine.Vtime.t ->
  ?duty:float ->
  from_:Totem_engine.Vtime.t ->
  until:Totem_engine.Vtime.t ->
  unit ->
  step list
(** Network flapping: fail at each period start, heal after
    [duty * period] (default 0.5), repeating in [\[from_, until)]. A
    trailing down window is healed at [until].
    @raise Invalid_argument unless [0 < duty < 1] and [period > 0]. *)

val rolling_partition :
  net:int ->
  nodes:int list ->
  dwell:Totem_engine.Vtime.t ->
  from_:Totem_engine.Vtime.t ->
  rounds:int ->
  step list
(** Round [r] blocks delivery from [nodes[r mod n]] to
    [nodes[(r+1) mod n]] (via the fabric's [block_pair]) for [dwell],
    then lifts it as the next round starts — a partition that rotates
    through the membership. *)

val loss_ramp :
  net:int ->
  from_:Totem_engine.Vtime.t ->
  until:Totem_engine.Vtime.t ->
  stages:int ->
  peak:float ->
  step list
(** Loss climbing linearly to [peak] in [stages] equal stages across
    [\[from_, until)], then cleared at [until]. *)

val corrupt_window :
  net:int ->
  from_:Totem_engine.Vtime.t ->
  until:Totem_engine.Vtime.t ->
  p:float ->
  step list
(** Per-frame corruption probability [p] on [net] for the window,
    cleared at [until].
    @raise Invalid_argument unless [p] is in [\[0,1\]]. *)

val corruption_ramp :
  net:int ->
  from_:Totem_engine.Vtime.t ->
  until:Totem_engine.Vtime.t ->
  stages:int ->
  peak:float ->
  step list
(** Corruption climbing linearly to [peak] in [stages] equal stages
    across [\[from_, until)], then cleared at [until] — the corruption
    analogue of {!loss_ramp}. *)

val gray_window :
  net:int ->
  from_:Totem_engine.Vtime.t ->
  until:Totem_engine.Vtime.t ->
  p_enter:float ->
  p_exit:float ->
  ?factor:float ->
  ?spike:float ->
  unit ->
  step list
(** A gray-failure episode: Gilbert–Elliott bursty loss plus latency
    inflation ([factor], default 1.0) with spike probability [spike]
    (default 0) for the window, everything reset at [until].
    @raise Invalid_argument unless probabilities are in [\[0,1\]]. *)

val flap_storm :
  net:int ->
  from_:Totem_engine.Vtime.t ->
  cycles:int ->
  storm:Totem_engine.Vtime.t ->
  calm:Totem_engine.Vtime.t ->
  step list
(** [cycles] alternations of heavy bursty loss ([storm] long) and a
    clean window ([calm] long): with reinstatement on the network
    condemns, probes during the calm, re-condemns under the next storm —
    and flap damping must converge it to permanently condemned. *)

val gilbert_ramp :
  net:int ->
  from_:Totem_engine.Vtime.t ->
  until:Totem_engine.Vtime.t ->
  stages:int ->
  peak:float ->
  step list
(** Bursty loss whose steady-state rate climbs linearly to [peak] in
    [stages] stages (mean burst length fixed at 5 deliveries), cleared
    at [until] — the Gilbert–Elliott analogue of {!loss_ramp}.
    @raise Invalid_argument unless [0 < peak < 1]. *)

val send_block_window :
  node:int ->
  net:int ->
  from_:Totem_engine.Vtime.t ->
  until:Totem_engine.Vtime.t ->
  step list
(** Asymmetric fault: the node can hear but not speak on [net] for the
    window. *)

val recv_block_window :
  node:int ->
  net:int ->
  from_:Totem_engine.Vtime.t ->
  until:Totem_engine.Vtime.t ->
  step list

val kill_window :
  node:int ->
  at:Totem_engine.Vtime.t ->
  ?recover_at:Totem_engine.Vtime.t ->
  unit ->
  step list
(** Processor kill (timed against the token by choosing [at] relative to
    the measured rotation period); note this leaves the paper's masked
    fault model, so {!tolerated} becomes false. *)

val random :
  seed:int ->
  ?duration:Totem_engine.Vtime.t ->
  ?quiesce:Totem_engine.Vtime.t ->
  ?wire:bool ->
  ?corrupt:bool ->
  ?gray:bool ->
  unit ->
  t
(** The fuzz generator: random cluster shape (2–5 nodes, 2–3 nets,
    random style), random burst traffic, and a random fault timeline
    drawn from the full op set that {e never touches the last network} —
    the paper's operating assumption that one network survives. Equal
    seeds give equal campaigns. [wire] (default false) marks the
    campaign byte-wire; [corrupt] (default false) widens the op draw
    with corruption windows and ramps; [gray] (default false) widens it
    with gray windows, Gilbert–Elliott ramps and directional loss, and
    turns reinstatement on for the campaign. With all off, the
    generator is bit-for-bit the historical one, so existing seeds keep
    their campaigns. *)

(** {1 Static analysis} *)

val tolerated : t -> bool
(** True when the campaign stays inside the fault hypothesis the paper
    masks: no [Crash] steps, and after every step at least one network
    carries no fault at all (not even sporadic loss). The invariant
    monitor arms the masking invariants (agreement, no membership
    change, liveness) only for tolerated campaigns. *)

val touched_nets : ?sporadic_loss_max:float -> t -> bool array
(** Per-network: does any step inject a hard fault on it, or loss {e or
    corruption} above [sporadic_loss_max] (default 0)? Untouched
    networks are "virgin": requirement A5/P5 says they must never be
    declared faulty. *)

val corrupt_nets : t -> bool array
(** Per-network: does any step set a positive corruption probability on
    it? The corruption-confinement invariant requires every corruption
    artifact (in-flight mutation, CRC or decode discard) to land on one
    of these networks. *)

val has_crashes : t -> bool

val submitted_messages : t -> int option
(** Total burst submissions; [None] for saturation traffic. *)

val to_action : op -> Totem_cluster.Scenario.action
(** The executable form; the runner schedules these through
    {!Totem_cluster.Scenario.apply}. *)

val pp_op : Format.formatter -> op -> unit

val pp_step : Format.formatter -> step -> unit

(** {1 Serialization} *)

val style_to_string : Totem_rrp.Style.t -> string

val style_of_string : string -> (Totem_rrp.Style.t, string) result

val to_json : t -> Chaos_json.t

val of_json : Chaos_json.t -> string -> t
(** [of_json v where] decodes; [where] contextualizes errors.
    @raise Chaos_json.Parse_error on malformed input. *)
