module Vtime = Totem_engine.Vtime
module Sim = Totem_engine.Sim
module Telemetry = Totem_engine.Telemetry
module Cluster = Totem_cluster.Cluster
module Config = Totem_cluster.Config
module Workload = Totem_cluster.Workload
module Scenario = Totem_cluster.Scenario

module Recorder = Totem_engine.Recorder

type result = {
  campaign : Campaign.t;
  monitor : Invariant.config;
  violations : Invariant.violation list;
  submitted : int option;
  delivered : int;
  finished_at : Vtime.t;
  events : int;
  history : (int * string list) list;
}

let passed r = r.violations = []

let pp_result ppf r =
  match r.violations with
  | [] ->
    Format.fprintf ppf "pass: %d events, %d delivered at node 0, ended %a"
      r.events r.delivered Vtime.pp r.finished_at
  | v :: rest ->
    Format.fprintf ppf "VIOLATION %a (+%d more)" Invariant.pp_violation v
      (List.length rest)

(* Violations are checked on a fixed slice grid so a run stops promptly
   once a monitor fires; the grid is absolute, so slicing never changes
   what the simulation computes, only when we look at it. *)
let slice = Vtime.ms 25

(* Every run carries a flight recorder: a bounded per-node ring of the
   most recent telemetry events, dumped into counterexamples so a
   [.chaos.json] shows what each node was doing when the monitor fired.
   The recorder is a read-only subscriber, so arming it cannot change
   what the simulation computes. *)
let recorder_capacity = 64

let run ?(monitor = Invariant.default) ?sink ?(shadow = false)
    ?(sim_domains = 0) ?(window_batch = true) ?(max_horizon_factor = 8)
    ?prepare ?(probes = []) ?(end_checks = true) campaign =
  (match Campaign.validate campaign with
  | Ok () -> ()
  | Error m -> invalid_arg ("Runner.run: invalid campaign: " ^ m));
  let rrp =
    {
      Totem_rrp.Rrp_config.default with
      Totem_rrp.Rrp_config.reinstate = campaign.Campaign.reinstate;
    }
  in
  let config =
    Config.make ~num_nodes:campaign.Campaign.num_nodes
      ~num_nets:campaign.Campaign.num_nets ~style:campaign.Campaign.style
      ~seed:campaign.Campaign.seed ~rrp ~wire_bytes:campaign.Campaign.wire
      ~codec_shadow:shadow ~sim_domains ~window_batch ~max_horizon_factor ()
  in
  let cluster = Cluster.create config in
  let mon = Invariant.attach cluster monitor campaign in
  let recorder =
    Recorder.attach ~capacity:recorder_capacity
      ~nodes:campaign.Campaign.num_nodes
      (Cluster.telemetry cluster)
  in
  (match prepare with Some f -> f cluster | None -> ());
  (match sink with
  | Some f -> Telemetry.set_sink (Cluster.telemetry cluster) f
  | None -> ());
  Cluster.start cluster;
  let sim = Cluster.sim cluster in
  List.iter
    (fun { Campaign.at; op } ->
      ignore
        (Sim.schedule_at sim ~time:at (fun () ->
             Scenario.apply cluster (Campaign.to_action op);
             Invariant.note_step mon op)))
    campaign.Campaign.steps;
  (match campaign.Campaign.traffic with
  | Campaign.Saturate size -> Workload.saturate cluster ~size
  | Campaign.Bursts bs ->
    List.iter
      (fun (node, size, count, at) -> Workload.burst cluster ~node ~size ~count ~at)
      bs);
  (* Probes are read-only observation points. They fire at [run_until]
     boundaries, where the parallel core guarantees every partition has
     processed all events <= the boundary and cross-partition traffic is
     flushed — so what a probe reads is identical for every
     [sim_domains]. With [probes = []] the boundary sequence is exactly
     the historical slice grid, so existing runs stay bit-for-bit. *)
  let pending = ref (List.stable_sort (fun (a, _) (b, _) -> compare a b) probes) in
  let fire_due t =
    let rec go () =
      match !pending with
      | (pt, f) :: rest when Vtime.( <= ) pt t ->
        pending := rest;
        f cluster;
        go ()
      | _ -> ()
    in
    go ()
  in
  let drive t0 t_end =
    let rec go t =
      if Vtime.( < ) t t_end && Invariant.clean mon then begin
        let next_slice = Vtime.min t_end (Vtime.add t slice) in
        let target =
          match !pending with
          | (pt, _) :: _ when Vtime.( > ) pt t && Vtime.( < ) pt next_slice -> pt
          | _ -> next_slice
        in
        Cluster.run_until cluster target;
        if Invariant.clean mon then fire_due target;
        go target
      end
    in
    go t0
  in
  let duration = campaign.Campaign.duration in
  drive Vtime.zero duration;
  if end_checks && Invariant.clean mon then begin
    (* Heal everything — the administrator's repair — then let the
       cluster quiesce before the end-of-run checks, like the original
       fuzz harness did. *)
    for net = 0 to campaign.Campaign.num_nets - 1 do
      Cluster.heal_network cluster net;
      Invariant.note_step mon (Campaign.Heal_net net)
    done;
    let stop = Vtime.add duration campaign.Campaign.quiesce in
    drive duration stop;
    if Invariant.clean mon then
      Invariant.final_checks mon ~submitted:(Campaign.submitted_messages campaign)
  end;
  Invariant.detach mon;
  let history = Recorder.dump_jsonl recorder in
  Recorder.detach recorder;
  (match sink with
  | Some _ -> Telemetry.clear_sink (Cluster.telemetry cluster)
  | None -> ());
  {
    campaign;
    monitor;
    violations = Invariant.violations mon;
    submitted = Campaign.submitted_messages campaign;
    delivered = Cluster.delivered_at cluster 0;
    finished_at = Cluster.now cluster;
    events = Cluster.events_processed cluster;
    history;
  }

(* --- shrinking ------------------------------------------------------- *)

(* Greedy delta debugging on the step schedule: try dropping chunks of
   decreasing size (halves first, then finer), re-executing the campaign
   deterministically after each candidate drop and keeping it whenever
   the same invariant still fires first. *)

let first_invariant r =
  match r.violations with [] -> None | v :: _ -> Some v.Invariant.invariant

let reproduces ~monitor ?prepare campaign inv =
  first_invariant (run ~monitor ?prepare campaign) = Some inv

type shrink_report = {
  minimized : Campaign.t;
  runs_used : int;
  original_steps : int;
  minimized_steps : int;
}

let shrink ?(monitor = Invariant.default) ?(budget = 160) ?prepare campaign
    (violation : Invariant.violation) =
  let inv = violation.Invariant.invariant in
  let runs = ref 0 in
  let try_steps steps =
    if !runs >= budget then false
    else begin
      incr runs;
      reproduces ~monitor ?prepare { campaign with Campaign.steps } inv
    end
  in
  let drop_chunk steps lo len =
    List.filteri (fun i _ -> i < lo || i >= lo + len) steps
  in
  (* ddmin: granularity starts at 2 chunks and refines; restart whenever
     a drop sticks (smaller schedules shrink faster). *)
  let rec go steps n =
    let len = List.length steps in
    if len = 0 || !runs >= budget then steps
    else begin
      let chunk = max 1 (len / n) in
      let rec chunks lo =
        if lo >= len then None
        else
          let size = min chunk (len - lo) in
          let candidate = drop_chunk steps lo size in
          if try_steps candidate then Some candidate else chunks (lo + size)
      in
      match chunks 0 with
      | Some smaller -> go smaller (max 2 (n - 1))
      | None -> if chunk > 1 then go steps (min len (2 * n)) else steps
    end
  in
  let steps = go campaign.Campaign.steps 2 in
  {
    minimized = { campaign with Campaign.steps };
    runs_used = !runs;
    original_steps = List.length campaign.Campaign.steps;
    minimized_steps = List.length steps;
  }

(* --- counterexample files ------------------------------------------- *)

module J = Chaos_json

let schema = "totem-chaos/v2"

let schema_v1 = "totem-chaos/v1"

type counterexample = {
  cx_campaign : Campaign.t;
  cx_monitor : Invariant.config;
  cx_violation : Invariant.violation option;
  cx_shrunk : bool;
  cx_history : (int * J.t list) list;
}

(* The flight-recorder dump of a result, reparsed into JSON values so it
   can be embedded in (and compared against) counterexample files.
   Telemetry event JSON carries only integers and strings, so the
   parse/print round trip is exact and structural equality is the same
   as byte equality of the original JSONL lines. *)
let history_json r =
  List.map
    (fun (node, lines) ->
      ( node,
        List.map
          (fun line ->
            match J.parse line with
            | Ok v -> v
            | Error m ->
              invalid_arg ("Runner.history_json: unparseable event: " ^ m))
          lines ))
    r.history

let counterexample_to_json cx =
  J.Obj
    [
      ("schema", J.str schema);
      ("shrunk", J.Bool cx.cx_shrunk);
      ("campaign", Campaign.to_json cx.cx_campaign);
      ("monitor", Invariant.config_to_json cx.cx_monitor);
      ( "violation",
        match cx.cx_violation with
        | None -> J.Null
        | Some v -> Invariant.violation_to_json v );
      ( "history",
        J.Arr
          (List.map
             (fun (node, events) ->
               J.Obj [ ("node", J.int node); ("events", J.Arr events) ])
             cx.cx_history) );
    ]

let write_counterexample ~path cx =
  let oc = open_out path in
  output_string oc (J.to_string (counterexample_to_json cx));
  close_out oc

let read_counterexample ~path =
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match J.parse text with
  | Error m -> Error (Printf.sprintf "%s: %s" path m)
  | Ok v -> (
    try
      (match J.get_str v "schema" path with
      | s when s = schema || s = schema_v1 -> ()
      | s -> raise (J.Parse_error (Printf.sprintf "%s: unexpected schema \"%s\"" path s)));
      let campaign =
        match J.field v "campaign" with
        | Some c -> Campaign.of_json c path
        | None -> raise (J.Parse_error (path ^ ": missing \"campaign\""))
      in
      let monitor =
        match J.field v "monitor" with
        | Some m -> Invariant.config_of_json m path
        | None -> raise (J.Parse_error (path ^ ": missing \"monitor\""))
      in
      let violation =
        match J.field v "violation" with
        | None | Some J.Null -> None
        | Some vv -> Some (Invariant.violation_of_json vv path)
      in
      (* v1 files carry no history block; read them as an empty dump so
         replay skips the history comparison. *)
      let history =
        match J.field v "history" with
        | None | Some J.Null -> []
        | Some (J.Arr entries) ->
          List.map
            (fun e ->
              (J.get_int e "node" path, J.get_list e "events" path))
            entries
        | Some _ ->
          raise (J.Parse_error (path ^ ": \"history\" is not an array"))
      in
      Ok
        {
          cx_campaign = campaign;
          cx_monitor = monitor;
          cx_violation = violation;
          cx_shrunk = J.get_bool v "shrunk" path;
          cx_history = history;
        }
    with J.Parse_error m -> Error m)

type replay_outcome =
  | Reproduced of result
      (** same invariant, same virtual time, same detail *)
  | Diverged of result * string
  | Clean_replay of result  (** file carried no violation; none occurred *)

let replay ?prepare cx =
  let r = run ~monitor:cx.cx_monitor ?prepare cx.cx_campaign in
  match (cx.cx_violation, r.violations) with
  | None, [] -> Clean_replay r
  | None, v :: _ ->
    Diverged
      (r, Format.asprintf "expected a clean run, got %a" Invariant.pp_violation v)
  | Some expected, [] ->
    Diverged
      ( r,
        Format.asprintf "expected %a, got a clean run" Invariant.pp_violation
          expected )
  | Some expected, got :: _ ->
    if
      expected.Invariant.invariant = got.Invariant.invariant
      && expected.Invariant.at = got.Invariant.at
      && expected.Invariant.detail = got.Invariant.detail
    then
      (* The violation matched; if the file carries a flight-recorder
         dump (v2), the replay's event history must match too. *)
      if cx.cx_history = [] || history_json r = cx.cx_history then Reproduced r
      else
        Diverged
          (r, "violation reproduced, but the event history diverged")
    else
      Diverged
        ( r,
          Format.asprintf "expected %a, got %a" Invariant.pp_violation expected
            Invariant.pp_violation got )

let replay_file ~path =
  match read_counterexample ~path with
  | Error m -> Error m
  | Ok cx -> Ok (replay cx)
