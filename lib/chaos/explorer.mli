(** Bounded exhaustive model checking over chaos-op interleavings.

    Where {!Campaign.random} samples the fault space, the explorer
    enumerates it: every interleaving of a small op alphabet
    (fail/heal, partition/unpartition, corrupt-on/off per controllable
    network) up to a configured depth, with ops applied at
    token-rotation granularity — decision point [i] is virtual time
    [settle + i * gap], where [gap] defaults to a calibrated multiple
    of the measured token-rotation time. Every path runs through the
    deterministic {!Runner} with the full {!Invariant} monitor set
    armed, so a violating interleaving is immediately a shrinkable,
    replayable [.chaos.json] counterexample.

    State-fingerprint deduplication prunes symmetric interleavings: at
    each decision point the explorer hashes a projection of cluster
    state (per-node membership, ring id, aru/frontier, problem
    counters and reception-count monitors, fault marks) together with
    the symbolic environment (which faults are currently applied, and
    since when). Two prefixes of equal length with equal fingerprints
    are extended identically by construction of the schedule, so the
    subtree under the second is skipped and its leaves are counted as
    pruned. The fingerprint is a {e projection} — it deliberately
    omits byte-level buffer state — so the reduction is approximate:
    it can prune paths a full state hash would keep, never the other
    way around for the observables it tracks. Fingerprints are read at
    [Cluster.run_until] boundaries, so counts are identical for every
    [sim_domains].

    The second mode, {!stabilize}, leaves the fault schedule entirely:
    it perturbs protocol-internal state (forged tokens with skewed
    seq/aru/hops, overwritten problem counters, inflated
    reception-count monitors) at [N] points and checks the protocol
    returns to an operational, progressing ring — the
    self-stabilization payoff. *)

type config = {
  num_nodes : int;  (** 2–3 is the intended range *)
  num_nets : int;
  style : Totem_rrp.Style.t;
  seed : int;
  wire : bool;  (** byte-wire mode for every explored run *)
  depth : int;  (** ops per interleaving *)
  alphabet : Campaign.op list;
  gap : Totem_engine.Vtime.t option;
      (** decision-point spacing; [None] = calibrate to the token
          rotation (see {!calibrated_gap}) *)
  settle : Totem_engine.Vtime.t;  (** quiet time before decision 0 *)
  hold : Totem_engine.Vtime.t;
      (** time after the last decision before the administrator heal *)
  quiesce : Totem_engine.Vtime.t;
  monitor : Invariant.config;
  sim_domains : int;
  reinstate : bool;
      (** run every explored campaign with the reinstatement protocol
          on, and include each node's probation state and flap count in
          the state fingerprint *)
}

val make :
  ?num_nodes:int ->
  ?num_nets:int ->
  ?style:Totem_rrp.Style.t ->
  ?seed:int ->
  ?wire:bool ->
  ?depth:int ->
  ?alphabet:Campaign.op list ->
  ?gap:Totem_engine.Vtime.t ->
  ?settle:Totem_engine.Vtime.t ->
  ?hold:Totem_engine.Vtime.t ->
  ?quiesce:Totem_engine.Vtime.t ->
  ?monitor:Invariant.config ->
  ?sim_domains:int ->
  ?reinstate:bool ->
  unit ->
  config
(** Defaults: 3 nodes, 2 nets, active style, seed 42, wire on, depth 3,
    {!default_alphabet}, calibrated gap, 40 ms settle, 40 ms hold,
    500 ms quiesce, {!Invariant.default}, classic simulator core,
    reinstatement off. *)

val default_alphabet : num_nets:int -> Campaign.op list
(** Fail/heal, corrupt-on (p = 0.5)/corrupt-off and a node-0-to-node-1
    directed partition/unpartition for every network except the last —
    the paper's operating assumption that one network survives, which
    also keeps {!Campaign.tolerated} true on every path so the masking
    invariants stay armed. @raise Invalid_argument if [num_nets < 2]. *)

val gray_alphabet : num_nets:int -> Campaign.op list
(** Gray-failure ops in on/off pairs for every network except the last:
    heavy Gilbert–Elliott burst loss, 4x latency inflation with spikes,
    and directional node-0-to-node-1 loss. Designed to interleave
    condemnation with probation, so pair it with [reinstate].
    @raise Invalid_argument if [num_nets < 2]. *)

val calibrated_gap : config -> Totem_engine.Vtime.t
(** The decision-point spacing actually used: [config.gap] when given,
    otherwise twice the token-rotation time measured on a clean,
    classic-mode run of the same cluster shape (floored at 5 ms so
    fault effects — token timeouts, problem-counter increments — can
    land between consecutive decisions). Deterministic per config. *)

val leaf_campaign :
  config -> gap:Totem_engine.Vtime.t -> Campaign.op list -> Campaign.t
(** The campaign a full-length path denotes: op [i] at
    [settle + i * gap], duration [settle + depth * gap + hold], fixed
    deterministic burst traffic spread across the decision window (the
    same traffic for every path and every prefix, which is what makes
    prefix fingerprints meaningful). Also accepts paths shorter than
    [depth] — used to re-run a violating prefix in standard leaf form
    so shrinking and replay apply unchanged. *)

type fingerprint = int64

val path_fingerprints :
  ?prepare:(Totem_cluster.Cluster.t -> unit) ->
  config ->
  gap:Totem_engine.Vtime.t ->
  Campaign.op list ->
  Runner.result * fingerprint list
(** Run one full path and return its result plus the fingerprint at
    every decision point (state just before each op lands, plus one
    after the last). Pure re-execution: calling it twice — or replaying
    the same path at any [sim_domains] — gives byte-identical results
    and fingerprint sequences. *)

type stats = {
  alphabet_size : int;
  total_leaves : int;  (** [alphabet_size ^ depth] *)
  leaves_explored : int;  (** leaf end-games actually run *)
  leaves_pruned : int;  (** leaves skipped under deduplicated prefixes *)
  interior_runs : int;  (** prefix re-executions for fingerprints *)
  distinct_states : int;  (** size of the (depth, fingerprint) set *)
}

val pp_stats : Format.formatter -> stats -> unit

type found = {
  f_path : Campaign.op list;  (** the violating interleaving *)
  f_campaign : Campaign.t;  (** its leaf-form campaign *)
  f_result : Runner.result;  (** probe-free run: violations non-empty *)
}

type outcome = {
  o_gap : Totem_engine.Vtime.t;
  o_stats : stats;
  o_found : found option;
}

val explore :
  ?prepare:(Totem_cluster.Cluster.t -> unit) -> config -> outcome
(** Depth-first enumeration with re-execution (no simulator snapshots:
    every prefix and leaf is a fresh deterministic run). Stops at the
    first violating path; [explored + pruned = total_leaves] whenever
    no violation is found. [prepare] is threaded into every run — the
    mutation canary uses it to weaken the protocol under test.
    @raise Invalid_argument on an empty alphabet or [depth < 1]. *)

val to_counterexample :
  ?prepare:(Totem_cluster.Cluster.t -> unit) ->
  ?shrunk:bool ->
  config ->
  Campaign.t ->
  Runner.counterexample
(** Re-run the campaign probe-free under the config's monitor and
    package the first violation (or [None]) with its flight-recorder
    history, ready for {!Runner.write_counterexample}. *)

(** {1 Arbitrary-state perturbation ([--arbitrary-state N])} *)

type stabilize_report = {
  s_points : int;
  s_perturbations : (Totem_engine.Vtime.t * string) list;
      (** what was injected, and when *)
  s_operational : bool;  (** every node operational at end of run *)
  s_common_ring : bool;  (** all nodes on one ring id at end of run *)
  s_progressed : bool;
      (** node 0 delivered new messages after the last perturbation *)
  s_violations : Invariant.violation list;
}

val stabilized : stabilize_report -> bool
(** Operational, on a common ring, progressing, no violations. *)

val stabilize : config -> points:int -> stabilize_report
(** Self-stabilization check: run the clean campaign (no fault steps)
    but, at [points] decision points, overwrite protocol-internal state
    through the public API — forged tokens via [Srp.token_arrived]
    (skewed seq/aru, stale or far-future hops), problem counters via
    [Active.set_problem_counter], reception-count monitors via
    [Monitor.note] — with a deterministic PRNG drawing from
    [config.seed]. A relaxed monitor is used (a forged token {e is} a
    transient fault; membership churn and token gaps while the ring
    reforms are the expected recovery path), and the report instead
    checks the protocol returned to a live, progressing ring.
    Perturbations mutate node state from the coordinator, so this mode
    always runs the classic core ([sim_domains] is ignored) and its
    runs are not replayable counterexamples.
    @raise Invalid_argument if [points < 1]. *)
