(* Minimal JSON reader/writer for the chaos counterexample files.
   Deliberately dependency-free, like test/validate_telemetry.ml: the
   replay path must work in any environment that can build the library,
   and the format is small enough that a hand-rolled parser is clearer
   than a vendored one. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* --- parser --------------------------------------------------------- *)

type cursor = { text : string; mutable pos : int }

let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let rec go () =
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      go ()
    | _ -> ()
  in
  go ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> fail "at byte %d: expected '%c', found '%c'" c.pos ch x
  | None -> fail "at byte %d: expected '%c', found end of input" c.pos ch

let literal c word value =
  String.iter (fun ch -> expect c ch) word;
  value

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail "unterminated string at byte %d" c.pos
    | Some '"' -> advance c
    | Some '\\' ->
      advance c;
      (match peek c with
      | Some '"' -> Buffer.add_char buf '"'
      | Some '\\' -> Buffer.add_char buf '\\'
      | Some '/' -> Buffer.add_char buf '/'
      | Some 'n' -> Buffer.add_char buf '\n'
      | Some 't' -> Buffer.add_char buf '\t'
      | Some 'r' -> Buffer.add_char buf '\r'
      | Some 'b' -> Buffer.add_char buf '\b'
      | Some 'f' -> Buffer.add_char buf '\012'
      | Some 'u' ->
        if c.pos + 4 >= String.length c.text then
          fail "truncated \\u escape at byte %d" c.pos;
        let hex = String.sub c.text (c.pos + 1) 4 in
        (match int_of_string_opt ("0x" ^ hex) with
        | Some code when code < 0x80 -> Buffer.add_char buf (Char.chr code)
        | Some _ -> Buffer.add_char buf '?'
        | None -> fail "bad \\u escape \"%s\" at byte %d" hex c.pos);
        c.pos <- c.pos + 4
      | _ -> fail "bad escape at byte %d" c.pos);
      advance c;
      go ()
    | Some ch when Char.code ch < 0x20 ->
      fail "unescaped control character 0x%02x at byte %d" (Char.code ch) c.pos
    | Some ch ->
      Buffer.add_char buf ch;
      advance c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let numeric = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec go () =
    match peek c with
    | Some ch when numeric ch ->
      advance c;
      go ()
    | _ -> ()
  in
  go ();
  let s = String.sub c.text start (c.pos - start) in
  match float_of_string_opt s with
  | Some f -> Num f
  | None -> fail "bad number \"%s\" at byte %d" s start

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail "unexpected end of input at byte %d" c.pos
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws c;
        let key = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          members ((key, v) :: acc)
        | Some '}' ->
          advance c;
          Obj (List.rev ((key, v) :: acc))
        | _ -> fail "expected ',' or '}' at byte %d" c.pos
      in
      members []
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      Arr []
    end
    else begin
      let rec elements acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          elements (v :: acc)
        | Some ']' ->
          advance c;
          Arr (List.rev (v :: acc))
        | _ -> fail "expected ',' or ']' at byte %d" c.pos
      in
      elements []
    end
  | Some '"' -> Str (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> parse_number c

let parse text =
  try
    let c = { text; pos = 0 } in
    let v = parse_value c in
    skip_ws c;
    if c.pos <> String.length text then
      fail "trailing garbage at byte %d" c.pos;
    Ok v
  with Parse_error m -> Error m

(* --- writer --------------------------------------------------------- *)

let escape buf s =
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | ch when Char.code ch < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char buf ch)
    s

let add_num buf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else Buffer.add_string buf (Printf.sprintf "%.17g" f)

let rec write buf indent v =
  let pad n = String.make n ' ' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> add_num buf f
  | Str s ->
    Buffer.add_char buf '"';
    escape buf s;
    Buffer.add_char buf '"'
  | Arr [] -> Buffer.add_string buf "[]"
  | Arr vs ->
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (pad (indent + 2));
        write buf (indent + 2) v)
      vs;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (pad indent);
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj kvs ->
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (pad (indent + 2));
        Buffer.add_char buf '"';
        escape buf k;
        Buffer.add_string buf "\": ";
        write buf (indent + 2) v)
      kvs;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (pad indent);
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf 0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* --- accessors ------------------------------------------------------ *)

let field v name = match v with Obj kvs -> List.assoc_opt name kvs | _ -> None

let get_num v name where =
  match field v name with
  | Some (Num f) -> f
  | Some _ -> fail "%s: \"%s\" is not a number" where name
  | None -> fail "%s: missing \"%s\"" where name

let get_int v name where =
  let f = get_num v name where in
  if Float.is_integer f then int_of_float f
  else fail "%s: \"%s\" is not an integer" where name

let get_str v name where =
  match field v name with
  | Some (Str s) -> s
  | Some _ -> fail "%s: \"%s\" is not a string" where name
  | None -> fail "%s: missing \"%s\"" where name

let get_bool v name where =
  match field v name with
  | Some (Bool b) -> b
  | Some _ -> fail "%s: \"%s\" is not a boolean" where name
  | None -> fail "%s: missing \"%s\"" where name

let get_list v name where =
  match field v name with
  | Some (Arr vs) -> vs
  | Some _ -> fail "%s: \"%s\" is not an array" where name
  | None -> fail "%s: missing \"%s\"" where name

let get_int_list v name where =
  List.map
    (function
      | Num f when Float.is_integer f -> int_of_float f
      | _ -> fail "%s: \"%s\" holds a non-integer" where name)
    (get_list v name where)

let int n = Num (float_of_int n)
let str s = Str s
