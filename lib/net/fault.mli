(** Injectable network faults, mirroring the paper's fault model (Sec. 3).

    The tolerated fault types are: a node unable to send via a network, a
    node unable to receive via a network, and a network unable to deliver
    from some subset of nodes to some other subset (possibly everything —
    total network failure). Sporadic loss is modelled separately as a
    per-frame drop probability.

    A [Fault.t] holds the current fault state of one network; the
    {!Network} consults it on every frame. All mutations take effect for
    frames sent after the call. *)

type t

val create : unit -> t
(** No faults, zero loss. *)

val set_down : t -> bool -> unit
(** Total failure: nothing is delivered (frames vanish in the switch). *)

val is_down : t -> bool

val block_send : t -> Addr.node_id -> unit
(** The node's transmit path into this network is broken. *)

val unblock_send : t -> Addr.node_id -> unit

val send_blocked : t -> Addr.node_id -> bool

val block_recv : t -> Addr.node_id -> unit
(** The node's receive path from this network is broken. *)

val unblock_recv : t -> Addr.node_id -> unit

val recv_blocked : t -> Addr.node_id -> bool

val block_pair : t -> src:Addr.node_id -> dst:Addr.node_id -> unit
(** The network cannot deliver from [src] to [dst] (directed). *)

val unblock_pair : t -> src:Addr.node_id -> dst:Addr.node_id -> unit

val set_loss_probability : t -> float -> unit
(** Probability in [0,1] that any given frame delivery is dropped,
    independently per receiver. *)

val loss_probability : t -> float

val set_loss : t -> float -> unit
(** Like {!set_loss_probability}, but clamps the argument to [\[0,1\]]
    instead of raising — the forgiving variant fault campaigns use when
    ramping loss by computed increments. *)

val loss_rate : t -> float
(** The current loss probability; alias of {!loss_probability}, paired
    with {!set_loss} so campaigns can snapshot and restore loss state
    symmetrically. *)

val delivers : t -> src:Addr.node_id -> dst:Addr.node_id -> bool
(** Whether the deterministic fault state permits delivery on the path
    [src -> dst] (loss probability not included). *)

val heal : t -> unit
(** Clears every fault and the loss probability. *)

val set_notify : t -> (string -> unit) -> unit
(** Install an observer called with a short status string whenever the
    fault state changes observably ([set_down], [set_loss_probability],
    [heal]); used by telemetry to record [Net_status] events. The
    observer must not mutate fault state. *)
