(** Injectable network faults, mirroring the paper's fault model (Sec. 3).

    The tolerated fault types are: a node unable to send via a network, a
    node unable to receive via a network, and a network unable to deliver
    from some subset of nodes to some other subset (possibly everything —
    total network failure). Sporadic loss is modelled separately as a
    per-frame drop probability.

    A [Fault.t] holds the current fault state of one network; the
    {!Network} consults it on every frame. All mutations take effect for
    frames sent after the call. *)

type t

val create : unit -> t
(** No faults, zero loss. *)

val set_down : t -> bool -> unit
(** Total failure: nothing is delivered (frames vanish in the switch). *)

val is_down : t -> bool

val block_send : t -> Addr.node_id -> unit
(** The node's transmit path into this network is broken. *)

val unblock_send : t -> Addr.node_id -> unit

val send_blocked : t -> Addr.node_id -> bool

val block_recv : t -> Addr.node_id -> unit
(** The node's receive path from this network is broken. *)

val unblock_recv : t -> Addr.node_id -> unit

val recv_blocked : t -> Addr.node_id -> bool

val block_pair : t -> src:Addr.node_id -> dst:Addr.node_id -> unit
(** The network cannot deliver from [src] to [dst] (directed). *)

val unblock_pair : t -> src:Addr.node_id -> dst:Addr.node_id -> unit

val set_loss_probability : t -> float -> unit
(** Probability in [0,1] that any given frame delivery is dropped,
    independently per receiver. *)

val loss_probability : t -> float

val set_loss : t -> float -> unit
(** Like {!set_loss_probability}, but clamps the argument to [\[0,1\]]
    instead of raising — the forgiving variant fault campaigns use when
    ramping loss by computed increments. *)

val loss_rate : t -> float
(** The current loss probability; alias of {!loss_probability}, paired
    with {!set_loss} so campaigns can snapshot and restore loss state
    symmetrically. *)

val set_corruption_probability : t -> float -> unit
(** Probability in [0,1] that any given frame delivery is corrupted in
    flight, independently per receiver. What "corrupted" means depends
    on the payload: byte-faithful frames ({!Frame.Bytes}) get a random
    bit flip, truncation or garbage substitution and are still
    delivered — the receiving NIC's CRC/decode check discards them —
    while reference-passing payloads are dropped outright, both
    matching the paper's Sec. 3 observation that the Ethernet checksum
    turns corruption into loss.
    @raise Invalid_argument outside [0,1]. *)

val corruption_probability : t -> float

val set_corruption : t -> float -> unit
(** Clamping variant of {!set_corruption_probability}, like
    {!set_loss}. *)

val delivers : t -> src:Addr.node_id -> dst:Addr.node_id -> bool
(** Whether the deterministic fault state permits delivery on the path
    [src -> dst] (loss probability not included). *)

val heal : t -> unit
(** Clears every fault, the loss probability and the corruption
    probability. *)

val set_notify : t -> (string -> unit) -> unit
(** Install an observer called with a short status string whenever the
    fault state actually changes: [set_down], [set_loss_probability],
    [set_corruption_probability], every [block_send] / [block_recv] /
    [block_pair] and their unblock counterparts, and [heal]. Redundant
    mutations (blocking an already-blocked path, setting an unchanged
    probability) do not notify, so telemetry sees one [Net_status]
    event per transition. The observer must not mutate fault state. *)
