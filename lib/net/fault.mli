(** Injectable network faults, mirroring the paper's fault model (Sec. 3).

    The tolerated fault types are: a node unable to send via a network, a
    node unable to receive via a network, and a network unable to deliver
    from some subset of nodes to some other subset (possibly everything —
    total network failure). Sporadic loss is modelled separately as a
    per-frame drop probability.

    A [Fault.t] holds the current fault state of one network; the
    {!Network} consults it on every frame. All mutations take effect for
    frames sent after the call. *)

type t

val create : unit -> t
(** No faults, zero loss. *)

val set_down : t -> bool -> unit
(** Total failure: nothing is delivered (frames vanish in the switch). *)

val is_down : t -> bool

val block_send : t -> Addr.node_id -> unit
(** The node's transmit path into this network is broken. *)

val unblock_send : t -> Addr.node_id -> unit

val send_blocked : t -> Addr.node_id -> bool

val block_recv : t -> Addr.node_id -> unit
(** The node's receive path from this network is broken. *)

val unblock_recv : t -> Addr.node_id -> unit

val recv_blocked : t -> Addr.node_id -> bool

val block_pair : t -> src:Addr.node_id -> dst:Addr.node_id -> unit
(** The network cannot deliver from [src] to [dst] (directed). *)

val unblock_pair : t -> src:Addr.node_id -> dst:Addr.node_id -> unit

val set_loss_probability : t -> float -> unit
(** Probability in [0,1] that any given frame delivery is dropped,
    independently per receiver. *)

val loss_probability : t -> float

val set_loss : t -> float -> unit
(** Like {!set_loss_probability}, but clamps the argument to [\[0,1\]]
    instead of raising — the forgiving variant fault campaigns use when
    ramping loss by computed increments. *)

val loss_rate : t -> float
(** The current loss probability; alias of {!loss_probability}, paired
    with {!set_loss} so campaigns can snapshot and restore loss state
    symmetrically. *)

val set_corruption_probability : t -> float -> unit
(** Probability in [0,1] that any given frame delivery is corrupted in
    flight, independently per receiver. What "corrupted" means depends
    on the payload: byte-faithful frames ({!Frame.Bytes}) get a random
    bit flip, truncation or garbage substitution and are still
    delivered — the receiving NIC's CRC/decode check discards them —
    while reference-passing payloads are dropped outright, both
    matching the paper's Sec. 3 observation that the Ethernet checksum
    turns corruption into loss.
    @raise Invalid_argument outside [0,1]. *)

val corruption_probability : t -> float

val set_corruption : t -> float -> unit
(** Clamping variant of {!set_corruption_probability}, like
    {!set_loss}. *)

(** {1 Gray-failure dimensions}

    Real redundant networks mostly fail {e gray}: bursty loss, one-way
    degradation, latency inflation, duplicated or reordered frames.
    Every setter below clamps its probabilities to [\[0,1\]] and
    notifies only on actual transitions, like the hard-fault setters.
    All random draws happen in {!Network} on the per-network simulation
    RNG — this module only holds parameters (and the Gilbert–Elliott
    chain state). *)

val set_burst_loss : t -> p_enter:float -> p_exit:float -> unit
(** Gilbert–Elliott two-state bursty loss. In the good state frames
    pass (the uniform {!set_loss_probability} still applies
    independently); in the bad state every frame is dropped. The chain
    steps once per delivery attempt: good->bad with [p_enter], bad->good
    with [p_exit], so the mean burst length is [1/p_exit] deliveries
    and the steady-state loss rate is [p_enter / (p_enter + p_exit)].
    [p_exit] is floored at 0.001 while the model is enabled so every
    burst ends; [p_enter = 0] disables the model and resets the chain
    to the good state. *)

val burst_loss : t -> float * float
(** Current [(p_enter, p_exit)]. *)

val burst_enabled : t -> bool

val in_burst : t -> bool
(** Whether the chain is currently in the bad (all-lost) state. *)

val set_in_burst : t -> bool -> unit
(** Chain-state update, for {!Network}'s coordinator-side draw. Not a
    configuration change: no notification. *)

val set_dir_loss : t -> src:Addr.node_id -> dst:Addr.node_id -> float -> unit
(** Asymmetric per-direction loss: probability that a frame on the
    directed path [src -> dst] is dropped, on top of the symmetric
    processes. [0] clears the entry (restoring the no-hash fast
    path). *)

val dir_loss_probability : t -> src:Addr.node_id -> dst:Addr.node_id -> float

val set_delay : t -> factor:float -> spike_prob:float -> spike_ns:int -> unit
(** Latency inflation: every delivery's propagation latency is
    multiplied by [factor] (clamped to [>= 1.0], so the lookahead bound
    [arrival >= send + latency] is preserved), and with probability
    [spike_prob] an extra spike delay uniform in [\[1, spike_ns\]] is
    added. [factor = 1.0] with [spike_prob = 0] is off. *)

val delay_factor : t -> float

val delay_spike : t -> float * int
(** Current [(spike_prob, spike_ns)]. *)

val set_duplicate : t -> float -> unit
(** Probability that a delivered frame arrives twice (the copy lands
    immediately after the original; SRP's duplicate detection absorbs
    it). *)

val duplicate_probability : t -> float

val set_reorder : t -> float -> unit
(** Probability that a delivered frame is held back past later frames
    — the one gray dimension that deliberately breaks the per-receiver
    FIFO assumption (Sec. 5), exercising SRP's retransmission path. *)

val reorder_probability : t -> float

val delivers : t -> src:Addr.node_id -> dst:Addr.node_id -> bool
(** Whether the deterministic fault state permits delivery on the path
    [src -> dst] (loss probability not included). *)

val heal : t -> unit
(** Clears every fault dimension: down, blocks, loss, corruption, and
    the whole gray state (burst-loss parameters {e and} chain state,
    per-direction loss, delay inflation, duplication, reordering). A
    healed fault is observationally equal to a fresh one. *)

val set_notify : t -> (string -> unit) -> unit
(** Install an observer called with a short status string whenever the
    fault state actually changes: [set_down], [set_loss_probability],
    [set_corruption_probability], every [block_send] / [block_recv] /
    [block_pair] and their unblock counterparts, every gray-dimension
    setter, and [heal]. Redundant
    mutations (blocking an already-blocked path, setting an unchanged
    probability) do not notify, so telemetry sees one [Net_status]
    event per transition. The observer must not mutate fault state. *)
