open Totem_engine

type config = {
  bandwidth_bps : int;
  latency : Vtime.t;
  jitter : Vtime.t;
  arp_delay : Vtime.t;
}

let default_config =
  {
    bandwidth_bps = 100_000_000;
    latency = Vtime.us 30;
    jitter = Vtime.us 5;
    arp_delay = Vtime.us 300;
  }

type t = {
  sim : Sim.t;
  net_id : Addr.net_id;
  config : config;
  rng : Rng.t;
  fault : Fault.t;
  nics : (Addr.node_id, Nic.t) Hashtbl.t;
  (* Receivers sorted by ascending node id, rebuilt on [attach]: the
     broadcast fast path must not fold + sort the nic table per frame. *)
  mutable receivers : Nic.t array;
  arp_cache : (Addr.node_id * Addr.node_id, unit) Hashtbl.t;
  mutable medium_free_at : Vtime.t;
  sent : Stats.Counter.t;
  lost : Stats.Counter.t;
  faulted : Stats.Counter.t;
  corrupted : Stats.Counter.t;
  (* gray-failure dimensions, one counter each *)
  burst_lost : Stats.Counter.t;
  dir_lost : Stats.Counter.t;
  delay_spiked : Stats.Counter.t;
  duplicated : Stats.Counter.t;
  reordered : Stats.Counter.t;
  mutable wire_bytes : int;
  mutable telemetry : Telemetry.t option;
}

let create sim ~id ~config ~rng =
  {
    sim;
    net_id = id;
    config;
    rng;
    fault = Fault.create ();
    nics = Hashtbl.create 16;
    receivers = [||];
    arp_cache = Hashtbl.create 32;
    medium_free_at = Vtime.zero;
    sent = Stats.Counter.create ();
    lost = Stats.Counter.create ();
    faulted = Stats.Counter.create ();
    corrupted = Stats.Counter.create ();
    burst_lost = Stats.Counter.create ();
    dir_lost = Stats.Counter.create ();
    delay_spiked = Stats.Counter.create ();
    duplicated = Stats.Counter.create ();
    reordered = Stats.Counter.create ();
    wire_bytes = 0;
    telemetry = None;
  }

let id t = t.net_id
let config t = t.config
let fault t = t.fault

(* The lookahead bound: jitter is non-negative and the FIFO clamp only
   pushes arrivals later, so no frame arrives earlier than
   [send + latency]. *)
let min_latency t = t.config.latency

let set_telemetry t tl =
  t.telemetry <- Some tl;
  (* Fault-state changes (down/heal/loss) become Net_status events. *)
  Fault.set_notify t.fault (fun status ->
      if Telemetry.active tl then
        Telemetry.emit tl (Telemetry.Net_status { net = t.net_id; status }))

let attach t nic =
  let node = Nic.node nic in
  if Hashtbl.mem t.nics node then
    invalid_arg (Printf.sprintf "Network.attach: node %d already attached" node);
  Hashtbl.replace t.nics node nic;
  let rs = Array.make (Hashtbl.length t.nics) nic in
  let i = ref 0 in
  Hashtbl.iter
    (fun _ nic ->
      rs.(!i) <- nic;
      incr i)
    t.nics;
  Array.sort (fun a b -> Int.compare (Nic.node a) (Nic.node b)) rs;
  t.receivers <- rs

(* Claim the shared medium for one frame; returns the instant the last
   bit leaves the wire. *)
let occupy_medium t frame =
  let start = Vtime.max t.medium_free_at (Sim.now t.sim) in
  let duration = Frame.serialization_time ~bandwidth_bps:t.config.bandwidth_bps frame in
  t.medium_free_at <- Vtime.add start duration;
  Stats.Counter.incr t.sent;
  t.wire_bytes <- t.wire_bytes + Frame.wire_bytes frame;
  t.medium_free_at

(* The corruption fault model (paper Sec. 3): a byte-faithful frame is
   mutated in flight — bit flip, truncation or garbage substitution,
   drawn from the same per-network RNG stream as loss and jitter — and
   still delivered; the receiving NIC's CRC/decode check discards it.
   A reference-passing payload has no bytes to damage, so corruption
   degenerates to the loss the Ethernet checksum would have caused
   ([None]). *)
let corrupt_frame t frame =
  Stats.Counter.incr t.corrupted;
  let kind, payload =
    match frame.Frame.payload with
    | Frame.Bytes s when String.length s > 0 ->
      let len = String.length s in
      (match Rng.int t.rng 3 with
      | 0 ->
        let bit = Rng.int t.rng (8 * len) in
        let b = Bytes.of_string s in
        Bytes.set b (bit / 8)
          (Char.chr (Char.code (Bytes.get b (bit / 8)) lxor (1 lsl (bit land 7))));
        ("flip", Some (Frame.Bytes (Bytes.unsafe_to_string b)))
      | 1 -> ("trunc", Some (Frame.Bytes (String.sub s 0 (Rng.int t.rng len))))
      | _ ->
        let start = Rng.int t.rng len in
        let n = 1 + Rng.int t.rng (len - start) in
        let b = Bytes.of_string s in
        for i = start to start + n - 1 do
          Bytes.set b i (Char.chr (Rng.int t.rng 256))
        done;
        ("garble", Some (Frame.Bytes (Bytes.unsafe_to_string b))))
    | _ -> ("drop", None)
  in
  (match t.telemetry with
  | Some tl when Telemetry.active tl ->
    Telemetry.emit tl
      (Telemetry.Frame_corrupt { net = t.net_id; src = frame.Frame.src; kind })
  | _ -> ());
  match payload with
  | Some payload -> Some { frame with Frame.payload }
  | None -> None

let deliver_to t nic frame ~wire_done =
  let dst = Nic.node nic in
  if not (Fault.delivers t.fault ~src:frame.Frame.src ~dst) then begin
    Stats.Counter.incr t.faulted;
    match t.telemetry with
    | Some tl when Telemetry.active tl ->
      Telemetry.emit tl
        (Telemetry.Frame_blocked { net = t.net_id; src = frame.Frame.src; dst })
    | _ -> ()
  end
  else if
    (* Skip the random draw entirely on loss-free networks: one float
       draw per delivery is pure overhead in the common case. *)
    let p = Fault.loss_probability t.fault in
    p > 0.0 && Rng.bernoulli t.rng p
  then begin
    Stats.Counter.incr t.lost;
    match t.telemetry with
    | Some tl when Telemetry.active tl ->
      Telemetry.emit tl
        (Telemetry.Frame_loss { net = t.net_id; src = frame.Frame.src })
    | _ -> ()
  end
  else begin
    (* Corruption draw, guarded like loss so corruption-free networks
       consume no extra randomness (the RNG stream — and therefore every
       jitter draw downstream — is unchanged when the model is off). *)
    let frame =
      let p = Fault.corruption_probability t.fault in
      if p > 0.0 && Rng.bernoulli t.rng p then corrupt_frame t frame
      else Some frame
    in
    match frame with
    | None -> () (* reference-passing payload: corruption surfaced as loss *)
    | Some frame ->
      let emit_loss counter =
        Stats.Counter.incr counter;
        match t.telemetry with
        | Some tl when Telemetry.active tl ->
          Telemetry.emit tl
            (Telemetry.Frame_loss { net = t.net_id; src = frame.Frame.src })
        | _ -> ()
      in
      (* Gray-failure processes, every draw guarded by its enabled
         predicate so a gray-free network consumes no randomness at all
         — existing seeds and every sim_domains replay bit-for-bit.
         Draw order is fixed: per-direction loss, one Gilbert–Elliott
         chain step, delay spike, duplicate, reorder, then the
         historical jitter draw. *)
      let dir_p =
        Fault.dir_loss_probability t.fault ~src:frame.Frame.src ~dst
      in
      if dir_p > 0.0 && Rng.bernoulli t.rng dir_p then emit_loss t.dir_lost
      else begin
        let bursty =
          Fault.burst_enabled t.fault
          && begin
               (* One chain step per delivery attempt: bursts correlate
                  consecutive deliveries on this network. *)
               let p_enter, p_exit = Fault.burst_loss t.fault in
               let bad =
                 if Fault.in_burst t.fault then
                   not (Rng.bernoulli t.rng p_exit)
                 else Rng.bernoulli t.rng p_enter
               in
               Fault.set_in_burst t.fault bad;
               bad
             end
        in
        if bursty then emit_loss t.burst_lost
        else begin
          (* Latency inflation: the multiplicative factor is
             deterministic; the spike draws. Both only add delay, so
             the lookahead bound (arrival >= send + latency) holds. *)
          let extra =
            let f = Fault.delay_factor t.fault in
            if f > 1.0 then
              Vtime.ns (int_of_float ((f -. 1.0) *. float_of_int t.config.latency))
            else Vtime.zero
          in
          let extra =
            let spike_p, spike_ns = Fault.delay_spike t.fault in
            if spike_p > 0.0 && spike_ns > 0 && Rng.bernoulli t.rng spike_p
            then begin
              Stats.Counter.incr t.delay_spiked;
              Vtime.add extra (Vtime.ns (1 + Rng.int t.rng spike_ns))
            end
            else extra
          in
          let dup =
            let p = Fault.duplicate_probability t.fault in
            p > 0.0 && Rng.bernoulli t.rng p
          in
          let reorder_extra =
            let p = Fault.reorder_probability t.fault in
            if p > 0.0 && Rng.bernoulli t.rng p then begin
              Stats.Counter.incr t.reordered;
              (* held back far enough for later frames to overtake *)
              Vtime.ns (1 + Rng.int t.rng (4 * t.config.latency))
            end
            else Vtime.zero
          in
          let jitter =
            if t.config.jitter = Vtime.zero then Vtime.zero
            else Vtime.ns (Rng.int t.rng (t.config.jitter + 1))
          in
          let arrival =
            Vtime.add (Vtime.add (Vtime.add wire_done t.config.latency) extra)
              jitter
          in
          (* Per-receiver FIFO on a single network (Sec. 5 assumption). *)
          let arrival =
            Vtime.max arrival (Vtime.add (Nic.last_arrival nic) (Vtime.ns 1))
          in
          Nic.note_arrival nic arrival;
          (* Target the receiver's own simulator: under the parallel core
             each NIC schedules on its node's partition, and the lookahead
             guarantee (arrival >= send + latency >= next barrier) makes
             this landing always in that partition's future. Single-domain
             mode is unchanged — every NIC shares the network's sim. *)
          let deliver_at time =
            ignore
              (Sim.schedule_at (Nic.sim nic) ~time (fun () ->
                   Nic.deliver nic frame))
          in
          (* A reordered frame is held back past its FIFO slot — the
             slot itself stays the un-inflated arrival, so later frames
             clamp against it and can overtake. *)
          deliver_at (Vtime.add arrival reorder_extra);
          if dup then begin
            Stats.Counter.incr t.duplicated;
            let copy_at = Vtime.add arrival (Vtime.ns 1) in
            Nic.note_arrival nic copy_at;
            deliver_at copy_at
          end
        end
      end
  end

let medium_accepts t frame =
  (not (Fault.is_down t.fault)) && not (Fault.send_blocked t.fault frame.Frame.src)

let broadcast t frame =
  if medium_accepts t frame then begin
    let wire_done = occupy_medium t frame in
    (* Deterministic receiver order: ascending node id (the cached
       array is kept sorted by [attach]). Zero allocation per frame. *)
    let rs = t.receivers in
    for i = 0 to Array.length rs - 1 do
      let nic = rs.(i) in
      if Nic.node nic <> frame.Frame.src then deliver_to t nic frame ~wire_done
    done
  end

(* The paper's footnote 2: a unicast to a peer whose MAC is not yet
   resolved waits for the ARP exchange, during which later frames to
   *other* recipients can overtake it. Per-recipient FIFO still holds. *)
let arp_resolution t frame ~dst =
  let key = (frame.Frame.src, dst) in
  if Hashtbl.mem t.arp_cache key then Vtime.zero
  else begin
    Hashtbl.replace t.arp_cache key ();
    t.config.arp_delay
  end

let unicast t ~dst frame =
  if medium_accepts t frame then begin
    let arp = arp_resolution t frame ~dst in
    let wire_done = Vtime.add (occupy_medium t frame) arp in
    match Hashtbl.find_opt t.nics dst with
    | None -> Stats.Counter.incr t.faulted
    | Some nic -> deliver_to t nic frame ~wire_done
  end

let frames_sent t = Stats.Counter.value t.sent

let frames_delivered t =
  Array.fold_left (fun acc nic -> acc + Nic.frames_delivered nic) 0 t.receivers
let frames_lost t = Stats.Counter.value t.lost
let frames_faulted t = Stats.Counter.value t.faulted
let frames_corrupted t = Stats.Counter.value t.corrupted
let frames_burst_lost t = Stats.Counter.value t.burst_lost
let frames_dir_lost t = Stats.Counter.value t.dir_lost
let frames_delay_spiked t = Stats.Counter.value t.delay_spiked
let frames_duplicated t = Stats.Counter.value t.duplicated
let frames_reordered t = Stats.Counter.value t.reordered
let bytes_on_wire t = t.wire_bytes
let busy_until t = t.medium_free_at
