open Totem_engine

(* Partitioned-mode send buffer: frames a node asked to transmit
   during a parallel window, held until the barrier. One outbox per
   source node, flattened into parallel growable arrays that are reused
   across flushes — buffering a send allocates nothing — with the slot
   index as the per-source emission seq, so (time, src, index) is the
   unique canonical merge key.

   Entries are naturally time-sorted: a node's sends carry its
   partition clock, which only moves forward inside a window. The one
   exception is a coordinator-originated send (stamped with the
   coordinator clock, which parks at the window start) interleaving
   with the node's own later sends; [sorted] tracks it and the flush
   re-sorts that outbox before merging. Outboxes are only ever touched
   by their own partition's domain during a window and by the
   coordinator at barriers, so none of this state is shared. *)
type outbox = {
  mutable times : Vtime.t array;
  mutable nets : int array;
  mutable dsts : int array; (* -1 = broadcast *)
  mutable frames : Frame.t array;
  mutable len : int;
  mutable earliest : Vtime.t; (* min over buffered entries; meaningless at len = 0 *)
  mutable sorted : bool;
}

let dummy_frame = { Frame.src = 0; payload_bytes = 0; payload = Frame.Opaque "" }

let outbox_create () =
  {
    times = [||];
    nets = [||];
    dsts = [||];
    frames = [||];
    len = 0;
    earliest = Vtime.zero;
    sorted = true;
  }

let outbox_push ob ~time ~net ~dst frame =
  let i = ob.len in
  if i = Array.length ob.times then begin
    let cap = if i = 0 then 64 else 2 * i in
    let times = Array.make cap Vtime.zero in
    let nets = Array.make cap 0 in
    let dsts = Array.make cap 0 in
    let frames = Array.make cap dummy_frame in
    Array.blit ob.times 0 times 0 i;
    Array.blit ob.nets 0 nets 0 i;
    Array.blit ob.dsts 0 dsts 0 i;
    Array.blit ob.frames 0 frames 0 i;
    ob.times <- times;
    ob.nets <- nets;
    ob.dsts <- dsts;
    ob.frames <- frames
  end;
  if i = 0 then ob.earliest <- time
  else begin
    if Vtime.(time < ob.times.(i - 1)) then ob.sorted <- false;
    ob.earliest <- Vtime.min ob.earliest time
  end;
  ob.times.(i) <- time;
  ob.nets.(i) <- net;
  ob.dsts.(i) <- (match dst with None -> -1 | Some d -> d);
  ob.frames.(i) <- frame;
  ob.len <- i + 1

let outbox_clear ob =
  Array.fill ob.frames 0 ob.len dummy_frame;
  ob.len <- 0;
  ob.sorted <- true

(* Stable in-place sort of one outbox by time, preserving push order at
   equal times (the canonical seq). Only taken when a coordinator-
   originated send broke monotonicity, so allocation here is fine. *)
let outbox_sort ob =
  let n = ob.len in
  let order = Array.init n (fun i -> i) in
  let key = Array.copy ob.times in
  Array.stable_sort (fun a b -> Vtime.compare key.(a) key.(b)) order;
  let times = Array.init n (fun i -> ob.times.(order.(i))) in
  let nets = Array.init n (fun i -> ob.nets.(order.(i))) in
  let dsts = Array.init n (fun i -> ob.dsts.(order.(i))) in
  let frames = Array.init n (fun i -> ob.frames.(order.(i))) in
  Array.blit times 0 ob.times 0 n;
  Array.blit nets 0 ob.nets 0 n;
  Array.blit dsts 0 ob.dsts 0 n;
  Array.blit frames 0 ob.frames 0 n;
  ob.sorted <- true

type t = {
  sim : Sim.t;
  networks : Network.t array;
  nics : Nic.t option array array; (* nics.(node).(net) *)
  num_nodes : int;
  telemetry : Telemetry.t option;
  (* Sending-NIC serialization hook: in byte-wire mode the cluster
     installs the codec's frame encoder here, so every payload crosses
     the fabric as checksummed bytes. A closure keeps the net layer
     free of any dependency on the protocol codec. *)
  mutable wire_encoder : (Frame.t -> Frame.t) option;
  (* One-slot memo of the last (input, encoded) pair, keyed on the
     physical identity of the input frame: the RRP styles broadcast the
     same frame value on every network back to back, so the encoder
     runs once per logical frame instead of once per network. *)
  mutable memoize : bool;
  mutable last_out : (Frame.t * Frame.t) option;
  (* Parallel core: per-node partition simulators (NICs schedule
     arrivals on their node's partition) and per-node outboxes (sends
     buffer during windows and flush at barriers in canonical order).
     None = classic single-simulator mode, the default. *)
  mutable partitions : Sim.t array option;
  mutable node_telemetry : Telemetry.t array option;
  outboxes : outbox array;
  (* Earliest buffered send across all outboxes, [Vtime.never] when all
     are empty: the exchange polls [outbox_next] once per window and
     once per event inside adaptive solo windows, so it must be a field
     read, not a fold. Maintained by [enqueue] / [flush_outboxes]. *)
  mutable out_earliest : Vtime.t;
  (* Scratch cursors for the k-way barrier merge, preallocated so the
     per-window flush allocates nothing. *)
  out_cursors : int array;
}

let create sim ~num_nodes ~num_nets ?(config = Network.default_config) ?configs
    ?telemetry () =
  if num_nodes <= 0 then invalid_arg "Fabric.create: need at least one node";
  if num_nets <= 0 then invalid_arg "Fabric.create: need at least one network";
  (match configs with
  | Some cs when Array.length cs <> num_nets ->
    invalid_arg "Fabric.create: configs length mismatch"
  | _ -> ());
  let config_of i =
    match configs with Some cs -> cs.(i) | None -> config
  in
  let networks =
    Array.init num_nets (fun i ->
        Network.create sim ~id:i ~config:(config_of i) ~rng:(Sim.split_rng sim))
  in
  (match telemetry with
  | Some tl -> Array.iter (fun n -> Network.set_telemetry n tl) networks
  | None -> ());
  {
    sim;
    networks;
    nics = Array.make_matrix num_nodes num_nets None;
    num_nodes;
    telemetry;
    wire_encoder = None;
    memoize = true;
    last_out = None;
    partitions = None;
    node_telemetry = None;
    outboxes = Array.init num_nodes (fun _ -> outbox_create ());
    out_earliest = Vtime.never;
    out_cursors = Array.make num_nodes 0;
  }

let set_partitions t ?node_telemetry sims =
  if Array.length sims <> t.num_nodes then
    invalid_arg "Fabric.set_partitions: one simulator per node required";
  (match node_telemetry with
  | Some tls when Array.length tls <> t.num_nodes ->
    invalid_arg "Fabric.set_partitions: one telemetry hub per node required"
  | _ -> ());
  if Array.exists (fun row -> Array.exists Option.is_some row) t.nics then
    invalid_arg "Fabric.set_partitions: must be called before attach_node";
  t.partitions <- Some sims;
  t.node_telemetry <- node_telemetry

let partitioned t = t.partitions <> None

let min_latency t =
  Array.fold_left
    (fun acc net -> Vtime.min acc (Network.min_latency net))
    (Network.min_latency t.networks.(0))
    t.networks

let set_wire_encoder t ?(memoize = true) f =
  t.wire_encoder <- Some f;
  t.memoize <- memoize;
  t.last_out <- None

let outgoing t frame =
  match t.wire_encoder with
  | None -> frame
  | Some f ->
    if not t.memoize then f frame
    else begin
      match t.last_out with
      | Some (input, encoded) when input == frame -> encoded
      | _ ->
        let encoded = f frame in
        t.last_out <- Some (frame, encoded);
        encoded
    end

let num_nodes t = t.num_nodes
let num_nets t = Array.length t.networks
let network t i = t.networks.(i)
let fault t i = Network.fault t.networks.(i)

let nic t ~node ~net =
  match t.nics.(node).(net) with
  | Some nic -> nic
  | None -> invalid_arg (Printf.sprintf "Fabric.nic: node %d not attached" node)

let attach_node t ~node ?cpu ?recv_cost ?buffer_bytes handler =
  (* In partitioned mode the NIC lives on its node's partition: arrival
     events land in the node's own queue, and drop telemetry buffers
     through the node's hub so it merges canonically. *)
  let nic_sim =
    match t.partitions with Some sims -> sims.(node) | None -> t.sim
  in
  let nic_tl =
    match t.node_telemetry with
    | Some tls -> Some tls.(node)
    | None -> t.telemetry
  in
  Array.iteri
    (fun net_id network ->
      let nic = Nic.create nic_sim ~node ~net:net_id ?buffer_bytes () in
      (match nic_tl with
      | Some tl -> Nic.set_telemetry nic tl
      | None -> ());
      Nic.set_receiver nic ?cpu ?recv_cost (fun frame ->
          handler ~net:net_id frame);
      Network.attach network nic;
      t.nics.(node).(net_id) <- Some nic)
    t.networks

(* Partitioned sends buffer in the sender's outbox. The timestamp is
   the sender partition's clock — exact for node-originated sends (the
   partition clock reads the current event's time) — maxed with the
   coordinator clock so coordinator-originated sends (bootstrap,
   harness injections) are stamped with the coordinator event's time. *)
let enqueue t sims ~net ~dst frame =
  let src = frame.Frame.src in
  let time = Vtime.max (Sim.now sims.(src)) (Sim.now t.sim) in
  if Vtime.(time < t.out_earliest) then t.out_earliest <- time;
  outbox_push t.outboxes.(src) ~time ~net ~dst frame

let broadcast t ~net frame =
  match t.partitions with
  | None -> Network.broadcast t.networks.(net) (outgoing t frame)
  | Some sims -> enqueue t sims ~net ~dst:None frame

let unicast t ~net ~dst frame =
  match t.partitions with
  | None -> Network.unicast t.networks.(net) ~dst (outgoing t frame)
  | Some sims -> enqueue t sims ~net ~dst:(Some dst) frame

(* Earliest buffered send, so the exchange's idle-jump cannot leap over
   work created outside a window (e.g. the bootstrap token at t=0), and
   its skip-flush / adaptive-cap checks see pending traffic in O(1). *)
let outbox_next t = t.out_earliest

(* Barrier flush: merge all outboxes in canonical (time, src, seq)
   order and play each send through the classic medium path — shared
   medium occupancy, loss/corruption/jitter draws from the per-network
   RNG stream, delivery scheduling — with the coordinator clock set to
   the send's own timestamp. Because the order is a pure function of
   simulation content, the whole network layer stays deterministic
   under any domain count. Each outbox is already time-sorted (seq is
   the slot index), so the canonical order is a k-way walk over
   per-node cursors — no sort, no scratch allocation. The wire-encoder
   memo keeps paying off: merging whole (time, src) runs in seq order
   keeps a frame's per-network copies adjacent. *)
let replay_one t ob cur =
  Sim.unsafe_set_clock t.sim ob.times.(cur);
  let frame = outgoing t ob.frames.(cur) in
  let net = ob.nets.(cur) in
  match ob.dsts.(cur) with
  | -1 -> Network.broadcast t.networks.(net) frame
  | dst -> Network.unicast t.networks.(net) ~dst frame

let flush_outboxes t =
  let boxes = t.outboxes in
  let n = Array.length boxes in
  let nonempty = ref 0 in
  let last = ref 0 in
  for i = 0 to n - 1 do
    let ob = boxes.(i) in
    if ob.len > 0 then begin
      incr nonempty;
      last := i;
      if not ob.sorted then outbox_sort ob
    end
  done;
  if !nonempty = 1 then begin
    (* The common window under token rotation: one sender. Its sorted
       outbox already is the canonical order — replay linearly, no
       merge state at all. *)
    let ob = boxes.(!last) in
    for cur = 0 to ob.len - 1 do
      replay_one t ob cur
    done;
    outbox_clear ob
  end
  else if !nonempty > 0 then begin
    let curs = t.out_cursors in
    Array.fill curs 0 n 0;
    let continue = ref true in
    while !continue do
      let best = ref (-1) in
      let best_time = ref Vtime.zero in
      for i = 0 to n - 1 do
        let ob = boxes.(i) in
        if curs.(i) < ob.len then begin
          let tm = ob.times.(curs.(i)) in
          (* strict <: at equal times the lower node id goes first *)
          if !best < 0 || Vtime.(tm < !best_time) then begin
            best := i;
            best_time := tm
          end
        end
      done;
      if !best < 0 then continue := false
      else begin
        let ob = boxes.(!best) in
        let cur = curs.(!best) in
        curs.(!best) <- cur + 1;
        replay_one t ob cur
      end
    done;
    Array.iter outbox_clear boxes
  end;
  t.out_earliest <- Vtime.never

let iter_networks t f = Array.iter f t.networks
