open Totem_engine

type t = {
  sim : Sim.t;
  networks : Network.t array;
  nics : Nic.t option array array; (* nics.(node).(net) *)
  num_nodes : int;
  telemetry : Telemetry.t option;
  (* Sending-NIC serialization hook: in byte-wire mode the cluster
     installs the codec's frame encoder here, so every payload crosses
     the fabric as checksummed bytes. A closure keeps the net layer
     free of any dependency on the protocol codec. *)
  mutable wire_encoder : (Frame.t -> Frame.t) option;
  (* One-slot memo of the last (input, encoded) pair, keyed on the
     physical identity of the input frame: the RRP styles broadcast the
     same frame value on every network back to back, so the encoder
     runs once per logical frame instead of once per network. *)
  mutable memoize : bool;
  mutable last_out : (Frame.t * Frame.t) option;
}

let create sim ~num_nodes ~num_nets ?(config = Network.default_config) ?configs
    ?telemetry () =
  if num_nodes <= 0 then invalid_arg "Fabric.create: need at least one node";
  if num_nets <= 0 then invalid_arg "Fabric.create: need at least one network";
  (match configs with
  | Some cs when Array.length cs <> num_nets ->
    invalid_arg "Fabric.create: configs length mismatch"
  | _ -> ());
  let config_of i =
    match configs with Some cs -> cs.(i) | None -> config
  in
  let networks =
    Array.init num_nets (fun i ->
        Network.create sim ~id:i ~config:(config_of i) ~rng:(Sim.split_rng sim))
  in
  (match telemetry with
  | Some tl -> Array.iter (fun n -> Network.set_telemetry n tl) networks
  | None -> ());
  {
    sim;
    networks;
    nics = Array.make_matrix num_nodes num_nets None;
    num_nodes;
    telemetry;
    wire_encoder = None;
    memoize = true;
    last_out = None;
  }

let set_wire_encoder t ?(memoize = true) f =
  t.wire_encoder <- Some f;
  t.memoize <- memoize;
  t.last_out <- None

let outgoing t frame =
  match t.wire_encoder with
  | None -> frame
  | Some f ->
    if not t.memoize then f frame
    else begin
      match t.last_out with
      | Some (input, encoded) when input == frame -> encoded
      | _ ->
        let encoded = f frame in
        t.last_out <- Some (frame, encoded);
        encoded
    end

let num_nodes t = t.num_nodes
let num_nets t = Array.length t.networks
let network t i = t.networks.(i)
let fault t i = Network.fault t.networks.(i)

let nic t ~node ~net =
  match t.nics.(node).(net) with
  | Some nic -> nic
  | None -> invalid_arg (Printf.sprintf "Fabric.nic: node %d not attached" node)

let attach_node t ~node ?cpu ?recv_cost ?buffer_bytes handler =
  Array.iteri
    (fun net_id network ->
      let nic = Nic.create t.sim ~node ~net:net_id ?buffer_bytes () in
      (match t.telemetry with
      | Some tl -> Nic.set_telemetry nic tl
      | None -> ());
      Nic.set_receiver nic ?cpu ?recv_cost (fun frame ->
          handler ~net:net_id frame);
      Network.attach network nic;
      t.nics.(node).(net_id) <- Some nic)
    t.networks

let broadcast t ~net frame = Network.broadcast t.networks.(net) (outgoing t frame)

let unicast t ~net ~dst frame =
  Network.unicast t.networks.(net) ~dst (outgoing t frame)

let iter_networks t f = Array.iter f t.networks
