open Totem_engine

(* Partitioned-mode send record: a frame a node asked to transmit
   during a parallel window, held until the barrier. [e_seq] is the
   per-source emission index, so (e_time, e_src, e_seq) is the unique
   canonical merge key. *)
type entry = {
  e_time : Vtime.t;
  e_src : int;
  e_seq : int;
  e_net : int;
  e_dst : int option; (* None = broadcast *)
  e_frame : Frame.t;
}

type outbox = { mutable items : entry list (* newest first *); mutable seq : int }

type t = {
  sim : Sim.t;
  networks : Network.t array;
  nics : Nic.t option array array; (* nics.(node).(net) *)
  num_nodes : int;
  telemetry : Telemetry.t option;
  (* Sending-NIC serialization hook: in byte-wire mode the cluster
     installs the codec's frame encoder here, so every payload crosses
     the fabric as checksummed bytes. A closure keeps the net layer
     free of any dependency on the protocol codec. *)
  mutable wire_encoder : (Frame.t -> Frame.t) option;
  (* One-slot memo of the last (input, encoded) pair, keyed on the
     physical identity of the input frame: the RRP styles broadcast the
     same frame value on every network back to back, so the encoder
     runs once per logical frame instead of once per network. *)
  mutable memoize : bool;
  mutable last_out : (Frame.t * Frame.t) option;
  (* Parallel core: per-node partition simulators (NICs schedule
     arrivals on their node's partition) and per-node outboxes (sends
     buffer during windows and flush at barriers in canonical order).
     None = classic single-simulator mode, the default. *)
  mutable partitions : Sim.t array option;
  mutable node_telemetry : Telemetry.t array option;
  outboxes : outbox array;
}

let create sim ~num_nodes ~num_nets ?(config = Network.default_config) ?configs
    ?telemetry () =
  if num_nodes <= 0 then invalid_arg "Fabric.create: need at least one node";
  if num_nets <= 0 then invalid_arg "Fabric.create: need at least one network";
  (match configs with
  | Some cs when Array.length cs <> num_nets ->
    invalid_arg "Fabric.create: configs length mismatch"
  | _ -> ());
  let config_of i =
    match configs with Some cs -> cs.(i) | None -> config
  in
  let networks =
    Array.init num_nets (fun i ->
        Network.create sim ~id:i ~config:(config_of i) ~rng:(Sim.split_rng sim))
  in
  (match telemetry with
  | Some tl -> Array.iter (fun n -> Network.set_telemetry n tl) networks
  | None -> ());
  {
    sim;
    networks;
    nics = Array.make_matrix num_nodes num_nets None;
    num_nodes;
    telemetry;
    wire_encoder = None;
    memoize = true;
    last_out = None;
    partitions = None;
    node_telemetry = None;
    outboxes = Array.init num_nodes (fun _ -> { items = []; seq = 0 });
  }

let set_partitions t ?node_telemetry sims =
  if Array.length sims <> t.num_nodes then
    invalid_arg "Fabric.set_partitions: one simulator per node required";
  (match node_telemetry with
  | Some tls when Array.length tls <> t.num_nodes ->
    invalid_arg "Fabric.set_partitions: one telemetry hub per node required"
  | _ -> ());
  if Array.exists (fun row -> Array.exists Option.is_some row) t.nics then
    invalid_arg "Fabric.set_partitions: must be called before attach_node";
  t.partitions <- Some sims;
  t.node_telemetry <- node_telemetry

let partitioned t = t.partitions <> None

let min_latency t =
  Array.fold_left
    (fun acc net -> Vtime.min acc (Network.min_latency net))
    (Network.min_latency t.networks.(0))
    t.networks

let set_wire_encoder t ?(memoize = true) f =
  t.wire_encoder <- Some f;
  t.memoize <- memoize;
  t.last_out <- None

let outgoing t frame =
  match t.wire_encoder with
  | None -> frame
  | Some f ->
    if not t.memoize then f frame
    else begin
      match t.last_out with
      | Some (input, encoded) when input == frame -> encoded
      | _ ->
        let encoded = f frame in
        t.last_out <- Some (frame, encoded);
        encoded
    end

let num_nodes t = t.num_nodes
let num_nets t = Array.length t.networks
let network t i = t.networks.(i)
let fault t i = Network.fault t.networks.(i)

let nic t ~node ~net =
  match t.nics.(node).(net) with
  | Some nic -> nic
  | None -> invalid_arg (Printf.sprintf "Fabric.nic: node %d not attached" node)

let attach_node t ~node ?cpu ?recv_cost ?buffer_bytes handler =
  (* In partitioned mode the NIC lives on its node's partition: arrival
     events land in the node's own queue, and drop telemetry buffers
     through the node's hub so it merges canonically. *)
  let nic_sim =
    match t.partitions with Some sims -> sims.(node) | None -> t.sim
  in
  let nic_tl =
    match t.node_telemetry with
    | Some tls -> Some tls.(node)
    | None -> t.telemetry
  in
  Array.iteri
    (fun net_id network ->
      let nic = Nic.create nic_sim ~node ~net:net_id ?buffer_bytes () in
      (match nic_tl with
      | Some tl -> Nic.set_telemetry nic tl
      | None -> ());
      Nic.set_receiver nic ?cpu ?recv_cost (fun frame ->
          handler ~net:net_id frame);
      Network.attach network nic;
      t.nics.(node).(net_id) <- Some nic)
    t.networks

(* Partitioned sends buffer in the sender's outbox. The timestamp is
   the sender partition's clock — exact for node-originated sends (the
   partition clock reads the current event's time) — maxed with the
   coordinator clock so coordinator-originated sends (bootstrap,
   harness injections) are stamped with the coordinator event's time. *)
let enqueue t ~net ~dst frame =
  let src = frame.Frame.src in
  let sims = Option.get t.partitions in
  let time = Vtime.max (Sim.now sims.(src)) (Sim.now t.sim) in
  let ob = t.outboxes.(src) in
  let seq = ob.seq in
  ob.seq <- seq + 1;
  ob.items <-
    { e_time = time; e_src = src; e_seq = seq; e_net = net; e_dst = dst; e_frame = frame }
    :: ob.items

let broadcast t ~net frame =
  match t.partitions with
  | None -> Network.broadcast t.networks.(net) (outgoing t frame)
  | Some _ -> enqueue t ~net ~dst:None frame

let unicast t ~net ~dst frame =
  match t.partitions with
  | None -> Network.unicast t.networks.(net) ~dst (outgoing t frame)
  | Some _ -> enqueue t ~net ~dst:(Some dst) frame

(* Earliest buffered send, so the exchange's idle-jump cannot leap over
   work created outside a window (e.g. the bootstrap token at t=0). *)
let outbox_next t =
  Array.fold_left
    (fun acc ob ->
      List.fold_left
        (fun acc e ->
          match acc with
          | None -> Some e.e_time
          | Some m -> Some (Vtime.min m e.e_time))
        acc ob.items)
    None t.outboxes

(* Barrier flush: merge all outboxes in canonical (time, src, seq)
   order and play each send through the classic medium path — shared
   medium occupancy, loss/corruption/jitter draws from the per-network
   RNG stream, delivery scheduling — with the coordinator clock set to
   the send's own timestamp. Because the order is a pure function of
   simulation content, the whole network layer stays deterministic
   under any domain count. The wire-encoder memo keeps paying off: the
   per-source seq keeps a frame's per-network copies adjacent after the
   sort. *)
let flush_outboxes t =
  let total = Array.fold_left (fun acc ob -> acc + List.length ob.items) 0 t.outboxes in
  if total > 0 then begin
    let scratch = Array.make total None in
    let i = ref 0 in
    Array.iter
      (fun ob ->
        List.iter
          (fun e ->
            scratch.(!i) <- Some e;
            incr i)
          ob.items;
        ob.items <- [])
      t.outboxes;
    Array.sort
      (fun a b ->
        match a, b with
        | Some a, Some b ->
          let c = compare a.e_time b.e_time in
          if c <> 0 then c
          else
            let c = compare a.e_src b.e_src in
            if c <> 0 then c else compare a.e_seq b.e_seq
        | _ -> assert false)
      scratch;
    Array.iter
      (function
        | None -> ()
        | Some e ->
          Sim.unsafe_set_clock t.sim e.e_time;
          let frame = outgoing t e.e_frame in
          (match e.e_dst with
          | None -> Network.broadcast t.networks.(e.e_net) frame
          | Some dst -> Network.unicast t.networks.(e.e_net) ~dst frame))
      scratch
  end

let iter_networks t f = Array.iter f t.networks
