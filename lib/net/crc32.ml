(* CRC-32 (IEEE 802.3): reflected polynomial 0xEDB88320, init and final
   xor 0xFFFFFFFF — the checksum the Ethernet FCS uses. Slicing-by-8:
   eight precomputed tables let the hot loop fold eight input bytes per
   iteration (two 32-bit little-endian words composed from unsafe byte
   reads), with a byte-at-a-time tail for the remainder. All arithmetic
   is in the native int with a 32-bit mask, so no boxed Int32 on the
   per-frame path, and every table is built eagerly at module
   initialization — nothing is forced per call. *)

let mask = 0xFFFF_FFFF

(* tables.(0) is the classic byte-at-a-time table; tables.(k) advances a
   byte's contribution k further positions through the register:
   tables.(k).(n) = (tables.(k-1).(n) >> 8) ^ tables.(0).(low byte). *)
let tables =
  let t0 =
    Array.init 256 (fun n ->
        let c = ref n in
        for _ = 0 to 7 do
          c := if !c land 1 <> 0 then 0xEDB8_8320 lxor (!c lsr 1) else !c lsr 1
        done;
        !c)
  in
  let ts = Array.make 8 t0 in
  for k = 1 to 7 do
    ts.(k) <-
      Array.init 256 (fun n ->
          let prev = ts.(k - 1).(n) in
          (prev lsr 8) lxor t0.(prev land 0xff))
  done;
  ts

let t0 = tables.(0)
let t1 = tables.(1)
let t2 = tables.(2)
let t3 = tables.(3)
let t4 = tables.(4)
let t5 = tables.(5)
let t6 = tables.(6)
let t7 = tables.(7)

(* The folding core. One concrete loop over Bytes.t — the string entry
   point reads through [Bytes.unsafe_of_string] (zero-copy, and the
   view is only ever read), so the byte reads compile to direct
   unsafe_get loads rather than calls through a passed-in accessor
   (this build has no flambda to specialize one away). Table reads use
   unsafe_get: every index is masked to [0, 255] (the register never
   exceeds 32 bits, so [lsr 24] is already in range) against 256-entry
   tables. Unaligned 64-bit loads (Bytes.get_int64_ne) would halve the
   loads again but change results by endianness; byte-composed words
   keep the fold portable. *)
let[@inline] tbl t i = Array.unsafe_get t i
let[@inline] get src i = Char.code (Bytes.unsafe_get src i)

let run crc src ~pos ~len =
  let c = ref (crc lxor mask) in
  let i = ref pos in
  let stop = pos + len in
  while stop - !i >= 8 do
    let b = !i in
    let w0 =
      get src b
      lor (get src (b + 1) lsl 8)
      lor (get src (b + 2) lsl 16)
      lor (get src (b + 3) lsl 24)
    in
    let w1 =
      get src (b + 4)
      lor (get src (b + 5) lsl 8)
      lor (get src (b + 6) lsl 16)
      lor (get src (b + 7) lsl 24)
    in
    let x = !c lxor w0 in
    c :=
      tbl t7 (x land 0xff)
      lxor tbl t6 ((x lsr 8) land 0xff)
      lxor tbl t5 ((x lsr 16) land 0xff)
      lxor tbl t4 (x lsr 24)
      lxor tbl t3 (w1 land 0xff)
      lxor tbl t2 ((w1 lsr 8) land 0xff)
      lxor tbl t1 ((w1 lsr 16) land 0xff)
      lxor tbl t0 (w1 lsr 24);
    i := b + 8
  done;
  while !i < stop do
    c := tbl t0 ((!c lxor get src !i) land 0xff) lxor (!c lsr 8);
    incr i
  done;
  !c lxor mask land mask

let update crc s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32.update";
  run crc (Bytes.unsafe_of_string s) ~pos ~len

let update_bytes crc b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Crc32.update_bytes";
  run crc b ~pos ~len

let digest s = update 0 s ~pos:0 ~len:(String.length s)

let append b crc =
  Buffer.add_char b (Char.chr (crc land 0xff));
  Buffer.add_char b (Char.chr ((crc lsr 8) land 0xff));
  Buffer.add_char b (Char.chr ((crc lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((crc lsr 24) land 0xff))

let trailer_bytes = 4

let write_trailer b ~pos crc =
  if pos < 0 || pos + trailer_bytes > Bytes.length b then
    invalid_arg "Crc32.write_trailer";
  Bytes.unsafe_set b pos (Char.unsafe_chr (crc land 0xff));
  Bytes.unsafe_set b (pos + 1) (Char.unsafe_chr ((crc lsr 8) land 0xff));
  Bytes.unsafe_set b (pos + 2) (Char.unsafe_chr ((crc lsr 16) land 0xff));
  Bytes.unsafe_set b (pos + 3) (Char.unsafe_chr ((crc lsr 24) land 0xff))

let read_trailer s =
  let n = String.length s in
  if n < trailer_bytes then invalid_arg "Crc32.read_trailer";
  Char.code s.[n - 4]
  lor (Char.code s.[n - 3] lsl 8)
  lor (Char.code s.[n - 2] lsl 16)
  lor (Char.code s.[n - 1] lsl 24)

let check s =
  String.length s >= trailer_bytes
  && update 0 s ~pos:0 ~len:(String.length s - trailer_bytes) = read_trailer s
