(* CRC-32 (IEEE 802.3): reflected polynomial 0xEDB88320, init and final
   xor 0xFFFFFFFF — the checksum the Ethernet FCS uses. Table-driven,
   one table shared process-wide; all arithmetic in the native int with
   a 32-bit mask, so no boxed Int32 on the per-frame path. *)

let mask = 0xFFFF_FFFF

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 <> 0 then 0xEDB8_8320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let update crc s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32.update";
  let tbl = Lazy.force table in
  let c = ref (crc lxor mask) in
  for i = pos to pos + len - 1 do
    c := tbl.((!c lxor Char.code (String.unsafe_get s i)) land 0xff)
         lxor (!c lsr 8)
  done;
  !c lxor mask land mask

let digest s = update 0 s ~pos:0 ~len:(String.length s)

let append b crc =
  Buffer.add_char b (Char.chr (crc land 0xff));
  Buffer.add_char b (Char.chr ((crc lsr 8) land 0xff));
  Buffer.add_char b (Char.chr ((crc lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((crc lsr 24) land 0xff))

let trailer_bytes = 4

let read_trailer s =
  let n = String.length s in
  if n < trailer_bytes then invalid_arg "Crc32.read_trailer";
  Char.code s.[n - 4]
  lor (Char.code s.[n - 3] lsl 8)
  lor (Char.code s.[n - 2] lsl 16)
  lor (Char.code s.[n - 1] lsl 24)

let check s =
  String.length s >= trailer_bytes
  && update 0 s ~pos:0 ~len:(String.length s - trailer_bytes) = read_trailer s
