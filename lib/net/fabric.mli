(** The redundant-network fabric: N independent LANs connecting M nodes.

    This is the substrate the Totem RRP coordinates. Every node owns one
    NIC per network; networks share nothing (separate media, separate
    fault state), which is exactly the redundancy assumption the paper
    makes about its dual-Ethernet testbed. *)

type t

val create :
  Totem_engine.Sim.t ->
  num_nodes:int ->
  num_nets:int ->
  ?config:Network.config ->
  ?configs:Network.config array ->
  ?telemetry:Totem_engine.Telemetry.t ->
  unit ->
  t
(** [configs], when given, sets per-network parameters (length must be
    [num_nets]); otherwise every network uses [config] (default
    {!Network.default_config}). [telemetry], when given, is propagated
    to every network and NIC so the net layer emits structured events
    (frame loss/block, buffer drops, fault-state changes). *)

val num_nodes : t -> int

val num_nets : t -> int

val network : t -> Addr.net_id -> Network.t

val fault : t -> Addr.net_id -> Fault.t

val nic : t -> node:Addr.node_id -> net:Addr.net_id -> Nic.t

val attach_node :
  t ->
  node:Addr.node_id ->
  ?cpu:Totem_engine.Cpu.t ->
  ?recv_cost:(Frame.t -> Totem_engine.Vtime.t) ->
  ?buffer_bytes:int ->
  (net:Addr.net_id -> Frame.t -> unit) ->
  unit
(** Creates the node's NICs on all networks and installs the handler,
    which is told which network each frame arrived on — the information
    the RRP layer dispatches on. *)

val set_wire_encoder : t -> ?memoize:bool -> (Frame.t -> Frame.t) -> unit
(** Installs a sending-NIC serialization hook applied to every frame
    before it reaches a network: byte-wire mode passes the codec's
    frame encoder (payload -> {!Frame.Bytes} image with CRC-32 trailer)
    here. The hook must preserve [src] and [payload_bytes] so fault and
    timing semantics are unchanged.

    With [memoize] (the default), the fabric keeps a one-slot memo of
    the last (input, encoded) pair keyed on the {e physical} identity
    of the input frame: active replication's back-to-back broadcast of
    one frame value across all N networks then runs the encoder once,
    not N times. The hook must therefore be a pure function of the
    frame value — pass [~memoize:false] for an encoder with
    per-invocation effects. *)

val broadcast : t -> net:Addr.net_id -> Frame.t -> unit

val unicast : t -> net:Addr.net_id -> dst:Addr.node_id -> Frame.t -> unit

val iter_networks : t -> (Network.t -> unit) -> unit

(** {1 Parallel simulator core}

    Under the exchange layer ({!Totem_engine.Exchange}) the fabric is
    the cross-partition delivery path: NICs schedule arrivals on their
    node's partition, sends buffer in per-node outboxes during parallel
    windows, and the barrier flush replays them through the classic
    medium path in canonical (time, source node, seq) order — making
    medium occupancy and the per-network RNG streams independent of the
    domain count. *)

val set_partitions :
  t -> ?node_telemetry:Totem_engine.Telemetry.t array -> Totem_engine.Sim.t array -> unit
(** [set_partitions t sims] switches the fabric to partitioned mode:
    [sims.(node)] is node's partition simulator (NICs created by
    {!attach_node} schedule there), and [node_telemetry.(node)], when
    given, is the node's buffered hub for NIC drop events. Must be
    called before any {!attach_node}.
    @raise Invalid_argument on length mismatch or after attachment. *)

val partitioned : t -> bool

val min_latency : t -> Totem_engine.Vtime.t
(** Minimum {!Network.min_latency} across all networks: the largest
    safe conservative lookahead for the exchange. *)

val outbox_next : t -> Totem_engine.Vtime.t
(** Earliest timestamp among buffered sends; [Vtime.never] when none.
    Allocation-free — the exchange polls this once per window and once
    per event inside an adaptive solo window. *)

val flush_outboxes : t -> unit
(** Barrier hook: replay all buffered sends in canonical order,
    setting the coordinator clock to each send's own timestamp
    (restored by the exchange afterwards). *)
