type t = {
  mutable down : bool;
  send_blocked : (Addr.node_id, unit) Hashtbl.t;
  recv_blocked : (Addr.node_id, unit) Hashtbl.t;
  pair_blocked : (Addr.node_id * Addr.node_id, unit) Hashtbl.t;
  mutable loss_prob : float;
  mutable corrupt_prob : float;
  mutable notify : (string -> unit) option;
}

let create () =
  {
    down = false;
    send_blocked = Hashtbl.create 8;
    recv_blocked = Hashtbl.create 8;
    pair_blocked = Hashtbl.create 8;
    loss_prob = 0.0;
    corrupt_prob = 0.0;
    notify = None;
  }

let set_notify t f = t.notify <- Some f

let notify t msg = match t.notify with Some f -> f msg | None -> ()

let set_down t b =
  if t.down <> b then notify t (if b then "down" else "up");
  t.down <- b

let is_down t = t.down

(* Blocking is idempotent; notify only on actual transitions so the
   Net_status telemetry stream stays one event per state change. *)
let block_send t n =
  if not (Hashtbl.mem t.send_blocked n) then begin
    Hashtbl.replace t.send_blocked n ();
    notify t (Printf.sprintf "send blocked N%d" n)
  end

let unblock_send t n =
  if Hashtbl.mem t.send_blocked n then begin
    Hashtbl.remove t.send_blocked n;
    notify t (Printf.sprintf "send unblocked N%d" n)
  end

let send_blocked t n = Hashtbl.mem t.send_blocked n

let block_recv t n =
  if not (Hashtbl.mem t.recv_blocked n) then begin
    Hashtbl.replace t.recv_blocked n ();
    notify t (Printf.sprintf "recv blocked N%d" n)
  end

let unblock_recv t n =
  if Hashtbl.mem t.recv_blocked n then begin
    Hashtbl.remove t.recv_blocked n;
    notify t (Printf.sprintf "recv unblocked N%d" n)
  end

let recv_blocked t n = Hashtbl.mem t.recv_blocked n

let block_pair t ~src ~dst =
  if not (Hashtbl.mem t.pair_blocked (src, dst)) then begin
    Hashtbl.replace t.pair_blocked (src, dst) ();
    notify t (Printf.sprintf "pair blocked N%d->N%d" src dst)
  end

let unblock_pair t ~src ~dst =
  if Hashtbl.mem t.pair_blocked (src, dst) then begin
    Hashtbl.remove t.pair_blocked (src, dst);
    notify t (Printf.sprintf "pair unblocked N%d->N%d" src dst)
  end

let set_loss_probability t p =
  if p < 0.0 || p > 1.0 then invalid_arg "Fault.set_loss_probability";
  if t.loss_prob <> p then notify t (Printf.sprintf "loss probability %.3g" p);
  t.loss_prob <- p

let loss_probability t = t.loss_prob

let set_loss t p =
  set_loss_probability t (if p < 0.0 then 0.0 else if p > 1.0 then 1.0 else p)

let loss_rate = loss_probability

let set_corruption_probability t p =
  if p < 0.0 || p > 1.0 then invalid_arg "Fault.set_corruption_probability";
  if t.corrupt_prob <> p then
    notify t (Printf.sprintf "corruption probability %.3g" p);
  t.corrupt_prob <- p

let corruption_probability t = t.corrupt_prob

let set_corruption t p =
  set_corruption_probability t
    (if p < 0.0 then 0.0 else if p > 1.0 then 1.0 else p)

let delivers t ~src ~dst =
  (* Checked once per frame delivery: guard each table by its O(1)
     length so the fault-free fast path does no hashing and allocates
     no key tuple. *)
  (not t.down)
  && (Hashtbl.length t.send_blocked = 0 || not (send_blocked t src))
  && (Hashtbl.length t.recv_blocked = 0 || not (recv_blocked t dst))
  && (Hashtbl.length t.pair_blocked = 0
      || not (Hashtbl.mem t.pair_blocked (src, dst)))

let heal t =
  if
    t.down || t.loss_prob > 0.0 || t.corrupt_prob > 0.0
    || Hashtbl.length t.send_blocked > 0
    || Hashtbl.length t.recv_blocked > 0
    || Hashtbl.length t.pair_blocked > 0
  then notify t "healed";
  t.down <- false;
  Hashtbl.reset t.send_blocked;
  Hashtbl.reset t.recv_blocked;
  Hashtbl.reset t.pair_blocked;
  t.loss_prob <- 0.0;
  t.corrupt_prob <- 0.0
