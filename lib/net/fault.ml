type t = {
  mutable down : bool;
  send_blocked : (Addr.node_id, unit) Hashtbl.t;
  recv_blocked : (Addr.node_id, unit) Hashtbl.t;
  pair_blocked : (Addr.node_id * Addr.node_id, unit) Hashtbl.t;
  mutable loss_prob : float;
  mutable corrupt_prob : float;
  (* Gray-failure dimensions. The Gilbert–Elliott chain: in the good
     state every frame passes (the uniform [loss_prob] still applies
     independently); in the bad state every frame is dropped. The chain
     steps once per delivery attempt, so a burst is correlated across
     consecutive deliveries on the network. *)
  mutable burst_p_enter : float;
  mutable burst_p_exit : float;
  mutable burst_bad : bool;
  dir_loss : (Addr.node_id * Addr.node_id, float) Hashtbl.t;
  mutable delay_factor : float;  (* >= 1.0; 1.0 = off *)
  mutable spike_prob : float;
  mutable spike_ns : int;  (* spike magnitude: uniform in [1, spike_ns] *)
  mutable dup_prob : float;
  mutable reorder_prob : float;
  mutable notify : (string -> unit) option;
}

let create () =
  {
    down = false;
    send_blocked = Hashtbl.create 8;
    recv_blocked = Hashtbl.create 8;
    pair_blocked = Hashtbl.create 8;
    loss_prob = 0.0;
    corrupt_prob = 0.0;
    burst_p_enter = 0.0;
    burst_p_exit = 1.0;
    burst_bad = false;
    dir_loss = Hashtbl.create 8;
    delay_factor = 1.0;
    spike_prob = 0.0;
    spike_ns = 0;
    dup_prob = 0.0;
    reorder_prob = 0.0;
    notify = None;
  }

let set_notify t f = t.notify <- Some f

let notify t msg = match t.notify with Some f -> f msg | None -> ()

let set_down t b =
  if t.down <> b then notify t (if b then "down" else "up");
  t.down <- b

let is_down t = t.down

(* Blocking is idempotent; notify only on actual transitions so the
   Net_status telemetry stream stays one event per state change. *)
let block_send t n =
  if not (Hashtbl.mem t.send_blocked n) then begin
    Hashtbl.replace t.send_blocked n ();
    notify t (Printf.sprintf "send blocked N%d" n)
  end

let unblock_send t n =
  if Hashtbl.mem t.send_blocked n then begin
    Hashtbl.remove t.send_blocked n;
    notify t (Printf.sprintf "send unblocked N%d" n)
  end

let send_blocked t n = Hashtbl.mem t.send_blocked n

let block_recv t n =
  if not (Hashtbl.mem t.recv_blocked n) then begin
    Hashtbl.replace t.recv_blocked n ();
    notify t (Printf.sprintf "recv blocked N%d" n)
  end

let unblock_recv t n =
  if Hashtbl.mem t.recv_blocked n then begin
    Hashtbl.remove t.recv_blocked n;
    notify t (Printf.sprintf "recv unblocked N%d" n)
  end

let recv_blocked t n = Hashtbl.mem t.recv_blocked n

let block_pair t ~src ~dst =
  if not (Hashtbl.mem t.pair_blocked (src, dst)) then begin
    Hashtbl.replace t.pair_blocked (src, dst) ();
    notify t (Printf.sprintf "pair blocked N%d->N%d" src dst)
  end

let unblock_pair t ~src ~dst =
  if Hashtbl.mem t.pair_blocked (src, dst) then begin
    Hashtbl.remove t.pair_blocked (src, dst);
    notify t (Printf.sprintf "pair unblocked N%d->N%d" src dst)
  end

let set_loss_probability t p =
  if p < 0.0 || p > 1.0 then invalid_arg "Fault.set_loss_probability";
  if t.loss_prob <> p then notify t (Printf.sprintf "loss probability %.3g" p);
  t.loss_prob <- p

let loss_probability t = t.loss_prob

let clamp01 p = if p < 0.0 then 0.0 else if p > 1.0 then 1.0 else p

let set_loss t p = set_loss_probability t (clamp01 p)

let loss_rate = loss_probability

let set_corruption_probability t p =
  if p < 0.0 || p > 1.0 then invalid_arg "Fault.set_corruption_probability";
  if t.corrupt_prob <> p then
    notify t (Printf.sprintf "corruption probability %.3g" p);
  t.corrupt_prob <- p

let corruption_probability t = t.corrupt_prob

let set_corruption t p = set_corruption_probability t (clamp01 p)

(* --- gray-failure dimensions ---------------------------------------- *)

let set_burst_loss t ~p_enter ~p_exit =
  let p_enter = clamp01 p_enter in
  (* a zero exit probability would trap the chain in the bad state
     forever; floor it so every burst eventually ends *)
  let p_exit =
    let p = clamp01 p_exit in
    if p_enter > 0.0 && p <= 0.0 then 0.001 else p
  in
  if t.burst_p_enter <> p_enter || t.burst_p_exit <> p_exit then
    notify t (Printf.sprintf "burst loss enter %.3g exit %.3g" p_enter p_exit);
  t.burst_p_enter <- p_enter;
  t.burst_p_exit <- p_exit;
  (* disabling the model also resets the chain, so re-enabling later
     starts from the good state like a fresh fault *)
  if p_enter = 0.0 then t.burst_bad <- false

let burst_loss t = (t.burst_p_enter, t.burst_p_exit)

let burst_enabled t = t.burst_p_enter > 0.0

let in_burst t = t.burst_bad

let set_in_burst t b = t.burst_bad <- b

let set_dir_loss t ~src ~dst p =
  let p = clamp01 p in
  let current =
    match Hashtbl.find_opt t.dir_loss (src, dst) with Some p -> p | None -> 0.0
  in
  if current <> p then begin
    notify t (Printf.sprintf "dir loss N%d->N%d %.3g" src dst p);
    if p = 0.0 then Hashtbl.remove t.dir_loss (src, dst)
    else Hashtbl.replace t.dir_loss (src, dst) p
  end

let dir_loss_probability t ~src ~dst =
  (* O(1)-length guard, like [delivers]: the fault-free fast path does
     no hashing and allocates no key tuple *)
  if Hashtbl.length t.dir_loss = 0 then 0.0
  else
    match Hashtbl.find_opt t.dir_loss (src, dst) with
    | Some p -> p
    | None -> 0.0

let set_delay t ~factor ~spike_prob ~spike_ns =
  let factor = if factor < 1.0 then 1.0 else factor in
  let spike_prob = clamp01 spike_prob in
  let spike_ns = if spike_ns < 0 then 0 else spike_ns in
  if
    t.delay_factor <> factor || t.spike_prob <> spike_prob
    || t.spike_ns <> spike_ns
  then
    notify t
      (Printf.sprintf "delay factor %.3g spike %.3g/%dns" factor spike_prob
         spike_ns);
  t.delay_factor <- factor;
  t.spike_prob <- spike_prob;
  t.spike_ns <- spike_ns

let delay_factor t = t.delay_factor

let delay_spike t = (t.spike_prob, t.spike_ns)

let set_duplicate t p =
  let p = clamp01 p in
  if t.dup_prob <> p then notify t (Printf.sprintf "duplicate %.3g" p);
  t.dup_prob <- p

let duplicate_probability t = t.dup_prob

let set_reorder t p =
  let p = clamp01 p in
  if t.reorder_prob <> p then notify t (Printf.sprintf "reorder %.3g" p);
  t.reorder_prob <- p

let reorder_probability t = t.reorder_prob

let delivers t ~src ~dst =
  (* Checked once per frame delivery: guard each table by its O(1)
     length so the fault-free fast path does no hashing and allocates
     no key tuple. *)
  (not t.down)
  && (Hashtbl.length t.send_blocked = 0 || not (send_blocked t src))
  && (Hashtbl.length t.recv_blocked = 0 || not (recv_blocked t dst))
  && (Hashtbl.length t.pair_blocked = 0
      || not (Hashtbl.mem t.pair_blocked (src, dst)))

let heal t =
  if
    t.down || t.loss_prob > 0.0 || t.corrupt_prob > 0.0
    || Hashtbl.length t.send_blocked > 0
    || Hashtbl.length t.recv_blocked > 0
    || Hashtbl.length t.pair_blocked > 0
    || t.burst_p_enter > 0.0 || t.burst_bad
    || Hashtbl.length t.dir_loss > 0
    || t.delay_factor > 1.0 || t.spike_prob > 0.0 || t.spike_ns > 0
    || t.dup_prob > 0.0 || t.reorder_prob > 0.0
  then notify t "healed";
  t.down <- false;
  Hashtbl.reset t.send_blocked;
  Hashtbl.reset t.recv_blocked;
  Hashtbl.reset t.pair_blocked;
  t.loss_prob <- 0.0;
  t.corrupt_prob <- 0.0;
  t.burst_p_enter <- 0.0;
  t.burst_p_exit <- 1.0;
  t.burst_bad <- false;
  Hashtbl.reset t.dir_loss;
  t.delay_factor <- 1.0;
  t.spike_prob <- 0.0;
  t.spike_ns <- 0;
  t.dup_prob <- 0.0;
  t.reorder_prob <- 0.0
