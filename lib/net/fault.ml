type t = {
  mutable down : bool;
  send_blocked : (Addr.node_id, unit) Hashtbl.t;
  recv_blocked : (Addr.node_id, unit) Hashtbl.t;
  pair_blocked : (Addr.node_id * Addr.node_id, unit) Hashtbl.t;
  mutable loss_prob : float;
  mutable notify : (string -> unit) option;
}

let create () =
  {
    down = false;
    send_blocked = Hashtbl.create 8;
    recv_blocked = Hashtbl.create 8;
    pair_blocked = Hashtbl.create 8;
    loss_prob = 0.0;
    notify = None;
  }

let set_notify t f = t.notify <- Some f

let notify t msg = match t.notify with Some f -> f msg | None -> ()

let set_down t b =
  if t.down <> b then notify t (if b then "down" else "up");
  t.down <- b

let is_down t = t.down

let block_send t n = Hashtbl.replace t.send_blocked n ()
let unblock_send t n = Hashtbl.remove t.send_blocked n
let send_blocked t n = Hashtbl.mem t.send_blocked n

let block_recv t n = Hashtbl.replace t.recv_blocked n ()
let unblock_recv t n = Hashtbl.remove t.recv_blocked n
let recv_blocked t n = Hashtbl.mem t.recv_blocked n

let block_pair t ~src ~dst = Hashtbl.replace t.pair_blocked (src, dst) ()
let unblock_pair t ~src ~dst = Hashtbl.remove t.pair_blocked (src, dst)

let set_loss_probability t p =
  if p < 0.0 || p > 1.0 then invalid_arg "Fault.set_loss_probability";
  if t.loss_prob <> p then notify t (Printf.sprintf "loss probability %.3g" p);
  t.loss_prob <- p

let loss_probability t = t.loss_prob

let set_loss t p =
  set_loss_probability t (if p < 0.0 then 0.0 else if p > 1.0 then 1.0 else p)

let loss_rate = loss_probability

let delivers t ~src ~dst =
  (* Checked once per frame delivery: guard each table by its O(1)
     length so the fault-free fast path does no hashing and allocates
     no key tuple. *)
  (not t.down)
  && (Hashtbl.length t.send_blocked = 0 || not (send_blocked t src))
  && (Hashtbl.length t.recv_blocked = 0 || not (recv_blocked t dst))
  && (Hashtbl.length t.pair_blocked = 0
      || not (Hashtbl.mem t.pair_blocked (src, dst)))

let heal t =
  if
    t.down || t.loss_prob > 0.0
    || Hashtbl.length t.send_blocked > 0
    || Hashtbl.length t.recv_blocked > 0
    || Hashtbl.length t.pair_blocked > 0
  then notify t "healed";
  t.down <- false;
  Hashtbl.reset t.send_blocked;
  Hashtbl.reset t.recv_blocked;
  Hashtbl.reset t.pair_blocked;
  t.loss_prob <- 0.0
