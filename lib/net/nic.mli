(** A network interface: one node's attachment point to one network.

    Models the receive path the paper's testbed had: frames arriving
    from the wire land in a bounded socket buffer (64 Kbytes under Linux
    2.2, Sec. 8) and are drained serially by the node's CPU. When the
    buffer is full, arriving frames are dropped — the omission faults the
    Totem retransmission machinery exists to repair. *)

type t

val create :
  Totem_engine.Sim.t ->
  node:Addr.node_id ->
  net:Addr.net_id ->
  ?buffer_bytes:int ->
  unit ->
  t
(** Default [buffer_bytes] is 65536. *)

val node : t -> Addr.node_id

val net : t -> Addr.net_id

val sim : t -> Totem_engine.Sim.t
(** The simulator this NIC schedules on — in partitioned mode the
    owning node's partition, so the network layer can target delivery
    events at the receiver's own event queue. *)

val set_telemetry : t -> Totem_engine.Telemetry.t -> unit
(** Emit [Buffer_drop] events for buffer-full drops. *)

val set_receiver :
  t ->
  ?cpu:Totem_engine.Cpu.t ->
  ?recv_cost:(Frame.t -> Totem_engine.Vtime.t) ->
  (Frame.t -> unit) ->
  unit
(** Installs the upper-layer handler. When [cpu] is given, each arrival
    occupies the socket buffer until the CPU has spent [recv_cost frame]
    processing it, and the handler runs at that completion instant;
    otherwise the handler runs at the arrival instant. *)

val arrive : t -> Frame.t -> unit
(** Called by the network at the frame's arrival time. *)

val deliver : t -> Frame.t -> unit
(** [arrive] plus the per-NIC delivered count — the thunk the network
    schedules at arrival time. Kept per-NIC so the counter is only ever
    written by the receiving node's partition. *)

val frames_delivered : t -> int
(** Deliveries that fired at this NIC, before buffer admission. *)

val last_arrival : t -> Totem_engine.Vtime.t
(** Most recent scheduled arrival; used by the network to keep per-NIC
    FIFO ordering (the paper's assumption that UDP over one Ethernet
    preserves per-recipient order, Sec. 5). *)

val note_arrival : t -> Totem_engine.Vtime.t -> unit

val frames_received : t -> int

val frames_dropped_buffer : t -> int

val buffer_in_use : t -> int
