(** CRC-32 as used by the Ethernet frame check sequence (IEEE 802.3):
    reflected polynomial [0xEDB88320], initial value and final xor
    [0xFFFFFFFF]. The byte-faithful wire mode appends this checksum to
    every serialized frame and verifies it at the receiving NIC, which
    is what turns in-flight corruption into the frame {e discard} the
    paper's fault model assumes (Sec. 3).

    Self-contained — no external dependency; checksums are plain [int]s
    in [0, 0xFFFFFFFF]. Test vector: [digest "123456789" =
    0xCBF43926]. *)

val digest : string -> int
(** CRC-32 of the whole string. *)

val update : int -> string -> pos:int -> len:int -> int
(** [update crc s ~pos ~len] extends [crc] (a previous [digest]/[update]
    result, or [0] to start) over the given substring.
    @raise Invalid_argument on an out-of-bounds range. *)

val trailer_bytes : int
(** 4 — the checksum occupies four bytes, little-endian, at the end of
    the frame image. *)

val append : Buffer.t -> int -> unit
(** Append a checksum as the 4-byte little-endian trailer. *)

val read_trailer : string -> int
(** The checksum stored in the last four bytes.
    @raise Invalid_argument if the string is shorter than the trailer. *)

val check : string -> bool
(** Whether the last four bytes are the correct CRC-32 of everything
    before them; [false] for strings too short to carry a trailer. *)
