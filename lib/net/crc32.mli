(** CRC-32 as used by the Ethernet frame check sequence (IEEE 802.3):
    reflected polynomial [0xEDB88320], initial value and final xor
    [0xFFFFFFFF]. The byte-faithful wire mode appends this checksum to
    every serialized frame and verifies it at the receiving NIC, which
    is what turns in-flight corruption into the frame {e discard} the
    paper's fault model assumes (Sec. 3).

    Self-contained — no external dependency; checksums are plain [int]s
    in [0, 0xFFFFFFFF]. Test vector: [digest "123456789" =
    0xCBF43926].

    The implementation is slicing-by-8: eight tables, built once at
    module initialization, fold eight input bytes per loop iteration —
    bitwise identical to the byte-at-a-time construction (the test
    suite holds a qcheck property against a byte-at-a-time
    reference). *)

val digest : string -> int
(** CRC-32 of the whole string. *)

val update : int -> string -> pos:int -> len:int -> int
(** [update crc s ~pos ~len] extends [crc] (a previous [digest]/[update]
    result, or [0] to start) over the given substring.
    @raise Invalid_argument on an out-of-bounds range. *)

val update_bytes : int -> Bytes.t -> pos:int -> len:int -> int
(** [update] over a [Bytes.t] — the single-pass frame encoder checksums
    its image in place, before the buffer is frozen into a string. *)

val trailer_bytes : int
(** 4 — the checksum occupies four bytes, little-endian, at the end of
    the frame image. *)

val append : Buffer.t -> int -> unit
(** Append a checksum as the 4-byte little-endian trailer. *)

val write_trailer : Bytes.t -> pos:int -> int -> unit
(** [write_trailer b ~pos crc] writes the 4-byte little-endian trailer
    at [pos] — the in-place counterpart of {!append} for the
    preallocated single-pass encode path.
    @raise Invalid_argument if the trailer would not fit. *)

val read_trailer : string -> int
(** The checksum stored in the last four bytes.
    @raise Invalid_argument if the string is shorter than the trailer. *)

val check : string -> bool
(** Whether the last four bytes are the correct CRC-32 of everything
    before them; [false] for strings too short to carry a trailer. *)
