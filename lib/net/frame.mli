(** Ethernet frame model and MTU accounting.

    The paper (Sec. 8): the maximum Ethernet frame is 1518 bytes, of
    which 94 bytes are consumed by the Ethernet header and trailer, the
    IPv4 header, the UDP header and the Totem packet header, leaving a
    maximum payload of 1424 bytes per frame. Those constants shape the
    measured throughput curves (the peaks at 700 and 1400 byte
    messages), so they are first-class here. *)

val max_frame_bytes : int
(** 1518. *)

val header_overhead_bytes : int
(** 94 — Ethernet + IPv4 + UDP + Totem packet header. *)

val max_payload_bytes : int
(** 1424 = 1518 - 94. *)

val min_frame_bytes : int
(** 64 — Ethernet minimum; shorter frames are padded on the wire. *)

type payload = ..
(** Extensible so upper layers define their own packet kinds without the
    network depending on them. *)

type payload += Opaque of string
(** A convenience payload for tests and examples. *)

type payload += Bytes of string
(** The byte-faithful wire image of a serialized payload, including its
    4-byte CRC-32 trailer (see {!Crc32}). Produced by the sending-side
    wire encoder when a cluster runs in wire mode; it is the only
    payload kind the corruption fault model can mutate in flight rather
    than drop. [payload_bytes] still records the {e charged} UDP payload
    size, not [String.length] — the CRC models the Ethernet FCS, which
    is already part of {!header_overhead_bytes}, so wire mode changes
    no timing. *)

type t = {
  src : Addr.node_id;
  payload_bytes : int;  (** size of the UDP payload carried, <= 1424 *)
  payload : payload;
}

val make : src:Addr.node_id -> payload_bytes:int -> payload -> t
(** @raise Invalid_argument if [payload_bytes] is negative or exceeds
    {!max_payload_bytes}. *)

val wire_bytes : t -> int
(** Bytes occupying the wire: payload + 94 overhead, padded to the
    64-byte minimum frame. *)

val preamble_ifg_bytes : int
(** 20 — preamble (8) plus inter-frame gap (12); occupies the wire but
    is not part of the frame, so it counts in {!serialization_time} but
    not in {!wire_bytes}. *)

val serialization_time : bandwidth_bps:int -> t -> Totem_engine.Vtime.t
(** Time to clock the frame (plus preamble and inter-frame gap) onto a
    link of the given bandwidth. *)
