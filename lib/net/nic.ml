open Totem_engine

type receiver = {
  cpu : Cpu.t option;
  recv_cost : Frame.t -> Vtime.t;
  handler : Frame.t -> unit;
}

type t = {
  sim : Sim.t;
  node_id : Addr.node_id;
  net_id : Addr.net_id;
  buffer_bytes : int;
  mutable receiver : receiver option;
  mutable in_use : int;
  mutable last_arrival : Vtime.t;
  received : Stats.Counter.t;
  dropped : Stats.Counter.t;
  (* Deliveries that fired at this NIC (before buffer admission). Held
     per-NIC rather than per-network so partitioned mode counts without
     cross-domain writes; the network sums its receivers. *)
  delivered : Stats.Counter.t;
  mutable telemetry : Telemetry.t option;
}

let create sim ~node ~net ?(buffer_bytes = 65536) () =
  {
    sim;
    node_id = node;
    net_id = net;
    buffer_bytes;
    receiver = None;
    in_use = 0;
    last_arrival = Vtime.zero;
    received = Stats.Counter.create ();
    dropped = Stats.Counter.create ();
    delivered = Stats.Counter.create ();
    telemetry = None;
  }

let node t = t.node_id
let net t = t.net_id
let sim t = t.sim
let set_telemetry t tl = t.telemetry <- Some tl

let set_receiver t ?cpu ?(recv_cost = fun _ -> Vtime.zero) handler =
  t.receiver <- Some { cpu; recv_cost; handler }

let arrive t frame =
  match t.receiver with
  | None -> Stats.Counter.incr t.dropped
  | Some { cpu = None; recv_cost = _; handler } ->
    Stats.Counter.incr t.received;
    handler frame
  | Some { cpu = Some cpu; recv_cost; handler } ->
    let size = Frame.wire_bytes frame in
    if t.in_use + size > t.buffer_bytes then begin
      Stats.Counter.incr t.dropped;
      match t.telemetry with
      | Some tl when Telemetry.active tl ->
        Telemetry.emit tl
          (Telemetry.Buffer_drop
             { node = t.node_id; net = t.net_id; bytes = size })
      | _ -> ()
    end
    else begin
      t.in_use <- t.in_use + size;
      Stats.Counter.incr t.received;
      Cpu.submit cpu ~cost:(recv_cost frame) (fun () ->
          t.in_use <- t.in_use - size;
          handler frame)
    end

let deliver t frame =
  Stats.Counter.incr t.delivered;
  arrive t frame

let last_arrival t = t.last_arrival
let note_arrival t time = t.last_arrival <- Vtime.max t.last_arrival time
let frames_delivered t = Stats.Counter.value t.delivered
let frames_received t = Stats.Counter.value t.received
let frames_dropped_buffer t = Stats.Counter.value t.dropped
let buffer_in_use t = t.in_use
