let max_frame_bytes = 1518
let header_overhead_bytes = 94
let max_payload_bytes = max_frame_bytes - header_overhead_bytes
let min_frame_bytes = 64

type payload = ..

type payload += Opaque of string

type payload += Bytes of string

type t = {
  src : Addr.node_id;
  payload_bytes : int;
  payload : payload;
}

let make ~src ~payload_bytes payload =
  if payload_bytes < 0 then invalid_arg "Frame.make: negative payload size";
  if payload_bytes > max_payload_bytes then
    invalid_arg
      (Printf.sprintf "Frame.make: payload %d exceeds max %d" payload_bytes
         max_payload_bytes);
  { src; payload_bytes; payload }

let wire_bytes t =
  max min_frame_bytes (t.payload_bytes + header_overhead_bytes)

let preamble_ifg_bytes = 20

let serialization_time ~bandwidth_bps t =
  if bandwidth_bps <= 0 then invalid_arg "Frame.serialization_time: bandwidth";
  let bits = 8 * (wire_bytes t + preamble_ifg_bytes) in
  (* ns = bits * 1e9 / bps, computed in int without overflow for any
     realistic bandwidth. *)
  Totem_engine.Vtime.ns (bits * 1_000_000_000 / bandwidth_bps)
