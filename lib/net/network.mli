(** One local-area network: a broadcast domain with a shared 100 Mbit/s
    medium, a propagation/switch latency, sporadic loss, and injectable
    faults.

    Broadcast traffic through a switch or hub occupies every port, so the
    whole domain is modelled as a single serial resource: frames queue
    for the medium in send order and each occupies it for its
    serialization time. Per-receiver arrival order on one network is
    FIFO (the paper's Sec. 5 assumption); different networks are
    independent resources, so cross-network reordering arises naturally
    when their loads differ. *)

type config = {
  bandwidth_bps : int;  (** e.g. 100_000_000 for the paper's Ethernets *)
  latency : Totem_engine.Vtime.t;
      (** propagation + switch forwarding delay *)
  jitter : Totem_engine.Vtime.t;
      (** uniform extra delay in [0, jitter], drawn per delivery *)
  arp_delay : Totem_engine.Vtime.t;
      (** extra delay on the first unicast between a (sender, receiver)
          pair — the paper's footnote 2: a sender "might still be
          waiting for the ARP packet", which is why UDP order across
          different recipients is not FIFO *)
}

val default_config : config
(** 100 Mbit/s, 30 us latency, 5 us jitter, 300 us first-contact ARP —
    a switched fast Ethernet. *)

type t

val create :
  Totem_engine.Sim.t -> id:Addr.net_id -> config:config -> rng:Totem_engine.Rng.t -> t

val id : t -> Addr.net_id

val config : t -> config

val fault : t -> Fault.t
(** The network's mutable fault state, for injection by scenarios. *)

val min_latency : t -> Totem_engine.Vtime.t
(** Lower bound on the send-to-arrival delay of any frame: the
    configured latency (jitter is non-negative and the per-receiver
    FIFO clamp only delays further). This is the conservative lookahead
    the parallel simulator core synchronizes on. *)

val set_telemetry : t -> Totem_engine.Telemetry.t -> unit
(** Emit structured events for dropped deliveries ([Frame_loss],
    [Frame_blocked]), in-flight corruption ([Frame_corrupt]) and
    fault-state changes ([Net_status]). *)

val attach : t -> Nic.t -> unit
(** @raise Invalid_argument if a NIC for the same node is attached. *)

val broadcast : t -> Frame.t -> unit
(** Sends to every attached NIC except the sender's own. Consumed by the
    medium even when every delivery is subsequently dropped. A frame
    from a send-blocked node, or on a downed network, never reaches the
    medium. *)

val unicast : t -> dst:Addr.node_id -> Frame.t -> unit
(** Sends to one NIC; same medium and fault rules as {!broadcast}. *)

(** Wire-level counters, for monitors and reports. *)

val frames_sent : t -> int
(** Frames that reached the medium. *)

val frames_delivered : t -> int

val frames_lost : t -> int
(** Dropped by the sporadic-loss process. *)

val frames_faulted : t -> int
(** Dropped by deterministic fault state. *)

val frames_corrupted : t -> int
(** Hit by the corruption process ({!Fault.set_corruption_probability}):
    byte-faithful frames were damaged and delivered anyway (the
    receiver's CRC discards them); reference-passing frames were
    dropped, since corruption without bytes degenerates to loss. *)

(** Gray-failure counters, one per fault dimension (see the gray
    setters in {!Fault}). All draws happen here, coordinator-side, on
    the per-network simulation RNG, each guarded by its
    enabled-predicate — a gray-free network consumes no randomness, so
    existing seeds and every [sim_domains >= 1] replay bit-for-bit. *)

val frames_burst_lost : t -> int
(** Dropped by the Gilbert–Elliott chain's bad state. *)

val frames_dir_lost : t -> int
(** Dropped by the per-direction (asymmetric) loss process. *)

val frames_delay_spiked : t -> int
(** Deliveries that drew a latency spike on top of the inflation
    factor. *)

val frames_duplicated : t -> int
(** Deliveries that arrived twice. *)

val frames_reordered : t -> int
(** Deliveries held back past their FIFO slot so later frames could
    overtake. *)

val bytes_on_wire : t -> int

val busy_until : t -> Totem_engine.Vtime.t
(** When the medium drains; used to measure utilisation. *)
