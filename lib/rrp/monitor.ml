type t = {
  counts : int array;
  received : int array;  (* raw receptions: no catch-up, no rejoin *)
  threshold : int;
}

let create ~num_nets ~threshold =
  if num_nets <= 0 then invalid_arg "Monitor.create: num_nets";
  if threshold <= 0 then invalid_arg "Monitor.create: threshold";
  {
    counts = Array.make num_nets 0;
    received = Array.make num_nets 0;
    threshold;
  }

let note t ~net =
  t.counts.(net) <- t.counts.(net) + 1;
  t.received.(net) <- t.received.(net) + 1

let count t ~net = t.counts.(net)

let received t ~net = t.received.(net)

let maximum t = Array.fold_left max t.counts.(0) t.counts

let lagging t =
  let m = maximum t in
  let out = ref [] in
  Array.iteri
    (fun i c -> if m - c > t.threshold then out := (i, m - c) :: !out)
    t.counts;
  List.rev !out

let catch_up t =
  let m = maximum t in
  Array.iteri (fun i c -> if c < m then t.counts.(i) <- c + 1) t.counts

let rejoin t ~net = t.counts.(net) <- maximum t

let behind t ~net = maximum t - t.counts.(net)
