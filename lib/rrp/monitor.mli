(** The network monitor module of Fig. 5.

    One module counts receptions per network for one traffic source.
    Passive replication runs M+1 of them per node: one per sending node
    for message traffic and one for token traffic (Sec. 6). If the
    count for some network falls more than [threshold] behind the best
    network's count, that network is declared faulty (requirement P4).

    To keep sporadic losses accumulated over a long run from condemning
    a healthy network (requirement P5), lagging counts are periodically
    nudged toward the maximum — the paper's "slowly increasing recvCount
    for networks that lag behind", time-driven variant. *)

type t

val create : num_nets:int -> threshold:int -> t

val note : t -> net:Totem_net.Addr.net_id -> unit
(** Count one reception. *)

val count : t -> net:Totem_net.Addr.net_id -> int
(** The comparison count {!lagging} judges: receptions plus every
    {!catch_up} nudge and {!rejoin} forgiveness the network got. *)

val received : t -> net:Totem_net.Addr.net_id -> int
(** Raw receptions only — {!catch_up} and {!rejoin} never move it. The
    probation liveness check reads this: a network must actually
    deliver, not merely ride the decay nudges. *)

val lagging : t -> (Totem_net.Addr.net_id * int) list
(** Networks whose count is more than [threshold] behind the maximum,
    with how far behind they are. *)

val catch_up : t -> unit
(** One decay step: every lagging network's count is incremented by
    one. *)

val rejoin : t -> net:Totem_net.Addr.net_id -> unit
(** Forgive the network's accumulated lag: set its count to the current
    maximum. Called when a condemned network enters probation, so the
    stale deficit that condemned it does not instantly re-condemn it
    (the P5 concern, applied to reinstatement). *)

val behind : t -> net:Totem_net.Addr.net_id -> int
(** How far the network's count trails the maximum (0 for the best). *)
