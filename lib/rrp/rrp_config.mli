(** Tunables of the Totem RRP layer.

    Each parameter corresponds to a mechanism the paper names but leaves
    as an implementation constant; the defaults follow the paper where
    it gives a number (the passive token timer was 10 ms in the
    experiments, Sec. 6) and are otherwise sized for a LAN. *)

type t = {
  active_token_timeout : Totem_engine.Vtime.t;
      (** Fig. 2: deadline for the remaining copies of a token once the
          first copy arrives; progress guarantee A4 *)
  active_problem_threshold : int;
      (** Fig. 2: consecutive-ish token misses before a network is
          declared faulty; detection requirement A5 *)
  active_decay_interval : Totem_engine.Vtime.t;
      (** "a network's problem counter is decremented periodically" —
          the anti-false-positive mechanism of requirement A6 *)
  passive_token_timeout : Totem_engine.Vtime.t;
      (** Fig. 4: how long a token waits in the token buffer for missing
          messages; 10 ms in the paper's experiments *)
  passive_monitor_threshold : int;
      (** Fig. 5: reception-count difference that declares a network
          faulty; detection requirement P4 *)
  passive_catchup_interval : Totem_engine.Vtime.t;
      (** "slowly increasing recvCount for networks that lag behind" —
          the anti-false-positive mechanism of requirement P5 *)
  reinstate : bool;
      (** Enable the condemned-network reinstatement protocol: condemned
          networks are periodically returned to service on probation and
          rejoin for good after enough clean token rotations. Off by
          default — the paper's protocol condemns permanently, and every
          pre-existing experiment replays bit-for-bit with [false]. *)
  reinstate_backoff : Totem_engine.Vtime.t;
      (** Delay before the first probation attempt after a condemnation;
          doubles per flap (reinstate-then-recondemn cycle) up to
          {!field-reinstate_backoff_max} — the flap-damping mechanism *)
  reinstate_backoff_max : Totem_engine.Vtime.t;
      (** Cap on the exponential probation backoff *)
  reinstate_clean_rotations : int;
      (** Consecutive clean token rotations a network on probation must
          survive before it is reinstated *)
  reinstate_flap_limit : int;
      (** After this many flaps the network is condemned for good: no
          further probation attempts, so an oscillating (gray) network
          converges to the condemned state *)
}

val default : t
