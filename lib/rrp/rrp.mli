(** The Totem Redundant Ring Protocol layer — public entry point.

    One [Rrp.t] per node sits between that node's Totem SRP engine and
    the redundant-network fabric, implementing the chosen replication
    style (Sec. 4). Construction order: create the layer, build the SRP
    over {!lower}, then {!connect} the SRP's entry points back in.

    {[
      let rrp = Rrp.create sim ~fabric ~node ~const ~config ~style () in
      let srp = Srp.create sim ~cpu ~const ~me:node ~lower:(Rrp.lower rrp) cbs in
      Rrp.connect rrp
        ~deliver_data:(Srp.recv_data srp)
        ~deliver_token:(Srp.token_arrived srp)
        ~deliver_join:(Srp.recv_join srp)
        ~my_aru:(fun () -> Srp.my_aru srp)
        ~on_fault_report:handle_report;
      Fabric.attach_node fabric ~node ... (Rrp.frame_received rrp)
    ]} *)

type t

val create :
  Totem_engine.Sim.t ->
  fabric:Totem_net.Fabric.t ->
  node:Totem_net.Addr.node_id ->
  const:Totem_srp.Const.t ->
  config:Rrp_config.t ->
  style:Style.t ->
  ?trace:Totem_engine.Trace.t ->
  unit ->
  t
(** @raise Invalid_argument if the style does not fit the fabric's
    network count ({!Style.validate}). *)

val style : t -> Style.t

val node : t -> Totem_net.Addr.node_id

val lower : t -> Totem_srp.Lower.t
(** What the SRP sends through. *)

val connect :
  t ->
  deliver_data:(Totem_srp.Wire.packet -> unit) ->
  deliver_token:(Totem_srp.Token.t -> unit) ->
  deliver_join:(Totem_srp.Wire.join -> unit) ->
  deliver_probe:(Totem_srp.Wire.probe -> unit) ->
  deliver_commit:(Totem_srp.Wire.commit -> unit) ->
  my_aru:(unit -> int) ->
  my_ring_id:(unit -> int) ->
  on_fault_report:(Fault_report.t -> unit) ->
  unit

val frame_received : t -> net:Totem_net.Addr.net_id -> Totem_net.Frame.t -> unit
(** Install as the node's fabric handler. *)

(** {1 Fault state} *)

val faulty : t -> bool array
(** Snapshot of the per-network fault marks. *)

val mark_faulty : t -> net:Totem_net.Addr.net_id -> unit
(** Administrative override, and handy in tests. *)

val clear_fault : t -> net:Totem_net.Addr.net_id -> unit
(** Administrative repair after the network is fixed: the node resumes
    sending on it, and the reinstatement flap history is wiped. *)

val net_state :
  t -> net:Totem_net.Addr.net_id -> [ `Active | `Condemned | `Probation ]
(** The reinstatement state machine's view of the network (see
    {!Layer.net_state}); [`Probation] only occurs with
    [Rrp_config.reinstate]. *)

val net_state_string : t -> net:Totem_net.Addr.net_id -> string
(** ["active"], ["condemned"] or ["probation"] — for explorer state
    fingerprints and test output. *)

val flaps : t -> net:Totem_net.Addr.net_id -> int
(** Completed reinstate-then-recondemn cycles for the network. *)

val fault_reports : t -> Fault_report.t list

(** {1 Per-network send counters (round-robin fairness, tests)} *)

val data_sent : t -> net:Totem_net.Addr.net_id -> int

val tokens_sent : t -> net:Totem_net.Addr.net_id -> int

(** {1 Style internals, for tests and ablations} *)

val as_active : t -> Active.t option

val as_passive : t -> Passive.t option

val as_active_passive : t -> Active_passive.t option
