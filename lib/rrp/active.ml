open Totem_engine
module Srp = Totem_srp

type t = {
  base : Layer.base;
  recv_last : bool array;  (* recvLastToken[] of Fig. 2 *)
  problem : int array;  (* problemCounter[] of Fig. 2 *)
  mutable last_token : Srp.Token.t option;  (* lastToken of Fig. 2 *)
  mutable token_timer : Timer.t option;
  mutable suppress : int;  (* test hook: swallow this many increments *)
}

let rec create base =
  let n = Layer.num_nets base in
  let t =
    {
      base;
      recv_last = Array.make n false;
      problem = Array.make n 0;
      last_token = None;
      token_timer = None;
      suppress = 0;
    }
  in
  let timer =
    Timer.create (Layer.sim base) ~name:"rrp-active-token" ~callback:(fun () ->
        token_timer_expired t)
  in
  t.token_timer <- Some timer;
  (* Problem counters are decremented periodically so that token losses
     accumulated over a long run do not condemn a healthy network (A6;
     "not shown in Figure 2"). *)
  Layer.every base (Layer.config base).Rrp_config.active_decay_interval (fun () ->
      Array.iteri
        (fun i c ->
          if c > 0 then begin
            t.problem.(i) <- c - 1;
            if Layer.tel_active base then
              Layer.tel_emit base
                (Telemetry.Problem_decay
                   { node = Layer.node base; net = i; count = c - 1 })
          end)
        t.problem);
  (match Layer.telemetry base with
  | Some tl ->
    for i = 0 to n - 1 do
      Telemetry.gauge tl
        (Printf.sprintf "rrp.active.%d.problem.net%d" (Layer.node base) i)
        (fun () -> float_of_int t.problem.(i))
    done
  | None -> ());
  (* Probation plumbing: a rotation is clean for a net while its problem
     counter sits at zero; probation forgives the counter that condemned
     it so the next timer expiry does not instantly re-condemn. *)
  Layer.set_probation_hooks base
    ~net_clean:(fun net -> t.problem.(net) = 0)
    ~on_probation_start:(fun net -> t.problem.(net) <- 0);
  t

(* Fig. 2 tokenTimerExpired *)
and token_timer_expired t =
  let node = Layer.node t.base in
  Array.iteri
    (fun i received ->
      if not received then
        if t.suppress > 0 then t.suppress <- t.suppress - 1
        else begin
          t.problem.(i) <- t.problem.(i) + 1;
          if Layer.tel_active t.base then
            Layer.tel_emit t.base
              (Telemetry.Problem_incr { node; net = i; count = t.problem.(i) })
        end)
    t.recv_last;
  Array.iteri
    (fun i c ->
      let threshold = (Layer.config t.base).Rrp_config.active_problem_threshold in
      if c >= threshold then begin
        if Layer.tel_active t.base && not (Layer.is_faulty t.base ~net:i) then
          Layer.tel_emit t.base
            (Telemetry.Problem_threshold { node; net = i; count = c; threshold });
        Layer.mark_faulty t.base ~net:i
          ~evidence:(Fault_report.Token_timeouts c)
      end)
    t.problem;
  match t.last_token with
  | Some tok ->
    Layer.note_rotation t.base;
    (Layer.callbacks t.base).Callbacks.deliver_token tok
  | None -> ()

let lower t =
  let base = t.base in
  {
    Srp.Lower.send_data =
      (fun p ->
        (* One frame value for all N networks (see Layer.data_frame). *)
        let frame = Layer.data_frame base p in
        for i = 0 to Layer.num_nets base - 1 do
          if not (Layer.is_faulty base ~net:i) then
            Layer.send_data_frame_on base ~net:i frame
        done);
    send_token =
      (fun ~dst tok ->
        let frame = Layer.token_frame base tok in
        for i = 0 to Layer.num_nets base - 1 do
          if not (Layer.is_faulty base ~net:i) then
            Layer.send_token_frame_on base ~net:i ~dst frame
        done);
    send_join = (fun j -> Layer.send_join_all base j);
    send_probe = (fun p -> Layer.send_probe_all base p);
    send_commit = (fun ~dst cm -> Layer.send_commit_all base ~dst cm);
    copies_per_send = (fun () -> Layer.non_faulty_count base);
  }

let timer t = Option.get t.token_timer

(* Fig. 2 recvToken *)
let on_token t ~net tok =
  Layer.note_recovery_traffic t.base ~net;
  if Layer.tel_active t.base then
    Layer.tel_emit t.base
      (Telemetry.Token_copy_rx
         { node = Layer.node t.base; net; tok = Layer.tok_info tok });
  let is_new =
    match t.last_token with
    | None -> true
    | Some last -> Srp.Token.newer_than tok ~than:last
  in
  let relevant =
    if is_new then begin
      t.last_token <- Some tok;
      Array.fill t.recv_last 0 (Array.length t.recv_last) false;
      t.recv_last.(net) <- true;
      Timer.restart (timer t)
        (Layer.config t.base).Rrp_config.active_token_timeout;
      true
    end
    else
      match t.last_token with
      | Some last when Srp.Token.same_instance last tok ->
        t.recv_last.(net) <- true;
        true
      | _ -> false (* a stale copy of an older token: drop *)
  in
  if relevant then begin
    let complete = ref true in
    Array.iteri
      (fun i received ->
        if (not received) && not (Layer.is_faulty t.base ~net:i) then
          complete := false)
      t.recv_last;
    if !complete then begin
      Timer.stop (timer t);
      match t.last_token with
      | Some last ->
        Layer.note_rotation t.base;
        (Layer.callbacks t.base).Callbacks.deliver_token last
      | None -> ()
    end
  end

let frame_received t ~net frame =
  let cb = Layer.callbacks t.base in
  match frame.Totem_net.Frame.payload with
  | Srp.Wire.Data p ->
    Layer.note_recovery_traffic t.base ~net;
    (* "deliver m to Totem SRP" — duplicates die on the sequence-number
       filter above (A1). *)
    cb.Callbacks.deliver_data p
  | Srp.Wire.Tok tok -> on_token t ~net tok
  | Srp.Wire.Join j -> cb.Callbacks.deliver_join j
  | Srp.Wire.Probe p -> cb.Callbacks.deliver_probe p
  | Srp.Wire.Commit cm -> cb.Callbacks.deliver_commit cm
  | _ -> ()

let problem_counter t ~net = t.problem.(net)

let set_problem_counter t ~net count = t.problem.(net) <- max 0 count

let suppress_problem_increments t n = t.suppress <- max 0 n
