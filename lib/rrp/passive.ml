open Totem_engine
module Srp = Totem_srp

type t = {
  base : Layer.base;
  mutable send_message_via : int;  (* last network used, Fig. 4 *)
  mutable send_token_via : int;
  mutable buffered : Srp.Token.t option;  (* lastToken of Fig. 4 *)
  mutable token_timer : Timer.t option;
  message_monitors : (Totem_net.Addr.node_id, Monitor.t) Hashtbl.t;
  token_monitor : Monitor.t;
}

let rec create base =
  let n = Layer.num_nets base in
  let threshold = (Layer.config base).Rrp_config.passive_monitor_threshold in
  let t =
    {
      base;
      send_message_via = n - 1;  (* so the first send uses network 0 *)
      send_token_via = n - 1;
      buffered = None;
      token_timer = None;
      message_monitors = Hashtbl.create 8;
      token_monitor = Monitor.create ~num_nets:n ~threshold;
    }
  in
  t.token_timer <-
    Some
      (Timer.create (Layer.sim base) ~name:"rrp-passive-token"
         ~callback:(fun () -> token_timer_expired t));
  (* recvCount catch-up so sporadic losses never accumulate into a false
     alarm (P5; "not shown in Figure 5"). *)
  Layer.every base (Layer.config base).Rrp_config.passive_catchup_interval
    (fun () ->
      Monitor.catch_up t.token_monitor;
      Hashtbl.iter (fun _ m -> Monitor.catch_up m) t.message_monitors);
  (* Probation plumbing: a rotation is clean for a net while its token
     reception count stays within half the condemnation threshold of the
     best net AND the net has actually delivered a token recently. The
     liveness half matters because probation starts by forgiving the lag
     that condemned the net (P5 applied to reinstatement) — without it a
     completely dead network would bank [reinstate_clean_rotations]
     "clean" rotations before its fresh lag could climb back over the
     bound. Tokens round-robin across non-faulty nets, so a healthy net
     hears one every [num_nets] rotations; 2x that is staleness. *)
  let probe_count = Array.make n 0 and probe_stale = Array.make n 0 in
  Layer.set_probation_hooks base
    ~net_clean:(fun net ->
      let c = Monitor.received t.token_monitor ~net in
      if c > probe_count.(net) then begin
        probe_count.(net) <- c;
        probe_stale.(net) <- 0
      end
      else probe_stale.(net) <- probe_stale.(net) + 1;
      probe_stale.(net) < 2 * n
      && Monitor.behind t.token_monitor ~net <= threshold / 2)
    ~on_probation_start:(fun net ->
      Monitor.rejoin t.token_monitor ~net;
      Hashtbl.iter (fun _ m -> Monitor.rejoin m ~net) t.message_monitors;
      probe_count.(net) <- Monitor.received t.token_monitor ~net;
      probe_stale.(net) <- 0);
  t

(* Fig. 4 tokenTimerExpired *)
and token_timer_expired t =
  match t.buffered with
  | Some tok ->
    t.buffered <- None;
    if Layer.tel_active t.base then
      Layer.tel_emit t.base
        (Telemetry.Token_release
           {
             node = Layer.node t.base;
             ring_id = tok.Srp.Token.ring_id;
             trigger = Telemetry.Release_timer;
           });
    Layer.note_rotation t.base;
    (Layer.callbacks t.base).Callbacks.deliver_token tok
  | None -> ()

let timer t = Option.get t.token_timer

let lower t =
  let base = t.base in
  {
    Srp.Lower.send_data =
      (fun p ->
        match Layer.next_non_faulty base ~after:t.send_message_via with
        | None -> () (* unreachable: the last network is never marked *)
        | Some net ->
          t.send_message_via <- net;
          Layer.send_data_on base ~net p);
    send_token =
      (fun ~dst tok ->
        match Layer.next_non_faulty base ~after:t.send_token_via with
        | None -> ()
        | Some net ->
          t.send_token_via <- net;
          Layer.send_token_on base ~net ~dst tok);
    send_join = (fun j -> Layer.send_join_all base j);
    send_probe = (fun p -> Layer.send_probe_all base p);
    send_commit = (fun ~dst cm -> Layer.send_commit_all base ~dst cm);
    copies_per_send = (fun () -> 1);
  }

let source_string = function
  | Fault_report.Token_traffic -> "token traffic"
  | Fault_report.Message_traffic n -> Printf.sprintf "messages from N%d" n

let check_monitor t monitor ~source =
  List.iter
    (fun (net, behind) ->
      if Layer.tel_active t.base && not (Layer.is_faulty t.base ~net) then
        Layer.tel_emit t.base
          (Telemetry.Recv_lag
             {
               node = Layer.node t.base;
               net;
               behind;
               source = source_string source;
             });
      Layer.mark_faulty t.base ~net
        ~evidence:(Fault_report.Reception_lag { source; behind }))
    (Monitor.lagging monitor)

let message_monitor_for t sender =
  match Hashtbl.find_opt t.message_monitors sender with
  | Some m -> m
  | None ->
    let m =
      Monitor.create ~num_nets:(Layer.num_nets t.base)
        ~threshold:(Layer.config t.base).Rrp_config.passive_monitor_threshold
    in
    Hashtbl.replace t.message_monitors sender m;
    m

(* The "no message is missing" test: the SRP has everything the buffered
   token covers. A token for a different ring (a reformation in
   progress) is never held — its sequence space is not comparable. *)
let nothing_missing_for t (tok : Srp.Token.t) =
  let cb = Layer.callbacks t.base in
  tok.ring_id <> cb.Callbacks.my_ring_id () || cb.Callbacks.my_aru () >= tok.seq

(* Fig. 4 recvMsg *)
let on_data t ~net ~sender p =
  Layer.note_recovery_traffic t.base ~net;
  let monitor = message_monitor_for t sender in
  Monitor.note monitor ~net;
  check_monitor t monitor ~source:(Fault_report.Message_traffic sender);
  (Layer.callbacks t.base).Callbacks.deliver_data p;
  (* Fast path: this message may be the one the buffered token was
     waiting for. *)
  match t.buffered with
  | Some tok when Timer.is_running (timer t) && nothing_missing_for t tok ->
    Timer.stop (timer t);
    t.buffered <- None;
    if Layer.tel_active t.base then
      Layer.tel_emit t.base
        (Telemetry.Token_release
           {
             node = Layer.node t.base;
             ring_id = tok.Srp.Token.ring_id;
             trigger = Telemetry.Release_caught_up;
           });
    Layer.note_rotation t.base;
    (Layer.callbacks t.base).Callbacks.deliver_token tok
  | _ -> ()

(* Fig. 4 recvToken *)
let on_token t ~net tok =
  Layer.note_recovery_traffic t.base ~net;
  if Layer.tel_active t.base then
    Layer.tel_emit t.base
      (Telemetry.Token_copy_rx
         { node = Layer.node t.base; net; tok = Layer.tok_info tok });
  Monitor.note t.token_monitor ~net;
  check_monitor t t.token_monitor ~source:Fault_report.Token_traffic;
  if nothing_missing_for t tok then begin
    Layer.note_rotation t.base;
    (Layer.callbacks t.base).Callbacks.deliver_token tok
  end
  else begin
    t.buffered <- Some tok;
    if Layer.tel_active t.base then
      Layer.tel_emit t.base
        (Telemetry.Token_hold
           {
             node = Layer.node t.base;
             tok = Layer.tok_info tok;
             aru = (Layer.callbacks t.base).Callbacks.my_aru ();
           });
    (* "The token timer is never restarted while it is active." *)
    Timer.start_if_stopped (timer t)
      (Layer.config t.base).Rrp_config.passive_token_timeout
  end

let frame_received t ~net frame =
  let cb = Layer.callbacks t.base in
  match frame.Totem_net.Frame.payload with
  | Srp.Wire.Data p -> on_data t ~net ~sender:frame.Totem_net.Frame.src p
  | Srp.Wire.Tok tok -> on_token t ~net tok
  | Srp.Wire.Join j -> cb.Callbacks.deliver_join j
  | Srp.Wire.Probe p -> cb.Callbacks.deliver_probe p
  | Srp.Wire.Commit cm -> cb.Callbacks.deliver_commit cm
  | _ -> ()

let token_buffered t = t.buffered <> None

let message_monitor t ~sender = Hashtbl.find_opt t.message_monitors sender

let token_monitor t = t.token_monitor
