module Srp = Totem_srp

type impl =
  | Single of Single.t
  | Active of Active.t
  | Passive of Passive.t
  | Active_passive of Active_passive.t

type t = {
  base : Layer.base;
  style : Style.t;
  impl : impl;
}

let create sim ~fabric ~node ~const ~config ~style ?trace () =
  (match Style.validate style ~num_nets:(Totem_net.Fabric.num_nets fabric) with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Rrp.create: " ^ msg));
  let callbacks = Callbacks.create () in
  let base =
    Layer.make_base sim ~fabric ~node ~const ~config ~callbacks ?trace ()
  in
  let impl =
    match style with
    | Style.No_replication -> Single (Single.create base)
    | Style.Active -> Active (Active.create base)
    | Style.Passive -> Passive (Passive.create base)
    | Style.Active_passive k -> Active_passive (Active_passive.create base ~k)
  in
  { base; style; impl }

let style t = t.style
let node t = Layer.node t.base

let lower t =
  match t.impl with
  | Single s -> Single.lower s
  | Active a -> Active.lower a
  | Passive p -> Passive.lower p
  | Active_passive ap -> Active_passive.lower ap

let connect t ~deliver_data ~deliver_token ~deliver_join ~deliver_probe
    ~deliver_commit ~my_aru ~my_ring_id ~on_fault_report =
  let cb = Layer.callbacks t.base in
  cb.Callbacks.deliver_data <- deliver_data;
  cb.Callbacks.deliver_token <- deliver_token;
  cb.Callbacks.deliver_join <- deliver_join;
  cb.Callbacks.deliver_probe <- deliver_probe;
  cb.Callbacks.deliver_commit <- deliver_commit;
  cb.Callbacks.my_aru <- my_aru;
  cb.Callbacks.my_ring_id <- my_ring_id;
  cb.Callbacks.on_fault_report <- on_fault_report

let frame_received t ~net frame =
  (* Causal hop: one Packet_recv per received data-frame copy (before
     any style-specific duplicate filtering), emitted centrally so all
     four styles are covered by one site. *)
  (if Layer.tel_active t.base then
     match frame.Totem_net.Frame.payload with
     | Srp.Wire.Data p ->
       Layer.tel_emit t.base
         (Totem_engine.Telemetry.Packet_recv
            {
              node = Layer.node t.base;
              net;
              ring_id = p.Srp.Wire.ring_id;
              seq = p.Srp.Wire.seq;
              sender = frame.Totem_net.Frame.src;
            })
     | _ -> ());
  match t.impl with
  | Single s -> Single.frame_received s ~net frame
  | Active a -> Active.frame_received a ~net frame
  | Passive p -> Passive.frame_received p ~net frame
  | Active_passive ap -> Active_passive.frame_received ap ~net frame

let faulty t = Layer.faulty_snapshot t.base

let mark_faulty t ~net =
  Layer.mark_faulty t.base ~net ~evidence:(Fault_report.Token_timeouts 0)

let clear_fault t ~net = Layer.clear_fault t.base ~net

let net_state t ~net = Layer.net_state t.base ~net

let net_state_string t ~net =
  match Layer.net_state t.base ~net with
  | `Active -> "active"
  | `Condemned -> "condemned"
  | `Probation -> "probation"

let flaps t ~net = Layer.flaps t.base ~net

let fault_reports t = Layer.reports t.base

let data_sent t ~net = Layer.data_sent t.base ~net

let tokens_sent t ~net = Layer.tokens_sent t.base ~net

let as_active t = match t.impl with Active a -> Some a | _ -> None
let as_passive t = match t.impl with Passive p -> Some p | _ -> None

let as_active_passive t =
  match t.impl with Active_passive ap -> Some ap | _ -> None
