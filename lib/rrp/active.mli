(** Active replication — the algorithm of Fig. 2.

    Every message and token is sent over all non-faulty networks.
    Received messages go straight up (the SRP's sequence-number filter
    destroys duplicates — requirement A1). A token is passed up only
    once a copy has arrived on every non-faulty network (requirements
    A2/A3: all messages sent before the token precede it on each
    network, so waiting for the last copy guarantees no spurious
    retransmission request and keeps a slow network from falling
    behind). A token timer started at the first copy bounds the wait
    (progress, A4); networks that miss the deadline accumulate problem
    counts that declare them faulty past a threshold (detection, A5),
    and the counters decay periodically so sporadic loss never condemns
    a healthy network (A6). *)

type t

val create : Layer.base -> t

val lower : t -> Totem_srp.Lower.t

val frame_received : t -> net:Totem_net.Addr.net_id -> Totem_net.Frame.t -> unit

val problem_counter : t -> net:Totem_net.Addr.net_id -> int
(** Exposed for tests of A5/A6. *)

val set_problem_counter : t -> net:Totem_net.Addr.net_id -> int -> unit
(** Test hook: overwrite one problemCounter (clamped at 0). The
    explorer's arbitrary-state mode uses it to inject corrupted counter
    values and check the decay/threshold machinery recovers. *)

val suppress_problem_increments : t -> int -> unit
(** Test hook: swallow the next [n] problemCounter increments that
    [tokenTimerExpired] would perform. The explorer's mutation canary
    arms this to weaken fault detection (A5) and assert the
    model checker notices. *)
