open Totem_engine
module Srp = Totem_srp

type t = {
  base : Layer.base;
  k : int;
  mutable send_message_via : int;
  mutable send_token_via : int;
  (* stage 2: active-style completion state *)
  recv_last : bool array;
  mutable last_token : Srp.Token.t option;
  mutable delivered_last : bool;
  mutable token_timer : Timer.t option;
  (* stage 1: passive-style monitors *)
  message_monitors : (Totem_net.Addr.node_id, Monitor.t) Hashtbl.t;
  token_monitor : Monitor.t;
}

let rec create base ~k =
  let n = Layer.num_nets base in
  if k <= 1 || k >= n then
    invalid_arg "Active_passive.create: need 1 < K < number of networks";
  let threshold = (Layer.config base).Rrp_config.passive_monitor_threshold in
  let t =
    {
      base;
      k;
      send_message_via = n - 1;
      send_token_via = n - 1;
      recv_last = Array.make n false;
      last_token = None;
      delivered_last = false;
      token_timer = None;
      message_monitors = Hashtbl.create 8;
      token_monitor = Monitor.create ~num_nets:n ~threshold;
    }
  in
  t.token_timer <-
    Some
      (Timer.create (Layer.sim base) ~name:"rrp-ap-token" ~callback:(fun () ->
           token_timer_expired t));
  Layer.every base (Layer.config base).Rrp_config.passive_catchup_interval
    (fun () ->
      Monitor.catch_up t.token_monitor;
      Hashtbl.iter (fun _ m -> Monitor.catch_up m) t.message_monitors);
  (* Probation plumbing, stage-1 style: cleanliness and forgiveness both
     come from the passive monitors, including the liveness half of the
     clean check — a probed net must keep delivering tokens, not merely
     stay under the (just-forgiven) lag bound (see Passive.create). *)
  let probe_count = Array.make n 0 and probe_stale = Array.make n 0 in
  Layer.set_probation_hooks base
    ~net_clean:(fun net ->
      let c = Monitor.received t.token_monitor ~net in
      if c > probe_count.(net) then begin
        probe_count.(net) <- c;
        probe_stale.(net) <- 0
      end
      else probe_stale.(net) <- probe_stale.(net) + 1;
      probe_stale.(net) < 2 * n
      && Monitor.behind t.token_monitor ~net <= threshold / 2)
    ~on_probation_start:(fun net ->
      Monitor.rejoin t.token_monitor ~net;
      Hashtbl.iter (fun _ m -> Monitor.rejoin m ~net) t.message_monitors;
      probe_count.(net) <- Monitor.received t.token_monitor ~net;
      probe_stale.(net) <- 0);
  t

and token_timer_expired t =
  match t.last_token with
  | Some tok when not t.delivered_last ->
    t.delivered_last <- true;
    if Layer.tel_active t.base then
      Layer.tel_emit t.base
        (Telemetry.Token_release
           {
             node = Layer.node t.base;
             ring_id = tok.Srp.Token.ring_id;
             trigger = Telemetry.Release_timer;
           });
    Layer.note_rotation t.base;
    (Layer.callbacks t.base).Callbacks.deliver_token tok
  | _ -> ()

let k t = t.k

let timer t = Option.get t.token_timer

(* Choose the K-window of non-faulty networks after [after]; advances
   the cursor to the last network used. *)
let window t cursor =
  let picked = ref [] in
  let current = ref cursor in
  (try
     for _ = 1 to t.k do
       match Layer.next_non_faulty t.base ~after:!current with
       | None -> raise Exit
       | Some net ->
         if List.mem net !picked then raise Exit (* wrapped: fewer nets left *)
         else begin
           picked := net :: !picked;
           current := net
         end
     done
   with Exit -> ());
  (List.rev !picked, !current)

let lower t =
  let base = t.base in
  {
    Srp.Lower.send_data =
      (fun p ->
        let nets, cursor = window t t.send_message_via in
        t.send_message_via <- cursor;
        (* One frame value for the whole K-window (see Layer.data_frame). *)
        let frame = Layer.data_frame base p in
        List.iter (fun net -> Layer.send_data_frame_on base ~net frame) nets);
    send_token =
      (fun ~dst tok ->
        let nets, cursor = window t t.send_token_via in
        t.send_token_via <- cursor;
        let frame = Layer.token_frame base tok in
        List.iter
          (fun net -> Layer.send_token_frame_on base ~net ~dst frame)
          nets);
    send_join = (fun j -> Layer.send_join_all base j);
    send_probe = (fun p -> Layer.send_probe_all base p);
    send_commit = (fun ~dst cm -> Layer.send_commit_all base ~dst cm);
    copies_per_send =
      (fun () -> min t.k (Layer.non_faulty_count base));
  }

let source_string = function
  | Fault_report.Token_traffic -> "token traffic"
  | Fault_report.Message_traffic n -> Printf.sprintf "messages from N%d" n

let check_monitor t monitor ~source =
  List.iter
    (fun (net, behind) ->
      if Layer.tel_active t.base && not (Layer.is_faulty t.base ~net) then
        Layer.tel_emit t.base
          (Telemetry.Recv_lag
             {
               node = Layer.node t.base;
               net;
               behind;
               source = source_string source;
             });
      Layer.mark_faulty t.base ~net
        ~evidence:(Fault_report.Reception_lag { source; behind }))
    (Monitor.lagging monitor)

let message_monitor_for t sender =
  match Hashtbl.find_opt t.message_monitors sender with
  | Some m -> m
  | None ->
    let m =
      Monitor.create ~num_nets:(Layer.num_nets t.base)
        ~threshold:(Layer.config t.base).Rrp_config.passive_monitor_threshold
    in
    Hashtbl.replace t.message_monitors sender m;
    m

let copies_received t =
  Array.fold_left (fun acc r -> if r then acc + 1 else acc) 0 t.recv_last

(* Stage 2: the active-style wait for K copies. *)
let on_token t ~net tok =
  Layer.note_recovery_traffic t.base ~net;
  if Layer.tel_active t.base then
    Layer.tel_emit t.base
      (Telemetry.Token_copy_rx
         { node = Layer.node t.base; net; tok = Layer.tok_info tok });
  Monitor.note t.token_monitor ~net;
  check_monitor t t.token_monitor ~source:Fault_report.Token_traffic;
  let is_new =
    match t.last_token with
    | None -> true
    | Some last -> Srp.Token.newer_than tok ~than:last
  in
  let relevant =
    if is_new then begin
      t.last_token <- Some tok;
      t.delivered_last <- false;
      Array.fill t.recv_last 0 (Array.length t.recv_last) false;
      t.recv_last.(net) <- true;
      Timer.restart (timer t)
        (Layer.config t.base).Rrp_config.active_token_timeout;
      true
    end
    else
      match t.last_token with
      | Some last when Srp.Token.same_instance last tok ->
        t.recv_last.(net) <- true;
        true
      | _ -> false
  in
  (* With fewer than K non-faulty networks only that many copies can
     ever arrive; requiring K would turn every hop into a timer wait. *)
  let needed = max 1 (min t.k (Layer.non_faulty_count t.base)) in
  if relevant && (not t.delivered_last) && copies_received t >= needed then begin
    Timer.stop (timer t);
    t.delivered_last <- true;
    match t.last_token with
    | Some last ->
      Layer.note_rotation t.base;
      (Layer.callbacks t.base).Callbacks.deliver_token last
    | None -> ()
  end

let on_data t ~net ~sender p =
  Layer.note_recovery_traffic t.base ~net;
  let monitor = message_monitor_for t sender in
  Monitor.note monitor ~net;
  check_monitor t monitor ~source:(Fault_report.Message_traffic sender);
  (Layer.callbacks t.base).Callbacks.deliver_data p

let frame_received t ~net frame =
  let cb = Layer.callbacks t.base in
  match frame.Totem_net.Frame.payload with
  | Srp.Wire.Data p -> on_data t ~net ~sender:frame.Totem_net.Frame.src p
  | Srp.Wire.Tok tok -> on_token t ~net tok
  | Srp.Wire.Join j -> cb.Callbacks.deliver_join j
  | Srp.Wire.Probe p -> cb.Callbacks.deliver_probe p
  | Srp.Wire.Commit cm -> cb.Callbacks.deliver_commit cm
  | _ -> ()

let token_copies_pending t =
  t.last_token <> None && not t.delivered_last
