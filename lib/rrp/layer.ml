open Totem_engine
module Srp = Totem_srp

(* Per-network reinstatement state (Sec. "probation" extension; only
   consulted when [config.reinstate]). The three observable states are
   encoded across [faulty] and [probation]:
     Active     = not faulty && not probation
     Condemned  = faulty
     Probation  = not faulty && probation *)
type pstate = {
  mutable probation : bool;
  mutable flaps : int;  (* reinstate-then-recondemn cycles *)
  mutable attempts : int;  (* probation attempts, 1-based in events *)
  mutable clean : int;  (* consecutive clean rotations so far *)
  mutable epoch : int;  (* invalidates pending probe timers *)
  mutable condemned_at : Vtime.t;  (* quarantine floor for probe joining *)
}

type base = {
  sim : Sim.t;
  fabric : Totem_net.Fabric.t;
  node : Totem_net.Addr.node_id;
  const : Srp.Const.t;
  config : Rrp_config.t;
  callbacks : Callbacks.t;
  trace : Trace.t option;
  faulty : bool array;
  pstates : pstate array;
  mutable net_clean : int -> bool;  (* style hook: net clean this rotation? *)
  mutable on_probation_start : int -> unit;  (* style hook: reset evidence *)
  data_sent : int array;
  tokens_sent : int array;
  mutable reports : Fault_report.t list;
}

let make_base sim ~fabric ~node ~const ~config ~callbacks ?trace () =
  let n = Totem_net.Fabric.num_nets fabric in
  {
    sim;
    fabric;
    node;
    const;
    config;
    callbacks;
    trace;
    faulty = Array.make n false;
    pstates =
      Array.init n (fun _ ->
          {
            probation = false;
            flaps = 0;
            attempts = 0;
            clean = 0;
            epoch = 0;
            condemned_at = Vtime.zero;
          });
    net_clean = (fun _ -> true);
    on_probation_start = (fun _ -> ());
    data_sent = Array.make n 0;
    tokens_sent = Array.make n 0;
    reports = [];
  }

let sim b = b.sim
let node b = b.node
let config b = b.config
let callbacks b = b.callbacks
let num_nets b = Array.length b.faulty

let is_faulty b ~net = b.faulty.(net)
let faulty_snapshot b = Array.copy b.faulty

let non_faulty_count b =
  Array.fold_left (fun acc f -> if f then acc else acc + 1) 0 b.faulty

let emit b fmt =
  match b.trace with
  | Some tr -> Trace.emitf tr ~component:(Printf.sprintf "rrp%d" b.node) fmt
  | None -> Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let telemetry b = b.trace

let[@inline] tel_active b =
  match b.trace with Some tl -> Telemetry.active tl | None -> false

let tel_emit b ev =
  match b.trace with Some tl -> Telemetry.emit tl ev | None -> ()

let tok_info (tok : Srp.Token.t) =
  {
    Telemetry.ring_id = tok.ring_id;
    seq = tok.seq;
    rotation = tok.rotation;
    hops = tok.hops;
  }

let evidence_string = function
  | Fault_report.Token_timeouts n -> Printf.sprintf "%d token timeouts" n
  | Fault_report.Reception_lag { source = Token_traffic; behind } ->
    Printf.sprintf "token traffic lagging by %d" behind
  | Fault_report.Reception_lag { source = Message_traffic n; behind } ->
    Printf.sprintf "messages from N%d lagging by %d" n behind

(* Exponential flap damping: base * 2^flaps, capped. *)
let probe_delay b ps =
  let shift = Stdlib.min ps.flaps 16 in
  Vtime.min
    (b.config.Rrp_config.reinstate_backoff * (1 lsl shift))
    b.config.Rrp_config.reinstate_backoff_max

let set_probation_hooks b ~net_clean ~on_probation_start =
  b.net_clean <- net_clean;
  b.on_probation_start <- on_probation_start

let net_state b ~net =
  if b.faulty.(net) then `Condemned
  else if b.pstates.(net).probation then `Probation
  else `Active

let flaps b ~net = b.pstates.(net).flaps

let begin_probation b ~net ~epoch =
  let ps = b.pstates.(net) in
  (* The probe is stale if the fault was administratively cleared (or
     re-marked, bumping the epoch) while the timer was pending. *)
  if b.faulty.(net) && ps.epoch = epoch && b.config.Rrp_config.reinstate then begin
    b.faulty.(net) <- false;
    ps.probation <- true;
    ps.clean <- 0;
    ps.attempts <- ps.attempts + 1;
    if tel_active b then
      tel_emit b
        (Telemetry.Net_probation { node = b.node; net; attempt = ps.attempts });
    emit b "probation on %a (attempt %d)" Totem_net.Addr.pp_net net ps.attempts;
    b.on_probation_start net
  end

let mark_faulty b ~net ~evidence =
  if (not b.faulty.(net)) && non_faulty_count b > 1 then begin
    let ps = b.pstates.(net) in
    ps.probation <- false;
    ps.epoch <- ps.epoch + 1;
    (* Any re-condemnation after a probation attempt — whether the
       probe was still running or had already reinstated the net — is
       one flap; only an administrative [clear_fault] resets the
       count. This is what makes an oscillating network converge. *)
    if ps.attempts > 0 then ps.flaps <- ps.flaps + 1;
    b.faulty.(net) <- true;
    ps.condemned_at <- Sim.now b.sim;
    let report =
      { Fault_report.time = Sim.now b.sim; reporter = b.node; net; evidence }
    in
    b.reports <- b.reports @ [ report ];
    if tel_active b then
      tel_emit b
        (Telemetry.Net_fault_marked
           { node = b.node; net; evidence = evidence_string evidence });
    emit b "fault report: %a" Fault_report.pp report;
    if b.config.Rrp_config.reinstate then begin
      if tel_active b then
        tel_emit b
          (Telemetry.Net_condemned { node = b.node; net; flaps = ps.flaps });
      (* Flap damping: past the limit the network is condemned for good,
         so an oscillating network converges instead of flapping. *)
      if ps.flaps < b.config.Rrp_config.reinstate_flap_limit then begin
        let epoch = ps.epoch in
        ignore
          (Sim.schedule b.sim ~delay:(probe_delay b ps) (fun () ->
               begin_probation b ~net ~epoch))
      end
    end;
    b.callbacks.Callbacks.on_fault_report report
  end

let clear_fault b ~net =
  let ps = b.pstates.(net) in
  if b.faulty.(net) || ps.probation then begin
    b.faulty.(net) <- false;
    (* Administrative repair wipes the flap history: the operator
       asserts the network is fixed, so damping starts afresh. *)
    ps.probation <- false;
    ps.flaps <- 0;
    ps.attempts <- 0;
    ps.clean <- 0;
    ps.epoch <- ps.epoch + 1;
    emit b "fault cleared on %a" Totem_net.Addr.pp_net net
  end

(* Called by the style once per token delivered to the SRP — the token
   visits each node once per ring rotation, so per-node delivery count
   IS the rotation count. *)
let note_rotation b =
  if b.config.Rrp_config.reinstate then
    Array.iteri
      (fun net ps ->
        if ps.probation then
          if b.net_clean net then begin
            ps.clean <- ps.clean + 1;
            if ps.clean >= b.config.Rrp_config.reinstate_clean_rotations
            then begin
              ps.probation <- false;
              if tel_active b then
                tel_emit b
                  (Telemetry.Net_reinstated
                     { node = b.node; net; rotations = ps.clean });
              emit b "%a reinstated after %d clean rotations"
                Totem_net.Addr.pp_net net ps.clean
            end
          end
          else ps.clean <- 0)
      b.pstates

(* A condemned network that carries protocol traffic again is evidence
   that some peer has put it on probation and resumed sending on it.
   Join the probe instead of waiting out our own backoff: probation is a
   per-node decision, but its clean-rotation verdict depends on peers
   actually sending on the net, so probe windows across the ring must
   overlap — a lone prober would be re-condemned by reception lag
   before anyone else's window opened, and a healthy net could never be
   reinstated. The base backoff still quarantines (frames in flight
   when the net was condemned don't restart the probe), and flap
   damping is preserved: the first prober of each cycle sits out its
   full doubled backoff before anyone sends on the net again. *)
let note_recovery_traffic b ~net =
  if b.config.Rrp_config.reinstate && b.faulty.(net) then begin
    let ps = b.pstates.(net) in
    if
      ps.flaps < b.config.Rrp_config.reinstate_flap_limit
      && Sim.now b.sim - ps.condemned_at
         >= b.config.Rrp_config.reinstate_backoff
    then begin_probation b ~net ~epoch:ps.epoch
  end

let reports b = b.reports

(* Frame construction is split from frame sending so the multi-network
   paths (active replication's per-send loops, the *_all membership
   fan-outs) build ONE physical frame value and pass it to every
   network. The fabric's wire-encoder memo keys on frame identity, so
   in wire mode this is what makes N-network fan-out serialize once per
   logical frame instead of once per copy. *)

let data_frame b p = Srp.Wire.data_frame b.const ~src:b.node p

let send_data_frame_on b ~net frame =
  b.data_sent.(net) <- b.data_sent.(net) + 1;
  (* Causal hop: one Packet_send per (logical send, network), whatever
     replication style drove the fan-out — this is the single choke
     point every data frame passes on its way to the fabric. *)
  (if tel_active b then
     match frame.Totem_net.Frame.payload with
     | Srp.Wire.Data p ->
       tel_emit b
         (Telemetry.Packet_send
            { node = b.node; net; ring_id = p.Srp.Wire.ring_id; seq = p.seq })
     | _ -> ());
  Totem_net.Fabric.broadcast b.fabric ~net frame

let send_data_on b ~net p = send_data_frame_on b ~net (data_frame b p)

let token_frame b tok = Srp.Wire.token_frame b.const ~src:b.node tok

let send_token_frame_on b ~net ~dst frame =
  b.tokens_sent.(net) <- b.tokens_sent.(net) + 1;
  Totem_net.Fabric.unicast b.fabric ~net ~dst frame

let send_token_on b ~net ~dst tok =
  send_token_frame_on b ~net ~dst (token_frame b tok)

let send_join_on b ~net j =
  Totem_net.Fabric.broadcast b.fabric ~net
    (Srp.Wire.join_frame b.const ~src:b.node j)

let send_join_all b j =
  let frame = Srp.Wire.join_frame b.const ~src:b.node j in
  for net = 0 to num_nets b - 1 do
    Totem_net.Fabric.broadcast b.fabric ~net frame
  done

let send_probe_on b ~net p =
  Totem_net.Fabric.broadcast b.fabric ~net
    (Srp.Wire.probe_frame b.const ~src:b.node p)

let send_probe_all b p =
  let frame = Srp.Wire.probe_frame b.const ~src:b.node p in
  for net = 0 to num_nets b - 1 do
    Totem_net.Fabric.broadcast b.fabric ~net frame
  done

let send_commit_on b ~net ~dst cm =
  Totem_net.Fabric.unicast b.fabric ~net ~dst
    (Srp.Wire.commit_frame b.const ~src:b.node cm)

let send_commit_all b ~dst cm =
  let frame = Srp.Wire.commit_frame b.const ~src:b.node cm in
  for net = 0 to num_nets b - 1 do
    Totem_net.Fabric.unicast b.fabric ~net ~dst frame
  done

let data_sent b ~net = b.data_sent.(net)
let tokens_sent b ~net = b.tokens_sent.(net)

let next_non_faulty b ~after =
  let n = num_nets b in
  let rec probe i remaining =
    if remaining = 0 then None
    else if not b.faulty.(i) then Some i
    else probe ((i + 1) mod n) (remaining - 1)
  in
  probe ((after + 1) mod n) n

let every b interval f =
  let rec tick () =
    f ();
    ignore (Sim.schedule b.sim ~delay:interval tick)
  in
  ignore (Sim.schedule b.sim ~delay:interval tick)
