open Totem_engine

type t = {
  active_token_timeout : Vtime.t;
  active_problem_threshold : int;
  active_decay_interval : Vtime.t;
  passive_token_timeout : Vtime.t;
  passive_monitor_threshold : int;
  passive_catchup_interval : Vtime.t;
  reinstate : bool;
  reinstate_backoff : Vtime.t;
  reinstate_backoff_max : Vtime.t;
  reinstate_clean_rotations : int;
  reinstate_flap_limit : int;
}

let default =
  {
    active_token_timeout = Vtime.ms 2;
    active_problem_threshold = 10;
    active_decay_interval = Vtime.ms 200;
    passive_token_timeout = Vtime.ms 10;
    passive_monitor_threshold = 50;
    passive_catchup_interval = Vtime.ms 100;
    reinstate = false;
    reinstate_backoff = Vtime.ms 500;
    reinstate_backoff_max = Vtime.sec 8;
    reinstate_clean_rotations = 20;
    reinstate_flap_limit = 3;
  }
