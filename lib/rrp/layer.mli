(** Shared state and plumbing for every replication style.

    Holds what Figs. 2 and 4 both assume: the [faulty] array (a node
    stops {e sending} on a network it marked faulty but still accepts
    receptions from it, Sec. 3), per-network send counters, fault-report
    emission, and frame construction. Each style builds on one [base]. *)

type base

val make_base :
  Totem_engine.Sim.t ->
  fabric:Totem_net.Fabric.t ->
  node:Totem_net.Addr.node_id ->
  const:Totem_srp.Const.t ->
  config:Rrp_config.t ->
  callbacks:Callbacks.t ->
  ?trace:Totem_engine.Trace.t ->
  unit ->
  base

val sim : base -> Totem_engine.Sim.t
val node : base -> Totem_net.Addr.node_id
val config : base -> Rrp_config.t
val callbacks : base -> Callbacks.t
val num_nets : base -> int

val telemetry : base -> Totem_engine.Telemetry.t option
(** The telemetry hub the base was built with (the [?trace] argument —
    a [Trace.t] is a [Telemetry.t]). *)

val tel_active : base -> bool
(** Hot-path guard: true when structured events have a listener. *)

val tel_emit : base -> Totem_engine.Telemetry.event -> unit

val tok_info : Totem_srp.Token.t -> Totem_engine.Telemetry.token_info
(** Snapshot the traced token fields. *)

val is_faulty : base -> net:Totem_net.Addr.net_id -> bool
val faulty_snapshot : base -> bool array
val non_faulty_count : base -> int

val mark_faulty :
  base -> net:Totem_net.Addr.net_id -> evidence:Fault_report.evidence -> unit
(** Marks the network faulty and issues a fault report — unless it is
    already marked, or it is the last non-faulty network (marking every
    network would silence the node entirely; the last network is kept so
    the system "remains operational as long as a single network is
    operational"). *)

val clear_fault : base -> net:Totem_net.Addr.net_id -> unit
(** Administrative repair: resume sending on the network. Also wipes the
    reinstatement history (flaps, probation, pending probes) — the
    operator asserts the network is fixed, so flap damping restarts. *)

(** {1 Condemned-network reinstatement}

    With [config.reinstate] a condemned network is not written off for
    good: after an exponential backoff ([reinstate_backoff], doubling
    per flap up to [reinstate_backoff_max]) the node puts it on
    {e probation} — it resumes sending on the network and counts clean
    token rotations. After [reinstate_clean_rotations] consecutive
    clean ones it is reinstated; any new fault report meanwhile
    re-condemns it immediately (a {e flap}). A network that flaps
    [reinstate_flap_limit] times is condemned permanently, so an
    oscillating (gray) network converges. With [reinstate = false]
    (default) none of this machinery runs and behaviour is identical to
    the paper's protocol. *)

val set_probation_hooks :
  base -> net_clean:(int -> bool) -> on_probation_start:(int -> unit) -> unit
(** Style-specific probation plumbing. [net_clean net] is consulted once
    per token rotation for each network on probation: true counts a
    clean rotation, false resets the streak. [on_probation_start net]
    fires when probation begins, so the style can reset the fault
    evidence that condemned the network (problem counters, reception
    counts) instead of instantly re-condemning it. *)

val note_rotation : base -> unit
(** Styles call this once per token delivered to the SRP (= once per
    ring rotation at this node); advances every probation streak. *)

val note_recovery_traffic : base -> net:Totem_net.Addr.net_id -> unit
(** Styles call this when a data or token frame arrives on a network
    this node has condemned: some peer is probing it, so join the probe
    (probation windows must overlap across the ring for the per-node
    clean-rotation verdicts to pass). No-op unless the network is
    condemned, its flap limit is unreached, and at least the base
    [reinstate_backoff] has elapsed since this node condemned it — the
    quarantine that keeps frames already in flight at condemnation time
    from instantly restarting the probe. Membership traffic (joins,
    merge probes, commits) must NOT feed this: it is sent on every
    network regardless of fault state, so it carries no evidence of
    recovery. *)

val net_state :
  base -> net:Totem_net.Addr.net_id -> [ `Active | `Condemned | `Probation ]

val flaps : base -> net:Totem_net.Addr.net_id -> int
(** Completed reinstate-then-recondemn cycles for the network. *)

val reports : base -> Fault_report.t list
(** All reports issued by this node, oldest first. *)

val data_frame : base -> Totem_srp.Wire.packet -> Totem_net.Frame.t

val send_data_frame_on :
  base -> net:Totem_net.Addr.net_id -> Totem_net.Frame.t -> unit
(** Frame-level send: multi-network styles build one frame value with
    {!data_frame}/{!token_frame} and pass the {e same} value to every
    network — the fabric's wire-encoder memo keys on frame identity, so
    this is what makes active replication serialize once per logical
    frame. *)

val token_frame : base -> Totem_srp.Token.t -> Totem_net.Frame.t

val send_token_frame_on :
  base ->
  net:Totem_net.Addr.net_id ->
  dst:Totem_net.Addr.node_id ->
  Totem_net.Frame.t ->
  unit

val send_data_on : base -> net:Totem_net.Addr.net_id -> Totem_srp.Wire.packet -> unit

val send_token_on :
  base ->
  net:Totem_net.Addr.net_id ->
  dst:Totem_net.Addr.node_id ->
  Totem_srp.Token.t ->
  unit

val send_join_on : base -> net:Totem_net.Addr.net_id -> Totem_srp.Wire.join -> unit

val send_join_all : base -> Totem_srp.Wire.join -> unit
(** Joins go out on {e every} network, faulty-marked or not: membership
    is the last resort and must survive wrong fault marking. *)

val send_probe_on : base -> net:Totem_net.Addr.net_id -> Totem_srp.Wire.probe -> unit

val send_probe_all : base -> Totem_srp.Wire.probe -> unit
(** Merge-detect probes follow the same every-network rule as Joins. *)

val send_commit_on :
  base -> net:Totem_net.Addr.net_id -> dst:Totem_net.Addr.node_id ->
  Totem_srp.Wire.commit -> unit

val send_commit_all :
  base -> dst:Totem_net.Addr.node_id -> Totem_srp.Wire.commit -> unit
(** The commit token is membership traffic: unicast on every network. *)

val data_sent : base -> net:Totem_net.Addr.net_id -> int
val tokens_sent : base -> net:Totem_net.Addr.net_id -> int

val next_non_faulty : base -> after:int -> int option
(** Round-robin helper: the first non-faulty network after index
    [after] (wrapping); [None] if every network is marked faulty. *)

val every : base -> Totem_engine.Vtime.t -> (unit -> unit) -> unit
(** Runs [f] periodically forever (monitor decay processes). *)

val emit : base -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Trace hook; no-op without a trace. *)
