open Totem_engine
module Srp = Totem_srp

type throughput = {
  msgs_per_sec : float;
  kbytes_per_sec : float;
  duration : Vtime.t;
  messages : int;
}

let snapshot t =
  let n = Cluster.num_nodes t in
  let msgs = Array.init n (fun i -> Cluster.delivered_at t i) in
  let bytes = Array.init n (fun i -> Cluster.delivered_bytes_at t i) in
  (msgs, bytes)

let measure_throughput t ~warmup ~duration =
  Cluster.run_for t warmup;
  let msgs0, bytes0 = snapshot t in
  Cluster.run_for t duration;
  let msgs1, bytes1 = snapshot t in
  let n = Cluster.num_nodes t in
  let dmsgs = ref 0.0 and dbytes = ref 0.0 in
  for i = 0 to n - 1 do
    dmsgs := !dmsgs +. float_of_int (msgs1.(i) - msgs0.(i));
    dbytes := !dbytes +. float_of_int (bytes1.(i) - bytes0.(i))
  done;
  (* Every message is delivered once at every node: averaging per-node
     deltas gives the system-wide ordered-message rate. *)
  let per_node_msgs = !dmsgs /. float_of_int n in
  let per_node_bytes = !dbytes /. float_of_int n in
  let seconds = Vtime.to_float_sec duration in
  {
    msgs_per_sec = per_node_msgs /. seconds;
    kbytes_per_sec = per_node_bytes /. seconds /. 1024.0;
    duration;
    messages = int_of_float per_node_msgs;
  }

let events_processed t = Cluster.events_processed t

type latency_probe = {
  summary : Stats.Summary.t;
  histogram : Stats.Histogram.t;
  mutable armed_at : Vtime.t;
}

(* Log-spaced millisecond buckets from 10 us to ~10 s. *)
let latency_buckets =
  Array.init 60 (fun i -> 0.01 *. (1.26 ** float_of_int i))

let fresh_probe armed_at =
  {
    summary = Stats.Summary.create ();
    histogram = Stats.Histogram.create ~buckets:latency_buckets;
    armed_at;
  }

let observe_latency probe ~sent ~delivered =
  let lat = Vtime.to_float_ms (Vtime.sub delivered sent) in
  Stats.Summary.observe probe.summary lat;
  Stats.Histogram.observe probe.histogram lat

let install_latency t =
  let probe = fresh_probe (Cluster.now t) in
  Cluster.on_deliver t (fun _node m ->
      match m.Srp.Message.data with
      | Workload.Stamped sent when sent >= probe.armed_at ->
        observe_latency probe ~sent ~delivered:(Cluster.now t)
      | _ -> ());
  probe

(* A probe fed from a causal trace's per-message latency records
   instead of live deliveries: the same quantile/bucket machinery, so
   causally-traced runs and Workload.Stamped runs report through one
   code path. *)
let probe_of_causal causal =
  let probe = fresh_probe Vtime.zero in
  List.iter
    (fun (l : Causal.latency) ->
      observe_latency probe ~sent:l.Causal.l_sent
        ~delivered:l.Causal.l_delivered)
    (Causal.latencies causal);
  probe

let latency_count probe = Stats.Summary.count probe.summary

(* Empty probes (n = 0) yield None rather than nan quantiles / nan
   means, so JSON emitters write an explicit null instead. *)
let latency_summary probe =
  if latency_count probe = 0 then None else Some probe.summary

let latency_quantile probe q =
  if latency_count probe = 0 then None
  else Some (Stats.Histogram.quantile probe.histogram q)

let latency_histogram_dump probe = Stats.Histogram.dump probe.histogram

(* --- per-point protocol telemetry ----------------------------------- *)

type fault_sampler = {
  fsam_interval : Vtime.t;
  mutable fsam_samples : (Vtime.t * int array) list;  (* newest first *)
}

(* Periodically snapshot the worst per-network problemCounter across all
   nodes (active replication only; other styles sample zeros). The
   sampler is read-only and is installed unconditionally by the bench
   driver, so its scheduled ticks exist whether or not tracing is on —
   figures stay bitwise identical either way. *)
let install_fault_sampler t ~interval =
  let num_nets = (Cluster.config t).Config.num_nets in
  let sampler = { fsam_interval = interval; fsam_samples = [] } in
  let rec tick () =
    let nets = Array.make num_nets 0 in
    Cluster.iter_nodes t (fun n ->
        match Totem_rrp.Rrp.as_active (Cluster.rrp n) with
        | Some a ->
          for net = 0 to num_nets - 1 do
            nets.(net) <-
              max nets.(net) (Totem_rrp.Active.problem_counter a ~net)
          done
        | None -> ());
    sampler.fsam_samples <- (Cluster.now t, nets) :: sampler.fsam_samples;
    ignore (Sim.schedule (Cluster.sim t) ~delay:interval tick)
  in
  ignore (Sim.schedule (Cluster.sim t) ~delay:interval tick);
  sampler

let fault_trajectory sampler = List.rev sampler.fsam_samples

type point_telemetry = {
  pt_rotation_count : int;
  pt_rotation_p50 : float;
  pt_rotation_p90 : float;
  pt_rotation_p99 : float;
  pt_rotation_buckets : (float * int) array;
  pt_retransmits_served : int;
  pt_retransmits_requested : int;
  pt_token_retransmits : int;
  pt_duplicate_packets : int;
  pt_duplicate_tokens : int;
  pt_trajectory : (float * int array) list;
}

let quantile_of_dump dump total q =
  if total = 0 then nan
  else begin
    let target = q *. float_of_int total in
    let acc = ref 0 in
    let result = ref infinity in
    (try
       Array.iter
         (fun (le, n) ->
           acc := !acc + n;
           if float_of_int !acc >= target then begin
             result := le;
             raise Exit
           end)
         dump
     with Exit -> ());
    !result
  end

let collect_point_telemetry ?sampler t =
  (* Rotation histograms live per node but only ring leaders observe;
     merging bucket-wise covers leadership changes. *)
  let merged = ref [||] in
  let served = ref 0 and requested = ref 0 and tok_rtr = ref 0 in
  let dup_p = ref 0 and dup_t = ref 0 in
  Cluster.iter_nodes t (fun n ->
      let srp = Cluster.srp n in
      let d = Stats.Histogram.dump (Srp.Srp.rotation_histogram srp) in
      if Array.length !merged = 0 then merged := Array.copy d
      else
        Array.iteri
          (fun i (le, c) ->
            let _, c0 = !merged.(i) in
            !merged.(i) <- (le, c0 + c))
          d;
      let s = Srp.Srp.stats srp in
      served := !served + s.Srp.Srp.retransmissions_served;
      requested := !requested + s.Srp.Srp.retransmissions_requested;
      tok_rtr := !tok_rtr + s.Srp.Srp.token_retransmits;
      dup_p := !dup_p + s.Srp.Srp.duplicate_packets;
      dup_t := !dup_t + s.Srp.Srp.duplicate_tokens);
  let total = Array.fold_left (fun acc (_, c) -> acc + c) 0 !merged in
  {
    pt_rotation_count = total;
    pt_rotation_p50 = quantile_of_dump !merged total 0.5;
    pt_rotation_p90 = quantile_of_dump !merged total 0.9;
    pt_rotation_p99 = quantile_of_dump !merged total 0.99;
    pt_rotation_buckets = !merged;
    pt_retransmits_served = !served;
    pt_retransmits_requested = !requested;
    pt_token_retransmits = !tok_rtr;
    pt_duplicate_packets = !dup_p;
    pt_duplicate_tokens = !dup_t;
    pt_trajectory =
      (match sampler with
      | None -> []
      | Some s ->
        List.map
          (fun (time, nets) -> (Vtime.to_float_ms time, nets))
          (fault_trajectory s));
  }

let network_utilisation t ~net =
  let network = Totem_net.Fabric.network (Cluster.fabric t) net in
  let elapsed = Vtime.to_float_sec (Cluster.now t) in
  if elapsed <= 0.0 then 0.0
  else
    let frames = float_of_int (Totem_net.Network.frames_sent network) in
    let bytes = float_of_int (Totem_net.Network.bytes_on_wire network) in
    let wire_bits =
      8.0 *. (bytes +. (frames *. float_of_int Totem_net.Frame.preamble_ifg_bytes))
    in
    let bandwidth =
      float_of_int (Totem_net.Network.config network).Totem_net.Network.bandwidth_bps
    in
    wire_bits /. elapsed /. bandwidth
