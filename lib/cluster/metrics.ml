open Totem_engine
module Srp = Totem_srp

type throughput = {
  msgs_per_sec : float;
  kbytes_per_sec : float;
  duration : Vtime.t;
  messages : int;
}

let snapshot t =
  let n = Cluster.num_nodes t in
  let msgs = Array.init n (fun i -> Cluster.delivered_at t i) in
  let bytes = Array.init n (fun i -> Cluster.delivered_bytes_at t i) in
  (msgs, bytes)

let measure_throughput t ~warmup ~duration =
  Cluster.run_for t warmup;
  let msgs0, bytes0 = snapshot t in
  Cluster.run_for t duration;
  let msgs1, bytes1 = snapshot t in
  let n = Cluster.num_nodes t in
  let dmsgs = ref 0.0 and dbytes = ref 0.0 in
  for i = 0 to n - 1 do
    dmsgs := !dmsgs +. float_of_int (msgs1.(i) - msgs0.(i));
    dbytes := !dbytes +. float_of_int (bytes1.(i) - bytes0.(i))
  done;
  (* Every message is delivered once at every node: averaging per-node
     deltas gives the system-wide ordered-message rate. *)
  let per_node_msgs = !dmsgs /. float_of_int n in
  let per_node_bytes = !dbytes /. float_of_int n in
  let seconds = Vtime.to_float_sec duration in
  {
    msgs_per_sec = per_node_msgs /. seconds;
    kbytes_per_sec = per_node_bytes /. seconds /. 1024.0;
    duration;
    messages = int_of_float per_node_msgs;
  }

let events_processed t = Sim.events_processed (Cluster.sim t)

type latency_probe = {
  summary : Stats.Summary.t;
  histogram : Stats.Histogram.t;
  mutable armed_at : Vtime.t;
}

(* Log-spaced millisecond buckets from 10 us to ~10 s. *)
let latency_buckets =
  Array.init 60 (fun i -> 0.01 *. (1.26 ** float_of_int i))

let install_latency t =
  let probe =
    {
      summary = Stats.Summary.create ();
      histogram = Stats.Histogram.create ~buckets:latency_buckets;
      armed_at = Cluster.now t;
    }
  in
  Cluster.on_deliver t (fun _node m ->
      match m.Srp.Message.data with
      | Workload.Stamped sent when sent >= probe.armed_at ->
        let lat = Vtime.to_float_ms (Vtime.sub (Cluster.now t) sent) in
        Stats.Summary.observe probe.summary lat;
        Stats.Histogram.observe probe.histogram lat
      | _ -> ());
  probe

let latency_summary probe = probe.summary

let latency_quantile probe q = Stats.Histogram.quantile probe.histogram q

let network_utilisation t ~net =
  let network = Totem_net.Fabric.network (Cluster.fabric t) net in
  let elapsed = Vtime.to_float_sec (Cluster.now t) in
  if elapsed <= 0.0 then 0.0
  else
    let frames = float_of_int (Totem_net.Network.frames_sent network) in
    let bytes = float_of_int (Totem_net.Network.bytes_on_wire network) in
    let wire_bits =
      8.0 *. (bytes +. (frames *. float_of_int Totem_net.Frame.preamble_ifg_bytes))
    in
    let bandwidth =
      float_of_int (Totem_net.Network.config network).Totem_net.Network.bandwidth_bps
    in
    wire_bits /. elapsed /. bandwidth
