type network_row = {
  net : Totem_net.Addr.net_id;
  frames_sent : int;
  frames_delivered : int;
  frames_lost : int;
  frames_faulted : int;
  kbytes_on_wire : float;
  utilisation : float;
  buffer_drops : int;
  marked_faulty_by : Totem_net.Addr.node_id list;
}

let collect t =
  let fabric = Cluster.fabric t in
  List.init (Totem_net.Fabric.num_nets fabric) (fun net ->
      let network = Totem_net.Fabric.network fabric net in
      let buffer_drops = ref 0 in
      let marked = ref [] in
      for node = Cluster.num_nodes t - 1 downto 0 do
        let nic = Totem_net.Fabric.nic fabric ~node ~net in
        buffer_drops := !buffer_drops + Totem_net.Nic.frames_dropped_buffer nic;
        if (Totem_rrp.Rrp.faulty (Cluster.rrp (Cluster.node t node))).(net) then
          marked := node :: !marked
      done;
      {
        net;
        frames_sent = Totem_net.Network.frames_sent network;
        frames_delivered = Totem_net.Network.frames_delivered network;
        frames_lost = Totem_net.Network.frames_lost network;
        frames_faulted = Totem_net.Network.frames_faulted network;
        kbytes_on_wire =
          float_of_int (Totem_net.Network.bytes_on_wire network) /. 1024.0;
        utilisation = Metrics.network_utilisation t ~net;
        buffer_drops = !buffer_drops;
        marked_faulty_by = !marked;
      })

let print ?(out = Format.std_formatter) t =
  Format.fprintf out
    "%-6s %10s %10s %8s %8s %12s %7s %9s  %s@." "net" "sent" "delivered"
    "lost" "faulted" "KB on wire" "util%" "buf drops" "marked faulty by";
  List.iter
    (fun r ->
      Format.fprintf out "%-6s %10d %10d %8d %8d %12.0f %7.1f %9d  [%s]@."
        (Format.asprintf "%a" Totem_net.Addr.pp_net r.net)
        r.frames_sent r.frames_delivered r.frames_lost r.frames_faulted
        r.kbytes_on_wire (100.0 *. r.utilisation) r.buffer_drops
        (String.concat ";" (List.map string_of_int r.marked_faulty_by)))
    (collect t)

(* Per-node protocol dashboard: the SRP counters plus rotation timing,
   one row per node, followed by the telemetry registry dump. *)
let print_protocol ?(out = Format.std_formatter) t =
  Format.fprintf out "%-6s %10s %10s %8s %8s %8s %8s %10s@." "node"
    "delivered" "sent" "dup pkt" "dup tok" "rtr out" "rtr req" "tok visits";
  Cluster.iter_nodes t (fun n ->
      let module Srp = Totem_srp.Srp in
      let s = Srp.stats (Cluster.srp n) in
      Format.fprintf out "%-6s %10d %10d %8d %8d %8d %8d %10d@."
        (Printf.sprintf "N%d" (Srp.me (Cluster.srp n)))
        s.Srp.delivered_messages s.Srp.sent_messages s.Srp.duplicate_packets
        s.Srp.duplicate_tokens s.Srp.retransmissions_served
        s.Srp.retransmissions_requested s.Srp.token_visits);
  let pt = Metrics.collect_point_telemetry t in
  if pt.Metrics.pt_rotation_count > 0 then
    Format.fprintf out
      "token rotations: %d  p50=%.3fms p90=%.3fms p99=%.3fms@."
      pt.Metrics.pt_rotation_count pt.Metrics.pt_rotation_p50
      pt.Metrics.pt_rotation_p90 pt.Metrics.pt_rotation_p99

let print_telemetry ?(out = Format.std_formatter) t =
  Totem_engine.Telemetry.pp_metrics out (Cluster.telemetry t)
