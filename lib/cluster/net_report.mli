(** Per-network observability: the counters an administrator would look
    at after an alarm (frames on the wire, losses, faults, utilisation,
    buffer drops per NIC). *)

type network_row = {
  net : Totem_net.Addr.net_id;
  frames_sent : int;
  frames_delivered : int;
  frames_lost : int;  (** dropped by the sporadic-loss process *)
  frames_faulted : int;  (** dropped by injected deterministic faults *)
  kbytes_on_wire : float;
  utilisation : float;  (** of the network's bandwidth, since start *)
  buffer_drops : int;  (** socket-buffer overflows summed over NICs *)
  marked_faulty_by : Totem_net.Addr.node_id list;
      (** nodes currently refusing to send on it *)
}

val collect : Cluster.t -> network_row list

val print : ?out:Format.formatter -> Cluster.t -> unit
(** A table, one row per network. *)

val print_protocol : ?out:Format.formatter -> Cluster.t -> unit
(** Per-node protocol dashboard: SRP delivery/duplicate/retransmission
    counters and merged token-rotation quantiles. *)

val print_telemetry : ?out:Format.formatter -> Cluster.t -> unit
(** Dump the cluster's telemetry registry (counters, gauges,
    histograms) as a name/value table. *)
