type t = {
  num_nodes : int;
  num_nets : int;
  style : Totem_rrp.Style.t;
  const : Totem_srp.Const.t;
  rrp : Totem_rrp.Rrp_config.t;
  net : Totem_net.Network.config;
  net_configs : Totem_net.Network.config array option;
  buffer_bytes : int;
  seed : int;
  codec_shadow : bool;
  wire_bytes : bool;
  wire_cache : bool;
  sim_domains : int;
  window_batch : bool;
  max_horizon_factor : int;
}

let make ?(num_nodes = 4) ?(num_nets = 2) ?(style = Totem_rrp.Style.Passive)
    ?(const = Totem_srp.Const.default) ?(rrp = Totem_rrp.Rrp_config.default)
    ?(net = Totem_net.Network.default_config) ?net_configs
    ?(buffer_bytes = 65536) ?(seed = 42) ?(codec_shadow = false)
    ?(wire_bytes = false) ?(wire_cache = true) ?(sim_domains = 0)
    ?(window_batch = true) ?(max_horizon_factor = 8) () =
  {
    num_nodes;
    num_nets;
    style;
    const;
    rrp;
    net;
    net_configs;
    buffer_bytes;
    seed;
    codec_shadow;
    wire_bytes;
    wire_cache;
    sim_domains;
    window_batch;
    max_horizon_factor;
  }

let paper_testbed ~num_nodes ~style = make ~num_nodes ~num_nets:2 ~style ()

(* The conservative lookahead the parallel core synchronizes on. *)
let min_net_latency t =
  match t.net_configs with
  | Some cs ->
    Array.fold_left
      (fun acc (c : Totem_net.Network.config) -> min acc c.latency)
      max_int cs
  | None -> t.net.Totem_net.Network.latency

let validate t =
  if t.num_nodes < 1 then Error "need at least one node"
  else if t.num_nets < 1 then Error "need at least one network"
  else if t.sim_domains < 0 then Error "sim_domains must be >= 0"
  else if t.sim_domains > 0 && min_net_latency t <= 0 then
    Error "sim_domains requires a positive network latency (the lookahead)"
  else if t.max_horizon_factor < 1 then Error "max_horizon_factor must be >= 1"
  else
    match t.net_configs with
    | Some cs when Array.length cs <> t.num_nets ->
      Error "net_configs length must equal num_nets"
    | _ -> Totem_rrp.Style.validate t.style ~num_nets:t.num_nets
