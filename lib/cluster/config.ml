type t = {
  num_nodes : int;
  num_nets : int;
  style : Totem_rrp.Style.t;
  const : Totem_srp.Const.t;
  rrp : Totem_rrp.Rrp_config.t;
  net : Totem_net.Network.config;
  net_configs : Totem_net.Network.config array option;
  buffer_bytes : int;
  seed : int;
  codec_shadow : bool;
  wire_bytes : bool;
  wire_cache : bool;
}

let make ?(num_nodes = 4) ?(num_nets = 2) ?(style = Totem_rrp.Style.Passive)
    ?(const = Totem_srp.Const.default) ?(rrp = Totem_rrp.Rrp_config.default)
    ?(net = Totem_net.Network.default_config) ?net_configs
    ?(buffer_bytes = 65536) ?(seed = 42) ?(codec_shadow = false)
    ?(wire_bytes = false) ?(wire_cache = true) () =
  {
    num_nodes;
    num_nets;
    style;
    const;
    rrp;
    net;
    net_configs;
    buffer_bytes;
    seed;
    codec_shadow;
    wire_bytes;
    wire_cache;
  }

let paper_testbed ~num_nodes ~style = make ~num_nodes ~num_nets:2 ~style ()

let validate t =
  if t.num_nodes < 1 then Error "need at least one node"
  else if t.num_nets < 1 then Error "need at least one network"
  else
    match t.net_configs with
    | Some cs when Array.length cs <> t.num_nets ->
      Error "net_configs length must equal num_nets"
    | _ -> Totem_rrp.Style.validate t.style ~num_nets:t.num_nets
