open Totem_engine
module Srp = Totem_srp
module Rrp = Totem_rrp

type node = {
  id : Totem_net.Addr.node_id;
  cpu : Cpu.t;
  srp : Srp.Srp.t;
  rrp : Rrp.Rrp.t;
}

type t = {
  config : Config.t;
  sim : Sim.t;
  fabric : Totem_net.Fabric.t;
  trace : Trace.t;
  mutable nodes : node array;
  mutable deliver_hooks :
    (Totem_net.Addr.node_id -> Srp.Message.t -> unit) list;
  mutable report_hooks :
    (Totem_net.Addr.node_id -> Rrp.Fault_report.t -> unit) list;
  mutable ring_hooks :
    (Totem_net.Addr.node_id ->
    ring_id:int ->
    members:Totem_net.Addr.node_id array ->
    unit)
    list;
  mutable reports : (Totem_net.Addr.node_id * Rrp.Fault_report.t) list;
  (* Decode-once delivery (wire mode with wire_cache): one cache per
     cluster, shared by every receiving NIC — the point is precisely
     that M receivers of a broadcast recognize the same physical byte
     string. Per-cluster, never global: bench sweeps run clusters on
     parallel domains. Under the parallel core the cache is per node
     instead ([decode_caches]): receivers on different domains must not
     share a mutable cache, so each node recognizes its own copy once. *)
  decode_cache : Srp.Codec.decode_cache option;
  decode_caches : Srp.Codec.decode_cache array option;
  (* Parallel simulator core (Config.sim_domains > 0): per-node
     partition simulators and buffered telemetry hubs, synchronized by
     the exchange. In classic mode every slot aliases [sim] / [trace]
     and [exchange] is [None]. *)
  node_sims : Sim.t array;
  node_tele : Telemetry.t array;
  mutable exchange : Exchange.t option;
}

let build_node t id =
  let config = t.config in
  (* Classic mode: every node's sim/telemetry alias the cluster's. Under
     the parallel core each node gets its own partition and buffered
     hub, and cluster-level hook callbacks are deferred through the hub
     so they fire at barriers in canonical (time, node, seq) order. *)
  let nsim = t.node_sims.(id) in
  let ntl = t.node_tele.(id) in
  let cpu = Cpu.create nsim ~name:(Printf.sprintf "cpu%d" id) in
  let rrp =
    Rrp.Rrp.create nsim ~fabric:t.fabric ~node:id ~const:config.Config.const
      ~config:config.Config.rrp ~style:config.Config.style ~trace:ntl ()
  in
  let callbacks =
    {
      Srp.Srp.on_deliver =
        (fun m ->
          if t.deliver_hooks <> [] then
            Telemetry.defer ntl (fun () ->
                List.iter (fun h -> h id m) t.deliver_hooks));
      on_ring_change =
        (fun ~ring_id ~members ->
          if t.ring_hooks <> [] then
            Telemetry.defer ntl (fun () ->
                List.iter (fun h -> h id ~ring_id ~members) t.ring_hooks));
    }
  in
  let srp =
    Srp.Srp.create nsim ~cpu ~const:config.Config.const ~me:id
      ~lower:(Rrp.Rrp.lower rrp) ~trace:ntl callbacks
  in
  Rrp.Rrp.connect rrp
    ~deliver_data:(Srp.Srp.recv_data srp)
    ~deliver_token:(Srp.Srp.token_arrived srp)
    ~deliver_join:(Srp.Srp.recv_join srp)
    ~deliver_probe:(Srp.Srp.recv_probe srp)
    ~deliver_commit:(Srp.Srp.recv_commit srp)
    ~my_aru:(fun () -> Srp.Srp.my_aru srp)
    ~my_ring_id:(fun () -> Srp.Srp.current_ring_id srp)
    ~on_fault_report:(fun report ->
      Telemetry.defer ntl (fun () ->
          t.reports <- t.reports @ [ (id, report) ];
          List.iter (fun h -> h id report) t.report_hooks));
  let recv_cost frame =
    Srp.Const.frame_cpu_cost config.Config.const
      ~payload_bytes:frame.Totem_net.Frame.payload_bytes
  in
  let shadow frame =
    if config.Config.codec_shadow then begin
      match Srp.Codec.shadow_check frame.Totem_net.Frame.payload with
      | Ok () -> ()
      | Error msg -> failwith ("codec shadow check failed: " ^ msg)
    end
  in
  (* The receiving-NIC end of wire mode: CRC check, total decode and
     semantic validation; any failure discards the frame before the RRP
     sees it, which is how corruption becomes the loss that feeds
     problemCounter (active) and stalls recvCount (passive). *)
  let decode_cache =
    match t.decode_caches with
    | Some caches -> Some caches.(id)
    | None -> t.decode_cache
  in
  let receive ~net frame =
    match frame.Totem_net.Frame.payload with
    | Totem_net.Frame.Bytes _ -> (
      match
        Srp.Codec.decode_frame ?cache:decode_cache
          ~max_node:(config.Config.num_nodes - 1) frame
      with
      | Ok frame ->
        shadow frame;
        Rrp.Rrp.frame_received rrp ~net frame
      | Error err ->
        let tl = ntl in
        if Telemetry.active tl then
          Telemetry.emit tl
            (match err with
            | Srp.Codec.Crc_mismatch ->
              Telemetry.Frame_crc_reject
                { node = id; net; src = frame.Totem_net.Frame.src }
            | Srp.Codec.Malformed e ->
              Telemetry.Frame_decode_reject
                {
                  node = id;
                  net;
                  src = frame.Totem_net.Frame.src;
                  error = Format.asprintf "%a" Srp.Codec.pp_error e;
                }))
    | _ ->
      shadow frame;
      Rrp.Rrp.frame_received rrp ~net frame
  in
  Totem_net.Fabric.attach_node t.fabric ~node:id ~cpu ~recv_cost
    ~buffer_bytes:config.Config.buffer_bytes receive;
  { id; cpu; srp; rrp }

let create config =
  (match Config.validate config with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Cluster.create: " ^ msg));
  let num_nodes = config.Config.num_nodes in
  let partitioned = config.Config.sim_domains > 0 in
  let sim = Sim.create ~seed:config.Config.seed () in
  (* One telemetry hub per cluster; [Trace.t] is an alias for it, so the
     legacy trace API and the structured registry share the stream. *)
  let telemetry = Telemetry.create sim in
  (* Partition assignment is structural: one simulator per node plus the
     coordinator [sim], whatever the domain count — Config.sim_domains
     only sets how many workers execute them, which is what keeps
     figures bitwise-identical across domain counts. Node partitions
     carry derived seeds, but protocol code draws no randomness from
     them (all stochastic models live in the network layer, which runs
     coordinator-side at barriers); only node-targeted workload
     generators use node-partition streams. *)
  let node_sims =
    if partitioned then
      Array.init num_nodes (fun i ->
          Sim.create ~seed:(config.Config.seed + (1000003 * (i + 1))) ())
    else Array.make num_nodes sim
  in
  let node_tele =
    if partitioned then begin
      Telemetry.set_buffering telemetry true;
      Array.init num_nodes (fun i ->
          Telemetry.create_child telemetry ~source:i node_sims.(i))
    end
    else Array.make num_nodes telemetry
  in
  let fabric =
    Totem_net.Fabric.create sim ~num_nodes
      ~num_nets:config.Config.num_nets ~config:config.Config.net
      ?configs:config.Config.net_configs ~telemetry ()
  in
  if partitioned then
    Totem_net.Fabric.set_partitions fabric ~node_telemetry:node_tele node_sims;
  let cached = config.Config.wire_bytes && config.Config.wire_cache in
  let encode_cache =
    if cached then Some (Srp.Codec.encode_cache ()) else None
  in
  let t =
    {
      config;
      sim;
      fabric;
      trace = telemetry;
      nodes = [||];
      deliver_hooks = [];
      report_hooks = [];
      ring_hooks = [];
      reports = [];
      decode_cache =
        (if cached && not partitioned then Some (Srp.Codec.decode_cache ())
         else None);
      decode_caches =
        (if cached && partitioned then
           Some (Array.init num_nodes (fun _ -> Srp.Codec.decode_cache ()))
         else None);
      node_sims;
      node_tele;
      exchange = None;
    }
  in
  if config.Config.wire_bytes then begin
    (* The fabric-level memo and the codec-level caches are the two
       halves of encode-once fan-out; both off when wire_cache is
       false (the A/B baseline re-serializes every copy). *)
    Totem_net.Fabric.set_wire_encoder fabric ~memoize:cached (fun frame ->
        Srp.Codec.encode_frame ?cache:encode_cache frame);
    let decode_stats =
      match (t.decode_cache, t.decode_caches) with
      | Some dc, _ -> Some (fun () -> Srp.Codec.decode_cache_stats dc)
      | None, Some caches ->
        Some
          (fun () ->
            Array.fold_left
              (fun (h, m) dc ->
                let h', m' = Srp.Codec.decode_cache_stats dc in
                (h + h', m + m'))
              (0, 0) caches)
      | None, None -> None
    in
    match (encode_cache, decode_stats) with
    | Some ec, Some ds ->
      let g name read =
        Telemetry.gauge telemetry ("wire." ^ name) (fun () ->
            float_of_int (read ()))
      in
      g "encode_cache_hits" (fun () -> fst (Srp.Codec.encode_cache_stats ec));
      g "encode_cache_misses" (fun () ->
          snd (Srp.Codec.encode_cache_stats ec));
      g "decode_cache_hits" (fun () -> fst (ds ()));
      g "decode_cache_misses" (fun () -> snd (ds ()))
    | _ -> ()
  end;
  t.nodes <- Array.init num_nodes (build_node t);
  if partitioned then begin
    let exchange =
      Exchange.create ~domains:config.Config.sim_domains
        ~batching:config.Config.window_batch
        ~max_horizon_factor:config.Config.max_horizon_factor
        ~lookahead:(Totem_net.Fabric.min_latency fabric)
        ~global:sim ~parts:node_sims ()
    in
    (* Barrier order matters: flushing sends first lets the network
       layer's own telemetry (loss, corruption, blocks) join the same
       drain that dispatches node events. Both hooks report pending
       work via ~next — with batching on, a missing ~next would let a
       skip-flush barrier strand buffered work past its window. *)
    Exchange.add_barrier_hook exchange
      ~next:(fun () -> Totem_net.Fabric.outbox_next fabric)
      (fun _h1 -> Totem_net.Fabric.flush_outboxes fabric);
    Exchange.add_barrier_hook exchange
      ~next:(fun () -> Telemetry.buffered_next telemetry ~children:node_tele)
      (fun _h1 ->
        Telemetry.drain telemetry ~children:node_tele
          ~set_clock:(Sim.unsafe_set_clock sim));
    let g name read =
      Telemetry.gauge telemetry ("exchange." ^ name) (fun () -> read ())
    in
    g "windows_run" (fun () ->
        float_of_int (Exchange.stats exchange).Exchange.windows_run);
    g "windows_batched" (fun () ->
        float_of_int (Exchange.stats exchange).Exchange.windows_batched);
    g "windows_widened" (fun () ->
        float_of_int (Exchange.stats exchange).Exchange.windows_widened);
    g "max_window_us" (fun () ->
        float_of_int (Exchange.stats exchange).Exchange.max_window /. 1000.);
    t.exchange <- Some exchange
  end;
  for i = 0 to config.Config.num_nets - 1 do
    let net = Totem_net.Fabric.network fabric i in
    let g name read =
      Telemetry.gauge telemetry
        (Printf.sprintf "net.%d.%s" i name)
        (fun () -> float_of_int (read net))
    in
    g "frames_sent" Totem_net.Network.frames_sent;
    g "frames_delivered" Totem_net.Network.frames_delivered;
    g "frames_lost" Totem_net.Network.frames_lost;
    g "frames_faulted" Totem_net.Network.frames_faulted;
    g "frames_corrupted" Totem_net.Network.frames_corrupted;
    g "frames_burst_lost" Totem_net.Network.frames_burst_lost;
    g "frames_dir_lost" Totem_net.Network.frames_dir_lost;
    g "frames_delay_spiked" Totem_net.Network.frames_delay_spiked;
    g "frames_duplicated" Totem_net.Network.frames_duplicated;
    g "frames_reordered" Totem_net.Network.frames_reordered;
    g "wire_bytes" Totem_net.Network.bytes_on_wire
  done;
  t

let all_members t = Array.init (Array.length t.nodes) (fun i -> i)

let start t =
  let members = all_members t in
  Array.iter
    (fun n -> Srp.Srp.install_ring n.srp ~ring_id:1 ~members)
    t.nodes;
  Srp.Srp.bootstrap_token t.nodes.(0).srp

let start_cold t =
  Array.iter (fun n -> Srp.Srp.start_gathering n.srp) t.nodes

let sim t = t.sim
let node_sim t id = t.node_sims.(id)
let now t = Sim.now t.sim

let run_until t time =
  match t.exchange with
  | Some ex -> Exchange.run_until ex time
  | None -> Sim.run_until t.sim time

let run_for t d = run_until t (Vtime.add (Sim.now t.sim) d)

let shutdown t =
  match t.exchange with Some ex -> Exchange.shutdown ex | None -> ()
let config t = t.config
let trace t = t.trace
let telemetry t = t.trace
let exchange t = t.exchange

let events_processed t =
  match t.exchange with
  | Some ex -> Exchange.events_processed ex
  | None -> Sim.events_processed t.sim

let num_nodes t = Array.length t.nodes
let node t id = t.nodes.(id)
let srp n = n.srp
let rrp n = n.rrp
let cpu n = n.cpu
let iter_nodes t f = Array.iter f t.nodes
let crash_node t id = Srp.Srp.crash t.nodes.(id).srp
let recover_node t id = Srp.Srp.recover t.nodes.(id).srp

let on_deliver t h = t.deliver_hooks <- t.deliver_hooks @ [ h ]
let on_fault_report t h = t.report_hooks <- t.report_hooks @ [ h ]
let on_ring_change t h = t.ring_hooks <- t.ring_hooks @ [ h ]
let fault_reports t = t.reports

let fabric t = t.fabric

let fail_network t net =
  Totem_net.Fault.set_down (Totem_net.Fabric.fault t.fabric net) true

let heal_network t net =
  Totem_net.Fault.heal (Totem_net.Fabric.fault t.fabric net);
  Array.iter (fun n -> Rrp.Rrp.clear_fault n.rrp ~net) t.nodes

let set_network_loss t net p =
  Totem_net.Fault.set_loss_probability (Totem_net.Fabric.fault t.fabric net) p

let set_network_corruption t net p =
  Totem_net.Fault.set_corruption_probability
    (Totem_net.Fabric.fault t.fabric net)
    p

let set_network_burst_loss t net ~p_enter ~p_exit =
  Totem_net.Fault.set_burst_loss
    (Totem_net.Fabric.fault t.fabric net)
    ~p_enter ~p_exit

let set_network_delay t net ~factor ~spike_prob =
  (* Spikes are sized relative to the network's own propagation delay:
     a spike is uniform in [1, 10 * latency], i.e. up to an order of
     magnitude above nominal — large enough to trip timers, small
     enough to stay within one token timeout at the defaults. *)
  let network = Totem_net.Fabric.network t.fabric net in
  let latency = (Totem_net.Network.config network).Totem_net.Network.latency in
  Totem_net.Fault.set_delay
    (Totem_net.Fabric.fault t.fabric net)
    ~factor ~spike_prob
    ~spike_ns:(10 * latency)

let set_network_dir_loss t net ~src ~dst p =
  Totem_net.Fault.set_dir_loss (Totem_net.Fabric.fault t.fabric net) ~src ~dst p

let set_network_duplicate t net p =
  Totem_net.Fault.set_duplicate (Totem_net.Fabric.fault t.fabric net) p

let set_network_reorder t net p =
  Totem_net.Fault.set_reorder (Totem_net.Fabric.fault t.fabric net) p

let block_send t ~node ~net =
  Totem_net.Fault.block_send (Totem_net.Fabric.fault t.fabric net) node

let block_recv t ~node ~net =
  Totem_net.Fault.block_recv (Totem_net.Fabric.fault t.fabric net) node

let unblock_send t ~node ~net =
  Totem_net.Fault.unblock_send (Totem_net.Fabric.fault t.fabric net) node

let unblock_recv t ~node ~net =
  Totem_net.Fault.unblock_recv (Totem_net.Fabric.fault t.fabric net) node

let partition t ~net ~from_nodes ~to_nodes =
  let fault = Totem_net.Fabric.fault t.fabric net in
  List.iter
    (fun src ->
      List.iter (fun dst -> Totem_net.Fault.block_pair fault ~src ~dst) to_nodes)
    from_nodes

let unpartition t ~net ~from_nodes ~to_nodes =
  let fault = Totem_net.Fabric.fault t.fabric net in
  List.iter
    (fun src ->
      List.iter (fun dst -> Totem_net.Fault.unblock_pair fault ~src ~dst) to_nodes)
    from_nodes

let total_delivered_messages t =
  Array.fold_left
    (fun acc n -> acc + (Srp.Srp.stats n.srp).Srp.Srp.delivered_messages)
    0 t.nodes

let delivered_at t id = (Srp.Srp.stats t.nodes.(id).srp).Srp.Srp.delivered_messages

let delivered_bytes_at t id =
  (Srp.Srp.stats t.nodes.(id).srp).Srp.Srp.delivered_bytes
