type row = {
  label : string;
  cells : float array;
}

let hrule out width = Format.fprintf out "%s@." (String.make width '-')

let print_table ?(out = Format.std_formatter) ~title ~columns rows =
  let label_width =
    List.fold_left (fun w r -> max w (String.length r.label)) 14 rows
  in
  let cell_width =
    Array.fold_left (fun w c -> max w (String.length c + 2)) 12 columns
  in
  let width = label_width + (Array.length columns * cell_width) in
  hrule out width;
  Format.fprintf out "%s@." title;
  hrule out width;
  Format.fprintf out "%-*s" label_width "";
  Array.iter (fun c -> Format.fprintf out "%*s" cell_width c) columns;
  Format.fprintf out "@.";
  List.iter
    (fun r ->
      Format.fprintf out "%-*s" label_width r.label;
      Array.iter (fun v -> Format.fprintf out "%*.1f" cell_width v) r.cells;
      Format.fprintf out "@.")
    rows;
  hrule out width

let print_series ?(out = Format.std_formatter) ~title ~x_label ~xs series =
  let columns = Array.of_list (List.map fst series) in
  let rows =
    Array.to_list
      (Array.mapi
         (fun i x ->
           {
             label = Printf.sprintf "%s=%d" x_label x;
             cells = Array.of_list (List.map (fun (_, ys) -> ys.(i)) series);
           })
         xs)
  in
  print_table ~out ~title ~columns rows

let csv_of_series ~x_label ~xs ~series =
  let buf = Buffer.create 256 in
  Buffer.add_string buf x_label;
  List.iter
    (fun (name, _) ->
      Buffer.add_char buf ',';
      Buffer.add_string buf name)
    series;
  Buffer.add_char buf '\n';
  Array.iteri
    (fun i x ->
      Buffer.add_string buf (string_of_int x);
      List.iter
        (fun (_, ys) -> Buffer.add_string buf (Printf.sprintf ",%.2f" ys.(i)))
        series;
      Buffer.add_char buf '\n')
    xs;
  Buffer.contents buf

(* A terminal rendering of one figure: log-scaled x (message length),
   optionally log-scaled y, one marker letter per series. *)
let ascii_plot ?(out = Format.std_formatter) ?(height = 18) ?(width = 64)
    ~title ~log_y ~xs series =
  if Array.length xs >= 2 && series <> [] then begin
    let fx v = log (float_of_int v) in
    let x_min = fx xs.(0) and x_max = fx xs.(Array.length xs - 1) in
    let ys = List.concat_map (fun (_, a) -> Array.to_list a) series in
    let ys = List.filter (fun v -> v > 0.0) ys in
    let fy v = if log_y then log v else v in
    let y_min = List.fold_left min infinity (List.map fy ys) in
    let y_max = List.fold_left max neg_infinity (List.map fy ys) in
    let y_span = if y_max -. y_min <= 0.0 then 1.0 else y_max -. y_min in
    let x_span = if x_max -. x_min <= 0.0 then 1.0 else x_max -. x_min in
    let grid = Array.make_matrix height width ' ' in
    let plot marker x y =
      if y > 0.0 then begin
        let col =
          int_of_float ((fx x -. x_min) /. x_span *. float_of_int (width - 1))
        in
        let row =
          height - 1
          - int_of_float ((fy y -. y_min) /. y_span *. float_of_int (height - 1))
        in
        let row = max 0 (min (height - 1) row) in
        let col = max 0 (min (width - 1) col) in
        grid.(row).(col) <- (if grid.(row).(col) = ' ' then marker else '*')
      end
    in
    List.iteri
      (fun si (_, values) ->
        let marker = Char.chr (Char.code 'a' + si) in
        Array.iteri (fun i x -> plot marker x values.(i)) xs)
      series;
    Format.fprintf out "%s@." title;
    Array.iteri
      (fun row line ->
        let label =
          if row = 0 then Printf.sprintf "%9.0f |" (if log_y then exp y_max else y_max)
          else if row = height - 1 then
            Printf.sprintf "%9.0f |" (if log_y then exp y_min else y_min)
          else "          |"
        in
        Format.fprintf out "%s%s@." label (String.init width (Array.get line)))
      grid;
    Format.fprintf out "          +%s@." (String.make width '-');
    Format.fprintf out "           %-10d%*d   (bytes, log scale)@." xs.(0)
      (width - 13) xs.(Array.length xs - 1);
    List.iteri
      (fun si (name, _) ->
        Format.fprintf out "           %c = %s@." (Char.chr (Char.code 'a' + si)) name)
      series
  end

let ratio a b = if b = 0.0 then 0.0 else a /. b

let print_sim_rate ?(out = Format.std_formatter) ~events ~wall_sec () =
  if wall_sec > 0.0 && events > 0 then
    Format.fprintf out "  (simulator: %d events in %.2fs wall, %.2fM events/sec)@."
      events wall_sec
      (float_of_int events /. wall_sec /. 1e6)
