(** Cluster configuration: everything needed to stand up a simulated
    testbed like the paper's (M workstations, N Ethernets, one
    replication style). *)

type t = {
  num_nodes : int;
  num_nets : int;
  style : Totem_rrp.Style.t;
  const : Totem_srp.Const.t;  (** SRP tunables and CPU cost model *)
  rrp : Totem_rrp.Rrp_config.t;
  net : Totem_net.Network.config;  (** applied to every network... *)
  net_configs : Totem_net.Network.config array option;
      (** ...unless per-network configs are given *)
  buffer_bytes : int;  (** socket receive buffer per NIC (64 KB, Sec. 8) *)
  seed : int;
  codec_shadow : bool;
      (** validate the binary codec against every frame the cluster
          carries: each payload is encoded and decoded back, and any
          mismatch aborts the run (testing aid); in wire mode the check
          runs on the payload the receiving NIC decoded *)
  wire_bytes : bool;
      (** byte-faithful wire mode: every payload is serialized through
          {!Totem_srp.Codec} with a CRC-32 trailer at the sending NIC
          and CRC-checked, totally decoded and validated at the
          receiving NIC; failures discard the frame exactly as loss.
          Timing-neutral absent corruption — the charged sizes do not
          change — but makes the corruption fault model
          ({!Totem_net.Fault.set_corruption_probability}) bit-accurate *)
  wire_cache : bool;
      (** encode-once/decode-once frame caching in wire mode (default
          [true]): one logical frame is serialized once for its
          N-network fan-out and a byte string decoded once for its
          M receivers, keyed on physical identity — corruption always
          substitutes fresh strings, so damaged copies miss the cache
          and take the full discard pipeline. [false] re-encodes and
          re-decodes every copy (the A/B baseline the equivalence
          tests compare against). Ignored unless [wire_bytes] *)
  sim_domains : int;
      (** parallel simulator core: [0] (the default) runs the classic
          single-simulator event loop; [N >= 1] partitions the cluster
          into one event domain per node plus a coordinator,
          synchronized by conservative lookahead (the minimum network
          latency) and executed on [N] OCaml domains. Figures,
          telemetry streams and chaos replays are bitwise-identical
          for every [N >= 1] — [N] only sets the worker count — but
          may differ from the [0] legacy path, whose send interleaving
          at equal timestamps is scheduling-order rather than
          canonical (time, node, seq) order *)
  window_batch : bool;
      (** amortized barriers for the parallel core (default [true]):
          barriers with no pending cross-partition work skip their
          flush pass, and stretches where a single node owns all
          near-term work run under an adaptively widened window (see
          [max_horizon_factor]). Results are bitwise-identical with
          batching on or off — the flag exists for A/B overhead
          measurement and as the baseline leg of the determinism
          tests. Ignored unless [sim_domains > 0] *)
  max_horizon_factor : int;
      (** widest adaptive window, as a multiple of the lookahead
          (default [8]). [1] keeps every window at one lookahead even
          with batching on. Ignored unless [window_batch] *)
}

val make :
  ?num_nodes:int ->
  ?num_nets:int ->
  ?style:Totem_rrp.Style.t ->
  ?const:Totem_srp.Const.t ->
  ?rrp:Totem_rrp.Rrp_config.t ->
  ?net:Totem_net.Network.config ->
  ?net_configs:Totem_net.Network.config array ->
  ?buffer_bytes:int ->
  ?seed:int ->
  ?codec_shadow:bool ->
  ?wire_bytes:bool ->
  ?wire_cache:bool ->
  ?sim_domains:int ->
  ?window_batch:bool ->
  ?max_horizon_factor:int ->
  unit ->
  t
(** Defaults: the paper's four-node, two-network testbed with passive
    replication, default protocol constants, 100 Mbit/s switched
    Ethernets, 64 KB socket buffers, seed 42. *)

val paper_testbed : num_nodes:int -> style:Totem_rrp.Style.t -> t
(** The Sec. 8 configuration: [num_nodes] hosts (4 or 6 in the paper),
    two 100 Mbit/s Ethernets. With [No_replication] only network 0 is
    used, exactly like the paper's baseline runs. *)

val min_net_latency : t -> Totem_engine.Vtime.t
(** Minimum configured network latency — the conservative lookahead
    bound the parallel simulator core ([sim_domains > 0]) synchronizes
    on. *)

val validate : t -> (unit, string) result
