type action =
  | Fail_network of Totem_net.Addr.net_id
  | Heal_network of Totem_net.Addr.net_id
  | Set_loss of Totem_net.Addr.net_id * float
  | Set_corrupt of Totem_net.Addr.net_id * float
  | Set_burst_loss of Totem_net.Addr.net_id * float * float
  | Set_delay_factor of Totem_net.Addr.net_id * float * float
  | Set_dir_loss of
      Totem_net.Addr.net_id * Totem_net.Addr.node_id * Totem_net.Addr.node_id
      * float
  | Set_duplicate of Totem_net.Addr.net_id * float
  | Set_reorder of Totem_net.Addr.net_id * float
  | Block_send of Totem_net.Addr.node_id * Totem_net.Addr.net_id
  | Unblock_send of Totem_net.Addr.node_id * Totem_net.Addr.net_id
  | Block_recv of Totem_net.Addr.node_id * Totem_net.Addr.net_id
  | Unblock_recv of Totem_net.Addr.node_id * Totem_net.Addr.net_id
  | Partition of {
      net : Totem_net.Addr.net_id;
      from_nodes : Totem_net.Addr.node_id list;
      to_nodes : Totem_net.Addr.node_id list;
    }
  | Unpartition of {
      net : Totem_net.Addr.net_id;
      from_nodes : Totem_net.Addr.node_id list;
      to_nodes : Totem_net.Addr.node_id list;
    }
  | Crash_node of Totem_net.Addr.node_id
  | Recover_node of Totem_net.Addr.node_id
  | Custom of (Cluster.t -> unit)

let pp_action ppf = function
  | Fail_network n -> Format.fprintf ppf "fail %a" Totem_net.Addr.pp_net n
  | Heal_network n -> Format.fprintf ppf "heal %a" Totem_net.Addr.pp_net n
  | Set_loss (n, p) ->
    Format.fprintf ppf "loss %.2f on %a" p Totem_net.Addr.pp_net n
  | Set_corrupt (n, p) ->
    Format.fprintf ppf "corrupt %.2f on %a" p Totem_net.Addr.pp_net n
  | Set_burst_loss (n, p_enter, p_exit) ->
    Format.fprintf ppf "burst loss %.3f/%.3f on %a" p_enter p_exit
      Totem_net.Addr.pp_net n
  | Set_delay_factor (n, factor, spike) ->
    Format.fprintf ppf "delay x%.2f spike %.2f on %a" factor spike
      Totem_net.Addr.pp_net n
  | Set_dir_loss (n, src, dst, p) ->
    Format.fprintf ppf "dir loss %.2f %a->%a on %a" p Totem_net.Addr.pp_node
      src Totem_net.Addr.pp_node dst Totem_net.Addr.pp_net n
  | Set_duplicate (n, p) ->
    Format.fprintf ppf "duplicate %.2f on %a" p Totem_net.Addr.pp_net n
  | Set_reorder (n, p) ->
    Format.fprintf ppf "reorder %.2f on %a" p Totem_net.Addr.pp_net n
  | Block_send (node, net) ->
    Format.fprintf ppf "block send %a on %a" Totem_net.Addr.pp_node node
      Totem_net.Addr.pp_net net
  | Unblock_send (node, net) ->
    Format.fprintf ppf "unblock send %a on %a" Totem_net.Addr.pp_node node
      Totem_net.Addr.pp_net net
  | Block_recv (node, net) ->
    Format.fprintf ppf "block recv %a on %a" Totem_net.Addr.pp_node node
      Totem_net.Addr.pp_net net
  | Unblock_recv (node, net) ->
    Format.fprintf ppf "unblock recv %a on %a" Totem_net.Addr.pp_node node
      Totem_net.Addr.pp_net net
  | Partition { net; from_nodes; to_nodes } ->
    Format.fprintf ppf "partition on %a: [%s] -x-> [%s]" Totem_net.Addr.pp_net
      net
      (String.concat "," (List.map string_of_int from_nodes))
      (String.concat "," (List.map string_of_int to_nodes))
  | Unpartition { net; from_nodes; to_nodes } ->
    Format.fprintf ppf "unpartition on %a: [%s] -> [%s]" Totem_net.Addr.pp_net
      net
      (String.concat "," (List.map string_of_int from_nodes))
      (String.concat "," (List.map string_of_int to_nodes))
  | Crash_node n -> Format.fprintf ppf "crash %a" Totem_net.Addr.pp_node n
  | Recover_node n -> Format.fprintf ppf "recover %a" Totem_net.Addr.pp_node n
  | Custom _ -> Format.pp_print_string ppf "custom action"

let apply t = function
  | Fail_network n -> Cluster.fail_network t n
  | Heal_network n -> Cluster.heal_network t n
  | Set_loss (n, p) -> Cluster.set_network_loss t n p
  | Set_corrupt (n, p) -> Cluster.set_network_corruption t n p
  | Set_burst_loss (n, p_enter, p_exit) ->
    Cluster.set_network_burst_loss t n ~p_enter ~p_exit
  | Set_delay_factor (n, factor, spike_prob) ->
    Cluster.set_network_delay t n ~factor ~spike_prob
  | Set_dir_loss (n, src, dst, p) -> Cluster.set_network_dir_loss t n ~src ~dst p
  | Set_duplicate (n, p) -> Cluster.set_network_duplicate t n p
  | Set_reorder (n, p) -> Cluster.set_network_reorder t n p
  | Block_send (node, net) -> Cluster.block_send t ~node ~net
  | Unblock_send (node, net) -> Cluster.unblock_send t ~node ~net
  | Block_recv (node, net) -> Cluster.block_recv t ~node ~net
  | Unblock_recv (node, net) -> Cluster.unblock_recv t ~node ~net
  | Partition { net; from_nodes; to_nodes } ->
    Cluster.partition t ~net ~from_nodes ~to_nodes
  | Unpartition { net; from_nodes; to_nodes } ->
    Cluster.unpartition t ~net ~from_nodes ~to_nodes
  | Crash_node n -> Cluster.crash_node t n
  | Recover_node n -> Cluster.recover_node t n
  | Custom f -> f t

let schedule t events =
  List.iter
    (fun (time, action) ->
      ignore
        (Totem_engine.Sim.schedule_at (Cluster.sim t) ~time (fun () ->
             apply t action)))
    events
