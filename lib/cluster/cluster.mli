(** A whole simulated testbed: M nodes, N networks, one RRP stack per
    node, assembled and started in one call.

    This is the highest-level entry point of the library; the examples
    and every benchmark build on it. *)

type node

type t

val create : Config.t -> t
(** Builds the simulator, fabric and per-node protocol stacks. Nothing
    runs yet; install hooks, then {!start}. *)

val start : t -> unit
(** Installs the initial ring (all nodes, ring id 1) on every node and
    has node 0 originate the token — the state the paper's testbed is in
    once Totem has formed its first ring. *)

val start_cold : t -> unit
(** Alternative start: every node begins in the membership protocol and
    the first ring is formed by the protocol itself. *)

(** {1 Running} *)

val sim : t -> Totem_engine.Sim.t
(** The coordinator simulator: the cluster clock, and where harness
    code (chaos schedules, samplers, burst injections) schedules. In
    classic mode ([Config.sim_domains = 0]) it is the only simulator. *)

val node_sim : t -> Totem_net.Addr.node_id -> Totem_engine.Sim.t
(** The node's partition simulator under the parallel core; aliases
    {!sim} in classic mode. Workload generators targeting one node
    schedule here so pacing ticks run inside the node's partition. *)

val exchange : t -> Totem_engine.Exchange.t option
(** The conservative-lookahead exchange driving the partitions, when
    [Config.sim_domains > 0]. *)

val events_processed : t -> int
(** Simulator work done: events across the coordinator and every node
    partition (classic mode: the single simulator's count). *)

val now : t -> Totem_engine.Vtime.t

val run_until : t -> Totem_engine.Vtime.t -> unit
(** Classic mode: [Sim.run_until]. Parallel mode: [Exchange.run_until]
    — on return every partition has processed all events [<= time],
    all cross-partition traffic is flushed, and [now t = time]. *)

val run_for : t -> Totem_engine.Vtime.t -> unit

val shutdown : t -> unit
(** Joins the parallel core's worker-domain pool, if any. Idempotent
    and safe in classic mode (a no-op); the cluster remains usable —
    the pool respawns on the next parallel [run_until]. Call when done
    with a cluster so no domains outlive it. *)

val config : t -> Config.t

val trace : t -> Totem_engine.Trace.t

val telemetry : t -> Totem_engine.Telemetry.t
(** The cluster-wide telemetry hub (the same object as [trace]):
    structured events from every layer plus the metrics registry. *)
(** Disabled unless {!Totem_engine.Trace.enable}d. *)

(** {1 Nodes} *)

val num_nodes : t -> int

val node : t -> Totem_net.Addr.node_id -> node

val srp : node -> Totem_srp.Srp.t

val rrp : node -> Totem_rrp.Rrp.t

val cpu : node -> Totem_engine.Cpu.t

val iter_nodes : t -> (node -> unit) -> unit

val crash_node : t -> Totem_net.Addr.node_id -> unit

val recover_node : t -> Totem_net.Addr.node_id -> unit
(** Reboot a crashed node; it rejoins via the membership protocol. *)

(** {1 Hooks} *)

val on_deliver :
  t -> (Totem_net.Addr.node_id -> Totem_srp.Message.t -> unit) -> unit
(** Called for every agreed delivery at every node (appended to any
    previously installed hook). *)

val on_fault_report :
  t -> (Totem_net.Addr.node_id -> Totem_rrp.Fault_report.t -> unit) -> unit

val on_ring_change :
  t ->
  (Totem_net.Addr.node_id -> ring_id:int -> members:Totem_net.Addr.node_id array -> unit) ->
  unit

val fault_reports : t -> (Totem_net.Addr.node_id * Totem_rrp.Fault_report.t) list
(** Every report issued so far, in issue order across the cluster. *)

(** {1 Fault injection (delegates to the fabric)} *)

val fabric : t -> Totem_net.Fabric.t

val fail_network : t -> Totem_net.Addr.net_id -> unit

val heal_network : t -> Totem_net.Addr.net_id -> unit
(** Clears the injected fault {e and} every node's faulty mark for the
    network (the administrator fixed it and told the nodes). *)

val set_network_loss : t -> Totem_net.Addr.net_id -> float -> unit

val set_network_corruption : t -> Totem_net.Addr.net_id -> float -> unit
(** Per-frame in-flight corruption probability on one network (see
    {!Totem_net.Fault.set_corruption_probability}). Observable as frame
    discards only when the cluster runs with [Config.wire_bytes]; in
    reference mode corrupted frames are simply dropped. *)

val set_network_burst_loss :
  t -> Totem_net.Addr.net_id -> p_enter:float -> p_exit:float -> unit
(** Gilbert–Elliott bursty loss on one network
    ({!Totem_net.Fault.set_burst_loss}); [p_enter = 0] disables. *)

val set_network_delay :
  t -> Totem_net.Addr.net_id -> factor:float -> spike_prob:float -> unit
(** Latency inflation: multiply the network's propagation latency by
    [factor] (clamped to [>= 1.0]) and add, with probability
    [spike_prob] per delivery, a spike uniform in [1, 10 x latency].
    [factor = 1.0] with [spike_prob = 0] restores nominal timing. *)

val set_network_dir_loss :
  t ->
  Totem_net.Addr.net_id ->
  src:Totem_net.Addr.node_id ->
  dst:Totem_net.Addr.node_id ->
  float ->
  unit
(** Asymmetric loss on the directed path [src -> dst]; [0] clears. *)

val set_network_duplicate : t -> Totem_net.Addr.net_id -> float -> unit
(** Per-delivery duplication probability. *)

val set_network_reorder : t -> Totem_net.Addr.net_id -> float -> unit
(** Per-delivery reordering probability — the one gray dimension that
    breaks the network's per-receiver FIFO assumption. *)

val block_send : t -> node:Totem_net.Addr.node_id -> net:Totem_net.Addr.net_id -> unit

val block_recv : t -> node:Totem_net.Addr.node_id -> net:Totem_net.Addr.net_id -> unit

val unblock_send :
  t -> node:Totem_net.Addr.node_id -> net:Totem_net.Addr.net_id -> unit
(** Repair one node's transmit path — the inverse of {!block_send},
    without clearing any other fault the way {!heal_network} does. *)

val unblock_recv :
  t -> node:Totem_net.Addr.node_id -> net:Totem_net.Addr.net_id -> unit

val partition :
  t ->
  net:Totem_net.Addr.net_id ->
  from_nodes:Totem_net.Addr.node_id list ->
  to_nodes:Totem_net.Addr.node_id list ->
  unit
(** The network cannot deliver from any of [from_nodes] to any of
    [to_nodes] (directed), Sec. 3's subset-to-subset fault. *)

val unpartition :
  t ->
  net:Totem_net.Addr.net_id ->
  from_nodes:Totem_net.Addr.node_id list ->
  to_nodes:Totem_net.Addr.node_id list ->
  unit
(** Lift exactly the pair blocks a matching {!partition} installed;
    rolling-partition campaigns alternate the two. *)

(** {1 Aggregate statistics} *)

val total_delivered_messages : t -> int
(** Sum over nodes (each message counts once per node that delivered it). *)

val delivered_at : t -> Totem_net.Addr.node_id -> int

val delivered_bytes_at : t -> Totem_net.Addr.node_id -> int
