(** Measurement: throughput (the paper's Figures 6–9 metrics) and
    delivery latency. *)

type throughput = {
  msgs_per_sec : float;
      (** total system send rate, as in Figs. 6–7: messages ordered and
          delivered per second (measured as deliveries seen by a node,
          which each message reaches exactly once) *)
  kbytes_per_sec : float;  (** utilised payload bandwidth, Figs. 8–9 *)
  duration : Totem_engine.Vtime.t;
  messages : int;
}

val measure_throughput :
  Cluster.t ->
  warmup:Totem_engine.Vtime.t ->
  duration:Totem_engine.Vtime.t ->
  throughput
(** Runs the cluster for [warmup] (discarded), then [duration], and
    averages the per-node delivery deltas. The workload must already be
    installed (e.g. {!Workload.saturate}). *)

val events_processed : Cluster.t -> int
(** Total simulator events popped so far — the denominator for
    events/sec, the simulator's own speed metric (as opposed to the
    protocol's). *)

type latency_probe

val install_latency : Cluster.t -> latency_probe
(** Records submission-to-delivery latency of every
    {!Workload.Stamped} message delivered anywhere, from now on. *)

val probe_of_causal : Totem_engine.Causal.t -> latency_probe
(** A probe built from a causal trace's per-message latency records
    ({!Totem_engine.Causal.latencies}) — the same quantile and bucket
    machinery as {!install_latency}, fed offline. *)

val observe_latency :
  latency_probe -> sent:Totem_engine.Vtime.t -> delivered:Totem_engine.Vtime.t -> unit
(** Feed one latency observation directly. *)

val latency_count : latency_probe -> int
(** Observations recorded so far. *)

val latency_summary : latency_probe -> Totem_engine.Stats.Summary.t option
(** Latencies in milliseconds; [None] for an empty probe (n = 0), so
    emitters write an explicit null rather than nan. *)

val latency_quantile : latency_probe -> float -> float option
(** Upper bound (log-spaced bucket edge) on the given latency quantile,
    in milliseconds — e.g. [latency_quantile probe 0.99]. [None] for an
    empty probe (n = 0); [Some infinity] marks overflow-bucket values. *)

val latency_histogram_dump : latency_probe -> (float * int) array
(** Per-bucket latency counts, [(upper_bound_ms, count)] including the
    trailing overflow bucket ([infinity]); the full distribution, so
    baselines in different BENCH_*.json files can be compared bucket by
    bucket rather than only through quantile upper bounds. *)

(** {1 Per-point protocol telemetry} *)

type fault_sampler

val install_fault_sampler :
  Cluster.t -> interval:Totem_engine.Vtime.t -> fault_sampler
(** Samples, every [interval] of virtual time, the maximum per-network
    problemCounter across all nodes (active replication; other styles
    record zeros). Read-only: never perturbs protocol state or RNG
    draws, so results are identical with or without tracing. *)

val fault_trajectory : fault_sampler -> (Totem_engine.Vtime.t * int array) list
(** Samples oldest first: (time, worst problemCounter per network). *)

type point_telemetry = {
  pt_rotation_count : int;  (** completed token rotations observed *)
  pt_rotation_p50 : float;  (** rotation-time quantiles, milliseconds *)
  pt_rotation_p90 : float;
  pt_rotation_p99 : float;
  pt_rotation_buckets : (float * int) array;
      (** merged rotation-time histogram, as {!latency_histogram_dump} *)
  pt_retransmits_served : int;
  pt_retransmits_requested : int;
  pt_token_retransmits : int;
  pt_duplicate_packets : int;
  pt_duplicate_tokens : int;
  pt_trajectory : (float * int array) list;
      (** problemCounter trajectory: (time in ms, worst count per net) *)
}

val collect_point_telemetry : ?sampler:fault_sampler -> Cluster.t -> point_telemetry
(** Aggregate the protocol-level telemetry of a finished run: rotation
    histograms merged across nodes, retransmission/duplicate counters
    summed, and the fault trajectory from [sampler] if one was
    installed. *)

val network_utilisation : Cluster.t -> net:Totem_net.Addr.net_id -> float
(** Bytes-on-wire (including Ethernet overheads) over elapsed time, as a
    fraction of the network's bandwidth. *)
