(** Measurement: throughput (the paper's Figures 6–9 metrics) and
    delivery latency. *)

type throughput = {
  msgs_per_sec : float;
      (** total system send rate, as in Figs. 6–7: messages ordered and
          delivered per second (measured as deliveries seen by a node,
          which each message reaches exactly once) *)
  kbytes_per_sec : float;  (** utilised payload bandwidth, Figs. 8–9 *)
  duration : Totem_engine.Vtime.t;
  messages : int;
}

val measure_throughput :
  Cluster.t ->
  warmup:Totem_engine.Vtime.t ->
  duration:Totem_engine.Vtime.t ->
  throughput
(** Runs the cluster for [warmup] (discarded), then [duration], and
    averages the per-node delivery deltas. The workload must already be
    installed (e.g. {!Workload.saturate}). *)

val events_processed : Cluster.t -> int
(** Total simulator events popped so far — the denominator for
    events/sec, the simulator's own speed metric (as opposed to the
    protocol's). *)

type latency_probe

val install_latency : Cluster.t -> latency_probe
(** Records submission-to-delivery latency of every
    {!Workload.Stamped} message delivered anywhere, from now on. *)

val latency_summary : latency_probe -> Totem_engine.Stats.Summary.t
(** Latencies in milliseconds. *)

val latency_quantile : latency_probe -> float -> float
(** Upper bound (log-spaced bucket edge) on the given latency quantile,
    in milliseconds — e.g. [latency_quantile probe 0.99]. *)

val network_utilisation : Cluster.t -> net:Totem_net.Addr.net_id -> float
(** Bytes-on-wire (including Ethernet overheads) over elapsed time, as a
    fraction of the network's bandwidth. *)
