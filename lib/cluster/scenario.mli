(** Scripted fault scenarios: a timeline of injections against a
    running cluster. Used by the failure-injection tests and the
    failover example. *)

type action =
  | Fail_network of Totem_net.Addr.net_id
  | Heal_network of Totem_net.Addr.net_id
  | Set_loss of Totem_net.Addr.net_id * float
  | Set_corrupt of Totem_net.Addr.net_id * float
      (** in-flight corruption probability (see
          {!Cluster.set_network_corruption}) *)
  | Set_burst_loss of Totem_net.Addr.net_id * float * float
      (** [(net, p_enter, p_exit)]: Gilbert–Elliott bursty loss (see
          {!Cluster.set_network_burst_loss}) *)
  | Set_delay_factor of Totem_net.Addr.net_id * float * float
      (** [(net, factor, spike_prob)]: latency inflation (see
          {!Cluster.set_network_delay}) *)
  | Set_dir_loss of
      Totem_net.Addr.net_id * Totem_net.Addr.node_id * Totem_net.Addr.node_id
      * float
      (** [(net, src, dst, p)]: asymmetric per-direction loss *)
  | Set_duplicate of Totem_net.Addr.net_id * float
  | Set_reorder of Totem_net.Addr.net_id * float
  | Block_send of Totem_net.Addr.node_id * Totem_net.Addr.net_id
  | Unblock_send of Totem_net.Addr.node_id * Totem_net.Addr.net_id
  | Block_recv of Totem_net.Addr.node_id * Totem_net.Addr.net_id
  | Unblock_recv of Totem_net.Addr.node_id * Totem_net.Addr.net_id
  | Partition of {
      net : Totem_net.Addr.net_id;
      from_nodes : Totem_net.Addr.node_id list;
      to_nodes : Totem_net.Addr.node_id list;
    }
  | Unpartition of {
      net : Totem_net.Addr.net_id;
      from_nodes : Totem_net.Addr.node_id list;
      to_nodes : Totem_net.Addr.node_id list;
    }
  | Crash_node of Totem_net.Addr.node_id
  | Recover_node of Totem_net.Addr.node_id
  | Custom of (Cluster.t -> unit)

val pp_action : Format.formatter -> action -> unit

val schedule : Cluster.t -> (Totem_engine.Vtime.t * action) list -> unit
(** Arms every event at its absolute time; then run the cluster. *)

val apply : Cluster.t -> action -> unit
(** Executes one action immediately. *)
