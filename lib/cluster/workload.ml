open Totem_engine
module Srp = Totem_srp

type Srp.Message.data += Stamped of Vtime.t

let saturate_nodes t ~nodes ~size =
  List.iter
    (fun id ->
      Srp.Srp.set_supplier
        (Cluster.srp (Cluster.node t id))
        (fun () -> Some (size, Srp.Message.Blob)))
    nodes

let all_nodes t = List.init (Cluster.num_nodes t) (fun i -> i)

let saturate t ~size = saturate_nodes t ~nodes:(all_nodes t) ~size

(* Suppliers run inside the owning node's event stream, so their RNG
   must be a per-node stream: under the parallel core a shared cluster
   stream would be raced by worker domains. In classic mode node_sim
   aliases the cluster sim, so the split sequence is unchanged. *)
let saturate_mixed t ~sizes =
  if Array.length sizes = 0 then invalid_arg "Workload.saturate_mixed";
  List.iter
    (fun id ->
      let rng = Sim.split_rng (Cluster.node_sim t id) in
      Srp.Srp.set_supplier
        (Cluster.srp (Cluster.node t id))
        (fun () -> Some (Rng.pick rng sizes, Srp.Message.Blob)))
    (all_nodes t)

let submit_stamped t ~node ~size =
  let sim = Cluster.node_sim t node in
  Srp.Srp.submit (Cluster.srp (Cluster.node t node)) ~size
    ~data:(Stamped (Sim.now sim)) ()

(* Pacing generators schedule on the target node's partition: the tick
   and the submit it performs are node-local work, so the parallel core
   runs them inside the node's own windowed stream. *)
let fixed_rate t ~node ~size ~interval ?count () =
  let sim = Cluster.node_sim t node in
  let remaining = ref (Option.value count ~default:max_int) in
  let rec tick () =
    if !remaining > 0 then begin
      decr remaining;
      submit_stamped t ~node ~size;
      ignore (Sim.schedule sim ~delay:interval tick)
    end
  in
  ignore (Sim.schedule sim ~delay:interval tick)

let poisson t ~node ~size ~mean_interval ?count () =
  let sim = Cluster.node_sim t node in
  let rng = Sim.split_rng sim in
  let remaining = ref (Option.value count ~default:max_int) in
  let draw () =
    Vtime.of_float_sec
      (Rng.exponential rng ~mean:(Vtime.to_float_sec mean_interval))
  in
  let rec tick () =
    if !remaining > 0 then begin
      decr remaining;
      submit_stamped t ~node ~size;
      ignore (Sim.schedule sim ~delay:(draw ()) tick)
    end
  in
  ignore (Sim.schedule sim ~delay:(draw ()) tick)

let burst t ~node ~size ~count ~at =
  let sim = Cluster.node_sim t node in
  ignore
    (Sim.schedule_at sim ~time:at (fun () ->
         for _ = 1 to count do
           submit_stamped t ~node ~size
         done))
