(** Tabular output for experiment results (the rows of Figs. 6–9). *)

type row = {
  label : string;
  cells : float array;
}

val print_table :
  ?out:Format.formatter ->
  title:string ->
  columns:string array ->
  row list ->
  unit
(** Fixed-width aligned table with a title banner. *)

val print_series :
  ?out:Format.formatter ->
  title:string ->
  x_label:string ->
  xs:int array ->
  (string * float array) list ->
  unit
(** One row per x value, one column per named series — the layout used
    for each figure reproduction. *)

val csv_of_series :
  x_label:string -> xs:int array -> series:(string * float array) list -> string

val ascii_plot :
  ?out:Format.formatter ->
  ?height:int ->
  ?width:int ->
  title:string ->
  log_y:bool ->
  xs:int array ->
  (string * float array) list ->
  unit
(** A terminal rendering of one figure: log-scaled x, one marker letter
    per series ([*] where series overlap), legend below — the visual
    counterpart of the paper's Figures 6–9. *)

val ratio : float -> float -> float
(** [ratio a b] is [a /. b], 0 when [b] is 0 — for win-factor checks. *)

val print_sim_rate :
  ?out:Format.formatter -> events:int -> wall_sec:float -> unit -> unit
(** One line of simulator-speed telemetry (events popped, wall-clock,
    events/sec) printed after each benchmark target, so the simulator's
    own performance trajectory is visible in every bench run. *)
