(* totem-sim: command-line driver for the simulated Totem RRP testbed.

   Subcommands:
     throughput   measure saturated throughput for one configuration
     failover     run a fault-injection timeline and report the outcome
     latency      measure end-to-end delivery latency under light load
     trace        run briefly with protocol tracing and dump the events
     chaos        drive random fault campaigns under the online invariant
                  monitors; shrink and replay counterexamples
     mc           bounded exhaustive model checking: every interleaving of a
                  small chaos-op alphabet, with state-fingerprint pruning,
                  plus an arbitrary-state self-stabilization mode *)

module Cluster = Totem_cluster.Cluster
module Config = Totem_cluster.Config
module Workload = Totem_cluster.Workload
module Metrics = Totem_cluster.Metrics
module Scenario = Totem_cluster.Scenario
module Style = Totem_rrp.Style
module Vtime = Totem_engine.Vtime
open Cmdliner

(* --- shared options ------------------------------------------------ *)

let style_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "none" | "single" | "no-replication" -> Ok Style.No_replication
    | "active" -> Ok Style.Active
    | "passive" -> Ok Style.Passive
    | s when String.length s > 3 && String.sub s 0 3 = "ap:" -> (
      try
        Ok (Style.Active_passive (int_of_string (String.sub s 3 (String.length s - 3))))
      with _ -> Error (`Msg "expected ap:<K>"))
    | _ -> Error (`Msg "expected none|active|passive|ap:<K>")
  in
  let print ppf = function
    | Style.No_replication -> Format.pp_print_string ppf "none"
    | Style.Active -> Format.pp_print_string ppf "active"
    | Style.Passive -> Format.pp_print_string ppf "passive"
    | Style.Active_passive k -> Format.fprintf ppf "ap:%d" k
  in
  Arg.conv (parse, print)

let style_t =
  Arg.(
    value
    & opt style_conv Style.Passive
    & info [ "style"; "r" ] ~docv:"STYLE"
        ~doc:"Replication style: none, active, passive, or ap:K.")

let nodes_t =
  Arg.(value & opt int 4 & info [ "nodes"; "n" ] ~docv:"M" ~doc:"Number of nodes.")

let nets_t =
  Arg.(
    value & opt int 2 & info [ "nets" ] ~docv:"N" ~doc:"Number of redundant networks.")

let size_t =
  Arg.(value & opt int 1024 & info [ "size"; "s" ] ~docv:"BYTES" ~doc:"Message size.")

let seconds_t =
  Arg.(
    value & opt float 1.0
    & info [ "seconds"; "d" ] ~docv:"S" ~doc:"Simulated measurement duration.")

let seed_t = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let loss_t =
  Arg.(
    value & opt float 0.0
    & info [ "loss" ] ~docv:"P" ~doc:"Sporadic frame-loss probability on every network.")

let wire_bytes_t =
  Arg.(
    value & flag
    & info [ "wire-bytes" ]
        ~doc:
          "Byte-faithful wire mode: serialize every payload through the \
           binary codec with a CRC-32 trailer at the sending NIC; the \
           receiving NIC CRC-checks and totally decodes it, discarding \
           damaged frames exactly as loss.")

let sim_domains_t =
  Arg.(
    value & opt int 0
    & info [ "sim-domains" ] ~docv:"N"
        ~doc:
          "Parallel simulator core: partition the cluster into one event \
           domain per node plus a coordinator, synchronized by \
           conservative lookahead and executed on $(docv) OCaml domains. \
           0 (the default) keeps the classic single-simulator loop; all \
           $(docv) >= 1 produce bitwise-identical figures and telemetry.")

let window_batch_t =
  Arg.(
    value & opt bool true
    & info [ "window-batch" ] ~docv:"BOOL"
        ~doc:
          "Amortized barriers for the parallel core (default $(b,true)): \
           skip flush passes at barriers with no pending cross-partition \
           work and widen windows adaptively while a single node owns all \
           near-term events. Results are bitwise-identical either way; \
           $(b,--window-batch=false) is the A/B overhead baseline. \
           Ignored unless $(b,--sim-domains) >= 1.")

let max_horizon_factor_t =
  Arg.(
    value & opt int 8
    & info [ "max-horizon-factor" ] ~docv:"K"
        ~doc:
          "Widest adaptive window, as a multiple of the lookahead \
           (default 8). 1 pins every window to one lookahead. Ignored \
           unless $(b,--window-batch).")

let corrupt_t =
  Arg.(
    value & opt float 0.0
    & info [ "corrupt" ] ~docv:"P"
        ~doc:
          "Per-frame in-flight corruption probability on every network \
           (bit flips, truncation, garbage; bit-accurate under \
           $(b,--wire-bytes)).")

let style_name = function
  | Style.No_replication -> "none"
  | Style.Active -> "active"
  | Style.Passive -> "passive"
  | Style.Active_passive k -> Printf.sprintf "active-passive K=%d" k

let make_cluster ?(wire = false) ?(sim_domains = 0) ?(window_batch = true)
    ?(max_horizon_factor = 8) ~style ~nodes ~nets ~seed () =
  let config =
    Config.make ~num_nodes:nodes ~num_nets:nets ~style ~seed ~wire_bytes:wire
      ~sim_domains ~window_batch ~max_horizon_factor ()
  in
  Cluster.create config

(* --- throughput ----------------------------------------------------- *)

(* "-" routes machine-readable output to stdout (and suppresses the
   human-readable report so the stream stays parseable). *)
let open_sink = function
  | "-" -> (stdout, false)
  | path -> (open_out path, true)

let close_sink (oc, owned) = if owned then close_out oc else flush oc

let throughput style nodes nets size seconds seed loss wire sim_domains
    window_batch max_horizon_factor corrupt trace_out metrics_out =
  let cluster =
    make_cluster ~wire ~sim_domains ~window_batch ~max_horizon_factor ~style
      ~nodes ~nets ~seed ()
  in
  let telemetry = Cluster.telemetry cluster in
  let trace_sink = Option.map open_sink trace_out in
  (match trace_sink with
  | Some (oc, _) ->
    Totem_engine.Telemetry.set_sink telemetry
      (Totem_engine.Telemetry.jsonl_sink oc)
  | None -> ());
  let quiet = trace_out = Some "-" || metrics_out = Some "-" in
  Cluster.start cluster;
  if loss > 0.0 then
    for net = 0 to nets - 1 do
      Cluster.set_network_loss cluster net loss
    done;
  if corrupt > 0.0 then
    for net = 0 to nets - 1 do
      Cluster.set_network_corruption cluster net corrupt
    done;
  Workload.saturate cluster ~size;
  let tp =
    Metrics.measure_throughput cluster ~warmup:(Vtime.ms 300)
      ~duration:(Vtime.of_float_sec seconds)
  in
  if not quiet then begin
    Format.printf "style=%s nodes=%d nets=%d size=%dB loss=%.2f%s%s@."
      (style_name style) nodes nets size loss
      (if wire then " wire-bytes" else "")
      (if corrupt > 0.0 then Printf.sprintf " corrupt=%.2f" corrupt else "");
    Format.printf "throughput: %.0f msgs/sec, %.0f Kbytes/sec@."
      tp.Metrics.msgs_per_sec tp.Metrics.kbytes_per_sec;
    Totem_cluster.Net_report.print cluster;
    Totem_cluster.Net_report.print_protocol cluster
  end;
  (match trace_sink with
  | Some sink ->
    Totem_engine.Telemetry.clear_sink telemetry;
    close_sink sink
  | None -> ());
  (match metrics_out with
  | Some path ->
    let sink = open_sink path in
    output_string (fst sink) (Totem_engine.Telemetry.metrics_json telemetry);
    close_sink sink
  | None -> ());
  Cluster.shutdown cluster

let trace_out_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Stream every structured trace event as one JSON line to $(docv) \
           (\"-\" for stdout, which suppresses the human-readable report).")

let metrics_out_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write the telemetry registry (counters, gauges, histograms) as \
           JSON to $(docv) (\"-\" for stdout, which suppresses the \
           human-readable report).")

let throughput_cmd =
  let doc = "Measure saturated throughput (the Sec. 8 experiment, one point)." in
  Cmd.v
    (Cmd.info "throughput" ~doc)
    Term.(
      const throughput $ style_t $ nodes_t $ nets_t $ size_t $ seconds_t $ seed_t
      $ loss_t $ wire_bytes_t $ sim_domains_t $ window_batch_t
      $ max_horizon_factor_t $ corrupt_t $ trace_out_t $ metrics_out_t)

(* --- failover -------------------------------------------------------- *)

let failover style nodes nets seed fail_at heal_at =
  let cluster = make_cluster ~style ~nodes ~nets ~seed () in
  Cluster.on_fault_report cluster (fun node report ->
      Format.printf "[%a] ALARM at node %d: %a@." Vtime.pp (Cluster.now cluster) node
        Totem_rrp.Fault_report.pp report);
  let ring_changes = ref 0 in
  Cluster.on_ring_change cluster (fun _ ~ring_id:_ ~members:_ -> incr ring_changes);
  Cluster.start cluster;
  Workload.saturate cluster ~size:1024;
  let initial = !ring_changes in
  Scenario.schedule cluster
    ([ (Vtime.of_float_sec fail_at, Scenario.Fail_network 0) ]
    @
    match heal_at with
    | Some h -> [ (Vtime.of_float_sec h, Scenario.Heal_network 0) ]
    | None -> []);
  let watch label d =
    let b = Cluster.delivered_at cluster 0 in
    Cluster.run_for cluster d;
    Format.printf "%-22s %8.0f msgs/sec@." label
      (float_of_int (Cluster.delivered_at cluster 0 - b) /. Vtime.to_float_sec d)
  in
  watch "before failure:" (Vtime.of_float_sec fail_at);
  watch "during failure:" (Vtime.sec 2);
  (match heal_at with Some _ -> watch "after repair:" (Vtime.sec 1) | None -> ());
  Format.printf "membership changes caused by the network fault: %d@."
    (!ring_changes - initial);
  Totem_cluster.Net_report.print cluster

let fail_at_t =
  Arg.(
    value & opt float 1.0
    & info [ "fail-at" ] ~docv:"S" ~doc:"When network 0 fails (simulated seconds).")

let heal_at_t =
  Arg.(
    value
    & opt (some float) None
    & info [ "heal-at" ] ~docv:"S" ~doc:"When the administrator repairs it.")

let failover_cmd =
  let doc = "Fail a network mid-run; show transparency and fault reports." in
  Cmd.v (Cmd.info "failover" ~doc)
    Term.(const failover $ style_t $ nodes_t $ nets_t $ seed_t $ fail_at_t $ heal_at_t)

(* --- latency --------------------------------------------------------- *)

let latency style nodes nets size seed =
  let cluster = make_cluster ~style ~nodes ~nets ~seed () in
  Cluster.start cluster;
  let probe = Metrics.install_latency cluster in
  Workload.fixed_rate cluster ~node:0 ~size ~interval:(Vtime.ms 5) ~count:500 ();
  Cluster.run_for cluster (Vtime.sec 4);
  (match Metrics.latency_summary probe with
  | None -> Format.printf "style=%s: no deliveries recorded@." (style_name style)
  | Some s ->
    Format.printf
      "style=%s: latency over %d deliveries: mean %.3f ms, min %.3f, max %.3f, sd %.3f@."
      (style_name style)
      (Totem_engine.Stats.Summary.count s)
      (Totem_engine.Stats.Summary.mean s)
      (Totem_engine.Stats.Summary.min s)
      (Totem_engine.Stats.Summary.max s)
      (Totem_engine.Stats.Summary.stddev s))

let latency_cmd =
  let doc = "Measure submission-to-delivery latency under light load." in
  Cmd.v (Cmd.info "latency" ~doc)
    Term.(const latency $ style_t $ nodes_t $ nets_t $ size_t $ seed_t)

(* --- trace ----------------------------------------------------------- *)

let trace style nodes nets seed millis jsonl spans wire sim_domains window_batch
    max_horizon_factor causal_out recorder_out recorder_capacity =
  let cluster =
    make_cluster ~wire ~sim_domains ~window_batch ~max_horizon_factor ~style
      ~nodes ~nets ~seed ()
  in
  let telemetry = Cluster.telemetry cluster in
  Totem_engine.Trace.enable (Cluster.trace cluster);
  let causal =
    Option.map (fun _ -> fst (Totem_engine.Causal.attach telemetry)) causal_out
  in
  let recorder =
    Option.map
      (fun _ ->
        Totem_engine.Recorder.attach ~capacity:recorder_capacity ~nodes telemetry)
      recorder_out
  in
  Cluster.start cluster;
  for node = 0 to nodes - 1 do
    Totem_srp.Srp.submit (Cluster.srp (Cluster.node cluster node)) ~size:256 ()
  done;
  Cluster.run_for cluster (Vtime.ms millis);
  (match (causal_out, causal) with
  | Some path, Some c ->
    let sink = open_sink path in
    output_string (fst sink) (Totem_engine.Causal.chrome_json c);
    close_sink sink;
    let probe = Metrics.probe_of_causal c in
    let n = Metrics.latency_count probe in
    if n > 0 then
      let q p =
        Option.value ~default:Float.nan (Metrics.latency_quantile probe p)
      in
      Format.eprintf
        "causal: %d messages, %d per-node deliveries: p50 %.3f ms, p99 %.3f ms@."
        (List.length (Totem_engine.Causal.records c))
        n (q 0.5) (q 0.99)
  | _ -> ());
  (match (recorder_out, recorder) with
  | Some path, Some r ->
    let oc, owned = open_sink path in
    List.iter
      (fun (node, lines) ->
        List.iter
          (fun line -> Printf.fprintf oc "{\"node\":%d,\"event\":%s}\n" node line)
          lines)
      (Totem_engine.Recorder.dump_jsonl r);
    close_sink (oc, owned)
  | _ -> ());
  (* "-" routes a machine-readable stream to stdout; keep it parseable by
     suppressing the default text dump, like the throughput command. *)
  let stdout_taken = causal_out = Some "-" || recorder_out = Some "-" in
  if jsonl then Totem_engine.Telemetry.write_jsonl stdout telemetry
  else if spans then
    Totem_engine.Telemetry.pp_spans Format.std_formatter
      (Totem_engine.Telemetry.token_spans telemetry)
  else if not stdout_taken then
    Totem_engine.Trace.dump Format.std_formatter (Cluster.trace cluster);
  Cluster.shutdown cluster

let millis_t =
  Arg.(
    value & opt int 5
    & info [ "millis"; "t" ] ~docv:"MS" ~doc:"How long to run (simulated milliseconds).")

let jsonl_t =
  Arg.(
    value & flag
    & info [ "jsonl" ] ~doc:"Dump the event ring as JSON lines instead of text.")

let spans_t =
  Arg.(
    value & flag
    & info [ "spans" ]
        ~doc:
          "Render the token-rotation span view (one bar per rotation, \
           nested retransmit/hold activity) instead of the flat log.")

let causal_out_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "causal-out" ] ~docv:"PATH"
        ~doc:
          "Reconstruct the causal trace of every client message — \
           origination, ordering, per-network packet hops, retransmits, \
           per-node delivery — and write it as Chrome trace_event JSON \
           to $(docv) (\"-\" = stdout; open in chrome://tracing or \
           Perfetto). Also prints a latency summary derived from the \
           same spans.")

let recorder_out_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "recorder-out" ] ~docv:"PATH"
        ~doc:
          "Arm the per-node flight recorder and dump its rings at the \
           end of the run as JSON lines ({\"node\":N,\"event\":...}, \
           node -1 = fabric-level events) to $(docv) (\"-\" = stdout).")

let recorder_capacity_t =
  Arg.(
    value & opt int 64
    & info [ "recorder-capacity" ] ~docv:"N"
        ~doc:"Flight-recorder ring capacity per node (most recent $(docv) events).")

let trace_cmd =
  let doc = "Run briefly with protocol tracing enabled and dump the log." in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(
      const trace $ style_t $ nodes_t $ nets_t $ seed_t $ millis_t $ jsonl_t
      $ spans_t $ wire_bytes_t $ sim_domains_t $ window_batch_t
      $ max_horizon_factor_t $ causal_out_t $ recorder_out_t
      $ recorder_capacity_t)

(* --- sweep ------------------------------------------------------------ *)

let sweep style nodes nets seconds seed sim_domains window_batch
    max_horizon_factor csv =
  let sizes = [| 100; 200; 400; 700; 1024; 1400; 2048; 4096; 8192; 10240 |] in
  let rates =
    Array.map
      (fun size ->
        let cluster =
          make_cluster ~sim_domains ~window_batch ~max_horizon_factor ~style
            ~nodes ~nets ~seed ()
        in
        Cluster.start cluster;
        Workload.saturate cluster ~size;
        let tp =
          Metrics.measure_throughput cluster ~warmup:(Vtime.ms 300)
            ~duration:(Vtime.of_float_sec seconds)
        in
        Cluster.shutdown cluster;
        (tp.Metrics.msgs_per_sec, tp.Metrics.kbytes_per_sec))
      sizes
  in
  Format.printf "style=%s nodes=%d nets=%d@." (style_name style) nodes nets;
  Format.printf "%-8s %12s %12s@." "bytes" "msgs/sec" "KB/sec";
  Array.iteri
    (fun i size ->
      let m, k = rates.(i) in
      Format.printf "%-8d %12.0f %12.0f@." size m k)
    sizes;
  match csv with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc "bytes,msgs_per_sec,kbytes_per_sec\n";
    Array.iteri
      (fun i size ->
        let m, k = rates.(i) in
        output_string oc (Printf.sprintf "%d,%.2f,%.2f\n" size m k))
      sizes;
    close_out oc;
    Format.printf "wrote %s@." path

let csv_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"FILE" ~doc:"Also write the sweep as CSV.")

let sweep_cmd =
  let doc = "Sweep message sizes for one configuration (one figure's series)." in
  Cmd.v (Cmd.info "sweep" ~doc)
    Term.(
      const sweep $ style_t $ nodes_t $ nets_t $ seconds_t $ seed_t
      $ sim_domains_t $ window_batch_t $ max_horizon_factor_t $ csv_t)

(* --- chaos ------------------------------------------------------------ *)

module Campaign = Totem_chaos.Campaign
module Invariant = Totem_chaos.Invariant
module Runner = Totem_chaos.Runner

let seed_range_conv =
  let parse s =
    match String.index_opt s '.' with
    | Some i
      when i + 1 < String.length s
           && s.[i + 1] = '.'
           && i > 0 ->
      let a = String.sub s 0 i
      and b = String.sub s (i + 2) (String.length s - i - 2) in
      (match (int_of_string_opt a, int_of_string_opt b) with
      | Some a, Some b when a <= b -> Ok (a, b)
      | _ -> Error (`Msg "expected A..B with A <= B"))
    | _ -> (
      match int_of_string_opt s with
      | Some a -> Ok (a, a)
      | None -> Error (`Msg "expected a seed or a range A..B"))
  in
  let print ppf (a, b) = Format.fprintf ppf "%d..%d" a b in
  Arg.conv (parse, print)

let monitor_config ~token_gap_ms ~lag_limit ~condemn_ms ~sporadic_max =
  {
    Invariant.default with
    Invariant.token_gap =
      (match token_gap_ms with
      | Some ms -> Some (Vtime.ms ms)
      | None -> Invariant.default.Invariant.token_gap);
    lag_limit;
    condemn_within = Option.map Vtime.ms condemn_ms;
    sporadic_loss_max = sporadic_max;
  }

(* Deterministic convergence gate for the reinstatement protocol: a
   flapping network (heavy bursty-loss storms alternating with calm
   windows) must converge to permanently condemned within the flap
   limit. R1 is armed online; probes read each node's reinstatement FSM
   just before the end-of-window administrator heal. *)
let flap_gate ~quiet ~sim_domains =
  let flap_limit =
    Totem_rrp.Rrp_config.default.Totem_rrp.Rrp_config.reinstate_flap_limit
  in
  let num_nodes = 4 in
  let from_ = Vtime.ms 200 in
  let storm = Vtime.ms 600 in
  let calm = Vtime.ms 1400 in
  (* More storms than the damping allows probes: the tail cycles must
     find the network already permanently condemned. *)
  let cycles = flap_limit + 2 in
  let steps = Campaign.flap_storm ~net:0 ~from_ ~cycles ~storm ~calm in
  let duration = from_ + (cycles * (storm + calm)) + Vtime.ms 400 in
  let campaign =
    Campaign.make ~num_nodes ~num_nets:2 ~style:Style.Passive ~seed:7 ~duration
      ~quiesce:(Vtime.ms 3000)
      ~traffic:(Campaign.Saturate 512) ~reinstate:true steps
  in
  let monitor =
    { Invariant.default with Invariant.flap_limit = Some flap_limit }
  in
  let failures = ref [] in
  let fail fmt = Format.kasprintf (fun m -> failures := m :: !failures) fmt in
  let probe cluster =
    for node = 0 to num_nodes - 1 do
      let rrp = Cluster.rrp (Cluster.node cluster node) in
      let state = Totem_rrp.Rrp.net_state_string rrp ~net:0 in
      let flaps = Totem_rrp.Rrp.flaps rrp ~net:0 in
      if state <> "condemned" then
        fail "node %d: net 0 ended %s, expected condemned (flaps %d)" node
          state flaps;
      if flaps < 1 || flaps > flap_limit then
        fail "node %d: net 0 flap count %d outside [1, %d]" node flaps
          flap_limit
    done
  in
  let r = Runner.run ~monitor ~sim_domains ~probes:[ (duration, probe) ] campaign in
  List.iter
    (fun v -> Format.printf "flap-gate: %a@." Invariant.pp_violation v)
    r.Runner.violations;
  List.iter (fun m -> Format.printf "flap-gate: %s@." m) (List.rev !failures);
  if r.Runner.violations <> [] || !failures <> [] then exit 1
  else if not quiet then
    Format.printf
      "flap-gate: %d storm/calm cycles on net 0: every node converged to \
       condemned within %d flaps@."
      cycles flap_limit

let chaos seed_range replay_path out_dir duration_ms quiesce_ms no_shrink quiet
    token_gap_ms lag_limit condemn_ms sporadic_max wire shadow sim_domains gray
    gate =
  if gate then flap_gate ~quiet ~sim_domains
  else
  match replay_path with
  | Some path -> (
    match Runner.replay_file ~path with
    | Error m ->
      Format.eprintf "chaos: %s@." m;
      exit 2
    | Ok (Runner.Reproduced r) ->
      Format.printf "reproduced: %a@."
        Invariant.pp_violation (List.hd r.Runner.violations);
      exit 0
    | Ok (Runner.Clean_replay r) ->
      Format.printf "clean replay: %a@." Runner.pp_result r;
      exit 0
    | Ok (Runner.Diverged (_, why)) ->
      Format.printf "DIVERGED: %s@." why;
      exit 1)
  | None ->
    let lo, hi = seed_range in
    let monitor =
      let base =
        monitor_config ~token_gap_ms ~lag_limit ~condemn_ms ~sporadic_max
      in
      if gray then
        {
          base with
          Invariant.flap_limit =
            Some
              Totem_rrp.Rrp_config.default
                .Totem_rrp.Rrp_config.reinstate_flap_limit;
        }
      else base
    in
    let failures = ref 0 in
    for seed = lo to hi do
      let campaign =
        Campaign.random ~seed ~duration:(Vtime.ms duration_ms)
          ~quiesce:(Vtime.ms quiesce_ms) ~wire ~corrupt:wire ~gray ()
      in
      let r = Runner.run ~monitor ~shadow ~sim_domains campaign in
      (match r.Runner.violations with
      | [] ->
        if not quiet then Format.printf "seed %d: %a@." seed Runner.pp_result r
      | violation :: _ ->
        incr failures;
        Format.printf "seed %d: %a@." seed Invariant.pp_violation violation;
        let cx_campaign, shrunk =
          if no_shrink then (campaign, false)
          else begin
            let s = Runner.shrink ~monitor campaign violation in
            Format.printf
              "seed %d: shrunk %d steps -> %d in %d re-executions@." seed
              s.Runner.original_steps s.Runner.minimized_steps s.Runner.runs_used;
            (s.Runner.minimized, true)
          end
        in
        (* Re-run the minimized campaign so the recorded violation is the
           one the file reproduces. *)
        let final = Runner.run ~monitor cx_campaign in
        let path = Filename.concat out_dir (Printf.sprintf "seed%d.chaos.json" seed) in
        Runner.write_counterexample ~path
          {
            Runner.cx_campaign;
            cx_monitor = monitor;
            cx_violation =
              (match final.Runner.violations with v :: _ -> Some v | [] -> None);
            cx_shrunk = shrunk;
            cx_history = Runner.history_json final;
          };
        Format.printf "seed %d: wrote %s@." seed path)
    done;
    if !failures > 0 then begin
      Format.printf "%d of %d campaigns violated an invariant@." !failures
        (hi - lo + 1);
      exit 1
    end
    else if not quiet then
      Format.printf "%d campaigns, zero invariant violations@." (hi - lo + 1)

let seed_range_t =
  Arg.(
    value
    & opt seed_range_conv (1, 8)
    & info [ "seed-range" ] ~docv:"A..B"
        ~doc:"Run one random campaign per seed in the inclusive range.")

let replay_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "replay" ] ~docv:"PATH"
        ~doc:
          "Re-execute the counterexample file bit-for-bit and report \
           whether the recorded violation reproduces.")

let out_dir_t =
  Arg.(
    value & opt string "."
    & info [ "out" ] ~docv:"DIR" ~doc:"Where counterexample files are written.")

let duration_ms_t =
  Arg.(
    value & opt int 2000
    & info [ "duration-ms" ] ~docv:"MS"
        ~doc:"Fault-and-traffic window of each campaign (simulated).")

let quiesce_ms_t =
  Arg.(
    value & opt int 5000
    & info [ "quiesce-ms" ] ~docv:"MS"
        ~doc:"Heal-and-drain tail before the end-of-run checks.")

let no_shrink_t =
  Arg.(
    value & flag
    & info [ "no-shrink" ]
        ~doc:
          "Write counterexamples without delta-debugging them first \
           (marked shrunk=false; chaos-smoke rejects such files in-tree).")

let quiet_t =
  Arg.(value & flag & info [ "quiet" ] ~doc:"Only report violations.")

let token_gap_ms_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "token-gap-ms" ] ~docv:"MS"
        ~doc:
          "Token-liveness bound: max simulated time without any token \
           reception (default 250).")

let lag_limit_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "lag-limit" ] ~docv:"N"
        ~doc:
          "Arm the P4/P5 check: a never-faulted network may lag at most \
           $(docv) receptions behind the best network.")

let condemn_ms_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "condemn-ms" ] ~docv:"MS"
        ~doc:
          "Arm the A6 check: a fully-failed network must be condemned \
           within $(docv) of downtime.")

let sporadic_max_t =
  Arg.(
    value & opt float 0.0
    & info [ "sporadic-max" ] ~docv:"P"
        ~doc:
          "Injected loss at or below $(docv) still counts a network as \
           never-faulted for the A5 check.")

let chaos_wire_t =
  Arg.(
    value & flag
    & info [ "wire-bytes" ]
        ~doc:
          "Generate byte-wire campaigns: the cluster runs with serialized \
           CRC-checked payloads, and the random fault timeline additionally \
           draws corruption windows and ramps.")

let chaos_shadow_t =
  Arg.(
    value & flag
    & info [ "shadow" ]
        ~doc:
          "Round-trip every frame through the binary codec during the run \
           and abort on any mismatch (testing aid; under $(b,--wire-bytes) \
           the check runs on what the receiving NIC decoded).")

let chaos_gray_t =
  Arg.(
    value & flag
    & info [ "gray" ]
        ~doc:
          "Generate gray-failure campaigns: the random fault timeline \
           additionally draws Gilbert-Elliott bursty-loss windows and ramps \
           and directional loss, the cluster runs with the \
           condemned-network reinstatement protocol on, and the R1 \
           flap-damping invariant is armed.")

let flap_gate_t =
  Arg.(
    value & flag
    & info [ "flap-gate" ]
        ~doc:
          "Run the deterministic reinstatement convergence gate instead of \
           random campaigns: a flapping network (bursty-loss storms \
           alternating with calm) must end permanently condemned at every \
           node within the flap limit, with R1 armed online.")

let chaos_cmd =
  let doc =
    "Run random fault campaigns under online invariant monitors; shrink \
     and replay counterexamples."
  in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(
      const chaos $ seed_range_t $ replay_t $ out_dir_t $ duration_ms_t
      $ quiesce_ms_t $ no_shrink_t $ quiet_t $ token_gap_ms_t $ lag_limit_t
      $ condemn_ms_t $ sporadic_max_t $ chaos_wire_t $ chaos_shadow_t
      $ sim_domains_t $ chaos_gray_t $ flap_gate_t)

(* --- mc: bounded exhaustive model checking --------------------------- *)

module Explorer = Totem_chaos.Explorer

let alphabet_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "full" -> Ok `Full
    | "fail-heal" -> Ok `Fail_heal
    | "corrupt" -> Ok `Corrupt
    | "partition" -> Ok `Partition
    | "gray" -> Ok `Gray
    | _ -> Error (`Msg "expected full|fail-heal|corrupt|partition|gray")
  in
  let print ppf k =
    Format.pp_print_string ppf
      (match k with
      | `Full -> "full"
      | `Fail_heal -> "fail-heal"
      | `Corrupt -> "corrupt"
      | `Partition -> "partition"
      | `Gray -> "gray")
  in
  Arg.conv (parse, print)

let mc_alphabet ~kind ~nets =
  let per net =
    match kind with
    | `Full ->
      [
        Campaign.Fail_net net;
        Campaign.Heal_net net;
        Campaign.Set_corrupt (net, 0.5);
        Campaign.Set_corrupt (net, 0.0);
        Campaign.Partition (net, [ 0 ], [ 1 ]);
        Campaign.Unpartition (net, [ 0 ], [ 1 ]);
      ]
    | `Fail_heal -> [ Campaign.Fail_net net; Campaign.Heal_net net ]
    | `Corrupt ->
      [ Campaign.Set_corrupt (net, 0.5); Campaign.Set_corrupt (net, 0.0) ]
    | `Partition ->
      [
        Campaign.Partition (net, [ 0 ], [ 1 ]);
        Campaign.Unpartition (net, [ 0 ], [ 1 ]);
      ]
    | `Gray ->
      [
        Campaign.Set_burst_loss (net, 0.9, 0.1);
        Campaign.Set_burst_loss (net, 0.0, 1.0);
        Campaign.Set_delay_factor (net, 4.0, 0.2);
        Campaign.Set_delay_factor (net, 1.0, 0.0);
        Campaign.Set_dir_loss (net, 0, 1, 0.8);
        Campaign.Set_dir_loss (net, 0, 1, 0.0);
      ]
  in
  List.concat (List.init nets per)

let mc style nodes nets seed depth alphabet_kind alphabet_nets gap_ms settle_ms
    hold_ms quiesce_ms token_gap_ms lag_limit condemn_ms sporadic_max wire
    sim_domains out_dir expect_explored expect_pruned arbitrary_state quiet =
  let monitor =
    monitor_config ~token_gap_ms ~lag_limit ~condemn_ms ~sporadic_max
  in
  try
    let alphabet_nets =
      match alphabet_nets with Some n -> n | None -> nets - 1
    in
    if alphabet_nets < 1 || alphabet_nets >= nets then
      invalid_arg "mc: --alphabet-nets must leave at least one untouched net";
    let alphabet = mc_alphabet ~kind:alphabet_kind ~nets:alphabet_nets in
    let cfg =
      (* The gray alphabet interleaves probation with condemnation, so
         it runs with the reinstatement protocol on (and probation
         state folded into the fingerprint). *)
      Explorer.make ~num_nodes:nodes ~num_nets:nets ~style ~seed ~wire ~depth
        ~alphabet
        ?gap:(Option.map Vtime.ms gap_ms)
        ~settle:(Vtime.ms settle_ms) ~hold:(Vtime.ms hold_ms)
        ~quiesce:(Vtime.ms quiesce_ms) ~monitor ~sim_domains
        ~reinstate:(alphabet_kind = `Gray) ()
    in
    match arbitrary_state with
    | Some points ->
      let rep = Explorer.stabilize cfg ~points in
      if not quiet then
        List.iter
          (fun (t, what) -> Format.printf "%a: %s@." Vtime.pp t what)
          rep.Explorer.s_perturbations;
      if Explorer.stabilized rep then begin
        Format.printf
          "stabilized: %d perturbations absorbed (operational, common ring, \
           delivery progressed)@."
          points;
        exit 0
      end
      else begin
        Format.printf
          "NOT STABILIZED after %d perturbations: operational=%b \
           common-ring=%b progressed=%b, %d monitor violations@."
          points rep.Explorer.s_operational rep.Explorer.s_common_ring
          rep.Explorer.s_progressed
          (List.length rep.Explorer.s_violations);
        List.iter
          (fun v -> Format.printf "  %a@." Invariant.pp_violation v)
          rep.Explorer.s_violations;
        exit 1
      end
    | None -> (
      let o = Explorer.explore cfg in
      let s = o.Explorer.o_stats in
      Format.printf
        "mc %s: depth %d, alphabet %d, gap %a: %d leaves, %d explored, %d \
         pruned, %d distinct states, %d prefix runs@."
        (style_name style) depth s.Explorer.alphabet_size Vtime.pp
        o.Explorer.o_gap s.Explorer.total_leaves s.Explorer.leaves_explored
        s.Explorer.leaves_pruned s.Explorer.distinct_states
        s.Explorer.interior_runs;
      match o.Explorer.o_found with
      | Some f ->
        Format.printf "VIOLATION on path [%s]@."
          (String.concat "; "
             (List.map (Format.asprintf "%a" Campaign.pp_op)
                f.Explorer.f_path));
        (match f.Explorer.f_result.Runner.violations with
        | v :: _ ->
          Format.printf "  %a@." Invariant.pp_violation v;
          let sh = Runner.shrink ~monitor f.Explorer.f_campaign v in
          Format.printf "  shrunk %d steps -> %d in %d re-executions@."
            sh.Runner.original_steps sh.Runner.minimized_steps
            sh.Runner.runs_used;
          let cx =
            Explorer.to_counterexample ~shrunk:true cfg sh.Runner.minimized
          in
          if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755;
          let path =
            Filename.concat out_dir
              (Printf.sprintf "mc-%s-depth%d.chaos.json" (style_name style)
                 depth)
          in
          Runner.write_counterexample ~path cx;
          Format.printf "  wrote %s@." path
        | [] ->
          Format.printf
            "  (leaf-form re-run did not reproduce — prefix-only artifact)@.");
        exit 1
      | None ->
        let mismatch name expected got =
          match expected with
          | Some e when e <> got ->
            Format.printf "EXPECTATION MISMATCH: %s = %d, expected %d@." name
              got e;
            true
          | _ -> false
        in
        let bad =
          mismatch "explored" expect_explored s.Explorer.leaves_explored
        in
        let bad' = mismatch "pruned" expect_pruned s.Explorer.leaves_pruned in
        if bad || bad' then exit 1
        else if not quiet then
          Format.printf "zero invariant violations across all interleavings@.")
  with Invalid_argument m ->
    Format.eprintf "mc: %s@." m;
    exit 2

let depth_t =
  Arg.(
    value & opt int 3
    & info [ "depth" ] ~docv:"D"
        ~doc:"Ops per interleaving; the explorer enumerates A^$(docv) paths.")

let alphabet_t =
  Arg.(
    value & opt alphabet_conv `Full
    & info [ "alphabet" ] ~docv:"KIND"
        ~doc:
          "Op alphabet per controllable network: full (fail/heal, \
           corrupt-on/off, partition/unpartition), fail-heal, corrupt, \
           partition, or gray (bursty-loss, delay-inflation and \
           directional-loss on/off pairs, run with reinstatement on).")

let alphabet_nets_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "alphabet-nets" ] ~docv:"N"
        ~doc:
          "How many networks (0..N-1) the alphabet touches; default all but \
           the last, keeping every path inside the tolerated fault model.")

let gap_ms_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "gap-ms" ] ~docv:"MS"
        ~doc:
          "Decision-point spacing; default calibrates to twice the measured \
           token-rotation time (floor 5 ms).")

let settle_ms_t =
  Arg.(
    value & opt int 40
    & info [ "settle-ms" ] ~docv:"MS" ~doc:"Quiet time before the first op.")

let hold_ms_t =
  Arg.(
    value & opt int 40
    & info [ "hold-ms" ] ~docv:"MS"
        ~doc:"Time after the last op before the administrator heal.")

let mc_quiesce_ms_t =
  Arg.(
    value & opt int 500
    & info [ "quiesce-ms" ] ~docv:"MS"
        ~doc:"Heal-and-drain tail before the end-of-run checks.")

let expect_explored_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "expect-explored" ] ~docv:"N"
        ~doc:
          "Fail (exit 1) unless exactly $(docv) leaves were explored — CI \
           guard for count stability.")

let expect_pruned_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "expect-pruned" ] ~docv:"N"
        ~doc:"Fail (exit 1) unless exactly $(docv) leaves were pruned.")

let arbitrary_state_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "arbitrary-state" ] ~docv:"N"
        ~doc:
          "Instead of enumerating fault schedules, perturb \
           protocol-internal state (forged tokens, problem counters, \
           reception-count monitors) at $(docv) points and check the \
           protocol stabilizes back to a live, progressing ring.")

let mc_cmd =
  let doc =
    "Bounded exhaustive model checking: run every interleaving of a small \
     chaos-op alphabet at token-rotation granularity under the invariant \
     monitors, with state-fingerprint pruning of symmetric paths."
  in
  Cmd.v (Cmd.info "mc" ~doc)
    Term.(
      const mc $ style_t $ nodes_t $ nets_t $ seed_t $ depth_t $ alphabet_t
      $ alphabet_nets_t $ gap_ms_t $ settle_ms_t $ hold_ms_t $ mc_quiesce_ms_t
      $ token_gap_ms_t $ lag_limit_t $ condemn_ms_t $ sporadic_max_t
      $ chaos_wire_t $ sim_domains_t $ out_dir_t $ expect_explored_t
      $ expect_pruned_t $ arbitrary_state_t $ quiet_t)

(* --- main ------------------------------------------------------------ *)

let () =
  let doc = "simulated Totem Redundant Ring Protocol testbed" in
  let info = Cmd.info "totem-sim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            throughput_cmd;
            sweep_cmd;
            failover_cmd;
            latency_cmd;
            trace_cmd;
            chaos_cmd;
            mc_cmd;
          ]))
