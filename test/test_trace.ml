open Totem_engine

let test_disabled_by_default () =
  let sim = Sim.create () in
  let tr = Trace.create sim in
  Trace.emit tr ~component:"x" "hello";
  Alcotest.(check int) "no records" 0 (List.length (Trace.records tr))

let test_emit_and_order () =
  let sim = Sim.create () in
  let tr = Trace.create sim in
  Trace.enable tr;
  Trace.emit tr ~component:"a" "first";
  ignore
    (Sim.schedule sim ~delay:(Vtime.ms 1) (fun () ->
         Trace.emit tr ~component:"b" "second"));
  Sim.run_until sim (Vtime.ms 2);
  match Trace.records tr with
  | [ r1; r2 ] ->
    Alcotest.(check string) "first" "first" r1.Trace.message;
    Alcotest.(check string) "second" "second" r2.Trace.message;
    Alcotest.(check int) "timestamped" (Vtime.ms 1) r2.Trace.time
  | l -> Alcotest.failf "expected 2 records, got %d" (List.length l)

let test_ring_overwrite () =
  let sim = Sim.create () in
  let tr = Trace.create ~capacity:4 sim in
  Trace.enable tr;
  for i = 1 to 10 do
    Trace.emit tr ~component:"x" (string_of_int i)
  done;
  let msgs = List.map (fun r -> r.Trace.message) (Trace.records tr) in
  Alcotest.(check (list string)) "last four" [ "7"; "8"; "9"; "10" ] msgs

let test_find () =
  let sim = Sim.create () in
  let tr = Trace.create sim in
  Trace.enable tr;
  Trace.emitf tr ~component:"srp0" "forward token seq=%d" 42;
  Trace.emit tr ~component:"rrp1" "fault report";
  Alcotest.(check bool) "found" true
    (Trace.find tr ~component:"srp0" ~substring:"seq=42" <> None);
  Alcotest.(check bool) "component filter" true
    (Trace.find tr ~component:"srp1" ~substring:"seq=42" = None);
  Alcotest.(check bool) "missing substring" true
    (Trace.find tr ~component:"rrp1" ~substring:"nope" = None)

let test_clear () =
  let sim = Sim.create () in
  let tr = Trace.create sim in
  Trace.enable tr;
  Trace.emit tr ~component:"x" "a";
  Trace.clear tr;
  Alcotest.(check int) "cleared" 0 (List.length (Trace.records tr))

let test_emitf_lazy_when_disabled () =
  let sim = Sim.create () in
  let tr = Trace.create sim in
  (* Must not raise or record even with formatting arguments. *)
  Trace.emitf tr ~component:"x" "value %d %s" 1 "two";
  Alcotest.(check int) "nothing" 0 (List.length (Trace.records tr))

let test_capacity_guard () =
  let sim = Sim.create () in
  let expect_invalid capacity =
    match Trace.create ~capacity sim with
    | _ -> Alcotest.failf "capacity %d accepted" capacity
    | exception Invalid_argument _ -> ()
  in
  expect_invalid 0;
  expect_invalid (-3)

let test_to_seq () =
  let sim = Sim.create () in
  let tr = Trace.create ~capacity:4 sim in
  Trace.enable tr;
  for i = 1 to 6 do
    Trace.emit tr ~component:"x" (string_of_int i)
  done;
  let msgs =
    List.of_seq (Seq.map (fun r -> r.Trace.message) (Trace.to_seq tr))
  in
  Alcotest.(check (list string)) "seq follows ring" [ "3"; "4"; "5"; "6" ] msgs;
  Alcotest.(check bool) "seq agrees with records" true
    (msgs = List.map (fun r -> r.Trace.message) (Trace.records tr))

let tests =
  [
    Alcotest.test_case "disabled by default" `Quick test_disabled_by_default;
    Alcotest.test_case "capacity must be positive" `Quick test_capacity_guard;
    Alcotest.test_case "to_seq" `Quick test_to_seq;
    Alcotest.test_case "emit order and timestamps" `Quick test_emit_and_order;
    Alcotest.test_case "ring overwrite" `Quick test_ring_overwrite;
    Alcotest.test_case "find" `Quick test_find;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "emitf disabled is lazy" `Quick test_emitf_lazy_when_disabled;
  ]
