(* Fuzz harness for the binary codec's total-decoding guarantee.

   Two generators — pure random bytes and mutations of valid encodings
   (byte flips, truncations, extensions, splices) — are fed to
   [Codec.decode] and, wrapped with a freshly computed CRC-32 trailer,
   to [Codec.decode_frame]. The valid-CRC path deliberately models CRC
   collisions: garbage that passes the checksum must still come back as
   a decode or validation [Error], never as an exception or an
   unbounded allocation. Any escaping exception fails the run (exit 1).

   Deterministic: one fixed SplitMix64 seed, no wall-clock input, so a
   failure reproduces byte-for-byte. Runs under the fuzz-smoke alias. *)

module Codec = Totem_srp.Codec
module Wire = Totem_srp.Wire
module Token = Totem_srp.Token
module Message = Totem_srp.Message
module Packing = Totem_srp.Packing
module Const = Totem_srp.Const
module Frame = Totem_net.Frame
module Crc32 = Totem_net.Crc32
module Rng = Totem_engine.Rng

let iterations = 12_000
let seed = 0xF0CC

let const = Const.default

(* A corpus of valid encodings covering every unit kind, fragment
   layouts included; mutations start from these so the fuzzer spends
   its budget near the format instead of mostly hitting Bad_tag. *)
let corpus =
  let msg ?(origin = 1) ?(app_seq = 1) ?(safe = false) ~size () =
    Message.make ~origin ~app_seq ~size ~safe ()
  in
  let whole ?origin ?app_seq ?safe ~size () =
    { Wire.message = msg ?origin ?app_seq ?safe ~size (); fragment = None }
  in
  [|
    Codec.encode_packet
      { Wire.ring_id = 1; seq = 42; sender = 2;
        elements = [ whole ~size:700 (); whole ~origin:3 ~safe:true ~size:100 () ] };
    Codec.encode_packet
      { Wire.ring_id = 7; seq = 9; sender = 0;
        elements = Packing.elements_of_message const (msg ~size:5000 ()) };
    Codec.encode_packet { Wire.ring_id = 0; seq = 0; sender = 0; elements = [] };
    Codec.encode_token
      { (Token.initial ~ring:[| 0; 1; 2; 5 |] ~ring_id:129) with
        Token.seq = 100_000; aru = 99_998; aru_setter = 5; fcc = 50;
        rtr = [ 99_999; 100_000 ] };
    Codec.encode_token (Token.initial ~ring:[| 0 |] ~ring_id:1);
    Codec.encode_join
      { Wire.sender = 3; proc_set = [ 0; 1; 3 ]; fail_set = [ 2 ]; max_ring_id = 640 };
    Codec.encode_probe { Wire.probe_sender = 4; probe_ring_id = 192 };
    Codec.encode_commit
      { Wire.cm_ring_id = 128; cm_ring = [| 0; 2; 3 |]; cm_round = 2;
        cm_info =
          [ { Wire.mi_node = 0; mi_old_ring = 64; mi_aru = 17 };
            { Wire.mi_node = 3; mi_old_ring = 1; mi_aru = 0 } ] };
  |]

let random_bytes rng =
  let len = Rng.int rng 1500 in
  String.init len (fun _ -> Char.chr (Rng.int rng 256))

let mutate rng s =
  match Rng.int rng 4 with
  | 0 ->
    (* flip 1..8 bytes *)
    let b = Bytes.of_string s in
    if Bytes.length b > 0 then
      for _ = 0 to Rng.int rng 8 do
        let i = Rng.int rng (Bytes.length b) in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 + Rng.int rng 255)))
      done;
    Bytes.to_string b
  | 1 -> if s = "" then s else String.sub s 0 (Rng.int rng (String.length s))
  | 2 -> s ^ String.init (1 + Rng.int rng 32) (fun _ -> Char.chr (Rng.int rng 256))
  | _ ->
    (* splice the tail of one valid image onto the head of another *)
    let t = Rng.pick rng corpus in
    let cut a = String.sub a 0 (if a = "" then 0 else Rng.int rng (String.length a)) in
    cut s ^ cut t

let with_valid_crc body =
  let b = Buffer.create (String.length body + Crc32.trailer_bytes) in
  Buffer.add_string b body;
  Crc32.append b (Crc32.digest body);
  { Frame.src = 0; payload_bytes = 0; payload = Frame.Bytes (Buffer.contents b) }

let () =
  let rng = Rng.create ~seed in
  let ok = ref 0 and err = ref 0 and frame_err = ref 0 in
  (try
     for i = 0 to iterations - 1 do
       let input =
         if i land 1 = 0 then random_bytes rng else mutate rng (Rng.pick rng corpus)
       in
       (match Codec.decode input with Ok _ -> incr ok | Error _ -> incr err);
       (* The CRC-collision model: the same bytes with a trailer the
          checksum accepts must flow through the full NIC pipeline. *)
       match Codec.decode_frame ~max_node:5 (with_valid_crc input) with
       | Ok _ -> ()
       | Error _ -> incr frame_err
     done
   with e ->
     Printf.eprintf "fuzz_codec: escaping exception after %d inputs: %s\n"
       (!ok + !err) (Printexc.to_string e);
     exit 1);
  Printf.printf
    "fuzz_codec: %d inputs (seed %#x): %d decoded, %d rejected, %d frame-rejected, 0 exceptions\n"
    iterations seed !ok !err !frame_err
