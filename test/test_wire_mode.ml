(* Byte-faithful wire mode: serialized CRC-checked payloads end to end.

   The paper's Sec. 3 equivalence — a corrupted frame is discarded by
   the receiving interface's checksum, so corruption is observed by the
   RRP exactly as loss — is exercised here with real byte images: the
   corruption fault model damages the wire bytes, the NIC's CRC/decode
   pipeline discards them, and the active problem counter (or the
   passive reception monitor) condemns the damaged network. *)

module Cluster = Totem_cluster.Cluster
module Config = Totem_cluster.Config
module Workload = Totem_cluster.Workload
module Style = Totem_rrp.Style
module Rrp = Totem_rrp.Rrp
module Active = Totem_rrp.Active
module Monitor = Totem_rrp.Monitor
module Vtime = Totem_engine.Vtime
module Sim = Totem_engine.Sim
module Telemetry = Totem_engine.Telemetry
module Campaign = Totem_chaos.Campaign
module Runner = Totem_chaos.Runner
module Invariant = Totem_chaos.Invariant

let make ?(style = Style.Passive) ?(wire = true) ?(seed = 42) () =
  Cluster.create
    (Config.make ~num_nodes:4 ~num_nets:2 ~style ~seed ~wire_bytes:wire ())

let fingerprint cluster =
  ( Sim.events_processed (Cluster.sim cluster),
    Cluster.total_delivered_messages cluster,
    Cluster.delivered_at cluster 0 )

(* Absent corruption, wire mode serializes every payload but charges the
   same sizes and draws the same randomness — the run must be bitwise
   the reference run. *)
let test_wire_equals_reference () =
  let run wire =
    let cluster = make ~wire () in
    Cluster.start cluster;
    Workload.saturate cluster ~size:700;
    Cluster.run_for cluster (Vtime.ms 500);
    fingerprint cluster
  in
  let events_w, total_w, at0_w = run true in
  let events_r, total_r, at0_r = run false in
  Alcotest.(check int) "events" events_r events_w;
  Alcotest.(check int) "total delivered" total_r total_w;
  Alcotest.(check int) "node 0 delivered" at0_r at0_w;
  Alcotest.(check bool) "the run did real work" true (total_w > 0)

(* Corruption-as-loss, active replication: every frame on network 0
   arrives damaged, the receiving NICs reject them by CRC, and the
   problem counter — which counts token timers that expired because the
   token never arrived — rises until network 0 is condemned. *)
let test_corruption_bumps_problem_counter () =
  let cluster = make ~style:Style.Active () in
  let crc_rejects = ref 0 and decode_rejects = ref 0 in
  let problem_incrs = Array.make 2 0 in
  ignore
    (Telemetry.subscribe (Cluster.telemetry cluster) (fun _ event ->
         match event with
         | Telemetry.Frame_crc_reject { net = 0; _ } -> incr crc_rejects
         | Telemetry.Frame_decode_reject { net = 0; _ } -> incr decode_rejects
         | Telemetry.Problem_incr { net; _ } ->
           problem_incrs.(net) <- problem_incrs.(net) + 1
         | _ -> ()));
  Cluster.start cluster;
  Cluster.set_network_corruption cluster 0 1.0;
  Workload.saturate cluster ~size:700;
  Cluster.run_for cluster (Vtime.sec 2);
  Alcotest.(check bool) "CRC rejects observed" true (!crc_rejects > 0);
  (* The counter itself decays back to zero after condemnation (A6), so
     assert on the increments the CRC discards caused, not the final
     snapshot. *)
  Alcotest.(check bool) "problem counter rose on the damaged net" true
    (problem_incrs.(0) > 0);
  Alcotest.(check int) "clean net accumulated no problems" 0 problem_incrs.(1);
  (match Rrp.as_active (Cluster.rrp (Cluster.node cluster 1)) with
  | Some a -> ignore (Active.problem_counter a ~net:0)
  | None -> Alcotest.fail "expected the active layer");
  let condemned_0, condemned_1 =
    List.fold_left
      (fun (a, b) (_, r) ->
        if r.Totem_rrp.Fault_report.net = 0 then (true, b) else (a, true))
      (false, false) (Cluster.fault_reports cluster)
  in
  Alcotest.(check bool) "damaged net condemned" true condemned_0;
  Alcotest.(check bool) "clean net not condemned" false condemned_1;
  Alcotest.(check bool) "delivery continued over the clean net" true
    (Cluster.delivered_at cluster 0 > 100);
  (* decode rejects (CRC collisions) are possible but rare; only their
     sum with CRC rejects is meaningful to assert *)
  ignore !decode_rejects

(* Corruption-as-loss, passive replication: the token monitor's
   reception count for the damaged network stalls behind the clean one
   (requirement P4) until the lag condemns it. *)
let test_corruption_stalls_recv_count () =
  let cluster = make ~style:Style.Passive () in
  Cluster.start cluster;
  Cluster.set_network_corruption cluster 0 1.0;
  Workload.saturate cluster ~size:700;
  Cluster.run_for cluster (Vtime.sec 2);
  (match Rrp.as_passive (Cluster.rrp (Cluster.node cluster 1)) with
  | Some p ->
    let m = Totem_rrp.Passive.token_monitor p in
    Alcotest.(check bool) "damaged net's count lags the clean net's" true
      (Monitor.count m ~net:0 < Monitor.count m ~net:1)
  | None -> Alcotest.fail "expected the passive layer");
  let lag_report =
    List.exists
      (fun (_, r) ->
        r.Totem_rrp.Fault_report.net = 0
        &&
        match r.Totem_rrp.Fault_report.evidence with
        | Totem_rrp.Fault_report.Reception_lag _ -> true
        | _ -> false)
      (Cluster.fault_reports cluster)
  in
  Alcotest.(check bool) "condemned by reception lag" true lag_report;
  Alcotest.(check bool) "delivery continued over the clean net" true
    (Cluster.delivered_at cluster 0 > 100)

(* Encode-once/decode-once caching must be invisible: with the same
   seed and corruption, a cached run and an uncached run are the same
   run — same simulator events, same deliveries, and byte-identical
   discard telemetry (Frame_crc_reject / Frame_decode_reject counts).
   The caches key on physical identity and corruption substitutes
   fresh strings, so a damaged copy can never be served from cache. *)
let run_cached_vs_uncached ~style ~seed ~corrupt =
  let run wire_cache =
    let cluster =
      Cluster.create
        (Config.make ~num_nodes:4 ~num_nets:2 ~style ~seed ~wire_bytes:true
           ~wire_cache ())
    in
    let crc_rejects = ref 0 and decode_rejects = ref 0 in
    ignore
      (Telemetry.subscribe (Cluster.telemetry cluster) (fun _ event ->
           match event with
           | Telemetry.Frame_crc_reject _ -> incr crc_rejects
           | Telemetry.Frame_decode_reject _ -> incr decode_rejects
           | _ -> ()));
    Cluster.start cluster;
    Cluster.set_network_corruption cluster 0 corrupt;
    Workload.saturate cluster ~size:700;
    Cluster.run_for cluster (Vtime.ms 400);
    (fingerprint cluster, !crc_rejects, !decode_rejects)
  in
  (run true, run false)

let test_cached_equals_uncached () =
  let (fp_c, crc_c, dec_c), (fp_u, crc_u, dec_u) =
    run_cached_vs_uncached ~style:Style.Active ~seed:13 ~corrupt:0.5
  in
  Alcotest.(check bool) "identical fingerprints" true (fp_c = fp_u);
  Alcotest.(check int) "identical CRC-reject counts" crc_u crc_c;
  Alcotest.(check int) "identical decode-reject counts" dec_u dec_c;
  Alcotest.(check bool) "corruption was actually rejected" true (crc_c > 0)

let qcheck_cache_telemetry_equiv =
  let gen =
    QCheck.Gen.(
      let* seed = int_range 0 10_000 in
      let* corrupt = float_bound_inclusive 0.8 in
      let* style = oneofl [ Style.Active; Style.Passive ] in
      return (seed, corrupt, style))
  in
  QCheck.Test.make
    ~name:"cached wire runs emit byte-identical telemetry to uncached"
    ~count:8 (QCheck.make gen) (fun (seed, corrupt, style) ->
      let cached, uncached = run_cached_vs_uncached ~style ~seed ~corrupt in
      cached = uncached)

(* Equal seeds, equal byte-wire runs — corruption draws included. *)
let test_wire_determinism () =
  let run () =
    let cluster = make ~style:Style.Active ~seed:7 () in
    Cluster.start cluster;
    Cluster.set_network_corruption cluster 0 0.3;
    Workload.saturate cluster ~size:1024;
    Cluster.run_for cluster (Vtime.sec 1);
    fingerprint cluster
  in
  Alcotest.(check bool) "identical fingerprints" true (run () = run ())

(* A byte-wire campaign with corruption confined to network 0: the
   chaos invariants (agreement, membership, liveness, A5, C1) must all
   hold, with the codec shadow check round-tripping every frame. *)
let wire_campaign () =
  Campaign.make ~num_nodes:4 ~num_nets:2 ~style:Style.Passive ~seed:11
    ~duration:(Vtime.ms 800) ~quiesce:(Vtime.sec 3) ~wire:true
    (Campaign.corrupt_window ~net:0 ~from_:(Vtime.ms 100) ~until:(Vtime.ms 500)
       ~p:0.4
    @ Campaign.corruption_ramp ~net:0 ~from_:(Vtime.ms 500) ~until:(Vtime.ms 750)
        ~stages:2 ~peak:0.8)

let test_corrupt_campaign_upholds_invariants () =
  let campaign = wire_campaign () in
  Alcotest.(check bool) "campaign is tolerated" true (Campaign.tolerated campaign);
  let corrupt = Campaign.corrupt_nets campaign in
  Alcotest.(check (array bool)) "corruption confined to net 0"
    [| true; false |] corrupt;
  let r = Runner.run ~shadow:true campaign in
  (match r.Runner.violations with
  | [] -> ()
  | v :: _ -> Alcotest.failf "violation: %a" Invariant.pp_violation v);
  Alcotest.(check bool) "messages flowed" true (r.Runner.delivered > 0)

(* The campaign (wire flag included) survives the .chaos.json format,
   and the decoded campaign replays to the identical result. *)
let test_campaign_json_roundtrip_and_replay () =
  let campaign = wire_campaign () in
  let decoded = Campaign.of_json (Campaign.to_json campaign) "test" in
  Alcotest.(check bool) "wire flag survives" true decoded.Campaign.wire;
  Alcotest.(check bool) "campaign round trips" true (campaign = decoded);
  let a = Runner.run campaign and b = Runner.run decoded in
  Alcotest.(check int) "events" a.Runner.events b.Runner.events;
  Alcotest.(check int) "delivered" a.Runner.delivered b.Runner.delivered;
  Alcotest.(check bool) "finished at the same instant" true
    (a.Runner.finished_at = b.Runner.finished_at)

let tests =
  [
    Alcotest.test_case "wire mode is bitwise the reference run" `Quick
      test_wire_equals_reference;
    Alcotest.test_case "corruption bumps the active problem counter" `Quick
      test_corruption_bumps_problem_counter;
    Alcotest.test_case "corruption stalls the passive reception count" `Quick
      test_corruption_stalls_recv_count;
    Alcotest.test_case "byte-wire corruption is deterministic" `Quick
      test_wire_determinism;
    Alcotest.test_case "cached run is bitwise the uncached run" `Quick
      test_cached_equals_uncached;
    QCheck_alcotest.to_alcotest qcheck_cache_telemetry_equiv;
    Alcotest.test_case "corrupt campaign upholds the invariants" `Quick
      test_corrupt_campaign_upholds_invariants;
    Alcotest.test_case "campaign JSON round trip and replay" `Quick
      test_campaign_json_roundtrip_and_replay;
  ]
