(* Randomised fault-injection, now driven through the chaos engine:
   [Campaign.random] builds a random cluster shape, burst traffic and a
   random fault timeline (always leaving the last network untouched, per
   the paper's operating assumption that one network survives), and
   [Runner.run] executes it with the paper's requirements armed as
   online monitors instead of end-of-run assertions:

     - A1: every burst delivered, in one identical total order,
     - A2: tolerated network faults cause no membership change,
     - A5/P5: the never-faulted network is never declared faulty,
     - A6: a fully-failed network is condemned within 1.5 s of downtime,
     - P4: reception lag on healthy networks stays bounded,
     - token liveness throughout.

   When a seed fails, the schedule is shrunk first so the failure
   message carries a minimal, replayable campaign. *)

module Vtime = Totem_engine.Vtime
module Campaign = Totem_chaos.Campaign
module Invariant = Totem_chaos.Invariant
module Runner = Totem_chaos.Runner

let monitor =
  {
    Invariant.default with
    Invariant.condemn_within = Some (Vtime.ms 1500);
    lag_limit = Some 100;
    sporadic_loss_max = 0.05;
  }

let run_one ~seed =
  let campaign = Campaign.random ~seed () in
  let r = Runner.run ~monitor campaign in
  match r.Runner.violations with
  | [] -> ()
  | v :: _ ->
    let s = Runner.shrink ~monitor campaign v in
    Alcotest.failf "seed %d: %a@.minimal schedule (%d of %d steps):@.%s" seed
      Invariant.pp_violation v s.Runner.minimized_steps s.Runner.original_steps
      (Totem_chaos.Chaos_json.to_string (Campaign.to_json s.Runner.minimized))

let test_fuzz_seeds () =
  for seed = 1 to 24 do
    run_one ~seed
  done

let tests =
  [
    Alcotest.test_case "24 random fault campaigns, online monitors" `Slow
      test_fuzz_seeds;
  ]
