(* The bounded exhaustive explorer: path accounting (explored + pruned
   = A^depth), fingerprint determinism under replay, symmetric-prefix
   pruning, the mutation canary (a deliberately weakened protocol must
   be caught within depth 4), and ddmin on explorer-found paths. *)

module Vtime = Totem_engine.Vtime
module Campaign = Totem_chaos.Campaign
module Invariant = Totem_chaos.Invariant
module Runner = Totem_chaos.Runner
module Explorer = Totem_chaos.Explorer
module Cluster = Totem_cluster.Cluster
module Rrp = Totem_rrp.Rrp
module Active = Totem_rrp.Active

let gap = Vtime.ms 5

let base ?(style = Totem_rrp.Style.Active) ?(depth = 2) ?alphabet ?monitor
    ?(hold = Vtime.ms 40) () =
  Explorer.make ~num_nodes:3 ~num_nets:2 ~style ~seed:42 ~wire:true ~depth
    ?alphabet ?monitor ~gap ~settle:(Vtime.ms 40) ~hold
    ~quiesce:(Vtime.ms 300) ()

let ops = Array.of_list (Explorer.default_alphabet ~num_nets:2)

(* --- path accounting -------------------------------------------------- *)

let test_single_op_alphabet () =
  let cfg = base ~depth:3 ~alphabet:[ Campaign.Fail_net 0 ] () in
  let o = Explorer.explore cfg in
  let s = o.Explorer.o_stats in
  Alcotest.(check int) "total leaves" 1 s.Explorer.total_leaves;
  Alcotest.(check int)
    "explored + pruned = 1" 1
    (s.Explorer.leaves_explored + s.Explorer.leaves_pruned);
  Alcotest.(check bool) "no violation" true (o.Explorer.o_found = None)

let qcheck_path_accounting =
  QCheck.Test.make ~name:"explored + pruned = alphabet^depth" ~count:6
    QCheck.(pair (int_range 1 2) (int_range 1 3))
    (fun (depth, asize) ->
      let alphabet = Array.to_list (Array.sub ops 0 asize) in
      let cfg = base ~depth ~alphabet () in
      let o = Explorer.explore cfg in
      let s = o.Explorer.o_stats in
      let rec pow b e = if e = 0 then 1 else b * pow b (e - 1) in
      o.Explorer.o_found = None
      && s.Explorer.total_leaves = pow asize depth
      && s.Explorer.leaves_explored + s.Explorer.leaves_pruned
         = s.Explorer.total_leaves)

(* --- replay determinism ----------------------------------------------- *)

let qcheck_path_replays_byte_for_byte =
  QCheck.Test.make ~name:"explored path replays byte-for-byte" ~count:5
    QCheck.(list_of_size (QCheck.Gen.return 2) (int_range 0 (Array.length ops - 1)))
    (fun picks ->
      let path = List.map (fun i -> ops.(i)) picks in
      let cfg = base ~depth:(List.length path) () in
      let r1, fp1 = Explorer.path_fingerprints cfg ~gap path in
      let r2, fp2 = Explorer.path_fingerprints cfg ~gap path in
      fp1 = fp2
      && r1.Runner.events = r2.Runner.events
      && r1.Runner.delivered = r2.Runner.delivered
      && r1.Runner.finished_at = r2.Runner.finished_at
      && r1.Runner.history = r2.Runner.history)

let test_fingerprints_match_across_domains () =
  let cfg = base ~depth:2 () in
  let path = [ Campaign.Fail_net 0; Campaign.Heal_net 0 ] in
  let r1, fp1 = Explorer.path_fingerprints cfg ~gap path in
  let cfg2 = { cfg with Explorer.sim_domains = 2 } in
  let r2, fp2 = Explorer.path_fingerprints cfg2 ~gap path in
  Alcotest.(check bool) "fingerprints identical" true (fp1 = fp2);
  Alcotest.(check int) "deliveries identical" r1.Runner.delivered
    r2.Runner.delivered

(* --- symmetric-prefix pruning ----------------------------------------- *)

let test_pruning_collapses_no_ops () =
  (* Two ops that are both no-ops on a clean cluster: every interleaving
     reaches the same state, so exactly one leaf end-game should run. *)
  let cfg =
    base ~depth:2
      ~alphabet:[ Campaign.Heal_net 0; Campaign.Set_corrupt (0, 0.0) ]
      ()
  in
  let o = Explorer.explore cfg in
  let s = o.Explorer.o_stats in
  Alcotest.(check int) "one leaf explored" 1 s.Explorer.leaves_explored;
  Alcotest.(check int) "three leaves pruned" 3 s.Explorer.leaves_pruned;
  Alcotest.(check int) "two distinct states" 2 s.Explorer.distinct_states

let test_calibration_deterministic () =
  let cfg = { (base ()) with Explorer.gap = None } in
  let g1 = Explorer.calibrated_gap cfg in
  let g2 = Explorer.calibrated_gap cfg in
  Alcotest.(check bool) "calibration repeatable" true (g1 = g2);
  Alcotest.(check bool) "floored at 5 ms" true (Vtime.( >= ) g1 (Vtime.ms 5))

(* --- mutation canary -------------------------------------------------- *)

(* Weaken detection: every node swallows all problemCounter increments,
   so a really-failed network is never condemned. With the A6 bound
   armed, the explorer must find the violation within depth 4 — the
   guard against an explorer that silently explores nothing. *)
let suppress cluster =
  for node = 0 to Cluster.num_nodes cluster - 1 do
    match Rrp.as_active (Cluster.rrp (Cluster.node cluster node)) with
    | Some a -> Active.suppress_problem_increments a max_int
    | None -> ()
  done

(* Condemnation of a dead network takes ~65 ms of simulated downtime
   (ten problem-counter increments at token-loss pace), so 120 ms is a
   bound the healthy protocol meets with margin while the suppressed
   one can never meet. *)
let canary_cfg () =
  base ~depth:4
    ~alphabet:[ Campaign.Fail_net 0; Campaign.Heal_net 0 ]
    ~monitor:
      { Invariant.default with Invariant.condemn_within = Some (Vtime.ms 120) }
    ~hold:(Vtime.ms 200) ()

let canary_found = lazy (Explorer.explore ~prepare:suppress (canary_cfg ()))

let test_canary_detected () =
  let o = Lazy.force canary_found in
  match o.Explorer.o_found with
  | None -> Alcotest.fail "explorer missed the seeded A6 weakening"
  | Some f ->
    Alcotest.(check bool) "within depth 4" true (List.length f.Explorer.f_path <= 4);
    (match f.Explorer.f_result.Runner.violations with
    | v :: _ ->
      Alcotest.(check string)
        "A6 fired" Invariant.inv_detection v.Invariant.invariant
    | [] -> Alcotest.fail "leaf-form re-run did not reproduce the violation")

let test_canary_needs_the_mutation () =
  (* The same configuration without the hook must explore clean — the
     canary measures the mutation, not a monitor misconfiguration. *)
  let o = Explorer.explore (canary_cfg ()) in
  Alcotest.(check bool) "healthy protocol passes" true (o.Explorer.o_found = None)

(* --- ddmin on explorer-produced paths --------------------------------- *)

let is_subsequence smaller larger =
  let rec go s l =
    match (s, l) with
    | [], _ -> true
    | _, [] -> false
    | x :: s', y :: l' -> if x = y then go s' l' else go s l'
  in
  go smaller larger

let test_shrink_explorer_counterexample () =
  let o = Lazy.force canary_found in
  let f = match o.Explorer.o_found with Some f -> f | None -> Alcotest.fail "no counterexample" in
  let cfg = canary_cfg () in
  let monitor = cfg.Explorer.monitor in
  let violation = List.hd f.Explorer.f_result.Runner.violations in
  let report =
    Runner.shrink ~monitor ~prepare:suppress f.Explorer.f_campaign violation
  in
  let minimized = report.Runner.minimized in
  (* still violates the same invariant *)
  let r = Runner.run ~monitor ~prepare:suppress minimized in
  (match r.Runner.violations with
  | v :: _ ->
    Alcotest.(check string)
      "same invariant" violation.Invariant.invariant v.Invariant.invariant
  | [] -> Alcotest.fail "minimized campaign no longer violates");
  (* subsequence of the original schedule *)
  Alcotest.(check bool)
    "subsequence of original" true
    (is_subsequence minimized.Campaign.steps
       f.Explorer.f_campaign.Campaign.steps);
  (* locally minimal: removing any single op makes it pass *)
  List.iteri
    (fun i _ ->
      let steps =
        List.filteri (fun j _ -> j <> i) minimized.Campaign.steps
      in
      let r =
        Runner.run ~monitor ~prepare:suppress
          { minimized with Campaign.steps }
      in
      let same_again =
        match r.Runner.violations with
        | v :: _ -> v.Invariant.invariant = violation.Invariant.invariant
        | [] -> false
      in
      Alcotest.(check bool)
        (Printf.sprintf "dropping step %d breaks reproduction" i)
        false same_again)
    minimized.Campaign.steps;
  (* and the shrunk schedule round-trips as a replayable .chaos.json *)
  let cx = Explorer.to_counterexample ~prepare:suppress ~shrunk:true cfg minimized in
  Alcotest.(check bool) "counterexample records a violation" true (cx.Runner.cx_violation <> None);
  let path = Filename.temp_file "mc-canary" ".chaos.json" in
  Runner.write_counterexample ~path cx;
  (match Runner.read_counterexample ~path with
  | Error m -> Alcotest.fail m
  | Ok cx' -> (
    match Runner.replay ~prepare:suppress cx' with
    | Runner.Reproduced _ -> ()
    | Runner.Clean_replay _ -> Alcotest.fail "replay came back clean"
    | Runner.Diverged (_, why) -> Alcotest.fail ("replay diverged: " ^ why)));
  Sys.remove path

(* --- arbitrary-state mode --------------------------------------------- *)

let test_stabilize_recovers () =
  let rep = Explorer.stabilize (base ~depth:2 ()) ~points:2 in
  Alcotest.(check int) "two perturbations applied" 2
    (List.length rep.Explorer.s_perturbations);
  Alcotest.(check bool) "stabilized" true (Explorer.stabilized rep)

let tests =
  [
    Alcotest.test_case "1-op alphabet enumerates one path" `Quick
      test_single_op_alphabet;
    QCheck_alcotest.to_alcotest qcheck_path_accounting;
    QCheck_alcotest.to_alcotest qcheck_path_replays_byte_for_byte;
    Alcotest.test_case "fingerprints identical across sim domains" `Quick
      test_fingerprints_match_across_domains;
    Alcotest.test_case "symmetric no-op prefixes are pruned" `Quick
      test_pruning_collapses_no_ops;
    Alcotest.test_case "gap calibration is deterministic" `Quick
      test_calibration_deterministic;
    Alcotest.test_case "mutation canary: weakened A6 is found" `Quick
      test_canary_detected;
    Alcotest.test_case "mutation canary: healthy protocol passes" `Quick
      test_canary_needs_the_mutation;
    Alcotest.test_case "ddmin shrinks explorer counterexamples" `Quick
      test_shrink_explorer_counterexample;
    Alcotest.test_case "arbitrary-state perturbations stabilize" `Quick
      test_stabilize_recovers;
  ]
