open Totem_engine
open Totem_net

let make ?(num_nodes = 3) ?(num_nets = 2) () =
  let sim = Sim.create () in
  let fabric = Fabric.create sim ~num_nodes ~num_nets () in
  let log = ref [] in
  for node = 0 to num_nodes - 1 do
    Fabric.attach_node fabric ~node (fun ~net frame ->
        log := (node, net, frame.Frame.src) :: !log)
  done;
  (sim, fabric, log)

let test_networks_isolated () =
  let sim, fabric, log = make () in
  Fabric.broadcast fabric ~net:0 (Frame.make ~src:0 ~payload_bytes:10 (Frame.Opaque "a"));
  Sim.run_until sim (Vtime.ms 1);
  List.iter
    (fun (_, net, _) -> Alcotest.(check int) "only net 0" 0 net)
    !log;
  Alcotest.(check int) "two receivers" 2 (List.length !log)

let test_handler_reports_network () =
  let sim, fabric, log = make () in
  Fabric.broadcast fabric ~net:1 (Frame.make ~src:2 ~payload_bytes:10 (Frame.Opaque "b"));
  Sim.run_until sim (Vtime.ms 1);
  List.iter
    (fun (node, net, src) ->
      Alcotest.(check int) "net id" 1 net;
      Alcotest.(check int) "src" 2 src;
      Alcotest.(check bool) "not the sender" true (node <> 2))
    !log

let test_unicast_across_fabric () =
  let sim, fabric, log = make () in
  Fabric.unicast fabric ~net:1 ~dst:1 (Frame.make ~src:0 ~payload_bytes:5 (Frame.Opaque "c"));
  Sim.run_until sim (Vtime.ms 1);
  Alcotest.(check (list (triple int int int))) "one delivery" [ (1, 1, 0) ] !log

let test_per_network_fault_state () =
  let sim, fabric, log = make () in
  Fault.set_down (Fabric.fault fabric 0) true;
  Fabric.broadcast fabric ~net:0 (Frame.make ~src:0 ~payload_bytes:1 (Frame.Opaque ""));
  Fabric.broadcast fabric ~net:1 (Frame.make ~src:0 ~payload_bytes:1 (Frame.Opaque ""));
  Sim.run_until sim (Vtime.ms 1);
  List.iter (fun (_, net, _) -> Alcotest.(check int) "net1 only" 1 net) !log;
  Alcotest.(check int) "net1 deliveries" 2 (List.length !log)

let test_validation () =
  let sim = Sim.create () in
  Alcotest.check_raises "no nodes" (Invalid_argument "Fabric.create: need at least one node")
    (fun () -> ignore (Fabric.create sim ~num_nodes:0 ~num_nets:1 ()));
  Alcotest.check_raises "no nets"
    (Invalid_argument "Fabric.create: need at least one network") (fun () ->
      ignore (Fabric.create sim ~num_nodes:1 ~num_nets:0 ()));
  Alcotest.check_raises "configs mismatch"
    (Invalid_argument "Fabric.create: configs length mismatch") (fun () ->
      ignore
        (Fabric.create sim ~num_nodes:1 ~num_nets:2
           ~configs:[| Network.default_config |] ()))

let test_heterogeneous_configs () =
  let sim = Sim.create () in
  let slow = { Network.default_config with Network.bandwidth_bps = 10_000_000 } in
  let fabric =
    Fabric.create sim ~num_nodes:2 ~num_nets:2
      ~configs:[| Network.default_config; slow |] ()
  in
  Alcotest.(check int) "net0 fast" 100_000_000
    (Network.config (Fabric.network fabric 0)).Network.bandwidth_bps;
  Alcotest.(check int) "net1 slow" 10_000_000
    (Network.config (Fabric.network fabric 1)).Network.bandwidth_bps

(* The wire-encoder memo: the same physical frame broadcast on every
   network runs the encoder once; a new frame value (even an equal one)
   re-encodes; ~memoize:false restores per-call invocation. *)
let test_wire_encoder_memoized () =
  let sim, fabric, log = make () in
  let calls = ref 0 in
  Fabric.set_wire_encoder fabric (fun frame ->
      incr calls;
      frame);
  let frame = Frame.make ~src:0 ~payload_bytes:10 (Frame.Opaque "a") in
  Fabric.broadcast fabric ~net:0 frame;
  Fabric.broadcast fabric ~net:1 frame;
  Fabric.unicast fabric ~net:0 ~dst:1 frame;
  Alcotest.(check int) "one encode for the whole fan-out" 1 !calls;
  let frame' = Frame.make ~src:0 ~payload_bytes:10 (Frame.Opaque "a") in
  Fabric.broadcast fabric ~net:0 frame';
  Alcotest.(check int) "a fresh frame value re-encodes" 2 !calls;
  Fabric.set_wire_encoder fabric ~memoize:false (fun frame ->
      incr calls;
      frame);
  Fabric.broadcast fabric ~net:0 frame';
  Fabric.broadcast fabric ~net:1 frame';
  Alcotest.(check int) "unmemoized encodes per call" 4 !calls;
  Sim.run_until sim (Vtime.ms 1);
  Alcotest.(check bool) "frames still delivered" true (List.length !log > 0)

let tests =
  [
    Alcotest.test_case "networks are isolated" `Quick test_networks_isolated;
    Alcotest.test_case "wire encoder memoized per frame" `Quick
      test_wire_encoder_memoized;
    Alcotest.test_case "handler told the network" `Quick test_handler_reports_network;
    Alcotest.test_case "unicast" `Quick test_unicast_across_fabric;
    Alcotest.test_case "per-network fault state" `Quick test_per_network_fault_state;
    Alcotest.test_case "construction validation" `Quick test_validation;
    Alcotest.test_case "heterogeneous networks" `Quick test_heterogeneous_configs;
  ]
