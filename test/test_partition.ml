(* The parallel simulator core (Partition / Exchange / Parallel) and
   its contracts: the conservative-lookahead bound, the canonical
   (time, source, seq) merge order, bitwise determinism across worker
   counts, and faithful exception propagation from worker domains. *)

open Totem_engine
module Campaign = Totem_chaos.Campaign
module Runner = Totem_chaos.Runner

(* --- lookahead bound (qcheck) --------------------------------------- *)

(* A synthetic exchange over random lookaheads and random
   cross-partition traffic, including reactive reply chains: every
   delivery is scheduled at send + lookahead by the barrier hook, and
   [Sim.schedule_at] raises if that ever lands in the destination
   partition's past — so the property "no exception and every hop
   delivered" is exactly "the lookahead bound was never violated". *)
let qcheck_lookahead_bound =
  QCheck.Test.make ~name:"exchange: lookahead bound never violated" ~count:60
    QCheck.(
      triple (int_range 1 500) (int_range 2 4)
        (list_of_size (Gen.int_range 0 30)
           (triple (int_range 0 3) (int_range 0 5000) (int_range 0 5))))
    (fun (lookahead, nparts, sends) ->
      let global = Sim.create () in
      let parts = Array.init nparts (fun i -> Sim.create ~seed:(7 + i) ()) in
      let ex = Exchange.create ~lookahead ~global ~parts () in
      let outbox = ref [] in
      let delivered = ref 0 in
      let expected =
        List.fold_left (fun acc (_, _, hops) -> acc + hops + 1) 0 sends
      in
      let rec send ~src ~hops =
        outbox := (Sim.now parts.(src), (src + 1) mod nparts, hops) :: !outbox
      and deliver dst hops () =
        incr delivered;
        if hops > 0 then send ~src:dst ~hops:(hops - 1)
      in
      Exchange.add_barrier_hook ex
        ~next:(fun () ->
          List.fold_left (fun a (t, _, _) -> Vtime.min a t) Vtime.never !outbox)
        (fun _h1 ->
          let items = List.rev !outbox in
          outbox := [];
          List.iter
            (fun (t, dst, hops) ->
              ignore
                (Sim.schedule_at parts.(dst) ~time:(t + lookahead)
                   (deliver dst hops)))
            items);
      List.iter
        (fun (src, at, hops) ->
          let src = src mod nparts in
          ignore
            (Sim.schedule_at parts.(src) ~time:at (fun () -> send ~src ~hops)))
        sends;
      (* max chain: 5000 + 7 hops x 500 lookahead < 10_000 *)
      Exchange.run_until ex 10_000;
      !delivered = expected && Exchange.horizon ex = 10_000)

(* --- canonical merge order (qcheck) ---------------------------------- *)

(* Random emissions across buffered child hubs must drain in strictly
   increasing (time, source, per-source seq) order — a total order, so
   the drained stream is unique whatever the emission interleaving
   across partitions was. *)
let qcheck_canonical_merge_total_order =
  QCheck.Test.make ~name:"telemetry drain: (time, src, seq) is a total order"
    ~count:100
    QCheck.(
      list_of_size (Gen.int_range 0 60) (pair (int_range 0 2) (int_range 0 50)))
    (fun emissions ->
      let gsim = Sim.create () in
      let root = Telemetry.create gsim in
      Telemetry.set_buffering root true;
      let sims = Array.init 3 (fun i -> Sim.create ~seed:(11 + i) ()) in
      let children =
        Array.init 3 (fun i -> Telemetry.create_child root ~source:i sims.(i))
      in
      let next_idx = Array.make 3 0 in
      List.iter
        (fun (src, at) ->
          ignore
            (Sim.schedule_at sims.(src) ~time:at (fun () ->
                 let idx = next_idx.(src) in
                 next_idx.(src) <- idx + 1;
                 Telemetry.emit children.(src)
                   (Telemetry.Msg_tx { node = src; seq = idx; bytes = 0 }))))
        emissions;
      Array.iter (fun s -> Sim.run_until s 100) sims;
      let seen = ref [] in
      Telemetry.set_sink root (fun time ev ->
          match ev with
          | Telemetry.Msg_tx { node; seq; _ } ->
            seen := (time, node, seq) :: !seen
          | _ -> ());
      Telemetry.drain root ~children ~set_clock:(Sim.unsafe_set_clock gsim);
      let keys = List.rev !seen in
      let rec strictly_sorted = function
        | a :: (b :: _ as rest) -> a < b && strictly_sorted rest
        | _ -> true
      in
      List.length keys = List.length emissions && strictly_sorted keys)

(* --- determinism across worker counts -------------------------------- *)

(* One fixed chaos schedule per replication style, byte-wire mode on:
   the full result fingerprint (violations, deliveries, finish time,
   events processed, flight-recorder history) must be bitwise-identical
   between sim_domains = 1 and sim_domains = 8. *)
let chaos_campaign style =
  Campaign.make ~num_nodes:4 ~num_nets:2 ~style ~seed:97
    ~duration:(Vtime.ms 400) ~quiesce:(Vtime.ms 1200)
    ~traffic:(Campaign.Saturate 512) ~wire:true
    [
      { Campaign.at = Vtime.ms 40; op = Campaign.Set_loss (0, 0.05) };
      { at = Vtime.ms 90; op = Campaign.Block_send (1, 0) };
      { at = Vtime.ms 140; op = Campaign.Set_corrupt (1, 0.02) };
      { at = Vtime.ms 220; op = Campaign.Heal_net 0 };
      { at = Vtime.ms 260; op = Campaign.Unblock_send (1, 0) };
      { at = Vtime.ms 300; op = Campaign.Fail_net 1 };
    ]

let fingerprint (r : Runner.result) =
  ( r.Runner.violations,
    r.Runner.delivered,
    r.Runner.finished_at,
    r.Runner.events,
    r.Runner.history )

let test_chaos_domains_deterministic style () =
  let campaign = chaos_campaign style in
  let r1 = Runner.run ~sim_domains:1 campaign in
  let r8 = Runner.run ~sim_domains:8 campaign in
  Alcotest.(check bool)
    "sim_domains 1 and 8 produce one fingerprint" true
    (fingerprint r1 = fingerprint r8);
  Alcotest.(check int) "equal events_processed" r1.Runner.events r8.Runner.events;
  Alcotest.(check bool) "work was done" true (r1.Runner.delivered > 0)

(* --- window batching -------------------------------------------------- *)

(* Batching is an overhead amortization, not a semantics: over random
   styles, seeds, wire modes and horizon factors, a sim-domains-1 run
   with batching on must produce the same full fingerprint as the same
   campaign with batching off. Campaigns are deliberately small (two
   bursts, short window) so the property gets breadth, not depth — the
   Slow chaos tests above cover the deep schedules. *)
let qcheck_batching_deterministic =
  QCheck.Test.make ~name:"exchange: batched run == unbatched run at d1"
    ~count:8
    QCheck.(
      quad (int_range 0 2) (int_range 0 10_000) bool (int_range 1 16))
    (fun (style_idx, seed, wire, factor) ->
      let style =
        match style_idx with
        | 0 -> Totem_rrp.Style.No_replication
        | 1 -> Totem_rrp.Style.Active
        | _ -> Totem_rrp.Style.Passive
      in
      let campaign =
        Campaign.make ~num_nodes:4 ~num_nets:2 ~style ~seed
          ~duration:(Vtime.ms 60) ~quiesce:(Vtime.ms 800)
          ~traffic:
            (Campaign.Bursts
               [ (0, 256, 3, Vtime.ms 5); (2, 512, 2, Vtime.ms 25) ])
          ~wire []
      in
      let batched =
        Runner.run ~sim_domains:1 ~window_batch:true ~max_horizon_factor:factor
          campaign
      in
      let plain = Runner.run ~sim_domains:1 ~window_batch:false campaign in
      fingerprint batched = fingerprint plain && batched.Runner.delivered > 0)

(* The lookahead-bound harness again, with batching on and a random
   horizon factor: a barrier may only skip its flush when every hook is
   empty, and an adaptive solo window must shrink its cap the moment
   the soloist buffers cross-partition work. If either rule broke, a
   buffered hop would be flushed late (landing in the destination's
   past, raising) or never — so "no exception, every hop delivered,
   outbox empty at the end" is exactly "no hook ever observed a skipped
   or late flush". *)
let qcheck_batching_never_skips_pending_flush =
  QCheck.Test.make ~name:"exchange: batching never skips a pending flush"
    ~count:60
    QCheck.(
      quad (int_range 1 500) (int_range 2 4) (int_range 1 16)
        (list_of_size (Gen.int_range 0 30)
           (triple (int_range 0 3) (int_range 0 5000) (int_range 0 5))))
    (fun (lookahead, nparts, factor, sends) ->
      (* Clamp so shrunk inputs stay inside the generator bounds:
         QCheck's int shrinker walks toward 0, below the ranges. *)
      let lookahead = max 1 lookahead in
      let nparts = max 2 nparts in
      let factor = max 1 factor in
      let global = Sim.create () in
      let parts = Array.init nparts (fun i -> Sim.create ~seed:(7 + i) ()) in
      let ex =
        Exchange.create ~batching:true ~max_horizon_factor:factor ~lookahead
          ~global ~parts ()
      in
      let outbox = ref [] in
      let delivered = ref 0 in
      let expected =
        List.fold_left (fun acc (_, _, hops) -> acc + hops + 1) 0 sends
      in
      let rec send ~src ~hops =
        outbox := (Sim.now parts.(src), (src + 1) mod nparts, hops) :: !outbox
      and deliver dst hops () =
        incr delivered;
        if hops > 0 then send ~src:dst ~hops:(hops - 1)
      in
      Exchange.add_barrier_hook ex
        ~next:(fun () ->
          List.fold_left (fun a (t, _, _) -> Vtime.min a t) Vtime.never !outbox)
        (fun _h1 ->
          let items = List.rev !outbox in
          outbox := [];
          List.iter
            (fun (t, dst, hops) ->
              ignore
                (Sim.schedule_at parts.(dst) ~time:(t + lookahead)
                   (deliver dst hops)))
            items);
      List.iter
        (fun (src, at, hops) ->
          let src = src mod nparts in
          ignore
            (Sim.schedule_at parts.(src) ~time:at (fun () -> send ~src ~hops)))
        sends;
      Exchange.run_until ex 10_000;
      let stats = Exchange.stats ex in
      !delivered = expected
      && !outbox = []
      && Exchange.horizon ex = 10_000
      && stats.Exchange.windows_batched <= stats.Exchange.windows_run)

(* The amortization must engage exactly when enabled: local-only work
   (no hook ever holds anything) makes every barrier skippable, so the
   batched counter climbs with batching on and stays zero with it
   off — and either way the partitions process all their events. *)
let test_windows_batched_counter () =
  let run batching =
    let global = Sim.create () in
    let parts = Array.init 2 (fun i -> Sim.create ~seed:(3 + i) ()) in
    let ex = Exchange.create ~batching ~lookahead:10 ~global ~parts () in
    let fired = ref 0 in
    for k = 1 to 50 do
      ignore (Sim.schedule_at parts.(k mod 2) ~time:(k * 7) (fun () -> incr fired))
    done;
    Exchange.run_until ex 1_000;
    Alcotest.(check int) "all local events fired" 50 !fired;
    Exchange.stats ex
  in
  let on = run true and off = run false in
  Alcotest.(check bool)
    "batched counter engaged on idle-heavy run" true
    (on.Exchange.windows_batched > 0);
  Alcotest.(check int) "counter stays zero when disabled" 0
    off.Exchange.windows_batched

(* Cluster teardown must join the exchange's worker pool: after
   [Cluster.shutdown] no worker domain may outlive the simulation. *)
let test_shutdown_joins_worker_pool () =
  let config = Totem_cluster.Config.make ~num_nodes:4 ~sim_domains:4 () in
  let cluster = Totem_cluster.Cluster.create config in
  Totem_cluster.Cluster.start cluster;
  (* The pool spawns lazily, on the first window with two or more
     active partitions — a short quiet run never triggers it, so drive
     long enough for node timers to coincide inside one window. *)
  Totem_cluster.Cluster.run_until cluster (Vtime.ms 500);
  let ex =
    match Totem_cluster.Cluster.exchange cluster with
    | Some ex -> ex
    | None -> Alcotest.fail "sim_domains 4 must run the parallel core"
  in
  Alcotest.(check bool)
    "worker pool was spawned" true
    (Exchange.live_workers ex > 0);
  Totem_cluster.Cluster.shutdown cluster;
  Alcotest.(check int) "no worker domains after shutdown" 0
    (Exchange.live_workers ex)

(* --- Parallel.map ----------------------------------------------------- *)

exception Boom of int

let test_parallel_map_results () =
  let items = Array.init 100 Fun.id in
  Alcotest.(check (array int))
    "squares, in order"
    (Array.map (fun x -> x * x) items)
    (Parallel.map ~jobs:4 (fun x -> x * x) items)

let test_parallel_map_propagates () =
  (* items 3, 10, 17, ... raise on worker domains; the lowest-indexed
     failure must surface as itself, not as a join error *)
  let f x = if x mod 7 = 3 then raise (Boom x) else x in
  Alcotest.check_raises "lowest-indexed worker exception" (Boom 3) (fun () ->
      ignore (Parallel.map ~jobs:3 f (Array.init 50 Fun.id)));
  Alcotest.check_raises "sequential path too" (Boom 3) (fun () ->
      ignore (Parallel.map ~jobs:1 f (Array.init 50 Fun.id)))

let tests =
  List.map QCheck_alcotest.to_alcotest
    [
      qcheck_lookahead_bound;
      qcheck_canonical_merge_total_order;
      qcheck_batching_deterministic;
      qcheck_batching_never_skips_pending_flush;
    ]
  @ [
      Alcotest.test_case "windows-batched counter engages iff enabled" `Quick
        test_windows_batched_counter;
      Alcotest.test_case "cluster shutdown joins the worker pool" `Quick
        test_shutdown_joins_worker_pool;
      Alcotest.test_case "chaos fingerprint d1=d8 (no replication)" `Slow
        (test_chaos_domains_deterministic Totem_rrp.Style.No_replication);
      Alcotest.test_case "chaos fingerprint d1=d8 (active)" `Slow
        (test_chaos_domains_deterministic Totem_rrp.Style.Active);
      Alcotest.test_case "chaos fingerprint d1=d8 (passive)" `Slow
        (test_chaos_domains_deterministic Totem_rrp.Style.Passive);
      Alcotest.test_case "Parallel.map results land by index" `Quick
        test_parallel_map_results;
      Alcotest.test_case "Parallel.map propagates worker exceptions" `Quick
        test_parallel_map_propagates;
    ]
