(* The parallel simulator core (Partition / Exchange / Parallel) and
   its contracts: the conservative-lookahead bound, the canonical
   (time, source, seq) merge order, bitwise determinism across worker
   counts, and faithful exception propagation from worker domains. *)

open Totem_engine
module Campaign = Totem_chaos.Campaign
module Runner = Totem_chaos.Runner

(* --- lookahead bound (qcheck) --------------------------------------- *)

(* A synthetic exchange over random lookaheads and random
   cross-partition traffic, including reactive reply chains: every
   delivery is scheduled at send + lookahead by the barrier hook, and
   [Sim.schedule_at] raises if that ever lands in the destination
   partition's past — so the property "no exception and every hop
   delivered" is exactly "the lookahead bound was never violated". *)
let qcheck_lookahead_bound =
  QCheck.Test.make ~name:"exchange: lookahead bound never violated" ~count:60
    QCheck.(
      triple (int_range 1 500) (int_range 2 4)
        (list_of_size (Gen.int_range 0 30)
           (triple (int_range 0 3) (int_range 0 5000) (int_range 0 5))))
    (fun (lookahead, nparts, sends) ->
      let global = Sim.create () in
      let parts = Array.init nparts (fun i -> Sim.create ~seed:(7 + i) ()) in
      let ex = Exchange.create ~lookahead ~global ~parts () in
      let outbox = ref [] in
      let delivered = ref 0 in
      let expected =
        List.fold_left (fun acc (_, _, hops) -> acc + hops + 1) 0 sends
      in
      let rec send ~src ~hops =
        outbox := (Sim.now parts.(src), (src + 1) mod nparts, hops) :: !outbox
      and deliver dst hops () =
        incr delivered;
        if hops > 0 then send ~src:dst ~hops:(hops - 1)
      in
      Exchange.add_barrier_hook ex
        ~next:(fun () ->
          match !outbox with
          | [] -> None
          | l -> Some (List.fold_left (fun a (t, _, _) -> min a t) max_int l))
        (fun _h1 ->
          let items = List.rev !outbox in
          outbox := [];
          List.iter
            (fun (t, dst, hops) ->
              ignore
                (Sim.schedule_at parts.(dst) ~time:(t + lookahead)
                   (deliver dst hops)))
            items);
      List.iter
        (fun (src, at, hops) ->
          let src = src mod nparts in
          ignore
            (Sim.schedule_at parts.(src) ~time:at (fun () -> send ~src ~hops)))
        sends;
      (* max chain: 5000 + 7 hops x 500 lookahead < 10_000 *)
      Exchange.run_until ex 10_000;
      !delivered = expected && Exchange.horizon ex = 10_000)

(* --- canonical merge order (qcheck) ---------------------------------- *)

(* Random emissions across buffered child hubs must drain in strictly
   increasing (time, source, per-source seq) order — a total order, so
   the drained stream is unique whatever the emission interleaving
   across partitions was. *)
let qcheck_canonical_merge_total_order =
  QCheck.Test.make ~name:"telemetry drain: (time, src, seq) is a total order"
    ~count:100
    QCheck.(
      list_of_size (Gen.int_range 0 60) (pair (int_range 0 2) (int_range 0 50)))
    (fun emissions ->
      let gsim = Sim.create () in
      let root = Telemetry.create gsim in
      Telemetry.set_buffering root true;
      let sims = Array.init 3 (fun i -> Sim.create ~seed:(11 + i) ()) in
      let children =
        Array.init 3 (fun i -> Telemetry.create_child root ~source:i sims.(i))
      in
      let next_idx = Array.make 3 0 in
      List.iter
        (fun (src, at) ->
          ignore
            (Sim.schedule_at sims.(src) ~time:at (fun () ->
                 let idx = next_idx.(src) in
                 next_idx.(src) <- idx + 1;
                 Telemetry.emit children.(src)
                   (Telemetry.Msg_tx { node = src; seq = idx; bytes = 0 }))))
        emissions;
      Array.iter (fun s -> Sim.run_until s 100) sims;
      let seen = ref [] in
      Telemetry.set_sink root (fun time ev ->
          match ev with
          | Telemetry.Msg_tx { node; seq; _ } ->
            seen := (time, node, seq) :: !seen
          | _ -> ());
      Telemetry.drain root ~children ~set_clock:(Sim.unsafe_set_clock gsim);
      let keys = List.rev !seen in
      let rec strictly_sorted = function
        | a :: (b :: _ as rest) -> a < b && strictly_sorted rest
        | _ -> true
      in
      List.length keys = List.length emissions && strictly_sorted keys)

(* --- determinism across worker counts -------------------------------- *)

(* One fixed chaos schedule per replication style, byte-wire mode on:
   the full result fingerprint (violations, deliveries, finish time,
   events processed, flight-recorder history) must be bitwise-identical
   between sim_domains = 1 and sim_domains = 8. *)
let chaos_campaign style =
  Campaign.make ~num_nodes:4 ~num_nets:2 ~style ~seed:97
    ~duration:(Vtime.ms 400) ~quiesce:(Vtime.ms 1200)
    ~traffic:(Campaign.Saturate 512) ~wire:true
    [
      { Campaign.at = Vtime.ms 40; op = Campaign.Set_loss (0, 0.05) };
      { at = Vtime.ms 90; op = Campaign.Block_send (1, 0) };
      { at = Vtime.ms 140; op = Campaign.Set_corrupt (1, 0.02) };
      { at = Vtime.ms 220; op = Campaign.Heal_net 0 };
      { at = Vtime.ms 260; op = Campaign.Unblock_send (1, 0) };
      { at = Vtime.ms 300; op = Campaign.Fail_net 1 };
    ]

let fingerprint (r : Runner.result) =
  ( r.Runner.violations,
    r.Runner.delivered,
    r.Runner.finished_at,
    r.Runner.events,
    r.Runner.history )

let test_chaos_domains_deterministic style () =
  let campaign = chaos_campaign style in
  let r1 = Runner.run ~sim_domains:1 campaign in
  let r8 = Runner.run ~sim_domains:8 campaign in
  Alcotest.(check bool)
    "sim_domains 1 and 8 produce one fingerprint" true
    (fingerprint r1 = fingerprint r8);
  Alcotest.(check int) "equal events_processed" r1.Runner.events r8.Runner.events;
  Alcotest.(check bool) "work was done" true (r1.Runner.delivered > 0)

(* --- Parallel.map ----------------------------------------------------- *)

exception Boom of int

let test_parallel_map_results () =
  let items = Array.init 100 Fun.id in
  Alcotest.(check (array int))
    "squares, in order"
    (Array.map (fun x -> x * x) items)
    (Parallel.map ~jobs:4 (fun x -> x * x) items)

let test_parallel_map_propagates () =
  (* items 3, 10, 17, ... raise on worker domains; the lowest-indexed
     failure must surface as itself, not as a join error *)
  let f x = if x mod 7 = 3 then raise (Boom x) else x in
  Alcotest.check_raises "lowest-indexed worker exception" (Boom 3) (fun () ->
      ignore (Parallel.map ~jobs:3 f (Array.init 50 Fun.id)));
  Alcotest.check_raises "sequential path too" (Boom 3) (fun () ->
      ignore (Parallel.map ~jobs:1 f (Array.init 50 Fun.id)))

let tests =
  List.map QCheck_alcotest.to_alcotest
    [ qcheck_lookahead_bound; qcheck_canonical_merge_total_order ]
  @ [
      Alcotest.test_case "chaos fingerprint d1=d8 (no replication)" `Slow
        (test_chaos_domains_deterministic Totem_rrp.Style.No_replication);
      Alcotest.test_case "chaos fingerprint d1=d8 (active)" `Slow
        (test_chaos_domains_deterministic Totem_rrp.Style.Active);
      Alcotest.test_case "chaos fingerprint d1=d8 (passive)" `Slow
        (test_chaos_domains_deterministic Totem_rrp.Style.Passive);
      Alcotest.test_case "Parallel.map results land by index" `Quick
        test_parallel_map_results;
      Alcotest.test_case "Parallel.map propagates worker exceptions" `Quick
        test_parallel_map_propagates;
    ]
