(* The cluster harness: configuration, metrics, workloads, scenarios,
   and whole-run determinism. *)

open Util

let test_config_validation () =
  Alcotest.(check bool) "defaults valid" true
    (Result.is_ok (Config.validate (Config.make ())));
  Alcotest.(check bool) "zero nodes invalid" true
    (Result.is_error (Config.validate (Config.make ~num_nodes:0 ())));
  Alcotest.(check bool) "zero nets invalid" true
    (Result.is_error (Config.validate (Config.make ~num_nets:0 ())));
  Alcotest.(check bool) "active-passive on 2 nets invalid" true
    (Result.is_error
       (Config.validate (Config.make ~style:(Style.Active_passive 2) ())));
  Alcotest.(check bool) "net_configs mismatch" true
    (Result.is_error
       (Config.validate
          (Config.make ~num_nets:2
             ~net_configs:[| Totem_net.Network.default_config |] ())));
  Alcotest.check_raises "create rejects invalid"
    (Invalid_argument "Cluster.create: need at least one node") (fun () ->
      ignore (Cluster.create (Config.make ~num_nodes:0 ())))

let test_paper_testbed () =
  let c = Config.paper_testbed ~num_nodes:6 ~style:Style.Active in
  Alcotest.(check int) "six nodes" 6 c.Config.num_nodes;
  Alcotest.(check int) "two networks" 2 c.Config.num_nets

let test_throughput_measurement () =
  let t = make () in
  Cluster.start t.cluster;
  Workload.saturate t.cluster ~size:1024;
  let tp =
    Metrics.measure_throughput t.cluster ~warmup:(Vtime.ms 200)
      ~duration:(Vtime.sec 1)
  in
  Alcotest.(check bool) "sane rate" true
    (tp.Metrics.msgs_per_sec > 5000.0 && tp.Metrics.msgs_per_sec < 30000.0);
  (* 1 KB messages: KB/s tracks msgs/s. *)
  Alcotest.(check (float 1.0)) "bytes consistent" tp.Metrics.msgs_per_sec
    tp.Metrics.kbytes_per_sec

let test_latency_probe () =
  let t = make () in
  Cluster.start t.cluster;
  let probe = Metrics.install_latency t.cluster in
  Workload.fixed_rate t.cluster ~node:1 ~size:512 ~interval:(Vtime.ms 5)
    ~count:100 ();
  run_ms t 1000;
  let s =
    match Metrics.latency_summary probe with
    | Some s -> s
    | None -> Alcotest.fail "latency probe is empty"
  in
  Alcotest.(check bool) "samples collected (100 msgs x 4 nodes)" true
    (Totem_engine.Stats.Summary.count s = 400);
  let mean = Totem_engine.Stats.Summary.mean s in
  Alcotest.(check bool) "latency within LAN bounds" true
    (mean > 0.01 && mean < 50.0)

let test_fixed_rate_count () =
  let t = make () in
  Cluster.start t.cluster;
  Workload.fixed_rate t.cluster ~node:2 ~size:256 ~interval:(Vtime.ms 2)
    ~count:50 ();
  run_ms t 1000;
  check_delivered_everything t ~expected:50

let test_poisson_workload () =
  let t = make () in
  Cluster.start t.cluster;
  Workload.poisson t.cluster ~node:1 ~size:256 ~mean_interval:(Vtime.ms 2)
    ~count:100 ();
  run_ms t 3000;
  check_delivered_everything t ~expected:100

let test_burst_workload () =
  let t = make () in
  Cluster.start t.cluster;
  Workload.burst t.cluster ~node:3 ~size:512 ~count:200 ~at:(Vtime.ms 100);
  run_ms t 2000;
  check_delivered_everything t ~expected:200

let test_scenario_scheduling () =
  let t = make ~style:Style.Active () in
  Cluster.start t.cluster;
  Workload.saturate t.cluster ~size:1024;
  Scenario.schedule t.cluster
    [
      (Vtime.ms 300, Totem_cluster.Scenario.Fail_network 0);
      (Vtime.ms 1500, Totem_cluster.Scenario.Heal_network 0);
    ];
  run_ms t 1000;
  Alcotest.(check bool) "fault marked while scheduled outage" true
    (Totem_rrp.Rrp.faulty (rrp_of t 0)).(0);
  run_ms t 1000;
  Alcotest.(check bool) "heal cleared the mark" false
    (Totem_rrp.Rrp.faulty (rrp_of t 0)).(0)

let test_network_utilisation_bounds () =
  let t = make ~style:Style.No_replication () in
  Cluster.start t.cluster;
  Workload.saturate t.cluster ~size:1024;
  run_ms t 1000;
  let u = Metrics.network_utilisation t.cluster ~net:0 in
  Alcotest.(check bool) "utilisation sane" true (u > 0.5 && u <= 1.0);
  let u1 = Metrics.network_utilisation t.cluster ~net:1 in
  Alcotest.(check (float 0.001)) "unused network idle" 0.0 u1

let run_fingerprint ~seed =
  let t = make ~seed ~style:Style.Passive () in
  Cluster.start t.cluster;
  Workload.saturate t.cluster ~size:700;
  Cluster.set_network_loss t.cluster 0 0.05;
  run_ms t 1000;
  ( Cluster.delivered_at t.cluster 0,
    Cluster.delivered_at t.cluster 3,
    (Srp.stats (srp_of t 1)).Srp.retransmissions_served,
    order t 2 )

let test_determinism_same_seed () =
  let a = run_fingerprint ~seed:99 and b = run_fingerprint ~seed:99 in
  Alcotest.(check bool) "bit-identical runs" true (a = b)

let test_determinism_seed_sensitivity () =
  let a = run_fingerprint ~seed:1 and b = run_fingerprint ~seed:2 in
  let d0 (x, _, _, _) = x in
  (* Different loss draws make different retransmission schedules; the
     delivered counts will differ at least slightly. *)
  Alcotest.(check bool) "seeds matter" true (d0 a <> d0 b || a <> b)

let test_six_node_cluster () =
  let t = make ~num_nodes:6 () in
  Cluster.start t.cluster;
  submit_n t ~node:5 ~size:512 10;
  run_ms t 500;
  check_delivered_everything t ~expected:10

let test_two_node_cluster () =
  let t = make ~num_nodes:2 () in
  Cluster.start t.cluster;
  submit_n t ~node:1 ~size:512 10;
  run_ms t 500;
  check_delivered_everything t ~expected:10

let tests =
  [
    Alcotest.test_case "config validation" `Quick test_config_validation;
    Alcotest.test_case "paper testbed shorthand" `Quick test_paper_testbed;
    Alcotest.test_case "throughput measurement" `Quick test_throughput_measurement;
    Alcotest.test_case "latency probe" `Quick test_latency_probe;
    Alcotest.test_case "fixed-rate workload" `Quick test_fixed_rate_count;
    Alcotest.test_case "poisson workload" `Quick test_poisson_workload;
    Alcotest.test_case "burst workload" `Quick test_burst_workload;
    Alcotest.test_case "scenario scheduling" `Quick test_scenario_scheduling;
    Alcotest.test_case "network utilisation" `Quick test_network_utilisation_bounds;
    Alcotest.test_case "determinism: same seed, same run" `Quick
      test_determinism_same_seed;
    Alcotest.test_case "determinism: seeds matter" `Quick
      test_determinism_seed_sensitivity;
    Alcotest.test_case "six nodes" `Quick test_six_node_cluster;
    Alcotest.test_case "two nodes" `Quick test_two_node_cluster;
  ]
