open Totem_srp

let packet ~seq =
  {
    Wire.ring_id = 1;
    seq;
    sender = 0;
    elements =
      [ { Wire.message = Message.make ~origin:0 ~app_seq:seq ~size:10 (); fragment = None } ];
  }

let test_in_order () =
  let b = Recv_buffer.create () in
  Alcotest.(check int) "aru starts 0" 0 (Recv_buffer.my_aru b);
  ignore (Recv_buffer.store b (packet ~seq:1));
  ignore (Recv_buffer.store b (packet ~seq:2));
  Alcotest.(check int) "aru" 2 (Recv_buffer.my_aru b);
  Alcotest.(check int) "deliverable" 2 (List.length (Recv_buffer.pop_deliverable b));
  Alcotest.(check int) "pop once" 0 (List.length (Recv_buffer.pop_deliverable b))

let test_gap_blocks_delivery () =
  let b = Recv_buffer.create () in
  ignore (Recv_buffer.store b (packet ~seq:1));
  ignore (Recv_buffer.store b (packet ~seq:3));
  Alcotest.(check int) "aru stuck" 1 (Recv_buffer.my_aru b);
  Alcotest.(check int) "highest" 3 (Recv_buffer.highest_seen b);
  Alcotest.(check (list int)) "missing" [ 2 ] (Recv_buffer.missing_up_to b 3);
  Alcotest.(check int) "only seq1 deliverable" 1
    (List.length (Recv_buffer.pop_deliverable b));
  ignore (Recv_buffer.store b (packet ~seq:2));
  Alcotest.(check int) "aru jumps" 3 (Recv_buffer.my_aru b);
  let delivered = Recv_buffer.pop_deliverable b in
  Alcotest.(check (list int)) "2 then 3"
    [ 2; 3 ]
    (List.map (fun p -> p.Wire.seq) delivered)

let test_duplicates () =
  let b = Recv_buffer.create () in
  Alcotest.(check bool) "first new" true (Recv_buffer.store b (packet ~seq:1) = `New);
  Alcotest.(check bool) "second dup" true
    (Recv_buffer.store b (packet ~seq:1) = `Duplicate)

let test_missing_ranges () =
  let b = Recv_buffer.create () in
  ignore (Recv_buffer.store b (packet ~seq:2));
  ignore (Recv_buffer.store b (packet ~seq:5));
  Alcotest.(check (list int)) "gaps" [ 1; 3; 4 ] (Recv_buffer.missing_up_to b 5);
  Alcotest.(check (list int)) "beyond highest" [ 1; 3; 4; 6 ]
    (Recv_buffer.missing_up_to b 6)

let test_gc () =
  let b = Recv_buffer.create () in
  for seq = 1 to 10 do
    ignore (Recv_buffer.store b (packet ~seq))
  done;
  ignore (Recv_buffer.pop_deliverable b);
  Alcotest.(check int) "stored" 10 (Recv_buffer.stored_count b);
  Recv_buffer.gc_below b 4;
  Alcotest.(check int) "gc'd" 6 (Recv_buffer.stored_count b);
  Alcotest.(check bool) "gc'd seqs count as present" true (Recv_buffer.has b 3);
  Alcotest.(check bool) "re-store below horizon is duplicate" true
    (Recv_buffer.store b (packet ~seq:2) = `Duplicate);
  Alcotest.(check bool) "find below horizon gone" true
    (Recv_buffer.find b 2 = None)

let test_gc_never_drops_undelivered () =
  let b = Recv_buffer.create () in
  for seq = 1 to 5 do
    ignore (Recv_buffer.store b (packet ~seq))
  done;
  (* Nothing delivered yet: gc must refuse. *)
  Recv_buffer.gc_below b 5;
  Alcotest.(check int) "all retained" 5 (Recv_buffer.stored_count b);
  ignore (Recv_buffer.pop_deliverable b);
  Recv_buffer.gc_below b 5;
  Alcotest.(check int) "now gone" 0 (Recv_buffer.stored_count b)

let test_reset () =
  let b = Recv_buffer.create () in
  ignore (Recv_buffer.store b (packet ~seq:1));
  Recv_buffer.reset b;
  Alcotest.(check int) "aru reset" 0 (Recv_buffer.my_aru b);
  Alcotest.(check int) "empty" 0 (Recv_buffer.stored_count b);
  Alcotest.(check bool) "seq 1 accepted again" true
    (Recv_buffer.store b (packet ~seq:1) = `New)

let test_ring_wraparound () =
  (* Slide a delivery + gc window across several times the ring's
     initial capacity: every seq must deliver exactly once, in order,
     and slots freed by gc must be reusable by later seqs that hash to
     the same ring index. *)
  let b = Recv_buffer.create () in
  let total = 5000 in
  let delivered = ref 0 in
  for seq = 1 to total do
    Alcotest.(check bool)
      (Printf.sprintf "seq %d is new" seq)
      true
      (Recv_buffer.store b (packet ~seq) = `New);
    List.iter
      (fun p ->
        incr delivered;
        if p.Wire.seq <> !delivered then
          Alcotest.failf "delivered %d, expected %d" p.Wire.seq !delivered)
      (Recv_buffer.pop_deliverable b);
    (* Keep a trailing window of 100 seqs, as stability gc would. *)
    if seq mod 100 = 0 then Recv_buffer.gc_below b (seq - 100)
  done;
  Alcotest.(check int) "every seq delivered once" total !delivered;
  Alcotest.(check bool) "window stays small" true
    (Recv_buffer.stored_count b <= 200)

let test_growth_when_stability_stalls () =
  (* No gc at all: the live window outgrows the initial ring and the
     buffer must expand rather than let distant seqs collide. 1 and
     1 + 4096 share a slot in any power-of-two ring up to 4096. *)
  let b = Recv_buffer.create () in
  ignore (Recv_buffer.store b (packet ~seq:1));
  ignore (Recv_buffer.store b (packet ~seq:4097));
  Alcotest.(check bool) "seq 1 still present" true (Recv_buffer.has b 1);
  Alcotest.(check bool) "seq 4097 present" true (Recv_buffer.has b 4097);
  Alcotest.(check int) "both stored" 2 (Recv_buffer.stored_count b);
  Alcotest.(check bool) "dup detection across growth" true
    (Recv_buffer.store b (packet ~seq:1) = `Duplicate);
  (* The gap list is still exact after re-placement. *)
  Alcotest.(check (list int)) "missing below grown seq"
    (List.init 5 (fun i -> i + 2))
    (Recv_buffer.missing_up_to b 6)

let test_gc_horizon_vs_wrapped_slot () =
  (* A seq at the same ring index as a gc'd one must read as absent
     (missing), while the gc'd seq itself reads as present — the
     horizon, not the slot, is authoritative below it. *)
  let b = Recv_buffer.create () in
  for seq = 1 to 10 do
    ignore (Recv_buffer.store b (packet ~seq))
  done;
  ignore (Recv_buffer.pop_deliverable b);
  Recv_buffer.gc_below b 10;
  Alcotest.(check bool) "gc'd seq present via horizon" true (Recv_buffer.has b 7);
  let wrapped = 7 + 1024 in
  Alcotest.(check bool) "wrapped slot reads absent" false
    (Recv_buffer.has b wrapped);
  ignore (Recv_buffer.store b (packet ~seq:wrapped));
  Alcotest.(check bool) "wrapped seq stored in freed slot" true
    (Recv_buffer.has b wrapped)

let qcheck_random_arrival_order =
  QCheck.Test.make ~name:"delivery is 1..n in order for any arrival order"
    ~count:200
    QCheck.(int_range 1 60)
    (fun n ->
      let b = Recv_buffer.create () in
      let order = Array.init n (fun i -> i + 1) in
      let rng = Totem_engine.Rng.create ~seed:n in
      Totem_engine.Rng.shuffle rng order;
      let delivered = ref [] in
      Array.iter
        (fun seq ->
          ignore (Recv_buffer.store b (packet ~seq));
          delivered :=
            !delivered @ List.map (fun p -> p.Wire.seq) (Recv_buffer.pop_deliverable b))
        order;
      !delivered = List.init n (fun i -> i + 1))

let tests =
  [
    Alcotest.test_case "in-order path" `Quick test_in_order;
    Alcotest.test_case "gap blocks delivery" `Quick test_gap_blocks_delivery;
    Alcotest.test_case "duplicates filtered" `Quick test_duplicates;
    Alcotest.test_case "missing ranges" `Quick test_missing_ranges;
    Alcotest.test_case "garbage collection" `Quick test_gc;
    Alcotest.test_case "gc never drops undelivered" `Quick
      test_gc_never_drops_undelivered;
    Alcotest.test_case "reset for new ring" `Quick test_reset;
    Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
    Alcotest.test_case "growth when stability stalls" `Quick
      test_growth_when_stability_stalls;
    Alcotest.test_case "gc horizon vs wrapped slot" `Quick
      test_gc_horizon_vs_wrapped_slot;
    QCheck_alcotest.to_alcotest qcheck_random_arrival_order;
  ]
