(* The binary wire codec: round trips, size honesty against the
   simulation's charging model, and malformed-input rejection. *)

module Codec = Totem_srp.Codec
module Wire = Totem_srp.Wire
module Token = Totem_srp.Token
module Message = Totem_srp.Message
module Const = Totem_srp.Const
module Packing = Totem_srp.Packing

let const = Const.default

let msg ?(origin = 1) ?(app_seq = 1) ?(safe = false) ~size () =
  Message.make ~origin ~app_seq ~size ~safe ()

let whole ?origin ?app_seq ?safe ~size () =
  { Wire.message = msg ?origin ?app_seq ?safe ~size (); fragment = None }

let packet ?(ring_id = 1) ?(seq = 42) ?(sender = 2) elements =
  { Wire.ring_id; seq; sender; elements }

(* Messages carry no comparable payload closure, so compare field by
   field. *)
let check_message name (a : Message.t) (b : Message.t) =
  Alcotest.(check int) (name ^ " origin") a.origin b.origin;
  Alcotest.(check int) (name ^ " app_seq") a.app_seq b.app_seq;
  Alcotest.(check int) (name ^ " size") a.size b.size;
  Alcotest.(check bool) (name ^ " safe") a.safe b.safe

let check_packet name (a : Wire.packet) (b : Wire.packet) =
  Alcotest.(check int) (name ^ " ring") a.ring_id b.ring_id;
  Alcotest.(check int) (name ^ " seq") a.seq b.seq;
  Alcotest.(check int) (name ^ " sender") a.sender b.sender;
  Alcotest.(check int) (name ^ " count") (List.length a.elements)
    (List.length b.elements);
  List.iter2
    (fun (x : Wire.element) (y : Wire.element) ->
      check_message name x.message y.message;
      Alcotest.(check bool) (name ^ " frag presence") (x.fragment <> None)
        (y.fragment <> None);
      match (x.fragment, y.fragment) with
      | Some f, Some g ->
        Alcotest.(check int) (name ^ " index") f.Wire.index g.Wire.index;
        Alcotest.(check int) (name ^ " fcount") f.Wire.count g.Wire.count;
        Alcotest.(check int) (name ^ " fbytes") f.Wire.bytes g.Wire.bytes
      | _ -> ())
    a.elements b.elements

let test_packet_roundtrip () =
  let p =
    packet
      [ whole ~size:700 (); whole ~origin:3 ~app_seq:9 ~safe:true ~size:700 () ]
  in
  match Codec.decode (Codec.encode_packet p) with
  | Ok (Codec.Packet p') -> check_packet "packed pair" p p'
  | Ok _ -> Alcotest.fail "wrong kind"
  | Error e -> Alcotest.failf "decode error: %a" Codec.pp_error e

let test_fragment_roundtrip () =
  let elements = Packing.elements_of_message const (msg ~size:5000 ()) in
  let p = packet elements in
  match Codec.decode (Codec.encode_packet p) with
  | Ok (Codec.Packet p') -> check_packet "fragments" p p'
  | _ -> Alcotest.fail "decode failed"

let test_token_roundtrip () =
  let t =
    {
      (Token.initial ~ring:[| 0; 1; 2; 5 |] ~ring_id:129) with
      Token.seq = 100_000;
      rotation = 777;
      hops = 3111;
      aru = 99_998;
      aru_setter = 5;
      fcc = 50;
      rtr = [ 99_999; 100_000 ];
    }
  in
  match Codec.decode (Codec.encode_token t) with
  | Ok (Codec.Token t') ->
    Alcotest.(check bool) "identical" true (t = t')
  | _ -> Alcotest.fail "decode failed"

let test_join_roundtrip () =
  let j = { Wire.sender = 3; proc_set = [ 0; 1; 3 ]; fail_set = [ 2 ]; max_ring_id = 640 } in
  match Codec.decode (Codec.encode_join j) with
  | Ok (Codec.Join j') -> Alcotest.(check bool) "identical" true (j = j')
  | _ -> Alcotest.fail "decode failed"

let test_probe_roundtrip () =
  let p = { Wire.probe_sender = 4; probe_ring_id = 192 } in
  match Codec.decode (Codec.encode_probe p) with
  | Ok (Codec.Probe p') -> Alcotest.(check bool) "identical" true (p = p')
  | _ -> Alcotest.fail "decode failed"

(* Size honesty: for whole-message packets the encoded bytes must be at
   most the size the simulation charges to the wire (packet header
   within the 94-byte frame-overhead budget; 12 bytes per element). *)
let test_size_honesty_whole () =
  List.iter
    (fun sizes ->
      let elements = List.mapi (fun i s -> whole ~app_seq:(i + 1) ~size:s ()) sizes in
      let p = packet elements in
      let charged = Wire.packet_payload_bytes const p + 12 (* packet header *) in
      let encoded = String.length (Codec.encode_packet p) in
      if encoded > charged then
        Alcotest.failf "sizes %s: encoded %d > charged %d"
          (String.concat "," (List.map string_of_int sizes))
          encoded charged)
    [ [ 700; 700 ]; [ 100 ]; [ 0; 0; 0 ]; [ 1400 ]; [ 64; 128; 256; 512 ] ]

let test_size_honesty_token () =
  let t =
    {
      (Token.initial ~ring:[| 0; 1; 2; 3; 4; 5 |] ~ring_id:1) with
      Token.rtr = List.init 100 Fun.id;
    }
  in
  Alcotest.(check bool) "token fits its declared size" true
    (String.length (Codec.encode_token t) <= Token.payload_bytes const t)

let test_size_honesty_join () =
  let j =
    { Wire.sender = 0; proc_set = List.init 6 Fun.id; fail_set = [ 9 ]; max_ring_id = 3 }
  in
  Alcotest.(check bool) "join fits its declared size" true
    (String.length (Codec.encode_join j) <= Wire.join_payload_bytes const j)

let test_rejects_garbage () =
  (match Codec.decode "" with
  | Error Codec.Truncated -> ()
  | _ -> Alcotest.fail "empty should be truncated");
  (match Codec.decode "\xff___" with
  | Error (Codec.Bad_tag 0xff) -> ()
  | _ -> Alcotest.fail "bad tag expected");
  let good = Codec.encode_probe { Wire.probe_sender = 1; probe_ring_id = 2 } in
  (match Codec.decode (good ^ "x") with
  | Error (Codec.Trailing_bytes 1) -> ()
  | _ -> Alcotest.fail "trailing byte expected");
  match Codec.decode (String.sub good 0 (String.length good - 1)) with
  | Error Codec.Truncated -> ()
  | _ -> Alcotest.fail "truncation expected"

let qcheck_packet_roundtrip =
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 8 in
      let* sizes = list_size (return n) (int_range 0 1412) in
      let* ring_id = int_range 0 100_000 in
      let* seq = int_range 0 1_000_000 in
      let* sender = int_range 0 63 in
      return (ring_id, seq, sender, sizes))
  in
  QCheck.Test.make ~name:"packet encode/decode round trip" ~count:300
    (QCheck.make gen) (fun (ring_id, seq, sender, sizes) ->
      let elements =
        List.mapi
          (fun i s ->
            whole ~origin:(i mod 7) ~app_seq:(i + 1) ~safe:(i mod 2 = 0) ~size:s ())
          sizes
      in
      let p = packet ~ring_id ~seq ~sender elements in
      match Codec.decode (Codec.encode_packet p) with
      | Ok (Codec.Packet p') ->
        p'.Wire.ring_id = ring_id && p'.Wire.seq = seq
        && p'.Wire.sender = sender
        && List.for_all2
             (fun (a : Wire.element) (b : Wire.element) ->
               a.message.Message.size = b.message.Message.size
               && a.message.Message.origin = b.message.Message.origin
               && a.message.Message.app_seq = b.message.Message.app_seq
               && a.message.Message.safe = b.message.Message.safe)
             p.elements p'.elements
      | _ -> false)

let qcheck_token_roundtrip =
  QCheck.Test.make ~name:"token encode/decode round trip" ~count:300
    QCheck.(
      quad (int_range 0 100_000) (int_range 0 1_000_000) (int_range 0 10_000)
        (list_of_size (Gen.int_range 0 50) (int_range 0 1_000_000)))
    (fun (ring_id, seq, hops, rtr) ->
      let t =
        {
          (Token.initial ~ring:[| 0; 1; 2 |] ~ring_id:(ring_id + 1)) with
          Token.seq;
          hops;
          rtr = List.sort_uniq compare rtr;
        }
      in
      Codec.decode (Codec.encode_token t) = Ok (Codec.Token t))

let test_custom_data_codec () =
  let module M = struct
    type Message.data += Text of string
  end in
  Codec.set_data_codec
    ~encode:(function M.Text s -> s | _ -> "")
    ~decode:(fun s -> M.Text s);
  Fun.protect
    ~finally:(fun () ->
      Codec.set_data_codec
        ~encode:(fun _ -> "")
        ~decode:(fun _ -> Message.Blob))
    (fun () ->
      let m = Message.make ~origin:1 ~app_seq:1 ~size:5 ~data:(M.Text "hello") () in
      let p = packet [ { Wire.message = m; fragment = None } ] in
      match Codec.decode (Codec.encode_packet p) with
      | Ok (Codec.Packet p') -> (
        match (List.hd p'.Wire.elements).Wire.message.Message.data with
        | M.Text s -> Alcotest.(check string) "payload carried" "hello" s
        | _ -> Alcotest.fail "wrong payload")
      | _ -> Alcotest.fail "decode failed")

(* The strongest codec validation: run a whole cluster — saturating
   traffic, a network failure, a node crash forcing gather, commit and
   recovery — with every frame's payload shadow-encoded and decoded.
   Any byte-format defect aborts the run. *)
let test_shadow_mode_full_protocol () =
  let config =
    Totem_cluster.Config.make ~num_nodes:4 ~num_nets:2
      ~style:Totem_rrp.Style.Active ~codec_shadow:true ()
  in
  let cluster = Totem_cluster.Cluster.create config in
  Totem_cluster.Cluster.start cluster;
  Totem_cluster.Workload.saturate cluster ~size:700;
  Totem_cluster.Cluster.run_for cluster (Totem_engine.Vtime.ms 300);
  Totem_cluster.Cluster.fail_network cluster 0;
  Totem_cluster.Cluster.run_for cluster (Totem_engine.Vtime.ms 500);
  Totem_cluster.Cluster.crash_node cluster 2;
  Totem_cluster.Cluster.run_for cluster (Totem_engine.Vtime.sec 2);
  Alcotest.(check bool) "survived with shadow checks on every frame" true
    (Totem_cluster.Cluster.delivered_at cluster 0 > 1000)

(* --- CRC-32 ---------------------------------------------------------- *)

module Crc32 = Totem_net.Crc32
module Frame = Totem_net.Frame

let flip_byte s i x =
  String.mapi (fun j c -> if j = i then Char.chr (Char.code c lxor x) else c) s

let test_crc32_vector () =
  (* The IEEE 802.3 check value: CRC-32 of the ASCII digits "123456789". *)
  Alcotest.(check int) "check value" 0xCBF43926 (Crc32.digest "123456789");
  Alcotest.(check int) "empty input" 0 (Crc32.digest "");
  (* Incremental updates compose to the one-shot digest. *)
  let half = Crc32.update 0 "123456789" ~pos:0 ~len:5 in
  Alcotest.(check int) "incremental" 0xCBF43926
    (Crc32.update half "123456789" ~pos:5 ~len:4);
  let b = Buffer.create 16 in
  Buffer.add_string b "123456789";
  Crc32.append b (Crc32.digest "123456789");
  let s = Buffer.contents b in
  Alcotest.(check bool) "append/check round trip" true (Crc32.check s);
  Alcotest.(check int) "trailer reads back" 0xCBF43926 (Crc32.read_trailer s);
  for i = 0 to String.length s - 1 do
    Alcotest.(check bool) "any flipped byte breaks the check" false
      (Crc32.check (flip_byte s i 0x40))
  done;
  Alcotest.(check bool) "shorter than a trailer" false (Crc32.check "abc")

(* --- hostile length prefixes ----------------------------------------- *)

(* Build raw codec images by hand so a lying count prefix reaches the
   decoder exactly as a corrupted frame would deliver it. *)
let hostile prelude =
  let b = Buffer.create 64 in
  List.iter
    (fun (width, v) ->
      for i = 0 to width - 1 do
        Buffer.add_char b (Char.chr ((v lsr (8 * i)) land 0xff))
      done)
    prelude;
  Buffer.contents b

let check_bad_count name input expected_what =
  match Codec.decode input with
  | Error (Codec.Bad_count { what; _ }) when what = expected_what -> ()
  | Error e -> Alcotest.failf "%s: expected Bad_count %s, got %a" name expected_what Codec.pp_error e
  | Ok _ -> Alcotest.failf "%s: hostile prefix decoded" name

(* A count prefix claiming more elements than a maximum payload can
   carry must be rejected before any allocation; one claiming a
   plausible count without the bytes to back it is plain truncation. *)
let test_hostile_prefixes () =
  check_bad_count "packet"
    (hostile [ (1, 0x50); (4, 1); (4, 1); (2, 0); (1, 255) ])
    "element";
  check_bad_count "token rtr"
    (hostile
       [ (1, 0x54); (4, 1); (4, 0); (4, 0); (4, 0); (4, 0); (2, 0); (2, 0);
         (2, 0xffff); (1, 1) ])
    "rtr";
  (* A u8 ring count can never exceed the 712-entry budget, so a lying
     one is caught by the byte-backing check instead. *)
  (match
     Codec.decode
       (hostile
          [ (1, 0x54); (4, 1); (4, 0); (4, 0); (4, 0); (4, 0); (2, 0); (2, 0);
            (2, 0); (1, 0xff) ])
   with
  | Error Codec.Truncated -> ()
  | Error e -> Alcotest.failf "token ring: expected Truncated, got %a" Codec.pp_error e
  | Ok _ -> Alcotest.fail "token ring: hostile prefix decoded");
  check_bad_count "join proc set"
    (hostile [ (1, 0x4a); (2, 0); (4, 0); (2, 0xffff); (2, 0) ])
    "proc set";
  check_bad_count "join fail set"
    (hostile [ (1, 0x4a); (2, 0); (4, 0); (2, 0); (2, 0xffff) ])
    "fail set";
  check_bad_count "commit member info"
    (hostile [ (1, 0x43); (4, 1); (1, 1); (1, 0); (1, 0xff) ])
    "member info";
  (* In-budget count with no bytes behind it: truncation, not a crash. *)
  match Codec.decode (hostile [ (1, 0x50); (4, 1); (4, 1); (2, 0); (1, 10) ]) with
  | Error Codec.Truncated -> ()
  | Error e -> Alcotest.failf "expected Truncated, got %a" Codec.pp_error e
  | Ok _ -> Alcotest.fail "truncated packet decoded"

(* --- semantic validation --------------------------------------------- *)

let check_bad_field name d ~max_node expected_what =
  match Codec.validate ~max_node d with
  | Error (Codec.Bad_field { what; _ }) when what = expected_what -> ()
  | Error e -> Alcotest.failf "%s: expected Bad_field %s, got %a" name expected_what Codec.pp_error e
  | Ok () -> Alcotest.failf "%s: invalid unit validated" name

let test_validate_bounds () =
  let tok ring = { (Token.initial ~ring ~ring_id:1) with Token.aru_setter = 0 } in
  (match Codec.validate ~max_node:3 (Codec.Token (tok [| 0; 1; 2; 3 |])) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "valid token rejected: %a" Codec.pp_error e);
  check_bad_field "alien ring member" (Codec.Token (tok [| 0; 9 |])) ~max_node:3
    "ring member";
  check_bad_field "empty ring"
    (Codec.Token { (tok [| 0 |]) with Token.ring = [||] })
    ~max_node:3 "token ring size";
  check_bad_field "alien sender"
    (Codec.Packet (packet ~sender:9 [ whole ~size:100 () ]))
    ~max_node:3 "packet sender";
  check_bad_field "fragment index past count"
    (Codec.Packet
       (packet
          [ { Wire.message = msg ~size:5000 ();
              fragment = Some { Wire.index = 5; count = 3; bytes = 100 } } ]))
    ~max_node:3 "fragment index";
  check_bad_field "oversized whole message"
    (Codec.Packet (packet [ whole ~size:2000 () ]))
    ~max_node:3 "message size";
  check_bad_field "commit round out of range"
    (Codec.Commit
       { Wire.cm_ring_id = 1; cm_ring = [| 0 |]; cm_round = 3; cm_info = [] })
    ~max_node:3 "commit round";
  check_bad_field "join member out of range"
    (Codec.Join { Wire.sender = 0; proc_set = [ 0; 7 ]; fail_set = []; max_ring_id = 1 })
    ~max_node:3 "proc set member"

(* --- byte-faithful frame layer --------------------------------------- *)

let data_frame (p : Wire.packet) = Wire.data_frame const ~src:p.sender p

let test_frame_roundtrip () =
  let p = packet [ whole ~size:700 (); whole ~origin:3 ~app_seq:9 ~size:100 () ] in
  let f = data_frame p in
  let wf = Codec.encode_frame f in
  Alcotest.(check int) "charged size unchanged" f.Frame.payload_bytes
    wf.Frame.payload_bytes;
  (match wf.Frame.payload with
  | Frame.Bytes s -> Alcotest.(check bool) "wire image carries its CRC" true (Crc32.check s)
  | _ -> Alcotest.fail "encode_frame left a structured payload");
  match Codec.decode_frame ~max_node:3 wf with
  | Ok f' -> (
    match f'.Frame.payload with
    | Wire.Data p' -> check_packet "through the wire" p p'
    | _ -> Alcotest.fail "decoded to another kind")
  | Error e -> Alcotest.failf "decode_frame: %a" Codec.pp_frame_error e

let test_frame_crc_reject () =
  let wf = Codec.encode_frame (data_frame (packet [ whole ~size:700 () ])) in
  let image = match wf.Frame.payload with Frame.Bytes s -> s | _ -> assert false in
  for i = 0 to String.length image - 1 do
    let damaged = { wf with Frame.payload = Frame.Bytes (flip_byte image i 0x04) } in
    match Codec.decode_frame ~max_node:3 damaged with
    | Error Codec.Crc_mismatch -> ()
    | Error e -> Alcotest.failf "byte %d: expected Crc_mismatch, got %a" i Codec.pp_frame_error e
    | Ok _ -> Alcotest.failf "byte %d: damaged frame decoded" i
  done

(* CRC collisions exist; model one by appending a valid CRC to garbage
   and to a semantically-alien unit — both must be discarded as
   malformed, not crash downstream. *)
let test_frame_colliding_garbage () =
  let with_crc body =
    let b = Buffer.create (String.length body + 4) in
    Buffer.add_string b body;
    Crc32.append b (Crc32.digest body);
    { Frame.src = 0; payload_bytes = 64; payload = Frame.Bytes (Buffer.contents b) }
  in
  (match Codec.decode_frame ~max_node:3 (with_crc "\xff not a unit") with
  | Error (Codec.Malformed (Codec.Bad_tag 0xff)) -> ()
  | _ -> Alcotest.fail "garbage with a valid CRC must be malformed");
  let alien = Codec.encode_probe { Wire.probe_sender = 9; probe_ring_id = 1 } in
  match Codec.decode_frame ~max_node:3 (with_crc alien) with
  | Error (Codec.Malformed (Codec.Bad_field { what = "probe sender"; _ })) -> ()
  | Error e -> Alcotest.failf "expected probe sender rejection, got %a" Codec.pp_frame_error e
  | Ok _ -> Alcotest.fail "alien sender validated"

let qcheck_flip_total =
  let gen =
    QCheck.Gen.(
      let* sizes = list_size (int_range 1 4) (int_range 0 1412) in
      let* flips = list_size (int_range 0 3) (pair (int_range 0 10_000) (int_range 1 255)) in
      return (sizes, flips))
  in
  QCheck.Test.make ~name:"decode is total under <= 3 byte flips" ~count:500
    (QCheck.make gen) (fun (sizes, flips) ->
      let p = packet (List.mapi (fun i s -> whole ~app_seq:(i + 1) ~size:s ()) sizes) in
      let image = Bytes.of_string (Codec.encode_packet p) in
      List.iter
        (fun (pos, x) ->
          let pos = pos mod Bytes.length image in
          Bytes.set image pos (Char.chr (Char.code (Bytes.get image pos) lxor x)))
        flips;
      (* Every outcome is acceptable except an escaping exception (which
         qcheck reports as a failure). *)
      match Codec.decode (Bytes.to_string image) with Ok _ | Error _ -> true)

(* --- slicing-by-8 CRC vs the byte-at-a-time reference ----------------- *)

(* The textbook one-table construction, kept deliberately naive: the
   slicing-by-8 implementation must be bitwise indistinguishable from
   this on every input and offset. *)
let crc32_reference s ~pos ~len =
  let table =
    Array.init 256 (fun n ->
        let c = ref n in
        for _ = 0 to 7 do
          c := if !c land 1 <> 0 then 0xEDB8_8320 lxor (!c lsr 1) else !c lsr 1
        done;
        !c)
  in
  let c = ref 0xFFFF_FFFF in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code s.[i]) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFF_FFFF

let qcheck_crc_slicing =
  let gen =
    QCheck.Gen.(
      let* s = string_size ~gen:char (int_range 0 200) in
      let* pos = int_range 0 (String.length s) in
      let* len = int_range 0 (String.length s - pos) in
      return (s, pos, len))
  in
  QCheck.Test.make ~name:"slicing-by-8 CRC equals byte-at-a-time reference"
    ~count:500 (QCheck.make gen) (fun (s, pos, len) ->
      Crc32.update 0 s ~pos ~len = crc32_reference s ~pos ~len
      (* ...and composing across an arbitrary split changes nothing. *)
      && Crc32.update (Crc32.update 0 s ~pos ~len:0) s ~pos ~len
         = Crc32.update 0 s ~pos ~len)

(* --- zero-copy decode (pos/len) --------------------------------------- *)

let test_decode_pos_len () =
  let p = packet [ whole ~size:300 (); whole ~origin:2 ~app_seq:7 ~size:50 () ] in
  let body = Codec.encode_packet p in
  let framed = "JUNK" ^ body ^ "TRAILER!" in
  (match Codec.decode framed ~pos:4 ~len:(String.length body) with
  | Ok (Codec.Packet p') -> check_packet "windowed decode" p p'
  | _ -> Alcotest.fail "windowed decode failed");
  (* A window one byte short is a truncation, one byte long is trailing
     garbage — the limit binds exactly. *)
  (match Codec.decode framed ~pos:4 ~len:(String.length body - 1) with
  | Error Codec.Truncated -> ()
  | _ -> Alcotest.fail "short window must truncate");
  (match Codec.decode framed ~pos:4 ~len:(String.length body + 1) with
  | Error (Codec.Trailing_bytes 1) -> ()
  | _ -> Alcotest.fail "long window must leave a trailing byte");
  match Codec.decode framed ~pos:2 ~len:(String.length framed) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range window must be rejected"

(* --- encode-once / decode-once caches --------------------------------- *)

(* Identity keying: re-encoding the same physical packet reuses the
   image; a structurally equal but physically distinct packet does
   not. *)
let test_encode_cache_identity () =
  let cache = Codec.encode_cache () in
  let p = packet [ whole ~size:700 () ] in
  let image f =
    match f.Frame.payload with Frame.Bytes s -> s | _ -> assert false
  in
  let a = image (Codec.encode_frame ~cache (data_frame p)) in
  let b = image (Codec.encode_frame ~cache (data_frame p)) in
  Alcotest.(check bool) "same physical image reused" true (a == b);
  Alcotest.(check (pair int int)) "one miss then one hit" (1, 1)
    (Codec.encode_cache_stats cache);
  let p' = packet [ whole ~size:700 () ] in
  let c = image (Codec.encode_frame ~cache (data_frame p')) in
  Alcotest.(check bool) "equal but distinct packet misses" false (c == a);
  Alcotest.(check string) "...yet encodes identically" a c;
  Alcotest.(check (pair int int)) "second miss recorded" (1, 2)
    (Codec.encode_cache_stats cache)

(* Decode-once: M copies of one byte string decode once; a corrupted
   copy (a fresh string, as Network.corrupt_frame always produces) can
   never hit the cache, and its rejection is identical to uncached
   mode's on every copy. *)
let qcheck_decode_cache_equiv =
  let gen =
    QCheck.Gen.(
      (* Two elements of <= 600 bytes keep the frame within the
         1424-byte payload budget, headers included. *)
      let* sizes = list_size (int_range 1 2) (int_range 0 600) in
      let* copies = int_range 2 6 in
      let* flip = opt (pair (int_range 0 10_000) (int_range 1 255)) in
      return (sizes, copies, flip))
  in
  QCheck.Test.make ~name:"cached decode-once equals uncached on every copy"
    ~count:300 (QCheck.make gen) (fun (sizes, copies, flip) ->
      let p =
        packet (List.mapi (fun i s -> whole ~app_seq:(i + 1) ~size:s ()) sizes)
      in
      let wf = Codec.encode_frame (data_frame p) in
      let image =
        match wf.Frame.payload with Frame.Bytes s -> s | _ -> assert false
      in
      (* The broadcast copies share ONE string; corruption rewrites it
         into a fresh one, exactly like Network.corrupt_frame. *)
      let delivered =
        match flip with
        | None -> image
        | Some (pos, x) -> flip_byte image (pos mod String.length image) x
      in
      let cache = Codec.decode_cache () in
      let classify = function
        | Ok f -> (
          match f.Frame.payload with
          | Wire.Data p' -> "ok:" ^ string_of_int (List.length p'.Wire.elements)
          | _ -> "ok:other")
        | Error Codec.Crc_mismatch -> "crc"
        | Error (Codec.Malformed _) -> "malformed"
      in
      let frame = { wf with Frame.payload = Frame.Bytes delivered } in
      List.for_all
        (fun _ ->
          classify (Codec.decode_frame ~cache ~max_node:3 frame)
          = classify (Codec.decode_frame ~max_node:3 frame))
        (List.init copies Fun.id)
      &&
      (* A flipped byte always fails the CRC, and rejects are never
         cached — every damaged copy misses; clean copies hit after the
         first. *)
      let hits, _ = Codec.decode_cache_stats cache in
      match flip with Some _ -> hits = 0 | None -> hits = copies - 1)

let test_commit_roundtrip () =
  let cm =
    { Wire.cm_ring_id = 128; cm_ring = [| 0; 2; 3 |]; cm_round = 2;
      cm_info =
        [ { Wire.mi_node = 0; mi_old_ring = 64; mi_aru = 17 };
          { Wire.mi_node = 3; mi_old_ring = 1; mi_aru = 0 } ] }
  in
  match Codec.decode (Codec.encode_commit cm) with
  | Ok (Codec.Commit cm') -> Alcotest.(check bool) "identical" true (cm = cm')
  | _ -> Alcotest.fail "decode failed"

let tests =
  [
    Alcotest.test_case "packet round trip" `Quick test_packet_roundtrip;
    Alcotest.test_case "commit round trip" `Quick test_commit_roundtrip;
    Alcotest.test_case "shadow mode over the full protocol" `Quick
      test_shadow_mode_full_protocol;
    Alcotest.test_case "fragment round trip" `Quick test_fragment_roundtrip;
    Alcotest.test_case "token round trip" `Quick test_token_roundtrip;
    Alcotest.test_case "join round trip" `Quick test_join_roundtrip;
    Alcotest.test_case "probe round trip" `Quick test_probe_roundtrip;
    Alcotest.test_case "size honesty: packets" `Quick test_size_honesty_whole;
    Alcotest.test_case "size honesty: token" `Quick test_size_honesty_token;
    Alcotest.test_case "size honesty: join" `Quick test_size_honesty_join;
    Alcotest.test_case "rejects malformed input" `Quick test_rejects_garbage;
    Alcotest.test_case "custom application payload codec" `Quick
      test_custom_data_codec;
    Alcotest.test_case "CRC-32 test vector and trailer" `Quick test_crc32_vector;
    Alcotest.test_case "zero-copy decode window (pos/len)" `Quick
      test_decode_pos_len;
    Alcotest.test_case "encode cache keys on physical identity" `Quick
      test_encode_cache_identity;
    Alcotest.test_case "hostile length prefixes" `Quick test_hostile_prefixes;
    Alcotest.test_case "semantic validation bounds" `Quick test_validate_bounds;
    Alcotest.test_case "wire frame round trip" `Quick test_frame_roundtrip;
    Alcotest.test_case "wire frame CRC rejection" `Quick test_frame_crc_reject;
    Alcotest.test_case "CRC-colliding garbage is malformed" `Quick
      test_frame_colliding_garbage;
    QCheck_alcotest.to_alcotest qcheck_packet_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_token_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_flip_total;
    QCheck_alcotest.to_alcotest qcheck_crc_slicing;
    QCheck_alcotest.to_alcotest qcheck_decode_cache_equiv;
  ]
