open Totem_engine

let drain q =
  let rec go acc =
    match Event_queue.pop q with
    | None -> List.rev acc
    | Some (t, v) -> go ((t, v) :: acc)
  in
  go []

let test_time_order () =
  let q = Event_queue.create () in
  ignore (Event_queue.push q ~time:30 "c");
  ignore (Event_queue.push q ~time:10 "a");
  ignore (Event_queue.push q ~time:20 "b");
  Alcotest.(check (list (pair int string)))
    "sorted" [ (10, "a"); (20, "b"); (30, "c") ] (drain q)

let test_fifo_ties () =
  let q = Event_queue.create () in
  for i = 0 to 9 do
    ignore (Event_queue.push q ~time:5 i)
  done;
  Alcotest.(check (list (pair int int)))
    "insertion order preserved"
    (List.init 10 (fun i -> (5, i)))
    (drain q)

let test_cancel () =
  let q = Event_queue.create () in
  let _a = Event_queue.push q ~time:1 "a" in
  let b = Event_queue.push q ~time:2 "b" in
  let _c = Event_queue.push q ~time:3 "c" in
  Alcotest.(check bool) "cancel live" true (Event_queue.cancel q b);
  Alcotest.(check bool) "double cancel" false (Event_queue.cancel q b);
  Alcotest.(check int) "length" 2 (Event_queue.length q);
  Alcotest.(check (list (pair int string)))
    "b skipped" [ (1, "a"); (3, "c") ] (drain q)

let test_cancel_after_pop () =
  let q = Event_queue.create () in
  let a = Event_queue.push q ~time:1 "a" in
  ignore (Event_queue.pop q);
  Alcotest.(check bool) "cancel popped" false (Event_queue.cancel q a)

let test_peek () =
  let q = Event_queue.create () in
  Alcotest.(check (option int)) "empty" None (Event_queue.peek_time q);
  let a = Event_queue.push q ~time:7 "a" in
  ignore (Event_queue.push q ~time:9 "b");
  Alcotest.(check (option int)) "min" (Some 7) (Event_queue.peek_time q);
  ignore (Event_queue.cancel q a);
  Alcotest.(check (option int)) "skips cancelled" (Some 9) (Event_queue.peek_time q)

let test_is_empty () =
  let q = Event_queue.create () in
  Alcotest.(check bool) "fresh" true (Event_queue.is_empty q);
  let a = Event_queue.push q ~time:1 () in
  Alcotest.(check bool) "one" false (Event_queue.is_empty q);
  ignore (Event_queue.cancel q a);
  Alcotest.(check bool) "cancelled counts as empty" true (Event_queue.is_empty q)

let test_interleaved_growth () =
  let q = Event_queue.create () in
  (* Push enough to force several heap growths while popping. *)
  for i = 0 to 999 do
    ignore (Event_queue.push q ~time:(i mod 37) i)
  done;
  let out = drain q in
  Alcotest.(check int) "all popped" 1000 (List.length out);
  let times = List.map fst out in
  Alcotest.(check bool) "non-decreasing" true
    (List.for_all2 (fun a b -> a <= b) (List.filteri (fun i _ -> i < 999) times)
       (List.tl times))

let test_compaction_bounds_heap () =
  (* The protocol's churn pattern: timers constantly cancelled and
     re-armed. Lazy cancellation alone would grow the heap without
     bound; compaction must keep physical size within a constant factor
     of the live count. *)
  let q = Event_queue.create () in
  let h = ref (Event_queue.push q ~time:0 0) in
  for i = 1 to 100_000 do
    ignore (Event_queue.cancel q !h);
    h := Event_queue.push q ~time:i i
  done;
  Alcotest.(check int) "one live event" 1 (Event_queue.length q);
  Alcotest.(check bool)
    (Printf.sprintf "physical size bounded (got %d)" (Event_queue.physical_size q))
    true
    (Event_queue.physical_size q <= 256);
  Alcotest.(check (list (pair int int)))
    "survivor intact" [ (100_000, 100_000) ] (drain q)

let test_compaction_preserves_order () =
  (* Cancel half of a large schedule, then verify pop order over the
     survivors is untouched by the compactions that ran along the way. *)
  let q = Event_queue.create () in
  let handles =
    Array.init 10_000 (fun i -> Event_queue.push q ~time:(i * 7 mod 997) i)
  in
  Array.iteri (fun i h -> if i mod 2 = 0 then ignore (Event_queue.cancel q h)) handles;
  let expected =
    Array.to_list handles
    |> List.mapi (fun i _ -> (i * 7 mod 997, i))
    |> List.filter (fun (_, i) -> i mod 2 = 1)
    |> List.sort (fun (t1, i1) (t2, i2) ->
           if t1 <> t2 then compare t1 t2 else compare i1 i2)
  in
  Alcotest.(check int) "live count" 5_000 (Event_queue.length q);
  Alcotest.(check (list (pair int int))) "survivors in order" expected (drain q)

let qcheck_sorted =
  QCheck.Test.make ~name:"pop order is (time, insertion) sorted" ~count:200
    QCheck.(list (int_range 0 50))
    (fun times ->
      let q = Event_queue.create () in
      List.iteri (fun i t -> ignore (Event_queue.push q ~time:t i)) times;
      let out =
        let rec go acc =
          match Event_queue.pop q with
          | None -> List.rev acc
          | Some (t, i) -> go ((t, i) :: acc)
        in
        go []
      in
      let expected =
        List.mapi (fun i t -> (t, i)) times
        |> List.sort (fun (t1, i1) (t2, i2) ->
               if t1 <> t2 then compare t1 t2 else compare i1 i2)
      in
      out = expected)

let tests =
  [
    Alcotest.test_case "time ordering" `Quick test_time_order;
    Alcotest.test_case "FIFO on equal times" `Quick test_fifo_ties;
    Alcotest.test_case "cancellation" `Quick test_cancel;
    Alcotest.test_case "cancel after pop" `Quick test_cancel_after_pop;
    Alcotest.test_case "peek_time" `Quick test_peek;
    Alcotest.test_case "is_empty with cancels" `Quick test_is_empty;
    Alcotest.test_case "growth under load" `Quick test_interleaved_growth;
    Alcotest.test_case "compaction bounds heap size" `Quick
      test_compaction_bounds_heap;
    Alcotest.test_case "compaction preserves order" `Quick
      test_compaction_preserves_order;
    QCheck_alcotest.to_alcotest qcheck_sorted;
  ]
