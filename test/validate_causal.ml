(* Validator for the causal-trace export (`totem_sim trace
   --causal-out`), run from the trace-smoke alias: checks that the file
   is a well-formed Chrome trace_event document whose async message
   flows nest properly — exactly one "b"/"e" pair per flow id with
   ts(e) >= ts(b), every "n" instant attached to a known flow at or
   after its begin, every "X" delivery span with a non-negative
   duration. Like validate_telemetry.ml the JSON parser is deliberately
   minimal and dependency-free.

   Usage: validate_causal FILE *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

(* --- parser --------------------------------------------------------- *)

type cursor = { text : string; mutable pos : int }

let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let rec go () =
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      go ()
    | _ -> ()
  in
  go ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> bad "at byte %d: expected '%c', found '%c'" c.pos ch x
  | None -> bad "at byte %d: expected '%c', found end of input" c.pos ch

let literal c word value =
  String.iter (fun ch -> expect c ch) word;
  value

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> bad "unterminated string at byte %d" c.pos
    | Some '"' -> advance c
    | Some '\\' ->
      advance c;
      (match peek c with
      | Some '"' -> Buffer.add_char buf '"'
      | Some '\\' -> Buffer.add_char buf '\\'
      | Some '/' -> Buffer.add_char buf '/'
      | Some 'n' -> Buffer.add_char buf '\n'
      | Some 't' -> Buffer.add_char buf '\t'
      | Some 'r' -> Buffer.add_char buf '\r'
      | Some 'b' -> Buffer.add_char buf '\b'
      | Some 'f' -> Buffer.add_char buf '\012'
      | Some 'u' ->
        if c.pos + 4 >= String.length c.text then
          bad "truncated \\u escape at byte %d" c.pos;
        let hex = String.sub c.text (c.pos + 1) 4 in
        (match int_of_string_opt ("0x" ^ hex) with
        | Some code when code < 0x80 -> Buffer.add_char buf (Char.chr code)
        | Some _ -> Buffer.add_char buf '?' (* non-ASCII: presence is enough *)
        | None -> bad "bad \\u escape \"%s\" at byte %d" hex c.pos);
        c.pos <- c.pos + 4
      | _ -> bad "bad escape at byte %d" c.pos);
      advance c;
      go ()
    | Some ch when Char.code ch < 0x20 ->
      bad "unescaped control character 0x%02x at byte %d" (Char.code ch) c.pos
    | Some ch ->
      Buffer.add_char buf ch;
      advance c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let numeric = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec go () =
    match peek c with
    | Some ch when numeric ch ->
      advance c;
      go ()
    | _ -> ()
  in
  go ();
  let s = String.sub c.text start (c.pos - start) in
  match float_of_string_opt s with
  | Some f -> Num f
  | None -> bad "bad number \"%s\" at byte %d" s start

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> bad "unexpected end of input at byte %d" c.pos
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws c;
        let key = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          members ((key, v) :: acc)
        | Some '}' ->
          advance c;
          Obj (List.rev ((key, v) :: acc))
        | _ -> bad "expected ',' or '}' at byte %d" c.pos
      in
      members []
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      Arr []
    end
    else begin
      let rec elements acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          elements (v :: acc)
        | Some ']' ->
          advance c;
          Arr (List.rev (v :: acc))
        | _ -> bad "expected ',' or ']' at byte %d" c.pos
      in
      elements []
    end
  | Some '"' -> Str (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> parse_number c

let parse_document text =
  let c = { text; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length text then
    bad "trailing garbage at byte %d" c.pos;
  v

(* --- validation ----------------------------------------------------- *)

let field obj name =
  match obj with
  | Obj kvs -> List.assoc_opt name kvs
  | _ -> None

let require_num obj name where =
  match field obj name with
  | Some (Num f) -> f
  | Some _ -> bad "%s: \"%s\" is not a number" where name
  | None -> bad "%s: missing \"%s\"" where name

let require_str obj name where =
  match field obj name with
  | Some (Str s) -> s
  | Some _ -> bad "%s: \"%s\" is not a string" where name
  | None -> bad "%s: missing \"%s\"" where name

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let validate path =
  let v = try parse_document (read_file path) with Bad m -> bad "%s: %s" path m in
  (match field v "displayTimeUnit" with
  | Some (Str _) -> ()
  | Some _ -> bad "%s: \"displayTimeUnit\" is not a string" path
  | None -> bad "%s: missing \"displayTimeUnit\"" path);
  let events =
    match field v "traceEvents" with
    | Some (Arr es) -> es
    | Some _ -> bad "%s: \"traceEvents\" is not an array" path
    | None -> bad "%s: missing \"traceEvents\"" path
  in
  if events = [] then bad "%s: empty traceEvents" path;
  let begins : (float, float) Hashtbl.t = Hashtbl.create 64 in
  let ends : (float, float) Hashtbl.t = Hashtbl.create 64 in
  let instants = ref [] in
  List.iteri
    (fun i ev ->
      let where = Printf.sprintf "%s: event %d" path i in
      (match ev with Obj _ -> () | _ -> bad "%s: not a JSON object" where);
      let ph = require_str ev "ph" where in
      let ts = require_num ev "ts" where in
      if ts < 0.0 then bad "%s: negative ts %f" where ts;
      ignore (require_str ev "name" where);
      ignore (require_num ev "pid" where);
      ignore (require_num ev "tid" where);
      match ph with
      | "b" ->
        let id = require_num ev "id" where in
        if Hashtbl.mem begins id then
          bad "%s: duplicate begin for flow id %.0f" where id;
        Hashtbl.add begins id ts
      | "e" ->
        let id = require_num ev "id" where in
        if Hashtbl.mem ends id then
          bad "%s: duplicate end for flow id %.0f" where id;
        Hashtbl.add ends id ts
      | "n" ->
        let id = require_num ev "id" where in
        instants := (id, ts, where) :: !instants
      | "X" ->
        let dur = require_num ev "dur" where in
        if dur < 0.0 then bad "%s: negative span duration %f" where dur
      | "i" -> () (* unattributable wire-reject instant *)
      | ph -> bad "%s: unexpected phase \"%s\"" where ph)
    events;
  if Hashtbl.length begins = 0 then bad "%s: no message flows" path;
  Hashtbl.iter
    (fun id b ->
      match Hashtbl.find_opt ends id with
      | None -> bad "%s: flow id %.0f begins but never ends" path id
      | Some e ->
        if e < b then
          bad "%s: flow id %.0f ends at %f before it begins at %f" path id e b)
    begins;
  Hashtbl.iter
    (fun id _ ->
      if not (Hashtbl.mem begins id) then
        bad "%s: flow id %.0f ends but never begins" path id)
    ends;
  List.iter
    (fun (id, ts, where) ->
      match Hashtbl.find_opt begins id with
      | None -> bad "%s: instant for unknown flow id %.0f" where id
      | Some b ->
        if ts < b then
          bad "%s: instant at %f precedes its flow's begin at %f" where ts b)
    !instants;
  Printf.printf "causal %s: %d flows, %d events ok\n" path
    (Hashtbl.length begins) (List.length events)

let () =
  match Array.to_list Sys.argv with
  | [ _; path ] -> (
    try validate path
    with Bad m ->
      prerr_endline ("validate_causal: " ^ m);
      exit 1)
  | _ ->
    prerr_endline "usage: validate_causal FILE";
    exit 2
