open Totem_net

let test_clean () =
  let f = Fault.create () in
  Alcotest.(check bool) "delivers" true (Fault.delivers f ~src:0 ~dst:1);
  Alcotest.(check (float 0.0)) "no loss" 0.0 (Fault.loss_probability f)

let test_down () =
  let f = Fault.create () in
  Fault.set_down f true;
  Alcotest.(check bool) "nothing delivers" false (Fault.delivers f ~src:0 ~dst:1);
  Fault.set_down f false;
  Alcotest.(check bool) "back up" true (Fault.delivers f ~src:0 ~dst:1)

let test_send_block () =
  let f = Fault.create () in
  Fault.block_send f 2;
  Alcotest.(check bool) "blocked sender" false (Fault.delivers f ~src:2 ~dst:1);
  Alcotest.(check bool) "other senders fine" true (Fault.delivers f ~src:0 ~dst:1);
  Alcotest.(check bool) "can still receive" true (Fault.delivers f ~src:1 ~dst:2);
  Fault.unblock_send f 2;
  Alcotest.(check bool) "unblocked" true (Fault.delivers f ~src:2 ~dst:1)

let test_recv_block () =
  let f = Fault.create () in
  Fault.block_recv f 3;
  Alcotest.(check bool) "blocked receiver" false (Fault.delivers f ~src:0 ~dst:3);
  Alcotest.(check bool) "can still send" true (Fault.delivers f ~src:3 ~dst:0);
  Fault.unblock_recv f 3;
  Alcotest.(check bool) "unblocked" true (Fault.delivers f ~src:0 ~dst:3)

let test_pair_block_directed () =
  let f = Fault.create () in
  Fault.block_pair f ~src:0 ~dst:1;
  Alcotest.(check bool) "0->1 blocked" false (Fault.delivers f ~src:0 ~dst:1);
  Alcotest.(check bool) "1->0 open (directed)" true (Fault.delivers f ~src:1 ~dst:0);
  Fault.unblock_pair f ~src:0 ~dst:1;
  Alcotest.(check bool) "unblocked" true (Fault.delivers f ~src:0 ~dst:1)

let test_loss_validation () =
  let f = Fault.create () in
  Fault.set_loss_probability f 0.25;
  Alcotest.(check (float 0.0)) "set" 0.25 (Fault.loss_probability f);
  Alcotest.check_raises "negative" (Invalid_argument "Fault.set_loss_probability")
    (fun () -> Fault.set_loss_probability f (-0.1));
  Alcotest.check_raises "above one" (Invalid_argument "Fault.set_loss_probability")
    (fun () -> Fault.set_loss_probability f 1.1)

let test_loss_clamp () =
  let f = Fault.create () in
  Fault.set_loss f 0.3;
  Alcotest.(check (float 0.0)) "in range passes through" 0.3 (Fault.loss_rate f);
  Fault.set_loss f (-0.5);
  Alcotest.(check (float 0.0)) "below zero clamps to 0" 0.0 (Fault.loss_rate f);
  Fault.set_loss f 1.7;
  Alcotest.(check (float 0.0)) "above one clamps to 1" 1.0 (Fault.loss_rate f);
  (* snapshot/restore round trip: loss_rate feeds back into set_loss *)
  Fault.set_loss f 0.125;
  let snapshot = Fault.loss_rate f in
  Fault.heal f;
  Fault.set_loss f snapshot;
  Alcotest.(check (float 0.0)) "restored" 0.125 (Fault.loss_probability f)

let test_heal () =
  let f = Fault.create () in
  Fault.set_down f true;
  Fault.block_send f 0;
  Fault.block_recv f 1;
  Fault.block_pair f ~src:2 ~dst:3;
  Fault.set_loss_probability f 0.5;
  Fault.heal f;
  Alcotest.(check bool) "delivers everywhere" true
    (List.for_all
       (fun (s, d) -> Fault.delivers f ~src:s ~dst:d)
       [ (0, 1); (1, 0); (2, 3); (0, 3) ]);
  Alcotest.(check (float 0.0)) "loss cleared" 0.0 (Fault.loss_probability f)

let test_overlapping_faults () =
  let f = Fault.create () in
  Fault.block_send f 0;
  Fault.block_recv f 1;
  (* Both endpoint faults apply to the same path. *)
  Alcotest.(check bool) "both" false (Fault.delivers f ~src:0 ~dst:1);
  Fault.unblock_send f 0;
  Alcotest.(check bool) "recv block remains" false (Fault.delivers f ~src:0 ~dst:1)

let test_corruption_probability () =
  let f = Fault.create () in
  Alcotest.(check (float 0.0)) "clean" 0.0 (Fault.corruption_probability f);
  Fault.set_corruption_probability f 0.25;
  Alcotest.(check (float 0.0)) "set" 0.25 (Fault.corruption_probability f);
  Alcotest.check_raises "above one"
    (Invalid_argument "Fault.set_corruption_probability") (fun () ->
      Fault.set_corruption_probability f 1.5);
  Fault.set_corruption f 1.7;
  Alcotest.(check (float 0.0)) "set_corruption clamps" 1.0
    (Fault.corruption_probability f);
  Fault.heal f;
  Alcotest.(check (float 0.0)) "heal clears it" 0.0 (Fault.corruption_probability f)

(* Every state-changing transition notifies exactly once: blocks,
   unblocks, pair blocks, loss and corruption changes. Re-applying the
   same fault is silent, so Net_status telemetry sees one event per
   transition. *)
let test_notify_on_transitions () =
  let f = Fault.create () in
  let log = ref [] in
  Fault.set_notify f (fun m -> log := m :: !log);
  let expect label n = Alcotest.(check int) label n (List.length !log) in
  Fault.block_send f 2;
  Fault.block_send f 2;
  expect "duplicate block_send is silent" 1;
  Fault.unblock_send f 2;
  Fault.unblock_send f 2;
  expect "duplicate unblock_send is silent" 2;
  Fault.block_recv f 1;
  Fault.unblock_recv f 1;
  Fault.block_pair f ~src:0 ~dst:1;
  Fault.block_pair f ~src:0 ~dst:1;
  Fault.unblock_pair f ~src:0 ~dst:1;
  expect "recv and pair transitions notify once each" 6;
  Fault.set_corruption_probability f 0.5;
  Fault.set_corruption_probability f 0.5;
  expect "corruption change notifies once" 7;
  Fault.heal f;
  expect "heal notifies" 8

let tests =
  [
    Alcotest.test_case "clean state" `Quick test_clean;
    Alcotest.test_case "corruption probability" `Quick test_corruption_probability;
    Alcotest.test_case "notify fires once per transition" `Quick
      test_notify_on_transitions;
    Alcotest.test_case "total network failure" `Quick test_down;
    Alcotest.test_case "send-path fault (Sec. 3)" `Quick test_send_block;
    Alcotest.test_case "receive-path fault (Sec. 3)" `Quick test_recv_block;
    Alcotest.test_case "subset partition is directed" `Quick test_pair_block_directed;
    Alcotest.test_case "loss probability validation" `Quick test_loss_validation;
    Alcotest.test_case "set_loss clamps, loss_rate round-trips" `Quick test_loss_clamp;
    Alcotest.test_case "heal clears everything" `Quick test_heal;
    Alcotest.test_case "overlapping faults" `Quick test_overlapping_faults;
  ]
