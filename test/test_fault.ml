open Totem_net

let test_clean () =
  let f = Fault.create () in
  Alcotest.(check bool) "delivers" true (Fault.delivers f ~src:0 ~dst:1);
  Alcotest.(check (float 0.0)) "no loss" 0.0 (Fault.loss_probability f)

let test_down () =
  let f = Fault.create () in
  Fault.set_down f true;
  Alcotest.(check bool) "nothing delivers" false (Fault.delivers f ~src:0 ~dst:1);
  Fault.set_down f false;
  Alcotest.(check bool) "back up" true (Fault.delivers f ~src:0 ~dst:1)

let test_send_block () =
  let f = Fault.create () in
  Fault.block_send f 2;
  Alcotest.(check bool) "blocked sender" false (Fault.delivers f ~src:2 ~dst:1);
  Alcotest.(check bool) "other senders fine" true (Fault.delivers f ~src:0 ~dst:1);
  Alcotest.(check bool) "can still receive" true (Fault.delivers f ~src:1 ~dst:2);
  Fault.unblock_send f 2;
  Alcotest.(check bool) "unblocked" true (Fault.delivers f ~src:2 ~dst:1)

let test_recv_block () =
  let f = Fault.create () in
  Fault.block_recv f 3;
  Alcotest.(check bool) "blocked receiver" false (Fault.delivers f ~src:0 ~dst:3);
  Alcotest.(check bool) "can still send" true (Fault.delivers f ~src:3 ~dst:0);
  Fault.unblock_recv f 3;
  Alcotest.(check bool) "unblocked" true (Fault.delivers f ~src:0 ~dst:3)

let test_pair_block_directed () =
  let f = Fault.create () in
  Fault.block_pair f ~src:0 ~dst:1;
  Alcotest.(check bool) "0->1 blocked" false (Fault.delivers f ~src:0 ~dst:1);
  Alcotest.(check bool) "1->0 open (directed)" true (Fault.delivers f ~src:1 ~dst:0);
  Fault.unblock_pair f ~src:0 ~dst:1;
  Alcotest.(check bool) "unblocked" true (Fault.delivers f ~src:0 ~dst:1)

let test_loss_validation () =
  let f = Fault.create () in
  Fault.set_loss_probability f 0.25;
  Alcotest.(check (float 0.0)) "set" 0.25 (Fault.loss_probability f);
  Alcotest.check_raises "negative" (Invalid_argument "Fault.set_loss_probability")
    (fun () -> Fault.set_loss_probability f (-0.1));
  Alcotest.check_raises "above one" (Invalid_argument "Fault.set_loss_probability")
    (fun () -> Fault.set_loss_probability f 1.1)

let test_loss_clamp () =
  let f = Fault.create () in
  Fault.set_loss f 0.3;
  Alcotest.(check (float 0.0)) "in range passes through" 0.3 (Fault.loss_rate f);
  Fault.set_loss f (-0.5);
  Alcotest.(check (float 0.0)) "below zero clamps to 0" 0.0 (Fault.loss_rate f);
  Fault.set_loss f 1.7;
  Alcotest.(check (float 0.0)) "above one clamps to 1" 1.0 (Fault.loss_rate f);
  (* snapshot/restore round trip: loss_rate feeds back into set_loss *)
  Fault.set_loss f 0.125;
  let snapshot = Fault.loss_rate f in
  Fault.heal f;
  Fault.set_loss f snapshot;
  Alcotest.(check (float 0.0)) "restored" 0.125 (Fault.loss_probability f)

let test_heal () =
  let f = Fault.create () in
  Fault.set_down f true;
  Fault.block_send f 0;
  Fault.block_recv f 1;
  Fault.block_pair f ~src:2 ~dst:3;
  Fault.set_loss_probability f 0.5;
  Fault.heal f;
  Alcotest.(check bool) "delivers everywhere" true
    (List.for_all
       (fun (s, d) -> Fault.delivers f ~src:s ~dst:d)
       [ (0, 1); (1, 0); (2, 3); (0, 3) ]);
  Alcotest.(check (float 0.0)) "loss cleared" 0.0 (Fault.loss_probability f)

let test_overlapping_faults () =
  let f = Fault.create () in
  Fault.block_send f 0;
  Fault.block_recv f 1;
  (* Both endpoint faults apply to the same path. *)
  Alcotest.(check bool) "both" false (Fault.delivers f ~src:0 ~dst:1);
  Fault.unblock_send f 0;
  Alcotest.(check bool) "recv block remains" false (Fault.delivers f ~src:0 ~dst:1)

let test_corruption_probability () =
  let f = Fault.create () in
  Alcotest.(check (float 0.0)) "clean" 0.0 (Fault.corruption_probability f);
  Fault.set_corruption_probability f 0.25;
  Alcotest.(check (float 0.0)) "set" 0.25 (Fault.corruption_probability f);
  Alcotest.check_raises "above one"
    (Invalid_argument "Fault.set_corruption_probability") (fun () ->
      Fault.set_corruption_probability f 1.5);
  Fault.set_corruption f 1.7;
  Alcotest.(check (float 0.0)) "set_corruption clamps" 1.0
    (Fault.corruption_probability f);
  Fault.heal f;
  Alcotest.(check (float 0.0)) "heal clears it" 0.0 (Fault.corruption_probability f)

(* Every state-changing transition notifies exactly once: blocks,
   unblocks, pair blocks, loss and corruption changes. Re-applying the
   same fault is silent, so Net_status telemetry sees one event per
   transition. *)
let test_notify_on_transitions () =
  let f = Fault.create () in
  let log = ref [] in
  Fault.set_notify f (fun m -> log := m :: !log);
  let expect label n = Alcotest.(check int) label n (List.length !log) in
  Fault.block_send f 2;
  Fault.block_send f 2;
  expect "duplicate block_send is silent" 1;
  Fault.unblock_send f 2;
  Fault.unblock_send f 2;
  expect "duplicate unblock_send is silent" 2;
  Fault.block_recv f 1;
  Fault.unblock_recv f 1;
  Fault.block_pair f ~src:0 ~dst:1;
  Fault.block_pair f ~src:0 ~dst:1;
  Fault.unblock_pair f ~src:0 ~dst:1;
  expect "recv and pair transitions notify once each" 6;
  Fault.set_corruption_probability f 0.5;
  Fault.set_corruption_probability f 0.5;
  expect "corruption change notifies once" 7;
  Fault.heal f;
  expect "heal notifies" 8

let test_burst_loss () =
  let f = Fault.create () in
  Alcotest.(check bool) "disabled by default" false (Fault.burst_enabled f);
  Fault.set_burst_loss f ~p_enter:0.3 ~p_exit:0.1;
  Alcotest.(check bool) "enabled" true (Fault.burst_enabled f);
  Alcotest.(check (pair (float 0.0) (float 0.0))) "parameters" (0.3, 0.1)
    (Fault.burst_loss f);
  Fault.set_in_burst f true;
  Alcotest.(check bool) "chain in bad state" true (Fault.in_burst f);
  (* p_exit is floored while enabled so every burst ends. *)
  Fault.set_burst_loss f ~p_enter:0.5 ~p_exit:0.0;
  Alcotest.(check (float 0.0)) "p_exit floored" 0.001 (snd (Fault.burst_loss f));
  (* p_enter = 0 disables and resets the chain to good. *)
  Fault.set_burst_loss f ~p_enter:0.0 ~p_exit:1.0;
  Alcotest.(check bool) "disabled" false (Fault.burst_enabled f);
  Alcotest.(check bool) "chain reset" false (Fault.in_burst f)

let test_dir_loss () =
  let f = Fault.create () in
  Fault.set_dir_loss f ~src:0 ~dst:1 0.8;
  Alcotest.(check (float 0.0)) "0->1 set" 0.8
    (Fault.dir_loss_probability f ~src:0 ~dst:1);
  Alcotest.(check (float 0.0)) "1->0 untouched (directed)" 0.0
    (Fault.dir_loss_probability f ~src:1 ~dst:0);
  Fault.set_dir_loss f ~src:0 ~dst:1 1.7;
  Alcotest.(check (float 0.0)) "clamps" 1.0
    (Fault.dir_loss_probability f ~src:0 ~dst:1);
  Fault.set_dir_loss f ~src:0 ~dst:1 0.0;
  Alcotest.(check (float 0.0)) "zero clears" 0.0
    (Fault.dir_loss_probability f ~src:0 ~dst:1)

let test_delay_duplicate_reorder () =
  let f = Fault.create () in
  Alcotest.(check (float 0.0)) "factor off" 1.0 (Fault.delay_factor f);
  Fault.set_delay f ~factor:4.0 ~spike_prob:0.2 ~spike_ns:500;
  Alcotest.(check (float 0.0)) "factor" 4.0 (Fault.delay_factor f);
  Alcotest.(check (pair (float 0.0) int)) "spike" (0.2, 500)
    (Fault.delay_spike f);
  (* factor < 1 would break the lookahead bound arrival >= send+latency. *)
  Fault.set_delay f ~factor:0.25 ~spike_prob:0.0 ~spike_ns:0;
  Alcotest.(check (float 0.0)) "factor clamped to >= 1" 1.0
    (Fault.delay_factor f);
  Fault.set_duplicate f 0.3;
  Alcotest.(check (float 0.0)) "duplicate" 0.3 (Fault.duplicate_probability f);
  Fault.set_reorder f 0.2;
  Alcotest.(check (float 0.0)) "reorder" 0.2 (Fault.reorder_probability f)

(* Gray setters notify once per actual transition, like the hard-fault
   setters — redundant re-application is silent. *)
let test_gray_notify () =
  let f = Fault.create () in
  let log = ref 0 in
  Fault.set_notify f (fun _ -> incr log);
  Fault.set_burst_loss f ~p_enter:0.3 ~p_exit:0.1;
  Fault.set_burst_loss f ~p_enter:0.3 ~p_exit:0.1;
  Alcotest.(check int) "burst notifies once" 1 !log;
  Fault.set_delay f ~factor:2.0 ~spike_prob:0.0 ~spike_ns:0;
  Fault.set_delay f ~factor:2.0 ~spike_prob:0.0 ~spike_ns:0;
  Alcotest.(check int) "delay notifies once" 2 !log;
  Fault.set_in_burst f true;
  Alcotest.(check int) "chain-state update is not a config change" 2 !log

(* Observational fingerprint over every accessor the network consults,
   probed on a small node set — two faults with equal fingerprints are
   indistinguishable to the simulator. *)
let fingerprint f =
  let nodes = [ 0; 1; 2; 3 ] in
  let paths =
    List.concat_map (fun s -> List.map (fun d -> (s, d)) nodes) nodes
  in
  ( ( Fault.is_down f,
      List.map (fun (s, d) -> Fault.delivers f ~src:s ~dst:d) paths,
      List.map (fun (s, d) -> Fault.dir_loss_probability f ~src:s ~dst:d) paths
    ),
    ( Fault.loss_probability f,
      Fault.corruption_probability f,
      Fault.burst_loss f,
      Fault.in_burst f,
      Fault.delay_factor f,
      Fault.delay_spike f,
      Fault.duplicate_probability f,
      Fault.reorder_probability f ) )

let apply_mutation f = function
  | 0 -> Fault.set_down f true
  | 1 -> Fault.block_send f 1
  | 2 -> Fault.block_recv f 2
  | 3 -> Fault.block_pair f ~src:0 ~dst:3
  | 4 -> Fault.set_loss f 0.4
  | 5 -> Fault.set_corruption f 0.2
  | 6 ->
    Fault.set_burst_loss f ~p_enter:0.9 ~p_exit:0.05;
    Fault.set_in_burst f true
  | 7 -> Fault.set_dir_loss f ~src:2 ~dst:1 0.7
  | 8 -> Fault.set_delay f ~factor:3.0 ~spike_prob:0.1 ~spike_ns:1000
  | 9 -> Fault.set_duplicate f 0.15
  | _ -> Fault.set_reorder f 0.25

let qcheck_heal_equals_fresh =
  QCheck.Test.make ~name:"healed fault = fresh fault" ~count:300
    QCheck.(list_of_size (Gen.int_range 0 30) (int_range 0 10))
    (fun mutations ->
      let f = Fault.create () in
      List.iter (apply_mutation f) mutations;
      Fault.heal f;
      fingerprint f = fingerprint (Fault.create ()))

let tests =
  [
    Alcotest.test_case "clean state" `Quick test_clean;
    Alcotest.test_case "Gilbert-Elliott burst loss parameters" `Quick
      test_burst_loss;
    Alcotest.test_case "per-direction loss" `Quick test_dir_loss;
    Alcotest.test_case "delay, duplicate, reorder parameters" `Quick
      test_delay_duplicate_reorder;
    Alcotest.test_case "gray setters notify per transition" `Quick
      test_gray_notify;
    QCheck_alcotest.to_alcotest qcheck_heal_equals_fresh;
    Alcotest.test_case "corruption probability" `Quick test_corruption_probability;
    Alcotest.test_case "notify fires once per transition" `Quick
      test_notify_on_transitions;
    Alcotest.test_case "total network failure" `Quick test_down;
    Alcotest.test_case "send-path fault (Sec. 3)" `Quick test_send_block;
    Alcotest.test_case "receive-path fault (Sec. 3)" `Quick test_recv_block;
    Alcotest.test_case "subset partition is directed" `Quick test_pair_block_directed;
    Alcotest.test_case "loss probability validation" `Quick test_loss_validation;
    Alcotest.test_case "set_loss clamps, loss_rate round-trips" `Quick test_loss_clamp;
    Alcotest.test_case "heal clears everything" `Quick test_heal;
    Alcotest.test_case "overlapping faults" `Quick test_overlapping_faults;
  ]
