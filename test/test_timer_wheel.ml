open Totem_engine

let drain w =
  let rec go acc =
    match Timer_wheel.pop_min w with
    | None -> List.rev acc
    | Some (t, v) -> go ((t, v) :: acc)
  in
  go []

let test_time_order () =
  let w = Timer_wheel.create () in
  ignore (Timer_wheel.push w ~time:30 ~tie:0 "c");
  ignore (Timer_wheel.push w ~time:10 ~tie:1 "a");
  ignore (Timer_wheel.push w ~time:20 ~tie:2 "b");
  Alcotest.(check (list (pair int string)))
    "sorted" [ (10, "a"); (20, "b"); (30, "c") ] (drain w)

let test_tie_order () =
  let w = Timer_wheel.create () in
  (* Same expiry: the tie rank decides, regardless of push order. *)
  ignore (Timer_wheel.push w ~time:5 ~tie:2 "second");
  ignore (Timer_wheel.push w ~time:5 ~tie:1 "first");
  ignore (Timer_wheel.push w ~time:5 ~tie:3 "third");
  Alcotest.(check (list (pair int string)))
    "tie-ranked"
    [ (5, "first"); (5, "second"); (5, "third") ]
    (drain w)

let test_cancel () =
  let w = Timer_wheel.create () in
  let _a = Timer_wheel.push w ~time:1 ~tie:0 "a" in
  let b = Timer_wheel.push w ~time:2 ~tie:1 "b" in
  let _c = Timer_wheel.push w ~time:3 ~tie:2 "c" in
  Alcotest.(check bool) "cancel live" true (Timer_wheel.cancel w b);
  Alcotest.(check bool) "double cancel" false (Timer_wheel.cancel w b);
  Alcotest.(check int) "length" 2 (Timer_wheel.length w);
  Alcotest.(check (list (pair int string)))
    "b skipped" [ (1, "a"); (3, "c") ] (drain w)

let test_cancel_after_pop () =
  let w = Timer_wheel.create () in
  let a = Timer_wheel.push w ~time:1 ~tie:0 "a" in
  ignore (Timer_wheel.pop_min w);
  Alcotest.(check bool) "cancel popped" false (Timer_wheel.cancel w a)

let test_peek () =
  let w = Timer_wheel.create () in
  Alcotest.(check (option int)) "empty" None (Timer_wheel.peek_time w);
  let a = Timer_wheel.push w ~time:7 ~tie:0 "a" in
  ignore (Timer_wheel.push w ~time:9 ~tie:1 "b");
  Alcotest.(check (option (pair int int)))
    "min key" (Some (7, 0)) (Timer_wheel.peek_key w);
  ignore (Timer_wheel.cancel w a);
  Alcotest.(check (option int)) "skips cancelled" (Some 9) (Timer_wheel.peek_time w)

let test_rearm_churn () =
  (* The protocol's pattern: one timer cancelled and re-armed thousands
     of times (token loss timeout on every token receipt). The wheel
     must stay small and keep answering peeks correctly. *)
  let w = Timer_wheel.create () in
  let h = ref (Timer_wheel.push w ~time:200 ~tie:0 "loss") in
  for i = 1 to 10_000 do
    Alcotest.(check bool) "re-arm cancels live" true (Timer_wheel.cancel w !h);
    h := Timer_wheel.push w ~time:(200 + i) ~tie:i "loss";
    Alcotest.(check (option int))
      "peek follows re-arm" (Some (200 + i)) (Timer_wheel.peek_time w)
  done;
  Alcotest.(check int) "one live timer" 1 (Timer_wheel.length w);
  Alcotest.(check (list (pair int string)))
    "fires once at final expiry" [ (10_200, "loss") ] (drain w)

let test_wraparound () =
  (* Far-apart expiries hash to the same buckets (the wheel is hashed,
     not hierarchical); ordering must still be exact. *)
  let w = Timer_wheel.create ~shift:4 ~buckets:8 () in
  (* Bucket span = 8 * 16 = 128 ns: these all collide. *)
  let times = [ 5; 133; 261; 5 + (128 * 40); 7; 134 ] in
  List.iteri (fun i t -> ignore (Timer_wheel.push w ~time:t ~tie:i ())) times;
  let popped = List.map fst (drain w) in
  Alcotest.(check (list int)) "exact order despite collisions"
    (List.sort compare times) popped

let qcheck_wheel_matches_heap =
  QCheck.Test.make
    ~name:"wheel pops the same (time, tie) sequence as the heap" ~count:200
    QCheck.(list (pair (int_range 0 5000) (int_range 0 2)))
    (fun script ->
      (* Interpret the script as pushes (op = 0, 1) and cancels of a
         random earlier push (op = 2), applied identically to an
         Event_queue and a Timer_wheel. *)
      let q = Event_queue.create () in
      let w = Timer_wheel.create ~shift:6 ~buckets:16 () in
      let pushed = ref [] in
      let n = ref 0 in
      List.iter
        (fun (time, op) ->
          if op = 2 && !pushed <> [] then begin
            let pick = time mod List.length !pushed in
            let qh, wh = List.nth !pushed pick in
            let a = Event_queue.cancel q qh and b = Timer_wheel.cancel w wh in
            if a <> b then failwith "cancel results diverge"
          end
          else begin
            let tie = !n in
            incr n;
            let qh = Event_queue.push_tie q ~time ~tie tie in
            let wh = Timer_wheel.push w ~time ~tie tie in
            pushed := (qh, wh) :: !pushed
          end)
        script;
      let rec drain_both acc =
        let kq = Event_queue.peek_key q and kw = Timer_wheel.peek_key w in
        if kq <> kw then false
        else
          match Event_queue.pop q, Timer_wheel.pop_min w with
          | None, None -> acc
          | Some (t1, v1), Some (t2, v2) ->
            drain_both (acc && t1 = t2 && v1 = v2)
          | _ -> false
      in
      drain_both true)

let tests =
  [
    Alcotest.test_case "time ordering" `Quick test_time_order;
    Alcotest.test_case "tie-break ordering" `Quick test_tie_order;
    Alcotest.test_case "cancellation" `Quick test_cancel;
    Alcotest.test_case "cancel after pop" `Quick test_cancel_after_pop;
    Alcotest.test_case "peek" `Quick test_peek;
    Alcotest.test_case "cancel/re-arm churn" `Quick test_rearm_churn;
    Alcotest.test_case "hashed-bucket wraparound" `Quick test_wraparound;
    QCheck_alcotest.to_alcotest qcheck_wheel_matches_heap;
  ]
