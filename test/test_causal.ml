(* Causal message tracing and the flight recorder.

   The two OBSERVABILITY.md invariants, checked end to end: arming the
   tracer never changes what the simulation computes, and every export
   is bitwise-identical under the parallel core for any domain count —
   both reconstruction inputs arrive through the root telemetry hub in
   canonical (time, source, seq) order. *)

module Cluster = Totem_cluster.Cluster
module Config = Totem_cluster.Config
module Workload = Totem_cluster.Workload
module Style = Totem_rrp.Style
module Vtime = Totem_engine.Vtime
module Causal = Totem_engine.Causal
module Recorder = Totem_engine.Recorder

let test_tid_round_trip () =
  List.iter
    (fun (origin, app_seq) ->
      let tid = Causal.tid_of ~origin ~app_seq in
      Alcotest.(check int) "origin survives" origin (Causal.tid_origin tid);
      Alcotest.(check int) "app_seq survives" app_seq (Causal.tid_app_seq tid))
    [ (0, 0); (0, 1); (3, 17); (41, 1_000_000); (1000, (1 lsl 40) - 1) ];
  Alcotest.check_raises "negative origin rejected"
    (Invalid_argument "Causal.tid_of") (fun () ->
      ignore (Causal.tid_of ~origin:(-1) ~app_seq:0))

(* A small lossy byte-wire run with traffic from two origins: exercises
   packing, both networks, retransmission and per-node delivery. *)
let traced_run ~style ~sim_domains =
  let config =
    Config.make ~num_nodes:4 ~num_nets:2 ~style ~seed:7 ~wire_bytes:true
      ~sim_domains ()
  in
  let cluster = Cluster.create config in
  let telemetry = Cluster.telemetry cluster in
  let causal, _ = Causal.attach telemetry in
  let recorder = Recorder.attach ~capacity:32 ~nodes:4 telemetry in
  Cluster.start cluster;
  Cluster.set_network_loss cluster 0 0.05;
  Workload.fixed_rate cluster ~node:0 ~size:600 ~interval:(Vtime.ms 3)
    ~count:40 ();
  Workload.fixed_rate cluster ~node:2 ~size:300 ~interval:(Vtime.ms 5)
    ~count:20 ();
  Cluster.run_for cluster (Vtime.ms 400);
  (causal, Recorder.dump_jsonl recorder)

let style_name = function
  | Style.No_replication -> "no-replication"
  | Style.Active -> "active"
  | Style.Passive -> "passive"
  | Style.Active_passive k -> Printf.sprintf "ap:%d" k

let test_domains_deterministic style () =
  let c1, rec1 = traced_run ~style ~sim_domains:1 in
  let c8, rec8 = traced_run ~style ~sim_domains:8 in
  let t1 = Causal.chrome_json c1 and t8 = Causal.chrome_json c8 in
  Alcotest.(check bool)
    (Printf.sprintf "causal trace byte-identical d1 vs d8 (%d bytes)"
       (String.length t1))
    true (String.equal t1 t8);
  Alcotest.(check bool) "flight-recorder dump identical d1 vs d8" true
    (rec1 = rec8);
  Alcotest.(check bool) "trace is non-trivial" true (String.length t1 > 4096);
  Alcotest.(check bool) "recorder captured per-node history" true
    (List.length rec1 >= 4)

let test_reconstruction_sane () =
  let causal, _ = traced_run ~style:Style.Active ~sim_domains:0 in
  let records = Causal.records causal in
  Alcotest.(check int) "one record per submitted message" 60
    (List.length records);
  List.iter
    (fun r ->
      Alcotest.(check bool) "origination observed" true
        (r.Causal.r_originated <> None);
      Alcotest.(check bool) "ordered at least once" true
        (r.Causal.r_ordered <> []);
      Alcotest.(check bool) "packet hops recorded" true (r.Causal.r_hops <> []);
      Alcotest.(check int) "delivered on all four nodes" 4
        (List.length r.Causal.r_deliveries))
    records;
  let lats = Causal.latencies causal in
  Alcotest.(check int) "one latency per (message, node)" (60 * 4)
    (List.length lats);
  List.iter
    (fun l ->
      Alcotest.(check bool) "delivery not before origination" true
        (Vtime.( <= ) l.Causal.l_sent l.Causal.l_delivered))
    lats

(* Invariant 2 of OBSERVABILITY.md, end to end: a fully traced run and
   an untraced run of the same configuration compute the identical
   simulation — same event count, same deliveries everywhere. *)
let run_fingerprint ~traced =
  let config =
    Config.make ~num_nodes:4 ~num_nets:2 ~style:Style.Passive ~seed:11
      ~wire_bytes:true ()
  in
  let cluster = Cluster.create config in
  let attached =
    if traced then begin
      let causal, _ = Causal.attach (Cluster.telemetry cluster) in
      let recorder = Recorder.attach ~capacity:64 ~nodes:4 (Cluster.telemetry cluster) in
      Some (causal, recorder)
    end
    else None
  in
  Cluster.start cluster;
  Cluster.set_network_loss cluster 0 0.05;
  Workload.fixed_rate cluster ~node:1 ~size:700 ~interval:(Vtime.ms 2)
    ~count:100 ();
  Cluster.run_for cluster (Vtime.ms 600);
  (match attached with
  | Some (causal, _) ->
    Alcotest.(check bool) "tracer saw the run" true
      (Causal.steps_observed causal > 0)
  | None -> ());
  ( Array.init 4 (fun node -> Cluster.delivered_at cluster node),
    Cluster.events_processed cluster )

let test_tracing_changes_nothing () =
  let traced = run_fingerprint ~traced:true in
  let untraced = run_fingerprint ~traced:false in
  Alcotest.(check bool) "traced and untraced runs bitwise-identical" true
    (traced = untraced)

(* Reinstatement-protocol events are attributed to the node whose RRP
   layer emitted them, so the flight recorder shards a condemnation or
   probation verdict into that node's ring, not a global one. *)
let test_reinstatement_events_attributed () =
  let module Telemetry = Totem_engine.Telemetry in
  List.iter
    (fun (label, node, ev) ->
      Alcotest.(check (option int)) label (Some node)
        (Telemetry.node_of_event ev))
    [
      ( "condemned",
        2,
        Telemetry.Net_condemned { node = 2; net = 1; flaps = 0 } );
      ( "probation",
        3,
        Telemetry.Net_probation { node = 3; net = 0; attempt = 1 } );
      ( "reinstated",
        1,
        Telemetry.Net_reinstated { node = 1; net = 1; rotations = 20 } );
      ( "fault marked",
        0,
        Telemetry.Net_fault_marked { node = 0; net = 1; evidence = "test" } );
    ];
  Alcotest.(check (option int)) "net status is node-less" None
    (Telemetry.node_of_event
       (Telemetry.Net_status { net = 0; status = "burst" }))

let tests =
  [
    Alcotest.test_case "trace id round trip" `Quick test_tid_round_trip;
    Alcotest.test_case "d1 vs d8 deterministic: no replication" `Quick
      (test_domains_deterministic Style.No_replication);
    Alcotest.test_case "d1 vs d8 deterministic: active" `Quick
      (test_domains_deterministic Style.Active);
    Alcotest.test_case "d1 vs d8 deterministic: passive" `Quick
      (test_domains_deterministic Style.Passive);
    Alcotest.test_case "reconstruction is sane" `Quick test_reconstruction_sane;
    Alcotest.test_case "tracing changes nothing" `Quick
      test_tracing_changes_nothing;
    Alcotest.test_case "reinstatement events attributed to their node" `Quick
      test_reinstatement_events_attributed;
  ]
