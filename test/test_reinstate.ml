(* The condemned-network reinstatement protocol, driven end to end at
   cluster level: condemn -> probation -> reinstate, flap damping with
   exponential backoff, permanent condemnation at the flap limit, and
   the administrative clear_fault reset. *)

module Cluster = Totem_cluster.Cluster
module Config = Totem_cluster.Config
module Workload = Totem_cluster.Workload
module Fabric = Totem_net.Fabric
module Fault = Totem_net.Fault
module Rrp = Totem_rrp.Rrp
module Rrp_config = Totem_rrp.Rrp_config
module Style = Totem_rrp.Style
module Telemetry = Totem_engine.Telemetry
module Vtime = Totem_engine.Vtime

let rrp_config =
  {
    Rrp_config.default with
    Rrp_config.reinstate = true;
    reinstate_backoff = Vtime.ms 100;
    reinstate_backoff_max = Vtime.ms 400;
    reinstate_clean_rotations = 5;
    reinstate_flap_limit = 3;
  }

let make ?(rrp = rrp_config) () =
  let config =
    Config.make ~num_nodes:3 ~num_nets:2 ~style:Style.Passive ~seed:13 ~rrp ()
  in
  let cluster = Cluster.create config in
  Cluster.start cluster;
  (* Continuous traffic so fault detection and probation verdicts have
     receptions to judge. *)
  Workload.fixed_rate cluster ~node:0 ~size:256 ~interval:(Vtime.ms 2) ();
  cluster

let state cluster ~node ~net =
  Rrp.net_state_string (Cluster.rrp (Cluster.node cluster node)) ~net

let all_in cluster ~net expected =
  let ok = ref true in
  for node = 0 to Cluster.num_nodes cluster - 1 do
    if state cluster ~node ~net <> expected then ok := false
  done;
  !ok

(* Break net 0 at the fault layer without touching RRP state (unlike
   Cluster.heal_network, which also clears fault marks). *)
let break cluster down = Fault.set_down (Fabric.fault (Cluster.fabric cluster) 0) down

let run_ms cluster ms = Cluster.run_for cluster (Vtime.ms ms)

let test_condemn_probation_reinstate () =
  (* Generous flap limit: the long down period makes failed probe
     cycles accrue flaps, and this test is about the happy path, not
     convergence. *)
  let cluster =
    make ~rrp:{ rrp_config with Rrp_config.reinstate_flap_limit = 100 } ()
  in
  let probations = ref 0 and reinstatements = ref 0 in
  ignore
    (Telemetry.subscribe (Cluster.telemetry cluster) (fun _ ev ->
         match ev with
         | Telemetry.Net_probation { net = 0; _ } -> incr probations
         | Telemetry.Net_reinstated { net = 0; _ } -> incr reinstatements
         | _ -> ()));
  run_ms cluster 200;
  Alcotest.(check bool) "starts active" true (all_in cluster ~net:0 "active");
  break cluster true;
  run_ms cluster 1000;
  (* A dead net oscillates condemned <-> probation (probe attempts keep
     failing) but must never be reinstated while it delivers nothing. *)
  for node = 0 to 2 do
    Alcotest.(check bool)
      (Printf.sprintf "node %d never reinstates a dead net" node)
      true
      (state cluster ~node ~net:0 <> "active")
  done;
  Alcotest.(check int) "no reinstatement while down" 0 !reinstatements;
  break cluster false;
  run_ms cluster 2000;
  Alcotest.(check bool) "reinstated after probation" true
    (all_in cluster ~net:0 "active");
  Alcotest.(check bool) "probation was entered" true (!probations > 0);
  Alcotest.(check bool) "reinstatement was emitted" true (!reinstatements > 0);
  (* A healthy reinstated net accrues no further flaps. *)
  let flaps_now () =
    List.init 3 (fun node ->
        Rrp.flaps (Cluster.rrp (Cluster.node cluster node)) ~net:0)
  in
  let settled = flaps_now () in
  run_ms cluster 2000;
  Alcotest.(check (list int)) "healthy net stops flapping" settled
    (flaps_now ());
  Alcotest.(check bool) "still active" true (all_in cluster ~net:0 "active")

let test_no_reinstate_without_opt_in () =
  let cluster = make ~rrp:Rrp_config.default () in
  run_ms cluster 200;
  break cluster true;
  run_ms cluster 1200;
  Alcotest.(check bool) "condemned" true (all_in cluster ~net:0 "condemned");
  break cluster false;
  run_ms cluster 3000;
  Alcotest.(check bool) "stays condemned forever (paper protocol)" true
    (all_in cluster ~net:0 "condemned")

(* An oscillating network: healthy long enough to reinstate, then fails
   again. Flap damping must converge it to permanently condemned within
   the flap limit, with the probation delay doubling per flap. *)
let test_flap_convergence_and_backoff () =
  let cluster = make () in
  let condemned_at = ref [] and probation_at = ref [] in
  ignore
    (Telemetry.subscribe (Cluster.telemetry cluster) (fun t ev ->
         match ev with
         | Telemetry.Net_condemned { node = 0; net = 0; _ } ->
           condemned_at := t :: !condemned_at
         | Telemetry.Net_probation { node = 0; net = 0; _ } ->
           probation_at := t :: !probation_at
         | _ -> ()));
  run_ms cluster 200;
  for _cycle = 1 to rrp_config.Rrp_config.reinstate_flap_limit + 2 do
    break cluster true;
    run_ms cluster 600;
    break cluster false;
    run_ms cluster 2000
  done;
  Alcotest.(check bool) "converged to permanently condemned" true
    (all_in cluster ~net:0 "condemned");
  for node = 0 to 2 do
    let flaps = Rrp.flaps (Cluster.rrp (Cluster.node cluster node)) ~net:0 in
    Alcotest.(check bool)
      (Printf.sprintf "node %d flaps within [1, limit], got %d" node flaps)
      true
      (flaps >= 1 && flaps <= rrp_config.Rrp_config.reinstate_flap_limit)
  done;
  (* Probe delay doubles per flap: pair each probation start with the
     latest preceding condemnation and check the gaps never shrink and
     actually grow somewhere before hitting the cap. *)
  let delays =
    List.rev_map
      (fun p ->
        let c =
          List.fold_left
            (fun best c -> if c <= p && c > best then c else best)
            Vtime.zero !condemned_at
        in
        p - c)
      !probation_at
  in
  Alcotest.(check bool) "several probation attempts" true
    (List.length delays >= 2);
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "backoff never shrinks" true (monotone delays);
  Alcotest.(check bool) "backoff grows with flaps" true
    (List.nth delays (List.length delays - 1) > List.nth delays 0);
  Alcotest.(check bool) "backoff capped" true
    (List.for_all
       (fun d -> d <= rrp_config.Rrp_config.reinstate_backoff_max + Vtime.ms 50)
       delays)

let test_clear_fault_resets_damping () =
  let cluster = make () in
  run_ms cluster 200;
  for _cycle = 1 to rrp_config.Rrp_config.reinstate_flap_limit + 2 do
    break cluster true;
    run_ms cluster 600;
    break cluster false;
    run_ms cluster 2000
  done;
  Alcotest.(check bool) "converged" true (all_in cluster ~net:0 "condemned");
  (* Operator repairs the network and clears the marks: full reset. *)
  Cluster.heal_network cluster 0;
  for node = 0 to 2 do
    let rrp = Cluster.rrp (Cluster.node cluster node) in
    Alcotest.(check string) "active again"
      "active"
      (Rrp.net_state_string rrp ~net:0);
    Alcotest.(check int) "flap history wiped" 0 (Rrp.flaps rrp ~net:0)
  done;
  (* Damping restarts from scratch: the net can be condemned (or back
     on a fresh probation attempt) and reinstated again as if it had
     never flapped. *)
  break cluster true;
  run_ms cluster 1000;
  let ok = ref true in
  for node = 0 to 2 do
    if state cluster ~node ~net:0 = "active" then ok := false
  done;
  Alcotest.(check bool) "condemnable again" true !ok;
  break cluster false;
  run_ms cluster 2000;
  Alcotest.(check bool) "reinstatable again" true
    (all_in cluster ~net:0 "active")

(* The whole probation cycle must be bitwise-deterministic under the
   parallel core. *)
let test_deterministic_across_domains () =
  let fingerprint sim_domains =
    let config =
      Config.make ~num_nodes:3 ~num_nets:2 ~style:Style.Passive ~seed:13
        ~rrp:rrp_config ~sim_domains ()
    in
    let cluster = Cluster.create config in
    let events = ref [] in
    ignore
      (Telemetry.subscribe (Cluster.telemetry cluster) (fun t ev ->
           match ev with
           | Telemetry.Net_condemned { node; net; flaps } ->
             events := (t, "condemned", node, net, flaps) :: !events
           | Telemetry.Net_probation { node; net; attempt } ->
             events := (t, "probation", node, net, attempt) :: !events
           | Telemetry.Net_reinstated { node; net; rotations } ->
             events := (t, "reinstated", node, net, rotations) :: !events
           | _ -> ()));
    Cluster.start cluster;
    Workload.fixed_rate cluster ~node:0 ~size:256 ~interval:(Vtime.ms 2) ();
    Cluster.run_for cluster (Vtime.ms 200);
    Fault.set_down (Fabric.fault (Cluster.fabric cluster) 0) true;
    Cluster.run_for cluster (Vtime.ms 600);
    Fault.set_down (Fabric.fault (Cluster.fabric cluster) 0) false;
    Cluster.run_for cluster (Vtime.ms 2000);
    (List.rev !events, Cluster.events_processed cluster)
  in
  let d1 = fingerprint 1 and d8 = fingerprint 8 in
  Alcotest.(check bool) "reinstatement timeline identical d1 vs d8" true
    (d1 = d8);
  Alcotest.(check bool) "timeline non-trivial" true
    (List.length (fst d1) > 0)

let tests =
  [
    Alcotest.test_case "condemn -> probation -> reinstate" `Quick
      test_condemn_probation_reinstate;
    Alcotest.test_case "no reinstatement without opt-in" `Quick
      test_no_reinstate_without_opt_in;
    Alcotest.test_case "flap damping converges, backoff doubles" `Quick
      test_flap_convergence_and_backoff;
    Alcotest.test_case "clear_fault resets damping" `Quick
      test_clear_fault_resets_damping;
    Alcotest.test_case "probation cycle deterministic d1 vs d8" `Quick
      test_deterministic_across_domains;
  ]
