open Totem_rrp

let test_balanced_is_healthy () =
  let m = Monitor.create ~num_nets:2 ~threshold:5 in
  for _ = 1 to 100 do
    Monitor.note m ~net:0;
    Monitor.note m ~net:1
  done;
  Alcotest.(check (list (pair int int))) "no lagging" [] (Monitor.lagging m)

let test_lag_detection () =
  let m = Monitor.create ~num_nets:2 ~threshold:5 in
  for _ = 1 to 10 do
    Monitor.note m ~net:0
  done;
  for _ = 1 to 4 do
    Monitor.note m ~net:1
  done;
  (* Difference 6 > threshold 5. *)
  Alcotest.(check (list (pair int int))) "net 1 behind by 6" [ (1, 6) ]
    (Monitor.lagging m)

let test_threshold_is_strict () =
  let m = Monitor.create ~num_nets:2 ~threshold:5 in
  for _ = 1 to 5 do
    Monitor.note m ~net:0
  done;
  Alcotest.(check (list (pair int int))) "difference == threshold is fine" []
    (Monitor.lagging m)

let test_catch_up () =
  let m = Monitor.create ~num_nets:3 ~threshold:10 in
  for _ = 1 to 8 do
    Monitor.note m ~net:0
  done;
  Monitor.note m ~net:1;
  Monitor.catch_up m;
  Alcotest.(check int) "lagging nudged" 2 (Monitor.count m ~net:1);
  Alcotest.(check int) "zero net nudged" 1 (Monitor.count m ~net:2);
  Alcotest.(check int) "leader untouched" 8 (Monitor.count m ~net:0)

let test_catch_up_prevents_slow_accumulation () =
  (* P5: sporadic loss must never condemn a healthy network as long as
     catch-up outpaces the loss rate. *)
  let m = Monitor.create ~num_nets:2 ~threshold:10 in
  for round = 1 to 1000 do
    Monitor.note m ~net:0;
    (* Network 1 loses one frame in three. *)
    if round mod 3 <> 0 then Monitor.note m ~net:1;
    (* Time-driven catch-up every other round. *)
    if round mod 2 = 0 then Monitor.catch_up m;
    if Monitor.lagging m <> [] then
      Alcotest.failf "healthy network condemned at round %d" round
  done

let test_dead_network_detected_despite_catch_up () =
  (* P4 still holds: a truly dead network lags faster than catch-up. *)
  let m = Monitor.create ~num_nets:2 ~threshold:10 in
  let detected = ref None in
  (try
     for round = 1 to 100 do
       Monitor.note m ~net:0;
       if round mod 2 = 0 then Monitor.catch_up m;
       if Monitor.lagging m <> [] then begin
         detected := Some round;
         raise Exit
       end
     done
   with Exit -> ());
  match !detected with
  | Some round -> Alcotest.(check bool) "detected promptly" true (round < 30)
  | None -> Alcotest.fail "dead network never detected"

let test_rejoin_forgives_lag () =
  (* A condemned network entering probation must not be instantly
     re-condemned by the stale deficit that condemned it. *)
  let m = Monitor.create ~num_nets:2 ~threshold:5 in
  for _ = 1 to 50 do
    Monitor.note m ~net:0
  done;
  Alcotest.(check int) "deep in deficit" 50 (Monitor.behind m ~net:1);
  Monitor.rejoin m ~net:1;
  Alcotest.(check int) "deficit forgiven" 0 (Monitor.behind m ~net:1);
  Alcotest.(check int) "count jumped to the maximum" 50
    (Monitor.count m ~net:1);
  Alcotest.(check (list (pair int int))) "no longer lagging" []
    (Monitor.lagging m);
  (* Probation verdicts start from a clean slate: fresh loss after the
     rejoin is judged on its own, not on top of history. *)
  for _ = 1 to 6 do
    Monitor.note m ~net:0
  done;
  Alcotest.(check (list (pair int int))) "fresh lag counts from zero"
    [ (1, 6) ] (Monitor.lagging m)

let test_behind () =
  let m = Monitor.create ~num_nets:3 ~threshold:5 in
  for _ = 1 to 7 do
    Monitor.note m ~net:0
  done;
  for _ = 1 to 3 do
    Monitor.note m ~net:2
  done;
  Alcotest.(check int) "best is 0 behind" 0 (Monitor.behind m ~net:0);
  Alcotest.(check int) "silent net fully behind" 7 (Monitor.behind m ~net:1);
  Alcotest.(check int) "partial" 4 (Monitor.behind m ~net:2);
  (* behind reports even sub-threshold lag — it feeds probation's clean
     rotation check, which is stricter than condemnation. *)
  Monitor.catch_up m;
  Alcotest.(check int) "catch-up narrows it" 6 (Monitor.behind m ~net:1)

let test_validation () =
  Alcotest.check_raises "nets" (Invalid_argument "Monitor.create: num_nets")
    (fun () -> ignore (Monitor.create ~num_nets:0 ~threshold:1));
  Alcotest.check_raises "threshold" (Invalid_argument "Monitor.create: threshold")
    (fun () -> ignore (Monitor.create ~num_nets:1 ~threshold:0))

let tests =
  [
    Alcotest.test_case "balanced traffic healthy" `Quick test_balanced_is_healthy;
    Alcotest.test_case "lag detection (P4)" `Quick test_lag_detection;
    Alcotest.test_case "threshold strict" `Quick test_threshold_is_strict;
    Alcotest.test_case "catch-up nudges laggards" `Quick test_catch_up;
    Alcotest.test_case "catch-up prevents false alarm (P5)" `Quick
      test_catch_up_prevents_slow_accumulation;
    Alcotest.test_case "dead network still detected (P4)" `Quick
      test_dead_network_detected_despite_catch_up;
    Alcotest.test_case "rejoin forgives accumulated lag" `Quick
      test_rejoin_forgives_lag;
    Alcotest.test_case "behind reports distance to the best net" `Quick
      test_behind;
    Alcotest.test_case "validation" `Quick test_validation;
  ]
