(* Cross-module property tests (qcheck): algebraic invariants that the
   targeted unit suites do not already pin down. *)

module Vtime = Totem_engine.Vtime
module Stats = Totem_engine.Stats
module Rng = Totem_engine.Rng
module Monitor = Totem_rrp.Monitor
module Frame = Totem_net.Frame
module Packing = Totem_srp.Packing
module Message = Totem_srp.Message
module Const = Totem_srp.Const

let qcheck_vtime_roundtrip =
  QCheck.Test.make ~name:"Vtime float round trip" ~count:500
    QCheck.(int_range 0 1_000_000_000)
    (fun ns ->
      let t = Vtime.ns ns in
      abs (Vtime.of_float_sec (Vtime.to_float_sec t) - t) <= 1)

let qcheck_monitor_matches_naive =
  (* The monitor's lagging set equals a naive recomputation for any
     sequence of receptions and catch-up steps. *)
  QCheck.Test.make ~name:"Monitor.lagging = naive recompute" ~count:300
    QCheck.(
      pair (int_range 1 20)
        (list_of_size (Gen.int_range 0 200) (int_range 0 3)))
    (fun (threshold, events) ->
      let num_nets = 3 in
      let m = Monitor.create ~num_nets ~threshold in
      let naive = Array.make num_nets 0 in
      List.iter
        (fun e ->
          if e < num_nets then begin
            Monitor.note m ~net:e;
            naive.(e) <- naive.(e) + 1
          end
          else begin
            Monitor.catch_up m;
            let mx = Array.fold_left max 0 naive in
            Array.iteri (fun i c -> if c < mx then naive.(i) <- c + 1) naive
          end)
        events;
      let mx = Array.fold_left max 0 naive in
      let expected =
        List.filter (fun i -> mx - naive.(i) > threshold)
          (List.init num_nets Fun.id)
      in
      List.map fst (Monitor.lagging m) = expected)

let qcheck_histogram_quantiles_monotone =
  QCheck.Test.make ~name:"Histogram quantiles monotone in q" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 200) (float_range 0.0 1000.0))
    (fun values ->
      let h = Stats.Histogram.create ~buckets:[| 1.; 10.; 100.; 500. |] in
      List.iter (Stats.Histogram.observe h) values;
      let q1 = Stats.Histogram.quantile h 0.25 in
      let q2 = Stats.Histogram.quantile h 0.5 in
      let q3 = Stats.Histogram.quantile h 0.9 in
      q1 <= q2 && q2 <= q3)

let qcheck_frame_wire_bytes =
  QCheck.Test.make ~name:"Frame wire bytes bounded and monotone" ~count:300
    QCheck.(pair (int_range 0 1424) (int_range 0 1424))
    (fun (a, b) ->
      let wa = Frame.wire_bytes (Frame.make ~src:0 ~payload_bytes:a (Frame.Opaque "")) in
      let wb = Frame.wire_bytes (Frame.make ~src:0 ~payload_bytes:b (Frame.Opaque "")) in
      wa >= Frame.min_frame_bytes
      && wa <= Frame.max_frame_bytes
      && (a > b || wa <= wb))

let qcheck_packing_disabled_is_singletons =
  QCheck.Test.make ~name:"packing disabled: one element per packet" ~count:200
    QCheck.(list_of_size (Gen.int_range 0 30) (int_range 0 5000))
    (fun sizes ->
      let const = { Const.default with Const.packing_enabled = false } in
      let msgs =
        List.mapi (fun i s -> Message.make ~origin:0 ~app_seq:(i + 1) ~size:s ()) sizes
      in
      List.for_all (fun es -> List.length es = 1) (Packing.pack const msgs))

let qcheck_summary_total =
  QCheck.Test.make ~name:"Summary total = fold sum" ~count:300
    QCheck.(list (float_range (-100.0) 100.0))
    (fun values ->
      let s = Stats.Summary.create () in
      List.iter (Stats.Summary.observe s) values;
      abs_float (Stats.Summary.total s -. List.fold_left ( +. ) 0.0 values) < 1e-6)

let qcheck_rng_split_streams_differ =
  QCheck.Test.make ~name:"split streams differ from parent" ~count:100
    QCheck.small_int (fun seed ->
      let a = Rng.create ~seed in
      let b = Rng.split a in
      let xs = List.init 8 (fun _ -> Rng.int64 a) in
      let ys = List.init 8 (fun _ -> Rng.int64 b) in
      xs <> ys)

(* Whole-stack property: for random small workloads over a random style,
   every node delivers everything in the same order. *)
let qcheck_cluster_total_order =
  QCheck.Test.make ~name:"cluster delivers one total order" ~count:15
    QCheck.(
      pair (int_range 0 2)
        (list_of_size (Gen.int_range 1 20)
           (pair (int_range 0 3) (int_range 1 2000))))
    (fun (style_ix, submissions) ->
      let style =
        [| Totem_rrp.Style.No_replication; Totem_rrp.Style.Active;
           Totem_rrp.Style.Passive |].(style_ix)
      in
      let t = Util.make ~style () in
      Util.Cluster.start t.Util.cluster;
      List.iter
        (fun (node, size) -> Util.submit t ~node ~size)
        submissions;
      Util.run_ms t 2000;
      let reference = Util.order t 0 in
      List.length reference = List.length submissions
      && List.for_all (fun n -> Util.order t n = reference) [ 1; 2; 3 ])

(* Chaos property (paper requirements A5/P5): [Campaign.random] never
   faults the last network, so whatever the replication style, no online
   monitor may ever see that network condemned. Styles are overridden on
   top of the generated campaign so every schedule is tried under all
   three. *)
let qcheck_chaos_virgin_net_never_condemned =
  QCheck.Test.make ~name:"never-faulted net never condemned (all styles)"
    ~count:9
    QCheck.(pair (int_range 1 500) (int_range 0 2))
    (fun (seed, style_ix) ->
      let base = Totem_chaos.Campaign.random ~seed () in
      let style =
        match style_ix with
        | 0 -> Totem_rrp.Style.Passive
        | 1 -> Totem_rrp.Style.Active
        | _ when base.Totem_chaos.Campaign.num_nets >= 3 ->
          Totem_rrp.Style.Active_passive 2
        | _ -> Totem_rrp.Style.Active
      in
      let campaign = { base with Totem_chaos.Campaign.style } in
      let r = Totem_chaos.Runner.run campaign in
      List.for_all
        (fun v ->
          v.Totem_chaos.Invariant.invariant
          <> Totem_chaos.Invariant.inv_virgin)
        r.Totem_chaos.Runner.violations)

let tests =
  List.map QCheck_alcotest.to_alcotest
    [
      qcheck_vtime_roundtrip;
      qcheck_monitor_matches_naive;
      qcheck_histogram_quantiles_monotone;
      qcheck_frame_wire_bytes;
      qcheck_packing_disabled_is_singletons;
      qcheck_summary_total;
      qcheck_rng_split_streams_differ;
      qcheck_cluster_total_order;
      qcheck_chaos_virgin_net_never_condemned;
    ]
