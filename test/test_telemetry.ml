open Totem_engine
module Cluster = Totem_cluster.Cluster
module Config = Totem_cluster.Config
module Workload = Totem_cluster.Workload
module Style = Totem_rrp.Style
module Rrp_config = Totem_rrp.Rrp_config

(* --- registry ------------------------------------------------------- *)

let test_registry () =
  let sim = Sim.create () in
  let tl = Telemetry.create sim in
  let c = Telemetry.counter tl "x.count" in
  Stats.Counter.incr c;
  Stats.Counter.add c 4;
  (* Registering the same name again retrieves the same counter. *)
  let c' = Telemetry.counter tl "x.count" in
  Stats.Counter.incr c';
  Alcotest.(check int) "counter value" 6 (Stats.Counter.value c);
  Telemetry.gauge tl "x.level" (fun () -> 2.5);
  (match Telemetry.find_metric tl "x.level" with
  | Some (Telemetry.Gauge f) ->
    Alcotest.(check (float 0.0)) "gauge reads" 2.5 (f ())
  | _ -> Alcotest.fail "gauge not registered");
  let h = Telemetry.histogram ~buckets:[| 1.0; 2.0; 4.0 |] tl "x.hist" in
  List.iter (Stats.Histogram.observe h) [ 0.5; 1.5; 3.0; 9.0 ];
  Alcotest.(check int) "histogram count" 4 (Stats.Histogram.count h);
  (match Stats.Histogram.dump h with
  | [| (le0, n0); (le1, n1); (le2, n2); (le3, n3) |] ->
    Alcotest.(check (float 0.0)) "bucket 0 bound" 1.0 le0;
    Alcotest.(check (float 0.0)) "bucket 1 bound" 2.0 le1;
    Alcotest.(check (float 0.0)) "bucket 2 bound" 4.0 le2;
    Alcotest.(check (float 0.0)) "overflow bound" infinity le3;
    Alcotest.(check (list int)) "bucket counts" [ 1; 1; 1; 1 ] [ n0; n1; n2; n3 ]
  | d -> Alcotest.failf "expected 4 buckets, got %d" (Array.length d));
  Alcotest.(check int) "registry size" 3 (List.length (Telemetry.metrics tl))

(* --- disabled mode -------------------------------------------------- *)

let test_disabled_no_effect () =
  let sim = Sim.create () in
  let tl = Telemetry.create sim in
  Alcotest.(check bool) "inactive by default" false (Telemetry.active tl);
  Telemetry.emit tl (Telemetry.Token_loss { node = 0; ring_id = 1 });
  Telemetry.custom tl ~component:"x" "nobody listening";
  Telemetry.customf tl ~component:"x" "still %s" "nobody";
  Alcotest.(check int) "ring stays empty" 0 (List.length (Telemetry.events tl));
  Alcotest.(check bool) "seq stays empty" true
    (Seq.is_empty (Telemetry.events_seq tl))

(* --- scripted active-mode fault: exact event sequence ---------------- *)

type problem_ev =
  | Incr of int * int  (* net, count *)
  | Thresh of int * int * int  (* net, count, threshold *)
  | Marked of int  (* net *)

(* Fail network 1 under active replication with threshold 3 and decay
   effectively off: every node must log exactly
   incr(1) incr(2) incr(3) threshold marked for network 1 — and nothing
   at all for the healthy network 0. *)
let test_active_threshold_sequence () =
  let rrp =
    {
      Rrp_config.default with
      Rrp_config.active_problem_threshold = 3;
      active_decay_interval = Vtime.sec 1000;
    }
  in
  let config = Config.make ~num_nodes:4 ~num_nets:2 ~style:Style.Active ~rrp () in
  let cluster = Cluster.create config in
  let tl = Cluster.telemetry cluster in
  let log = ref [] in
  Telemetry.set_sink tl (fun _time ev ->
      match ev with
      | Telemetry.Problem_incr { node; net; count } ->
        log := (node, Incr (net, count)) :: !log
      | Telemetry.Problem_threshold { node; net; count; threshold } ->
        log := (node, Thresh (net, count, threshold)) :: !log
      | Telemetry.Net_fault_marked { node; net; _ } ->
        log := (node, Marked net) :: !log
      | _ -> ());
  Cluster.start cluster;
  Cluster.run_for cluster (Vtime.ms 100);
  Alcotest.(check int) "quiet while healthy" 0 (List.length !log);
  Cluster.fail_network cluster 1;
  Cluster.run_for cluster (Vtime.ms 500);
  let expected = [ Incr (1, 1); Incr (1, 2); Incr (1, 3); Thresh (1, 3, 3); Marked 1 ] in
  for node = 0 to 3 do
    let seen =
      List.rev
        (List.filter_map
           (fun (n, ev) -> if n = node then Some ev else None)
           !log)
    in
    if seen <> expected then
      Alcotest.failf "node %d: unexpected problem-event sequence (%d events)"
        node (List.length seen)
  done;
  List.iter
    (fun (_, ev) ->
      let net = match ev with Incr (n, _) | Thresh (n, _, _) | Marked n -> n in
      Alcotest.(check int) "only network 1 implicated" 1 net)
    !log

(* --- passive-mode token-hold spans ----------------------------------- *)

(* Under sporadic loss the passive layer buffers tokens waiting for
   missing messages; every hold must resolve within the 10 ms
   passive_token_timeout (Sec. 6) — by the timer if not sooner by the
   catch-up fast path. *)
let test_passive_hold_spans () =
  let config = Config.make ~num_nodes:4 ~num_nets:2 ~style:Style.Passive () in
  let timeout = Rrp_config.default.Rrp_config.passive_token_timeout in
  let cluster = Cluster.create config in
  let tl = Cluster.telemetry cluster in
  let pending = Hashtbl.create 8 in
  let spans = ref [] in
  Telemetry.set_sink tl (fun time ev ->
      match ev with
      | Telemetry.Token_hold { node; _ } -> Hashtbl.replace pending node time
      | Telemetry.Token_release { node; _ } -> (
        match Hashtbl.find_opt pending node with
        | Some t0 ->
          Hashtbl.remove pending node;
          spans := Vtime.sub time t0 :: !spans
        | None -> ())
      | _ -> ());
  Cluster.start cluster;
  Cluster.set_network_loss cluster 0 0.05;
  Cluster.set_network_loss cluster 1 0.05;
  Workload.saturate cluster ~size:512;
  Cluster.run_for cluster (Vtime.ms 300);
  Alcotest.(check bool) "observed token holds" true (!spans <> []);
  List.iter
    (fun dt ->
      if dt < Vtime.zero || dt > timeout then
        Alcotest.failf "hold span %.3f ms outside [0, %.0f ms]"
          (Vtime.to_float_ms dt) (Vtime.to_float_ms timeout))
    !spans

(* --- determinism: telemetry must not change the simulation ----------- *)

let run_instrumented ~telemetry_on =
  let config = Config.make ~num_nodes:4 ~num_nets:2 ~style:Style.Active () in
  let cluster = Cluster.create config in
  let seen = ref 0 in
  if telemetry_on then begin
    let tl = Cluster.telemetry cluster in
    Telemetry.set_tracing tl true;
    Telemetry.set_sink tl (fun _ _ -> incr seen)
  end;
  Cluster.start cluster;
  Workload.saturate cluster ~size:700;
  Cluster.run_for cluster (Vtime.ms 200);
  let delivered = List.init 4 (fun i -> Cluster.delivered_at cluster i) in
  let bytes = List.init 4 (fun i -> Cluster.delivered_bytes_at cluster i) in
  (delivered, bytes, Sim.events_processed (Cluster.sim cluster), !seen)

let test_determinism () =
  let d_off, b_off, ev_off, seen_off = run_instrumented ~telemetry_on:false in
  let d_on, b_on, ev_on, seen_on = run_instrumented ~telemetry_on:true in
  Alcotest.(check (list int)) "deliveries identical" d_off d_on;
  Alcotest.(check (list int)) "bytes identical" b_off b_on;
  Alcotest.(check int) "simulator event count identical" ev_off ev_on;
  Alcotest.(check int) "off-run saw nothing" 0 seen_off;
  Alcotest.(check bool) "on-run saw events" true (seen_on > 0)

let tests =
  [
    Alcotest.test_case "metrics registry" `Quick test_registry;
    Alcotest.test_case "disabled mode has no effect" `Quick
      test_disabled_no_effect;
    Alcotest.test_case "active problemCounter event sequence" `Quick
      test_active_threshold_sequence;
    Alcotest.test_case "passive token-hold spans within timeout" `Quick
      test_passive_hold_spans;
    Alcotest.test_case "telemetry preserves determinism" `Quick
      test_determinism;
  ]
