(* The chaos engine: DSL combinators, campaign serialization, the
   violation -> shrink -> replay round trip, and replay determinism. *)

module Vtime = Totem_engine.Vtime
module Telemetry = Totem_engine.Telemetry
module Campaign = Totem_chaos.Campaign
module Invariant = Totem_chaos.Invariant
module Runner = Totem_chaos.Runner

(* --- DSL ------------------------------------------------------------- *)

let test_flap_duty_cycle () =
  let steps =
    Campaign.flap ~net:0 ~period:(Vtime.ms 100) ~duty:0.3 ~from_:Vtime.zero
      ~until:(Vtime.ms 300) ()
  in
  let expected =
    [
      (Vtime.ms 0, Campaign.Fail_net 0);
      (Vtime.ms 30, Campaign.Heal_net 0);
      (Vtime.ms 100, Campaign.Fail_net 0);
      (Vtime.ms 130, Campaign.Heal_net 0);
      (Vtime.ms 200, Campaign.Fail_net 0);
      (Vtime.ms 230, Campaign.Heal_net 0);
    ]
  in
  Alcotest.(check int) "step count" (List.length expected) (List.length steps);
  List.iter2
    (fun (at, op) s ->
      Alcotest.(check bool)
        (Format.asprintf "step %a" Campaign.pp_op op)
        true
        (s.Campaign.at = at && s.Campaign.op = op))
    expected steps

let test_rolling_partition () =
  let steps =
    Campaign.rolling_partition ~net:1 ~nodes:[ 0; 1; 2 ] ~dwell:(Vtime.ms 50)
      ~from_:(Vtime.ms 100) ~rounds:3
  in
  let expected =
    [
      (Vtime.ms 100, Campaign.Partition (1, [ 0 ], [ 1 ]));
      (Vtime.ms 150, Campaign.Unpartition (1, [ 0 ], [ 1 ]));
      (Vtime.ms 150, Campaign.Partition (1, [ 1 ], [ 2 ]));
      (Vtime.ms 200, Campaign.Unpartition (1, [ 1 ], [ 2 ]));
      (Vtime.ms 200, Campaign.Partition (1, [ 2 ], [ 0 ]));
      (Vtime.ms 250, Campaign.Unpartition (1, [ 2 ], [ 0 ]));
    ]
  in
  Alcotest.(check int) "step count" 6 (List.length steps);
  List.iter2
    (fun (at, op) s ->
      Alcotest.(check bool)
        (Format.asprintf "%a" Campaign.pp_op op)
        true
        (s.Campaign.at = at && s.Campaign.op = op))
    expected steps

let test_loss_ramp () =
  let steps =
    Campaign.loss_ramp ~net:0 ~from_:(Vtime.ms 100) ~until:(Vtime.ms 500)
      ~stages:4 ~peak:0.4
  in
  Alcotest.(check int) "stages + clear" 5 (List.length steps);
  let last = List.nth steps 4 in
  Alcotest.(check bool) "cleared at until" true
    (last.Campaign.op = Campaign.Set_loss (0, 0.0) && last.Campaign.at = Vtime.ms 500);
  (match (List.nth steps 3).Campaign.op with
  | Campaign.Set_loss (0, p) ->
    Alcotest.(check (float 1e-9)) "peak reached" 0.4 p
  | _ -> Alcotest.fail "expected Set_loss")

let test_tolerated () =
  let mk steps = Campaign.make ~num_nets:2 steps in
  Alcotest.(check bool) "no faults tolerated" true (Campaign.tolerated (mk []));
  Alcotest.(check bool) "one net down tolerated" true
    (Campaign.tolerated (mk [ { Campaign.at = Vtime.ms 10; op = Campaign.Fail_net 0 } ]));
  Alcotest.(check bool) "both nets down not tolerated" false
    (Campaign.tolerated
       (mk
          [
            { Campaign.at = Vtime.ms 10; op = Campaign.Fail_net 0 };
            { Campaign.at = Vtime.ms 20; op = Campaign.Fail_net 1 };
          ]));
  Alcotest.(check bool) "heal restores tolerance" true
    (Campaign.tolerated
       (mk
          [
            { Campaign.at = Vtime.ms 10; op = Campaign.Fail_net 0 };
            { Campaign.at = Vtime.ms 20; op = Campaign.Heal_net 0 };
            { Campaign.at = Vtime.ms 30; op = Campaign.Fail_net 1 };
          ]));
  Alcotest.(check bool) "loss everywhere not tolerated" false
    (Campaign.tolerated
       (mk
          [
            { Campaign.at = Vtime.ms 10; op = Campaign.Set_loss (0, 0.1) };
            { Campaign.at = Vtime.ms 20; op = Campaign.Set_loss (1, 0.1) };
          ]));
  Alcotest.(check bool) "crash not tolerated" false
    (Campaign.tolerated (mk [ { Campaign.at = Vtime.ms 10; op = Campaign.Crash 0 } ]))

let test_touched_nets () =
  let c =
    Campaign.make ~num_nets:3
      [
        { Campaign.at = Vtime.ms 10; op = Campaign.Set_loss (0, 0.03) };
        { Campaign.at = Vtime.ms 20; op = Campaign.Block_send (1, 1) };
      ]
  in
  let strict = Campaign.touched_nets c in
  Alcotest.(check bool) "loss touches under strict" true strict.(0);
  let lenient = Campaign.touched_nets ~sporadic_loss_max:0.05 c in
  Alcotest.(check bool) "sporadic loss stays virgin" false lenient.(0);
  Alcotest.(check bool) "hard fault always touches" true lenient.(1);
  Alcotest.(check bool) "untouched net virgin" false lenient.(2)

(* --- serialization --------------------------------------------------- *)

let check_round_trip label c =
  let text = Totem_chaos.Chaos_json.to_string (Campaign.to_json c) in
  match Totem_chaos.Chaos_json.parse text with
  | Error m -> Alcotest.failf "%s: reparse failed: %s" label m
  | Ok v ->
    let c' = Campaign.of_json v "round-trip" in
    Alcotest.(check bool) (Printf.sprintf "%s round-trips" label) true (c = c')

let test_json_round_trip () =
  List.iter
    (fun seed ->
      check_round_trip
        (Printf.sprintf "seed %d" seed)
        (Campaign.random ~seed ()))
    [ 1; 2; 3; 7; 11 ]

let test_json_round_trip_gray () =
  (* The gray op draw plus reinstatement flag survive serialization. *)
  List.iter
    (fun seed ->
      check_round_trip
        (Printf.sprintf "gray seed %d" seed)
        (Campaign.random ~gray:true ~seed ()))
    [ 1; 2; 3; 7; 11 ];
  check_round_trip "every gray op"
    (Campaign.make ~reinstate:true
       (List.map
          (fun (at, op) -> { Campaign.at; op })
          [
            (Vtime.ms 10, Campaign.Set_burst_loss (0, 0.9, 0.1));
            (Vtime.ms 20, Campaign.Set_delay_factor (0, 4.0, 0.2));
            (Vtime.ms 30, Campaign.Set_dir_loss (0, 0, 1, 0.8));
            (Vtime.ms 40, Campaign.Set_duplicate (1, 0.3));
            (Vtime.ms 50, Campaign.Set_reorder (1, 0.15));
            (Vtime.ms 60, Campaign.Set_burst_loss (0, 0.0, 1.0));
          ]))

(* --- violation -> shrink -> replay ----------------------------------- *)

(* A deliberately mis-thresholded monitor: no protocol can condemn a
   failed network within 1 ms, so requirement A6 "fires" on any campaign
   that takes a network down for longer than that. *)
let broken_monitor =
  { Invariant.default with Invariant.condemn_within = Some (Vtime.ms 1) }

let find_violating_campaign () =
  (* Seed 1's random campaign keeps network 0 down long enough. *)
  let campaign = Campaign.random ~seed:1 () in
  match (Runner.run ~monitor:broken_monitor campaign).Runner.violations with
  | v :: _ -> (campaign, v)
  | [] -> Alcotest.fail "expected the mis-thresholded monitor to fire"

let test_shrink_round_trip () =
  let campaign, violation = find_violating_campaign () in
  Alcotest.(check string)
    "A6 fired" Invariant.inv_detection violation.Invariant.invariant;
  let s = Runner.shrink ~monitor:broken_monitor campaign violation in
  Alcotest.(check bool)
    (Printf.sprintf "shrunk to %d steps (<= 8)" s.Runner.minimized_steps)
    true
    (s.Runner.minimized_steps <= 8
    && s.Runner.minimized_steps < s.Runner.original_steps);
  (* The minimized campaign still violates the same invariant... *)
  let r = Runner.run ~monitor:broken_monitor s.Runner.minimized in
  let v' =
    match r.Runner.violations with
    | v :: _ -> v
    | [] -> Alcotest.fail "minimized campaign no longer violates"
  in
  Alcotest.(check string)
    "same invariant" violation.Invariant.invariant v'.Invariant.invariant;
  (* ...and round-trips through a .chaos.json file into a bit-for-bit
     reproduction. *)
  let path = Filename.temp_file "totem" ".chaos.json" in
  Runner.write_counterexample ~path
    {
      Runner.cx_campaign = s.Runner.minimized;
      cx_monitor = broken_monitor;
      cx_violation = Some v';
      cx_shrunk = true;
      cx_history = Runner.history_json r;
    };
  Alcotest.(check bool) "flight recorder captured history" true
    (r.Runner.history <> []);
  let outcome = Runner.replay_file ~path in
  Sys.remove path;
  match outcome with
  | Ok (Runner.Reproduced _) -> ()
  | Ok (Runner.Diverged (_, why)) -> Alcotest.failf "replay diverged: %s" why
  | Ok (Runner.Clean_replay _) -> Alcotest.fail "replay came back clean"
  | Error m -> Alcotest.failf "replay failed: %s" m

let test_liveness_misthreshold_shrinks_to_nothing () =
  (* token_gap = 0 condemns any instant without a token reception: the
     fault schedule is irrelevant, so ddmin must strip it entirely. *)
  let monitor =
    { Invariant.default with Invariant.token_gap = Some Vtime.zero }
  in
  let campaign = Campaign.random ~seed:3 () in
  match (Runner.run ~monitor campaign).Runner.violations with
  | [] -> Alcotest.fail "zero token gap must fire"
  | v :: _ ->
    Alcotest.(check string) "liveness" Invariant.inv_liveness v.Invariant.invariant;
    let s = Runner.shrink ~monitor campaign v in
    Alcotest.(check int) "schedule shrinks away" 0 s.Runner.minimized_steps

(* --- determinism ------------------------------------------------------ *)

let dump_run campaign monitor =
  let buf = Buffer.create 4096 in
  let sink time event =
    Buffer.add_string buf (Telemetry.json_of_event time event);
    Buffer.add_char buf '\n'
  in
  let r = Runner.run ~monitor ~sink campaign in
  (r, Buffer.contents buf)

let test_replay_determinism () =
  let campaign = Campaign.random ~seed:2 () in
  let r1, dump1 = dump_run campaign Invariant.default in
  let r2, dump2 = dump_run campaign Invariant.default in
  Alcotest.(check int) "same event count" r1.Runner.events r2.Runner.events;
  Alcotest.(check int) "same deliveries" r1.Runner.delivered r2.Runner.delivered;
  Alcotest.(check bool) "same violations" true
    (r1.Runner.violations = r2.Runner.violations);
  Alcotest.(check bool)
    (Printf.sprintf "identical telemetry dumps (%d bytes)" (String.length dump1))
    true (String.equal dump1 dump2);
  Alcotest.(check bool) "dump is non-trivial" true (String.length dump1 > 10_000)

let test_stock_campaign_passes () =
  let campaign = Campaign.random ~seed:4 () in
  let monitor =
    {
      Invariant.default with
      Invariant.condemn_within = Some (Vtime.ms 1500);
      lag_limit = Some 100;
    }
  in
  let r = Runner.run ~monitor campaign in
  (match r.Runner.violations with
  | [] -> ()
  | v :: _ ->
    Alcotest.failf "stock campaign violated %a" Invariant.pp_violation v);
  match r.Runner.submitted with
  | Some n -> Alcotest.(check int) "all delivered" n r.Runner.delivered
  | None -> Alcotest.fail "burst campaign must know its submission count"

let tests =
  [
    Alcotest.test_case "flap emits the duty cycle" `Quick test_flap_duty_cycle;
    Alcotest.test_case "rolling partition rotates pairs" `Quick test_rolling_partition;
    Alcotest.test_case "loss ramp climbs then clears" `Quick test_loss_ramp;
    Alcotest.test_case "tolerated matches the fault hypothesis" `Quick test_tolerated;
    Alcotest.test_case "touched nets vs sporadic loss" `Quick test_touched_nets;
    Alcotest.test_case "campaign JSON round trip" `Quick test_json_round_trip;
    Alcotest.test_case "campaign JSON round trip: gray + reinstate" `Quick
      test_json_round_trip_gray;
    Alcotest.test_case "violation -> shrink -> replay round trip" `Slow
      test_shrink_round_trip;
    Alcotest.test_case "liveness mis-threshold shrinks to empty" `Slow
      test_liveness_misthreshold_shrinks_to_nothing;
    Alcotest.test_case "replay determinism (identical dumps)" `Slow
      test_replay_determinism;
    Alcotest.test_case "stock campaign passes armed monitors" `Slow
      test_stock_campaign_passes;
  ]
