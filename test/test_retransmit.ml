open Totem_srp

let test_merge () =
  Alcotest.(check (list int)) "disjoint" [ 1; 2; 3; 4 ]
    (Retransmit.merge [ 1; 3 ] [ 2; 4 ]);
  Alcotest.(check (list int)) "overlap dedup" [ 1; 2; 3 ]
    (Retransmit.merge [ 1; 2 ] [ 2; 3 ]);
  Alcotest.(check (list int)) "empty left" [ 1 ] (Retransmit.merge [] [ 1 ]);
  Alcotest.(check (list int)) "empty right" [ 1 ] (Retransmit.merge [ 1 ] [])

let test_remove () =
  Alcotest.(check (list int)) "served removed" [ 1; 4 ]
    (Retransmit.remove [ 1; 2; 3; 4 ] [ 2; 3 ]);
  Alcotest.(check (list int)) "absent served ignored" [ 1; 2 ]
    (Retransmit.remove [ 1; 2 ] [ 5 ]);
  Alcotest.(check (list int)) "remove all" [] (Retransmit.remove [ 1 ] [ 1 ])

let test_truncate () =
  Alcotest.(check (list int)) "keep lowest" [ 1; 2 ] (Retransmit.truncate 2 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "shorter untouched" [ 1 ] (Retransmit.truncate 5 [ 1 ])

let test_is_sorted_unique () =
  Alcotest.(check bool) "ok" true (Retransmit.is_sorted_unique [ 1; 2; 9 ]);
  Alcotest.(check bool) "dup" false (Retransmit.is_sorted_unique [ 1; 1 ]);
  Alcotest.(check bool) "unsorted" false (Retransmit.is_sorted_unique [ 2; 1 ]);
  Alcotest.(check bool) "empty" true (Retransmit.is_sorted_unique [])

let sorted_list = QCheck.(map (List.sort_uniq compare) (list small_nat))

let qcheck_merge_sorted =
  QCheck.Test.make ~name:"merge keeps sorted-unique" ~count:300
    (QCheck.pair sorted_list sorted_list) (fun (a, b) ->
      Retransmit.is_sorted_unique (Retransmit.merge a b))

let qcheck_merge_is_union =
  QCheck.Test.make ~name:"merge is set union" ~count:300
    (QCheck.pair sorted_list sorted_list) (fun (a, b) ->
      Retransmit.merge a b = List.sort_uniq compare (a @ b))

let qcheck_remove_is_diff =
  QCheck.Test.make ~name:"remove is set difference" ~count:300
    (QCheck.pair sorted_list sorted_list) (fun (a, b) ->
      Retransmit.remove a b = List.filter (fun x -> not (List.mem x b)) a)

(* The operations run on every token rotation over whatever the rtr
   list has grown to; they must not overflow the stack on pathological
   lists (they were rewritten tail-recursively for exactly this). *)
let big n = List.init n (fun i -> i)

let test_deep_lists_no_overflow () =
  let n = 10_000 in
  let evens = List.init n (fun i -> 2 * i) in
  let odds = List.init n (fun i -> (2 * i) + 1) in
  Alcotest.(check int) "merge interleaved" (2 * n)
    (List.length (Retransmit.merge evens odds));
  Alcotest.(check (list int)) "remove everything" []
    (Retransmit.remove (big n) (big n));
  Alcotest.(check int) "truncate keeps prefix" n
    (List.length (Retransmit.truncate n (big (2 * n))));
  Alcotest.(check bool) "truncate prefix is lowest" true
    (Retransmit.truncate n (big (2 * n)) = big n)

let qcheck_truncate_10k =
  QCheck.Test.make ~name:"truncate = sorted prefix, 10k elements" ~count:20
    QCheck.(pair (int_range 0 12_000) (list_of_size (Gen.return 10_000) small_nat))
    (fun (n, raw) ->
      let l = List.sort_uniq compare raw in
      let t = Retransmit.truncate n l in
      List.length t = min n (List.length l)
      && t = List.filteri (fun i _ -> i < n) l)

let qcheck_merge_remove_10k =
  QCheck.Test.make ~name:"remove (merge a b) b = a \\ b, 10k elements" ~count:20
    (QCheck.pair
       (QCheck.map (List.sort_uniq compare)
          QCheck.(list_of_size (Gen.return 10_000) (int_bound 30_000)))
       (QCheck.map (List.sort_uniq compare)
          QCheck.(list_of_size (Gen.return 10_000) (int_bound 30_000))))
    (fun (a, b) ->
      let in_b = Hashtbl.create (List.length b) in
      List.iter (fun x -> Hashtbl.replace in_b x ()) b;
      let expected = List.filter (fun x -> not (Hashtbl.mem in_b x)) a in
      Retransmit.remove (Retransmit.merge a b) b = expected)

let tests =
  [
    Alcotest.test_case "merge" `Quick test_merge;
    Alcotest.test_case "remove" `Quick test_remove;
    Alcotest.test_case "truncate" `Quick test_truncate;
    Alcotest.test_case "is_sorted_unique" `Quick test_is_sorted_unique;
    QCheck_alcotest.to_alcotest qcheck_merge_sorted;
    QCheck_alcotest.to_alcotest qcheck_merge_is_union;
    QCheck_alcotest.to_alcotest qcheck_remove_is_diff;
    Alcotest.test_case "deep lists don't overflow" `Quick
      test_deep_lists_no_overflow;
    QCheck_alcotest.to_alcotest qcheck_truncate_10k;
    QCheck_alcotest.to_alcotest qcheck_merge_remove_10k;
  ]
