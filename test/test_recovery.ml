(* Node crash + reboot (recovery), and the observability surfaces. *)

open Util

let test_crash_then_recover () =
  let t = make ~style:Style.Active () in
  Cluster.start t.cluster;
  Workload.saturate t.cluster ~size:512;
  run_ms t 300;
  Cluster.crash_node t.cluster 2;
  run_ms t 2000;
  Alcotest.(check int) "survivors reformed" 3
    (Array.length (Srp.members (srp_of t 0)));
  Cluster.recover_node t.cluster 2;
  run_ms t 3000;
  Alcotest.(check int) "rebooted node readmitted" 4
    (Array.length (Srp.members (srp_of t 0)));
  Alcotest.(check bool) "same ring on both sides" true
    (Srp.current_ring_id (srp_of t 2) = Srp.current_ring_id (srp_of t 0));
  (* The rebooted node participates again. *)
  let before = Cluster.delivered_at t.cluster 2 in
  run_ms t 500;
  Alcotest.(check bool) "rebooted node delivers traffic" true
    (Cluster.delivered_at t.cluster 2 > before)

let test_recover_requires_crash () =
  let t = make () in
  Cluster.start t.cluster;
  Alcotest.check_raises "recover healthy node"
    (Invalid_argument "Srp.recover: node is not crashed") (fun () ->
      Cluster.recover_node t.cluster 1)

let test_recovery_during_network_fault () =
  (* A node reboot while one network is dead: membership runs over the
     surviving network (joins go everywhere) and the ring reforms. *)
  let t = make ~style:Style.Active () in
  Cluster.start t.cluster;
  Workload.saturate t.cluster ~size:512;
  run_ms t 300;
  Cluster.fail_network t.cluster 0;
  Cluster.crash_node t.cluster 3;
  run_ms t 2000;
  Cluster.recover_node t.cluster 3;
  run_ms t 3000;
  Alcotest.(check int) "all four back despite dead n'" 4
    (Array.length (Srp.members (srp_of t 0)))

let test_net_report () =
  let t = make ~style:Style.Passive () in
  Cluster.start t.cluster;
  Workload.saturate t.cluster ~size:1024;
  run_ms t 500;
  Cluster.fail_network t.cluster 0;
  run_ms t 1500;
  let rows = Totem_cluster.Net_report.collect t.cluster in
  Alcotest.(check int) "one row per network" 2 (List.length rows);
  let r0 = List.nth rows 0 and r1 = List.nth rows 1 in
  Alcotest.(check (list int)) "all nodes marked n'" [ 0; 1; 2; 3 ]
    r0.Totem_cluster.Net_report.marked_faulty_by;
  Alcotest.(check (list int)) "nobody marked n''" []
    r1.Totem_cluster.Net_report.marked_faulty_by;
  Alcotest.(check bool) "n'' carried the traffic" true
    (r1.Totem_cluster.Net_report.frames_sent
    > r0.Totem_cluster.Net_report.frames_sent);
  Alcotest.(check bool) "utilisation sane" true
    (r1.Totem_cluster.Net_report.utilisation > 0.3
    && r1.Totem_cluster.Net_report.utilisation <= 1.0);
  (* Printing must not raise. *)
  Totem_cluster.Net_report.print
    ~out:(Format.make_formatter (fun _ _ _ -> ()) (fun () -> ()))
    t.cluster

let test_latency_percentiles () =
  let t = make () in
  Cluster.start t.cluster;
  let probe = Metrics.install_latency t.cluster in
  Workload.fixed_rate t.cluster ~node:0 ~size:512 ~interval:(Vtime.ms 3)
    ~count:300 ();
  run_ms t 2000;
  let q p =
    match Metrics.latency_quantile probe p with
    | Some v -> v
    | None -> Alcotest.fail "latency probe is empty"
  in
  let p50 = q 0.5 in
  let p99 = q 0.99 in
  Alcotest.(check bool) "p50 <= p99" true (p50 <= p99);
  Alcotest.(check bool) "p99 within LAN bounds" true (p99 > 0.01 && p99 < 100.0)

let tests =
  [
    Alcotest.test_case "crash then recover" `Quick test_crash_then_recover;
    Alcotest.test_case "recover requires crash" `Quick test_recover_requires_crash;
    Alcotest.test_case "recovery during a network fault" `Quick
      test_recovery_during_network_fault;
    Alcotest.test_case "network report" `Quick test_net_report;
    Alcotest.test_case "latency percentiles" `Quick test_latency_percentiles;
  ]
