open Totem_engine

let test_clock_advances () =
  let sim = Sim.create () in
  let seen = ref [] in
  ignore (Sim.schedule sim ~delay:(Vtime.ms 5) (fun () -> seen := 5 :: !seen));
  ignore (Sim.schedule sim ~delay:(Vtime.ms 1) (fun () -> seen := 1 :: !seen));
  Sim.run_until sim (Vtime.ms 10);
  Alcotest.(check (list int)) "order" [ 5; 1 ] !seen;
  Alcotest.(check int) "clock at limit" (Vtime.ms 10) (Sim.now sim)

let test_run_until_boundary () =
  let sim = Sim.create () in
  let fired = ref false in
  ignore (Sim.schedule sim ~delay:(Vtime.ms 10) (fun () -> fired := true));
  Sim.run_until sim (Vtime.ms 10);
  Alcotest.(check bool) "event at the limit fires" true !fired

let test_events_see_their_time () =
  let sim = Sim.create () in
  ignore
    (Sim.schedule sim ~delay:(Vtime.ms 3) (fun () ->
         Alcotest.(check int) "now inside event" (Vtime.ms 3) (Sim.now sim)));
  Sim.run_until sim (Vtime.ms 5)

let test_nested_scheduling () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore
    (Sim.schedule sim ~delay:(Vtime.ms 1) (fun () ->
         log := "outer" :: !log;
         ignore
           (Sim.schedule sim ~delay:(Vtime.ms 1) (fun () ->
                log := "inner" :: !log))));
  Sim.run_until sim (Vtime.ms 5);
  Alcotest.(check (list string)) "nested ran" [ "inner"; "outer" ] !log

let test_cancel () =
  let sim = Sim.create () in
  let fired = ref false in
  let h = Sim.schedule sim ~delay:(Vtime.ms 1) (fun () -> fired := true) in
  Sim.cancel sim h;
  Sim.run_until sim (Vtime.ms 5);
  Alcotest.(check bool) "cancelled never fires" false !fired

let test_past_rejected () =
  let sim = Sim.create () in
  Sim.run_until sim (Vtime.ms 10);
  (* Sim delegates to the pure per-node scheduler, so the error is
     reported by Partition. *)
  Alcotest.check_raises "past"
    (Invalid_argument "Partition.schedule_at: time is in the past") (fun () ->
      ignore (Sim.schedule_at sim ~time:(Vtime.ms 5) ignore));
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Partition.schedule: negative delay") (fun () ->
      ignore (Sim.schedule sim ~delay:(-1) ignore))

let test_step_and_pending () =
  let sim = Sim.create () in
  Alcotest.(check bool) "empty step" false (Sim.step sim);
  ignore (Sim.schedule sim ~delay:1 ignore);
  ignore (Sim.schedule sim ~delay:2 ignore);
  Alcotest.(check int) "pending" 2 (Sim.pending sim);
  Alcotest.(check bool) "step" true (Sim.step sim);
  Alcotest.(check int) "pending after" 1 (Sim.pending sim)

let test_run_drains () =
  let sim = Sim.create () in
  let count = ref 0 in
  for _ = 1 to 10 do
    ignore (Sim.schedule sim ~delay:(Vtime.ms 1) (fun () -> incr count))
  done;
  Sim.run sim;
  Alcotest.(check int) "all ran" 10 !count

let test_run_until_no_events_advances_clock () =
  let sim = Sim.create () in
  Sim.run_until sim (Vtime.sec 2);
  Alcotest.(check int) "clock" (Vtime.sec 2) (Sim.now sim)

let test_timer_and_event_interleave () =
  (* schedule_timer routes through the timing wheel, schedule through
     the heap; at equal times the two must still fire in global
     scheduling order. *)
  let sim = Sim.create () in
  let log = ref [] in
  let note tag () = log := tag :: !log in
  ignore (Sim.schedule sim ~delay:(Vtime.ms 2) (note "event@2"));
  ignore (Sim.schedule_timer sim ~delay:(Vtime.ms 1) (note "timer@1"));
  ignore (Sim.schedule_timer sim ~delay:(Vtime.ms 2) (note "timer@2"));
  ignore (Sim.schedule sim ~delay:(Vtime.ms 1) (note "event@1"));
  Sim.run_until sim (Vtime.ms 5);
  Alcotest.(check (list string)) "global FIFO at equal times"
    [ "timer@1"; "event@1"; "event@2"; "timer@2" ]
    (List.rev !log)

let test_timer_cancel_and_pending () =
  let sim = Sim.create () in
  let fired = ref false in
  let h = Sim.schedule_timer sim ~delay:(Vtime.ms 1) (fun () -> fired := true) in
  ignore (Sim.schedule sim ~delay:(Vtime.ms 2) ignore);
  Alcotest.(check int) "timers count as pending" 2 (Sim.pending sim);
  Sim.cancel sim h;
  Alcotest.(check int) "cancelled timer leaves" 1 (Sim.pending sim);
  Sim.run_until sim (Vtime.ms 5);
  Alcotest.(check bool) "cancelled timer never fires" false !fired

let test_events_processed () =
  let sim = Sim.create () in
  Alcotest.(check int) "starts at zero" 0 (Sim.events_processed sim);
  for _ = 1 to 3 do
    ignore (Sim.schedule sim ~delay:(Vtime.ms 1) ignore)
  done;
  ignore (Sim.schedule_timer sim ~delay:(Vtime.ms 2) ignore);
  let h = Sim.schedule_timer sim ~delay:(Vtime.ms 3) ignore in
  Sim.cancel sim h;
  Sim.run sim;
  Alcotest.(check int) "counts fired events and timers, not cancels" 4
    (Sim.events_processed sim)

let test_split_rng_deterministic () =
  let a = Sim.create ~seed:7 () and b = Sim.create ~seed:7 () in
  Alcotest.(check int64) "same split streams"
    (Rng.int64 (Sim.split_rng a))
    (Rng.int64 (Sim.split_rng b))

let tests =
  [
    Alcotest.test_case "clock advances with events" `Quick test_clock_advances;
    Alcotest.test_case "inclusive limit" `Quick test_run_until_boundary;
    Alcotest.test_case "events see their own time" `Quick test_events_see_their_time;
    Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
    Alcotest.test_case "cancel" `Quick test_cancel;
    Alcotest.test_case "past scheduling rejected" `Quick test_past_rejected;
    Alcotest.test_case "step and pending" `Quick test_step_and_pending;
    Alcotest.test_case "run drains queue" `Quick test_run_drains;
    Alcotest.test_case "run_until without events" `Quick
      test_run_until_no_events_advances_clock;
    Alcotest.test_case "timer/event interleave" `Quick
      test_timer_and_event_interleave;
    Alcotest.test_case "timer cancel and pending" `Quick
      test_timer_cancel_and_pending;
    Alcotest.test_case "events_processed counter" `Quick test_events_processed;
    Alcotest.test_case "split_rng deterministic" `Quick test_split_rng_deterministic;
  ]
