(* Validator for the telemetry export formats, run from the bench-smoke
   alias: checks that a totem_sim trace (--trace-out) is well-formed
   JSONL with monotone timestamps and that a metrics dump
   (--metrics-out) is a well-formed totem-metrics/v1 document. The JSON
   parser is deliberately minimal — no dependency, strict enough to
   catch an exporter emitting unescaped strings, bad numbers, or
   trailing commas.

   Usage: validate_telemetry [--trace FILE] [--metrics FILE] *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

(* --- parser --------------------------------------------------------- *)

type cursor = { text : string; mutable pos : int }

let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let rec go () =
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      go ()
    | _ -> ()
  in
  go ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> bad "at byte %d: expected '%c', found '%c'" c.pos ch x
  | None -> bad "at byte %d: expected '%c', found end of input" c.pos ch

let literal c word value =
  String.iter (fun ch -> expect c ch) word;
  value

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> bad "unterminated string at byte %d" c.pos
    | Some '"' -> advance c
    | Some '\\' ->
      advance c;
      (match peek c with
      | Some '"' -> Buffer.add_char buf '"'
      | Some '\\' -> Buffer.add_char buf '\\'
      | Some '/' -> Buffer.add_char buf '/'
      | Some 'n' -> Buffer.add_char buf '\n'
      | Some 't' -> Buffer.add_char buf '\t'
      | Some 'r' -> Buffer.add_char buf '\r'
      | Some 'b' -> Buffer.add_char buf '\b'
      | Some 'f' -> Buffer.add_char buf '\012'
      | Some 'u' ->
        if c.pos + 4 >= String.length c.text then
          bad "truncated \\u escape at byte %d" c.pos;
        let hex = String.sub c.text (c.pos + 1) 4 in
        (match int_of_string_opt ("0x" ^ hex) with
        | Some code when code < 0x80 -> Buffer.add_char buf (Char.chr code)
        | Some _ -> Buffer.add_char buf '?' (* non-ASCII: presence is enough *)
        | None -> bad "bad \\u escape \"%s\" at byte %d" hex c.pos);
        c.pos <- c.pos + 4
      | _ -> bad "bad escape at byte %d" c.pos);
      advance c;
      go ()
    | Some ch when Char.code ch < 0x20 ->
      bad "unescaped control character 0x%02x at byte %d" (Char.code ch) c.pos
    | Some ch ->
      Buffer.add_char buf ch;
      advance c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let numeric = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec go () =
    match peek c with
    | Some ch when numeric ch ->
      advance c;
      go ()
    | _ -> ()
  in
  go ();
  let s = String.sub c.text start (c.pos - start) in
  match float_of_string_opt s with
  | Some f -> Num f
  | None -> bad "bad number \"%s\" at byte %d" s start

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> bad "unexpected end of input at byte %d" c.pos
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws c;
        let key = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          members ((key, v) :: acc)
        | Some '}' ->
          advance c;
          Obj (List.rev ((key, v) :: acc))
        | _ -> bad "expected ',' or '}' at byte %d" c.pos
      in
      members []
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      Arr []
    end
    else begin
      let rec elements acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          elements (v :: acc)
        | Some ']' ->
          advance c;
          Arr (List.rev (v :: acc))
        | _ -> bad "expected ',' or ']' at byte %d" c.pos
      in
      elements []
    end
  | Some '"' -> Str (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> parse_number c

let parse_document text =
  let c = { text; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length text then
    bad "trailing garbage at byte %d" c.pos;
  v

(* --- validation ----------------------------------------------------- *)

let field obj name =
  match obj with
  | Obj kvs -> List.assoc_opt name kvs
  | _ -> None

let require_num obj name where =
  match field obj name with
  | Some (Num f) -> f
  | Some _ -> bad "%s: \"%s\" is not a number" where name
  | None -> bad "%s: missing \"%s\"" where name

let require_str obj name where =
  match field obj name with
  | Some (Str s) -> s
  | Some _ -> bad "%s: \"%s\" is not a string" where name
  | None -> bad "%s: missing \"%s\"" where name

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Every line an object carrying at least t_ns + type, timestamps
   monotone non-decreasing (the trace is emitted in simulation order). *)
let validate_trace path =
  let ic = open_in path in
  let lines = ref 0 and last_t = ref neg_infinity in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then begin
         incr lines;
         let where = Printf.sprintf "%s:%d" path !lines in
         let v =
           try parse_document line
           with Bad m -> bad "%s: %s" where m
         in
         (match v with Obj _ -> () | _ -> bad "%s: not a JSON object" where);
         let t = require_num v "t_ns" where in
         let _ = require_str v "type" where in
         if t < !last_t then
           bad "%s: t_ns %.0f goes backwards (previous %.0f)" where t !last_t;
         last_t := t
       end
     done
   with End_of_file -> ());
  close_in ic;
  if !lines = 0 then bad "%s: empty trace" path;
  Printf.printf "trace %s: %d events ok\n" path !lines

let validate_bucket where b =
  (match field b "le" with
  | Some (Num _) | Some (Str "inf") -> ()
  | Some _ -> bad "%s: bucket \"le\" is neither a number nor \"inf\"" where
  | None -> bad "%s: bucket missing \"le\"" where);
  ignore (require_num b "n" where)

let validate_metric where m =
  let name = require_str m "name" where in
  let where = Printf.sprintf "%s (metric %s)" where name in
  match require_str m "type" where with
  | "counter" | "gauge" -> ignore (require_num m "value" where)
  | "histogram" ->
    let count = require_num m "count" where in
    (match field m "buckets" with
    | Some (Arr bs) ->
      List.iter (validate_bucket where) bs;
      let total =
        List.fold_left (fun acc b -> acc +. require_num b "n" where) 0.0 bs
      in
      if total <> count then
        bad "%s: bucket counts sum to %.0f, \"count\" says %.0f" where total
          count
    | Some _ -> bad "%s: \"buckets\" is not an array" where
    | None -> bad "%s: missing \"buckets\"" where)
  | ty -> bad "%s: unknown metric type \"%s\"" where ty

let validate_metrics path =
  let v =
    try parse_document (read_file path) with Bad m -> bad "%s: %s" path m
  in
  (match field v "schema" with
  | Some (Str "totem-metrics/v1") -> ()
  | Some (Str s) -> bad "%s: unexpected schema \"%s\"" path s
  | _ -> bad "%s: missing \"schema\"" path);
  match field v "metrics" with
  | Some (Arr ms) ->
    if ms = [] then bad "%s: empty metrics registry" path;
    List.iter (validate_metric path) ms;
    Printf.printf "metrics %s: %d metrics ok\n" path (List.length ms)
  | Some _ -> bad "%s: \"metrics\" is not an array" path
  | None -> bad "%s: missing \"metrics\"" path

let () =
  let rec go = function
    | [] -> ()
    | "--trace" :: path :: rest ->
      validate_trace path;
      go rest
    | "--metrics" :: path :: rest ->
      validate_metrics path;
      go rest
    | arg :: _ ->
      prerr_endline ("usage: validate_telemetry [--trace FILE] [--metrics FILE]");
      prerr_endline ("unknown argument: " ^ arg);
      exit 2
  in
  try go (List.tl (Array.to_list Sys.argv))
  with Bad m ->
    prerr_endline ("validate_telemetry: " ^ m);
    exit 1
