(* Compare the replication styles of Sec. 4 head to head.

   Runs the paper's four-node testbed saturated with 1-Kbyte messages
   under no replication, active replication and passive replication
   (plus active-passive on a three-network fabric) and prints the
   throughput and delivery latency of each — a miniature of Figs. 6/8
   at a single message size. *)

module Cluster = Totem_cluster.Cluster
module Config = Totem_cluster.Config
module Workload = Totem_cluster.Workload
module Metrics = Totem_cluster.Metrics
module Report = Totem_cluster.Report
module Style = Totem_rrp.Style
module Vtime = Totem_engine.Vtime

let run ~style ~num_nets ~size =
  let config = Config.make ~num_nodes:4 ~num_nets ~style () in
  let cluster = Cluster.create config in
  Cluster.start cluster;
  Workload.saturate cluster ~size;
  let probe = Metrics.install_latency cluster in
  (* Sample latency with a trickle of stamped messages from node 0. *)
  Workload.fixed_rate cluster ~node:0 ~size ~interval:(Vtime.ms 10) ();
  let tp =
    Metrics.measure_throughput cluster ~warmup:(Vtime.ms 300)
      ~duration:(Vtime.sec 2)
  in
  let lat =
    match Metrics.latency_summary probe with
    | Some s -> Totem_engine.Stats.Summary.mean s
    | None -> Float.nan
  in
  let util = Metrics.network_utilisation cluster ~net:0 in
  (tp, lat, util)

let () =
  let size = 1024 in
  let styles =
    [
      ("no replication", Style.No_replication, 2);
      ("active", Style.Active, 2);
      ("passive", Style.Passive, 2);
      ("active-passive K=2", Style.Active_passive 2, 3);
    ]
  in
  let rows =
    List.map
      (fun (name, style, num_nets) ->
        let tp, lat, util = run ~style ~num_nets ~size in
        {
          Report.label = name;
          cells =
            [|
              tp.Metrics.msgs_per_sec;
              tp.Metrics.kbytes_per_sec;
              lat;
              util *. 100.0;
            |];
        })
      styles
  in
  Report.print_table
    ~title:
      (Printf.sprintf
         "Replication styles, 4 nodes, %d-byte messages, saturating load" size)
    ~columns:[| "msgs/sec"; "KB/sec"; "lat ms"; "net0 util %" |]
    rows
