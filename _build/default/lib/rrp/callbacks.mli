(** Upward wiring from the replication layer.

    The layer is created before the SRP instance that sits on top of it
    (the SRP needs the layer's {!Totem_srp.Lower.t} at construction), so
    these callbacks are installed afterwards; until then they are inert
    no-ops. *)

type t = {
  mutable deliver_data : Totem_srp.Wire.packet -> unit;
  mutable deliver_token : Totem_srp.Token.t -> unit;
  mutable deliver_join : Totem_srp.Wire.join -> unit;
  mutable deliver_probe : Totem_srp.Wire.probe -> unit;
  mutable deliver_commit : Totem_srp.Wire.commit -> unit;
  mutable my_aru : unit -> int;
      (** the SRP's all-received-up-to; the passive layer's
          [anyMessagesMissing()] test (Fig. 4) *)
  mutable my_ring_id : unit -> int;
      (** the SRP's current ring — a token for a different ring is
          passed up immediately, since the aru comparison is only
          meaningful within one ring's sequence space *)
  mutable on_fault_report : Fault_report.t -> unit;
}

val create : unit -> t
