(** Passive replication — the algorithms of Figs. 4 and 5.

    Each message and each token is sent over exactly one network,
    assigned round-robin over the non-faulty networks (messages and
    tokens rotate independently). A received token is passed up
    immediately when no message it covers is missing; otherwise it waits
    in the token buffer until the missing messages arrive (the fast path
    of Fig. 4's recvMsg) or a small timer — 10 ms in the paper's
    experiments — expires (progress, P3). Holding the token this way is
    what prevents retransmission requests for merely-delayed messages
    (P1) and resynchronises networks of different speeds (P2).

    Health monitoring is the M+1 reception-count modules of Fig. 5: one
    per sending node for message traffic plus one for token traffic. A
    network whose count falls more than a threshold behind the best is
    declared faulty (P4); lagging counts are nudged up periodically so
    sporadic losses never accumulate into a false alarm (P5). *)

type t

val create : Layer.base -> t

val lower : t -> Totem_srp.Lower.t

val frame_received : t -> net:Totem_net.Addr.net_id -> Totem_net.Frame.t -> unit

val token_buffered : t -> bool
(** Whether a token is waiting for missing messages — for tests of P1. *)

val message_monitor : t -> sender:Totem_net.Addr.node_id -> Monitor.t option

val token_monitor : t -> Monitor.t
