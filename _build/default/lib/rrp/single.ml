module Srp = Totem_srp

type t = { base : Layer.base }

let create base = { base }

let lower t =
  {
    Srp.Lower.send_data = (fun p -> Layer.send_data_on t.base ~net:0 p);
    send_token = (fun ~dst tok -> Layer.send_token_on t.base ~net:0 ~dst tok);
    send_join = (fun j -> Layer.send_join_on t.base ~net:0 j);
    send_probe = (fun p -> Layer.send_probe_on t.base ~net:0 p);
    send_commit = (fun ~dst cm -> Layer.send_commit_on t.base ~net:0 ~dst cm);
    copies_per_send = (fun () -> 1);
  }

let frame_received t ~net:_ frame =
  let cb = Layer.callbacks t.base in
  match frame.Totem_net.Frame.payload with
  | Srp.Wire.Data p -> cb.Callbacks.deliver_data p
  | Srp.Wire.Tok tok -> cb.Callbacks.deliver_token tok
  | Srp.Wire.Join j -> cb.Callbacks.deliver_join j
  | Srp.Wire.Probe p -> cb.Callbacks.deliver_probe p
  | Srp.Wire.Commit cm -> cb.Callbacks.deliver_commit cm
  | _ -> ()
