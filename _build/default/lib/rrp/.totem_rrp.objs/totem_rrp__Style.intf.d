lib/rrp/style.pp.mli: Ppx_deriving_runtime
