lib/rrp/rrp_config.pp.mli: Totem_engine
