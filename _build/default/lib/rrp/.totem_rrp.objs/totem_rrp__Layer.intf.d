lib/rrp/layer.pp.mli: Callbacks Fault_report Format Rrp_config Totem_engine Totem_net Totem_srp
