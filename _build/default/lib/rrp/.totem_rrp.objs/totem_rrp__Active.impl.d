lib/rrp/active.pp.ml: Array Callbacks Fault_report Layer Option Rrp_config Timer Totem_engine Totem_net Totem_srp
