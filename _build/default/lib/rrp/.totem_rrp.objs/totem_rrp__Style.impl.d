lib/rrp/style.pp.ml: Ppx_deriving_runtime Printf
