lib/rrp/callbacks.pp.mli: Fault_report Totem_srp
