lib/rrp/layer.pp.ml: Array Callbacks Fault_report Format Printf Rrp_config Sim Totem_engine Totem_net Totem_srp Trace
