lib/rrp/callbacks.pp.ml: Fault_report Totem_srp
