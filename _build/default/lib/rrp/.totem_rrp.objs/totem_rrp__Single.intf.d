lib/rrp/single.pp.mli: Layer Totem_net Totem_srp
