lib/rrp/rrp.pp.ml: Active Active_passive Callbacks Fault_report Layer Passive Single Style Totem_net Totem_srp
