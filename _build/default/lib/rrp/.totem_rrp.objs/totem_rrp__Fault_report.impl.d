lib/rrp/fault_report.pp.ml: Format Totem_engine Totem_net
