lib/rrp/rrp.pp.mli: Active Active_passive Fault_report Passive Rrp_config Style Totem_engine Totem_net Totem_srp
