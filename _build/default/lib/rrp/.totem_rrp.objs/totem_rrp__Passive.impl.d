lib/rrp/passive.pp.ml: Callbacks Fault_report Hashtbl Layer List Monitor Option Rrp_config Timer Totem_engine Totem_net Totem_srp
