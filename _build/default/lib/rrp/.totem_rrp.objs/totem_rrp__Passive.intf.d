lib/rrp/passive.pp.mli: Layer Monitor Totem_net Totem_srp
