lib/rrp/active_passive.pp.mli: Layer Totem_net Totem_srp
