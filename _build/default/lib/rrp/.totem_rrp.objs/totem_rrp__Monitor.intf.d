lib/rrp/monitor.pp.mli: Totem_net
