lib/rrp/active.pp.mli: Layer Totem_net Totem_srp
