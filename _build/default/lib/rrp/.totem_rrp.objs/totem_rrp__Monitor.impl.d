lib/rrp/monitor.pp.ml: Array List
