lib/rrp/rrp_config.pp.ml: Totem_engine Vtime
