lib/rrp/single.pp.ml: Callbacks Layer Totem_net Totem_srp
