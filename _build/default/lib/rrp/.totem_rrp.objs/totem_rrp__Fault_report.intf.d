lib/rrp/fault_report.pp.mli: Format Totem_engine Totem_net
