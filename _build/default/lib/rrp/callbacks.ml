type t = {
  mutable deliver_data : Totem_srp.Wire.packet -> unit;
  mutable deliver_token : Totem_srp.Token.t -> unit;
  mutable deliver_join : Totem_srp.Wire.join -> unit;
  mutable deliver_probe : Totem_srp.Wire.probe -> unit;
  mutable deliver_commit : Totem_srp.Wire.commit -> unit;
  mutable my_aru : unit -> int;
  mutable my_ring_id : unit -> int;
  mutable on_fault_report : Fault_report.t -> unit;
}

let create () =
  {
    deliver_data = (fun _ -> ());
    deliver_token = (fun _ -> ());
    deliver_join = (fun _ -> ());
    deliver_probe = (fun _ -> ());
    deliver_commit = (fun _ -> ());
    my_aru = (fun () -> 0);
    my_ring_id = (fun () -> 0);
    on_fault_report = (fun _ -> ());
  }
