(** Fault reports issued to the application (Sec. 3).

    A network fault is transparent to the application's message flow,
    but the RRP "raises an alarm" so an administrator can repair the
    network while the system keeps running. The order in which nodes
    issue reports and the evidence they carry aid diagnosis. *)

type evidence =
  | Token_timeouts of int
      (** active replication: the network failed to deliver this many
          tokens before their timer expired (the problem counter) *)
  | Reception_lag of { source : source; behind : int }
      (** passive replication: the network's reception count for
          [source] fell [behind] the best network's count *)

and source =
  | Token_traffic
  | Message_traffic of Totem_net.Addr.node_id
      (** the monitored sending node (there are M message monitors and
          one token monitor, Sec. 6) *)

type t = {
  time : Totem_engine.Vtime.t;
  reporter : Totem_net.Addr.node_id;
  net : Totem_net.Addr.net_id;
  evidence : evidence;
}

val pp : Format.formatter -> t -> unit
