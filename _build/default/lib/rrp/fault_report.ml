type evidence =
  | Token_timeouts of int
  | Reception_lag of { source : source; behind : int }

and source =
  | Token_traffic
  | Message_traffic of Totem_net.Addr.node_id

type t = {
  time : Totem_engine.Vtime.t;
  reporter : Totem_net.Addr.node_id;
  net : Totem_net.Addr.net_id;
  evidence : evidence;
}

let pp_source ppf = function
  | Token_traffic -> Format.pp_print_string ppf "token traffic"
  | Message_traffic n -> Format.fprintf ppf "messages from %a" Totem_net.Addr.pp_node n

let pp ppf t =
  Format.fprintf ppf "[%a] %a reports %a faulty: " Totem_engine.Vtime.pp t.time
    Totem_net.Addr.pp_node t.reporter Totem_net.Addr.pp_net t.net;
  match t.evidence with
  | Token_timeouts n -> Format.fprintf ppf "%d token timeouts" n
  | Reception_lag { source; behind } ->
    Format.fprintf ppf "%a lagging by %d" pp_source source behind
