(** The network replication styles of Sec. 4. *)

type t =
  | No_replication
      (** the unreplicated baseline: one network, a pass-through layer *)
  | Active
      (** every message and token on all N networks; masks N-1 losses
          with no retransmission delay; bandwidth cost N-fold *)
  | Passive
      (** each message and token on exactly one network, round-robin;
          unreplicated bandwidth cost; fault-free throughput approaches
          the sum of the networks *)
  | Active_passive of int
      (** [Active_passive k]: every send goes to [k] of the N networks,
          round-robin; masks k-1 losses; needs [1 < k < n] *)
[@@deriving show, eq]

val validate : t -> num_nets:int -> (unit, string) result
(** Checks the style is usable with the given network count (e.g.
    active-passive requires at least three networks, Sec. 7). *)

val copies : t -> num_nets:int -> int
(** Copies of each send put on the wire in the fault-free case. *)
