(** The unreplicated baseline: a pass-through layer over network 0.

    This is the "no replication" configuration of Sec. 8's experiments —
    the plain Totem SRP on one Ethernet. *)

type t

val create : Layer.base -> t

val lower : t -> Totem_srp.Lower.t

val frame_received : t -> net:Totem_net.Addr.net_id -> Totem_net.Frame.t -> unit
