(** Active-passive replication — Sec. 7.

    Requires at least three networks. Every message and token is sent
    over K of the N networks (1 < K < N), with the K-window advancing
    round-robin: a node that last used network n^m sends the next unit
    via n^(m+1) .. n^(m+K) (mod N, skipping faulty networks). Up to K-1
    losses are masked without retransmission delay at K/N of active
    replication's bandwidth cost.

    The receive side is the two-stage pipeline the paper describes: the
    first stage is passive replication's reception-count monitors (one
    per sending node plus one for tokens); the second stage is active
    replication's token logic, passing a token up when K copies have
    arrived or its timer expires. Duplicate messages die on the SRP's
    sequence-number filter as usual. *)

type t

val create : Layer.base -> k:int -> t
(** @raise Invalid_argument unless [1 < k < num_nets]. *)

val k : t -> int

val lower : t -> Totem_srp.Lower.t

val frame_received : t -> net:Totem_net.Addr.net_id -> Totem_net.Frame.t -> unit

val token_copies_pending : t -> bool
(** Whether a token is waiting for more copies — for tests. *)
