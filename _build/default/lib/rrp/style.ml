type t =
  | No_replication
  | Active
  | Passive
  | Active_passive of int
[@@deriving show, eq]

let validate t ~num_nets =
  match t with
  | No_replication -> Ok ()
  | Active | Passive ->
    if num_nets >= 1 then Ok () else Error "need at least one network"
  | Active_passive k ->
    if num_nets < 3 then
      Error "active-passive replication requires at least three networks"
    else if k <= 1 || k >= num_nets then
      Error (Printf.sprintf "active-passive K must satisfy 1 < K < N; got K=%d N=%d" k num_nets)
    else Ok ()

let copies t ~num_nets =
  match t with
  | No_replication | Passive -> 1
  | Active -> num_nets
  | Active_passive k -> k
