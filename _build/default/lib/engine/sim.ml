type t = {
  mutable clock : Vtime.t;
  queue : (unit -> unit) Event_queue.t;
  root_rng : Rng.t;
}

type handle = Event_queue.handle

let create ?(seed = 42) () =
  { clock = Vtime.zero; queue = Event_queue.create (); root_rng = Rng.create ~seed }

let now t = t.clock
let rng t = t.root_rng
let split_rng t = Rng.split t.root_rng

let schedule_at t ~time f =
  if Vtime.(time < t.clock) then
    invalid_arg "Sim.schedule_at: time is in the past";
  Event_queue.push t.queue ~time f

let schedule t ~delay f =
  if delay < 0 then invalid_arg "Sim.schedule: negative delay";
  schedule_at t ~time:(Vtime.add t.clock delay) f

let cancel t h = ignore (Event_queue.cancel t.queue h)

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, f) ->
    t.clock <- time;
    f ();
    true

let run_until t limit =
  let rec loop () =
    match Event_queue.peek_time t.queue with
    | Some time when Vtime.(time <= limit) ->
      ignore (step t);
      loop ()
    | Some _ | None -> ()
  in
  loop ();
  t.clock <- Vtime.max t.clock limit

let run t = while step t do () done

let pending t = Event_queue.length t.queue
