type record = {
  time : Vtime.t;
  component : string;
  message : string;
}

type t = {
  sim : Sim.t;
  capacity : int;
  mutable enabled : bool;
  mutable ring : record option array;
  mutable next : int;
  mutable count : int;
}

let create ?(capacity = 4096) sim =
  {
    sim;
    capacity;
    enabled = false;
    ring = Array.make capacity None;
    next = 0;
    count = 0;
  }

let enable t = t.enabled <- true
let disable t = t.enabled <- false
let enabled t = t.enabled

let emit t ~component message =
  if t.enabled then begin
    t.ring.(t.next) <- Some { time = Sim.now t.sim; component; message };
    t.next <- (t.next + 1) mod t.capacity;
    t.count <- min (t.count + 1) t.capacity
  end

let emitf t ~component fmt =
  if t.enabled then
    Format.kasprintf (fun s -> emit t ~component s) fmt
  else Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let records t =
  let out = ref [] in
  let start = (t.next - t.count + t.capacity) mod t.capacity in
  for i = t.count - 1 downto 0 do
    match t.ring.((start + i) mod t.capacity) with
    | Some r -> out := r :: !out
    | None -> ()
  done;
  !out

let find t ~component ~substring =
  let contains haystack needle =
    let hl = String.length haystack and nl = String.length needle in
    let rec at i = i + nl <= hl && (String.sub haystack i nl = needle || at (i + 1)) in
    nl = 0 || at 0
  in
  List.find_opt
    (fun r -> r.component = component && contains r.message substring)
    (records t)

let dump ppf t =
  List.iter
    (fun r ->
      Format.fprintf ppf "[%a] %-12s %s@." Vtime.pp r.time r.component r.message)
    (records t)

let clear t =
  Array.fill t.ring 0 t.capacity None;
  t.next <- 0;
  t.count <- 0
