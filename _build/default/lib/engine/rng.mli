(** Deterministic pseudo-random numbers (SplitMix64).

    Each simulation owns one root generator seeded explicitly; components
    that need independent streams call {!split} so that adding randomness
    to one component never perturbs the draws seen by another. The
    implementation is the SplitMix64 generator of Steele, Lea and Flood,
    which has a 64-bit state, passes BigCrush, and supports cheap
    splitting — ideal for reproducible simulation. *)

type t

val create : seed:int -> t
(** [create ~seed] is a fresh generator. Equal seeds give equal streams. *)

val split : t -> t
(** [split t] draws from [t] and returns a new, statistically independent
    generator. [t] advances. *)

val copy : t -> t
(** [copy t] is a generator with the same state as [t]; both then evolve
    independently. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. @raise Invalid_argument if
    [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val exponential : t -> mean:float -> float
(** [exponential t ~mean] draws from an exponential distribution. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element. @raise Invalid_argument on empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
