type 'a entry = {
  time : Vtime.t;
  tie : int;
  value : 'a;
  mutable dead : bool;
}

type handle = H : 'a entry -> handle

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_tie : int;
  mutable live : int;
}

let create () = { heap = [||]; size = 0; next_tie = 0; live = 0 }

let is_empty t = t.live = 0
let length t = t.live

let precedes a b =
  a.time < b.time || (a.time = b.time && a.tie < b.tie)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if precedes t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && precedes t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && precedes t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let grow t entry =
  let cap = Array.length t.heap in
  if t.size = cap then begin
    let ncap = if cap = 0 then 16 else 2 * cap in
    let nheap = Array.make ncap entry in
    Array.blit t.heap 0 nheap 0 t.size;
    t.heap <- nheap
  end

let push t ~time value =
  let entry = { time; tie = t.next_tie; value; dead = false } in
  t.next_tie <- t.next_tie + 1;
  grow t entry;
  t.heap.(t.size) <- entry;
  t.size <- t.size + 1;
  t.live <- t.live + 1;
  sift_up t (t.size - 1);
  H entry

let cancel t (H entry) =
  if entry.dead then false
  else begin
    entry.dead <- true;
    t.live <- t.live - 1;
    true
  end

let pop_root t =
  let root = t.heap.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.heap.(0) <- t.heap.(t.size);
    sift_down t 0
  end;
  root

let rec pop t =
  if t.size = 0 then None
  else
    let root = pop_root t in
    if root.dead then pop t
    else begin
      (* Mark fired so a later cancel of this handle is a no-op. *)
      root.dead <- true;
      t.live <- t.live - 1;
      Some (root.time, root.value)
    end

let rec peek_time t =
  if t.size = 0 then None
  else if t.heap.(0).dead then begin
    ignore (pop_root t);
    peek_time t
  end
  else Some t.heap.(0).time
