(** Priority queue of timestamped events.

    A binary min-heap keyed on [(time, tie)] where [tie] is a strictly
    increasing insertion counter: events scheduled for the same virtual
    time fire in the order they were scheduled. That stability is what
    makes whole-simulation runs replayable. *)

type 'a t

type handle
(** Identifies a scheduled event so it can be cancelled. *)

val create : unit -> 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int
(** Number of live (non-cancelled) events. *)

val push : 'a t -> time:Vtime.t -> 'a -> handle
(** [push q ~time v] schedules [v] at [time] and returns a handle. *)

val cancel : 'a t -> handle -> bool
(** [cancel q h] removes the event, returning [false] if it already
    fired or was already cancelled. Cancellation is O(1) (lazy): the
    slot is marked dead and skipped on pop. *)

val pop : 'a t -> (Vtime.t * 'a) option
(** Removes and returns the earliest live event. *)

val peek_time : 'a t -> Vtime.t option
(** Time of the earliest live event without removing it. *)
