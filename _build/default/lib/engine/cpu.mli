(** A node's CPU as a serial resource.

    The paper's evaluation shows two distinct bottlenecks: the 100 Mbit/s
    wire (no-replication and active replication) and per-packet protocol
    processing (passive replication, Sec. 8: "the processing time
    associated with detecting and retransmitting missing messages,
    imposing a total order ... determines the maximum throughput").
    Reproducing that crossover requires charging CPU time for every
    packet handled; this module models a single core per node that
    executes charged work strictly serially.

    Work is submitted with a cost; it completes at
    [max(now, free_at) + cost] and the completion callback fires then.
    Queueing is FIFO in virtual time — exactly one piece of work runs at
    a time. *)

type t

val create : Sim.t -> name:string -> t

val submit : t -> cost:Vtime.t -> (unit -> unit) -> unit
(** [submit t ~cost k] charges [cost] of CPU time, then runs [k] at the
    completion instant. [cost] may be zero (runs when the CPU drains). *)

val charge : t -> cost:Vtime.t -> unit
(** Charge time with no completion action (bookkeeping overheads). *)

val free_at : t -> Vtime.t
(** Instant at which all submitted work completes. *)

val busy_time : t -> Vtime.t
(** Total CPU time charged so far. *)

val utilisation : t -> since:Vtime.t -> now:Vtime.t -> float
(** Busy fraction over a window, assuming the window covers all charges. *)
