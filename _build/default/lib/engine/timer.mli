(** One-shot, restartable timers.

    The Totem protocols are built around timers that are started, must
    not be restarted while running, and are stopped when a condition is
    met (e.g. the RRP token timer of Figs. 2 and 4). This module packages
    that pattern so protocol code reads like the paper's pseudocode. *)

type t

val create : Sim.t -> name:string -> callback:(unit -> unit) -> t
(** [create sim ~name ~callback] is a stopped timer. [name] appears in
    error messages. The callback runs with the timer already stopped, so
    it may restart it. *)

val start : t -> Vtime.t -> unit
(** Arms the timer to fire after the given delay.
    @raise Invalid_argument if already running. *)

val start_if_stopped : t -> Vtime.t -> unit
(** Arms the timer unless it is already running ("the token timer is
    never restarted while it is active", Sec. 6). *)

val stop : t -> unit
(** Disarms; no-op if not running. *)

val restart : t -> Vtime.t -> unit
(** [stop] then [start]. *)

val is_running : t -> bool

val fires_at : t -> Vtime.t option
(** Absolute expiry time if running. *)
