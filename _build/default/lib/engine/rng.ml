type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

(* SplitMix64 finalizer: two xor-shift-multiply rounds. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = int64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Int64.to_int truncates to OCaml's 63-bit int, so mask the sign bit
     explicitly; modulo bias is negligible for simulation bounds. *)
  let r = Int64.to_int (int64 t) land max_int in
  r mod bound

let float t bound =
  (* 53 random bits scaled to [0,1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (int64 t) 11) in
  float_of_int bits /. 9007199254740992.0 *. bound

let bool t = Int64.logand (int64 t) 1L = 1L
let bernoulli t p = float t 1.0 < p

let exponential t ~mean =
  let u = float t 1.0 in
  (* Guard against log 0. *)
  let u = if u <= 0.0 then 1e-300 else u in
  -.mean *. log u

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
