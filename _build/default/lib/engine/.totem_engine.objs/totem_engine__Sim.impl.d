lib/engine/sim.pp.ml: Event_queue Rng Vtime
