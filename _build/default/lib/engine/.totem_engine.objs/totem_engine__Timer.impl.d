lib/engine/timer.pp.ml: Option Printf Sim Vtime
