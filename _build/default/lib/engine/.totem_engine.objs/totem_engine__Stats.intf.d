lib/engine/stats.pp.mli: Format
