lib/engine/timer.pp.mli: Sim Vtime
