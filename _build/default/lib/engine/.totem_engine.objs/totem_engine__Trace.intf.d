lib/engine/trace.pp.mli: Format Sim Vtime
