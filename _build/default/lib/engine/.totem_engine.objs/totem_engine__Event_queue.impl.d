lib/engine/event_queue.pp.ml: Array Vtime
