lib/engine/vtime.pp.ml: Float Format Int Stdlib
