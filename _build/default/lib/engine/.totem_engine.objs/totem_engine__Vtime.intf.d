lib/engine/vtime.pp.mli: Format
