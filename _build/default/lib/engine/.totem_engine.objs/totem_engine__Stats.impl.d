lib/engine/stats.pp.ml: Array Format
