lib/engine/rng.pp.ml: Array Int64
