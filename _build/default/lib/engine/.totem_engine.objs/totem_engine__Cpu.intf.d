lib/engine/cpu.pp.mli: Sim Vtime
