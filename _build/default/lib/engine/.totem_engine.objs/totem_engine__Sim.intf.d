lib/engine/sim.pp.mli: Rng Vtime
