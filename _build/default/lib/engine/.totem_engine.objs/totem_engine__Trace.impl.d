lib/engine/trace.pp.ml: Array Format List Sim String Vtime
