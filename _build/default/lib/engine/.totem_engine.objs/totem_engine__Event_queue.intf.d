lib/engine/event_queue.pp.mli: Vtime
