lib/engine/rng.pp.mli:
