lib/engine/cpu.pp.ml: Float Sim Vtime
