(** Lightweight event tracing.

    A bounded ring of [(time, component, message)] records, disabled by
    default so that benchmark runs pay only a branch. Tests enable it to
    assert on protocol event sequences; examples enable it to narrate
    runs. *)

type t

type record = {
  time : Vtime.t;
  component : string;
  message : string;
}

val create : ?capacity:int -> Sim.t -> t
(** Default capacity is 4096 records; older records are overwritten. *)

val enable : t -> unit
val disable : t -> unit
val enabled : t -> bool

val emit : t -> component:string -> string -> unit
(** Records a message if enabled; otherwise free. *)

val emitf :
  t -> component:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formatted variant; the format arguments are only evaluated when
    tracing is enabled. *)

val records : t -> record list
(** Oldest first. *)

val find : t -> component:string -> substring:string -> record option
(** First record from [component] whose message contains [substring]. *)

val dump : Format.formatter -> t -> unit

val clear : t -> unit
