(** Workload generators.

    [saturate] reproduces the paper's measurement condition — "every
    node sent as many messages as the Totem flow control mechanism
    permitted" (Sec. 8) — by installing a pull supplier the SRP drains
    on each token visit. The scheduled generators submit at given times
    and stamp messages with their submission instant so latency can be
    measured end to end. *)

type Totem_srp.Message.data += Stamped of Totem_engine.Vtime.t
(** Submission timestamp, for latency measurement. *)

val saturate : Cluster.t -> size:int -> unit
(** Every node always has a [size]-byte message ready. *)

val saturate_nodes :
  Cluster.t -> nodes:Totem_net.Addr.node_id list -> size:int -> unit

val saturate_mixed :
  Cluster.t -> sizes:int array -> unit
(** Every node always ready, sizes drawn uniformly from [sizes]
    (deterministically, from the simulation's seed). *)

val fixed_rate :
  Cluster.t ->
  node:Totem_net.Addr.node_id ->
  size:int ->
  interval:Totem_engine.Vtime.t ->
  ?count:int ->
  unit ->
  unit
(** Submits one stamped message every [interval], [count] times
    (default: forever). *)

val poisson :
  Cluster.t ->
  node:Totem_net.Addr.node_id ->
  size:int ->
  mean_interval:Totem_engine.Vtime.t ->
  ?count:int ->
  unit ->
  unit

val burst :
  Cluster.t ->
  node:Totem_net.Addr.node_id ->
  size:int ->
  count:int ->
  at:Totem_engine.Vtime.t ->
  unit
(** Submits [count] stamped messages at once at absolute time [at]. *)
