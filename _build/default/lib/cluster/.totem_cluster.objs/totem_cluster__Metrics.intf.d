lib/cluster/metrics.pp.mli: Cluster Totem_engine Totem_net
