lib/cluster/workload.pp.mli: Cluster Totem_engine Totem_net Totem_srp
