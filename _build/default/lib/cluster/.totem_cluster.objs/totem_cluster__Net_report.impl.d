lib/cluster/net_report.pp.ml: Array Cluster Format List Metrics String Totem_net Totem_rrp
