lib/cluster/workload.pp.ml: Array Cluster List Option Rng Sim Totem_engine Totem_srp Vtime
