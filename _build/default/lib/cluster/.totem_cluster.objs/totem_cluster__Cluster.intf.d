lib/cluster/cluster.pp.mli: Config Totem_engine Totem_net Totem_rrp Totem_srp
