lib/cluster/report.pp.ml: Array Buffer Char Format List Printf String
