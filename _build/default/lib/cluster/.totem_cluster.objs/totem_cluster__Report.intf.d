lib/cluster/report.pp.mli: Format
