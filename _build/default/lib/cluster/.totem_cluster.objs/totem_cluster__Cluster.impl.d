lib/cluster/cluster.pp.ml: Array Config Cpu List Printf Sim Totem_engine Totem_net Totem_rrp Totem_srp Trace Vtime
