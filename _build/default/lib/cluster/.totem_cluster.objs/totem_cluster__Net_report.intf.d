lib/cluster/net_report.pp.mli: Cluster Format Totem_net
