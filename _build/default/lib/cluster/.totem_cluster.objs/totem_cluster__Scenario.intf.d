lib/cluster/scenario.pp.mli: Cluster Format Totem_engine Totem_net
