lib/cluster/config.pp.ml: Array Totem_net Totem_rrp Totem_srp
