lib/cluster/config.pp.mli: Totem_net Totem_rrp Totem_srp
