lib/cluster/scenario.pp.ml: Cluster Format List String Totem_engine Totem_net
