lib/cluster/metrics.pp.ml: Array Cluster Stats Totem_engine Totem_net Totem_srp Vtime Workload
