open Totem_engine

type t = {
  element_header_bytes : int;
  packing_enabled : bool;
  window_size : int;
  max_messages_per_token : int;
  token_loss_timeout : Vtime.t;
  token_retransmit_interval : Vtime.t;
  join_interval : Vtime.t;
  consensus_timeout : Vtime.t;
  merge_detect_interval : Vtime.t;
  recovery_grace : Vtime.t;
  cpu_frame_cost : Vtime.t;
  cpu_message_cost : Vtime.t;
  cpu_duplicate_cost : Vtime.t;
  cpu_token_cost : Vtime.t;
  cpu_byte_cost_ns : int;
  token_base_bytes : int;
  token_rtr_entry_bytes : int;
  join_base_bytes : int;
  join_entry_bytes : int;
}

let default =
  {
    element_header_bytes = 12;
    packing_enabled = true;
    window_size = 50;
    max_messages_per_token = 25;
    token_loss_timeout = Vtime.ms 200;
    token_retransmit_interval = Vtime.ms 5;
    join_interval = Vtime.ms 30;
    consensus_timeout = Vtime.ms 80;
    merge_detect_interval = Vtime.ms 400;
    recovery_grace = Vtime.ms 20;
    cpu_frame_cost = Vtime.us 20;
    cpu_message_cost = Vtime.us 34;
    cpu_duplicate_cost = Vtime.us 5;
    cpu_token_cost = Vtime.us 40;
    cpu_byte_cost_ns = 12;
    token_base_bytes = 48;
    token_rtr_entry_bytes = 6;
    join_base_bytes = 24;
    join_entry_bytes = 4;
  }

let frame_cpu_cost t ~payload_bytes =
  Vtime.add t.cpu_frame_cost (Vtime.ns (payload_bytes * t.cpu_byte_cost_ns))

let token_payload_bytes t ~rtr_len =
  min Totem_net.Frame.max_payload_bytes
    (t.token_base_bytes + (rtr_len * t.token_rtr_entry_bytes))

let join_payload_bytes t ~entries =
  min Totem_net.Frame.max_payload_bytes
    (t.join_base_bytes + (entries * t.join_entry_bytes))
