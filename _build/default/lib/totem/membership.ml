module Iset = Set.Make (Int)

let candidates ~me ~joins =
  let senders =
    List.fold_left (fun s (j : Wire.join) -> Iset.add j.sender s) (Iset.singleton me) joins
  in
  let failed =
    List.fold_left
      (fun s (j : Wire.join) -> List.fold_left (fun s n -> Iset.add n s) s j.fail_set)
      Iset.empty joins
  in
  Iset.elements (Iset.diff senders failed)

let representative = function
  | [] -> invalid_arg "Membership.representative: empty candidate set"
  | x :: rest -> List.fold_left min x rest

let form_ring nodes = Array.of_list (List.sort_uniq Int.compare nodes)

let next_on_ring ring ~me =
  let n = Array.length ring in
  let rec find i = if i >= n then raise Not_found else if ring.(i) = me then i else find (i + 1) in
  ring.((find 0 + 1) mod n)

let leader ring =
  if Array.length ring = 0 then invalid_arg "Membership.leader: empty ring";
  ring.(0)

let max_ring_id joins floor =
  List.fold_left (fun acc (j : Wire.join) -> max acc j.max_ring_id) floor joins
