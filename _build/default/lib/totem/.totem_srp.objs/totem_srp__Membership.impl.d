lib/totem/membership.pp.ml: Array Int List Set Wire
