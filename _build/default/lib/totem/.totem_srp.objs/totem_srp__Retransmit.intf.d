lib/totem/retransmit.pp.mli:
