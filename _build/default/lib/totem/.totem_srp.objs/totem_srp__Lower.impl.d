lib/totem/lower.pp.ml: Token Totem_net Wire
