lib/totem/membership.pp.mli: Totem_net Wire
