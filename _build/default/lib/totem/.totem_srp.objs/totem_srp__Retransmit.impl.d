lib/totem/retransmit.pp.ml:
