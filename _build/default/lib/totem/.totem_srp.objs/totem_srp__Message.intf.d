lib/totem/message.pp.mli: Format Totem_net
