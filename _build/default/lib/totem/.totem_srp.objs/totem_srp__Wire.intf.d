lib/totem/wire.pp.mli: Const Message Token Totem_net
