lib/totem/token.pp.ml: Array Const Format List String Totem_net
