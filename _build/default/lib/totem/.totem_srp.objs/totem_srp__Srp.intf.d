lib/totem/srp.pp.mli: Const Lower Message Token Totem_engine Totem_net Wire
