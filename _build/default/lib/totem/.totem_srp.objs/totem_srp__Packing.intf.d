lib/totem/packing.pp.mli: Const Message Wire
