lib/totem/recv_buffer.pp.ml: Hashtbl List Wire
