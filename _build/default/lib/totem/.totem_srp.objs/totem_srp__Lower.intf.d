lib/totem/lower.pp.mli: Token Totem_net Wire
