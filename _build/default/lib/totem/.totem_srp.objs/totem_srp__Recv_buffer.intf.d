lib/totem/recv_buffer.pp.mli: Wire
