lib/totem/codec.pp.ml: Array Buffer Char Format List Message String Token Wire
