lib/totem/wire.pp.ml: Array Const List Message Token Totem_net
