lib/totem/const.pp.ml: Totem_engine Totem_net Vtime
