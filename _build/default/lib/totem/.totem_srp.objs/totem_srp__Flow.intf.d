lib/totem/flow.pp.mli: Const
