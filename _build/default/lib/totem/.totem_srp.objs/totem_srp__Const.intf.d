lib/totem/const.pp.mli: Totem_engine
