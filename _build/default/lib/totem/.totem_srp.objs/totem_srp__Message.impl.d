lib/totem/message.pp.ml: Format Totem_net
