lib/totem/token.pp.mli: Const Format Totem_net
