lib/totem/packing.pp.ml: Const List Message Totem_net Wire
