lib/totem/flow.pp.ml: Const
