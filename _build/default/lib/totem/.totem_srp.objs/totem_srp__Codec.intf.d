lib/totem/codec.pp.mli: Format Message Token Totem_net Wire
