type t = {
  ring_id : int;
  seq : int;
  rotation : int;
  hops : int;
  aru : int;
  aru_setter : Totem_net.Addr.node_id;
  fcc : int;
  rtr : int list;
  ring : Totem_net.Addr.node_id array;
}

let initial ~ring ~ring_id =
  if Array.length ring = 0 then invalid_arg "Token.initial: empty ring";
  {
    ring_id;
    seq = 0;
    rotation = 0;
    hops = 0;
    aru = 0;
    aru_setter = ring.(0);
    fcc = 0;
    rtr = [];
    ring;
  }

let key t = (t.ring_id, t.hops)

let newer_than t ~than = compare (key t) (key than) > 0

let same_instance a b = key a = key b

let payload_bytes c t = Const.token_payload_bytes c ~rtr_len:(List.length t.rtr)

let pp ppf t =
  Format.fprintf ppf "token(ring=%d rot=%d hop=%d seq=%d aru=%d fcc=%d rtr=[%s])"
    t.ring_id t.rotation t.hops t.seq t.aru t.fcc
    (String.concat ";" (List.map string_of_int t.rtr))
