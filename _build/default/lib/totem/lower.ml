type t = {
  send_data : Wire.packet -> unit;
  send_token : dst:Totem_net.Addr.node_id -> Token.t -> unit;
  send_join : Wire.join -> unit;
  send_probe : Wire.probe -> unit;
  send_commit : dst:Totem_net.Addr.node_id -> Wire.commit -> unit;
  copies_per_send : unit -> int;
}

let null =
  {
    send_data = (fun _ -> ());
    send_token = (fun ~dst:_ _ -> ());
    send_join = (fun _ -> ());
    send_probe = (fun _ -> ());
    send_commit = (fun ~dst:_ _ -> ());
    copies_per_send = (fun () -> 1);
  }
