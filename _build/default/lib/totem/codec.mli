(** Binary wire codec for every Totem protocol unit.

    The simulation passes protocol values by reference for speed, but a
    deployable implementation needs a byte format — and the throughput
    model needs its declared sizes to be honest. This codec provides
    both: {!encode_packet} etc. produce self-describing byte strings,
    and the test suite checks that (a) decoding inverts encoding
    exactly, and (b) the encoded size never exceeds the size the
    simulation charges to the wire (the sizes in {!Const} and
    {!Wire}).

    Format: little-endian fixed-width integers, length-prefixed
    sequences, one tag byte per unit kind. Application payloads are
    opaque to the protocol, so data elements carry their byte count and
    a zero-filled body (a real application would register its own
    payload codec via {!set_data_codec}). *)

type error =
  | Truncated
  | Bad_tag of int
  | Trailing_bytes of int

val pp_error : Format.formatter -> error -> unit

(** Unit kinds, as discriminated by the tag byte. *)
type decoded =
  | Packet of Wire.packet
  | Token of Token.t
  | Join of Wire.join
  | Probe of Wire.probe
  | Commit of Wire.commit

val encode_packet : Wire.packet -> string

val encode_token : Token.t -> string

val encode_join : Wire.join -> string

val encode_probe : Wire.probe -> string

val encode_commit : Wire.commit -> string

val decode : string -> (decoded, error) result
(** Decodes any encoded unit; rejects trailing garbage. *)

val shadow_check : Totem_net.Frame.payload -> (unit, string) result
(** Encodes the payload and decodes the bytes back, reporting any
    mismatch — a live validation harness for the codec: run it on every
    frame of a simulated cluster and the byte format is exercised by
    real protocol traffic, membership and recovery included. *)

val set_data_codec :
  encode:(Message.data -> string) -> decode:(string -> Message.data) -> unit
(** Installs an application payload codec. The default encodes every
    payload as its declared size in zero bytes and decodes to
    {!Message.Blob}. *)
