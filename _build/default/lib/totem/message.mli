(** Application-level messages as the Totem stack sees them.

    A message has an origin, a per-origin sequence number (for tracing
    and for end-to-end assertions in tests — the protocol itself orders
    by the ring sequence number), a size in bytes, and an extensible
    data field so applications can attach real content while benchmarks
    carry only sizes. *)

type data = ..
(** Extensible application content. *)

type data += Blob
(** Content-free filler; [size] alone is meaningful. *)

type t = {
  origin : Totem_net.Addr.node_id;
  app_seq : int;  (** per-origin submission counter, starting at 1 *)
  size : int;  (** application payload bytes; may exceed a frame *)
  safe : bool;
      (** delivery guarantee: agreed (false, the default — deliver as
          soon as all predecessors are delivered) or safe (true —
          deliver only once the token's aru proves every ring member
          holds the message, Totem's stronger guarantee) *)
  data : data;
}

val make :
  origin:Totem_net.Addr.node_id ->
  app_seq:int ->
  size:int ->
  ?safe:bool ->
  ?data:data ->
  unit ->
  t
(** @raise Invalid_argument if [size < 0]. *)

val pp : Format.formatter -> t -> unit
