(** The interface the SRP requires of whatever sits below it.

    In the unreplicated system this is one network; in the Totem RRP it
    is the replication layer of Figs. 2 and 4 — "the algorithm forms a
    layer that resides between the Totem SRP and the networks". Keeping
    it first-class is what lets one SRP implementation run over any
    replication style. *)

type t = {
  send_data : Wire.packet -> unit;
      (** broadcast a data packet to all ring members *)
  send_token : dst:Totem_net.Addr.node_id -> Token.t -> unit;
      (** unicast the token to the successor *)
  send_join : Wire.join -> unit;
      (** broadcast a membership Join — sent on every network regardless
          of fault marking, because membership is the last resort *)
  send_probe : Wire.probe -> unit;
      (** broadcast a merge-detect probe; like Joins, on every network *)
  send_commit : dst:Totem_net.Addr.node_id -> Wire.commit -> unit;
      (** unicast the membership commit token to the next proposed
          member; sent on every network (last-resort traffic) *)
  copies_per_send : unit -> int;
      (** how many copies one logical send will put on the wire right
          now (1 unreplicated/passive, non-faulty-network count for
          active, K for active-passive) — the SRP charges send CPU per
          copy *)
}

val null : t
(** Discards everything; for unit tests of the SRP state machine. *)
