(** Retransmission-request list bookkeeping.

    The token carries the sorted list of sequence numbers whose
    retransmission has been requested. These are pure operations on
    sorted, duplicate-free integer lists. *)

val merge : int list -> int list -> int list
(** Sorted union. *)

val remove : int list -> int list -> int list
(** [remove rtr served] drops every element of [served] from [rtr]. *)

val truncate : int -> int list -> int list
(** Keep at most the first (lowest) [n] requests — bounds token growth. *)

val is_sorted_unique : int list -> bool
