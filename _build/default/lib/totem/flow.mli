(** Totem's token-based flow control.

    The token's [fcc] field holds the number of messages broadcast by
    all nodes during the last rotation-sized window: on each visit a
    node replaces its previous contribution with its new one. A node may
    broadcast at most [window_size - (fcc - its own previous
    contribution)] messages, and never more than
    [max_messages_per_token]. This bounds the traffic in flight to
    roughly one window, which is what lets Totem run an Ethernet near
    saturation without receive-buffer collapse (Sec. 2).

    The raw window rule can lock a saturated ring into an unfair fixed
    point that starves the last nodes entirely, so the allowance is
    floored at the node's fair share of the window ([window / members]);
    the transient overshoot this permits is at most one fair share and
    is covered by socket-buffer slack. *)

type t

val create : unit -> t

val allowance : Const.t -> t -> fcc:int -> members:int -> int
(** Messages this node may broadcast on this token visit. *)

val contribute : t -> fcc:int -> sent:int -> int
(** [contribute t ~fcc ~sent] replaces the node's previous contribution
    in [fcc] with [sent], remembers [sent], and returns the new fcc. *)

val previous_contribution : t -> int

val reset : t -> unit
