(** Wire-level protocol units and their frame encodings.

    A {e packet} is the protocol broadcast unit: it owns one ring
    sequence number and carries one or more {e elements} — whole user
    messages packed together, or one fragment of a large user message.
    Tokens and Join messages are the other frame kinds. Frames carry
    these values directly (the simulation does not serialise bytes), but
    every unit knows its exact payload size so that wire occupancy and
    the packing peaks are faithful. *)

type fragment = {
  index : int;  (** 0-based fragment number *)
  count : int;  (** total fragments of the message *)
  bytes : int;  (** payload bytes carried by this fragment *)
}

type element = {
  message : Message.t;
  fragment : fragment option;  (** [None] for an unfragmented message *)
}

val element_bytes : Const.t -> element -> int
(** Bytes the element occupies inside a packet, header included. *)

type packet = {
  ring_id : int;
  seq : int;  (** the ring sequence number, unique per ring *)
  sender : Totem_net.Addr.node_id;  (** broadcaster, not necessarily origin *)
  elements : element list;
}

val packet_payload_bytes : Const.t -> packet -> int

type join = {
  sender : Totem_net.Addr.node_id;
  proc_set : Totem_net.Addr.node_id list;  (** nodes believed reachable *)
  fail_set : Totem_net.Addr.node_id list;  (** nodes declared failed *)
  max_ring_id : int;  (** highest ring id the sender has seen *)
}

val join_payload_bytes : Const.t -> join -> int

type probe = {
  probe_sender : Totem_net.Addr.node_id;
  probe_ring_id : int;
}
(** Merge detection (Corosync's [memb_merge_detect]): operational nodes
    periodically multicast their ring id so that two rings that formed
    during a partition discover each other once the networks heal, even
    if both rings are otherwise idle. *)

type member_info = {
  mi_node : Totem_net.Addr.node_id;
  mi_old_ring : int;  (** the ring the member comes from *)
  mi_aru : int;  (** how far it received on that ring *)
}

type commit = {
  cm_ring_id : int;  (** the new ring being installed *)
  cm_ring : Totem_net.Addr.node_id array;
  cm_round : int;  (** 1 = collecting member info, 2 = distributing it *)
  cm_info : member_info list;
}
(** The commit token (Totem membership): after the gather phase agrees
    on a member set, the representative circulates this around the
    proposed ring — once to collect every member's old-ring position,
    once to distribute the collected list — so that all members can run
    the recovery exchange before the new ring goes operational. *)

(** The frame payloads the Totem stack puts on the wire. *)
type Totem_net.Frame.payload +=
  | Data of packet
  | Tok of Token.t
  | Join of join
  | Probe of probe
  | Commit of commit

val data_frame : Const.t -> src:Totem_net.Addr.node_id -> packet -> Totem_net.Frame.t

val token_frame : Const.t -> src:Totem_net.Addr.node_id -> Token.t -> Totem_net.Frame.t

val join_frame : Const.t -> src:Totem_net.Addr.node_id -> join -> Totem_net.Frame.t

val probe_frame : Const.t -> src:Totem_net.Addr.node_id -> probe -> Totem_net.Frame.t

val commit_payload_bytes : Const.t -> commit -> int

val commit_frame : Const.t -> src:Totem_net.Addr.node_id -> commit -> Totem_net.Frame.t
