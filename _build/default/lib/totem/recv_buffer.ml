type t = {
  packets : (int, Wire.packet) Hashtbl.t;
  mutable aru : int;
  mutable highest : int;
  mutable delivered : int;  (* cursor: all <= delivered handed to app *)
  mutable gc_horizon : int;
}

let create () =
  { packets = Hashtbl.create 256; aru = 0; highest = 0; delivered = 0; gc_horizon = 0 }

let advance_aru t =
  while Hashtbl.mem t.packets (t.aru + 1) do
    t.aru <- t.aru + 1
  done

let store t (p : Wire.packet) =
  if p.seq <= t.gc_horizon || Hashtbl.mem t.packets p.seq then `Duplicate
  else begin
    Hashtbl.replace t.packets p.seq p;
    if p.seq > t.highest then t.highest <- p.seq;
    if p.seq = t.aru + 1 then advance_aru t;
    `New
  end

let has t seq = seq <= t.gc_horizon || Hashtbl.mem t.packets seq

let find t seq = Hashtbl.find_opt t.packets seq

let my_aru t = t.aru

let highest_seen t = t.highest

let missing_up_to t seq =
  let rec gaps i acc =
    if i > seq then List.rev acc
    else if Hashtbl.mem t.packets i then gaps (i + 1) acc
    else gaps (i + 1) (i :: acc)
  in
  gaps (t.aru + 1) []

let pop_deliverable t =
  let rec collect i acc =
    if i > t.aru then List.rev acc
    else
      match Hashtbl.find_opt t.packets i with
      | Some p -> collect (i + 1) (p :: acc)
      | None -> List.rev acc (* unreachable: aru guarantees presence *)
  in
  let out = collect (t.delivered + 1) [] in
  t.delivered <- max t.delivered t.aru;
  out

let gc_below t bound =
  let bound = min bound t.delivered in
  if bound > t.gc_horizon then begin
    for seq = t.gc_horizon + 1 to bound do
      Hashtbl.remove t.packets seq
    done;
    t.gc_horizon <- bound
  end

let stored_count t = Hashtbl.length t.packets

let reset t =
  Hashtbl.reset t.packets;
  t.aru <- 0;
  t.highest <- 0;
  t.delivered <- 0;
  t.gc_horizon <- 0
