(** The receive store: out-of-order packet buffer, gap tracking,
    in-order delivery cursor, and stability garbage collection.

    Sequence numbers on a ring start at 1 (the initial token carries
    [seq = 0]). [my_aru] is the classic Totem "all received up to": the
    highest [n] such that every packet with sequence number [<= n] is
    present. Packets are retained after delivery so retransmission
    requests from other nodes can be served, until the token's stable
    aru shows every node has them. *)

type t

val create : unit -> t

val store : t -> Wire.packet -> [ `New | `Duplicate ]
(** Files a packet under its sequence number. Packets at or below the
    garbage-collection horizon, or already present, are [`Duplicate] —
    this is the sequence-number filter that destroys identical copies
    (Requirement A1). *)

val has : t -> int -> bool

val find : t -> int -> Wire.packet option
(** For serving retransmission requests. *)

val my_aru : t -> int

val highest_seen : t -> int

val missing_up_to : t -> int -> int list
(** [missing_up_to t seq] is the sorted list of gaps in
    [my_aru+1 .. seq] — what this node must put in the token's rtr. *)

val pop_deliverable : t -> Wire.packet list
(** Packets from the delivery cursor up to [my_aru], in sequence order;
    advances the cursor. Each packet is returned exactly once. *)

val gc_below : t -> int -> unit
(** Discards stored packets with sequence number [<= bound]; the bound
    becomes the duplicate horizon. Never discards undelivered packets:
    the effective bound is capped at the delivery cursor. *)

val stored_count : t -> int

val reset : t -> unit
(** Empties everything for a new ring (sequence space restarts). *)
