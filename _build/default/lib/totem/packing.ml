let capacity = Totem_net.Frame.max_payload_bytes

let max_element_body_bytes (c : Const.t) = capacity - c.element_header_bytes

let fragment_count c ~size =
  if size < 0 then invalid_arg "Packing.fragment_count";
  let body = max_element_body_bytes c in
  if size <= body then 1 else (size + body - 1) / body

let elements_of_message c (m : Message.t) : Wire.element list =
  let body = max_element_body_bytes c in
  if m.size <= body then [ { Wire.message = m; fragment = None } ]
  else begin
    let count = fragment_count c ~size:m.size in
    List.init count (fun index ->
        let bytes =
          if index = count - 1 then m.size - (body * (count - 1)) else body
        in
        { Wire.message = m; fragment = Some { Wire.index; count; bytes } })
  end

let pack_elements (c : Const.t) elements =
  if not c.packing_enabled then List.map (fun e -> [ e ]) elements
  else
  (* Greedy order-preserving bin fill. *)
  let flush current packets =
    match current with [] -> packets | es -> List.rev es :: packets
  in
  let rec go current used packets = function
    | [] -> List.rev (flush current packets)
    | e :: rest ->
      let b = Wire.element_bytes c e in
      if used + b <= capacity then go (e :: current) (used + b) packets rest
      else go [ e ] b (flush current packets) rest
  in
  go [] 0 [] elements

let pack c msgs = pack_elements c (List.concat_map (elements_of_message c) msgs)

let packet_count c msgs = List.length (pack c msgs)
