type t = { mutable prev : int }

let create () = { prev = 0 }

let allowance (c : Const.t) t ~fcc ~members =
  let by_window = c.window_size - (fcc - t.prev) in
  let fair_share = c.window_size / max 1 members in
  let floor = min c.max_messages_per_token fair_share in
  max floor (min c.max_messages_per_token by_window) |> max 0

let contribute t ~fcc ~sent =
  let fcc = fcc - t.prev + sent in
  t.prev <- sent;
  max 0 fcc

let previous_contribution t = t.prev

let reset t = t.prev <- 0
