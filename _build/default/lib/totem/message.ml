type data = ..

type data += Blob

type t = {
  origin : Totem_net.Addr.node_id;
  app_seq : int;
  size : int;
  safe : bool;
  data : data;
}

let make ~origin ~app_seq ~size ?(safe = false) ?(data = Blob) () =
  if size < 0 then invalid_arg "Message.make: negative size";
  { origin; app_seq; size; safe; data }

let pp ppf t =
  Format.fprintf ppf "msg(%a #%d %dB%s)" Totem_net.Addr.pp_node t.origin
    t.app_seq t.size
    (if t.safe then " safe" else "")
