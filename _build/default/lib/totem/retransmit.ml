let rec merge a b =
  match (a, b) with
  | [], rest | rest, [] -> rest
  | x :: xs, y :: ys ->
    if x < y then x :: merge xs b
    else if x > y then y :: merge a ys
    else x :: merge xs ys

let rec remove rtr served =
  match (rtr, served) with
  | [], _ -> []
  | rest, [] -> rest
  | x :: xs, y :: ys ->
    if x < y then x :: remove xs served
    else if x = y then remove xs ys
    else remove rtr ys

let truncate n l =
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: xs -> x :: take (n - 1) xs
  in
  take n l

let rec is_sorted_unique = function
  | [] | [ _ ] -> true
  | x :: (y :: _ as rest) -> x < y && is_sorted_unique rest
