type fragment = {
  index : int;
  count : int;
  bytes : int;
}

type element = {
  message : Message.t;
  fragment : fragment option;
}

let element_bytes (c : Const.t) e =
  let body = match e.fragment with
    | None -> e.message.Message.size
    | Some f -> f.bytes
  in
  c.Const.element_header_bytes + body

type packet = {
  ring_id : int;
  seq : int;
  sender : Totem_net.Addr.node_id;
  elements : element list;
}

let packet_payload_bytes c p =
  List.fold_left (fun acc e -> acc + element_bytes c e) 0 p.elements

type join = {
  sender : Totem_net.Addr.node_id;
  proc_set : Totem_net.Addr.node_id list;
  fail_set : Totem_net.Addr.node_id list;
  max_ring_id : int;
}

let join_payload_bytes c j =
  Const.join_payload_bytes c
    ~entries:(List.length j.proc_set + List.length j.fail_set)

type probe = {
  probe_sender : Totem_net.Addr.node_id;
  probe_ring_id : int;
}

type member_info = {
  mi_node : Totem_net.Addr.node_id;
  mi_old_ring : int;
  mi_aru : int;
}

type commit = {
  cm_ring_id : int;
  cm_ring : Totem_net.Addr.node_id array;
  cm_round : int;  (* 1 = collecting member info, 2 = distributing it *)
  cm_info : member_info list;
}

type Totem_net.Frame.payload +=
  | Data of packet
  | Tok of Token.t
  | Join of join
  | Probe of probe
  | Commit of commit

let data_frame c ~src p =
  Totem_net.Frame.make ~src ~payload_bytes:(packet_payload_bytes c p) (Data p)

let token_frame c ~src t =
  Totem_net.Frame.make ~src ~payload_bytes:(Token.payload_bytes c t) (Tok t)

let join_frame c ~src j =
  Totem_net.Frame.make ~src ~payload_bytes:(join_payload_bytes c j) (Join j)

let probe_frame (c : Const.t) ~src p =
  ignore c;
  Totem_net.Frame.make ~src ~payload_bytes:16 (Probe p)

let commit_payload_bytes (c : Const.t) cm =
  min Totem_net.Frame.max_payload_bytes
    (c.Const.join_base_bytes
    + (Array.length cm.cm_ring * c.Const.join_entry_bytes)
    + (List.length cm.cm_info * 12))

let commit_frame c ~src cm =
  Totem_net.Frame.make ~src ~payload_bytes:(commit_payload_bytes c cm) (Commit cm)
