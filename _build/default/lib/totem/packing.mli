(** The message packing and fragmentation algorithm (Sec. 8).

    Small user messages are packed together into one packet so several
    can ride in a single Ethernet frame; messages too large for one
    frame are split into fragments, each filling a packet, with the last
    fragment free to share its packet with subsequent messages. Packing
    is greedy and order-preserving — Totem must broadcast messages in
    submission order. *)

val max_element_body_bytes : Const.t -> int
(** Largest user-message (or fragment) body that fits one packet:
    1424 minus the element header. *)

val fragment_count : Const.t -> size:int -> int
(** Number of fragments a message of [size] bytes needs (1 if it fits). *)

val elements_of_message : Const.t -> Message.t -> Wire.element list
(** The element stream for one message: a singleton for a small message,
    or its fragment elements in index order. *)

val pack_elements : Const.t -> Wire.element list -> Wire.element list list
(** Group an element stream into packet contents, greedily and in order.
    The SRP works at element granularity so that a message larger than
    one flow-control window can cross the ring a few fragments per token
    visit. *)

val pack : Const.t -> Message.t list -> Wire.element list list
(** [pack c msgs] groups the messages' elements into packet contents, in
    order, each group's total {!Wire.element_bytes} at most the frame
    payload capacity. *)

val packet_count : Const.t -> Message.t list -> int
(** [List.length (pack c msgs)] without building the packets. *)
