(** Protocol constants and tunables for the Totem SRP and the cost model.

    Defaults reproduce the paper's testbed: 100 Mbit/s Ethernets, Linux
    2.2 sockets, Pentium II/III-class per-packet processing costs. The
    cost constants were calibrated once against the paper's headline
    number (Sec. 2: > 9,000 one-Kbyte messages per second on a single
    100 Mbit/s Ethernet) and are then held fixed across every experiment
    and replication style. *)

type t = {
  (* --- packing --- *)
  element_header_bytes : int;
      (** per packed user message header inside a packet; 12 bytes, so
          two 700-byte messages fill a 1424-byte frame exactly — the
          source of the paper's 700/1400-byte throughput peaks *)
  packing_enabled : bool;
      (** when false every message (or fragment) rides alone in its
          packet — the ablation that shows what packing buys (Sec. 8) *)
  (* --- flow control --- *)
  window_size : int;  (** global messages per token rotation *)
  max_messages_per_token : int;  (** per-node cap per token visit *)
  (* --- timers --- *)
  token_loss_timeout : Totem_engine.Vtime.t;
      (** no token for this long starts the membership protocol *)
  token_retransmit_interval : Totem_engine.Vtime.t;
      (** period for resending the last token while unacknowledged *)
  join_interval : Totem_engine.Vtime.t;
      (** period for rebroadcasting Join messages while gathering *)
  consensus_timeout : Totem_engine.Vtime.t;
      (** gather window after which the ring is formed from responders *)
  merge_detect_interval : Totem_engine.Vtime.t;
      (** period of the merge-detect probe multicast that lets rings
          formed in a partition find each other after the networks heal
          (Corosync's memb_merge_detect) *)
  recovery_grace : Totem_engine.Vtime.t;
      (** after the representative finishes its own recovery, how long
          it waits before originating the new ring's token, giving the
          other members time to complete the recovery exchange *)
  (* --- CPU cost model --- *)
  cpu_frame_cost : Totem_engine.Vtime.t;
      (** UDP/IP stack traversal per frame, send or receive *)
  cpu_message_cost : Totem_engine.Vtime.t;
      (** ordering/delivery work per user message, send or receive *)
  cpu_duplicate_cost : Totem_engine.Vtime.t;
      (** discarding an already-seen message (sequence-number filter) *)
  cpu_token_cost : Totem_engine.Vtime.t;
      (** fixed part of processing one token visit *)
  cpu_byte_cost_ns : int;
      (** per-payload-byte copy cost (user/kernel crossing), charged on
          every frame sent (per copy) and received — what caps
          large-message throughput when the wire no longer does *)
  (* --- wire sizes of protocol messages --- *)
  token_base_bytes : int;
  token_rtr_entry_bytes : int;
  join_base_bytes : int;
  join_entry_bytes : int;
}

val default : t

val frame_cpu_cost : t -> payload_bytes:int -> Totem_engine.Vtime.t
(** CPU time to push one frame of the given payload through the stack:
    [cpu_frame_cost + payload_bytes * cpu_byte_cost_ns]. *)

val token_payload_bytes : t -> rtr_len:int -> int
(** UDP payload size of a token carrying [rtr_len] retransmission
    requests, clamped to the maximum frame payload. *)

val join_payload_bytes : t -> entries:int -> int
