(** The Totem token.

    The token circulates on the logical ring and carries: the ring
    identifier, the sequence number of the last message broadcast on the
    ring ([seq]), a rotation counter incremented by the ring leader every
    full rotation, the all-received-up-to value [aru] with its setter
    (stability and garbage collection), the flow-control count [fcc],
    and the list of outstanding retransmission requests [rtr].

    The paper's footnote 1 explains that on an idle ring the sequence
    number alone cannot distinguish a fresh token from a retransmitted
    copy, which is why the rotation counter exists. This implementation
    carries the finer-grained [hops] counter (incremented on every
    forward) and derives "is this token new?" from it — the same
    observable behaviour, exact at every hop rather than once per
    rotation. [rotation] is still maintained for monitoring. *)

type t = {
  ring_id : int;
  seq : int;
  rotation : int;  (** completed rotations, maintained by the leader *)
  hops : int;  (** total forwards since the ring formed *)
  aru : int;
  aru_setter : Totem_net.Addr.node_id;
  fcc : int;  (** messages broadcast during the current rotation window *)
  rtr : int list;  (** requested sequence numbers, sorted ascending *)
  ring : Totem_net.Addr.node_id array;
      (** ring membership in token-passing order; carried so that a
          newly formed ring is installed by the token itself (this
          simulation's stand-in for Totem's commit token) *)
}

val initial : ring:Totem_net.Addr.node_id array -> ring_id:int -> t
(** A fresh token for a new ring: [seq = 0], [rotation = 0], [hops = 0],
    empty rtr. *)

val newer_than : t -> than:t -> bool
(** Lexicographic on [(ring_id, hops)] — the "is this a new token, not a
    retransmitted copy?" test used by both the SRP duplicate filter and
    the RRP active-replication algorithm (Fig. 2's [t.seq >
    lastToken.seq] test plus its footnote-1 refinement). *)

val same_instance : t -> t -> bool
(** Same [(ring_id, hops)] — copies of one logical token, as sent over
    different networks or retransmitted. *)

val payload_bytes : Const.t -> t -> int
(** Wire size of this token. *)

val pp : Format.formatter -> t -> unit
