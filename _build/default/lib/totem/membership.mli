(** Pure pieces of the membership protocol.

    The stateful gather/commit machinery lives in {!Srp}; these are the
    deterministic decisions it makes: which nodes form the next ring,
    who leads its installation, and the token-passing order. *)

val candidates :
  me:Totem_net.Addr.node_id ->
  joins:Wire.join list ->
  Totem_net.Addr.node_id list
(** The agreed set: this node plus every Join sender, minus every node
    that appears in any fail set, sorted ascending. *)

val representative : Totem_net.Addr.node_id list -> Totem_net.Addr.node_id
(** Lowest id — the node that creates the new ring's token.
    @raise Invalid_argument on the empty list. *)

val form_ring : Totem_net.Addr.node_id list -> Totem_net.Addr.node_id array
(** Token-passing order: ascending node id. *)

val next_on_ring :
  Totem_net.Addr.node_id array -> me:Totem_net.Addr.node_id -> Totem_net.Addr.node_id
(** Successor of [me]; a singleton ring returns [me] itself.
    @raise Not_found if [me] is not a member. *)

val leader : Totem_net.Addr.node_id array -> Totem_net.Addr.node_id
(** The member that increments the token's rotation counter: ring.(0). *)

val max_ring_id : Wire.join list -> int -> int
(** Highest ring id among the joins and the given floor. *)
