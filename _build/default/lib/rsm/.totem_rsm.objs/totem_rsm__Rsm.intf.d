lib/rsm/rsm.mli: Totem_cluster Totem_net
