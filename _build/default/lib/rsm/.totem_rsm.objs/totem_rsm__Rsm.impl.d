lib/rsm/rsm.ml: Array List Totem_cluster Totem_engine Totem_net Totem_srp
