module Cluster = Totem_cluster.Cluster
module Srp = Totem_srp.Srp
module Message = Totem_srp.Message
module Vtime = Totem_engine.Vtime
module Sim = Totem_engine.Sim

type ('state, 'cmd) spec = {
  initial : 'state;
  apply : 'state -> 'cmd -> 'state;
  cmd_size : 'cmd -> int;
  state_size : 'state -> int;
}

(* All replicated-state-machine traffic rides ordinary ordered messages
   under one extension constructor; the exception inside acts as a
   universal type so one polymorphic library serves any (state, cmd)
   pair without unsafe casts. Replicas of one machine share the [group]
   that holds the embedding. *)
type Message.data += Payload of exn

type ('state, 'cmd) classified =
  | Command of 'cmd
  | Need_state of Totem_net.Addr.node_id  (** requester *)
  | Marker of Totem_net.Addr.node_id  (** responder *)
  | Snapshot of Totem_net.Addr.node_id * 'state * int
      (** responder, state, commands embodied *)

type ('state, 'cmd) group = {
  spec : ('state, 'cmd) spec;
  wrap : ('state, 'cmd) classified -> exn;
  classify : exn -> ('state, 'cmd) classified option;
}

let group (type s c) (spec : (s, c) spec) : (s, c) group =
  let module M = struct
    exception E of (s, c) classified
  end in
  {
    spec;
    wrap = (fun v -> M.E v);
    classify = (function M.E v -> Some v | _ -> None);
  }

type mode =
  | Live
  | Awaiting_marker
  | Awaiting_snapshot  (** marker seen; buffering the commands after it *)

type ('state, 'cmd) t = {
  g : ('state, 'cmd) group;
  cluster : Cluster.t;
  node : Totem_net.Addr.node_id;
  mutable st : 'state;
  mutable applied : int;
  mutable mode : mode;
  mutable responder : Totem_net.Addr.node_id;  (** whose marker we follow *)
  mutable buffer : 'cmd list;  (** commands after the marker, newest first *)
}

let state t = t.st
let applied t = t.applied
let is_caught_up t = t.mode = Live

let broadcast t ~size v =
  Srp.submit
    (Cluster.srp (Cluster.node t.cluster t.node))
    ~size
    ~data:(Payload (t.g.wrap v))
    ()

let submit t cmd = broadcast t ~size:(t.g.spec.cmd_size cmd) (Command cmd)

let apply_cmd t cmd =
  t.st <- t.g.spec.apply t.st cmd;
  t.applied <- t.applied + 1

(* Re-ask if the transfer stalls (the responder may have crashed between
   the marker and the snapshot). *)
let rec arm_retry t =
  ignore
    (Sim.schedule (Cluster.sim t.cluster) ~delay:(Vtime.ms 500) (fun () ->
         if t.mode <> Live then begin
           broadcast t ~size:8 (Need_state t.node);
           arm_retry t
         end))

let request_state_transfer t =
  if t.mode = Live then begin
    t.mode <- Awaiting_marker;
    t.buffer <- [];
    broadcast t ~size:8 (Need_state t.node);
    arm_retry t
  end

let on_classified t v =
  match v with
  | Command cmd -> (
    match t.mode with
    | Live -> apply_cmd t cmd
    | Awaiting_marker ->
      (* The snapshot will embody this command (it is ordered before the
         marker the responder has yet to send). *)
      ()
    | Awaiting_snapshot -> t.buffer <- cmd :: t.buffer)
  | Need_state requester ->
    (* The lowest-id caught-up member answers; ties produce duplicate
       markers and snapshots, which the requester's responder binding
       filters. *)
    if t.mode = Live && requester <> t.node then begin
      let members = Srp.members (Cluster.srp (Cluster.node t.cluster t.node)) in
      let am_lowest_other =
        Array.for_all (fun m -> m >= t.node || m = requester) members
      in
      if am_lowest_other then broadcast t ~size:8 (Marker t.node)
    end
  | Marker responder -> (
    match t.mode with
    | Live ->
      if responder = t.node then
        (* The marker's delivery position defines the snapshot point;
           our state right now is exactly the state at that position. *)
        broadcast t
          ~size:(t.g.spec.state_size t.st)
          (Snapshot (t.node, t.st, t.applied))
    | Awaiting_marker ->
      t.responder <- responder;
      t.buffer <- [];
      t.mode <- Awaiting_snapshot
    | Awaiting_snapshot -> ())
  | Snapshot (responder, st, n) -> (
    match t.mode with
    | Awaiting_snapshot when responder = t.responder ->
      t.st <- st;
      t.applied <- n;
      List.iter (apply_cmd t) (List.rev t.buffer);
      t.buffer <- [];
      t.mode <- Live
    | _ -> ())

let attach cluster ~group:g ~node =
  let t =
    {
      g;
      cluster;
      node;
      st = g.spec.initial;
      applied = 0;
      mode = Live;
      responder = -1;
      buffer = [];
    }
  in
  Cluster.on_deliver cluster (fun at m ->
      if at = node then
        match m.Message.data with
        | Payload e -> (
          match g.classify e with Some v -> on_classified t v | None -> ())
        | _ -> ());
  t
