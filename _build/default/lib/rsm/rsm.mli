(** Replicated state machines over the Totem RRP.

    The classic construction the paper's introduction motivates
    (back-end servers for financial applications): every replica applies
    the same pure [apply] function to the same totally ordered command
    stream, so all replicas hold the same state — through network
    faults, which the RRP masks, and through node crashes, which Totem
    membership reconfigures around.

    Replicas that join (or reboot and rejoin) catch up by
    ordered-broadcast state transfer: the newcomer broadcasts a request;
    an up-to-date replica broadcasts a {e marker}; because the marker is
    totally ordered, "the state when the marker is delivered" is the
    same at every up-to-date replica, and the responder then broadcasts
    exactly that state. The newcomer buffers commands ordered after the
    marker, installs the snapshot, and replays the buffer — no stop-the-
    world, no divergence window.

    The state must be a pure value: [apply] returns a new state and may
    not mutate the old one (that is what makes the marker capture
    free). *)

type ('state, 'cmd) spec = {
  initial : 'state;
  apply : 'state -> 'cmd -> 'state;  (** must be pure and deterministic *)
  cmd_size : 'cmd -> int;  (** wire accounting for a command *)
  state_size : 'state -> int;  (** wire accounting for a snapshot *)
}

type ('state, 'cmd) group
(** The shared identity of one replicated machine: all replicas must be
    attached with the same group so their commands recognise each
    other on the wire. *)

val group : ('state, 'cmd) spec -> ('state, 'cmd) group

type ('state, 'cmd) t
(** One replica's handle. *)

val attach :
  Totem_cluster.Cluster.t ->
  group:('state, 'cmd) group ->
  node:Totem_net.Addr.node_id ->
  ('state, 'cmd) t
(** Hooks the replica into the cluster's delivery stream. Attach one
    handle per node, all with the same [group], before starting
    traffic. *)

val submit : ('state, 'cmd) t -> 'cmd -> unit
(** Broadcasts a command; it will be applied at every replica in the
    same position of the total order. *)

val state : ('state, 'cmd) t -> 'state

val applied : ('state, 'cmd) t -> int
(** Commands applied so far (snapshot installation counts the commands
    the snapshot embodies). *)

val is_caught_up : ('state, 'cmd) t -> bool
(** False while the replica waits for a state transfer. *)

val request_state_transfer : ('state, 'cmd) t -> unit
(** Marks this replica stale and asks the group for a snapshot. Called
    automatically after {!Totem_cluster.Cluster.recover_node}-style
    rejoins (detected via ring changes); exposed for applications that
    know their state is gone. *)
