type node_id = int [@@deriving show, eq, ord]

type net_id = int [@@deriving show, eq, ord]

let pp_node ppf n = Format.fprintf ppf "N%d" n

let pp_net ppf n =
  if n < 3 then Format.fprintf ppf "n%s" (String.make (n + 1) '\'')
  else Format.fprintf ppf "n#%d" (n + 1)
