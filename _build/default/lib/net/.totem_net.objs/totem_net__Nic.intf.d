lib/net/nic.pp.mli: Addr Frame Totem_engine
