lib/net/addr.pp.mli: Format Ppx_deriving_runtime
