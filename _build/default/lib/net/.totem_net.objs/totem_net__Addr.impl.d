lib/net/addr.pp.ml: Format Ppx_deriving_runtime String
