lib/net/frame.pp.ml: Addr Printf Totem_engine
