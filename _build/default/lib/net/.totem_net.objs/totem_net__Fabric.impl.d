lib/net/fabric.pp.ml: Array Network Nic Printf Sim Totem_engine
