lib/net/frame.pp.mli: Addr Totem_engine
