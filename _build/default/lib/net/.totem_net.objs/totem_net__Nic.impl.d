lib/net/nic.pp.ml: Addr Cpu Frame Sim Stats Totem_engine Vtime
