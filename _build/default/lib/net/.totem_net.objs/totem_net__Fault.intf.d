lib/net/fault.pp.mli: Addr
