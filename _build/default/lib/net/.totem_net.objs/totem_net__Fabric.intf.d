lib/net/fabric.pp.mli: Addr Fault Frame Network Nic Totem_engine
