lib/net/network.pp.ml: Addr Fault Frame Hashtbl Int List Nic Printf Rng Sim Stats Totem_engine Vtime
