lib/net/fault.pp.ml: Addr Hashtbl
