lib/net/network.pp.mli: Addr Fault Frame Nic Totem_engine
