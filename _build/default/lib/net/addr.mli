(** Node and network identifiers.

    Nodes are numbered [0 .. m-1]; redundant networks are numbered
    [0 .. n-1] (the paper writes them n', n'', ...). *)

type node_id = int [@@deriving show, eq, ord]

type net_id = int [@@deriving show, eq, ord]

val pp_node : Format.formatter -> node_id -> unit
(** Prints ["N3"]. *)

val pp_net : Format.formatter -> net_id -> unit
(** Prints the paper's notation: ["n'"], ["n''"], ["n'''"], then ["n#4"]. *)
