bin/calibrate.ml: Array Format List Sys Totem_cluster Totem_engine Totem_rrp Totem_srp
