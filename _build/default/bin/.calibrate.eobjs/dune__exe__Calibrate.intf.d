bin/calibrate.mli:
