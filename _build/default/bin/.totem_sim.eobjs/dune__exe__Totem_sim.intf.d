bin/totem_sim.mli:
