bin/totem_sim.ml: Arg Array Cmd Cmdliner Format Printf String Term Totem_cluster Totem_engine Totem_rrp Totem_srp
