(* Developer tool: sweep the CPU cost-model constants and print the
   throughput of each replication style at representative message sizes.
   Used to calibrate Const.default against the paper's headline numbers
   (Sec. 2 and Sec. 8); see DESIGN.md. Usage:

     calibrate [frame_us] [msg_us] [dup_us] [token_us]            *)

module Cluster = Totem_cluster.Cluster
module Config = Totem_cluster.Config
module Workload = Totem_cluster.Workload
module Metrics = Totem_cluster.Metrics
module Style = Totem_rrp.Style
module Vtime = Totem_engine.Vtime

let run ~const ~style ~num_nets ~size =
  let config = Config.make ~num_nodes:4 ~num_nets ~style ~const () in
  let cluster = Cluster.create config in
  Cluster.start cluster;
  Workload.saturate cluster ~size;
  let tp =
    Metrics.measure_throughput cluster ~warmup:(Vtime.ms 300)
      ~duration:(Vtime.sec 1)
  in
  let util = Metrics.network_utilisation cluster ~net:0 in
  (tp.Metrics.msgs_per_sec, util)

let () =
  let arg i default =
    if Array.length Sys.argv > i then int_of_string Sys.argv.(i) else default
  in
  let d = Totem_srp.Const.default in
  let us v = Vtime.to_float_sec v *. 1e6 |> int_of_float in
  let frame = arg 1 (us d.Totem_srp.Const.cpu_frame_cost)
  and msg = arg 2 (us d.Totem_srp.Const.cpu_message_cost)
  and dup = arg 3 (us d.Totem_srp.Const.cpu_duplicate_cost)
  and token = arg 4 (us d.Totem_srp.Const.cpu_token_cost) in
  let const =
    {
      Totem_srp.Const.default with
      cpu_frame_cost = Vtime.us frame;
      cpu_message_cost = Vtime.us msg;
      cpu_duplicate_cost = Vtime.us dup;
      cpu_token_cost = Vtime.us token;
      cpu_byte_cost_ns = (if Array.length Sys.argv > 5 then int_of_string Sys.argv.(5) else Totem_srp.Const.default.Totem_srp.Const.cpu_byte_cost_ns);
    }
  in
  Format.printf "F=%dus M=%dus D=%dus T=%dus@." frame msg dup token;
  List.iter
    (fun size ->
      let none, util_none =
        run ~const ~style:Style.No_replication ~num_nets:2 ~size
      in
      let active, _ = run ~const ~style:Style.Active ~num_nets:2 ~size in
      let passive, _ = run ~const ~style:Style.Passive ~num_nets:2 ~size in
      Format.printf
        "size=%5d  none=%8.0f (util %.0f%%)  active=%8.0f (%+6.0f)  passive=%8.0f (%+6.0f, %+6.0f KB/s)@."
        size none (100. *. util_none) active (active -. none) passive
        (passive -. none)
        ((passive -. none) *. float_of_int size /. 1024.))
    [ 100; 400; 700; 1024; 1400; 4096; 10240 ]
