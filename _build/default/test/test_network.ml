open Totem_engine
open Totem_net

(* A network with three plain receivers that log (time, src, payload). *)
let make ?(config = Network.default_config) ?(nodes = [ 0; 1; 2 ]) () =
  let sim = Sim.create () in
  let net = Network.create sim ~id:0 ~config ~rng:(Sim.split_rng sim) in
  let logs = Hashtbl.create 8 in
  List.iter
    (fun node ->
      let nic = Nic.create sim ~node ~net:0 () in
      let log = ref [] in
      Hashtbl.replace logs node log;
      Nic.set_receiver nic (fun frame ->
          log := (Sim.now sim, frame.Frame.src, frame.Frame.payload) :: !log);
      Network.attach net nic)
    nodes;
  (sim, net, fun node -> List.rev !(Hashtbl.find logs node))

let frame ~src ?(bytes = 100) tag = Frame.make ~src ~payload_bytes:bytes (Frame.Opaque tag)

let test_broadcast_excludes_sender () =
  let sim, net, log = make () in
  Network.broadcast net (frame ~src:0 "hello");
  Sim.run_until sim (Vtime.ms 1);
  Alcotest.(check int) "self excluded" 0 (List.length (log 0));
  Alcotest.(check int) "node1 got it" 1 (List.length (log 1));
  Alcotest.(check int) "node2 got it" 1 (List.length (log 2))

let test_unicast () =
  let sim, net, log = make () in
  Network.unicast net ~dst:2 (frame ~src:0 "direct");
  Sim.run_until sim (Vtime.ms 1);
  Alcotest.(check int) "only node2" 0 (List.length (log 1));
  Alcotest.(check int) "node2" 1 (List.length (log 2))

let test_latency () =
  let config =
    { Network.default_config with Network.jitter = Vtime.zero; arp_delay = Vtime.zero }
  in
  let sim, net, log = make ~config () in
  Network.broadcast net (frame ~src:0 ~bytes:100 "t");
  Sim.run_until sim (Vtime.ms 1);
  match log 1 with
  | [ (t, _, _) ] ->
    (* serialization of 194+20 bytes = 17120 ns, plus 30 us latency. *)
    Alcotest.(check int) "arrival instant" (17120 + 30_000) t
  | l -> Alcotest.failf "expected 1 frame, got %d" (List.length l)

let test_fifo_per_receiver () =
  let sim, net, log = make () in
  for i = 0 to 9 do
    Network.broadcast net (frame ~src:0 (string_of_int i))
  done;
  Sim.run_until sim (Vtime.ms 5);
  let payloads =
    List.map
      (function _, _, Frame.Opaque s -> s | _ -> "?")
      (log 1)
  in
  Alcotest.(check (list string)) "in order" (List.init 10 string_of_int) payloads

let test_medium_serializes () =
  let sim, net, _log = make () in
  let f = frame ~src:0 ~bytes:1424 "big" in
  Network.broadcast net f;
  Network.broadcast net f;
  (* Two full frames: busy until 2 * 123040 ns. *)
  Alcotest.(check int) "busy_until" 246080 (Network.busy_until net);
  Sim.run_until sim (Vtime.ms 1);
  Alcotest.(check int) "frames counted" 2 (Network.frames_sent net)

let test_loss () =
  let sim, net, log = make () in
  Fault.set_loss_probability (Network.fault net) 1.0;
  Network.broadcast net (frame ~src:0 "gone");
  Sim.run_until sim (Vtime.ms 1);
  Alcotest.(check int) "nothing delivered" 0 (List.length (log 1));
  Alcotest.(check int) "loss counted" 2 (Network.frames_lost net)

let test_down_network_sends_nothing () =
  let sim, net, log = make () in
  Fault.set_down (Network.fault net) true;
  Network.broadcast net (frame ~src:0 "x");
  Sim.run_until sim (Vtime.ms 1);
  Alcotest.(check int) "no frames on wire" 0 (Network.frames_sent net);
  Alcotest.(check int) "nothing delivered" 0 (List.length (log 1))

let test_partial_fault_counted () =
  let sim, net, log = make () in
  Fault.block_recv (Network.fault net) 1;
  Network.broadcast net (frame ~src:0 "x");
  Sim.run_until sim (Vtime.ms 1);
  Alcotest.(check int) "node1 blocked" 0 (List.length (log 1));
  Alcotest.(check int) "node2 fine" 1 (List.length (log 2));
  Alcotest.(check int) "fault counted" 1 (Network.frames_faulted net)

let test_duplicate_attach_rejected () =
  let sim, net, _ = make () in
  let nic = Nic.create sim ~node:1 ~net:0 () in
  Alcotest.check_raises "dup" (Invalid_argument "Network.attach: node 1 already attached")
    (fun () -> Network.attach net nic)

let test_nic_buffer_overflow () =
  let sim = Sim.create () in
  let net =
    Network.create sim ~id:0 ~config:Network.default_config ~rng:(Sim.split_rng sim)
  in
  let sender = Nic.create sim ~node:0 ~net:0 () in
  Network.attach net sender;
  (* Receiver with a tiny buffer and a slow CPU: only what fits is kept. *)
  let cpu = Cpu.create sim ~name:"slow" in
  let nic = Nic.create sim ~node:1 ~net:0 ~buffer_bytes:3000 () in
  let got = ref 0 in
  Nic.set_receiver nic ~cpu ~recv_cost:(fun _ -> Vtime.ms 100) (fun _ -> incr got);
  Network.attach net nic;
  for _ = 1 to 10 do
    Network.broadcast net (frame ~src:0 ~bytes:1000 "x")
  done;
  Sim.run_until sim (Vtime.sec 2);
  Alcotest.(check int) "only buffer-fitting frames processed" 2 !got;
  Alcotest.(check int) "dropped counted" 8 (Nic.frames_dropped_buffer nic);
  Alcotest.(check int) "received counted" 2 (Nic.frames_received nic)

(* Footnote 2 of the paper: the first unicast between a pair waits for
   ARP; later unicasts do not. Broadcasts never do. *)
let test_arp_first_contact () =
  let config =
    { Network.default_config with Network.jitter = Vtime.zero;
      latency = Vtime.zero; arp_delay = Vtime.us 300 }
  in
  let sim, net, log = make ~config () in
  Network.unicast net ~dst:1 (frame ~src:0 ~bytes:100 "first");
  Sim.run_until sim (Vtime.ms 1);
  Network.unicast net ~dst:1 (frame ~src:0 ~bytes:100 "second");
  Sim.run_until sim (Vtime.ms 2);
  (match log 1 with
  | [ (t1, _, _); (t2, _, _) ] ->
    let serialization = 17120 in
    Alcotest.(check int) "first waits for ARP" (serialization + 300_000) t1;
    Alcotest.(check int) "second goes straight through"
      (Vtime.ms 1 + serialization) t2
  | l -> Alcotest.failf "expected 2 frames, got %d" (List.length l));
  (* ARP is per destination: a different receiver pays its own lookup,
     and frames to it can overtake an ARP-delayed frame (the footnote's
     reordering). *)
  Network.unicast net ~dst:1 (frame ~src:2 ~bytes:100 "other-sender");
  Sim.run_until sim (Vtime.ms 3);
  Alcotest.(check int) "per-pair cache" 3 (List.length (log 1))

let tests =
  [
    Alcotest.test_case "broadcast excludes sender" `Quick test_broadcast_excludes_sender;
    Alcotest.test_case "ARP on first contact (footnote 2)" `Quick
      test_arp_first_contact;
    Alcotest.test_case "unicast" `Quick test_unicast;
    Alcotest.test_case "latency model" `Quick test_latency;
    Alcotest.test_case "per-receiver FIFO (Sec. 5 assumption)" `Quick
      test_fifo_per_receiver;
    Alcotest.test_case "shared medium serializes" `Quick test_medium_serializes;
    Alcotest.test_case "sporadic loss" `Quick test_loss;
    Alcotest.test_case "downed network" `Quick test_down_network_sends_nothing;
    Alcotest.test_case "partial fault" `Quick test_partial_fault_counted;
    Alcotest.test_case "duplicate attach rejected" `Quick test_duplicate_attach_rejected;
    Alcotest.test_case "socket buffer overflow drops" `Quick test_nic_buffer_overflow;
  ]
