open Totem_srp

let join ~sender ?(proc = []) ?(fail = []) ?(max_ring = 1) () =
  { Wire.sender; proc_set = proc; fail_set = fail; max_ring_id = max_ring }

let test_candidates () =
  let joins = [ join ~sender:2 (); join ~sender:0 () ] in
  Alcotest.(check (list int)) "me + senders, sorted" [ 0; 1; 2 ]
    (Membership.candidates ~me:1 ~joins)

let test_candidates_fail_set () =
  let joins = [ join ~sender:2 (); join ~sender:3 ~fail:[ 2 ] () ] in
  Alcotest.(check (list int)) "failed excluded" [ 1; 3 ]
    (Membership.candidates ~me:1 ~joins)

let test_candidates_alone () =
  Alcotest.(check (list int)) "just me" [ 5 ] (Membership.candidates ~me:5 ~joins:[])

let test_representative () =
  Alcotest.(check int) "minimum" 1 (Membership.representative [ 3; 1; 2 ]);
  Alcotest.check_raises "empty"
    (Invalid_argument "Membership.representative: empty candidate set") (fun () ->
      ignore (Membership.representative []))

let test_form_ring () =
  Alcotest.(check (array int)) "sorted" [| 0; 2; 7 |] (Membership.form_ring [ 7; 0; 2 ]);
  Alcotest.(check (array int)) "dedup" [| 1; 2 |] (Membership.form_ring [ 2; 1; 2 ])

let test_next_on_ring () =
  let ring = [| 0; 2; 5 |] in
  Alcotest.(check int) "middle" 5 (Membership.next_on_ring ring ~me:2);
  Alcotest.(check int) "wraps" 0 (Membership.next_on_ring ring ~me:5);
  Alcotest.(check int) "singleton loops" 3 (Membership.next_on_ring [| 3 |] ~me:3);
  Alcotest.check_raises "not a member" Not_found (fun () ->
      ignore (Membership.next_on_ring ring ~me:9))

let test_leader () =
  Alcotest.(check int) "first" 0 (Membership.leader [| 0; 2; 5 |])

let test_max_ring_id () =
  let joins = [ join ~sender:0 ~max_ring:7 (); join ~sender:1 ~max_ring:3 () ] in
  Alcotest.(check int) "max of joins" 7 (Membership.max_ring_id joins 2);
  Alcotest.(check int) "floor wins" 9 (Membership.max_ring_id joins 9);
  Alcotest.(check int) "no joins" 4 (Membership.max_ring_id [] 4)

let qcheck_full_ring_rotation =
  QCheck.Test.make ~name:"next_on_ring visits every member exactly once" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 20) (int_range 0 1000))
    (fun nodes ->
      let ring = Membership.form_ring nodes in
      let n = Array.length ring in
      let start = ring.(0) in
      let rec walk current steps acc =
        if steps = n then List.rev acc
        else
          let next = Membership.next_on_ring ring ~me:current in
          walk next (steps + 1) (current :: acc)
      in
      let visited = walk start 0 [] in
      List.sort_uniq compare visited = Array.to_list ring)

let tests =
  [
    Alcotest.test_case "candidates" `Quick test_candidates;
    Alcotest.test_case "candidates respect fail sets" `Quick test_candidates_fail_set;
    Alcotest.test_case "candidates alone" `Quick test_candidates_alone;
    Alcotest.test_case "representative" `Quick test_representative;
    Alcotest.test_case "form_ring" `Quick test_form_ring;
    Alcotest.test_case "next_on_ring" `Quick test_next_on_ring;
    Alcotest.test_case "leader" `Quick test_leader;
    Alcotest.test_case "max_ring_id" `Quick test_max_ring_id;
    QCheck_alcotest.to_alcotest qcheck_full_ring_rotation;
  ]
