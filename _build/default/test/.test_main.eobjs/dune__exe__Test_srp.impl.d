test/test_srp.ml: Alcotest Array Cluster List Srp Style Util Workload
