test/test_cpu.ml: Alcotest Cpu Sim Totem_engine Vtime
