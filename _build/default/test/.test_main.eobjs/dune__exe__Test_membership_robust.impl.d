test/test_membership_robust.ml: Alcotest Array Cluster List Srp Style Util Workload
