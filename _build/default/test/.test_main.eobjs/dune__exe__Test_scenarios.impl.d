test/test_scenarios.ml: Alcotest List Printf Totem_engine Totem_net Totem_rrp Totem_srp
