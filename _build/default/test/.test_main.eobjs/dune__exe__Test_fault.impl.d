test/test_fault.ml: Alcotest Fault List Totem_net
