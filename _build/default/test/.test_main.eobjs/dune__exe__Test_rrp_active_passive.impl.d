test/test_rrp_active_passive.ml: Alcotest Array Cluster List Result Srp Style Totem_rrp Util Workload
