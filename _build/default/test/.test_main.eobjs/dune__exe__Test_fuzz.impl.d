test/test_fuzz.ml: Alcotest Array Cluster List Printf Scenario Srp Style Totem_cluster Totem_engine Totem_rrp Util Vtime
