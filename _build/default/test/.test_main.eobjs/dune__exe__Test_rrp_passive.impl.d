test/test_rrp_passive.ml: Alcotest Array Cluster Config List Message Printf Srp Style Totem_cluster Totem_engine Totem_net Totem_rrp Util Workload
