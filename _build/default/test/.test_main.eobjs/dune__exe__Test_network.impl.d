test/test_network.ml: Alcotest Cpu Fault Frame Hashtbl List Network Nic Sim Totem_engine Totem_net Vtime
