test/test_rrp_active.ml: Alcotest Array Cluster List Option Printf Srp Style Totem_engine Totem_net Totem_rrp Util Workload
