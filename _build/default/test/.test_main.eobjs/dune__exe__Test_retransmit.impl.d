test/test_retransmit.ml: Alcotest List QCheck QCheck_alcotest Retransmit Totem_srp
