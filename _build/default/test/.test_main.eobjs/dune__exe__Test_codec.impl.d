test/test_codec.ml: Alcotest Fun Gen List QCheck QCheck_alcotest String Totem_cluster Totem_engine Totem_rrp Totem_srp
