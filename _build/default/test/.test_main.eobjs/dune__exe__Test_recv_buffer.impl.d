test/test_recv_buffer.ml: Alcotest Array List Message QCheck QCheck_alcotest Recv_buffer Totem_engine Totem_srp Wire
