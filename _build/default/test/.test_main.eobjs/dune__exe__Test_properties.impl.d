test/test_properties.ml: Array Fun Gen List QCheck QCheck_alcotest Totem_engine Totem_net Totem_rrp Totem_srp Util
