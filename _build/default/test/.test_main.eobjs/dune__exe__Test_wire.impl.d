test/test_wire.ml: Alcotest Format String Totem_engine Totem_net Totem_rrp Totem_srp
