test/test_sim.ml: Alcotest Rng Sim Totem_engine Vtime
