test/test_recovery.ml: Alcotest Array Cluster Format List Metrics Srp Style Totem_cluster Util Vtime Workload
