test/test_report.ml: Alcotest Buffer Format String Totem_cluster
