test/util.ml: Alcotest Array List Totem_cluster Totem_engine Totem_rrp Totem_srp
