test/test_timer.ml: Alcotest Option Sim Timer Totem_engine Vtime
