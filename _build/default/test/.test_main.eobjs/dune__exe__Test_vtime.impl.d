test/test_vtime.ml: Alcotest Format Totem_engine Vtime
