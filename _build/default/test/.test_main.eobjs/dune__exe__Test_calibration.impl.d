test/test_calibration.ml: Alcotest Cluster Metrics Style Util Vtime Workload
