test/test_monitor.ml: Alcotest Monitor Totem_rrp
