test/test_safe_delivery.ml: Alcotest Array Cluster List Message Printf Srp Style Util Vtime
