test/test_srp_unit.ml: Alcotest List Totem_engine Totem_srp
