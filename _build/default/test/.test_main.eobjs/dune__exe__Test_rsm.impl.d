test/test_rsm.ml: Alcotest Array Cluster Style Totem_rsm Util Vtime Workload
