test/test_cluster.ml: Alcotest Array Cluster Config Metrics Result Scenario Srp Style Totem_cluster Totem_engine Totem_net Totem_rrp Util Vtime Workload
