test/test_trace.ml: Alcotest List Sim Totem_engine Trace Vtime
