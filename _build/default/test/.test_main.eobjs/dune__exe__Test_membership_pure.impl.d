test/test_membership_pure.ml: Alcotest Array Gen List Membership QCheck QCheck_alcotest Totem_srp Wire
