test/test_rng.ml: Alcotest Array Fun QCheck QCheck_alcotest Rng Totem_engine
