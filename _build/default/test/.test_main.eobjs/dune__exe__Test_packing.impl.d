test/test_packing.ml: Alcotest Const Gen List Message Packing QCheck QCheck_alcotest Totem_net Totem_srp Wire
