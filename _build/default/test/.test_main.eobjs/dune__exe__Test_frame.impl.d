test/test_frame.ml: Alcotest Frame Totem_net
