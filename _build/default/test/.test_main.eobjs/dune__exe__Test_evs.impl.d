test/test_evs.ml: Alcotest Array Cluster Fun List Message Printf Scenario Style Totem_cluster Totem_engine Util Vtime
