test/test_flow.ml: Alcotest Array Const Flow QCheck QCheck_alcotest Totem_srp
