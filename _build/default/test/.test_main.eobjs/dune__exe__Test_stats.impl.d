test/test_stats.ml: Alcotest List Rng Stats Totem_engine
