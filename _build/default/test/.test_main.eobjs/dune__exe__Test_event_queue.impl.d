test/test_event_queue.ml: Alcotest Event_queue List QCheck QCheck_alcotest Totem_engine
