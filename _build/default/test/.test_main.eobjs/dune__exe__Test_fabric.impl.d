test/test_fabric.ml: Alcotest Fabric Fault Frame List Network Sim Totem_engine Totem_net Vtime
