test/test_token.ml: Alcotest Const Fun List Token Totem_net Totem_srp
