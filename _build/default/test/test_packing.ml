open Totem_srp

let const = Const.default
let capacity = Totem_net.Frame.max_payload_bytes

let msg ?(origin = 0) ~app_seq ~size () = Message.make ~origin ~app_seq ~size ()

let msgs_of_sizes sizes = List.mapi (fun i s -> msg ~app_seq:(i + 1) ~size:s ()) sizes

let packet_bytes elements =
  List.fold_left (fun acc e -> acc + Wire.element_bytes const e) 0 elements

let test_paper_boundaries () =
  (* Two 700-byte messages fill one frame exactly: 2 * (700 + 12) = 1424.
     This is the packing that produces the paper's 700-byte peak. *)
  let packets = Packing.pack const (msgs_of_sizes [ 700; 700 ]) in
  Alcotest.(check int) "two 700B messages -> one packet" 1 (List.length packets);
  Alcotest.(check int) "exactly full" capacity (packet_bytes (List.hd packets));
  (* A 1400-byte message fits one frame (1412 bytes used); 1413 does not. *)
  Alcotest.(check int) "1400B unfragmented" 1
    (Packing.fragment_count const ~size:1400);
  Alcotest.(check int) "max single element" 1412 (Packing.max_element_body_bytes const);
  Alcotest.(check int) "1412 fits" 1 (Packing.fragment_count const ~size:1412);
  Alcotest.(check int) "1413 fragments" 2 (Packing.fragment_count const ~size:1413)

let test_three_small () =
  let packets = Packing.pack const (msgs_of_sizes [ 400; 400; 400 ]) in
  Alcotest.(check int) "3 x 412 = 1236 fits one packet" 1 (List.length packets)

let test_order_preserved () =
  let packets = Packing.pack const (msgs_of_sizes [ 700; 700; 700 ]) in
  let seqs =
    List.concat_map
      (fun es -> List.map (fun e -> e.Wire.message.Message.app_seq) es)
      packets
  in
  Alcotest.(check (list int)) "submission order" [ 1; 2; 3 ] seqs;
  Alcotest.(check int) "two packets" 2 (List.length packets)

let test_fragmentation () =
  let size = 5000 in
  let elements = Packing.elements_of_message const (msg ~app_seq:1 ~size ()) in
  Alcotest.(check int) "fragment count" 4 (List.length elements);
  let total =
    List.fold_left
      (fun acc e ->
        match e.Wire.fragment with
        | Some f -> acc + f.Wire.bytes
        | None -> Alcotest.fail "expected fragment")
      0 elements
  in
  Alcotest.(check int) "bytes conserved" size total;
  List.iteri
    (fun i e ->
      match e.Wire.fragment with
      | Some f ->
        Alcotest.(check int) "index" i f.Wire.index;
        Alcotest.(check int) "count" 4 f.Wire.count
      | None -> Alcotest.fail "fragment expected")
    elements

let test_last_fragment_shares_packet () =
  (* 1500 = 1412 + 88; the 88-byte tail can share a packet with the next
     message. *)
  let packets = Packing.pack const (msgs_of_sizes [ 1500; 200 ]) in
  Alcotest.(check int) "two packets" 2 (List.length packets);
  match packets with
  | [ _first; second ] ->
    Alcotest.(check int) "tail + next message together" 2 (List.length second)
  | _ -> Alcotest.fail "expected two packets"

let test_zero_size () =
  let packets = Packing.pack const (msgs_of_sizes [ 0; 0 ]) in
  Alcotest.(check int) "zero-byte messages pack" 1 (List.length packets);
  Alcotest.(check int) "two elements" 2 (List.length (List.hd packets))

let test_empty () =
  Alcotest.(check int) "no messages, no packets" 0
    (List.length (Packing.pack const []))

let qcheck_capacity =
  QCheck.Test.make ~name:"no packet exceeds the frame payload" ~count:300
    QCheck.(list_of_size (Gen.int_range 0 40) (int_range 0 20_000))
    (fun sizes ->
      let packets = Packing.pack const (msgs_of_sizes sizes) in
      List.for_all (fun es -> packet_bytes es <= capacity) packets)

let qcheck_conservation =
  QCheck.Test.make ~name:"packing conserves every byte and message" ~count:300
    QCheck.(list_of_size (Gen.int_range 0 40) (int_range 0 20_000))
    (fun sizes ->
      let msgs = msgs_of_sizes sizes in
      let packets = Packing.pack const msgs in
      let elements = List.concat packets in
      (* Bytes conserved. *)
      let body e =
        match e.Wire.fragment with
        | None -> e.Wire.message.Message.size
        | Some f -> f.Wire.bytes
      in
      let total = List.fold_left (fun acc e -> acc + body e) 0 elements in
      let expected = List.fold_left ( + ) 0 sizes in
      (* Message order preserved across the element stream (by app_seq,
         with fragments in index order). *)
      let keys =
        List.map
          (fun e ->
            ( e.Wire.message.Message.app_seq,
              match e.Wire.fragment with None -> 0 | Some f -> f.Wire.index ))
          elements
      in
      total = expected && keys = List.sort compare keys)

let qcheck_packet_count_consistent =
  QCheck.Test.make ~name:"packet_count agrees with pack" ~count:200
    QCheck.(list_of_size (Gen.int_range 0 30) (int_range 0 5000))
    (fun sizes ->
      let msgs = msgs_of_sizes sizes in
      Packing.packet_count const msgs = List.length (Packing.pack const msgs))

let tests =
  [
    Alcotest.test_case "paper's 700/1400-byte boundaries" `Quick test_paper_boundaries;
    Alcotest.test_case "three small messages" `Quick test_three_small;
    Alcotest.test_case "order preserved" `Quick test_order_preserved;
    Alcotest.test_case "fragmentation" `Quick test_fragmentation;
    Alcotest.test_case "last fragment shares packet" `Quick
      test_last_fragment_shares_packet;
    Alcotest.test_case "zero-size messages" `Quick test_zero_size;
    Alcotest.test_case "empty input" `Quick test_empty;
    QCheck_alcotest.to_alcotest qcheck_capacity;
    QCheck_alcotest.to_alcotest qcheck_conservation;
    QCheck_alcotest.to_alcotest qcheck_packet_count_consistent;
  ]
