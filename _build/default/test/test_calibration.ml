(* Calibration regression: the throughput model behind Figures 6-9 must
   keep producing the paper's headline numbers and orderings. A change
   that silently shifts the cost model fails here rather than in a
   late bench run. *)

open Util

let measure ~style ~num_nets ~size =
  let t = make ~num_nets ~style () in
  Cluster.start t.cluster;
  Workload.saturate t.cluster ~size;
  let tp =
    Metrics.measure_throughput t.cluster ~warmup:(Vtime.ms 300)
      ~duration:(Vtime.ms 700)
  in
  (tp.Metrics.msgs_per_sec, Metrics.network_utilisation t.cluster ~net:0)

let test_headline_band () =
  let rate, util = measure ~style:Style.No_replication ~num_nets:2 ~size:1024 in
  Alcotest.(check bool) "unreplicated 1KB rate in band (paper: >9000)" true
    (rate > 8_500.0 && rate < 10_500.0);
  Alcotest.(check bool) "utilisation near 90%" true (util > 0.80 && util < 0.95)

let test_style_ordering_at_1k () =
  let none, _ = measure ~style:Style.No_replication ~num_nets:2 ~size:1024 in
  let active, _ = measure ~style:Style.Active ~num_nets:2 ~size:1024 in
  let passive, _ = measure ~style:Style.Passive ~num_nets:2 ~size:1024 in
  Alcotest.(check bool) "active < none < passive" true
    (active < none && none < passive);
  Alcotest.(check bool) "active gap in the paper's band" true
    (none -. active > 500.0 && none -. active < 3_000.0);
  Alcotest.(check bool) "passive gain in the paper's band (KB/s)" true
    (passive -. none > 1_000.0 && passive -. none < 6_000.0)

let test_packing_peak () =
  (* Bandwidth at 700 B beats 400 B: the frame-fill peak. *)
  let r700, _ = measure ~style:Style.No_replication ~num_nets:2 ~size:700 in
  let r400, _ = measure ~style:Style.No_replication ~num_nets:2 ~size:400 in
  Alcotest.(check bool) "700B peak" true (r700 *. 700.0 > r400 *. 400.0)

let tests =
  [
    Alcotest.test_case "headline band (Sec. 2)" `Slow test_headline_band;
    Alcotest.test_case "style ordering at 1KB (Sec. 8)" `Slow
      test_style_ordering_at_1k;
    Alcotest.test_case "packing peak at 700B" `Slow test_packing_peak;
  ]
