(* Active-passive replication (Sec. 7): K copies over N >= 3 networks. *)

open Util
module Rrp = Totem_rrp.Rrp

let start ?(k = 2) ?(num_nets = 3) ?seed () =
  let t = make ~style:(Style.Active_passive k) ~num_nets ?seed () in
  Cluster.start t.cluster;
  t

let test_validation () =
  Alcotest.(check bool) "needs three networks" true
    (Result.is_error (Style.validate (Style.Active_passive 2) ~num_nets:2));
  Alcotest.(check bool) "K must exceed one" true
    (Result.is_error (Style.validate (Style.Active_passive 1) ~num_nets:3));
  Alcotest.(check bool) "K must be under N" true
    (Result.is_error (Style.validate (Style.Active_passive 3) ~num_nets:3));
  Alcotest.(check bool) "K=2 N=3 valid" true
    (Result.is_ok (Style.validate (Style.Active_passive 2) ~num_nets:3))

let test_k_copies_per_send () =
  let t = start () in
  submit_n t ~node:1 ~size:500 30;
  run_ms t 500;
  let rrp1 = rrp_of t 1 in
  let total =
    Rrp.data_sent rrp1 ~net:0 + Rrp.data_sent rrp1 ~net:1 + Rrp.data_sent rrp1 ~net:2
  in
  Alcotest.(check int) "exactly K frames per packet"
    (2 * (Srp.stats (srp_of t 1)).Srp.sent_packets)
    total

let test_round_robin_window () =
  let t = start () in
  Workload.saturate t.cluster ~size:1024;
  run_ms t 1000;
  (* Over many sends the K-window rotation spreads the load evenly. *)
  let rrp1 = rrp_of t 1 in
  let counts = [| Rrp.data_sent rrp1 ~net:0; Rrp.data_sent rrp1 ~net:1;
                  Rrp.data_sent rrp1 ~net:2 |] in
  let mx = Array.fold_left max 0 counts and mn = Array.fold_left min max_int counts in
  Alcotest.(check bool) "busy" true (mn > 100);
  Alcotest.(check bool) "balanced within 5%" true
    (float_of_int (mx - mn) /. float_of_int mx < 0.05)

let test_total_order () =
  let t = start () in
  submit_n t ~node:0 ~size:700 25;
  submit_n t ~node:2 ~size:700 25;
  run_ms t 1000;
  check_delivered_everything t ~expected:50

(* K-1 network failures are masked with no retransmission delay. *)
let test_masks_k_minus_one_losses () =
  let t = start ~seed:9 () in
  (* 30% loss on one network: the second copy masks every loss. *)
  Cluster.set_network_loss t.cluster 1 0.3;
  submit_n t ~node:1 ~size:700 100;
  run_ms t 2000;
  check_delivered_everything t ~expected:100;
  let requested =
    List.fold_left
      (fun acc n -> acc + (Srp.stats (srp_of t n)).Srp.retransmissions_requested)
      0 [ 0; 1; 2; 3 ]
  in
  Alcotest.(check int) "losses masked without retransmission" 0 requested

let test_total_network_failure_masked () =
  let t = start () in
  Workload.saturate t.cluster ~size:1024;
  run_ms t 300;
  Cluster.fail_network t.cluster 2;
  run_ms t 2000;
  let before = Cluster.delivered_at t.cluster 0 in
  run_ms t 1000;
  Alcotest.(check bool) "service continues" true
    (Cluster.delivered_at t.cluster 0 - before > 3000);
  Alcotest.(check int) "no membership change" 1
    (Srp.stats (srp_of t 0)).Srp.ring_changes;
  (* Stage-1 monitors detected the dead network. *)
  Alcotest.(check bool) "n''' marked faulty" true (Rrp.faulty (rrp_of t 0)).(2)

let test_k3_of_4 () =
  let t = make ~style:(Style.Active_passive 3) ~num_nets:4 () in
  Cluster.start t.cluster;
  submit_n t ~node:1 ~size:500 20;
  run_ms t 500;
  check_delivered_everything t ~expected:20;
  let rrp1 = rrp_of t 1 in
  let total =
    Rrp.data_sent rrp1 ~net:0 + Rrp.data_sent rrp1 ~net:1
    + Rrp.data_sent rrp1 ~net:2 + Rrp.data_sent rrp1 ~net:3
  in
  Alcotest.(check int) "three copies per packet"
    (3 * (Srp.stats (srp_of t 1)).Srp.sent_packets)
    total

let tests =
  [
    Alcotest.test_case "style validation (Sec. 7 constraints)" `Quick test_validation;
    Alcotest.test_case "K copies per send" `Quick test_k_copies_per_send;
    Alcotest.test_case "K-window round robin balances load" `Quick
      test_round_robin_window;
    Alcotest.test_case "total order" `Quick test_total_order;
    Alcotest.test_case "masks K-1 losses without retransmission" `Quick
      test_masks_k_minus_one_losses;
    Alcotest.test_case "total failure of one network masked" `Quick
      test_total_network_failure_masked;
    Alcotest.test_case "K=3 of N=4" `Quick test_k3_of_4;
  ]
