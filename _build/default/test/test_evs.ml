(* Extended-virtual-synchrony consistency across configuration changes:
   the commit/recovery exchange must ensure that all members surviving
   from one ring into the next deliver the SAME prefix of the old ring's
   total order — the property a replicated state machine needs to stay
   consistent through reconfigurations.

   Without the recovery exchange, a member that was missing a few
   messages when the ring broke would silently drop them while its peers
   had delivered them: identical commands applied on divergent states. *)

open Util
module Rng = Totem_engine.Rng

(* A deterministic divergence trap: node 3 cannot hear node 0 directly
   (pair-blocked), so it always trails on node 0's messages until a
   retransmission repairs it. Crashing node 0's repair window away and
   forcing a reconfiguration exercises exactly the recovery exchange. *)
let test_trailing_member_catches_up () =
  let t = make ~num_nets:1 ~style:Style.No_replication () in
  Cluster.start t.cluster;
  Cluster.partition t.cluster ~net:0 ~from_nodes:[ 0 ] ~to_nodes:[ 3 ];
  submit_n t ~node:0 ~size:400 12;
  (* Stop the world just after the broadcasts: node 3 has the gap, no
     token visit has served a retransmission yet. *)
  run_ms t 6;
  (* Force a reconfiguration by crashing node 0 — the only change the
     survivors see. Its packets live on in nodes 1 and 2. *)
  Cluster.crash_node t.cluster 0;
  run_ms t 4000;
  (* The survivors reformed; recovery must have brought node 3 level. *)
  let o1 = order t 1 and o2 = order t 2 and o3 = order t 3 in
  Alcotest.(check bool) "nodes 1 and 2 agree" true (o1 = o2);
  Alcotest.(check bool) "node 3 delivered the same prefix" true (o3 = o1);
  Alcotest.(check bool) "the old-ring traffic was not lost" true
    (List.length o1 >= 10)

(* Crash-fuzz: random traffic, random faults, one crash per run. After
   quiescing, every survivor must have delivered the identical
   sequence. *)
let crash_fuzz_one ~seed =
  let rng = Rng.create ~seed in
  let num_nodes = 3 + Rng.int rng 3 in
  let num_nets = 1 + Rng.int rng 2 in
  let style =
    if num_nets = 1 then Style.No_replication
    else Rng.pick rng [| Style.Passive; Style.Active |]
  in
  let t = make ~num_nodes ~num_nets ~style ~seed () in
  Cluster.start t.cluster;
  let submitted_by = Array.make num_nodes 0 in
  for _ = 1 to 4 + Rng.int rng 6 do
    let node = Rng.int rng num_nodes in
    let count = 5 + Rng.int rng 25 in
    Totem_cluster.Workload.burst t.cluster ~node ~size:(64 + Rng.int rng 1200)
      ~count
      ~at:(Vtime.ms (Rng.int rng 800));
    submitted_by.(node) <- submitted_by.(node) + count
  done;
  (* Random loss windows on a non-last network. *)
  if num_nets > 1 then
    Scenario.schedule t.cluster
      [
        (Vtime.ms (Rng.int rng 500), Totem_cluster.Scenario.Set_loss (0, Rng.float rng 0.3));
        (Vtime.ms (500 + Rng.int rng 500), Totem_cluster.Scenario.Set_loss (0, 0.0));
      ];
  let victim = Rng.int rng num_nodes in
  Scenario.schedule t.cluster
    [ (Vtime.ms (100 + Rng.int rng 800), Totem_cluster.Scenario.Crash_node victim) ];
  run_ms t 1200;
  List.iter (fun net -> Cluster.heal_network t.cluster net)
    (List.init num_nets Fun.id);
  run_ms t 8000;
  let survivors = List.filter (fun n -> n <> victim) (List.init num_nodes Fun.id) in
  let reference = order t (List.hd survivors) in
  let ctx = Printf.sprintf "seed=%d victim=%d nodes=%d nets=%d" seed victim num_nodes num_nets in
  List.iter
    (fun n ->
      if order t n <> reference then
        Alcotest.failf "%s: survivor %d diverged (%d vs %d msgs)" ctx n
          (List.length (order t n))
          (List.length reference))
    survivors;
  (* Everything submitted by survivors must have made it (the victim's
     unsent queue may legitimately die with it). *)
  List.iter
    (fun n ->
      let from_n = List.length (List.filter (fun (o, _) -> o = n) reference) in
      if from_n <> submitted_by.(n) then
        Alcotest.failf "%s: %d of node %d's %d messages delivered" ctx from_n n
          submitted_by.(n))
    survivors

let test_crash_fuzz () =
  for seed = 100 to 111 do
    crash_fuzz_one ~seed
  done

(* A replicated counter stays consistent through a crash-driven
   reconfiguration — the end-to-end version of the property. *)
let test_replicated_state_through_crash () =
  let t = make ~num_nets:2 ~style:Style.Active () in
  let states = Array.make 4 0 in
  Cluster.on_deliver t.cluster (fun node m ->
      states.(node) <- (states.(node) * 31) + m.Message.origin + m.Message.app_seq);
  Cluster.start t.cluster;
  for node = 0 to 3 do
    submit_n t ~node ~size:300 25
  done;
  Scenario.schedule t.cluster
    [ (Vtime.ms 15, Totem_cluster.Scenario.Crash_node 1) ];
  run_ms t 5000;
  Alcotest.(check bool) "state hashes equal" true
    (states.(0) = states.(2) && states.(2) = states.(3));
  Alcotest.(check bool) "state advanced" true (states.(0) <> 0)

let tests =
  [
    Alcotest.test_case "trailing member catches up via recovery" `Quick
      test_trailing_member_catches_up;
    Alcotest.test_case "crash fuzz: survivors never diverge" `Slow test_crash_fuzz;
    Alcotest.test_case "replicated state through a crash" `Quick
      test_replicated_state_through_crash;
  ]
