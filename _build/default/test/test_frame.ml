open Totem_net

let test_constants () =
  Alcotest.(check int) "max frame" 1518 Frame.max_frame_bytes;
  Alcotest.(check int) "overhead" 94 Frame.header_overhead_bytes;
  Alcotest.(check int) "max payload (paper Sec. 8)" 1424 Frame.max_payload_bytes;
  Alcotest.(check int) "min frame" 64 Frame.min_frame_bytes

let test_wire_bytes () =
  let f = Frame.make ~src:0 ~payload_bytes:1424 (Frame.Opaque "x") in
  Alcotest.(check int) "full frame" 1518 (Frame.wire_bytes f);
  let small = Frame.make ~src:0 ~payload_bytes:0 (Frame.Opaque "x") in
  Alcotest.(check int) "padded to minimum" 94 (Frame.wire_bytes small);
  let tiny = Frame.make ~src:0 ~payload_bytes:10 (Frame.Opaque "x") in
  Alcotest.(check int) "header+10" 104 (Frame.wire_bytes tiny)

let test_bounds () =
  Alcotest.check_raises "oversize"
    (Invalid_argument "Frame.make: payload 1425 exceeds max 1424") (fun () ->
      ignore (Frame.make ~src:0 ~payload_bytes:1425 (Frame.Opaque "")));
  Alcotest.check_raises "negative"
    (Invalid_argument "Frame.make: negative payload size") (fun () ->
      ignore (Frame.make ~src:0 ~payload_bytes:(-1) (Frame.Opaque "")))

let test_serialization_time () =
  let f = Frame.make ~src:0 ~payload_bytes:1424 (Frame.Opaque "") in
  (* 1518 + 20 preamble/IFG = 1538 bytes = 12304 bits at 100 Mbit/s
     = 123040 ns. *)
  Alcotest.(check int) "100Mbit full frame" 123040
    (Frame.serialization_time ~bandwidth_bps:100_000_000 f);
  Alcotest.(check int) "10Mbit is 10x" 1230400
    (Frame.serialization_time ~bandwidth_bps:10_000_000 f)

let tests =
  [
    Alcotest.test_case "paper constants" `Quick test_constants;
    Alcotest.test_case "wire bytes" `Quick test_wire_bytes;
    Alcotest.test_case "payload bounds" `Quick test_bounds;
    Alcotest.test_case "serialization time" `Quick test_serialization_time;
  ]
