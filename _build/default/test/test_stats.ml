open Totem_engine

let test_counter () =
  let c = Stats.Counter.create () in
  Stats.Counter.incr c;
  Stats.Counter.add c 5;
  Alcotest.(check int) "value" 6 (Stats.Counter.value c);
  Stats.Counter.reset c;
  Alcotest.(check int) "reset" 0 (Stats.Counter.value c)

let test_summary_basics () =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.observe s) [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check int) "count" 4 (Stats.Summary.count s);
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.Summary.mean s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.Summary.min s);
  Alcotest.(check (float 1e-9)) "max" 4.0 (Stats.Summary.max s);
  Alcotest.(check (float 1e-9)) "total" 10.0 (Stats.Summary.total s);
  Alcotest.(check (float 1e-6)) "stddev (sample)" 1.2909944487 (Stats.Summary.stddev s)

let test_summary_empty () =
  let s = Stats.Summary.create () in
  Alcotest.(check (float 0.0)) "mean of empty" 0.0 (Stats.Summary.mean s);
  Alcotest.(check (float 0.0)) "stddev of empty" 0.0 (Stats.Summary.stddev s)

let test_summary_reset () =
  let s = Stats.Summary.create () in
  Stats.Summary.observe s 9.0;
  Stats.Summary.reset s;
  Alcotest.(check int) "count" 0 (Stats.Summary.count s);
  Stats.Summary.observe s 1.0;
  Alcotest.(check (float 1e-9)) "mean after reset" 1.0 (Stats.Summary.mean s)

let test_histogram () =
  let h = Stats.Histogram.create ~buckets:[| 1.0; 10.0; 100.0 |] in
  List.iter (Stats.Histogram.observe h) [ 0.5; 5.0; 5.0; 50.0; 500.0 ];
  Alcotest.(check int) "count" 5 (Stats.Histogram.count h);
  Alcotest.(check (float 1e-9)) "median bucket" 10.0 (Stats.Histogram.quantile h 0.5);
  Alcotest.(check (float 1e-9)) "q0.2" 1.0 (Stats.Histogram.quantile h 0.2);
  Alcotest.(check bool) "q1.0 overflow" true
    (Stats.Histogram.quantile h 1.0 = infinity)

let test_histogram_validation () =
  Alcotest.check_raises "unsorted"
    (Invalid_argument "Histogram.create: bounds must be increasing") (fun () ->
      ignore (Stats.Histogram.create ~buckets:[| 2.0; 1.0 |]))

let test_welford_against_naive () =
  let rng = Rng.create ~seed:4 in
  let values = List.init 1000 (fun _ -> Rng.float rng 100.0) in
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.observe s) values;
  let n = float_of_int (List.length values) in
  let mean = List.fold_left ( +. ) 0.0 values /. n in
  let var =
    List.fold_left (fun acc v -> acc +. ((v -. mean) ** 2.0)) 0.0 values
    /. (n -. 1.0)
  in
  Alcotest.(check (float 1e-6)) "mean" mean (Stats.Summary.mean s);
  Alcotest.(check (float 1e-6)) "stddev" (sqrt var) (Stats.Summary.stddev s)

let tests =
  [
    Alcotest.test_case "counter" `Quick test_counter;
    Alcotest.test_case "summary basics" `Quick test_summary_basics;
    Alcotest.test_case "summary empty" `Quick test_summary_empty;
    Alcotest.test_case "summary reset" `Quick test_summary_reset;
    Alcotest.test_case "histogram quantiles" `Quick test_histogram;
    Alcotest.test_case "histogram validation" `Quick test_histogram_validation;
    Alcotest.test_case "Welford matches naive" `Quick test_welford_against_naive;
  ]
