open Totem_srp

let packet ~seq =
  {
    Wire.ring_id = 1;
    seq;
    sender = 0;
    elements =
      [ { Wire.message = Message.make ~origin:0 ~app_seq:seq ~size:10 (); fragment = None } ];
  }

let test_in_order () =
  let b = Recv_buffer.create () in
  Alcotest.(check int) "aru starts 0" 0 (Recv_buffer.my_aru b);
  ignore (Recv_buffer.store b (packet ~seq:1));
  ignore (Recv_buffer.store b (packet ~seq:2));
  Alcotest.(check int) "aru" 2 (Recv_buffer.my_aru b);
  Alcotest.(check int) "deliverable" 2 (List.length (Recv_buffer.pop_deliverable b));
  Alcotest.(check int) "pop once" 0 (List.length (Recv_buffer.pop_deliverable b))

let test_gap_blocks_delivery () =
  let b = Recv_buffer.create () in
  ignore (Recv_buffer.store b (packet ~seq:1));
  ignore (Recv_buffer.store b (packet ~seq:3));
  Alcotest.(check int) "aru stuck" 1 (Recv_buffer.my_aru b);
  Alcotest.(check int) "highest" 3 (Recv_buffer.highest_seen b);
  Alcotest.(check (list int)) "missing" [ 2 ] (Recv_buffer.missing_up_to b 3);
  Alcotest.(check int) "only seq1 deliverable" 1
    (List.length (Recv_buffer.pop_deliverable b));
  ignore (Recv_buffer.store b (packet ~seq:2));
  Alcotest.(check int) "aru jumps" 3 (Recv_buffer.my_aru b);
  let delivered = Recv_buffer.pop_deliverable b in
  Alcotest.(check (list int)) "2 then 3"
    [ 2; 3 ]
    (List.map (fun p -> p.Wire.seq) delivered)

let test_duplicates () =
  let b = Recv_buffer.create () in
  Alcotest.(check bool) "first new" true (Recv_buffer.store b (packet ~seq:1) = `New);
  Alcotest.(check bool) "second dup" true
    (Recv_buffer.store b (packet ~seq:1) = `Duplicate)

let test_missing_ranges () =
  let b = Recv_buffer.create () in
  ignore (Recv_buffer.store b (packet ~seq:2));
  ignore (Recv_buffer.store b (packet ~seq:5));
  Alcotest.(check (list int)) "gaps" [ 1; 3; 4 ] (Recv_buffer.missing_up_to b 5);
  Alcotest.(check (list int)) "beyond highest" [ 1; 3; 4; 6 ]
    (Recv_buffer.missing_up_to b 6)

let test_gc () =
  let b = Recv_buffer.create () in
  for seq = 1 to 10 do
    ignore (Recv_buffer.store b (packet ~seq))
  done;
  ignore (Recv_buffer.pop_deliverable b);
  Alcotest.(check int) "stored" 10 (Recv_buffer.stored_count b);
  Recv_buffer.gc_below b 4;
  Alcotest.(check int) "gc'd" 6 (Recv_buffer.stored_count b);
  Alcotest.(check bool) "gc'd seqs count as present" true (Recv_buffer.has b 3);
  Alcotest.(check bool) "re-store below horizon is duplicate" true
    (Recv_buffer.store b (packet ~seq:2) = `Duplicate);
  Alcotest.(check bool) "find below horizon gone" true
    (Recv_buffer.find b 2 = None)

let test_gc_never_drops_undelivered () =
  let b = Recv_buffer.create () in
  for seq = 1 to 5 do
    ignore (Recv_buffer.store b (packet ~seq))
  done;
  (* Nothing delivered yet: gc must refuse. *)
  Recv_buffer.gc_below b 5;
  Alcotest.(check int) "all retained" 5 (Recv_buffer.stored_count b);
  ignore (Recv_buffer.pop_deliverable b);
  Recv_buffer.gc_below b 5;
  Alcotest.(check int) "now gone" 0 (Recv_buffer.stored_count b)

let test_reset () =
  let b = Recv_buffer.create () in
  ignore (Recv_buffer.store b (packet ~seq:1));
  Recv_buffer.reset b;
  Alcotest.(check int) "aru reset" 0 (Recv_buffer.my_aru b);
  Alcotest.(check int) "empty" 0 (Recv_buffer.stored_count b);
  Alcotest.(check bool) "seq 1 accepted again" true
    (Recv_buffer.store b (packet ~seq:1) = `New)

let qcheck_random_arrival_order =
  QCheck.Test.make ~name:"delivery is 1..n in order for any arrival order"
    ~count:200
    QCheck.(int_range 1 60)
    (fun n ->
      let b = Recv_buffer.create () in
      let order = Array.init n (fun i -> i + 1) in
      let rng = Totem_engine.Rng.create ~seed:n in
      Totem_engine.Rng.shuffle rng order;
      let delivered = ref [] in
      Array.iter
        (fun seq ->
          ignore (Recv_buffer.store b (packet ~seq));
          delivered :=
            !delivered @ List.map (fun p -> p.Wire.seq) (Recv_buffer.pop_deliverable b))
        order;
      !delivered = List.init n (fun i -> i + 1))

let tests =
  [
    Alcotest.test_case "in-order path" `Quick test_in_order;
    Alcotest.test_case "gap blocks delivery" `Quick test_gap_blocks_delivery;
    Alcotest.test_case "duplicates filtered" `Quick test_duplicates;
    Alcotest.test_case "missing ranges" `Quick test_missing_ranges;
    Alcotest.test_case "garbage collection" `Quick test_gc;
    Alcotest.test_case "gc never drops undelivered" `Quick
      test_gc_never_drops_undelivered;
    Alcotest.test_case "reset for new ring" `Quick test_reset;
    QCheck_alcotest.to_alcotest qcheck_random_arrival_order;
  ]
