(* The SRP engine as a pure state machine: driven directly through its
   input functions, with a scripted lower layer instead of a network. *)

module Sim = Totem_engine.Sim
module Cpu = Totem_engine.Cpu
module Vtime = Totem_engine.Vtime
module Srp = Totem_srp.Srp
module Lower = Totem_srp.Lower
module Wire = Totem_srp.Wire
module Token = Totem_srp.Token
module Message = Totem_srp.Message
module Const = Totem_srp.Const

type script = {
  mutable data_out : Wire.packet list;  (* newest first *)
  mutable tokens_out : (int * Token.t) list;  (* (dst, token) *)
  mutable joins_out : Wire.join list;
  mutable commits_out : (int * Wire.commit) list;
  mutable delivered : Message.t list;
}

let make_node ?(me = 0) () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~name:"cpu" in
  let s =
    { data_out = []; tokens_out = []; joins_out = []; commits_out = [];
      delivered = [] }
  in
  let lower =
    {
      Lower.null with
      Lower.send_data = (fun p -> s.data_out <- p :: s.data_out);
      send_token = (fun ~dst tok -> s.tokens_out <- (dst, tok) :: s.tokens_out);
      send_join = (fun j -> s.joins_out <- j :: s.joins_out);
      send_commit = (fun ~dst cm -> s.commits_out <- (dst, cm) :: s.commits_out);
    }
  in
  let srp =
    Srp.create sim ~cpu ~const:Const.default ~me ~lower
      {
        Srp.on_deliver = (fun m -> s.delivered <- m :: s.delivered);
        on_ring_change = (fun ~ring_id:_ ~members:_ -> ());
      }
  in
  (sim, srp, s)

let run sim ms = Sim.run_until sim (Vtime.add (Sim.now sim) (Vtime.ms ms))

let test_bootstrap_requires_ring () =
  let _sim, srp, _ = make_node () in
  Alcotest.check_raises "no ring yet"
    (Invalid_argument "Srp.bootstrap_token: install_ring first") (fun () ->
      Srp.bootstrap_token srp)

let test_token_visit_sends_queued () =
  let sim, srp, s = make_node () in
  Srp.install_ring srp ~ring_id:1 ~members:[| 0; 1 |];
  Srp.submit srp ~size:500 ();
  Srp.submit srp ~size:500 ();
  Srp.bootstrap_token srp;
  run sim 5;
  (* Both 500-byte messages pack into one packet; the token leaves after
     the data, addressed to the successor, with the advanced seq. *)
  Alcotest.(check int) "one packet out" 1 (List.length s.data_out);
  (match s.tokens_out with
  | [ (dst, tok) ] ->
    Alcotest.(check int) "to the successor" 1 dst;
    Alcotest.(check int) "seq advanced" 1 tok.Token.seq;
    Alcotest.(check int) "hops counted" 1 tok.Token.hops
  | l -> Alcotest.failf "expected 1 token, got %d" (List.length l));
  Alcotest.(check int) "own messages self-delivered" 2 (List.length s.delivered)

let test_foreign_data_is_buffered_until_ordered () =
  let sim, srp, s = make_node () in
  Srp.install_ring srp ~ring_id:1 ~members:[| 0; 1 |];
  let packet ~seq =
    {
      Wire.ring_id = 1;
      seq;
      sender = 1;
      elements =
        [ { Wire.message = Message.make ~origin:1 ~app_seq:seq ~size:10 ();
            fragment = None } ];
    }
  in
  Srp.recv_data srp (packet ~seq:2);
  run sim 1;
  Alcotest.(check int) "out of order held" 0 (List.length s.delivered);
  Srp.recv_data srp (packet ~seq:1);
  run sim 1;
  Alcotest.(check int) "both released in order" 2 (List.length s.delivered);
  Alcotest.(check (list int)) "sequence order" [ 1; 2 ]
    (List.rev_map (fun m -> m.Message.app_seq) s.delivered)

let test_stale_ring_inputs_ignored () =
  let sim, srp, s = make_node () in
  Srp.install_ring srp ~ring_id:64 ~members:[| 0; 1 |];
  let stale_packet =
    { Wire.ring_id = 1; seq = 1; sender = 1;
      elements = [ { Wire.message = Message.make ~origin:1 ~app_seq:1 ~size:10 ();
                     fragment = None } ] }
  in
  Srp.recv_data srp stale_packet;
  Srp.token_arrived srp (Token.initial ~ring:[| 0; 1 |] ~ring_id:1);
  run sim 1;
  Alcotest.(check int) "stale data dropped" 0 (List.length s.delivered);
  Alcotest.(check int) "stale token not forwarded" 0 (List.length s.tokens_out)

let test_token_loss_starts_gather () =
  let sim, srp, s = make_node () in
  Srp.install_ring srp ~ring_id:1 ~members:[| 0; 1 |];
  (* No token ever arrives: after token_loss_timeout the node starts
     gathering and broadcasts Joins. *)
  run sim 250;
  Alcotest.(check bool) "gathering" true (not (Srp.is_operational srp));
  Alcotest.(check bool) "joins broadcast" true (List.length s.joins_out >= 1);
  let j = List.hd s.joins_out in
  Alcotest.(check int) "join names us" 0 j.Wire.sender;
  Alcotest.(check bool) "join carries our ring knowledge" true
    (j.Wire.max_ring_id >= 1)

let test_crash_is_silent () =
  let sim, srp, s = make_node () in
  Srp.install_ring srp ~ring_id:1 ~members:[| 0; 1 |];
  Srp.crash srp;
  Srp.submit srp ~size:100 ();
  Srp.token_arrived srp (Token.initial ~ring:[| 0; 1 |] ~ring_id:1);
  run sim 500;
  Alcotest.(check bool) "crashed" true (Srp.is_crashed srp);
  Alcotest.(check int) "no sends" 0 (List.length s.data_out);
  Alcotest.(check int) "no tokens" 0 (List.length s.tokens_out);
  Alcotest.(check int) "no joins either" 0 (List.length s.joins_out)

let test_flow_cap_per_visit () =
  let sim, srp, s = make_node () in
  Srp.install_ring srp ~ring_id:1 ~members:[| 0; 1 |];
  (* Queue far more full-frame messages than one visit's allowance. *)
  for _ = 1 to 100 do
    Srp.submit srp ~size:1400 ()
  done;
  Srp.bootstrap_token srp;
  run sim 5;
  Alcotest.(check int) "at most the per-visit packet cap"
    Const.default.Const.max_messages_per_token (List.length s.data_out);
  (* 25 went out, one sits in the element cursor awaiting the next
     visit, 74 remain queued. *)
  Alcotest.(check int) "the rest stays queued"
    (100 - Const.default.Const.max_messages_per_token - 1)
    (Srp.send_queue_length srp)

let test_commit_round1_forwarding () =
  let _sim, srp, s = make_node ~me:1 () in
  Srp.install_ring srp ~ring_id:1 ~members:[| 0; 1; 2 |];
  (* A round-1 commit for a newer ring arrives (we are a member): we
     append our info and pass it to the next proposed member. *)
  let cm =
    { Wire.cm_ring_id = 64; cm_ring = [| 0; 1; 2 |]; cm_round = 1;
      cm_info = [ { Wire.mi_node = 0; mi_old_ring = 1; mi_aru = 0 } ] }
  in
  Srp.recv_commit srp cm;
  (match s.commits_out with
  | [ (dst, cm') ] ->
    Alcotest.(check int) "forwarded to the next member" 2 dst;
    Alcotest.(check int) "still round 1" 1 cm'.Wire.cm_round;
    Alcotest.(check bool) "our info appended" true
      (List.exists (fun (i : Wire.member_info) -> i.mi_node = 1) cm'.Wire.cm_info);
    Alcotest.(check bool) "previous info kept" true
      (List.exists (fun (i : Wire.member_info) -> i.mi_node = 0) cm'.Wire.cm_info)
  | l -> Alcotest.failf "expected 1 commit out, got %d" (List.length l));
  Alcotest.(check bool) "joined the transition" true
    (not (Srp.is_operational srp));
  Alcotest.(check int) "still on the old ring until recovery" 1
    (Srp.current_ring_id srp)

let test_commit_round2_starts_recovery () =
  let _sim, srp, s = make_node ~me:1 () in
  Srp.install_ring srp ~ring_id:1 ~members:[| 0; 1; 2 |];
  (* Everyone is level (aru 0): round 2 completes recovery instantly and
     installs the new ring. *)
  let info old_ring n = { Wire.mi_node = n; mi_old_ring = old_ring; mi_aru = 0 } in
  let cm =
    { Wire.cm_ring_id = 64; cm_ring = [| 0; 1; 2 |]; cm_round = 2;
      cm_info = [ info 1 0; info 1 1; info 1 2 ] }
  in
  Srp.recv_commit srp cm;
  Alcotest.(check int) "new ring installed" 64 (Srp.current_ring_id srp);
  Alcotest.(check bool) "operational" true (Srp.is_operational srp);
  (match s.commits_out with
  | [ (dst, cm') ] ->
    Alcotest.(check int) "round 2 passed on" 2 dst;
    Alcotest.(check int) "round preserved" 2 cm'.Wire.cm_round
  | l -> Alcotest.failf "expected 1 commit out, got %d" (List.length l))

let tests =
  [
    Alcotest.test_case "bootstrap requires a ring" `Quick test_bootstrap_requires_ring;
    Alcotest.test_case "token visit broadcasts the queue" `Quick
      test_token_visit_sends_queued;
    Alcotest.test_case "out-of-order data buffered" `Quick
      test_foreign_data_is_buffered_until_ordered;
    Alcotest.test_case "stale-ring inputs ignored" `Quick test_stale_ring_inputs_ignored;
    Alcotest.test_case "token loss starts gathering" `Quick
      test_token_loss_starts_gather;
    Alcotest.test_case "a crashed node is silent" `Quick test_crash_is_silent;
    Alcotest.test_case "flow control caps one visit" `Quick test_flow_cap_per_visit;
    Alcotest.test_case "commit round 1 forwarded with our info" `Quick
      test_commit_round1_forwarding;
    Alcotest.test_case "commit round 2 starts recovery" `Quick
      test_commit_round2_starts_recovery;
  ]
