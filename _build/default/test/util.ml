(* Shared helpers for protocol-level tests: build a cluster, record
   deliveries, and make assertions about total order. *)

module Cluster = Totem_cluster.Cluster
module Config = Totem_cluster.Config
module Workload = Totem_cluster.Workload
module Scenario = Totem_cluster.Scenario
module Metrics = Totem_cluster.Metrics
module Srp = Totem_srp.Srp
module Message = Totem_srp.Message
module Style = Totem_rrp.Style
module Vtime = Totem_engine.Vtime

type recorded = {
  cluster : Cluster.t;
  orders : (int * int) list ref array;  (* (origin, app_seq) oldest-first *)
}

let make ?(num_nodes = 4) ?(num_nets = 2) ?(style = Style.Passive) ?(seed = 42)
    ?net ?const ?rrp () =
  let config = Config.make ~num_nodes ~num_nets ~style ~seed ?net ?const ?rrp () in
  let cluster = Cluster.create config in
  let orders = Array.init num_nodes (fun _ -> ref []) in
  Cluster.on_deliver cluster (fun node m ->
      orders.(node) := (m.Message.origin, m.Message.app_seq) :: !(orders.(node)));
  { cluster; orders }

let order t node = List.rev !(t.orders.(node))

let submit t ~node ~size = Srp.submit (Cluster.srp (Cluster.node t.cluster node)) ~size ()

let submit_n t ~node ~size n =
  for _ = 1 to n do
    submit t ~node ~size
  done

let run_ms t ms = Cluster.run_for t.cluster (Vtime.ms ms)

let check_same_total_order t =
  let reference = order t 0 in
  Array.iteri
    (fun i o ->
      if List.rev !o <> reference then
        Alcotest.failf "node %d delivered a different order than node 0" i)
    t.orders

let check_delivered_everything t ~expected =
  check_same_total_order t;
  let n = List.length (order t 0) in
  Alcotest.(check int) "all messages delivered" expected n

let srp_of t node = Cluster.srp (Cluster.node t.cluster node)

let rrp_of t node = Cluster.rrp (Cluster.node t.cluster node)
