(* Totem's safe-delivery guarantee: a message flagged safe is delivered
   only once the token's aru has proven that every ring member holds it.
   (The RRP inherits this from the SRP unchanged — replication styles
   only change how packets travel.) *)

open Util

let submit_safe t ~node ~size =
  Srp.submit (Cluster.srp (Cluster.node t.cluster node)) ~size ~safe:true ()

(* Record each delivery with its simulated time. *)
let make_timed ?(style = Style.Passive) ?num_nets () =
  let t = make ~style ?num_nets () in
  let times = Array.init 4 (fun _ -> ref []) in
  Cluster.on_deliver t.cluster (fun node m ->
      times.(node) :=
        ((m.Message.origin, m.Message.app_seq), Cluster.now t.cluster)
        :: !(times.(node)));
  (t, times)

let test_safe_delivered_everywhere () =
  let t = make () in
  Cluster.start t.cluster;
  submit_safe t ~node:1 ~size:512;
  submit_safe t ~node:2 ~size:512;
  run_ms t 500;
  check_delivered_everything t ~expected:2

let test_safe_later_than_agreed () =
  let t, times = make_timed () in
  Cluster.start t.cluster;
  run_ms t 50;
  (* One agreed and one safe message from the same node, same instant. *)
  submit t ~node:1 ~size:512;
  submit_safe t ~node:1 ~size:512;
  run_ms t 1000;
  let at node key = List.assoc key (List.rev !(times.(node))) in
  for node = 0 to 3 do
    let agreed = at node (1, 1) and safe = at node (1, 2) in
    Alcotest.(check bool)
      (Printf.sprintf "node %d: safe strictly after agreed" node)
      true
      Vtime.(safe > agreed);
    (* The wait is the stability delay: at least a rotation's worth. *)
    Alcotest.(check bool)
      (Printf.sprintf "node %d: stability delay visible" node)
      true
      (Vtime.sub safe agreed > Vtime.us 100)
  done

let test_order_preserved_across_guarantees () =
  (* A held-back safe message must also hold back the agreed messages
     ordered after it — total order beats delivery eagerness. *)
  let t = make () in
  Cluster.start t.cluster;
  submit_safe t ~node:1 ~size:256;
  submit t ~node:1 ~size:256;
  submit t ~node:2 ~size:256;
  run_ms t 1000;
  check_delivered_everything t ~expected:3

let test_safe_under_loss () =
  let t = make ~seed:23 () in
  Cluster.start t.cluster;
  Cluster.set_network_loss t.cluster 0 0.1;
  Cluster.set_network_loss t.cluster 1 0.1;
  for _ = 1 to 30 do
    submit_safe t ~node:1 ~size:700;
    submit t ~node:3 ~size:700
  done;
  run_ms t 5000;
  check_delivered_everything t ~expected:60

let test_safe_horizon_advances () =
  let t = make () in
  Cluster.start t.cluster;
  submit_n t ~node:1 ~size:512 20;
  run_ms t 1000;
  let srp = srp_of t 0 in
  Alcotest.(check bool) "horizon reached the traffic" true
    (Srp.safe_horizon srp > 0);
  Alcotest.(check bool) "horizon never passes aru" true
    (Srp.safe_horizon srp <= Srp.my_aru srp)

let test_safe_through_network_failure () =
  let t = make ~style:Style.Active () in
  Cluster.start t.cluster;
  run_ms t 100;
  Cluster.fail_network t.cluster 0;
  for _ = 1 to 20 do
    submit_safe t ~node:1 ~size:512
  done;
  run_ms t 3000;
  check_delivered_everything t ~expected:20;
  Alcotest.(check int) "no membership change" 1
    (Srp.stats (srp_of t 0)).Srp.ring_changes

let test_safe_flag_travels () =
  let t = make () in
  let saw_safe = ref 0 in
  Cluster.on_deliver t.cluster (fun _ m ->
      if m.Message.safe then incr saw_safe);
  Cluster.start t.cluster;
  submit_safe t ~node:2 ~size:128;
  submit t ~node:2 ~size:128;
  run_ms t 500;
  Alcotest.(check int) "safe flag visible at delivery (4 nodes x 1 msg)" 4 !saw_safe

let tests =
  [
    Alcotest.test_case "safe messages delivered everywhere" `Quick
      test_safe_delivered_everywhere;
    Alcotest.test_case "safe delivered strictly after agreed" `Quick
      test_safe_later_than_agreed;
    Alcotest.test_case "total order across guarantees" `Quick
      test_order_preserved_across_guarantees;
    Alcotest.test_case "safe delivery under loss" `Slow test_safe_under_loss;
    Alcotest.test_case "safe horizon advances, bounded by aru" `Quick
      test_safe_horizon_advances;
    Alcotest.test_case "safe through a network failure" `Quick
      test_safe_through_network_failure;
    Alcotest.test_case "safe flag travels to delivery" `Quick test_safe_flag_travels;
  ]
