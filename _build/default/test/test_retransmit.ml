open Totem_srp

let test_merge () =
  Alcotest.(check (list int)) "disjoint" [ 1; 2; 3; 4 ]
    (Retransmit.merge [ 1; 3 ] [ 2; 4 ]);
  Alcotest.(check (list int)) "overlap dedup" [ 1; 2; 3 ]
    (Retransmit.merge [ 1; 2 ] [ 2; 3 ]);
  Alcotest.(check (list int)) "empty left" [ 1 ] (Retransmit.merge [] [ 1 ]);
  Alcotest.(check (list int)) "empty right" [ 1 ] (Retransmit.merge [ 1 ] [])

let test_remove () =
  Alcotest.(check (list int)) "served removed" [ 1; 4 ]
    (Retransmit.remove [ 1; 2; 3; 4 ] [ 2; 3 ]);
  Alcotest.(check (list int)) "absent served ignored" [ 1; 2 ]
    (Retransmit.remove [ 1; 2 ] [ 5 ]);
  Alcotest.(check (list int)) "remove all" [] (Retransmit.remove [ 1 ] [ 1 ])

let test_truncate () =
  Alcotest.(check (list int)) "keep lowest" [ 1; 2 ] (Retransmit.truncate 2 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "shorter untouched" [ 1 ] (Retransmit.truncate 5 [ 1 ])

let test_is_sorted_unique () =
  Alcotest.(check bool) "ok" true (Retransmit.is_sorted_unique [ 1; 2; 9 ]);
  Alcotest.(check bool) "dup" false (Retransmit.is_sorted_unique [ 1; 1 ]);
  Alcotest.(check bool) "unsorted" false (Retransmit.is_sorted_unique [ 2; 1 ]);
  Alcotest.(check bool) "empty" true (Retransmit.is_sorted_unique [])

let sorted_list = QCheck.(map (List.sort_uniq compare) (list small_nat))

let qcheck_merge_sorted =
  QCheck.Test.make ~name:"merge keeps sorted-unique" ~count:300
    (QCheck.pair sorted_list sorted_list) (fun (a, b) ->
      Retransmit.is_sorted_unique (Retransmit.merge a b))

let qcheck_merge_is_union =
  QCheck.Test.make ~name:"merge is set union" ~count:300
    (QCheck.pair sorted_list sorted_list) (fun (a, b) ->
      Retransmit.merge a b = List.sort_uniq compare (a @ b))

let qcheck_remove_is_diff =
  QCheck.Test.make ~name:"remove is set difference" ~count:300
    (QCheck.pair sorted_list sorted_list) (fun (a, b) ->
      Retransmit.remove a b = List.filter (fun x -> not (List.mem x b)) a)

let tests =
  [
    Alcotest.test_case "merge" `Quick test_merge;
    Alcotest.test_case "remove" `Quick test_remove;
    Alcotest.test_case "truncate" `Quick test_truncate;
    Alcotest.test_case "is_sorted_unique" `Quick test_is_sorted_unique;
    QCheck_alcotest.to_alcotest qcheck_merge_sorted;
    QCheck_alcotest.to_alcotest qcheck_merge_is_union;
    QCheck_alcotest.to_alcotest qcheck_remove_is_diff;
  ]
